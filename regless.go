// Package repro is a Go reproduction of "RegLess: Just-in-Time Operand
// Staging for GPUs" (Kloosterman et al., MICRO 2017): a cycle-level GPU
// streaming-multiprocessor simulator whose register file is replaced by
// compiler-managed operand staging units, together with the baseline
// register file, RFV, and RFH comparison schemes, an energy/area model,
// and runners for every table and figure in the paper's evaluation.
//
// This package is the public API; the implementation lives under
// internal/. Three layers are exposed:
//
//   - Kernels: the 21 Rodinia-analogue benchmarks and a builder for
//     custom kernels (NewKernelBuilder).
//   - CompileKernel: the RegLess compiler — region creation, register
//     classification, annotations, and metadata cost.
//   - Simulate / NewExperimentSuite: cycle-level simulation under a
//     chosen register scheme, and the paper's experiments.
//
// See examples/ for runnable demonstrations.
package repro

import (
	"fmt"

	"repro/internal/asm"
	"repro/internal/core"
	"repro/internal/energy"
	"repro/internal/exec"
	"repro/internal/experiments"
	"repro/internal/isa"
	"repro/internal/kernels"
	"repro/internal/metadata"
	"repro/internal/regalloc"
	"repro/internal/regions"
	"repro/internal/rf"
	"repro/internal/sim"
)

// Kernel is a compiled GPU kernel (a control-flow graph of SASS-like
// instructions over architectural registers).
type Kernel = isa.Kernel

// KernelBuilder assembles custom kernels; see isa.Builder's methods.
type KernelBuilder = isa.Builder

// NewKernelBuilder starts a kernel with the given name and CTA size in
// warps. Registers returned by builder methods are virtual; pass the
// finished kernel to AllocateRegisters before compiling or simulating.
func NewKernelBuilder(name string, warpsPerCTA int) *KernelBuilder {
	return isa.NewBuilder(name, warpsPerCTA)
}

// AllocateRegisters maps a built kernel's virtual registers onto a compact
// architectural set (the ptxas stage).
func AllocateRegisters(k *Kernel) (*Kernel, error) {
	res, err := regalloc.Allocate(k)
	if err != nil {
		return nil, err
	}
	return res.Kernel, nil
}

// ParseKernelAsm assembles a kernel from the textual format documented in
// internal/asm (registers are architectural; no allocation needed).
func ParseKernelAsm(src string) (*Kernel, error) { return asm.Parse(src) }

// FormatKernelAsm renders a kernel in the textual assembly format; the
// output parses back to an identical kernel.
func FormatKernelAsm(k *Kernel) string { return asm.Format(k) }

// Benchmarks lists the 21 Rodinia-analogue benchmark names.
func Benchmarks() []string { return kernels.Names() }

// LoadBenchmark returns a ready-to-run (register-allocated) suite kernel.
func LoadBenchmark(name string) (*Kernel, error) { return kernels.Load(name) }

// CompilerConfig bounds region creation to the OSU geometry.
type CompilerConfig = regions.Config

// DefaultCompilerConfig matches the paper's 512-register design point.
func DefaultCompilerConfig() CompilerConfig { return regions.DefaultConfig() }

// Compiled is the RegLess compiler's output: regions with capacity and
// lifetime annotations.
type Compiled = regions.Compiled

// RegionSummary aggregates per-region statistics (Figure 19 / Table 2).
type RegionSummary = regions.Summary

// CompileKernel runs the RegLess compiler (region creation, annotation,
// metadata encoding) on a register-allocated kernel.
func CompileKernel(k *Kernel, cfg CompilerConfig) (*Compiled, error) {
	c, err := regions.Compile(k, cfg)
	if err != nil {
		return nil, err
	}
	if _, err := metadata.Apply(c); err != nil {
		return nil, err
	}
	return c, nil
}

// Scheme selects the register storage hardware for a simulation.
type Scheme string

// The available register schemes.
const (
	// Baseline is the full 2048-entry register file.
	Baseline Scheme = "baseline"
	// RFV is register file virtualization (Jeon et al.): half-size
	// renamed register file.
	RFV Scheme = "rfv"
	// RFH is the compile-time register hierarchy (Gebhart et al.).
	RFH Scheme = "rfh"
	// RegLess is the paper's operand staging unit at the capacity in
	// SimOptions.
	RegLess Scheme = "regless"
	// RegLessNoCompressor ablates the compressor (Figure 16).
	RegLessNoCompressor Scheme = "regless-nocomp"
)

// SimOptions configures one simulation.
type SimOptions struct {
	// Warps per SM (default 64, Table 1).
	Warps int
	// Capacity is the RegLess OSU size in registers per SM (default
	// 512, the paper's design point). Ignored for other schemes.
	Capacity int
	// TwoLevelScheduler selects the two-level warp scheduler instead of
	// GTO (RFV and RFH default to it, as in the paper).
	TwoLevelScheduler bool
	// MaxCycles bounds the simulation (0 = generous default).
	MaxCycles uint64
}

func (o *SimOptions) fill() {
	if o.Warps == 0 {
		o.Warps = 64
	}
	if o.Capacity == 0 {
		o.Capacity = 512
	}
	if o.MaxCycles == 0 {
		o.MaxCycles = 60_000_000
	}
}

// SimResult is one simulation's outcome.
type SimResult struct {
	// Cycles and Instructions summarize the run; IPC is their ratio.
	Cycles       uint64
	Instructions uint64
	IPC          float64

	// Stats and Provider expose every simulator counter.
	Stats    *sim.Stats
	Provider sim.ProviderStats

	// Energy is the modelled energy breakdown for this run.
	Energy energy.Breakdown

	// Compiled is the RegLess compiler output (nil for other schemes).
	Compiled *Compiled
}

// Simulate runs kernel k under the given scheme and returns the measured
// statistics with the energy model applied. The simulation is functionally
// exact: register values, divergence, and memory addresses are computed,
// and RegLess is architecturally transparent.
func Simulate(k *Kernel, scheme Scheme, opts SimOptions) (*SimResult, error) {
	opts.fill()
	cfg := sim.DefaultConfig()
	cfg.Warps = opts.Warps
	cfg.MaxCycles = opts.MaxCycles
	if opts.TwoLevelScheduler {
		cfg.Sched = sim.SchedTwoLevel
	}

	var provider sim.Provider
	var es energy.Scheme
	var compiled *Compiled
	switch scheme {
	case Baseline:
		provider = rf.NewBaseline()
		es = energy.Scheme{Kind: energy.KindBaseline, Entries: experiments.BaselineEntries}
	case RFV:
		provider = rf.NewRFV(experiments.RFVEntries)
		cfg.Sched = sim.SchedTwoLevel
		es = energy.Scheme{Kind: energy.KindRFV, Entries: experiments.RFVEntries}
	case RFH:
		provider = rf.NewRFH(experiments.RFHORFEntries)
		cfg.Sched = sim.SchedTwoLevel
		es = energy.Scheme{Kind: energy.KindRFH, Entries: experiments.BaselineEntries}
	case RegLess, RegLessNoCompressor:
		ccfg := core.ConfigForCapacity(opts.Capacity)
		ccfg.EnableCompressor = scheme == RegLess
		p, err := core.New(ccfg, k)
		if err != nil {
			return nil, err
		}
		provider = p
		compiled = p.Compiled()
		es = energy.Scheme{Kind: energy.KindRegLess, Entries: opts.Capacity,
			Compressor: scheme == RegLess}
	default:
		return nil, fmt.Errorf("repro: unknown scheme %q", scheme)
	}

	smv, err := sim.New(cfg, k, provider, exec.NewMemory(nil))
	if err != nil {
		return nil, err
	}
	st, err := smv.Run()
	if err != nil {
		return nil, err
	}
	ps := *provider.Stats()
	return &SimResult{
		Cycles:       st.Cycles,
		Instructions: st.DynInsns,
		IPC:          st.IPC(),
		Stats:        st,
		Provider:     ps,
		Energy: energy.Compute(energy.DefaultParams(), es,
			energy.FromRun(st, &ps, smv.Mem.Stats)),
		Compiled: compiled,
	}, nil
}

// ExperimentTable is one regenerated paper table/figure.
type ExperimentTable = experiments.Table

// ExperimentSuite memoizes simulations across experiment runners.
type ExperimentSuite = experiments.Suite

// NewExperimentSuite builds a full-scale experiment suite (64 warps, all
// 21 benchmarks); shrink via the returned suite's Opts before first use.
func NewExperimentSuite() *ExperimentSuite {
	return experiments.NewSuite(experiments.Default())
}

// RunExperiment regenerates one paper table or figure by ID: "table1",
// "fig2", "fig3", "fig5", "fig11".."fig19", or "table2".
func RunExperiment(s *ExperimentSuite, id string) (*ExperimentTable, error) {
	fn, ok := experiments.ByID(id)
	if !ok {
		return nil, fmt.Errorf("repro: unknown experiment %q", id)
	}
	return fn(s)
}

// RunAllExperiments regenerates every table and figure in paper order.
func RunAllExperiments(s *ExperimentSuite) ([]*ExperimentTable, error) {
	return experiments.All(s)
}
