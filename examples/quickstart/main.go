// Quickstart: run one benchmark under the baseline register file and under
// RegLess, and print the paper's headline comparison — same result, same
// speed, a quarter of the register storage, most of the register energy
// gone.
package main

import (
	"fmt"
	"log"

	repro "repro"
)

func main() {
	k, err := repro.LoadBenchmark("hotspot")
	if err != nil {
		log.Fatal(err)
	}

	opts := repro.SimOptions{Warps: 64, Capacity: 512}
	base, err := repro.Simulate(k, repro.Baseline, opts)
	if err != nil {
		log.Fatal(err)
	}
	rgl, err := repro.Simulate(k, repro.RegLess, opts)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("hotspot, 64 warps, one SM")
	fmt.Printf("%-28s %12s %12s\n", "", "baseline RF", "RegLess-512")
	fmt.Printf("%-28s %12d %12d\n", "cycles", base.Cycles, rgl.Cycles)
	fmt.Printf("%-28s %12.2f %12.2f\n", "IPC", base.IPC, rgl.IPC)
	fmt.Printf("%-28s %12.0f %12.0f\n", "register energy (model units)",
		base.Energy.RFTotal, rgl.Energy.RFTotal)
	fmt.Printf("%-28s %12.0f %12.0f\n", "total GPU energy",
		base.Energy.Total, rgl.Energy.Total)
	fmt.Println()
	fmt.Printf("run time ratio        %.3f (paper: ~1.00 average)\n",
		float64(rgl.Cycles)/float64(base.Cycles))
	fmt.Printf("register energy ratio %.3f (paper: 0.247 average)\n",
		rgl.Energy.RFTotal/base.Energy.RFTotal)
	fmt.Printf("GPU energy ratio      %.3f (paper: 0.89 average)\n",
		rgl.Energy.Total/base.Energy.Total)

	p := rgl.Provider
	if n := p.Preloads(); n > 0 {
		fmt.Printf("\npreloads served by: OSU %.1f%%, compressor %.1f%%, L1 %.2f%%, L2/DRAM %.3f%%\n",
			100*float64(p.PreloadFromOSU)/float64(n),
			100*float64(p.PreloadFromCompressor)/float64(n),
			100*float64(p.PreloadFromL1)/float64(n),
			100*float64(p.PreloadFromL2DRAM)/float64(n))
	}
}
