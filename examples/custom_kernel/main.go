// Custom kernel: build a SAXPY-like kernel with the public builder,
// register-allocate it, compile it into RegLess regions, inspect the
// compiler's annotations, and simulate it under RegLess.
package main

import (
	"fmt"
	"log"

	repro "repro"
	"repro/internal/isa" // for opcode names in Op2To etc. (same module)
)

func buildSaxpy() *repro.Kernel {
	b := repro.NewKernelBuilder("saxpy", 8)
	tid := b.Tid()
	idx := b.OpImm(isa.OpSHLI, tid, 2) // byte offset, coalesced
	a := b.Movi(3)                     // scalar a (compressible constant)
	i := b.Movi(8)                     // 8 elements per thread
	top := b.Label()
	b.Bind(top)
	x := b.Ldg(idx, 0x0100_0000)
	y := b.Ldg(idx, 0x0180_0000)
	ax := b.Op2(isa.OpIMUL, a, x)
	r := b.Iadd(ax, y)
	b.Stg(idx, r, 0x0200_0000)
	b.OpImmTo(isa.OpIADDI, idx, idx, 32768)
	b.OpImmTo(isa.OpIADDI, i, i, ^uint32(0))
	b.Bnz(i, top)
	b.Exit()
	return b.MustKernel()
}

func main() {
	virt := buildSaxpy()
	k, err := repro.AllocateRegisters(virt)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("saxpy: %d virtual registers allocated onto %d architectural registers\n\n",
		virt.NumRegs, k.NumRegs)
	fmt.Print(k.Disassemble())

	c, err := repro.CompileKernel(k, repro.DefaultCompilerConfig())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nRegLess regions:")
	for _, r := range c.Regions {
		fmt.Printf("  region %d: block B%d insns [%d,%d), %d concurrent live, %d preloads, %d metadata insns\n",
			r.ID, r.Block, r.Start, r.End, r.MaxLive, len(r.Preloads), r.MetaInsns)
	}
	s := c.Summarize()
	fmt.Printf("interior value fraction: %.2f (values that never touch the memory hierarchy)\n\n",
		s.InteriorFrac)

	res, err := repro.Simulate(k, repro.RegLess, repro.SimOptions{Warps: 32})
	if err != nil {
		log.Fatal(err)
	}
	base, err := repro.Simulate(k, repro.Baseline, repro.SimOptions{Warps: 32})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("simulated 32 warps: baseline %d cycles, RegLess %d cycles (%.3fx), RF energy ratio %.3f\n",
		base.Cycles, res.Cycles, float64(res.Cycles)/float64(base.Cycles),
		res.Energy.RFTotal/base.Energy.RFTotal)
}
