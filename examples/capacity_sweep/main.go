// Capacity sweep: how small can the operand staging unit get? Runs one
// benchmark across OSU capacities from 1/16th to the full register file's
// size and prints the run-time/energy trade-off the paper's Figure 13
// explores, plus where the preloads were served from at each point.
package main

import (
	"flag"
	"fmt"
	"log"

	repro "repro"
)

func main() {
	bench := flag.String("bench", "dwt2d", "benchmark to sweep")
	warps := flag.Int("warps", 64, "warps per SM")
	flag.Parse()

	k, err := repro.LoadBenchmark(*bench)
	if err != nil {
		log.Fatal(err)
	}
	base, err := repro.Simulate(k, repro.Baseline, repro.SimOptions{Warps: *warps})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%s, %d warps — baseline: %d cycles\n\n", *bench, *warps, base.Cycles)
	fmt.Printf("%8s  %9s  %10s  %9s  %22s\n",
		"capacity", "run time", "RF energy", "GPU", "preloads OSU/L1/deep")
	for _, capacity := range []int{128, 192, 256, 384, 512, 1024, 2048} {
		r, err := repro.Simulate(k, repro.RegLess, repro.SimOptions{Warps: *warps, Capacity: capacity})
		if err != nil {
			log.Fatalf("capacity %d: %v", capacity, err)
		}
		p := r.Provider
		n := float64(p.Preloads())
		if n == 0 {
			n = 1
		}
		fmt.Printf("%8d  %8.3fx  %9.3fx  %8.3fx  %6.1f%% %6.2f%% %7.3f%%\n",
			capacity,
			float64(r.Cycles)/float64(base.Cycles),
			r.Energy.RFTotal/base.Energy.RFTotal,
			r.Energy.Total/base.Energy.Total,
			100*float64(p.PreloadFromOSU+p.PreloadFromCompressor)/n,
			100*float64(p.PreloadFromL1)/n,
			100*float64(p.PreloadFromL2DRAM)/n)
	}
	fmt.Println("\nThe knee is where the working set stops fitting: run time climbs as")
	fmt.Println("preloads start missing to the memory system (the paper chooses 512).")
}
