// Compiler walkthrough: builds a small divergent kernel and shows the
// analyses of paper §4 working — soft definitions (Algorithm 2), region
// creation (Algorithm 1), and the divergence-safe erase/evict/invalidate
// annotations.
package main

import (
	"fmt"
	"log"

	repro "repro"
	"repro/internal/cfg" // same-module access to the analysis layer
	"repro/internal/isa"
)

// buildDivergent reproduces the paper's Figure 7 shape: r1 defined before
// a branch, redefined on one arm while the other arm still reads the
// original value.
func buildDivergent() *repro.Kernel {
	b := repro.NewKernelBuilder("figure7", 8)
	lane := b.Lane()
	parity := b.Op2(isa.OpAND, lane, b.Movi(1))
	r1 := b.Movi(100) // dominating definition
	elseL, join := b.Label(), b.Label()
	b.Bnz(parity, elseL)
	b.MoviTo(r1, 200) // soft: odd lanes still need the old r1
	b.Bra(join)
	b.Bind(elseL)
	keep := b.Iadd(r1, lane) // the other arm reads the original value
	b.Stg(keep, keep, 0x0200_0000)
	b.Bind(join)
	out := b.Iadd(r1, lane)
	addr := b.Addi(b.Muli(lane, 4), 0x0280_0000)
	b.Stg(addr, out, 0)
	b.Exit()
	return b.MustKernel()
}

func main() {
	k, err := repro.AllocateRegisters(buildDivergent())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(k.Disassemble())

	g := cfg.New(k)
	lv := cfg.ComputeLiveness(g)
	fmt.Println("\nsoft definitions (Algorithm 2):")
	for bi, blk := range k.Blocks {
		for i := range blk.Insns {
			gi := g.GlobalIndex(isa.PC{Block: bi, Index: i})
			if lv.SoftDef[gi] {
				fmt.Printf("  B%d:%d  %-24s <- does not kill: inactive lanes still hold the old value\n",
					bi, i, blk.Insns[i].String())
			}
		}
	}

	c, err := repro.CompileKernel(k, repro.DefaultCompilerConfig())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nregions and annotations:")
	for _, r := range c.Regions {
		fmt.Printf("  region %d (B%d[%d,%d)):", r.ID, r.Block, r.Start, r.End)
		for _, p := range r.Preloads {
			if p.Invalidate {
				fmt.Printf(" preload %v(invalidating)", p.Reg)
			} else {
				fmt.Printf(" preload %v", p.Reg)
			}
		}
		for _, reg := range r.CacheInvalidations {
			fmt.Printf(" cache-invalidate %v", reg)
		}
		fmt.Println()
		for gi, regs := range r.EraseAt {
			fmt.Printf("      erase %v at %v (value fully dead)\n", regs, g.PCOf(gi))
		}
		for gi, regs := range r.EvictAt {
			fmt.Printf("      evict %v at %v (may still be needed: divergent sibling or later region)\n",
				regs, g.PCOf(gi))
		}
	}
	fmt.Println("\nNote how the redefined register is preloaded (its inactive-lane values")
	fmt.Println("must be merged) and is only ever *evicted*, never erased, inside the")
	fmt.Println("divergent arms: the sibling path's lanes still need it (§4.4).")
}
