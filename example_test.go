package repro_test

import (
	"fmt"
	"log"

	repro "repro"
)

// ExampleSimulate runs one suite benchmark under the baseline register
// file and under RegLess and compares them.
func ExampleSimulate() {
	k, err := repro.LoadBenchmark("nw")
	if err != nil {
		log.Fatal(err)
	}
	opts := repro.SimOptions{Warps: 16}
	base, err := repro.Simulate(k, repro.Baseline, opts)
	if err != nil {
		log.Fatal(err)
	}
	rgls, err := repro.Simulate(k, repro.RegLess, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("same instructions:", base.Instructions == rgls.Instructions)
	fmt.Println("register energy below half:", rgls.Energy.RFTotal < base.Energy.RFTotal/2)
	fmt.Println("run time within 15%:", float64(rgls.Cycles) < 1.15*float64(base.Cycles))
	// Output:
	// same instructions: true
	// register energy below half: true
	// run time within 15%: true
}

// ExampleParseKernelAsm assembles a kernel from text and simulates it.
func ExampleParseKernelAsm() {
	src := `
.kernel scale warps_per_cta=4
    tid   r0
    shli  r1, r0, 2
    ldg   r2, [r1 + 0x1000000]
    imuli r3, r2, 3
    stg   [r1 + 0x2000000], r3
    exit
`
	k, err := repro.ParseKernelAsm(src)
	if err != nil {
		log.Fatal(err)
	}
	res, err := repro.Simulate(k, repro.RegLess, repro.SimOptions{Warps: 4})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("kernel:", k.Name)
	fmt.Println("instructions per warp:", res.Instructions/4)
	// Output:
	// kernel: scale
	// instructions per warp: 6
}

// ExampleCompileKernel shows the RegLess compiler splitting a global load
// from its first use (Algorithm 1's load/use rule).
func ExampleCompileKernel() {
	src := `
.kernel loaduse warps_per_cta=4
    tid   r0
    shli  r1, r0, 2
    ldg   r2, [r1 + 0x1000000]
    iaddi r3, r2, 7
    stg   [r1 + 0x2000000], r3
    exit
`
	k, err := repro.ParseKernelAsm(src)
	if err != nil {
		log.Fatal(err)
	}
	c, err := repro.CompileKernel(k, repro.DefaultCompilerConfig())
	if err != nil {
		log.Fatal(err)
	}
	loadRegion := c.RegionOf[2] // the ldg
	useRegion := c.RegionOf[3]  // its first use
	fmt.Println("load and use share a region:", loadRegion == useRegion)
	fmt.Println("regions:", len(c.Regions) >= 2)
	// Output:
	// load and use share a region: false
	// regions: true
}

// ExampleNewKernelBuilder builds a kernel programmatically, allocates
// registers, and prints its assembly.
func ExampleNewKernelBuilder() {
	b := repro.NewKernelBuilder("double", 4)
	tid := b.Tid()
	addr := b.Muli(tid, 4)
	v := b.Ldg(addr, 0x1000000)
	dv := b.Iadd(v, v)
	b.Stg(addr, dv, 0x2000000)
	b.Exit()
	virt, err := b.Kernel()
	if err != nil {
		log.Fatal(err)
	}
	k, err := repro.AllocateRegisters(virt)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(repro.FormatKernelAsm(k))
	// Output:
	// .kernel double warps_per_cta=4
	//     tid r0
	//     imuli r1, r0, 4
	//     ldg r0, [r1 + 0x1000000]
	//     iadd r2, r0, r0
	//     stg [r1 + 0x2000000], r2
	//     exit
}
