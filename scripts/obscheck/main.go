// Command obscheck is the observability smoke checker scripts/check.sh
// runs against a live `regless serve` instance. It exercises the
// service-level observability surface end to end and fails loudly on any
// malformed output:
//
//   - /healthz must report uptime and a non-negative store entry count
//   - a sweep must be followable over SSE to its terminal summary event
//     without polling
//   - a completed run's trace must be a span tree whose children tile
//     the root exactly, and its Perfetto export must parse
//   - /metricsz?format=prom must survive a strict Prometheus text-format
//     parse: TYPE lines before samples, unique series, monotone
//     cumulative buckets ending at +Inf, _count == +Inf bucket
//   - /v1/metricsz/stream must deliver a window event
//
// Usage: obscheck -addr http://127.0.0.1:PORT
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"
)

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "obscheck: "+format+"\n", args...)
	os.Exit(1)
}

func main() {
	addr := flag.String("addr", "", "server base URL (required)")
	flag.Parse()
	if *addr == "" {
		fail("-addr is required")
	}
	base := strings.TrimSuffix(*addr, "/")
	hc := &http.Client{Timeout: 5 * time.Minute}

	checkHealthz(hc, base)
	runID := checkSweepStream(hc, base)
	checkTrace(hc, base, runID)
	checkProm(hc, base)
	checkMetricsStream(hc, base)
	fmt.Println("obscheck: ok")
}

func getJSON(hc *http.Client, url string, v any) int {
	resp, err := hc.Get(url)
	if err != nil {
		fail("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		fail("GET %s: %v", url, err)
	}
	if v != nil {
		if err := json.Unmarshal(raw, v); err != nil {
			fail("GET %s: bad JSON: %v\n%s", url, err, raw)
		}
	}
	return resp.StatusCode
}

func checkHealthz(hc *http.Client, base string) {
	var h struct {
		Status        string  `json:"status"`
		UptimeSeconds float64 `json:"uptime_seconds"`
		StoreEntries  int     `json:"store_entries"`
	}
	code := getJSON(hc, base+"/healthz", &h)
	if code != http.StatusOK && code != http.StatusServiceUnavailable {
		fail("healthz: HTTP %d", code)
	}
	if h.Status == "" || h.UptimeSeconds <= 0 {
		fail("healthz: status %q uptime %f", h.Status, h.UptimeSeconds)
	}
	if h.StoreEntries < 0 {
		fail("healthz: store listing failed (store_entries %d)", h.StoreEntries)
	}
}

// checkSweepStream submits a sweep and follows it over SSE — no polling
// — until the summary event reports it done. Returns one finished run id.
func checkSweepStream(hc *http.Client, base string) string {
	body := strings.NewReader(`{"benchmarks":["nw"],"schemes":["baseline","regless"]}`)
	resp, err := hc.Post(base+"/v1/sweeps", "application/json", body)
	if err != nil {
		fail("POST /v1/sweeps: %v", err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
		fail("POST /v1/sweeps: HTTP %d: %s", resp.StatusCode, raw)
	}
	var sw struct {
		ID    string `json:"id"`
		Total int    `json:"total"`
	}
	if err := json.Unmarshal(raw, &sw); err != nil || sw.ID == "" {
		fail("sweep response: %v\n%s", err, raw)
	}

	sresp, err := hc.Get(base + "/v1/sweeps/" + sw.ID + "/events")
	if err != nil {
		fail("GET sweep events: %v", err)
	}
	defer sresp.Body.Close()
	if ct := sresp.Header.Get("Content-Type"); ct != "text/event-stream" {
		fail("sweep events content type %q", ct)
	}
	var runID string
	runs := 0
	event, data := "", ""
	sc := bufio.NewScanner(sresp.Body)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			data = strings.TrimPrefix(line, "data: ")
		case strings.HasPrefix(line, ":"): // heartbeat comment
		case line == "" && event != "":
			switch event {
			case "run":
				runs++
				var re struct {
					ID     string `json:"id"`
					Status string `json:"status"`
				}
				if err := json.Unmarshal([]byte(data), &re); err != nil || re.ID == "" {
					fail("bad run event %q: %v", data, err)
				}
				if re.Status == "done" {
					runID = re.ID
				}
			case "summary":
				var sum struct {
					Status    string `json:"status"`
					Total     int    `json:"total"`
					Completed int    `json:"completed"`
				}
				if err := json.Unmarshal([]byte(data), &sum); err != nil {
					fail("bad summary event %q: %v", data, err)
				}
				if sum.Completed != sum.Total || sum.Total != sw.Total {
					fail("summary %s does not cover the sweep (%d jobs)", data, sw.Total)
				}
				if runs == 0 {
					fail("summary arrived before any run event")
				}
				if runID == "" {
					fail("no run completed successfully: %s", data)
				}
				return runID
			}
			event, data = "", ""
		}
	}
	fail("sweep event stream ended without a summary (read %d run events): %v", runs, sc.Err())
	return ""
}

func checkTrace(hc *http.Client, base, runID string) {
	type node struct {
		Name     string  `json:"name"`
		StartUS  int64   `json:"start_us"`
		DurUS    int64   `json:"dur_us"`
		Children []*node `json:"children"`
	}
	var tr struct {
		ID   string `json:"id"`
		Root *node  `json:"root"`
	}
	if code := getJSON(hc, base+"/v1/runs/"+runID+"/trace", &tr); code != http.StatusOK {
		fail("GET run trace: HTTP %d", code)
	}
	if tr.Root == nil || tr.Root.Name != "run" || len(tr.Root.Children) < 2 {
		fail("trace root malformed: %+v", tr.Root)
	}
	cursor := tr.Root.StartUS
	for _, c := range tr.Root.Children {
		if c.StartUS != cursor {
			fail("span %q starts at %dus, previous ended at %dus (gap/overlap)", c.Name, c.StartUS, cursor)
		}
		cursor = c.StartUS + c.DurUS
	}
	if end := tr.Root.StartUS + tr.Root.DurUS; cursor != end {
		fail("child spans end at %dus but the run span ends at %dus", cursor, end)
	}

	var doc struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if code := getJSON(hc, base+"/v1/runs/"+runID+"/trace?format=perfetto", &doc); code != http.StatusOK {
		fail("GET perfetto trace: HTTP %d", code)
	}
	if len(doc.TraceEvents) == 0 {
		fail("perfetto export has no events")
	}
}

// checkProm fetches the Prometheus exposition and applies a small strict
// parser: every sample belongs to a family declared by a preceding TYPE
// line, series are unique, histogram buckets are cumulative with
// strictly-increasing le ending at +Inf, and _count equals the +Inf
// bucket.
func checkProm(hc *http.Client, base string) {
	resp, err := hc.Get(base + "/metricsz?format=prom")
	if err != nil {
		fail("GET prom metrics: %v", err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		fail("prom content type %q", ct)
	}

	type bucket struct {
		le  float64
		inf bool
		val uint64
	}
	type family struct {
		kind    string
		buckets []bucket
		sum     bool
		count   uint64
		hasCnt  bool
		samples int
	}
	families := map[string]*family{}
	series := map[string]bool{}
	lines := 0
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		lines++
		if strings.HasPrefix(line, "#") {
			f := strings.Fields(line)
			if len(f) != 4 || f[1] != "TYPE" {
				fail("bad comment line %q", line)
			}
			name, kind := f[2], f[3]
			if kind != "counter" && kind != "gauge" && kind != "histogram" {
				fail("unknown TYPE %q for %s", kind, name)
			}
			if families[name] != nil {
				fail("duplicate TYPE for %s", name)
			}
			families[name] = &family{kind: kind}
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			fail("bad sample line %q", line)
		}
		key, valStr := line[:sp], line[sp+1:]
		val, err := strconv.ParseUint(valStr, 10, 64)
		if err != nil {
			fail("bad sample value in %q: %v", line, err)
		}
		if series[key] {
			fail("duplicate series %q", key)
		}
		series[key] = true
		name := key
		var label string
		if i := strings.IndexByte(key, '{'); i >= 0 {
			if !strings.HasSuffix(key, "}") {
				fail("unterminated labels in %q", line)
			}
			name, label = key[:i], key[i+1:len(key)-1]
		}
		// Resolve the family: histogram samples use _bucket/_sum/_count
		// suffixes on the declared name.
		famName, suffix := name, ""
		for _, sfx := range []string{"_bucket", "_sum", "_count"} {
			if strings.HasSuffix(name, sfx) {
				if f := families[strings.TrimSuffix(name, sfx)]; f != nil && f.kind == "histogram" {
					famName, suffix = strings.TrimSuffix(name, sfx), sfx
				}
			}
		}
		fam := families[famName]
		if fam == nil {
			fail("sample %q has no preceding TYPE line", line)
		}
		fam.samples++
		if fam.kind != "histogram" {
			if label != "" {
				fail("unexpected labels on %s sample %q", fam.kind, line)
			}
			continue
		}
		switch suffix {
		case "_bucket":
			const pre = `le="`
			if !strings.HasPrefix(label, pre) || !strings.HasSuffix(label, `"`) {
				fail("histogram bucket without le label: %q", line)
			}
			leStr := label[len(pre) : len(label)-1]
			b := bucket{val: val, inf: leStr == "+Inf"}
			if !b.inf {
				if b.le, err = strconv.ParseFloat(leStr, 64); err != nil {
					fail("bad le %q in %q", leStr, line)
				}
			}
			fam.buckets = append(fam.buckets, b)
		case "_sum":
			fam.sum = true
		case "_count":
			fam.count, fam.hasCnt = val, true
		default:
			fail("stray sample %q inside histogram family %s", line, famName)
		}
	}
	if err := sc.Err(); err != nil {
		fail("reading prom body: %v", err)
	}
	if lines == 0 {
		fail("prom exposition is empty")
	}

	for name, fam := range families {
		if fam.samples == 0 {
			fail("family %s declared but has no samples", name)
		}
		if fam.kind != "histogram" {
			continue
		}
		if len(fam.buckets) < 2 || !fam.sum || !fam.hasCnt {
			fail("histogram %s incomplete (%d buckets, sum %v, count %v)",
				name, len(fam.buckets), fam.sum, fam.hasCnt)
		}
		for i, b := range fam.buckets {
			last := i == len(fam.buckets)-1
			if b.inf != last {
				fail("histogram %s: +Inf bucket must be last", name)
			}
			if i > 0 {
				prev := fam.buckets[i-1]
				if !last && b.le <= prev.le {
					fail("histogram %s: le not increasing at bucket %d", name, i)
				}
				if b.val < prev.val {
					fail("histogram %s: buckets not cumulative at le index %d", name, i)
				}
			}
		}
		if inf := fam.buckets[len(fam.buckets)-1].val; fam.count != inf {
			fail("histogram %s: _count %d != +Inf bucket %d", name, fam.count, inf)
		}
	}

	// The frozen names this PR promises must be present.
	for _, want := range []string{
		"regless_serve_span_queue_us", "regless_serve_span_store_get_us",
		"regless_serve_span_simulate_us", "regless_serve_span_assemble_us",
		"regless_serve_span_store_put_us", "regless_serve_http_us",
	} {
		if f := families[want]; f == nil || f.kind != "histogram" {
			fail("missing span histogram %s", want)
		}
	}
	for _, want := range []string{"regless_serve_submissions_total", "regless_store_puts"} {
		if families[want] == nil {
			fail("missing family %s", want)
		}
	}
}

// checkMetricsStream waits for one live metrics window over SSE (windows
// close every MetricsEvery, 1s by default, so this is quick).
func checkMetricsStream(hc *http.Client, base string) {
	resp, err := hc.Get(base + "/v1/metricsz/stream")
	if err != nil {
		fail("GET metrics stream: %v", err)
	}
	defer resp.Body.Close()
	deadline := time.Now().Add(30 * time.Second)
	event := ""
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		if time.Now().After(deadline) {
			break
		}
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: ") && event == "window":
			var win struct {
				Window *int `json:"window"`
			}
			if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &win); err != nil || win.Window == nil {
				fail("bad window frame %q: %v", line, err)
			}
			return
		}
	}
	fail("no window event arrived on /v1/metricsz/stream: %v", sc.Err())
}
