#!/bin/sh
# Tier-2 verification: vet plus the full test suite under the race
# detector. The concurrency in the experiment engine (singleflight run
# cache, worker-pool planner, kernel/compile caches) is only meaningfully
# exercised with -race, so this runs alongside the tier-1
# `go build ./... && go test ./...` gate. A coverage floor over the
# simulation core (scripts/cover.sh) rides along.
set -eux
cd "$(dirname "$0")/.."
go vet ./...
go test -race ./...
scripts/cover.sh

# Trace-schema smoke test: a small traced run must produce a Perfetto
# trace that validates and a stall report that tiles (no WARNING line).
tracedir="$(mktemp -d)"
trap 'rm -rf "$tracedir"' EXIT
go run ./cmd/regless -bench nw -scheme regless -warps 8 \
	-trace "$tracedir/trace.json" -trace-report > "$tracedir/report.txt"
go run ./scripts/tracecheck "$tracedir/trace.json"
grep -q "stall attribution" "$tracedir/report.txt"
! grep -q "WARNING" "$tracedir/report.txt"
