#!/bin/sh
# Tier-2 verification: vet plus the full test suite under the race
# detector. The concurrency in the experiment engine (singleflight run
# cache, worker-pool planner, kernel/compile caches) is only meaningfully
# exercised with -race, so this runs alongside the tier-1
# `go build ./... && go test ./...` gate. A coverage floor over the
# simulation core (scripts/cover.sh) rides along.
set -eux
cd "$(dirname "$0")/.."
go vet ./...
go test -race ./...
scripts/cover.sh

# Fast-forward differential smoke: the cycle-skip fast-forward must be
# invisible in the output — a run with -no-fastforward (stepping every
# cycle) must print byte-identical tables. The Quick-scale suite-wide
# version of this check (tables, metrics JSONL, per-run stats) runs as
# TestFastForwardDifferential in the race gate above; this pins the CLI
# wiring end to end.
ffa="$(go run ./cmd/regless -bench nw -scheme regless -warps 8)"
ffb="$(go run ./cmd/regless -bench nw -scheme regless -warps 8 -no-fastforward)"
test "$ffa" = "$ffb"

# Multi-SM smoke: a 4-SM chip run of Figure 14 must reproduce the
# committed golden byte for byte (lockstep determinism + the banked-L2
# path), and the single-SM suite must be oblivious to the -sms flag.
smsout="$(go run ./cmd/regless -sms 4 -experiment fig14 -warps 16)"
test "$smsout" = "$(cat scripts/golden/sms4_fig14_warps16.txt)"
sms1a="$(go run ./cmd/regless -experiment fig14 -warps 16)"
sms1b="$(go run ./cmd/regless -sms 1 -experiment fig14 -warps 16)"
test "$sms1a" = "$sms1b"

# Trace-schema smoke test: a small traced run must produce a Perfetto
# trace that validates and a stall report that tiles (no WARNING line).
tracedir="$(mktemp -d)"
trap 'rm -rf "$tracedir"' EXIT
go run ./cmd/regless -bench nw -scheme regless -warps 8 \
	-trace "$tracedir/trace.json" -trace-report > "$tracedir/report.txt"
go run ./scripts/tracecheck "$tracedir/trace.json"
grep -q "stall attribution" "$tracedir/report.txt"
! grep -q "WARNING" "$tracedir/report.txt"

# Fault-injection smoke suite (DESIGN.md §11): every class must be
# tolerated (exit 0) or detected with a diagnostic naming a component
# (exit 1 + bundle) — never a hang (the watchdog bounds the run) and
# never a raw panic.
go build -o "$tracedir/regless" ./cmd/regless
for class in mem-delay mem-drop osu-tag osu-state compress-pattern meta-bank meta-erase; do
	rc=0
	"$tracedir/regless" -bench nw -scheme regless -warps 8 \
		-faults "${class}@200; seed=3" -sanitize -watchdog 20000 \
		-diag-out "$tracedir/diag-${class}.json" \
		> "$tracedir/out-${class}.txt" 2> "$tracedir/err-${class}.txt" || rc=$?
	! grep -q "panic:" "$tracedir/err-${class}.txt"
	case "$rc" in
	0) ;; # tolerated
	1)
		grep -q "^component  " "$tracedir/err-${class}.txt"
		grep -q '"component"' "$tracedir/diag-${class}.json"
		;;
	*)
		echo "fault smoke: $class exited $rc" >&2
		exit 1
		;;
	esac
done
# A pinned detection: a corrupted OSU tag must be caught by the OSU
# partition invariant, not merely time out.
rc=0
"$tracedir/regless" -bench nw -scheme regless -warps 8 \
	-faults "osu-tag@200; seed=3" -sanitize -watchdog 20000 \
	2> "$tracedir/err-pinned.txt" > /dev/null || rc=$?
test "$rc" = 1
grep -q "component  osu/" "$tracedir/err-pinned.txt"

# Sweep-service smoke (DESIGN.md §14): start `regless serve` on an
# ephemeral port over a fresh store, render a cold sweep table (all
# misses), restart the server over the same store directory, and require
# the warm pass (served from disk) to be byte-identical to both the cold
# pass and the committed golden. The load generator then hammers the
# warm server, and shutdown must be clean on SIGTERM. The full 2000-
# request soak runs in the race gate above; the reduced soak here pins
# the env knob CI uses.
go build -o "$tracedir/reglessload" ./cmd/reglessload
start_serve() {
	rm -f "$tracedir/addr"
	"$tracedir/regless" serve -addr 127.0.0.1:0 -addr-file "$tracedir/addr" \
		-store "$tracedir/store" -warps 8 2>> "$tracedir/serve-log.txt" &
	servepid=$!
	i=0
	while [ ! -s "$tracedir/addr" ]; do
		i=$((i + 1))
		test "$i" -le 100
		sleep 0.1
	done
	serveaddr="http://$(cat "$tracedir/addr")"
}
start_serve
"$tracedir/reglessload" -addr "$serveaddr" -wait-ready 10s -table \
	-benchmarks nw -schemes baseline,regless > "$tracedir/serve-cold.txt"
kill -TERM "$servepid"
wait "$servepid"
start_serve
"$tracedir/reglessload" -addr "$serveaddr" -wait-ready 10s -table \
	-benchmarks nw -schemes baseline,regless > "$tracedir/serve-warm.txt"
cmp "$tracedir/serve-cold.txt" "$tracedir/serve-warm.txt"
cmp "$tracedir/serve-cold.txt" scripts/golden/serve_nw_warps8.txt
"$tracedir/reglessload" -addr "$serveaddr" -requests 200 -clients 8 \
	-benchmarks nw -schemes baseline,regless > "$tracedir/serve-load.txt"
grep -q "request latency" "$tracedir/serve-load.txt"

# Observability smoke (DESIGN.md §15): against the still-warm server,
# follow a sweep over SSE to its summary event, fetch a run trace and
# check its spans tile, and strict-parse the Prometheus exposition
# (unique series, monotone cumulative buckets, frozen span-histogram
# names) plus one live metrics window.
go run ./scripts/obscheck -addr "$serveaddr"
kill -TERM "$servepid"
wait "$servepid"
test "$(grep -c "shut down cleanly" "$tracedir/serve-log.txt")" = 2
REGLESS_SOAK_REQUESTS=250 go test -race -count=1 -run TestServeSoak ./internal/serve

# Lifecycle smoke (DESIGN.md §16): lifecheck owns its own server with a
# tiny -store-max-bytes, SIGTERMs it with a sweep still in flight, and
# verifies the shutdown contract — exit 0, a drain report, no orphaned
# tmp files, the byte budget honored on disk, and a healthy warm restart
# that serves a run. The chaos drain soak then runs every serve fault
# class against a live server under -race at a pinned request count,
# with a mid-soak drain.
go run ./scripts/lifecheck -bin "$tracedir/regless"
REGLESS_CHAOS_REQUESTS=160 go test -race -count=1 -run TestServeChaosDrainSoak ./internal/serve
