#!/bin/sh
# Record a performance snapshot of the full experiment suite.
#
# Runs every paper table/figure through the parallel run planner and
# writes a BENCH_<utc-timestamp>.json record (wall-clock seconds, total
# simulated cycles, simcycles/s) to the repo root, so suite throughput
# can be compared across PRs. A CPU profile of the same run is captured
# next to it (BENCH_<utc-timestamp>.cpu.pprof; inspect with
# `go tool pprof`) so regressions come with their own flame graph.
#
# Usage: scripts/bench.sh [extra cmd/regless flags, e.g. -parallel 4]
set -eu
cd "$(dirname "$0")/.."
stamp="$(date -u +%Y%m%dT%H%M%SZ)"
out="BENCH_${stamp}.json"
prof="BENCH_${stamp}.cpu.pprof"
sha="$(git rev-parse --short=12 HEAD 2>/dev/null || true)"
prev="$(ls BENCH_*.json 2>/dev/null | sort | tail -n 1 || true)"
go run ./cmd/regless -experiment all -json -cpuprofile "$prof" \
	-snapshot-sha "$sha" "$@" | tee "$out"
# The snapshot itself stamps go_version and gomaxprocs; surface the
# toolchain here too so a log line is enough to attribute a rate shift.
echo "bench: $(go version)" >&2
echo "wrote $out and $prof" >&2

# Throughput regression gate against the previous snapshot: the cycle
# kernel is the product here, so a drop below 90% of the prior record
# fails the script outright. The fast-forward counters are stamped into
# the summary so a rate jump can be attributed (more skipping) or ruled
# out (same skipping, genuinely faster stepping).
if [ -n "$prev" ] && [ "$prev" != "$out" ]; then
	awk -v prevfile="$prev" -v outfile="$out" '
		function field(f, name,   line, parts, v, r, pat) {
			pat = "\"" name "\""
			while ((getline line < f) > 0)
				if (index(line, pat)) {
					split(line, parts, ":")
					v = parts[2]
					gsub(/[^0-9.eE+-]/, "", v)
					r = v + 0
				}
			close(f)
			return r
		}
		BEGIN {
			# Chip size is stamped into each snapshot; a 4-SM run is not
			# comparable to a 1-SM baseline, so the gate only fires when
			# both records simulated the same number of SMs (a missing
			# field in an old record reads as 0 and also skips).
			psms = field(prevfile, "sms")
			nsms = field(outfile, "sms")
			if (psms != nsms) {
				printf "bench: regression gate skipped (%d-SM snapshot vs %d-SM baseline %s)\n", nsms, psms, prevfile
				exit 0
			}
			p = field(prevfile, "simcycles_per_sec")
			n = field(outfile, "simcycles_per_sec")
			if (p <= 0 || n <= 0) { print "bench: regression gate skipped (missing rate)"; exit 0 }
			ratio = n / p
			printf "bench: %.3g simcycles/s vs %.3g in %s (ratio %.2f)\n", n, p, prevfile, ratio
			printf "bench: fast-forward skipped %d cycles over %d jumps\n", \
				field(outfile, "ff_skipped_cycles"), field(outfile, "ff_jumps")
			if (ratio < 0.90) {
				printf "bench: FAIL throughput fell below 90%% of %s\n", prevfile
				exit 1
			}
		}' >&2
fi
