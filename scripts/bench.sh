#!/bin/sh
# Record a performance snapshot of the full experiment suite.
#
# Runs every paper table/figure through the parallel run planner and
# writes a BENCH_<utc-timestamp>.json record (wall-clock seconds, total
# simulated cycles, simcycles/s) to the repo root, so suite throughput
# can be compared across PRs.
#
# Usage: scripts/bench.sh [extra cmd/regless flags, e.g. -parallel 4]
set -eu
cd "$(dirname "$0")/.."
out="BENCH_$(date -u +%Y%m%dT%H%M%SZ).json"
go run ./cmd/regless -experiment all -json "$@" | tee "$out"
echo "wrote $out" >&2
