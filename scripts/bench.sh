#!/bin/sh
# Record a performance snapshot of the full experiment suite.
#
# Runs every paper table/figure through the parallel run planner and
# writes a BENCH_<utc-timestamp>.json record (wall-clock seconds, total
# simulated cycles, simcycles/s) to the repo root, so suite throughput
# can be compared across PRs. A CPU profile of the same run is captured
# next to it (BENCH_<utc-timestamp>.cpu.pprof; inspect with
# `go tool pprof`) so regressions come with their own flame graph.
#
# Usage: scripts/bench.sh [extra cmd/regless flags, e.g. -parallel 4]
set -eu
cd "$(dirname "$0")/.."
stamp="$(date -u +%Y%m%dT%H%M%SZ)"
out="BENCH_${stamp}.json"
prof="BENCH_${stamp}.cpu.pprof"
sha="$(git rev-parse --short=12 HEAD 2>/dev/null || true)"
go run ./cmd/regless -experiment all -json -cpuprofile "$prof" \
	-snapshot-sha "$sha" "$@" | tee "$out"
echo "wrote $out and $prof" >&2
