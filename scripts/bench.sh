#!/bin/sh
# Record a performance snapshot of the full experiment suite.
#
# Runs every paper table/figure through the parallel run planner and
# writes a BENCH_<utc-timestamp>.json record (wall-clock seconds, total
# simulated cycles, simcycles/s) to the repo root, so suite throughput
# can be compared across PRs. A CPU profile of the same run is captured
# next to it (BENCH_<utc-timestamp>.cpu.pprof; inspect with
# `go tool pprof`) so regressions come with their own flame graph.
#
# Usage: scripts/bench.sh [extra cmd/regless flags, e.g. -parallel 4]
set -eu
cd "$(dirname "$0")/.."
stamp="$(date -u +%Y%m%dT%H%M%SZ)"
out="BENCH_${stamp}.json"
prof="BENCH_${stamp}.cpu.pprof"
sha="$(git rev-parse --short=12 HEAD 2>/dev/null || true)"
prev="$(ls BENCH_*.json 2>/dev/null | sort | tail -n 1 || true)"
go run ./cmd/regless -experiment all -json -cpuprofile "$prof" \
	-snapshot-sha "$sha" "$@" | tee "$out"
echo "wrote $out and $prof" >&2

# Throughput parity against the previous snapshot: the robustness
# instrumentation (sanitizer, fault injector, watchdog) is disabled by
# default, so its cost on this path must be nil-check noise. Warn loudly
# when simcycles/s falls below 85% of the prior record (wall-clock noise
# on shared machines makes a hard failure too flaky).
if [ -n "$prev" ] && [ "$prev" != "$out" ]; then
	awk -v prevfile="$prev" -v outfile="$out" '
		function rate(f,   line, parts, v, r) {
			while ((getline line < f) > 0)
				if (line ~ /"simcycles_per_sec"/) {
					split(line, parts, ":")
					v = parts[2]
					gsub(/[^0-9.eE+-]/, "", v)
					r = v + 0
				}
			close(f)
			return r
		}
		BEGIN {
			p = rate(prevfile); n = rate(outfile)
			if (p <= 0 || n <= 0) { print "bench: parity check skipped (missing rate)"; exit 0 }
			ratio = n / p
			printf "bench: %.3g simcycles/s vs %.3g in %s (ratio %.2f)\n", n, p, prevfile, ratio
			if (ratio < 0.85) {
				printf "bench: WARNING throughput fell below 85%% of %s\n", prevfile
				exit 1
			}
		}' >&2 || echo "bench: throughput parity WARNING (see above)" >&2
fi
