#!/bin/sh
# Coverage floor over the simulation core. Runs the internal packages
# with a merged statement-coverage profile and fails if total coverage
# drops below the floor — a ratchet against landing untested subsystems.
#
# The floor sits well under the measured level (~89% at the time this
# was set) so routine churn never trips it; only a genuinely untested
# addition does. Raise the floor when coverage durably improves.
#
# Usage: scripts/cover.sh [floor-percent]
set -eu
cd "$(dirname "$0")/.."
floor="${1:-80}"
profile="$(mktemp)"
trap 'rm -f "$profile"' EXIT
go test -count=1 -coverprofile="$profile" ./internal/... > /dev/null
total="$(go tool cover -func="$profile" | awk '/^total:/ {sub(/%/, "", $NF); print $NF}')"
echo "coverage: ${total}% of statements in internal/... (floor ${floor}%)"
awk -v t="$total" -v f="$floor" 'BEGIN { exit (t+0 >= f+0) ? 0 : 1 }' || {
	echo "coverage ${total}% is below the ${floor}% floor" >&2
	exit 1
}
