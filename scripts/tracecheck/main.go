// Command tracecheck validates a Chrome trace-event JSON file produced
// by `regless -trace`: the file must parse, carry the run's metadata,
// and contain at least one complete ("X") span with a duration —
// the minimum for Perfetto to render something useful. scripts/check.sh
// runs it as the trace-schema smoke test.
//
// Usage: go run ./scripts/tracecheck FILE
package main

import (
	"encoding/json"
	"fmt"
	"os"
)

type traceFile struct {
	DisplayTimeUnit string `json:"displayTimeUnit"`
	OtherData       struct {
		Bench  string `json:"bench"`
		Scheme string `json:"scheme"`
		Cycles uint64 `json:"cycles"`
	} `json:"otherData"`
	TraceEvents []struct {
		Name string  `json:"name"`
		Ph   string  `json:"ph"`
		Ts   float64 `json:"ts"`
		Dur  float64 `json:"dur"`
		Pid  int     `json:"pid"`
	} `json:"traceEvents"`
}

func main() {
	if len(os.Args) != 2 {
		fmt.Fprintln(os.Stderr, "usage: tracecheck FILE")
		os.Exit(2)
	}
	data, err := os.ReadFile(os.Args[1])
	fatal(err)
	var tf traceFile
	fatal(json.Unmarshal(data, &tf))

	if tf.OtherData.Bench == "" || tf.OtherData.Scheme == "" {
		die("otherData missing bench/scheme: %+v", tf.OtherData)
	}
	if len(tf.TraceEvents) == 0 {
		die("no trace events")
	}
	var spans, counters, metas int
	for _, ev := range tf.TraceEvents {
		switch ev.Ph {
		case "X":
			if ev.Name == "" {
				die("X event without a name at ts %v", ev.Ts)
			}
			if ev.Dur < 1 {
				die("X event %q has dur %v < 1", ev.Name, ev.Dur)
			}
			spans++
		case "C":
			counters++
		case "M":
			metas++
		case "i":
		default:
			die("unknown phase %q on event %q", ev.Ph, ev.Name)
		}
	}
	if spans == 0 {
		die("no complete (X) spans")
	}
	if metas == 0 {
		die("no metadata (M) events: tracks would be unnamed")
	}
	fmt.Printf("tracecheck: %s ok — %d events (%d spans, %d counter samples) for %s/%s\n",
		os.Args[1], len(tf.TraceEvents), spans, counters, tf.OtherData.Bench, tf.OtherData.Scheme)
}

func die(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "tracecheck: "+format+"\n", args...)
	os.Exit(1)
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracecheck:", err)
		os.Exit(1)
	}
}
