// Command lifecheck is the service-lifecycle smoke checker scripts/
// check.sh runs. It owns the whole server lifecycle (unlike obscheck,
// which checks a server someone else started): it boots `regless serve`
// with a tiny store budget, submits a sweep, SIGTERMs the server while
// that work is still in flight, and then verifies the shutdown contract
// of DESIGN.md §16:
//
//   - the process exits 0 (a deliberate stop is not an error) and logs
//     its drain report and the "shut down cleanly" line
//   - the store's tmp/ directory holds no orphaned partial files
//   - the on-disk entry bytes respect -store-max-bytes
//   - a warm restart over the same store comes up healthy and serves
//     a run to completion, then shuts down just as cleanly
//
// Usage: lifecheck -bin ./regless [-budget 2048]
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"time"
)

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "lifecheck: "+format+"\n", args...)
	os.Exit(1)
}

func main() {
	bin := flag.String("bin", "", "path to the regless binary (required)")
	budget := flag.Int64("budget", 2048, "store byte budget passed as -store-max-bytes")
	flag.Parse()
	if *bin == "" {
		fail("-bin is required")
	}

	dir, err := os.MkdirTemp("", "lifecheck-*")
	if err != nil {
		fail("%v", err)
	}
	defer os.RemoveAll(dir)
	storeDir := filepath.Join(dir, "store")
	logPath := filepath.Join(dir, "serve-log.txt")

	// Pass 1: boot, put work in flight, SIGTERM mid-flight.
	srv := startServe(*bin, dir, storeDir, logPath, *budget)
	submitSweepAsync(srv.base)
	stopServe(srv)

	log := readLog(logPath)
	if !strings.Contains(log, "regless: drain:") {
		fail("pass 1: no drain report in the serve log:\n%s", log)
	}
	if strings.Count(log, "shut down cleanly") != 1 {
		fail("pass 1: missing clean-shutdown line:\n%s", log)
	}
	checkStore(storeDir, *budget)

	// Pass 2: warm restart over the same store must come up healthy,
	// serve a run, and shut down just as cleanly.
	srv = startServe(*bin, dir, storeDir, logPath, *budget)
	checkHealthOK(srv.base)
	checkRunCompletes(srv.base)
	stopServe(srv)

	if strings.Count(readLog(logPath), "shut down cleanly") != 2 {
		fail("pass 2: missing clean-shutdown line:\n%s", readLog(logPath))
	}
	checkStore(storeDir, *budget)
	fmt.Println("lifecheck: ok")
}

type serveProc struct {
	cmd  *exec.Cmd
	base string
}

// startServe boots the server on an ephemeral port and waits for its
// address file. The short -drain-timeout keeps the smoke fast even if a
// drained job wedges; the budget forces eviction churn on a store this
// small.
func startServe(bin, dir, storeDir, logPath string, budget int64) *serveProc {
	addrFile := filepath.Join(dir, "addr")
	os.Remove(addrFile)
	logf, err := os.OpenFile(logPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		fail("%v", err)
	}
	defer logf.Close()
	cmd := exec.Command(bin, "serve",
		"-addr", "127.0.0.1:0", "-addr-file", addrFile,
		"-store", storeDir, "-warps", "8",
		"-store-max-bytes", fmt.Sprint(budget),
		"-drain-timeout", "60s", "-request-timeout", "5m")
	cmd.Stderr = logf
	if err := cmd.Start(); err != nil {
		fail("start serve: %v", err)
	}
	for i := 0; ; i++ {
		raw, err := os.ReadFile(addrFile)
		if err == nil && len(raw) > 0 {
			return &serveProc{cmd: cmd, base: "http://" + string(raw)}
		}
		if i > 200 {
			cmd.Process.Kill()
			fail("server never wrote %s", addrFile)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// submitSweepAsync puts real work in flight without waiting for it: the
// SIGTERM that follows lands while these runs are queued or simulating.
func submitSweepAsync(base string) {
	body := strings.NewReader(`{"benchmarks":["nw","bfs"],"schemes":["baseline","regless"]}`)
	resp, err := http.Post(base+"/v1/sweeps", "application/json", body)
	if err != nil {
		fail("POST /v1/sweeps: %v", err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
		fail("POST /v1/sweeps: %s: %s", resp.Status, raw)
	}
}

// stopServe delivers SIGTERM and requires exit code 0: a deliberate stop
// with work in flight is a graceful drain, not a crash.
func stopServe(s *serveProc) {
	if err := s.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		fail("signal: %v", err)
	}
	if err := s.cmd.Wait(); err != nil {
		fail("server exited nonzero after SIGTERM: %v", err)
	}
}

func readLog(path string) string {
	raw, err := os.ReadFile(path)
	if err != nil {
		fail("%v", err)
	}
	return string(raw)
}

// checkStore walks the store directory after shutdown: tmp/ must be
// empty (no orphaned partial writes) and the entry files — everything
// outside tmp/ and quarantine/ that is not an .atime sidecar — must fit
// the byte budget the server was given.
func checkStore(storeDir string, budget int64) {
	temps, err := os.ReadDir(filepath.Join(storeDir, "tmp"))
	if err != nil {
		fail("store tmp dir: %v", err)
	}
	if len(temps) > 0 {
		fail("store left %d orphaned tmp files (%s ...)", len(temps), temps[0].Name())
	}
	var total int64
	shards, err := os.ReadDir(storeDir)
	if err != nil {
		fail("store dir: %v", err)
	}
	for _, sh := range shards {
		if !sh.IsDir() || sh.Name() == "tmp" || sh.Name() == "quarantine" {
			continue
		}
		files, err := os.ReadDir(filepath.Join(storeDir, sh.Name()))
		if err != nil {
			fail("store shard %s: %v", sh.Name(), err)
		}
		for _, f := range files {
			if strings.HasSuffix(f.Name(), ".atime") {
				continue
			}
			fi, err := f.Info()
			if err != nil {
				continue
			}
			total += fi.Size()
		}
	}
	if total > budget {
		fail("store holds %d entry bytes, budget is %d", total, budget)
	}
}

func checkHealthOK(base string) {
	resp, err := http.Get(base + "/healthz")
	if err != nil {
		fail("GET /healthz: %v", err)
	}
	defer resp.Body.Close()
	var h struct {
		Status string `json:"status"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		fail("healthz: %v", err)
	}
	if resp.StatusCode != http.StatusOK || h.Status != "ok" {
		fail("warm restart healthz: HTTP %d status %q", resp.StatusCode, h.Status)
	}
}

// checkRunCompletes serves one run to completion on the warm server: the
// restarted process must be fully operational over the drained store.
func checkRunCompletes(base string) {
	body := bytes.NewReader([]byte(`{"bench":"nw","scheme":"regless"}`))
	resp, err := http.Post(base+"/v1/runs?wait=1", "application/json", body)
	if err != nil {
		fail("POST /v1/runs: %v", err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		fail("POST /v1/runs: %s: %s", resp.Status, raw)
	}
	var st struct {
		Status string          `json:"status"`
		Result json.RawMessage `json:"result"`
		Error  string          `json:"error"`
	}
	if err := json.Unmarshal(raw, &st); err != nil {
		fail("run status: %v", err)
	}
	if st.Status != "done" || len(st.Result) == 0 {
		fail("warm run finished %q (%s)", st.Status, st.Error)
	}
}
