// Benchmarks: one testing.B target per paper table/figure (regenerating
// the same rows the experiment runners print, at reduced scale so the
// suite completes quickly), plus microbenchmarks of the substrate
// (compiler, simulator, compressor, metadata encoder).
//
// Full-scale regeneration is `go run ./cmd/regless -experiment all`.
package repro_test

import (
	"testing"

	repro "repro"
	"repro/internal/compress"
	"repro/internal/experiments"
	"repro/internal/isa"
	"repro/internal/kernels"
	"repro/internal/metadata"
	"repro/internal/regions"
)

// benchOpts keeps per-iteration work modest: a 5-benchmark subset at 16
// warps still exercises every code path the figures need.
func benchOpts() experiments.Options {
	return experiments.Options{
		Warps:      16,
		Benchmarks: []string{"bfs", "hotspot", "lud", "dwt2d", "streamcluster"},
		MaxCycles:  20_000_000,
	}
}

// runExperiment is the shared driver: a fresh suite per iteration so the
// cost measured is the full regeneration, not a cache hit.
func runExperiment(b *testing.B, id string) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := experiments.NewSuite(benchOpts())
		fn, ok := experiments.ByID(id)
		if !ok {
			b.Fatalf("unknown experiment %s", id)
		}
		tb, err := fn(s)
		if err != nil {
			b.Fatal(err)
		}
		if len(tb.Rows) == 0 {
			b.Fatal("empty table")
		}
	}
}

// BenchmarkSuiteAll regenerates every paper table through the run
// planner (fresh suite per iteration, so kernel/compile caches are the
// only carry-over) and reports simulated cycles per second of wall
// clock — the engine's headline throughput number.
func BenchmarkSuiteAll(b *testing.B) {
	b.ReportAllocs()
	var cycles uint64
	for i := 0; i < b.N; i++ {
		s := experiments.NewSuite(benchOpts())
		tables, err := experiments.All(s)
		if err != nil {
			b.Fatal(err)
		}
		if len(tables) == 0 {
			b.Fatal("no tables")
		}
		for _, r := range s.CachedRuns() {
			cycles += r.Stats.Cycles
		}
	}
	b.ReportMetric(float64(cycles)/b.Elapsed().Seconds(), "simcycles/s")
}

func BenchmarkTable1Parameters(b *testing.B)    { runExperiment(b, "table1") }
func BenchmarkFig02WorkingSet(b *testing.B)     { runExperiment(b, "fig2") }
func BenchmarkFig03BackingStore(b *testing.B)   { runExperiment(b, "fig3") }
func BenchmarkFig05LiveRegisters(b *testing.B)  { runExperiment(b, "fig5") }
func BenchmarkFig11Area(b *testing.B)           { runExperiment(b, "fig11") }
func BenchmarkFig12Power(b *testing.B)          { runExperiment(b, "fig12") }
func BenchmarkFig13Pareto(b *testing.B)         { runExperiment(b, "fig13") }
func BenchmarkFig14RFEnergy(b *testing.B)       { runExperiment(b, "fig14") }
func BenchmarkFig15GPUEnergy(b *testing.B)      { runExperiment(b, "fig15") }
func BenchmarkFig16Runtime(b *testing.B)        { runExperiment(b, "fig16") }
func BenchmarkFig17PreloadSources(b *testing.B) { runExperiment(b, "fig17") }
func BenchmarkFig18L1Traffic(b *testing.B)      { runExperiment(b, "fig18") }
func BenchmarkFig19RegionRegs(b *testing.B)     { runExperiment(b, "fig19") }
func BenchmarkTable2RegionSizes(b *testing.B)   { runExperiment(b, "table2") }

// Extension experiments (beyond the paper's figures).
func BenchmarkAblations(b *testing.B)        { runExperiment(b, "ablation") }
func BenchmarkGPUScale(b *testing.B)         { runExperiment(b, "gpuscale") }
func BenchmarkOversubscription(b *testing.B) { runExperiment(b, "oversub") }
func BenchmarkEnergyBreakdown(b *testing.B)  { runExperiment(b, "breakdown") }
func BenchmarkSensitivity(b *testing.B)      { runExperiment(b, "sensitivity") }

// --- substrate microbenchmarks ---

// BenchmarkSimBaseline measures raw simulation throughput under the
// baseline register file (reported as cycles simulated per second).
func BenchmarkSimBaseline(b *testing.B) {
	k := kernels.MustLoad("lud")
	b.ReportAllocs()
	var cycles uint64
	for i := 0; i < b.N; i++ {
		res, err := repro.Simulate(k, repro.Baseline, repro.SimOptions{Warps: 16})
		if err != nil {
			b.Fatal(err)
		}
		cycles += res.Cycles
	}
	b.ReportMetric(float64(cycles)/b.Elapsed().Seconds(), "simcycles/s")
}

// BenchmarkSimRegLess measures simulation throughput with the full
// RegLess machinery active.
func BenchmarkSimRegLess(b *testing.B) {
	k := kernels.MustLoad("lud")
	b.ReportAllocs()
	var cycles uint64
	for i := 0; i < b.N; i++ {
		res, err := repro.Simulate(k, repro.RegLess, repro.SimOptions{Warps: 16})
		if err != nil {
			b.Fatal(err)
		}
		cycles += res.Cycles
	}
	b.ReportMetric(float64(cycles)/b.Elapsed().Seconds(), "simcycles/s")
}

// BenchmarkCompile measures the RegLess compiler (liveness, Algorithm 2,
// region creation, annotation, metadata encoding).
func BenchmarkCompile(b *testing.B) {
	k := kernels.MustLoad("heartwall") // control-heavy: worst case
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c, err := regions.Compile(k, regions.DefaultConfig())
		if err != nil {
			b.Fatal(err)
		}
		if _, err := metadata.Apply(c); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCompressorMatch measures the pattern matcher on a mixed value
// population.
func BenchmarkCompressorMatch(b *testing.B) {
	var vals [4][isa.WarpWidth]uint32
	for i := 0; i < isa.WarpWidth; i++ {
		vals[0][i] = 42                         // const
		vals[1][i] = 100 + uint32(i)            // stride-1
		vals[2][i] = 0x1000 + 4*uint32(i)       // stride-4
		vals[3][i] = uint32(i*i)*2654435761 + 7 // incompressible
	}
	b.ResetTimer()
	hits := 0
	for i := 0; i < b.N; i++ {
		if compress.Match(&vals[i%4]) != compress.PatNone {
			hits++
		}
	}
	if hits == 0 {
		b.Fatal("no matches")
	}
}

// BenchmarkMetadataEncode measures the bit-level annotation encoder.
func BenchmarkMetadataEncode(b *testing.B) {
	k := kernels.MustLoad("lud")
	c, err := regions.Compile(k, regions.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	annos := make([]metadata.Annotations, 0, len(c.Regions))
	for _, r := range c.Regions {
		annos = append(annos, metadata.Build(c, r))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, a := range annos {
			if _, err := metadata.Encode(a); err != nil {
				b.Fatal(err)
			}
		}
	}
}
