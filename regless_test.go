package repro_test

import (
	"strings"
	"testing"

	repro "repro"
	"repro/internal/isa"
)

func TestBenchmarksList(t *testing.T) {
	names := repro.Benchmarks()
	if len(names) != 21 {
		t.Fatalf("benchmarks = %d, want 21", len(names))
	}
	for _, n := range names {
		k, err := repro.LoadBenchmark(n)
		if err != nil {
			t.Fatalf("%s: %v", n, err)
		}
		if k.Name != n {
			t.Fatalf("kernel name %q for benchmark %q", k.Name, n)
		}
	}
	if _, err := repro.LoadBenchmark("nonesuch"); err == nil {
		t.Fatal("LoadBenchmark accepted unknown name")
	}
}

func TestSimulateAllSchemes(t *testing.T) {
	k, err := repro.LoadBenchmark("streamcluster")
	if err != nil {
		t.Fatal(err)
	}
	opts := repro.SimOptions{Warps: 8, Capacity: 512}
	results := map[repro.Scheme]*repro.SimResult{}
	for _, sch := range []repro.Scheme{
		repro.Baseline, repro.RFV, repro.RFH, repro.RegLess, repro.RegLessNoCompressor,
	} {
		r, err := repro.Simulate(k, sch, opts)
		if err != nil {
			t.Fatalf("%s: %v", sch, err)
		}
		if r.Cycles == 0 || r.Instructions == 0 || r.Energy.Total <= 0 {
			t.Fatalf("%s: degenerate result %+v", sch, r)
		}
		results[sch] = r
	}
	// All schemes execute the same instruction stream.
	want := results[repro.Baseline].Instructions
	for sch, r := range results {
		if r.Instructions != want {
			t.Fatalf("%s executed %d instructions, baseline %d", sch, r.Instructions, want)
		}
	}
	// RegLess exposes its compiled regions; others don't.
	if results[repro.RegLess].Compiled == nil {
		t.Fatal("RegLess result missing compiled regions")
	}
	if results[repro.Baseline].Compiled != nil {
		t.Fatal("baseline result has compiled regions")
	}
	// Energy ordering.
	if results[repro.RegLess].Energy.RFTotal >= results[repro.Baseline].Energy.RFTotal {
		t.Fatal("RegLess register energy not below baseline")
	}
	if _, err := repro.Simulate(k, repro.Scheme("bogus"), opts); err == nil {
		t.Fatal("Simulate accepted unknown scheme")
	}
}

func TestBuilderRoundTrip(t *testing.T) {
	b := repro.NewKernelBuilder("api-demo", 4)
	tid := b.Tid()
	addr := b.OpImm(isa.OpSHLI, tid, 2)
	v := b.Ldg(addr, 0x100000)
	v2 := b.Addi(v, 1)
	b.Stg(addr, v2, 0x200000)
	b.Exit()
	virt, err := b.Kernel()
	if err != nil {
		t.Fatal(err)
	}
	k, err := repro.AllocateRegisters(virt)
	if err != nil {
		t.Fatal(err)
	}
	c, err := repro.CompileKernel(k, repro.DefaultCompilerConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Regions) < 2 {
		t.Fatalf("load/use split missing: %d regions", len(c.Regions))
	}
	res, err := repro.Simulate(k, repro.RegLess, repro.SimOptions{Warps: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles == 0 {
		t.Fatal("no cycles")
	}
}

func TestRunExperimentViaFacade(t *testing.T) {
	s := repro.NewExperimentSuite()
	s.Opts.Warps = 8
	s.Opts.Benchmarks = []string{"nw", "bfs"}
	tb, err := repro.RunExperiment(s, "fig19")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(tb.Render(), "FIG19") {
		t.Fatal("render missing header")
	}
	if _, err := repro.RunExperiment(s, "fig99"); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestCompilerConfigDefault(t *testing.T) {
	cfg := repro.DefaultCompilerConfig()
	if cfg.MaxRegsPerRegion <= 0 || cfg.BankLines <= 0 {
		t.Fatalf("bad default config %+v", cfg)
	}
}
