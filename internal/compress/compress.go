// Package compress implements the RegLess register compressor (paper
// §5.3): a pattern matcher over 32-lane register values, the
// compressed-register bit vector, and the small compressed-line cache that
// sits between the operand staging unit and the L1.
//
// The pattern set is deliberately simpler than general register file
// compression (Warped-Compression, G-Scalar): constants, stride-1,
// stride-4, and half-warp variants of the strides. A compressed register
// occupies 4 bytes (8 for half-warp patterns) plus 3 state bits, so 15
// compressed registers pack into one 128-byte cache line; compressed lines
// live in a memory space adjacent to the uncompressed register backing
// store.
package compress

import (
	"fmt"

	"repro/internal/isa"
	"repro/internal/mem"
)

// Pattern classifies a register value across lanes.
type Pattern uint8

const (
	// PatNone marks an incompressible value.
	PatNone Pattern = iota
	// PatConst: every lane holds the same value (4 B).
	PatConst
	// PatStride1: lane i holds base+i (4 B).
	PatStride1
	// PatStride4: lane i holds base+4i (4 B) — the address-arithmetic
	// pattern coalesced kernels produce constantly.
	PatStride4
	// PatHalfStride1: each half-warp is an independent stride-1 run (8 B).
	PatHalfStride1
	// PatHalfStride4: each half-warp is an independent stride-4 run (8 B).
	PatHalfStride4

	// NumPatterns counts the states (fits the paper's 3 bits/register).
	NumPatterns
)

// String names the pattern.
func (p Pattern) String() string {
	switch p {
	case PatConst:
		return "const"
	case PatStride1:
		return "stride1"
	case PatStride4:
		return "stride4"
	case PatHalfStride1:
		return "half-stride1"
	case PatHalfStride4:
		return "half-stride4"
	default:
		return "none"
	}
}

// Bytes returns the compressed size in bytes (0 for PatNone).
func (p Pattern) Bytes() int {
	switch p {
	case PatConst, PatStride1, PatStride4:
		return 4
	case PatHalfStride1, PatHalfStride4:
		return 8
	default:
		return 0
	}
}

// RegsPerLine is how many compressed registers fit in one 128 B cache
// line (the paper's figure: 8 B worst-case value + 3 state bits each).
const RegsPerLine = 15

// Match classifies a register's lane values.
func Match(v *[isa.WarpWidth]uint32) Pattern {
	if stride(v, 0, isa.WarpWidth, 0) {
		return PatConst
	}
	if stride(v, 0, isa.WarpWidth, 1) {
		return PatStride1
	}
	if stride(v, 0, isa.WarpWidth, 4) {
		return PatStride4
	}
	half := isa.WarpWidth / 2
	if stride(v, 0, half, 1) && stride(v, half, isa.WarpWidth, 1) {
		return PatHalfStride1
	}
	if stride(v, 0, half, 4) && stride(v, half, isa.WarpWidth, 4) {
		return PatHalfStride4
	}
	return PatNone
}

func stride(v *[isa.WarpWidth]uint32, lo, hi int, s uint32) bool {
	base := v[lo]
	for i := lo + 1; i < hi; i++ {
		if v[i] != base+uint32(i-lo)*s {
			return false
		}
	}
	return true
}

// PatternSet restricts which patterns the matcher may use (ablations).
type PatternSet uint8

const (
	// PatternsFull is the paper's set: const, stride-1/4, half-warp.
	PatternsFull PatternSet = iota
	// PatternsConstOnly matches only uniform (broadcast) values.
	PatternsConstOnly
	// PatternsFullWarpOnly drops the half-warp variants.
	PatternsFullWarpOnly
)

// Allowed reports whether the set permits a pattern.
func (ps PatternSet) Allowed(p Pattern) bool {
	switch ps {
	case PatternsConstOnly:
		return p == PatConst
	case PatternsFullWarpOnly:
		return p == PatConst || p == PatStride1 || p == PatStride4
	default:
		return p != PatNone
	}
}

// Config sizes the compressor.
type Config struct {
	// CacheLines is the internal compressed-line storage (Table 1:
	// 48 lines per SM = 12 per shard).
	CacheLines int
	// NumRegs and Warps size the bit vector and line mapping.
	NumRegs int
	Warps   int
	// Patterns restricts the matcher (PatternsFull by default).
	Patterns PatternSet
}

// Stats counts compressor events for the energy model.
type Stats struct {
	Matches      uint64 // pattern-match operations (eviction side)
	Hits         uint64 // compressible evictions
	Misses       uint64 // incompressible evictions
	BitChecks    uint64 // bit-vector lookups (preload side)
	CacheHits    uint64 // compressed-line cache hits
	CacheMisses  uint64
	LineFetches  uint64 // compressed lines fetched from L1
	LineEvicts   uint64 // dirty compressed lines written to L1
	Invalidation uint64 // compressed entries dropped by invalidations

	// PatHits breaks Hits down by matched pattern (PatHits[PatNone] stays
	// zero); the hit-mix figure reads these.
	PatHits [NumPatterns]uint64
}

// Compressor is one shard's compressor unit. It tracks which (warp,
// register) pairs currently hold a compressed backing copy and models the
// compressed-line cache; actual values stay in the functional state.
type Compressor struct {
	cfg   Config
	Stats Stats

	// compressed[index] == pattern (PatNone when not compressed); the
	// hardware's bit vector plus 3-bit state array.
	compressed []Pattern

	// cache of compressed lines: line id -> entry.
	cache map[uint32]*clineEntry
	clock uint64
}

type clineEntry struct {
	dirty bool
	lru   uint64
}

// New builds a compressor.
func New(cfg Config) *Compressor {
	return &Compressor{
		cfg:        cfg,
		compressed: make([]Pattern, cfg.NumRegs*cfg.Warps),
		cache:      make(map[uint32]*clineEntry),
	}
}

func (c *Compressor) index(warp int, reg isa.Reg) int {
	return warp*c.cfg.NumRegs + int(reg)
}

// LineID returns the compressed line holding (warp, reg).
func (c *Compressor) LineID(warp int, reg isa.Reg) uint32 {
	return uint32(c.index(warp, reg) / RegsPerLine)
}

// LineAddr returns the memory address of a compressed line.
func LineAddr(line uint32) uint32 {
	return mem.CompressedBase + line*mem.LineSize
}

// IsCompressed checks the bit vector (one preload-side check).
func (c *Compressor) IsCompressed(warp int, reg isa.Reg) bool {
	c.Stats.BitChecks++
	return c.compressed[c.index(warp, reg)] != PatNone
}

// Pattern returns the stored pattern without charging a check.
func (c *Compressor) Pattern(warp int, reg isa.Reg) Pattern {
	return c.compressed[c.index(warp, reg)]
}

// CacheResult describes a compressed-line cache access.
type CacheResult struct {
	Hit bool
	// FetchLine, when valid, is the line address to read from L1.
	FetchLine uint32
	HasFetch  bool
	// WritebackLine, when valid, is a dirty victim to write to L1.
	WritebackLine uint32
	HasWriteback  bool
}

// AccessLine touches (warp, reg)'s compressed line in the cache, marking
// it dirty for writes. On a miss the caller must fetch FetchLine from L1;
// a dirty victim's writeback is returned as well.
func (c *Compressor) AccessLine(warp int, reg isa.Reg, write bool) CacheResult {
	c.clock++
	line := c.LineID(warp, reg)
	if e, ok := c.cache[line]; ok {
		c.Stats.CacheHits++
		e.lru = c.clock
		if write {
			e.dirty = true
		}
		return CacheResult{Hit: true}
	}
	c.Stats.CacheMisses++
	res := CacheResult{FetchLine: LineAddr(line), HasFetch: true}
	if len(c.cache) >= c.cfg.CacheLines {
		// Evict LRU.
		var victim uint32
		var oldest uint64 = ^uint64(0)
		for l, e := range c.cache {
			if e.lru < oldest {
				oldest = e.lru
				victim = l
			}
		}
		if c.cache[victim].dirty {
			c.Stats.LineEvicts++
			res.WritebackLine = LineAddr(victim)
			res.HasWriteback = true
		}
		delete(c.cache, victim)
	}
	c.cache[line] = &clineEntry{dirty: write, lru: c.clock}
	if res.HasFetch {
		c.Stats.LineFetches++
	}
	return res
}

// TryCompress pattern-matches an evicted value; on success it records the
// register as compressed and returns (pattern, true). The caller then
// calls AccessLine(write=true) to account the line update.
func (c *Compressor) TryCompress(warp int, reg isa.Reg, v *[isa.WarpWidth]uint32) (Pattern, bool) {
	c.Stats.Matches++
	p := Match(v)
	if p != PatNone && !c.cfg.Patterns.Allowed(p) {
		p = PatNone
	}
	if p == PatNone {
		c.Stats.Misses++
		c.compressed[c.index(warp, reg)] = PatNone
		return PatNone, false
	}
	c.Stats.Hits++
	c.Stats.PatHits[p]++
	c.compressed[c.index(warp, reg)] = p
	return p, true
}

// Drop removes a compressed entry (invalidating read or cache
// invalidation of a compressed register). It reports whether the register
// was compressed — if so, no L1 traffic is needed for the invalidation.
func (c *Compressor) Drop(warp int, reg isa.Reg) bool {
	i := c.index(warp, reg)
	if c.compressed[i] == PatNone {
		return false
	}
	c.compressed[i] = PatNone
	c.Stats.Invalidation++
	return true
}

// CorruptPattern flips one entry of the pattern bit vector (fault
// injection: a compressed register loses its mark, or an uncompressed
// one gains a spurious PatConst). Values live in the functional state,
// so the corruption perturbs only preload routing and timing — the
// RegLess transparency guarantee must tolerate it. Returns a description
// of what flipped.
func (c *Compressor) CorruptPattern(pick int) string {
	i := pick % len(c.compressed)
	old := c.compressed[i]
	if old == PatNone {
		c.compressed[i] = PatConst
	} else {
		c.compressed[i] = PatNone
	}
	warp := i / c.cfg.NumRegs
	reg := i % c.cfg.NumRegs
	return fmt.Sprintf("bit-vector w%d r%d %v -> %v", warp, reg, old, c.compressed[i])
}

// CompressedCount returns the live compressed-register population (tests).
func (c *Compressor) CompressedCount() int {
	n := 0
	for _, p := range c.compressed {
		if p != PatNone {
			n++
		}
	}
	return n
}
