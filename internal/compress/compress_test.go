package compress

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/isa"
)

func lanes(f func(i int) uint32) *[isa.WarpWidth]uint32 {
	var v [isa.WarpWidth]uint32
	for i := range v {
		v[i] = f(i)
	}
	return &v
}

func TestMatchPatterns(t *testing.T) {
	cases := []struct {
		name string
		v    *[isa.WarpWidth]uint32
		want Pattern
	}{
		{"const", lanes(func(i int) uint32 { return 42 }), PatConst},
		{"stride1", lanes(func(i int) uint32 { return 100 + uint32(i) }), PatStride1},
		{"stride4", lanes(func(i int) uint32 { return 0x1000 + 4*uint32(i) }), PatStride4},
		{"half1", lanes(func(i int) uint32 {
			if i < 16 {
				return 7 + uint32(i)
			}
			return 9000 + uint32(i-16)
		}), PatHalfStride1},
		{"half4", lanes(func(i int) uint32 {
			if i < 16 {
				return 4 * uint32(i)
			}
			return 1<<20 + 4*uint32(i-16)
		}), PatHalfStride4},
		{"random", lanes(func(i int) uint32 { return uint32(i * i * 2654435761) }), PatNone},
	}
	for _, c := range cases {
		if got := Match(c.v); got != c.want {
			t.Errorf("%s: Match = %v, want %v", c.name, got, c.want)
		}
	}
}

// Property: a register built as base + lane*stride for stride in {0,1,4}
// always compresses; the compressed size is at most 8 bytes.
func TestQuickStridesCompress(t *testing.T) {
	f := func(base uint32, sel uint8) bool {
		stride := []uint32{0, 1, 4}[sel%3]
		v := lanes(func(i int) uint32 { return base + stride*uint32(i) })
		p := Match(v)
		return p != PatNone && p.Bytes() > 0 && p.Bytes() <= 8
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: perturbing one lane of a stride pattern with a non-stride
// delta breaks full-warp compression into at most a half-warp pattern or
// none.
func TestPerturbationBreaksPattern(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 100; trial++ {
		base := rng.Uint32()
		v := lanes(func(i int) uint32 { return base + 4*uint32(i) })
		lane := rng.Intn(isa.WarpWidth)
		v[lane] += 1 + uint32(rng.Intn(100))
		p := Match(v)
		if p == PatConst || p == PatStride1 || p == PatStride4 {
			t.Fatalf("perturbed lane %d still matched %v", lane, p)
		}
	}
}

func newTestCompressor() *Compressor {
	return New(Config{CacheLines: 2, NumRegs: 16, Warps: 4})
}

func TestCompressorBitVector(t *testing.T) {
	c := newTestCompressor()
	v := lanes(func(i int) uint32 { return 5 })
	if c.IsCompressed(1, 3) {
		t.Fatal("fresh compressor has compressed entries")
	}
	p, ok := c.TryCompress(1, 3, v)
	if !ok || p != PatConst {
		t.Fatalf("TryCompress = %v, %v", p, ok)
	}
	if !c.IsCompressed(1, 3) {
		t.Fatal("bit vector not set")
	}
	if c.IsCompressed(1, 4) || c.IsCompressed(2, 3) {
		t.Fatal("bit vector cross-talk")
	}
	if !c.Drop(1, 3) {
		t.Fatal("Drop missed compressed entry")
	}
	if c.IsCompressed(1, 3) {
		t.Fatal("entry survived Drop")
	}
	if c.Drop(1, 3) {
		t.Fatal("double Drop succeeded")
	}
}

func TestCompressorIncompressible(t *testing.T) {
	c := newTestCompressor()
	v := lanes(func(i int) uint32 { return uint32(i*i + 7) })
	if _, ok := c.TryCompress(0, 0, v); ok {
		t.Fatal("random value compressed")
	}
	if c.Stats.Misses != 1 {
		t.Fatalf("stats = %+v", c.Stats)
	}
}

func TestCompressedLineSharing(t *testing.T) {
	c := newTestCompressor()
	// Registers 0 and 1 of warp 0 share a compressed line (15/line).
	if c.LineID(0, 0) != c.LineID(0, 14) {
		t.Fatal("regs 0 and 14 should share a line")
	}
	if c.LineID(0, 0) == c.LineID(0, 15) {
		t.Fatal("reg 15 should start a new line")
	}
}

func TestCompressedCacheEviction(t *testing.T) {
	c := newTestCompressor() // 2 cache lines
	r1 := c.AccessLine(0, 0, true)
	if r1.Hit || !r1.HasFetch {
		t.Fatalf("first access: %+v", r1)
	}
	r2 := c.AccessLine(0, 0, false)
	if !r2.Hit {
		t.Fatal("second access missed")
	}
	c.AccessLine(1, 0, true)        // second line
	r4 := c.AccessLine(2, 0, false) // third line: evicts LRU (line of w0)
	if !r4.HasFetch {
		t.Fatal("third line should fetch")
	}
	if !r4.HasWriteback {
		t.Fatal("evicting a dirty compressed line must write back")
	}
	if c.Stats.LineEvicts != 1 {
		t.Fatalf("stats = %+v", c.Stats)
	}
}

func TestCompressedCountTracksPopulation(t *testing.T) {
	c := newTestCompressor()
	v := lanes(func(i int) uint32 { return uint32(i) })
	for r := 0; r < 5; r++ {
		c.TryCompress(0, isa.Reg(r), v)
	}
	if c.CompressedCount() != 5 {
		t.Fatalf("count = %d", c.CompressedCount())
	}
	c.Drop(0, 2)
	if c.CompressedCount() != 4 {
		t.Fatalf("count after drop = %d", c.CompressedCount())
	}
}
