package compress

import "repro/internal/metrics"

// BindMetrics exposes the compressor's counters and live populations on r
// under prefix+"/..." (one compressor per shard, so callers pass e.g.
// "compress/s0"). The per-pattern hit mix is exported one counter per
// pattern ("<prefix>/hits/stride4", ...).
func (c *Compressor) BindMetrics(r *metrics.Registry, prefix string) {
	r.Bind(prefix+"/matches", &c.Stats.Matches)
	r.Bind(prefix+"/hits", &c.Stats.Hits)
	r.Bind(prefix+"/misses", &c.Stats.Misses)
	r.Bind(prefix+"/bit_checks", &c.Stats.BitChecks)
	r.Bind(prefix+"/cache_hits", &c.Stats.CacheHits)
	r.Bind(prefix+"/cache_misses", &c.Stats.CacheMisses)
	r.Bind(prefix+"/line_fetches", &c.Stats.LineFetches)
	r.Bind(prefix+"/line_evicts", &c.Stats.LineEvicts)
	r.Bind(prefix+"/invalidations", &c.Stats.Invalidation)
	for p := PatConst; p < NumPatterns; p++ {
		r.Bind(prefix+"/hits/"+p.String(), &c.Stats.PatHits[p])
	}
	r.Gauge(prefix+"/compressed_regs", func() uint64 { return uint64(c.CompressedCount()) })
	r.Gauge(prefix+"/cache_lines", func() uint64 { return uint64(len(c.cache)) })
}
