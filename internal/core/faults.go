package core

import (
	"fmt"
	"sort"

	"repro/internal/cm"
	"repro/internal/faults"
	"repro/internal/isa"
	"repro/internal/regions"
	"repro/internal/sanitizer"
)

// SetFaults implements sim.FaultAware: store the injector for runtime
// corruption (applied from Tick) and apply compile-time metadata faults
// now. The shared compile-cache entry is read-only, so metadata
// corruption works on a private clone of the compiled result.
func (p *Provider) SetFaults(in *faults.Injector) {
	p.flt = in
	p.applyMetaFaults()
}

// applyMetaFaults corrupts compiled region metadata (meta-bank,
// meta-erase) on a clone of the shared compile result.
func (p *Provider) applyMetaFaults() {
	bank, hasBank := p.flt.CompileTime(faults.MetaBank)
	erase, hasErase := p.flt.CompileTime(faults.MetaErase)
	if !hasBank && !hasErase {
		return
	}
	// Clone the Compiled shell and region list; corrupted regions are
	// deep-copied individually below.
	cp := *p.comp
	cp.Regions = make([]*regions.Region, len(p.comp.Regions))
	copy(cp.Regions, p.comp.Regions)
	p.comp = &cp

	if hasBank {
		id := p.pickRegion(bank.Region, func(r *regions.Region) bool {
			return maxBankUsage(r) > 0
		})
		if id < 0 {
			p.flt.Note(faults.MetaBank, "no region with bank usage; fault skipped")
		} else {
			r := *cp.Regions[id]
			b, u := 0, 0
			for i, v := range r.BankUsage {
				if v > u {
					b, u = i, v
				}
			}
			r.BankUsage[b] = 0
			cp.Regions[id] = &r
			p.flt.Note(faults.MetaBank,
				fmt.Sprintf("region %d bank %d usage %d -> 0 (under-reservation)", id, b, u))
		}
	}
	if hasErase {
		id := p.pickRegion(erase.Region, func(r *regions.Region) bool {
			return len(r.EraseAt) > 0
		})
		if id < 0 {
			p.flt.Note(faults.MetaErase, "no region with erase annotations; fault skipped")
		} else {
			r := *cp.Regions[id]
			gis := make([]int, 0, len(r.EraseAt))
			for gi := range r.EraseAt {
				gis = append(gis, gi)
			}
			sort.Ints(gis)
			gi := gis[p.flt.Pick(len(gis))]
			ea := make(map[int][]isa.Reg, len(r.EraseAt))
			for k, v := range r.EraseAt {
				ea[k] = v
			}
			regsList := ea[gi]
			if len(regsList) > 1 {
				ea[gi] = regsList[1:]
			} else {
				delete(ea, gi)
			}
			r.EraseAt = ea
			cp.Regions[id] = &r
			p.flt.Note(faults.MetaErase,
				fmt.Sprintf("region %d dropped erase of %v at gi %d (staged-register leak)", id, regsList[0], gi))
		}
	}
}

// pickRegion returns the requested region if it is usable, else a
// seed-picked usable region, else -1.
func (p *Provider) pickRegion(want int, usable func(*regions.Region) bool) int {
	if want >= 0 && want < len(p.comp.Regions) && usable(p.comp.Regions[want]) {
		return want
	}
	var cands []int
	for i, r := range p.comp.Regions {
		if usable(r) {
			cands = append(cands, i)
		}
	}
	if len(cands) == 0 {
		return -1
	}
	return cands[p.flt.Pick(len(cands))]
}

func maxBankUsage(r *regions.Region) int {
	u := 0
	for _, v := range r.BankUsage {
		if v > u {
			u = v
		}
	}
	return u
}

// pickShard resolves a fault's shard target (seed-picked when unset).
func (p *Provider) pickShard(want int) int {
	if want >= 0 && want < len(p.shards) {
		return want
	}
	return p.flt.Pick(len(p.shards))
}

// applyFaults fires due runtime faults (called at the top of Tick). A
// corruption point that finds no target (e.g. an empty OSU early in the
// run) leaves the fault armed and retries next cycle.
func (p *Provider) applyFaults() {
	now := p.sm.Cycle()
	if f, ok := p.flt.Due(faults.OSUTag, now); ok {
		si := p.pickShard(f.Shard)
		if detail, hit := p.shards[si].osu.CorruptTag(p.flt.Pick(1 << 20)); hit {
			p.flt.Consume(faults.OSUTag, fmt.Sprintf("shard %d %s at cycle %d", si, detail, now))
		}
	}
	if f, ok := p.flt.Due(faults.OSUState, now); ok {
		si := p.pickShard(f.Shard)
		if detail, hit := p.shards[si].osu.CorruptState(p.flt.Pick(1 << 20)); hit {
			p.flt.Consume(faults.OSUState, fmt.Sprintf("shard %d %s at cycle %d", si, detail, now))
		}
	}
	if f, ok := p.flt.Due(faults.CompressPattern, now); ok {
		si := p.pickShard(f.Shard)
		detail := p.shards[si].cmp.CorruptPattern(p.flt.Pick(1 << 20))
		p.flt.Consume(faults.CompressPattern, fmt.Sprintf("shard %d %s at cycle %d", si, detail, now))
	}
}

// AttachSanitizer implements sim.SanitizerAware: register every shard's
// invariants — CM reservation bookkeeping, OSU line partition, capacity
// state-machine transition legality (hooked into OnTransition, chained
// with any recorder hook), and the cross-structure capacity agreement
// between OSU active lines, warp staged sets, and CM reservations.
func (p *Provider) AttachSanitizer(s *sanitizer.Sanitizer) {
	warpsPerShard := len(p.warps) / p.cfg.Shards
	for si, sh := range p.shards {
		si, sh := si, sh
		s.Register(fmt.Sprintf("cm/s%d", si), sh.cm.CheckInvariants)
		s.Register(fmt.Sprintf("osu/s%d", si), sh.osu.CheckInvariants)
		tc := sanitizer.NewTransitionChecker(warpsPerShard)
		prev := sh.cm.OnTransition
		sh.cm.OnTransition = func(local int, to cm.State, region int) {
			if prev != nil {
				prev(local, to, region)
			}
			tc.Observe(local, uint8(to))
		}
		s.Register(fmt.Sprintf("cm/s%d/transitions", si), tc.Err)
		s.Register(fmt.Sprintf("core/s%d/capacity", si), func() error {
			return p.checkShardCapacity(si, sh)
		})
	}
}

// checkShardCapacity cross-checks the three capacity views per bank: the
// OSU's active-line count, the warps' staged-register bookkeeping, and
// the CM's reservations (active lines never exceed reservations).
func (p *Provider) checkShardCapacity(si int, sh *shard) error {
	for b := 0; b < p.cfg.Banks; b++ {
		sum := 0
		for _, ws := range p.warps {
			if ws.shard == si {
				sum += ws.activePerBank[b]
			}
		}
		got := sh.osu.ActiveLines(b)
		if got != sum {
			return fmt.Errorf("bank %d: OSU holds %d active lines but warps stage %d", b, got, sum)
		}
		if res := sh.cm.Reserved(b); got > res {
			return fmt.Errorf("bank %d: %d active lines exceed %d reserved", b, got, res)
		}
	}
	return nil
}

// WarpDiag implements sim.WarpReporter: warp w's capacity state and
// region for diagnostic bundles.
func (p *Provider) WarpDiag(w int) (string, int) {
	ws := p.warps[w]
	sh := p.shards[ws.shard]
	return sh.cm.StateOf(ws.local).String(), sh.cm.RegionOf(ws.local)
}
