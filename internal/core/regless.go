// Package core is the RegLess system itself: the sim.Provider that
// replaces the register file with per-shard operand staging units managed
// by capacity managers and compressors, all driven by the compiler
// annotations from package regions (paper §3, §5).
//
// Each of the SM's four warp schedulers owns an independent shard (CM +
// OSU + compressor); only the L1 port is shared. Warps issue only while
// their current region is staged: the CM activates the top warp of its
// LIFO stack when the region's per-bank reservation fits, preloads stream
// through the per-bank queues (OSU tag hit -> compressor bit vector ->
// L1 -> L2/DRAM), last-use annotations erase or demote lines as the region
// runs, and displaced dirty lines flow through the compressor toward the
// L1 lazily.
package core

import (
	"fmt"
	"math"
	"sync"

	"repro/internal/cm"
	"repro/internal/compress"
	"repro/internal/events"
	"repro/internal/faults"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/metadata"
	"repro/internal/osu"
	"repro/internal/regions"
	"repro/internal/sim"
)

// Config parameterizes RegLess.
type Config struct {
	// Shards is the number of independent RegLess instances (one per
	// warp scheduler; 4 on the GTX 980).
	Shards int
	// Banks and LinesPerBank size each shard's OSU. The paper's chosen
	// design point, 512 registers/SM, is 4 shards x 8 banks x 16 lines.
	Banks        int
	LinesPerBank int
	// CompressorLines is each shard compressor's internal line storage
	// (Table 1: 48 per SM = 12 per shard).
	CompressorLines int
	// EnableCompressor switches the compressor on (Figure 16 ablates it).
	EnableCompressor bool
	// CompressorPatterns restricts the pattern matcher (ablations).
	CompressorPatterns compress.PatternSet
	// MetadataOverhead charges issue slots for metadata instructions.
	MetadataOverhead bool
	// FIFOStack activates warps oldest-first instead of LIFO (ablation).
	FIFOStack bool
	// AddrOffset shifts this SM's register and compressed-line backing
	// store addresses (multi-SM simulation keeps per-SM spaces disjoint
	// in the shared L2).
	AddrOffset uint32
	// Regions configures the compiler (bank capacity must match).
	Regions regions.Config
}

// DefaultConfig returns the paper's 512-entry design point.
func DefaultConfig() Config {
	return Config{
		Shards:           4,
		Banks:            8,
		LinesPerBank:     16,
		CompressorLines:  12,
		EnableCompressor: true,
		MetadataOverhead: true,
		Regions:          regions.DefaultConfig(),
	}
}

// ConfigForCapacity returns the configuration for a given total OSU
// capacity per SM in registers (Figure 11-13 sweep: 128..2048).
func ConfigForCapacity(regsPerSM int) Config {
	c := DefaultConfig()
	c.LinesPerBank = regsPerSM / (c.Shards * c.Banks)
	if c.LinesPerBank < 1 {
		c.LinesPerBank = 1
	}
	c.Regions.BankLines = c.LinesPerBank
	maxRegs := c.Shards * c.Banks * c.LinesPerBank / 4
	if maxRegs > 32 {
		maxRegs = 32
	}
	if maxRegs < 4 {
		maxRegs = 4
	}
	c.Regions.MaxRegsPerRegion = maxRegs
	return c
}

// CapacityRegisters returns total OSU registers per SM for this config.
func (c Config) CapacityRegisters() int { return c.Shards * c.Banks * c.LinesPerBank }

type preloadReq struct {
	warp       int // global warp id
	reg        isa.Reg
	invalidate bool
}

type l1op struct {
	addr  uint32
	write bool
	inval bool
	done  func(mem.Source)
}

type shard struct {
	cm  *cm.CM
	osu *osu.OSU
	cmp *compress.Compressor

	// preloadQ[b] is bank b's preload queue (one tag lookup per bank per
	// cycle).
	preloadQ [][]preloadReq
	// invalQ holds cache-invalidation annotations awaiting processing.
	invalQ []preloadReq
	// evictQ holds displaced dirty lines awaiting compression/writeback
	// (a victim buffer: preloads check it).
	evictQ []preloadReq
	// l1ops holds L1 requests awaiting the shared port.
	l1ops []l1op
}

type warpState struct {
	shard    int
	local    int
	regionID int
	// staged marks registers currently held active for the region.
	staged regSet
	// dirty marks staged registers written since staging.
	dirty regSet
	// deferred last-use flags applied at writeback (flag was on the
	// write itself, §5.2.2); deferErase distinguishes erase from evict.
	deferred   regSet
	deferErase regSet
	// activePerBank counts this warp's active OSU lines per bank.
	activePerBank []int
}

// Provider is the RegLess register scheme.
type Provider struct {
	cfg  Config
	comp *regions.Compiled
	sm   *sim.SM
	m    *sim.ProviderCounters
	rec  *events.Recorder // nil-safe event recorder (sim.RecorderAware)

	shards []*shard
	warps  []*warpState

	// flt is the fault injector (nil outside injection runs; every
	// consult costs one branch).
	flt *faults.Injector

	// regionActivations[id] counts dynamic executions of each region.
	regionActivations []uint64

	rrShard int // round-robin start for L1 port arbitration

	// usageScratch is the bank-rotated usage vector tryActivate and
	// TickIdle rebuild each attempt; the CM copies values out, so one
	// reusable buffer replaces a per-cycle allocation.
	usageScratch []int
}

// compileCache memoizes the RegLess compiler output per (kernel, region
// config). Region creation depends only on the kernel and regions.Config
// (not on the compressor, scheduler, or other Config knobs), and the
// compiled result — including the metadata costs stamped by
// metadata.Apply — is read-only once built, so providers across schemes,
// capacities sharing a bank geometry, and concurrent simulations all share
// one compile. Entries carry a sync.Once so concurrent first compiles of
// the same key do the work exactly once.
var compileCache = struct {
	sync.Mutex
	m map[compileKey]*compileEntry
}{m: map[compileKey]*compileEntry{}}

type compileKey struct {
	k   *isa.Kernel
	cfg regions.Config
}

type compileEntry struct {
	once sync.Once
	comp *regions.Compiled
	err  error
}

func compileCached(k *isa.Kernel, cfg regions.Config) (*regions.Compiled, error) {
	key := compileKey{k, cfg}
	compileCache.Lock()
	e, ok := compileCache.m[key]
	if !ok {
		e = &compileEntry{}
		compileCache.m[key] = e
	}
	compileCache.Unlock()
	e.once.Do(func() {
		comp, err := regions.Compile(k, cfg)
		if err != nil {
			e.err = err
			return
		}
		if _, err := metadata.Apply(comp); err != nil {
			e.err = err
			return
		}
		e.comp = comp
	})
	return e.comp, e.err
}

// New compiles k and builds the provider. The same compiled result is
// exposed via Compiled for experiments. Compilation is memoized per
// (kernel, region config); the shared *regions.Compiled is read-only, and
// each provider keeps its own runtime state and counters.
func New(cfgv Config, k *isa.Kernel) (*Provider, error) {
	comp, err := compileCached(k, cfgv.Regions)
	if err != nil {
		return nil, err
	}
	// Safety: every region must fit a shard's banks or the CM could
	// never activate it.
	for _, r := range comp.Regions {
		for b, u := range r.BankUsage {
			if u > cfgv.LinesPerBank {
				return nil, fmt.Errorf("core: region %d needs %d lines in bank %d (capacity %d)",
					r.ID, u, b, cfgv.LinesPerBank)
			}
		}
	}
	return &Provider{
		cfg:               cfgv,
		comp:              comp,
		regionActivations: make([]uint64, len(comp.Regions)),
	}, nil
}

// DynamicRegionStats returns execution-weighted per-region statistics:
// mean instructions, preloads, and concurrent-live registers per dynamic
// region activation (the weighting the paper's Figure 19 and Table 2
// report), plus the weighted standard deviation of concurrent live.
func (p *Provider) DynamicRegionStats() (insns, preloads, meanLive, stdLive float64) {
	var n, is, ps, lv, lv2 float64
	for id, count := range p.regionActivations {
		if count == 0 {
			continue
		}
		c := float64(count)
		r := p.comp.Regions[id]
		n += c
		is += c * float64(r.NumInsns())
		ps += c * float64(len(r.Preloads))
		lv += c * float64(r.MaxLive)
		lv2 += c * float64(r.MaxLive) * float64(r.MaxLive)
	}
	if n == 0 {
		return 0, 0, 0, 0
	}
	insns = is / n
	preloads = ps / n
	meanLive = lv / n
	variance := lv2/n - meanLive*meanLive
	if variance > 0 {
		stdLive = math.Sqrt(variance)
	}
	return
}

// Compiled exposes the compiler output (region statistics experiments).
func (p *Provider) Compiled() *regions.Compiled { return p.comp }

// Name implements sim.Provider.
func (p *Provider) Name() string { return "regless" }

// Stats implements sim.Provider.
func (p *Provider) Stats() *sim.ProviderStats { return p.m.Stats() }

// Attach implements sim.Provider.
func (p *Provider) Attach(smv *sim.SM) error {
	if smv.K != p.comp.Kernel {
		return fmt.Errorf("core: provider compiled for kernel %q attached to %q", p.comp.Kernel.Name, smv.K.Name)
	}
	if smv.Cfg.Schedulers != p.cfg.Shards {
		return fmt.Errorf("core: %d shards but %d schedulers", p.cfg.Shards, smv.Cfg.Schedulers)
	}
	p.sm = smv
	p.m = sim.NewProviderCounters(smv.Metrics)
	p.usageScratch = make([]int, p.cfg.Banks)
	warpsPerShard := smv.Cfg.Warps / p.cfg.Shards
	p.shards = make([]*shard, p.cfg.Shards)
	for s := range p.shards {
		sh := &shard{
			cm: cm.New(cm.Config{
				Banks:        p.cfg.Banks,
				LinesPerBank: p.cfg.LinesPerBank,
				FIFOStack:    p.cfg.FIFOStack,
			}, warpsPerShard),
			osu: osu.New(osu.Config{Banks: p.cfg.Banks, LinesPerBank: p.cfg.LinesPerBank}),
			cmp: compress.New(compress.Config{
				CacheLines: p.cfg.CompressorLines,
				NumRegs:    smv.K.NumRegs,
				Warps:      smv.Cfg.Warps,
				Patterns:   p.cfg.CompressorPatterns,
			}),
			preloadQ: make([][]preloadReq, p.cfg.Banks),
		}
		p.shards[s] = sh
		sh.cm.BindMetrics(smv.Metrics, fmt.Sprintf("cm/s%d", s))
		sh.osu.BindMetrics(smv.Metrics, fmt.Sprintf("osu/s%d", s))
		sh.cmp.BindMetrics(smv.Metrics, fmt.Sprintf("compress/s%d", s))
		smv.Metrics.Gauge(fmt.Sprintf("core/s%d/preload_backlog", s), func() uint64 {
			n := len(sh.invalQ) + len(sh.evictQ) + len(sh.l1ops)
			for _, q := range sh.preloadQ {
				n += len(q)
			}
			return uint64(n)
		})
	}
	p.warps = make([]*warpState, smv.Cfg.Warps)
	for w := range p.warps {
		p.warps[w] = &warpState{
			shard:         w % p.cfg.Shards,
			local:         w / p.cfg.Shards,
			regionID:      -1,
			staged:        newRegSet(smv.K.NumRegs),
			dirty:         newRegSet(smv.K.NumRegs),
			deferred:      newRegSet(smv.K.NumRegs),
			deferErase:    newRegSet(smv.K.NumRegs),
			activePerBank: make([]int, p.cfg.Banks),
		}
	}
	return nil
}

// regAddr returns the backing-store address of (warp, reg): all copies of
// R0 are sequential, then R1, ... (§5.2.3).
func (p *Provider) regAddr(warp int, reg isa.Reg) uint32 {
	return mem.RegSpaceBase + p.cfg.AddrOffset + uint32(int(reg)*p.sm.Cfg.Warps+warp)*mem.LineSize
}

// CanIssue implements sim.Provider: a warp issues only while Active.
func (p *Provider) CanIssue(w *sim.Warp) bool {
	if p.CanIssueQuiet(w) {
		return true
	}
	p.m.StallCycles.Inc()
	return false
}

// CanIssueQuiet implements sim.IssueProber: CanIssue's staging check
// without the stall accounting, for side-effect-free stall attribution.
func (p *Provider) CanIssueQuiet(w *sim.Warp) bool {
	ws := p.warps[w.ID]
	return p.shards[ws.shard].cm.StateOf(ws.local) == cm.Active
}

// AttachRecorder implements sim.RecorderAware: forward the recorder into
// each shard's machinery. Capacity-manager transitions and OSU line
// events flow out via hooks; the initial all-Inactive states are seeded
// here so consumers reconstruct full lifecycles (warps begin on the
// stack without a transition event). Call after Attach (sim.New runs
// Attach during construction).
func (p *Provider) AttachRecorder(rec *events.Recorder) {
	p.rec = rec
	warpsPerShard := len(p.warps) / p.cfg.Shards
	for s, sh := range p.shards {
		s, sh := s, sh
		for local := 0; local < warpsPerShard; local++ {
			rec.State(s, local*p.cfg.Shards+s, events.Phase(sh.cm.StateOf(local)), sh.cm.RegionOf(local))
		}
		// Chain rather than overwrite: the sanitizer's transition checker
		// may already be hooked in (either attach order works).
		prev := sh.cm.OnTransition
		sh.cm.OnTransition = func(local int, to cm.State, region int) {
			if prev != nil {
				prev(local, to, region)
			}
			rec.State(s, local*p.cfg.Shards+s, events.Phase(to), region)
		}
		sh.osu.SetRecorder(rec, s)
	}
}

// Drained implements sim.Provider.
func (p *Provider) Drained() bool {
	for _, sh := range p.shards {
		if len(sh.invalQ) > 0 || len(sh.evictQ) > 0 || len(sh.l1ops) > 0 {
			return false
		}
		for _, q := range sh.preloadQ {
			if len(q) > 0 {
				return false
			}
		}
	}
	return true
}
