package core

import (
	"fmt"

	"repro/internal/events"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/osu"
)

// Tick implements sim.Provider: it advances each shard's machinery one
// cycle — L1 port arbitration, eviction (compressor) processing, per-bank
// preload queues, cache invalidations, and warp activation.
func (p *Provider) Tick() {
	if p.flt != nil {
		p.applyFaults()
	}
	p.drainL1Ops()
	for _, sh := range p.shards {
		p.processEvictions(sh)
		p.processPreloads(sh)
		p.processInvalidations(sh)
	}
	for s, sh := range p.shards {
		p.tryActivate(s, sh)
	}
}

// drainL1Ops submits at most one queued L1 operation (the single shared
// port, Table 1), round-robin across shards.
func (p *Provider) drainL1Ops() {
	n := len(p.shards)
	for i := 0; i < n; i++ {
		sh := p.shards[(p.rrShard+i)%n]
		if len(sh.l1ops) == 0 {
			continue
		}
		op := sh.l1ops[0]
		var ok bool
		if op.inval {
			ok = p.sm.Mem.L1Invalidate(op.addr)
			if ok {
				p.m.L1Invalidates.Inc()
			}
		} else {
			ok = p.sm.Mem.L1Access(op.addr, op.write, op.done)
			if ok {
				if op.write {
					p.m.L1StoreWrites.Inc()
				} else {
					p.m.L1PreloadReads.Inc()
				}
			}
		}
		if ok {
			p.m.BackingAccesses.Inc()
			sh.l1ops = sh.l1ops[1:]
			p.rrShard = (p.rrShard + i + 1) % n
			return
		}
		// Port busy this cycle; no other shard will succeed either.
		return
	}
}

// processEvictions runs one displaced dirty line through the compressor
// (one compressor operation per cycle, Table 1).
func (p *Provider) processEvictions(sh *shard) {
	if len(sh.evictQ) == 0 {
		return
	}
	req := sh.evictQ[0]
	sh.evictQ = sh.evictQ[1:]
	p.m.Evictions.Inc()
	if p.cfg.EnableCompressor {
		val := p.sm.Warps[req.warp].Exec.ReadReg(req.reg)
		pat, ok := sh.cmp.TryCompress(req.warp, req.reg, &val)
		p.rec.Compress(p.warps[req.warp].shard, req.warp, uint8(pat), ok)
		if ok {
			p.m.CompressorHits.Inc()
			p.m.CompressorCacheOps.Inc()
			res := sh.cmp.AccessLine(req.warp, req.reg, true)
			if res.HasFetch {
				// Read-modify-write of a non-resident compressed
				// line (fire-and-forget for timing).
				sh.l1ops = append(sh.l1ops, l1op{addr: res.FetchLine + p.cfg.AddrOffset})
			}
			if res.HasWriteback {
				sh.l1ops = append(sh.l1ops, l1op{addr: res.WritebackLine + p.cfg.AddrOffset, write: true})
			}
			return
		}
		p.m.CompressorMisses.Inc()
	}
	sh.l1ops = append(sh.l1ops, l1op{addr: p.regAddr(req.warp, req.reg), write: true})
}

// processPreloads runs each bank's preload queue: one tag lookup per bank
// per cycle (§5.2.1).
func (p *Provider) processPreloads(sh *shard) {
	for b := range sh.preloadQ {
		if len(sh.preloadQ[b]) == 0 {
			continue
		}
		req := sh.preloadQ[b][0]
		sh.preloadQ[b] = sh.preloadQ[b][1:]
		p.preload(sh, req)
	}
}

// preload resolves one input fetch: OSU tag hit, victim buffer, compressed
// path, or raw L1 read.
func (p *Provider) preload(sh *shard, req preloadReq) {
	ws := p.warps[req.warp]
	p.m.TagLookups.Inc()
	if st, ok := sh.osu.Lookup(req.warp, req.reg); ok {
		sh.osu.Activate(req.warp, req.reg)
		p.stage(ws, req.reg, st == osu.StateDirty)
		p.m.PreloadFromOSU.Inc()
		p.rec.PreloadFill(ws.shard, req.warp, uint32(req.reg), events.SrcOSU)
		if req.invalidate {
			p.dropBacking(sh, req.warp, req.reg)
		}
		sh.cm.PreloadDone(ws.local)
		return
	}
	// Victim buffer: a displaced dirty line awaiting writeback.
	for i := range sh.evictQ {
		if sh.evictQ[i].warp == req.warp && sh.evictQ[i].reg == req.reg {
			sh.evictQ = append(sh.evictQ[:i], sh.evictQ[i+1:]...)
			p.install(sh, ws, req.reg, true)
			p.m.PreloadFromOSU.Inc()
			p.rec.PreloadFill(ws.shard, req.warp, uint32(req.reg), events.SrcOSU)
			if req.invalidate {
				p.dropBacking(sh, req.warp, req.reg)
			}
			sh.cm.PreloadDone(ws.local)
			return
		}
	}
	if p.cfg.EnableCompressor {
		p.m.CompressorBitChecks.Inc()
	}
	if p.cfg.EnableCompressor && sh.cmp.IsCompressed(req.warp, req.reg) {
		p.m.CompressorCacheOps.Inc()
		res := sh.cmp.AccessLine(req.warp, req.reg, false)
		if res.HasWriteback {
			sh.l1ops = append(sh.l1ops, l1op{addr: res.WritebackLine + p.cfg.AddrOffset, write: true})
		}
		if res.Hit {
			// Two extra cycles to match tags and decompress (§5.3),
			// one for the bit vector.
			p.sm.After(3, func() {
				p.install(sh, ws, req.reg, false)
				p.m.PreloadFromCompressor.Inc()
				p.rec.PreloadFill(ws.shard, req.warp, uint32(req.reg), events.SrcCompressor)
				if req.invalidate {
					sh.cmp.Drop(req.warp, req.reg)
				}
				sh.cm.PreloadDone(ws.local)
			})
			return
		}
		// Fetch the compressed line from L1.
		sh.l1ops = append(sh.l1ops, l1op{addr: res.FetchLine + p.cfg.AddrOffset, done: func(src mem.Source) {
			p.install(sh, ws, req.reg, false)
			p.countPreloadSource(src)
			p.rec.PreloadFill(ws.shard, req.warp, uint32(req.reg), fillSrc(src))
			if req.invalidate {
				sh.cmp.Drop(req.warp, req.reg)
			}
			sh.cm.PreloadDone(ws.local)
		}})
		return
	}
	// Raw register line from the backing store.
	addr := p.regAddr(req.warp, req.reg)
	sh.l1ops = append(sh.l1ops, l1op{addr: addr, done: func(src mem.Source) {
		p.install(sh, ws, req.reg, false)
		p.countPreloadSource(src)
		p.rec.PreloadFill(ws.shard, req.warp, uint32(req.reg), fillSrc(src))
		if req.invalidate {
			p.sm.Mem.L1InvalidateQuiet(addr)
		}
		sh.cm.PreloadDone(ws.local)
	}})
}

func (p *Provider) countPreloadSource(src mem.Source) {
	if src == mem.SrcL1 {
		p.m.PreloadFromL1.Inc()
	} else {
		p.m.PreloadFromL2DRAM.Inc()
	}
}

// fillSrc maps a memory-hierarchy source to the event-taxonomy source,
// mirroring countPreloadSource's two-way split.
func fillSrc(src mem.Source) events.PreloadSrc {
	if src == mem.SrcL1 {
		return events.SrcL1
	}
	return events.SrcL2DRAM
}

// dropBacking deletes every backing copy of a dead value (invalidating
// read): the compressed entry if present, else the L1/L2 line — no port
// cost, the read carries the invalidation (§4.3).
func (p *Provider) dropBacking(sh *shard, warp int, reg isa.Reg) {
	if p.cfg.EnableCompressor && sh.cmp.Drop(warp, reg) {
		return
	}
	p.sm.Mem.L1InvalidateQuiet(p.regAddr(warp, reg))
}

// install stages a register into an active OSU line: a still-resident
// evictable line (e.g. the previous dynamic instance of a looping region)
// is reactivated in place; otherwise a line is allocated, routing any
// displaced dirty victim to the eviction queue.
func (p *Provider) install(sh *shard, ws *warpState, reg isa.Reg, dirty bool) {
	warp := ws.local*p.cfg.Shards + ws.shard
	if sh.osu.Activate(warp, reg) {
		p.stage(ws, reg, dirty)
		return
	}
	victim, hasVictim, err := sh.osu.Install(warp, reg)
	if err != nil {
		// Reservation violated: report instead of panicking; the run
		// aborts with a Diagnostic at the end of this cycle.
		p.sm.ReportFault(fmt.Sprintf("core/s%d/install", ws.shard),
			fmt.Sprintf("reservation violated: %v", err), warp)
		return
	}
	if hasVictim {
		sh.evictQ = append(sh.evictQ, preloadReq{warp: victim.Warp, reg: victim.Reg})
	}
	p.stage(ws, reg, dirty)
}

func (p *Provider) stage(ws *warpState, reg isa.Reg, dirty bool) {
	warp := ws.local*p.cfg.Shards + ws.shard
	ws.staged.set(reg)
	if dirty {
		ws.dirty.set(reg)
	}
	ws.activePerBank[(warp+int(reg))%p.cfg.Banks]++
}

// processInvalidations executes one cache-invalidation annotation.
func (p *Provider) processInvalidations(sh *shard) {
	if len(sh.invalQ) == 0 {
		return
	}
	req := sh.invalQ[0]
	sh.invalQ = sh.invalQ[1:]
	p.m.CacheInvalidations.Inc()
	// Purge a dead pending writeback.
	for i := range sh.evictQ {
		if sh.evictQ[i].warp == req.warp && sh.evictQ[i].reg == req.reg {
			sh.evictQ = append(sh.evictQ[:i], sh.evictQ[i+1:]...)
			break
		}
	}
	// Erase a resident evictable copy.
	if st, ok := sh.osu.Lookup(req.warp, req.reg); ok && st != osu.StateActive {
		sh.osu.Erase(req.warp, req.reg)
	}
	if p.cfg.EnableCompressor && sh.cmp.Drop(req.warp, req.reg) {
		return // compressed: bit-vector update only, no L1 traffic
	}
	sh.l1ops = append(sh.l1ops, l1op{addr: p.regAddr(req.warp, req.reg), inval: true})
}

// tryActivate activates the top warp of the shard's stack if its next
// region fits (one activation attempt per cycle, §5.1).
func (p *Provider) tryActivate(s int, sh *shard) {
	local := sh.cm.Top()
	if local < 0 {
		return
	}
	warp := local*p.cfg.Shards + s
	w := p.sm.Warps[warp]
	if w.Finished() {
		// Should not happen (finished warps leave the stack), but be
		// defensive: retire it.
		for i := range p.usageScratch {
			p.usageScratch[i] = 0
		}
		if _, err := sh.cm.ActivateTop(0, p.usageScratch, 0, p.sm.Cycle()); err == nil {
			sh.cm.Finish(local)
		}
		return
	}
	if w.AtBarrier() {
		// Don't stage capacity for a warp that cannot issue until its
		// CTA mates arrive; let the warps below the stack top run.
		sh.cm.DeferTop()
		return
	}
	region := p.comp.RegionAt(w.NextGI())
	usage := p.rotatedUsage(warp, region.BankUsage)
	if !sh.cm.Fits(usage) {
		return
	}
	if _, err := sh.cm.ActivateTop(region.ID, usage, len(region.Preloads), p.sm.Cycle()); err != nil {
		p.sm.ReportFault(fmt.Sprintf("core/s%d/activate", s),
			fmt.Sprintf("activation failed after Fits: %v", err), warp)
		return
	}
	p.regionActivations[region.ID]++
	ws := p.warps[warp]
	ws.regionID = region.ID
	for _, pl := range region.Preloads {
		b := (warp + int(pl.Reg)) % p.cfg.Banks
		sh.preloadQ[b] = append(sh.preloadQ[b], preloadReq{warp: warp, reg: pl.Reg, invalidate: pl.Invalidate})
		p.rec.PreloadIssue(s, warp, uint32(pl.Reg))
	}
	for _, reg := range region.CacheInvalidations {
		sh.invalQ = append(sh.invalQ, preloadReq{warp: warp, reg: reg})
	}
}

// rotatedUsage rebuilds the bank-rotated usage vector for warp into the
// provider scratch buffer (the CM copies values out of it).
func (p *Provider) rotatedUsage(warp int, bankUsage [8]int) []int {
	usage := p.usageScratch
	for i := range usage {
		usage[i] = 0
	}
	for i, u := range bankUsage {
		usage[(warp+i)%p.cfg.Banks] = u
	}
	return usage
}

// TickIdle implements sim.TickIdler: with the rest of the machine frozen,
// Tick is a provable no-op exactly when every queue is empty and no
// shard's stack top could act — the top warp is absent, or it is alive,
// not at a barrier (DeferTop would rotate the stack), and its next region
// does not fit (the one pure outcome of tryActivate). Fault application
// is not considered here: the SM disables fast-forward entirely when an
// injector is armed.
func (p *Provider) TickIdle() bool {
	for s, sh := range p.shards {
		if len(sh.invalQ) > 0 || len(sh.evictQ) > 0 || len(sh.l1ops) > 0 {
			return false
		}
		for _, q := range sh.preloadQ {
			if len(q) > 0 {
				return false
			}
		}
		local := sh.cm.Top()
		if local < 0 {
			continue
		}
		warp := local*p.cfg.Shards + s
		w := p.sm.Warps[warp]
		if w.Finished() || w.AtBarrier() {
			return false
		}
		region := p.comp.RegionAt(w.NextGI())
		if sh.cm.Fits(p.rotatedUsage(warp, region.BankUsage)) {
			return false
		}
	}
	return true
}

// ReplicateStalls implements sim.StallReplicator for the cycle-skip
// fast-forward: bulk-account the CanIssue refusals a frozen span would
// have charged.
func (p *Provider) ReplicateStalls(n uint64) { p.m.StallCycles.Add(n) }
