package core

import "repro/internal/isa"

// regSet is a fixed-capacity register bitset sized by the kernel's
// NumRegs. It replaces the per-warp map[isa.Reg]bool staged/dirty/
// deferred bookkeeping: those maps sat on the OnIssue and writeback hot
// paths, where a hash per touched register dominated the provider's
// per-instruction cost. Membership is a word index and a bit test.
type regSet struct {
	bits []uint64
	n    int
}

func newRegSet(numRegs int) regSet {
	return regSet{bits: make([]uint64, (numRegs+63)/64)}
}

func (s *regSet) has(r isa.Reg) bool {
	return s.bits[r>>6]&(1<<(r&63)) != 0
}

// set inserts r, reporting whether it was newly inserted.
func (s *regSet) set(r isa.Reg) bool {
	w, b := r>>6, uint64(1)<<(r&63)
	if s.bits[w]&b != 0 {
		return false
	}
	s.bits[w] |= b
	s.n++
	return true
}

// clear removes r, reporting whether it was present.
func (s *regSet) clear(r isa.Reg) bool {
	w, b := r>>6, uint64(1)<<(r&63)
	if s.bits[w]&b == 0 {
		return false
	}
	s.bits[w] &^= b
	s.n--
	return true
}

func (s *regSet) len() int { return s.n }

func (s *regSet) reset() {
	for i := range s.bits {
		s.bits[i] = 0
	}
	s.n = 0
}
