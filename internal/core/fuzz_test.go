package core

import (
	"math/rand"
	"testing"

	"repro/internal/exec"
	"repro/internal/isa"
	"repro/internal/regalloc"
	"repro/internal/sim"
)

// randomKernel builds a structured random kernel: ALU bursts, diamonds,
// counted loops with divergent redefinitions, loads/stores with both
// coalesced and scattered addressing, and shared memory with barriers.
func randomKernel(seed int64) *isa.Kernel {
	rng := rand.New(rand.NewSource(seed))
	b := isa.NewBuilder("fuzz", 4)
	tid := b.Tid()
	lane := b.Lane()
	live := []isa.Reg{tid, lane, b.Movi(rng.Uint32() | 1)}
	pick := func() isa.Reg { return live[rng.Intn(len(live))] }
	push := func(r isa.Reg) {
		live = append(live, r)
		if len(live) > 10 {
			live = live[len(live)-10:]
		}
	}
	// Unique per-thread store slots prevent cross-warp races.
	storeSlot := func() isa.Reg {
		return b.Addi(b.Muli(tid, 4), 0x0200_0000+uint32(rng.Intn(64))*0x10000)
	}
	steps := 6 + rng.Intn(10)
	for s := 0; s < steps; s++ {
		switch rng.Intn(6) {
		case 0: // ALU burst
			for i := 0; i < 1+rng.Intn(5); i++ {
				ops := []isa.Opcode{isa.OpIADD, isa.OpISUB, isa.OpXOR, isa.OpMIN, isa.OpMAX, isa.OpIMUL}
				push(b.Op2(ops[rng.Intn(len(ops))], pick(), pick()))
			}
		case 1: // divergent diamond with soft defs
			r := b.Movi(uint32(rng.Intn(100)))
			cond := b.Op2(isa.OpAND, pick(), b.Movi(uint32(1+rng.Intn(7))))
			elseL, join := b.Label(), b.Label()
			b.Bnz(cond, elseL)
			b.Op2To(isa.OpIADD, r, r, pick())
			b.Bra(join)
			b.Bind(elseL)
			b.Op2To(isa.OpXOR, r, r, pick())
			b.Bind(join)
			push(r)
		case 2: // counted loop
			i := b.Movi(uint32(2 + rng.Intn(4)))
			acc := b.Movi(0)
			top := b.Label()
			b.Bind(top)
			b.Op2To(isa.OpIADD, acc, acc, pick())
			if rng.Intn(2) == 0 {
				v := b.Ldg(b.Addi(b.Muli(pick(), 4), 0x0100_0000), 0)
				b.Op2To(isa.OpXOR, acc, acc, v)
			}
			b.OpImmTo(isa.OpIADDI, i, i, ^uint32(0))
			b.Bnz(i, top)
			push(acc)
		case 3: // memory
			addr := b.Addi(b.Muli(tid, 4), 0x0100_0000)
			v := b.Ldg(addr, uint32(rng.Intn(4096))&^3)
			push(b.Addi(v, 1))
			b.Stg(storeSlot(), pick(), 0)
		case 4: // shared memory + barrier
			sa := b.Muli(tid, 4)
			b.Sts(sa, pick(), 0)
			b.Bar()
			push(b.Lds(sa, 0))
		case 5: // SFU
			push(b.Sfu(pick()))
		}
	}
	b.Stg(storeSlot(), pick(), 4)
	b.Exit()
	return b.MustKernel()
}

// TestFuzzEquivalence runs random kernels under RegLess at random
// capacities and asserts bit-identical final memory versus the functional
// reference — the strongest transparency check in the suite.
func TestFuzzEquivalence(t *testing.T) {
	capacities := []int{128, 256, 512, 1024}
	for seed := int64(0); seed < 12; seed++ {
		seed := seed
		t.Run("", func(t *testing.T) {
			t.Parallel()
			rng := rand.New(rand.NewSource(seed * 977))
			virt := randomKernel(seed)
			res, err := regalloc.Allocate(virt)
			if err != nil {
				t.Fatal(err)
			}
			k := res.Kernel
			warps := 4 * (1 + rng.Intn(4))
			capacity := capacities[rng.Intn(len(capacities))]

			cfg := ConfigForCapacity(capacity)
			cfg.EnableCompressor = rng.Intn(4) != 0
			cfg.FIFOStack = rng.Intn(4) == 0
			p, err := New(cfg, k)
			if err != nil {
				t.Fatal(err)
			}
			simCfg := sim.DefaultConfig()
			simCfg.Warps = warps
			simCfg.MaxCycles = 10_000_000
			mm := exec.NewMemory(nil)
			smv, err := sim.New(simCfg, k, p, mm)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := smv.Run(); err != nil {
				t.Fatalf("seed %d warps %d capacity %d: %v", seed, warps, capacity, err)
			}
			if err := p.CheckInvariants(); err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			ref, err := exec.Run(k, warps, exec.NewMemory(nil))
			if err != nil {
				t.Fatal(err)
			}
			got := mm.GlobalStores()
			if len(got) != len(ref.Stores) {
				t.Fatalf("seed %d: %d stores vs %d", seed, len(got), len(ref.Stores))
			}
			for a, v := range ref.Stores {
				if got[a] != v {
					t.Fatalf("seed %d warps %d capacity %d: mismatch at %#x: %d vs %d",
						seed, warps, capacity, a, got[a], v)
				}
			}
		})
	}
}
