package core

import (
	"fmt"

	"repro/internal/cm"
	"repro/internal/exec"
	"repro/internal/isa"
	"repro/internal/sim"
)

// OnIssue implements sim.Provider: account OSU accesses and bank
// conflicts, stage interior first-writes, apply last-use annotations, pay
// the metadata cost at region entry, and detect region completion.
func (p *Provider) OnIssue(w *sim.Warp, info *exec.StepInfo) int {
	ws := p.warps[w.ID]
	sh := p.shards[ws.shard]
	in := info.Insn
	gi := p.comp.G.GlobalIndex(info.PC)
	region := p.comp.Regions[ws.regionID]

	penalty := 0
	// Metadata instructions precede the region's first real instruction.
	if p.cfg.MetadataOverhead && gi == region.StartGI {
		penalty += region.MetaInsns
		p.m.MetaInsns.Add(uint64(region.MetaInsns))
	}

	// Source reads: one OSU bank access each; same-bank collisions
	// serialize.
	var banksUsed [regionsBanksMax]bool
	for i := 0; i < in.Op.NumSrc(); i++ {
		r := in.Src[i]
		if !r.Valid() {
			continue
		}
		p.m.StructReads.Inc()
		sh.osu.CountRead()
		b := (w.ID + int(r)) % p.cfg.Banks
		if banksUsed[b] {
			p.m.BankConflicts.Inc()
			penalty++
		}
		banksUsed[b] = true
	}
	if in.Op.HasDst() && in.Dst.Valid() {
		p.m.StructWrites.Inc()
		sh.osu.CountWrite()
		if !ws.staged.has(in.Dst) {
			// Interior register's first write allocates its line.
			p.install(sh, ws, in.Dst, true)
		}
		ws.dirty.set(in.Dst)
	}

	// Last-use annotations at this instruction. Flags naming the
	// destination ride with the write and apply at writeback (§5.2.2).
	for _, reg := range region.EraseAt[gi] {
		if in.Op.HasDst() && reg == in.Dst {
			ws.deferred.set(reg)
			ws.deferErase.set(reg)
		} else {
			p.applyErase(sh, ws, reg)
		}
	}
	for _, reg := range region.EvictAt[gi] {
		if in.Op.HasDst() && reg == in.Dst {
			ws.deferred.set(reg)
			ws.deferErase.clear(reg)
		} else {
			p.applyEvict(sh, ws, reg)
		}
	}

	// Region completion: the next instruction lies outside this region,
	// or a back edge re-enters it at its start (a new dynamic instance —
	// regions are scheduled atomically, so the warp drains and
	// reactivates; its inputs are usually still resident, §4.1).
	if !info.Exited && !w.Finished() {
		next := w.NextGI()
		if p.comp.RegionOf[next] != ws.regionID || next == region.StartGI {
			willPend := w.PendingWrites()
			if in.Op.HasDst() && in.Dst.Valid() {
				willPend++ // this instruction's write is added after OnIssue
			}
			sh.cm.BeginDrain(ws.local, ws.activePerBank)
			if willPend == 0 {
				p.finishDrain(sh, ws)
			}
		}
	}
	return penalty
}

const regionsBanksMax = 32

func (p *Provider) warpID(ws *warpState) int { return ws.local*p.cfg.Shards + ws.shard }

// applyErase frees a dead register's line immediately.
func (p *Provider) applyErase(sh *shard, ws *warpState, reg isa.Reg) {
	warp := p.warpID(ws)
	if !ws.staged.has(reg) {
		return
	}
	sh.osu.Erase(warp, reg)
	p.unstage(sh, ws, reg)
}

// applyEvict demotes a register's line to the evictable population.
func (p *Provider) applyEvict(sh *shard, ws *warpState, reg isa.Reg) {
	warp := p.warpID(ws)
	if !ws.staged.has(reg) {
		return
	}
	sh.osu.MarkEvictable(warp, reg, ws.dirty.has(reg))
	p.unstage(sh, ws, reg)
}

func (p *Provider) unstage(sh *shard, ws *warpState, reg isa.Reg) {
	warp := p.warpID(ws)
	ws.staged.clear(reg)
	ws.dirty.clear(reg)
	b := (warp + int(reg)) % p.cfg.Banks
	ws.activePerBank[b]--
	if sh.cm.StateOf(ws.local) == cm.Draining {
		sh.cm.ReleaseLine(ws.local, b)
	}
}

func (p *Provider) finishDrain(sh *shard, ws *warpState) {
	if ws.staged.len() != 0 {
		// Staged-register count disagrees with the region's annotations
		// (a leaked line). Report and leave the warp draining; the run
		// aborts with a Diagnostic at the end of this cycle.
		p.sm.ReportFault(fmt.Sprintf("core/s%d/drain", ws.shard),
			fmt.Sprintf("warp %d finished region %d with %d staged registers",
				p.warpID(ws), ws.regionID, ws.staged.len()), p.warpID(ws))
		return
	}
	cycles := sh.cm.FinishDrain(ws.local, p.sm.Cycle())
	p.m.RegionCycles.Add(cycles)
	p.m.RegionActivations.Inc()
	ws.regionID = -1
}

// OnWriteback implements sim.Provider: apply deferred last-use flags and
// complete draining regions.
func (p *Provider) OnWriteback(w *sim.Warp, reg isa.Reg) {
	ws := p.warps[w.ID]
	sh := p.shards[ws.shard]
	if sh.cm.StateOf(ws.local) == cm.Finished {
		return
	}
	if ws.deferred.clear(reg) {
		if ws.deferErase.clear(reg) {
			p.applyErase(sh, ws, reg)
		} else {
			p.applyEvict(sh, ws, reg)
		}
	}
	if sh.cm.StateOf(ws.local) == cm.Draining && w.PendingWrites() == 0 {
		p.finishDrain(sh, ws)
	}
}

// OnWarpFinish implements sim.Provider: release everything the warp held.
func (p *Provider) OnWarpFinish(w *sim.Warp) {
	ws := p.warps[w.ID]
	sh := p.shards[ws.shard]
	sh.cm.Finish(ws.local)
	sh.osu.FreeWarp(w.ID)
	// Dead values need no writeback.
	kept := sh.evictQ[:0]
	for _, e := range sh.evictQ {
		if e.warp != w.ID {
			kept = append(kept, e)
		}
	}
	sh.evictQ = kept
	ws.staged.reset()
	ws.dirty.reset()
	ws.deferred.reset()
	ws.deferErase.reset()
	for b := range ws.activePerBank {
		ws.activePerBank[b] = 0
	}
	ws.regionID = -1
}

// WarpState reports warp w's capacity-manager state (tracing tools).
func (p *Provider) WarpState(w int) cm.State {
	ws := p.warps[w]
	return p.shards[ws.shard].cm.StateOf(ws.local)
}

// CheckInvariants verifies cross-structure consistency (tests).
func (p *Provider) CheckInvariants() error {
	for s, sh := range p.shards {
		if err := sh.cm.CheckInvariants(); err != nil {
			return fmt.Errorf("shard %d: %w", s, err)
		}
		if err := sh.osu.CheckInvariants(); err != nil {
			return fmt.Errorf("shard %d: %w", s, err)
		}
		// Active lines per bank must match the warps' staged counts.
		for b := 0; b < p.cfg.Banks; b++ {
			sum := 0
			for w, ws := range p.warps {
				if ws.shard == s {
					sum += ws.activePerBank[b]
					_ = w
				}
			}
			if got := sh.osu.ActiveLines(b); got != sum {
				return fmt.Errorf("shard %d bank %d: OSU active %d != warp sum %d", s, b, got, sum)
			}
		}
	}
	return nil
}
