package core

import (
	"testing"

	"repro/internal/exec"
	"repro/internal/isa"
	"repro/internal/kernels"
	"repro/internal/sim"
)

func testSimCfg() sim.Config {
	c := sim.DefaultConfig()
	c.Warps = 16
	c.MaxCycles = 8_000_000
	return c
}

// runRegLess simulates k under RegLess and checks architectural
// equivalence with the functional reference plus structural invariants.
func runRegLess(t *testing.T, k *isa.Kernel, simCfg sim.Config, cfg Config) (*sim.Stats, *Provider) {
	t.Helper()
	p, err := New(cfg, k)
	if err != nil {
		t.Fatal(err)
	}
	mm := exec.NewMemory(nil)
	smv, err := sim.New(simCfg, k, p, mm)
	if err != nil {
		t.Fatal(err)
	}
	st, err := smv.Run()
	if err != nil {
		t.Fatal(err)
	}
	if err := p.CheckInvariants(); err != nil {
		t.Fatalf("invariants after run: %v", err)
	}
	ref, err := exec.Run(k, simCfg.Warps, exec.NewMemory(nil))
	if err != nil {
		t.Fatal(err)
	}
	got := mm.GlobalStores()
	if len(got) != len(ref.Stores) {
		t.Fatalf("store count %d, want %d", len(got), len(ref.Stores))
	}
	for a, v := range ref.Stores {
		if got[a] != v {
			t.Fatalf("RegLess changed behaviour at %#x: %d vs %d", a, got[a], v)
		}
	}
	return st, p
}

func TestRegLessAllBenchmarks(t *testing.T) {
	for _, bm := range kernels.Suite() {
		bm := bm
		t.Run(bm.Name, func(t *testing.T) {
			t.Parallel()
			k := kernels.MustLoad(bm.Name)
			st, p := runRegLess(t, k, testSimCfg(), DefaultConfig())
			ps := p.Stats()
			if st.DynInsns == 0 {
				t.Fatal("nothing executed")
			}
			if ps.RegionActivations == 0 {
				t.Fatal("no regions activated")
			}
			if ps.Preloads() == 0 && len(p.Compiled().CrossRegs.Members()) > 0 {
				t.Fatal("cross-region registers exist but nothing was preloaded")
			}
			if ps.StructReads == 0 || ps.StructWrites == 0 {
				t.Fatalf("no OSU accesses: %+v", ps)
			}
		})
	}
}

func TestRegLessSmallCapacity(t *testing.T) {
	// The 128-register configuration must still be functionally
	// transparent, just slower.
	for _, name := range []string{"dwt2d", "myocyte", "lud", "bfs"} {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			k := kernels.MustLoad(name)
			cfg := ConfigForCapacity(128)
			runRegLess(t, k, testSimCfg(), cfg)
		})
	}
}

func TestRegLessPreloadsMostlyHitOSU(t *testing.T) {
	// Paper Figure 17: on average only ~0.9% of preloads reach the L1
	// and ~0.013% reach L2/DRAM. Check the strong form on a small-
	// working-set kernel and a weak form overall.
	k := kernels.MustLoad("nw")
	_, p := runRegLess(t, k, testSimCfg(), DefaultConfig())
	ps := p.Stats()
	total := ps.Preloads()
	if total == 0 {
		t.Fatal("no preloads")
	}
	deep := ps.PreloadFromL1 + ps.PreloadFromL2DRAM
	if float64(deep)/float64(total) > 0.10 {
		t.Fatalf("nw: %d/%d preloads reached the memory system", deep, total)
	}
}

func TestRegLessCompressorReducesL1Traffic(t *testing.T) {
	// With the compressor off, every dirty eviction is a full-line L1
	// store; with it on, compressible values coalesce 15-to-a-line.
	k := kernels.MustLoad("hotspot")
	cfg := ConfigForCapacity(256) // small enough to force evictions
	on, pOn := runRegLess(t, k, testSimCfg(), cfg)
	cfgOff := cfg
	cfgOff.EnableCompressor = false
	off, pOff := runRegLess(t, k, testSimCfg(), cfgOff)
	_ = on
	_ = off
	if pOn.Stats().Evictions == 0 {
		t.Skip("no evictions at this capacity; nothing to compare")
	}
	if pOn.Stats().CompressorHits == 0 {
		t.Fatal("compressor never matched on hotspot's address-heavy registers")
	}
	if pOn.Stats().L1StoreWrites >= pOff.Stats().L1StoreWrites && pOff.Stats().L1StoreWrites > 0 {
		t.Fatalf("compressor did not reduce L1 stores: %d (on) vs %d (off)",
			pOn.Stats().L1StoreWrites, pOff.Stats().L1StoreWrites)
	}
}

func TestRegLessRegionStatsPlausible(t *testing.T) {
	k := kernels.MustLoad("lud")
	st, p := runRegLess(t, k, testSimCfg(), DefaultConfig())
	ps := p.Stats()
	if ps.RegionActivations == 0 || ps.RegionCycles == 0 {
		t.Fatalf("region stats empty: %+v", ps)
	}
	avg := float64(ps.RegionCycles) / float64(ps.RegionActivations)
	if avg <= 0 || avg > float64(st.Cycles) {
		t.Fatalf("implausible cycles/region %v", avg)
	}
}

func TestRegLessInvalidatingReads(t *testing.T) {
	// Any suite kernel with loops produces invalidating preloads; after
	// the run, dead values must not linger compressed.
	k := kernels.MustLoad("streamcluster")
	_, p := runRegLess(t, k, testSimCfg(), DefaultConfig())
	hasInv := false
	for _, r := range p.Compiled().Regions {
		for _, pl := range r.Preloads {
			if pl.Invalidate {
				hasInv = true
			}
		}
	}
	if !hasInv {
		t.Fatal("compiler emitted no invalidating reads for a loopy kernel")
	}
}

func TestRegLessMetadataChargesIssueSlots(t *testing.T) {
	k := kernels.MustLoad("bfs") // many small regions -> high metadata rate
	cfg := DefaultConfig()
	with, pWith := runRegLess(t, k, testSimCfg(), cfg)
	cfg.MetadataOverhead = false
	without, pWithout := runRegLess(t, k, testSimCfg(), cfg)
	if pWith.Stats().MetaInsns == 0 {
		t.Fatal("no metadata instructions charged")
	}
	if pWithout.Stats().MetaInsns != 0 {
		t.Fatal("metadata charged while disabled")
	}
	if with.Cycles < without.Cycles {
		t.Fatalf("metadata overhead made the run faster: %d vs %d", with.Cycles, without.Cycles)
	}
}

func TestConfigForCapacity(t *testing.T) {
	for _, c := range []int{128, 192, 256, 384, 512, 1024, 2048} {
		cfg := ConfigForCapacity(c)
		got := cfg.CapacityRegisters()
		// 192 and 384 don't divide evenly into 32 banks; allow rounding
		// down.
		if got > c || got < c*3/4 {
			t.Fatalf("capacity %d -> %d registers", c, got)
		}
		if cfg.Regions.BankLines != cfg.LinesPerBank {
			t.Fatalf("capacity %d: compiler bank lines %d != hardware %d",
				c, cfg.Regions.BankLines, cfg.LinesPerBank)
		}
	}
}

func TestProviderRejectsOversizedRegion(t *testing.T) {
	// A kernel whose single-instruction regions exceed one line per bank
	// cannot run on a degenerate OSU; New must refuse, not deadlock.
	b := isa.NewBuilder("wide", 1)
	// Force >1 concurrent regs in one bank within one region.
	var rs []isa.Reg
	for i := 0; i < 4; i++ {
		rs = append(rs, b.Movi(uint32(i)))
	}
	acc := b.Movi(0)
	for _, r := range rs {
		b.Op2To(isa.OpIADD, acc, acc, r)
	}
	b.Stg(acc, acc, 0)
	b.Exit()
	k := b.MustKernel()
	cfg := DefaultConfig()
	cfg.LinesPerBank = 0 // degenerate
	if _, err := New(cfg, k); err == nil {
		t.Fatal("New accepted a region larger than a bank")
	}
}

func TestDynamicRegionStats(t *testing.T) {
	k := kernels.MustLoad("lud")
	_, p := runRegLess(t, k, testSimCfg(), DefaultConfig())
	insns, preloads, meanLive, stdLive := p.DynamicRegionStats()
	if insns <= 0 || meanLive <= 0 {
		t.Fatalf("degenerate dynamic stats: %v %v %v %v", insns, preloads, meanLive, stdLive)
	}
	// Dynamic weighting must favour the loop body's large region over the
	// tiny prologue/epilogue ones: dynamic insns/region >= static average
	// for lud (its big region repeats).
	static := p.Compiled().Summarize()
	if insns < static.AvgInsns {
		t.Fatalf("dynamic insns/region %.1f below static %.1f for loop-dominated lud",
			insns, static.AvgInsns)
	}
	// Total activations recorded must match the provider counter.
	if p.Stats().RegionActivations == 0 {
		t.Fatal("no activations")
	}
}
