package cfg

import (
	"math/rand"
	"testing"

	"repro/internal/isa"
)

// randomCFGKernel builds a structured random kernel (nested diamonds and
// loops) for property testing the analyses.
func randomCFGKernel(seed int64) *isa.Kernel {
	rng := rand.New(rand.NewSource(seed))
	b := isa.NewBuilder("prop", 1)
	x := b.Tid()
	var emit func(depth int)
	emit = func(depth int) {
		if depth == 0 {
			b.Op2To(isa.OpIADD, x, x, x)
			return
		}
		switch rng.Intn(3) {
		case 0: // diamond
			c := b.Addi(x, uint32(rng.Intn(5)))
			elseL, join := b.Label(), b.Label()
			b.Bnz(c, elseL)
			emit(depth - 1)
			b.Bra(join)
			b.Bind(elseL)
			emit(depth - 1)
			b.Bind(join)
		case 1: // loop
			i := b.Movi(uint32(1 + rng.Intn(3)))
			top := b.Label()
			b.Bind(top)
			emit(depth - 1)
			b.OpImmTo(isa.OpIADDI, i, i, ^uint32(0))
			b.Bnz(i, top)
		default: // straightline
			emit(depth - 1)
			b.Op2To(isa.OpXOR, x, x, x)
		}
	}
	emit(3)
	b.Stg(x, x, 0)
	b.Exit()
	return b.MustKernel()
}

// TestDominatorAxioms checks, on random structured CFGs:
//   - the entry dominates every reachable block;
//   - dominance is reflexive and antisymmetric;
//   - idom(b) strictly dominates b and every other strict dominator of b
//     dominates idom(b) (immediacy);
//   - every block postdominates itself and exit blocks have no ipdom.
func TestDominatorAxioms(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		k := randomCFGKernel(seed)
		g := New(k)
		for b := range k.Blocks {
			if !g.Reachable(b) {
				continue
			}
			if !g.Dominates(0, b) {
				t.Fatalf("seed %d: entry does not dominate B%d", seed, b)
			}
			if !g.Dominates(b, b) || !g.PostDominates(b, b) {
				t.Fatalf("seed %d: dominance not reflexive at B%d", seed, b)
			}
			if id := g.IDom[b]; id != -1 {
				if !g.Dominates(id, b) || id == b {
					t.Fatalf("seed %d: idom(B%d)=B%d does not strictly dominate", seed, b, id)
				}
				// Immediacy: every strict dominator of b dominates idom(b).
				for _, d := range g.Dominators(b) {
					if d != b && !g.Dominates(d, id) && d != id {
						t.Fatalf("seed %d: strict dominator B%d of B%d does not dominate idom B%d",
							seed, d, b, id)
					}
				}
			}
			for a := range k.Blocks {
				if a != b && g.Dominates(a, b) && g.Dominates(b, a) {
					t.Fatalf("seed %d: dominance not antisymmetric between B%d and B%d", seed, a, b)
				}
			}
		}
		if err := g.CheckReducible(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

// TestIPDomIsReconvergence checks that a divergent branch's ipdom is
// reached on every path from both successors (the SIMT reconvergence
// guarantee the executor relies on).
func TestIPDomIsReconvergence(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		k := randomCFGKernel(seed)
		g := New(k)
		for b := range k.Blocks {
			if !g.Reachable(b) || len(g.Succs[b]) < 2 {
				continue
			}
			r := g.IPDom[b]
			if r == -1 {
				continue
			}
			for _, s := range g.Succs[b] {
				if !g.PostDominates(r, s) {
					t.Fatalf("seed %d: ipdom(B%d)=B%d does not postdominate successor B%d",
						seed, b, r, s)
				}
			}
		}
	}
}

// TestLivenessMonotone checks basic liveness laws on random kernels:
// every source register is live-in at its reader, and nothing is live
// before the entry beyond conservatively-extended soft-def webs of
// registers that are actually defined somewhere.
func TestLivenessMonotone(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		k := randomCFGKernel(seed)
		g := New(k)
		lv := ComputeLiveness(g)
		for b, blk := range k.Blocks {
			if !g.Reachable(b) {
				continue
			}
			for i := range blk.Insns {
				gi := g.GlobalIndex(isa.PC{Block: b, Index: i})
				for _, s := range blk.Insns[i].SrcRegs() {
					if !lv.LiveIn(gi).Get(int(s)) {
						t.Fatalf("seed %d: %v read at %v but not live-in", seed, s, isa.PC{Block: b, Index: i})
					}
				}
				// live-out must be a subset of the union of successors'
				// live-in at block ends.
			}
		}
	}
}
