package cfg

import (
	"testing"

	"repro/internal/isa"
)

// diamond builds:
//
//	B0: c=tid; bnz c -> B2
//	B1: x1=movi; bra B3
//	B2: x2=movi (fallthrough)
//	B3: y=iadd; exit
func diamond(t *testing.T) *isa.Kernel {
	t.Helper()
	b := isa.NewBuilder("diamond", 1)
	c := b.Tid()
	elseL := b.Label()
	join := b.Label()
	b.Bnz(c, elseL)
	x := b.Movi(1)
	b.Bra(join)
	b.Bind(elseL)
	b.MoviTo(x, 2)
	b.Bind(join)
	b.Op2To(isa.OpIADD, x, x, c)
	b.Stg(x, x, 0)
	b.Exit()
	return b.MustKernel()
}

func TestDiamondStructure(t *testing.T) {
	k := diamond(t)
	g := New(k)
	if len(k.Blocks) != 4 {
		t.Fatalf("blocks = %d, want 4:\n%s", len(k.Blocks), k.Disassemble())
	}
	// B0 -> {B2 (taken), B1 (fallthrough)}; B1 -> B3; B2 -> B3.
	if got := g.Succs[0]; len(got) != 2 {
		t.Fatalf("succs(B0) = %v", got)
	}
	if !g.Dominates(0, 3) || !g.Dominates(0, 1) || !g.Dominates(0, 2) {
		t.Fatal("entry does not dominate all blocks")
	}
	if g.Dominates(1, 3) || g.Dominates(2, 3) {
		t.Fatal("branch arm wrongly dominates join")
	}
	if g.IDom[3] != 0 {
		t.Fatalf("idom(B3) = %d, want 0", g.IDom[3])
	}
	// Join postdominates everything; it is the reconvergence point of B0.
	if g.IPDom[0] != 3 {
		t.Fatalf("ipdom(B0) = %d, want 3", g.IPDom[0])
	}
	if !g.PostDominates(3, 1) || !g.PostDominates(3, 2) || !g.PostDominates(3, 0) {
		t.Fatal("join does not postdominate arms")
	}
	if len(g.BackEdges) != 0 {
		t.Fatalf("back edges in acyclic CFG: %v", g.BackEdges)
	}
	if err := g.CheckReducible(); err != nil {
		t.Fatal(err)
	}
}

func loopKernel(t *testing.T) *isa.Kernel {
	t.Helper()
	b := isa.NewBuilder("loop", 1)
	i := b.Movi(4)
	acc := b.Movi(0)
	top := b.Label()
	b.Bind(top)
	b.Op2To(isa.OpIADD, acc, acc, i)
	b.OpImmTo(isa.OpIADDI, i, i, ^uint32(0))
	b.Bnz(i, top)
	b.Stg(acc, acc, 0)
	b.Exit()
	return b.MustKernel()
}

func TestLoopBackEdge(t *testing.T) {
	g := New(loopKernel(t))
	if len(g.BackEdges) != 1 {
		t.Fatalf("back edges = %v, want one", g.BackEdges)
	}
	e := g.BackEdges[0]
	if e.From != 1 || e.To != 1 {
		t.Fatalf("back edge = %v, want B1->B1", e)
	}
	if err := g.CheckReducible(); err != nil {
		t.Fatal(err)
	}
}

func TestGlobalIndexRoundTrip(t *testing.T) {
	for _, k := range []*isa.Kernel{diamond(t), loopKernel(t)} {
		g := New(k)
		gi := 0
		for bi, blk := range k.Blocks {
			for i := range blk.Insns {
				pc := isa.PC{Block: bi, Index: i}
				if got := g.GlobalIndex(pc); got != gi {
					t.Fatalf("%s: GlobalIndex(%v) = %d, want %d", k.Name, pc, got, gi)
				}
				if got := g.PCOf(gi); got != pc {
					t.Fatalf("%s: PCOf(%d) = %v, want %v", k.Name, gi, got, pc)
				}
				gi++
			}
		}
		if g.NumInsns() != gi {
			t.Fatalf("NumInsns = %d, want %d", g.NumInsns(), gi)
		}
	}
}

func TestUnreachableBlockHandled(t *testing.T) {
	// Hand-construct a kernel with an unreachable block.
	k := &isa.Kernel{
		Name:        "unreach",
		WarpsPerCTA: 1,
		NumRegs:     2,
		Blocks: []*isa.BasicBlock{
			{ID: 0, Insns: []isa.Instruction{
				{Op: isa.OpMOVI, Dst: 0, Imm: 1},
				{Op: isa.OpBRA, Target: 2},
			}},
			{ID: 1, Insns: []isa.Instruction{ // unreachable
				{Op: isa.OpMOVI, Dst: 1, Imm: 2},
			}},
			{ID: 2, Insns: []isa.Instruction{
				{Op: isa.OpEXIT},
			}},
		},
	}
	if err := k.Validate(); err != nil {
		t.Fatal(err)
	}
	g := New(k)
	if g.Reachable(1) {
		t.Fatal("block 1 should be unreachable")
	}
	if !g.Reachable(2) {
		t.Fatal("block 2 should be reachable")
	}
	// Liveness must not crash on unreachable code.
	lv := ComputeLiveness(g)
	_ = lv.LiveCounts()
}
