package cfg

import (
	"testing"

	"repro/internal/isa"
)

func TestLivenessStraightline(t *testing.T) {
	b := isa.NewBuilder("s", 1)
	x := b.Movi(1) // gi 0
	y := b.Movi(2) // gi 1
	z := b.Iadd(x, y)
	b.Stg(z, z, 0)
	b.Exit()
	k := b.MustKernel()
	g := New(k)
	lv := ComputeLiveness(g)

	// Before the iadd (gi 2), x and y are live.
	in2 := lv.LiveIn(2)
	if !in2.Get(int(x)) || !in2.Get(int(y)) || in2.Get(int(z)) {
		t.Fatalf("liveIn(2) = %v", in2)
	}
	// After the iadd, only z is live.
	out2 := lv.LiveOut(2)
	if out2.Get(int(x)) || out2.Get(int(y)) || !out2.Get(int(z)) {
		t.Fatalf("liveOut(2) = %v", out2)
	}
	// The iadd is a last use of both sources.
	if !lv.IsLastUse(2, x) || !lv.IsLastUse(2, y) {
		t.Fatal("iadd should be last use of x and y")
	}
	if lv.IsLastUse(2, z) {
		t.Fatal("z is not dead after its definition")
	}
	// Nothing is live before the first instruction.
	if c := lv.LiveIn(0).Count(); c != 0 {
		t.Fatalf("liveIn(0) count = %d", c)
	}
	if lv.MaxLive() != 2 {
		t.Fatalf("MaxLive = %d, want 2", lv.MaxLive())
	}
	counts := lv.LiveCounts()
	want := []int{0, 1, 2, 1, 0}
	for i, w := range want {
		if counts[i] != w {
			t.Fatalf("LiveCounts = %v, want %v", counts, want)
		}
	}
	// No soft defs in straightline code.
	for gi, s := range lv.SoftDef {
		if s {
			t.Fatalf("unexpected soft def at gi %d", gi)
		}
	}
}

func TestLivenessAcrossLoop(t *testing.T) {
	b := isa.NewBuilder("loop", 1)
	i := b.Movi(4)
	acc := b.Movi(0)
	top := b.Label()
	b.Bind(top)
	b.Op2To(isa.OpIADD, acc, acc, i)
	b.OpImmTo(isa.OpIADDI, i, i, ^uint32(0))
	b.Bnz(i, top)
	b.Stg(acc, acc, 0)
	b.Exit()
	k := b.MustKernel()
	g := New(k)
	lv := ComputeLiveness(g)

	// acc and i are live into the loop header (block 1).
	in := lv.BlockLiveIn(1)
	if !in.Get(int(acc)) || !in.Get(int(i)) {
		t.Fatalf("loop header live-in = %v", in)
	}
	// i dies on the loop-exit edge; acc is still live out of the loop.
	out := lv.BlockLiveIn(2)
	if out.Get(int(i)) {
		t.Fatal("i live after loop exit")
	}
	if !out.Get(int(acc)) {
		t.Fatal("acc dead after loop exit")
	}
}

// Figure 7 shape: r1 defined before a branch, redefined on one arm while
// the other arm (and the join) still read the original value. The arm
// redefinition must be detected as a soft definition.
func softDefKernel(t *testing.T) (*isa.Kernel, isa.Reg) {
	t.Helper()
	b := isa.NewBuilder("softdef", 1)
	c := b.Tid()
	r1 := b.Movi(10) // dominating definition
	elseL := b.Label()
	join := b.Label()
	b.Bnz(c, elseL)
	// then-arm (fallthrough): redefinition of r1 — candidate soft def.
	b.MoviTo(r1, 20)
	b.Bra(join)
	b.Bind(elseL)
	// else-arm reads the original r1.
	tmp := b.Iadd(r1, c)
	b.Stg(tmp, tmp, 0)
	b.Bind(join)
	b.Stg(r1, r1, 4) // join reads r1 (either version)
	b.Exit()
	return b.MustKernel(), r1
}

func TestSoftDefDetected(t *testing.T) {
	k, r1 := softDefKernel(t)
	g := New(k)
	lv := ComputeLiveness(g)

	// Find the redefinition (movi r1, 20) — block 1, insn 0.
	gi := g.GlobalIndex(isa.PC{Block: 1, Index: 0})
	if k.Blocks[1].Insns[0].Dst != r1 {
		t.Fatalf("test setup: expected redefinition at B1:0, got %s", k.Blocks[1].Insns[0].String())
	}
	if !lv.SoftDef[gi] {
		t.Fatal("redefinition under divergent control not marked soft")
	}
	// The dominating definition (B0) is not soft.
	gi0 := g.GlobalIndex(isa.PC{Block: 0, Index: 1})
	if lv.SoftDef[gi0] {
		t.Fatal("dominating definition wrongly marked soft")
	}
	// Because the redefinition is soft, r1 must be live *into* it.
	if !lv.LiveIn(gi).Get(int(r1)) {
		t.Fatal("r1 not live into its soft redefinition")
	}
}

// The same shape but with the else-arm NOT reading r1: the then-arm write
// still does not fully kill (divergent lanes), but Algorithm 2 only calls
// it soft if the old value is live on the other edge. With no other reader
// before the join's read... the join read makes it live on the else edge,
// so it is still soft. Remove the join read too and it must be hard.
func TestHardDefWhenNoOtherPathUse(t *testing.T) {
	b := isa.NewBuilder("harddef", 1)
	c := b.Tid()
	r1 := b.Movi(10)
	elseL := b.Label()
	join := b.Label()
	b.Bnz(c, elseL)
	b.MoviTo(r1, 20) // candidate
	b.Stg(r1, r1, 0)
	b.Bra(join)
	b.Bind(elseL)
	b.MoviTo(r1, 30) // the else arm fully overwrites r1 before use
	b.Stg(r1, r1, 4)
	b.Bind(join)
	b.Exit()
	k := b.MustKernel()
	g := New(k)
	lv := ComputeLiveness(g)
	// Neither arm redefinition is soft: the original value is not live
	// on the opposite edge (both arms overwrite before reading).
	for _, pc := range []isa.PC{{Block: 1, Index: 0}, {Block: 2, Index: 0}} {
		if lv.SoftDef[g.GlobalIndex(pc)] {
			t.Fatalf("definition at %v wrongly marked soft", pc)
		}
	}
}

func TestPlanRegistersStraightline(t *testing.T) {
	b := isa.NewBuilder("plan", 1)
	x := b.Movi(1)
	y := b.Movi(2)
	z := b.Iadd(x, y)
	b.Stg(z, z, 0)
	b.Exit()
	k := b.MustKernel()
	g := New(k)
	lv := ComputeLiveness(g)
	plans := lv.PlanRegisters()
	if len(plans) != 3 {
		t.Fatalf("plans = %d, want 3", len(plans))
	}
	byReg := map[isa.Reg]RegPlan{}
	for _, p := range plans {
		byReg[p.Reg] = p
	}
	px := byReg[x]
	if len(px.Defs) != 1 || len(px.LastUses) != 1 {
		t.Fatalf("x plan = %+v", px)
	}
	// x dies at the iadd (gi 2); its invalidation chain head must
	// postdominate both def and last use. Single block: head is block 0.
	if len(px.InvalidationChain) == 0 || px.InvalidationChain[0] != 0 {
		t.Fatalf("x invalidation chain = %v", px.InvalidationChain)
	}
	if px.SoftDefCount != 0 {
		t.Fatalf("x soft defs = %d", px.SoftDefCount)
	}
}

func TestPlanRegistersSoftDef(t *testing.T) {
	k, r1 := softDefKernel(t)
	g := New(k)
	lv := ComputeLiveness(g)
	var plan *RegPlan
	for i := range lv.PlanRegisters() {
		p := lv.PlanRegisters()[i]
		if p.Reg == r1 {
			plan = &p
			break
		}
	}
	if plan == nil {
		t.Fatal("no plan for r1")
	}
	if plan.SoftDefCount != 1 {
		t.Fatalf("r1 soft def count = %d, want 1", plan.SoftDefCount)
	}
	if len(plan.Defs) != 2 {
		t.Fatalf("r1 defs = %v, want 2", plan.Defs)
	}
	// The invalidation chain head must be the join block (3), which
	// postdominates both definitions and the final use.
	if len(plan.InvalidationChain) == 0 || plan.InvalidationChain[0] != 3 {
		t.Fatalf("r1 invalidation chain = %v, want head 3", plan.InvalidationChain)
	}
	// r1's last touch inside the join block is its use at B3:0.
	want := g.GlobalIndex(isa.PC{Block: 3, Index: 0})
	if plan.LastPointInHead != want {
		t.Fatalf("LastPointInHead = %d, want %d", plan.LastPointInHead, want)
	}
}

func TestPlanEdgeDeaths(t *testing.T) {
	b := isa.NewBuilder("edgedeath", 1)
	i := b.Movi(4)
	acc := b.Movi(0)
	top := b.Label()
	b.Bind(top)
	b.Op2To(isa.OpIADD, acc, acc, i)
	b.OpImmTo(isa.OpIADDI, i, i, ^uint32(0))
	b.Bnz(i, top)
	b.Stg(acc, acc, 0)
	b.Exit()
	k := b.MustKernel()
	g := New(k)
	lv := ComputeLiveness(g)
	for _, p := range lv.PlanRegisters() {
		if p.Reg != i {
			continue
		}
		// i is read by the loop condition each iteration and dies on
		// the exit edge B1->B2.
		found := false
		for _, e := range p.EdgeDeaths {
			if e.From == 1 && e.To == 2 {
				found = true
			}
		}
		if !found {
			t.Fatalf("i edge deaths = %v, want B1->B2", p.EdgeDeaths)
		}
		return
	}
	t.Fatal("no plan for i")
}
