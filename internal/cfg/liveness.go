package cfg

import (
	"repro/internal/bitvec"
	"repro/internal/isa"
)

// Liveness holds per-instruction register liveness for a kernel, computed
// with awareness of GPU control divergence: definitions identified as
// *soft* (paper §4.4) do not kill the incoming value, because inactive
// lanes may still need it.
//
// The analysis iterates to a fixed point: liveness is first computed
// treating every definition as killing, Algorithm 2 then identifies soft
// definitions from that solution, and liveness is recomputed with soft
// definitions treated as transparent; this repeats until the soft set
// stops growing (in practice one or two rounds).
type Liveness struct {
	G *Graph

	// SoftDef[gi] reports that the destination write of the instruction
	// with global index gi is a soft definition.
	SoftDef []bool

	liveIn  []*bitvec.Set // indexed by global instruction index
	liveOut []*bitvec.Set

	blockIn  []*bitvec.Set // indexed by block
	blockOut []*bitvec.Set
}

// ComputeLiveness runs the divergence-aware liveness analysis.
func ComputeLiveness(g *Graph) *Liveness {
	lv := &Liveness{
		G:       g,
		SoftDef: make([]bool, g.NumInsns()),
	}
	for {
		lv.solve()
		if !lv.updateSoftDefs() {
			break
		}
	}
	return lv
}

// solve runs standard backward dataflow at block granularity, then fills
// the per-instruction sets.
func (lv *Liveness) solve() {
	g := lv.G
	k := g.K
	nb := len(k.Blocks)
	nr := k.NumRegs

	use := make([]*bitvec.Set, nb)
	def := make([]*bitvec.Set, nb) // hard defs only
	for b := 0; b < nb; b++ {
		use[b] = bitvec.New(nr)
		def[b] = bitvec.New(nr)
		blk := k.Blocks[b]
		for i := range blk.Insns {
			in := &blk.Insns[i]
			for _, s := range in.SrcRegs() {
				if !def[b].Get(int(s)) {
					use[b].Set(int(s))
				}
			}
			if in.Op.HasDst() && !lv.SoftDef[g.GlobalIndex(isa.PC{Block: b, Index: i})] {
				def[b].Set(int(in.Dst))
			} else if in.Op.HasDst() {
				// A soft definition is also a use in the dataflow
				// sense: the merged value must be live into the
				// write so inactive lanes' values survive.
				if !def[b].Get(int(in.Dst)) {
					use[b].Set(int(in.Dst))
				}
			}
		}
	}

	lv.blockIn = make([]*bitvec.Set, nb)
	lv.blockOut = make([]*bitvec.Set, nb)
	for b := 0; b < nb; b++ {
		lv.blockIn[b] = bitvec.New(nr)
		lv.blockOut[b] = bitvec.New(nr)
	}
	// Iterate in post order (reverse of RPO) for fast convergence.
	changed := true
	tmp := bitvec.New(nr)
	for changed {
		changed = false
		for i := len(g.RPO) - 1; i >= 0; i-- {
			b := g.RPO[i]
			out := lv.blockOut[b]
			for _, s := range g.Succs[b] {
				if out.Or(lv.blockIn[s]) {
					changed = true
				}
			}
			// in = use ∪ (out − def)
			tmp.CopyFrom(out)
			tmp.AndNot(def[b])
			tmp.Or(use[b])
			if !tmp.Equal(lv.blockIn[b]) {
				lv.blockIn[b].CopyFrom(tmp)
				changed = true
			}
		}
	}

	// Per-instruction sets by backward walk within each block.
	lv.liveIn = make([]*bitvec.Set, g.NumInsns())
	lv.liveOut = make([]*bitvec.Set, g.NumInsns())
	for b := 0; b < nb; b++ {
		blk := k.Blocks[b]
		cur := lv.blockOut[b].Copy()
		for i := len(blk.Insns) - 1; i >= 0; i-- {
			gi := g.GlobalIndex(isa.PC{Block: b, Index: i})
			lv.liveOut[gi] = cur.Copy()
			in := &blk.Insns[i]
			if in.Op.HasDst() {
				if !lv.SoftDef[gi] {
					cur.Clear(int(in.Dst))
				} else {
					cur.Set(int(in.Dst))
				}
			}
			for _, s := range in.SrcRegs() {
				cur.Set(int(s))
			}
			lv.liveIn[gi] = cur.Copy()
		}
	}
}

// updateSoftDefs applies Algorithm 2 to every defining instruction and
// reports whether any new soft definitions were found.
func (lv *Liveness) updateSoftDefs() bool {
	g := lv.G
	grew := false
	for b, blk := range g.K.Blocks {
		if !g.Reachable(b) {
			continue
		}
		for i := range blk.Insns {
			in := &blk.Insns[i]
			if !in.Op.HasDst() {
				continue
			}
			gi := g.GlobalIndex(isa.PC{Block: b, Index: i})
			if lv.SoftDef[gi] {
				continue
			}
			if lv.isSoftDef(b, in.Dst) {
				lv.SoftDef[gi] = true
				grew = true
			}
		}
	}
	return grew
}

// isSoftDef implements Algorithm 2: a definition in block insnBB of reg is
// soft when some strictly-dominating block (with no reconvergence point in
// between) has a successor off the path to insnBB on which reg is live —
// i.e. an earlier definition reaches uses under control conditions
// different from this write's.
func (lv *Liveness) isSoftDef(insnBB int, reg isa.Reg) bool {
	g := lv.G
	doms := g.Dominators(insnBB)
	domSet := make(map[int]bool, len(doms))
	for _, d := range doms {
		domSet[d] = true
	}
	for _, domBB := range doms {
		if domBB == insnBB {
			continue
		}
		// Skip if a reconvergence point lies between domBB and the
		// definition: a strict postdominator of domBB that also
		// dominates insnBB.
		reconverged := false
		for _, pd := range g.PostDominators(domBB) {
			if pd != domBB && domSet[pd] {
				reconverged = true
				break
			}
		}
		if reconverged {
			continue
		}
		for _, succ := range g.Succs[domBB] {
			if g.Dominates(succ, insnBB) {
				continue
			}
			if lv.blockIn[succ].Get(int(reg)) {
				return true
			}
		}
	}
	return false
}

// LiveOnSiblingPath reports whether reg is live at the entry of a
// divergent sibling path of block b: a successor of a strict dominator of
// b (with no reconvergence point in between) that does not itself
// dominate b. Under SIMT execution both arms of a divergent branch run,
// so a value that is dead along b's own path may still be needed by the
// sibling arm's lanes — the dual of Algorithm 2's soft-definition test,
// used to keep last-use erase/invalidate annotations divergence-safe
// (§4.4: "it is only safe ... when the entire register is known to be
// dead").
func (lv *Liveness) LiveOnSiblingPath(b int, reg isa.Reg) bool {
	g := lv.G
	doms := g.Dominators(b)
	domSet := make(map[int]bool, len(doms))
	for _, d := range doms {
		domSet[d] = true
	}
	for _, domBB := range doms {
		if domBB == b {
			continue
		}
		reconverged := false
		for _, pd := range g.PostDominators(domBB) {
			if pd != domBB && domSet[pd] {
				reconverged = true
				break
			}
		}
		if reconverged {
			continue
		}
		for _, succ := range g.Succs[domBB] {
			if g.Dominates(succ, b) {
				continue
			}
			if lv.blockIn[succ].Get(int(reg)) {
				return true
			}
		}
	}
	return false
}

// LiveIn returns the registers live immediately before global instruction
// index gi. The returned set is shared; callers must not mutate it.
func (lv *Liveness) LiveIn(gi int) *bitvec.Set { return lv.liveIn[gi] }

// LiveOut returns the registers live immediately after global instruction
// index gi. The returned set is shared; callers must not mutate it.
func (lv *Liveness) LiveOut(gi int) *bitvec.Set { return lv.liveOut[gi] }

// BlockLiveIn returns the live-in set of a block (shared; do not mutate).
func (lv *Liveness) BlockLiveIn(b int) *bitvec.Set { return lv.blockIn[b] }

// BlockLiveOut returns the live-out set of a block (shared; do not mutate).
func (lv *Liveness) BlockLiveOut(b int) *bitvec.Set { return lv.blockOut[b] }

// LiveOnEdge reports whether reg is live on the CFG edge from -> to.
func (lv *Liveness) LiveOnEdge(reg isa.Reg, from, to int) bool {
	return lv.blockIn[to].Get(int(reg))
}

// IsLastUse reports whether the instruction at gi is a last use of reg:
// reg is read there and not live out.
func (lv *Liveness) IsLastUse(gi int, reg isa.Reg) bool {
	return !lv.liveOut[gi].Get(int(reg))
}

// MaxLive returns the maximum number of simultaneously live registers at
// any instruction boundary, the statistic plotted in paper Figure 5.
func (lv *Liveness) MaxLive() int {
	m := 0
	for _, s := range lv.liveIn {
		if s == nil {
			continue
		}
		if c := s.Count(); c > m {
			m = c
		}
	}
	return m
}

// LiveCounts returns, per global instruction index, the number of live
// registers before that instruction (Figure 5's series).
func (lv *Liveness) LiveCounts() []int {
	out := make([]int, len(lv.liveIn))
	for i, s := range lv.liveIn {
		if s != nil {
			out[i] = s.Count()
		}
	}
	return out
}
