// Package cfg provides control-flow and dataflow analyses over isa.Kernel:
// predecessor/successor graphs, dominator and postdominator trees
// (Cooper–Harvey–Kennedy), immediate postdominators for SIMT reconvergence,
// loop back-edge detection, and register liveness that accounts for GPU
// control divergence via soft-definition analysis (paper §4.4, Algorithm 2).
package cfg

import (
	"fmt"

	"repro/internal/isa"
)

// Graph is the control-flow graph of a kernel plus derived structure.
// Construct with New; the analyses are computed eagerly (they are cheap
// relative to simulation and every consumer needs them).
type Graph struct {
	K *isa.Kernel

	// Succs and Preds are adjacency lists indexed by block ID.
	Succs [][]int
	Preds [][]int

	// RPO is a reverse postorder of reachable blocks from the entry.
	RPO []int
	// RPONum maps block ID to its index in RPO; -1 for unreachable.
	RPONum []int

	// IDom is the immediate dominator of each block (-1 for entry and
	// unreachable blocks).
	IDom []int
	// IPDom is the immediate postdominator (-1 for exit blocks); this is
	// the SIMT reconvergence point used by the executor.
	IPDom []int

	// BackEdges lists loop back edges (tail -> head with head dominating
	// tail).
	BackEdges []Edge
	// InLoop[b] reports whether block b belongs to any natural loop body.
	InLoop []bool

	// insnBase[b] is the global instruction index of the first
	// instruction of block b; global indexes order instructions by
	// layout.
	insnBase []int
	numInsns int
}

// Edge is a CFG edge.
type Edge struct{ From, To int }

// New builds the graph and runs the structural analyses.
func New(k *isa.Kernel) *Graph {
	n := len(k.Blocks)
	g := &Graph{
		K:      k,
		Succs:  make([][]int, n),
		Preds:  make([][]int, n),
		RPONum: make([]int, n),
	}
	for i := 0; i < n; i++ {
		g.Succs[i] = k.Successors(i)
	}
	for from, succs := range g.Succs {
		for _, to := range succs {
			g.Preds[to] = append(g.Preds[to], from)
		}
	}
	g.computeRPO()
	g.IDom = g.dominators(g.Succs, g.Preds, []int{0}, g.RPO)
	g.IPDom = g.postdominators()
	g.findBackEdges()
	g.computeLoopBodies()

	g.insnBase = make([]int, n)
	total := 0
	for i, b := range k.Blocks {
		g.insnBase[i] = total
		total += len(b.Insns)
	}
	g.numInsns = total
	return g
}

func (g *Graph) computeRPO() {
	n := len(g.K.Blocks)
	for i := range g.RPONum {
		g.RPONum[i] = -1
	}
	visited := make([]bool, n)
	post := make([]int, 0, n)
	// Iterative DFS from entry.
	type frame struct {
		block int
		next  int
	}
	stack := []frame{{0, 0}}
	visited[0] = true
	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		if f.next < len(g.Succs[f.block]) {
			s := g.Succs[f.block][f.next]
			f.next++
			if !visited[s] {
				visited[s] = true
				stack = append(stack, frame{s, 0})
			}
			continue
		}
		post = append(post, f.block)
		stack = stack[:len(stack)-1]
	}
	g.RPO = make([]int, len(post))
	for i := range post {
		g.RPO[i] = post[len(post)-1-i]
	}
	for i, b := range g.RPO {
		g.RPONum[b] = i
	}
}

// dominators implements the Cooper–Harvey–Kennedy iterative algorithm over
// an arbitrary graph given entry nodes and a reverse postorder. It is
// shared by the dominator and postdominator computations.
func (g *Graph) dominators(succs, preds [][]int, entries []int, rpo []int) []int {
	n := len(succs)
	idom := make([]int, n)
	for i := range idom {
		idom[i] = -1
	}
	order := make([]int, n)
	for i := range order {
		order[i] = -1
	}
	for i, b := range rpo {
		order[b] = i
	}
	isEntry := make([]bool, n)
	for _, e := range entries {
		isEntry[e] = true
		idom[e] = e
	}
	intersect := func(a, b int) int {
		for a != b {
			for order[a] > order[b] {
				a = idom[a]
			}
			for order[b] > order[a] {
				b = idom[b]
			}
		}
		return a
	}
	changed := true
	for changed {
		changed = false
		for _, b := range rpo {
			if isEntry[b] {
				continue
			}
			newIdom := -1
			for _, p := range preds[b] {
				if idom[p] == -1 {
					continue
				}
				if newIdom == -1 {
					newIdom = p
				} else {
					newIdom = intersect(newIdom, p)
				}
			}
			if newIdom != -1 && idom[b] != newIdom {
				idom[b] = newIdom
				changed = true
			}
		}
	}
	for _, e := range entries {
		idom[e] = -1 // normalize: entries have no immediate dominator
	}
	return idom
}

// postdominators computes immediate postdominators using a virtual exit
// node that succeeds every block whose terminator is OpEXIT.
func (g *Graph) postdominators() []int {
	n := len(g.K.Blocks)
	virt := n // virtual exit node id
	rsuccs := make([][]int, n+1)
	rpreds := make([][]int, n+1)
	// Reverse graph: edges flipped; exits get an edge to virt in the
	// forward sense, i.e. virt -> exit in the reversed graph.
	for from, succs := range g.Succs {
		for _, to := range succs {
			rsuccs[to] = append(rsuccs[to], from)
			rpreds[from] = append(rpreds[from], to)
		}
	}
	for i, b := range g.K.Blocks {
		if t := b.Terminator(); t != nil && t.Op == isa.OpEXIT {
			rsuccs[virt] = append(rsuccs[virt], i)
			rpreds[i] = append(rpreds[i], virt)
		}
	}
	// Reverse postorder on the reversed graph from virt.
	visited := make([]bool, n+1)
	post := make([]int, 0, n+1)
	var dfs func(int)
	dfs = func(b int) {
		visited[b] = true
		for _, s := range rsuccs[b] {
			if !visited[s] {
				dfs(s)
			}
		}
		post = append(post, b)
	}
	dfs(virt)
	rpo := make([]int, len(post))
	for i := range post {
		rpo[i] = post[len(post)-1-i]
	}
	ipdom := g.dominators(rsuccs, rpreds, []int{virt}, rpo)
	out := make([]int, n)
	for i := 0; i < n; i++ {
		d := ipdom[i]
		if d == virt {
			d = -1
		}
		out[i] = d
	}
	return out
}

func (g *Graph) findBackEdges() {
	for _, b := range g.RPO {
		for _, s := range g.Succs[b] {
			if g.Dominates(s, b) {
				g.BackEdges = append(g.BackEdges, Edge{From: b, To: s})
			}
		}
	}
}

// computeLoopBodies marks every block inside a natural loop: for each
// back edge tail->head, the body is head plus all blocks that reach tail
// backwards without passing through head.
func (g *Graph) computeLoopBodies() {
	g.InLoop = make([]bool, len(g.K.Blocks))
	for _, e := range g.BackEdges {
		g.InLoop[e.To] = true
		seen := map[int]bool{e.To: true}
		stack := []int{e.From}
		for len(stack) > 0 {
			b := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if seen[b] {
				continue
			}
			seen[b] = true
			g.InLoop[b] = true
			for _, p := range g.Preds[b] {
				if !seen[p] {
					stack = append(stack, p)
				}
			}
		}
	}
}

// Dominates reports whether block a dominates block b (reflexive).
func (g *Graph) Dominates(a, b int) bool {
	if g.RPONum[b] == -1 {
		return false
	}
	for b != -1 {
		if b == a {
			return true
		}
		b = g.IDom[b]
	}
	return false
}

// PostDominates reports whether block a postdominates block b (reflexive).
func (g *Graph) PostDominates(a, b int) bool {
	for b != -1 {
		if b == a {
			return true
		}
		b = g.IPDom[b]
	}
	return false
}

// Dominators returns all blocks dominating b, including b itself.
func (g *Graph) Dominators(b int) []int {
	var out []int
	for b != -1 {
		out = append(out, b)
		b = g.IDom[b]
	}
	return out
}

// PostDominators returns all blocks postdominating b, including b itself.
func (g *Graph) PostDominators(b int) []int {
	var out []int
	for b != -1 {
		out = append(out, b)
		b = g.IPDom[b]
	}
	return out
}

// NumInsns returns the total static instruction count.
func (g *Graph) NumInsns() int { return g.numInsns }

// GlobalIndex converts a PC to a dense layout-order instruction index.
func (g *Graph) GlobalIndex(pc isa.PC) int { return g.insnBase[pc.Block] + pc.Index }

// PCOf converts a global instruction index back to a PC.
func (g *Graph) PCOf(gi int) isa.PC {
	// Binary search over insnBase.
	lo, hi := 0, len(g.insnBase)-1
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if g.insnBase[mid] <= gi {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return isa.PC{Block: lo, Index: gi - g.insnBase[lo]}
}

// Reachable reports whether block b is reachable from the entry.
func (g *Graph) Reachable(b int) bool { return g.RPONum[b] != -1 }

// CheckReducible returns an error if any back edge target fails to
// dominate its source (irreducible loop); the kernel builder should never
// produce these, and region creation assumes reducibility for its
// loop-exit death points.
func (g *Graph) CheckReducible() error {
	for _, b := range g.RPO {
		for _, s := range g.Succs[b] {
			if g.RPONum[s] <= g.RPONum[b] && !g.Dominates(s, b) {
				return fmt.Errorf("irreducible edge B%d->B%d", b, s)
			}
		}
	}
	return nil
}
