package cfg

import (
	"repro/internal/isa"
)

// RegPlan summarizes one architectural register's lifetime structure: where
// it is defined, where its live ranges end, and where a whole-register
// cache invalidation may safely be placed (paper §4.3–4.4). The RegLess
// compiler (package regions) consumes these to emit erase / evict /
// invalidate annotations.
//
// A register's value may only be deleted from the memory system at a point
// that (a) postdominates every definition and death point, so all divergent
// paths that used it have reconverged, and (b) has the register dead in the
// liveness solution. InvalidationChain lists the candidate blocks in order
// (the common postdominator, then its postdominators); an empty chain means
// the register's final death coincides with kernel exit.
type RegPlan struct {
	Reg isa.Reg
	// Defs are global instruction indexes that write the register.
	Defs []int
	// SoftDefCount is how many of Defs are soft definitions.
	SoftDefCount int
	// LastUses are global instruction indexes of reads after which the
	// register is no longer live on the fallthrough path.
	LastUses []int
	// EdgeDeaths are CFG edges on which the register dies (live at the
	// source block end, dead into the target) — e.g. loop exits.
	EdgeDeaths []Edge
	// InvalidationChain is the ordered list of candidate blocks for the
	// invalidation annotation: the nearest common postdominator of all
	// defs and deaths, followed by its postdominator chain.
	InvalidationChain []int
	// LastPointInHead is the global index of the last def or use of the
	// register inside InvalidationChain[0], or -1 if none; the
	// invalidation must be placed after it.
	LastPointInHead int
}

// PlanRegisters computes a RegPlan for every register that is defined at
// least once in reachable code.
func (lv *Liveness) PlanRegisters() []RegPlan {
	g := lv.G
	k := g.K
	plans := make([]RegPlan, 0, k.NumRegs)

	for r := 0; r < k.NumRegs; r++ {
		reg := isa.Reg(r)
		plan := RegPlan{Reg: reg, LastPointInHead: -1}
		blocks := map[int]bool{} // blocks containing defs or deaths

		for b, blk := range k.Blocks {
			if !g.Reachable(b) {
				continue
			}
			for i := range blk.Insns {
				in := &blk.Insns[i]
				gi := g.GlobalIndex(isa.PC{Block: b, Index: i})
				if in.Op.HasDst() && in.Dst == reg {
					plan.Defs = append(plan.Defs, gi)
					if lv.SoftDef[gi] {
						plan.SoftDefCount++
					}
					blocks[b] = true
				}
				reads := false
				for _, s := range in.SrcRegs() {
					if s == reg {
						reads = true
					}
				}
				if reads && lv.IsLastUse(gi, reg) {
					plan.LastUses = append(plan.LastUses, gi)
					blocks[b] = true
				}
			}
			// Edge deaths: live out of b overall, dead into a
			// particular successor.
			if lv.blockOut[b].Get(r) {
				for _, s := range g.Succs[b] {
					if !lv.blockIn[s].Get(r) {
						plan.EdgeDeaths = append(plan.EdgeDeaths, Edge{From: b, To: s})
						blocks[s] = true
					}
				}
			}
		}
		if len(plan.Defs) == 0 {
			continue
		}
		plan.InvalidationChain, plan.LastPointInHead = lv.invalidationChain(reg, blocks)
		plans = append(plans, plan)
	}
	return plans
}

// invalidationChain finds the nearest common postdominator of the given
// blocks and returns it with its postdominator chain, plus the last
// def/use position of reg inside the head block.
func (lv *Liveness) invalidationChain(reg isa.Reg, blocks map[int]bool) ([]int, int) {
	g := lv.G
	if len(blocks) == 0 {
		return nil, -1
	}
	// Start from any member; walk its postdominator chain until a block
	// postdominating all members is found.
	var start int
	for b := range blocks {
		start = b
		break
	}
	head := -1
	for _, cand := range g.PostDominators(start) {
		all := true
		for b := range blocks {
			if !g.PostDominates(cand, b) {
				all = false
				break
			}
		}
		if all {
			head = cand
			break
		}
	}
	if head == -1 {
		return nil, -1
	}
	chain := g.PostDominators(head)
	// Last def/use of reg inside the head block.
	last := -1
	blk := g.K.Blocks[head]
	for i := range blk.Insns {
		in := &blk.Insns[i]
		touches := in.Op.HasDst() && in.Dst == reg
		for _, s := range in.SrcRegs() {
			if s == reg {
				touches = true
			}
		}
		if touches {
			last = g.GlobalIndex(isa.PC{Block: head, Index: i})
		}
	}
	return chain, last
}
