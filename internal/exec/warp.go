package exec

import (
	"fmt"
	"math/bits"

	"repro/internal/cfg"
	"repro/internal/isa"
)

// FullMask has all 32 lanes active.
const FullMask uint32 = 0xFFFFFFFF

// frame is one SIMT reconvergence stack entry: execute from pc under mask
// until reaching block rejoin (-1 = never, the bottom frame).
type frame struct {
	pc     isa.PC
	rejoin int
	mask   uint32
}

// StepInfo describes one executed instruction, for the timing simulator.
type StepInfo struct {
	PC   isa.PC
	Insn *isa.Instruction
	// Mask is the active-lane mask the instruction executed under.
	Mask uint32
	// Addrs holds the per-active-lane byte addresses of a memory
	// operation, in lane order (length = popcount(Mask)); nil otherwise.
	// The slice aliases an internal buffer valid until the next Step.
	Addrs []uint32
	// Exited reports that the warp finished with this instruction.
	Exited bool
	// AtBarrier reports the instruction was a barrier (the caller gates
	// barrier release; Step already advanced past it).
	AtBarrier bool
}

// Warp is the functional state of one hardware warp executing a kernel.
type Warp struct {
	ID  int // global warp id on the SM
	CTA int // CTA the warp belongs to

	K    *isa.Kernel
	G    *cfg.Graph
	Mem  *Memory
	Regs [][isa.WarpWidth]uint32

	stack   []frame
	done    bool
	addrBuf [isa.WarpWidth]uint32
	stepped uint64 // dynamic instruction count
}

// NewWarp creates a warp at the kernel entry with all lanes active.
// Graph g must be cfg.New(k) (shared across warps).
func NewWarp(k *isa.Kernel, g *cfg.Graph, id, cta int, mem *Memory) *Warp {
	w := &Warp{
		ID:   id,
		CTA:  cta,
		K:    k,
		G:    g,
		Mem:  mem,
		Regs: make([][isa.WarpWidth]uint32, k.NumRegs),
	}
	w.stack = append(w.stack, frame{pc: isa.PC{Block: 0, Index: 0}, rejoin: -1, mask: FullMask})
	return w
}

// Done reports whether every lane has exited.
func (w *Warp) Done() bool { return w.done }

// Steps returns the dynamic instruction count executed so far.
func (w *Warp) Steps() uint64 { return w.stepped }

// PC returns the next instruction's location. Only valid when !Done().
func (w *Warp) PC() isa.PC { return w.top().pc }

// Insn returns the next instruction to execute. Only valid when !Done().
func (w *Warp) Insn() *isa.Instruction { return w.K.At(w.top().pc) }

// ActiveMask returns the current active-lane mask.
func (w *Warp) ActiveMask() uint32 {
	if w.done {
		return 0
	}
	return w.top().mask
}

func (w *Warp) top() *frame { return &w.stack[len(w.stack)-1] }

// ReadReg returns a copy of a register's lane values.
func (w *Warp) ReadReg(r isa.Reg) [isa.WarpWidth]uint32 { return w.Regs[r] }

// Step executes exactly one instruction at the current PC under the
// current mask, updating architectural state and the SIMT stack, and
// returns what happened. The caller must not Step a Done warp.
func (w *Warp) Step() StepInfo {
	if w.done {
		panic("exec: Step on finished warp")
	}
	f := w.top()
	pc := f.pc
	in := w.K.At(pc)
	mask := f.mask
	info := StepInfo{PC: pc, Insn: in, Mask: mask}
	w.stepped++

	// Arithmetic cases carry their own lane loops rather than sharing a
	// closure-taking helper: the old binop/triop shape cost two indirect
	// calls per lane (helper -> writeDst -> op), which dominated the
	// functional step. A full-mask loop with the op inline vectorizes to
	// straight-line array code.
	switch in.Op {
	case isa.OpNOP:
		w.advance()
	case isa.OpMOVI:
		d := &w.Regs[in.Dst]
		for lane := 0; lane < isa.WarpWidth; lane++ {
			if mask&(1<<uint(lane)) != 0 {
				d[lane] = in.Imm
			}
		}
		w.advance()
	case isa.OpTID:
		d := &w.Regs[in.Dst]
		base := uint32(w.ID * isa.WarpWidth)
		for lane := 0; lane < isa.WarpWidth; lane++ {
			if mask&(1<<uint(lane)) != 0 {
				d[lane] = base + uint32(lane)
			}
		}
		w.advance()
	case isa.OpLANE:
		d := &w.Regs[in.Dst]
		for lane := 0; lane < isa.WarpWidth; lane++ {
			if mask&(1<<uint(lane)) != 0 {
				d[lane] = uint32(lane)
			}
		}
		w.advance()
	case isa.OpWID:
		d := &w.Regs[in.Dst]
		for lane := 0; lane < isa.WarpWidth; lane++ {
			if mask&(1<<uint(lane)) != 0 {
				d[lane] = uint32(w.ID)
			}
		}
		w.advance()
	case isa.OpIADD, isa.OpFADD:
		a, b, d := &w.Regs[in.Src[0]], &w.Regs[in.Src[1]], &w.Regs[in.Dst]
		for lane := 0; lane < isa.WarpWidth; lane++ {
			if mask&(1<<uint(lane)) != 0 {
				d[lane] = a[lane] + b[lane]
			}
		}
		w.advance()
	case isa.OpISUB:
		a, b, d := &w.Regs[in.Src[0]], &w.Regs[in.Src[1]], &w.Regs[in.Dst]
		for lane := 0; lane < isa.WarpWidth; lane++ {
			if mask&(1<<uint(lane)) != 0 {
				d[lane] = a[lane] - b[lane]
			}
		}
		w.advance()
	case isa.OpIADDI:
		a, d, imm := &w.Regs[in.Src[0]], &w.Regs[in.Dst], in.Imm
		for lane := 0; lane < isa.WarpWidth; lane++ {
			if mask&(1<<uint(lane)) != 0 {
				d[lane] = a[lane] + imm
			}
		}
		w.advance()
	case isa.OpIMUL, isa.OpFMUL:
		a, b, d := &w.Regs[in.Src[0]], &w.Regs[in.Src[1]], &w.Regs[in.Dst]
		for lane := 0; lane < isa.WarpWidth; lane++ {
			if mask&(1<<uint(lane)) != 0 {
				d[lane] = a[lane] * b[lane]
			}
		}
		w.advance()
	case isa.OpIMULI:
		a, d, imm := &w.Regs[in.Src[0]], &w.Regs[in.Dst], in.Imm
		for lane := 0; lane < isa.WarpWidth; lane++ {
			if mask&(1<<uint(lane)) != 0 {
				d[lane] = a[lane] * imm
			}
		}
		w.advance()
	case isa.OpIMAD, isa.OpFFMA:
		a, b, c := &w.Regs[in.Src[0]], &w.Regs[in.Src[1]], &w.Regs[in.Src[2]]
		d := &w.Regs[in.Dst]
		for lane := 0; lane < isa.WarpWidth; lane++ {
			if mask&(1<<uint(lane)) != 0 {
				d[lane] = a[lane]*b[lane] + c[lane]
			}
		}
		w.advance()
	case isa.OpAND:
		a, b, d := &w.Regs[in.Src[0]], &w.Regs[in.Src[1]], &w.Regs[in.Dst]
		for lane := 0; lane < isa.WarpWidth; lane++ {
			if mask&(1<<uint(lane)) != 0 {
				d[lane] = a[lane] & b[lane]
			}
		}
		w.advance()
	case isa.OpOR:
		a, b, d := &w.Regs[in.Src[0]], &w.Regs[in.Src[1]], &w.Regs[in.Dst]
		for lane := 0; lane < isa.WarpWidth; lane++ {
			if mask&(1<<uint(lane)) != 0 {
				d[lane] = a[lane] | b[lane]
			}
		}
		w.advance()
	case isa.OpXOR:
		a, b, d := &w.Regs[in.Src[0]], &w.Regs[in.Src[1]], &w.Regs[in.Dst]
		for lane := 0; lane < isa.WarpWidth; lane++ {
			if mask&(1<<uint(lane)) != 0 {
				d[lane] = a[lane] ^ b[lane]
			}
		}
		w.advance()
	case isa.OpSHLI:
		a, d, sh := &w.Regs[in.Src[0]], &w.Regs[in.Dst], in.Imm&31
		for lane := 0; lane < isa.WarpWidth; lane++ {
			if mask&(1<<uint(lane)) != 0 {
				d[lane] = a[lane] << sh
			}
		}
		w.advance()
	case isa.OpSHRI:
		a, d, sh := &w.Regs[in.Src[0]], &w.Regs[in.Dst], in.Imm&31
		for lane := 0; lane < isa.WarpWidth; lane++ {
			if mask&(1<<uint(lane)) != 0 {
				d[lane] = a[lane] >> sh
			}
		}
		w.advance()
	case isa.OpMIN:
		a, b, d := &w.Regs[in.Src[0]], &w.Regs[in.Src[1]], &w.Regs[in.Dst]
		for lane := 0; lane < isa.WarpWidth; lane++ {
			if mask&(1<<uint(lane)) != 0 {
				v := a[lane]
				if b[lane] < v {
					v = b[lane]
				}
				d[lane] = v
			}
		}
		w.advance()
	case isa.OpMAX:
		a, b, d := &w.Regs[in.Src[0]], &w.Regs[in.Src[1]], &w.Regs[in.Dst]
		for lane := 0; lane < isa.WarpWidth; lane++ {
			if mask&(1<<uint(lane)) != 0 {
				v := a[lane]
				if b[lane] > v {
					v = b[lane]
				}
				d[lane] = v
			}
		}
		w.advance()
	case isa.OpSELP:
		a, b, c := &w.Regs[in.Src[0]], &w.Regs[in.Src[1]], &w.Regs[in.Src[2]]
		d := &w.Regs[in.Dst]
		for lane := 0; lane < isa.WarpWidth; lane++ {
			if mask&(1<<uint(lane)) != 0 {
				if c[lane] != 0 {
					d[lane] = a[lane]
				} else {
					d[lane] = b[lane]
				}
			}
		}
		w.advance()
	case isa.OpSFU:
		s, d := &w.Regs[in.Src[0]], &w.Regs[in.Dst]
		for lane := 0; lane < isa.WarpWidth; lane++ {
			if mask&(1<<uint(lane)) != 0 {
				d[lane] = Mix(s[lane])
			}
		}
		w.advance()
	case isa.OpLDG, isa.OpLDS:
		addrs := &w.Regs[in.Src[0]]
		n := 0
		for lane := 0; lane < isa.WarpWidth; lane++ {
			if mask&(1<<uint(lane)) == 0 {
				continue
			}
			a := addrs[lane] + in.Imm
			w.addrBuf[n] = a
			n++
			if in.Op == isa.OpLDG {
				w.Regs[in.Dst][lane] = w.Mem.LoadGlobal(a)
			} else {
				w.Regs[in.Dst][lane] = w.Mem.LoadShared(w.CTA, a)
			}
		}
		info.Addrs = w.addrBuf[:n]
		w.advance()
	case isa.OpSTG, isa.OpSTS:
		addrs := &w.Regs[in.Src[0]]
		vals := &w.Regs[in.Src[1]]
		n := 0
		for lane := 0; lane < isa.WarpWidth; lane++ {
			if mask&(1<<uint(lane)) == 0 {
				continue
			}
			a := addrs[lane] + in.Imm
			w.addrBuf[n] = a
			n++
			if in.Op == isa.OpSTG {
				w.Mem.StoreGlobal(a, vals[lane])
			} else {
				w.Mem.StoreShared(w.CTA, a, vals[lane])
			}
		}
		info.Addrs = w.addrBuf[:n]
		w.advance()
	case isa.OpBNZ, isa.OpBZ:
		cond := &w.Regs[in.Src[0]]
		var taken uint32
		for lane := 0; lane < isa.WarpWidth; lane++ {
			bit := uint32(1) << uint(lane)
			if mask&bit == 0 {
				continue
			}
			nz := cond[lane] != 0
			if (in.Op == isa.OpBNZ) == nz {
				taken |= bit
			}
		}
		w.branch(pc, in.Target, taken, mask)
	case isa.OpBRA:
		w.jump(in.Target)
	case isa.OpBAR:
		info.AtBarrier = true
		w.advance()
	case isa.OpEXIT:
		w.exit(mask)
		info.Exited = w.done
	default:
		panic(fmt.Sprintf("exec: unhandled opcode %v", in.Op))
	}
	return info
}

// advance moves to the next instruction, following fallthrough at block
// ends and popping reconvergence frames whose rejoin block is reached.
func (w *Warp) advance() {
	f := w.top()
	f.pc.Index++
	if f.pc.Index >= len(w.K.Blocks[f.pc.Block].Insns) {
		w.toBlock(f.pc.Block + 1)
	}
}

// jump transfers the top frame to the start of block b, handling
// reconvergence pops.
func (w *Warp) jump(b int) { w.toBlock(b) }

func (w *Warp) toBlock(b int) {
	f := w.top()
	f.pc = isa.PC{Block: b, Index: 0}
	// Pop frames whose reconvergence block has been reached. The frame
	// below resumes at its own pc: sibling frames hold the other
	// divergent path, and the parent frame was parked at this rejoin
	// block when the divergence was created.
	for len(w.stack) > 1 && w.top().pc.Block == w.top().rejoin {
		w.stack = w.stack[:len(w.stack)-1]
	}
}

// branch handles a potentially divergent conditional branch at pc with the
// given taken mask.
func (w *Warp) branch(pc isa.PC, target int, taken, mask uint32) {
	fall := mask &^ taken
	switch {
	case taken == 0:
		w.advance()
	case fall == 0:
		w.jump(target)
	default:
		// Divergence: reconverge at the immediate postdominator of
		// the branch block. Replace the current frame position with
		// the reconvergence point, then push the fallthrough and
		// taken paths (taken executes first).
		rejoin := w.G.IPDom[pc.Block]
		f := w.top()
		if rejoin == -1 {
			// No reconvergence (both arms exit); run arms to
			// completion with rejoin sentinel -1.
			f.pc = isa.PC{Block: pc.Block, Index: len(w.K.Blocks[pc.Block].Insns) - 1}
			// This frame becomes unreachable once both arms exit.
		} else {
			f.pc = isa.PC{Block: rejoin, Index: 0}
		}
		w.stack = append(w.stack,
			frame{pc: isa.PC{Block: pc.Block + 1, Index: 0}, rejoin: rejoin, mask: fall},
			frame{pc: isa.PC{Block: target, Index: 0}, rejoin: rejoin, mask: taken},
		)
		// Immediately pop if a pushed path starts at its rejoin
		// (degenerate hammock).
		for len(w.stack) > 1 && w.top().pc.Block == w.top().rejoin {
			w.stack = w.stack[:len(w.stack)-1]
		}
	}
}

// exit retires the given lanes from every stack frame.
func (w *Warp) exit(mask uint32) {
	for i := range w.stack {
		w.stack[i].mask &^= mask
	}
	// Pop empty frames.
	for len(w.stack) > 0 && w.top().mask == 0 {
		w.stack = w.stack[:len(w.stack)-1]
	}
	if len(w.stack) == 0 {
		w.done = true
	}
}

// StackDepth exposes the SIMT stack depth (diagnostics and tests).
func (w *Warp) StackDepth() int { return len(w.stack) }

// ActiveLaneCount returns the popcount of the current mask.
func (w *Warp) ActiveLaneCount() int { return bits.OnesCount32(w.ActiveMask()) }
