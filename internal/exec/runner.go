package exec

import (
	"fmt"

	"repro/internal/cfg"
	"repro/internal/isa"
)

// RunResult is the architectural outcome of a functional kernel run.
type RunResult struct {
	// Stores is the final content of every written global word.
	Stores map[uint32]uint32
	// DynInsns is the total dynamic instruction count across warps.
	DynInsns uint64
	// FinalRegs[w] is warp w's final register file.
	FinalRegs [][][isa.WarpWidth]uint32
}

// Run executes numWarps warps of k functionally (no timing) with a simple
// round-robin interleaving and CTA barrier handling, and returns the final
// architectural state. It is the golden reference the timing models are
// checked against: any register-management scheme (baseline, RegLess, ...)
// must produce exactly this state.
func Run(k *isa.Kernel, numWarps int, mem *Memory) (*RunResult, error) {
	return RunLimit(k, numWarps, mem, 200_000_000)
}

// RunLimit is Run with an explicit dynamic-instruction budget; exceeding
// it returns an error (runaway-loop guard).
func RunLimit(k *isa.Kernel, numWarps int, mem *Memory, maxSteps uint64) (*RunResult, error) {
	if mem == nil {
		mem = NewMemory(nil)
	}
	g := cfg.New(k)
	warps := make([]*Warp, numWarps)
	for i := range warps {
		warps[i] = NewWarp(k, g, i, i/k.WarpsPerCTA, mem)
	}
	atBarrier := make([]bool, numWarps)
	var total uint64
	for {
		progress := false
		allDone := true
		for i, w := range warps {
			if w.Done() {
				continue
			}
			allDone = false
			if atBarrier[i] {
				continue
			}
			// Run a bounded burst for speed.
			for burst := 0; burst < 64 && !w.Done(); burst++ {
				info := w.Step()
				total++
				progress = true
				if info.AtBarrier {
					atBarrier[i] = true
					break
				}
			}
			if total > maxSteps {
				return nil, fmt.Errorf("exec: kernel %q exceeded %d steps (runaway loop?)", k.Name, maxSteps)
			}
		}
		if allDone {
			break
		}
		// Release barriers per CTA when all live warps of the CTA have
		// arrived.
		released := releaseBarriers(warps, atBarrier, k.WarpsPerCTA)
		if !progress && !released {
			return nil, fmt.Errorf("exec: kernel %q deadlocked at barrier", k.Name)
		}
	}

	res := &RunResult{
		Stores:   mem.GlobalStores(),
		DynInsns: total,
	}
	for _, w := range warps {
		regs := make([][isa.WarpWidth]uint32, len(w.Regs))
		copy(regs, w.Regs)
		res.FinalRegs = append(res.FinalRegs, regs)
	}
	return res, nil
}

// releaseBarriers clears the barrier flag for every CTA whose live warps
// have all arrived, returning whether any warp was released.
func releaseBarriers(warps []*Warp, atBarrier []bool, warpsPerCTA int) bool {
	numCTAs := (len(warps) + warpsPerCTA - 1) / warpsPerCTA
	any := false
	for cta := 0; cta < numCTAs; cta++ {
		lo := cta * warpsPerCTA
		hi := lo + warpsPerCTA
		if hi > len(warps) {
			hi = len(warps)
		}
		ready := true
		waiting := false
		for i := lo; i < hi; i++ {
			if warps[i].Done() {
				continue
			}
			if !atBarrier[i] {
				ready = false
			} else {
				waiting = true
			}
		}
		if ready && waiting {
			for i := lo; i < hi; i++ {
				if atBarrier[i] {
					atBarrier[i] = false
					any = true
				}
			}
		}
	}
	return any
}
