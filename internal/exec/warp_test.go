package exec

import (
	"testing"

	"repro/internal/cfg"
	"repro/internal/isa"
)

func runSingleWarp(t *testing.T, k *isa.Kernel) (*Warp, *Memory) {
	t.Helper()
	mem := NewMemory(nil)
	g := cfg.New(k)
	w := NewWarp(k, g, 0, 0, mem)
	for steps := 0; !w.Done(); steps++ {
		if steps > 1_000_000 {
			t.Fatalf("kernel %q did not terminate", k.Name)
		}
		w.Step()
	}
	return w, mem
}

func TestStraightlineValues(t *testing.T) {
	b := isa.NewBuilder("vals", 1)
	tid := b.Tid()
	four := b.Muli(tid, 4)
	base := b.Movi(1 << 20)
	addr := b.Iadd(four, base)
	b.Stg(addr, tid, 0)
	b.Exit()
	k := b.MustKernel()
	_, mem := runSingleWarp(t, k)
	for lane := 0; lane < isa.WarpWidth; lane++ {
		a := uint32(1<<20 + 4*lane)
		if got := mem.LoadGlobal(a); got != uint32(lane) {
			t.Fatalf("mem[%#x] = %d, want %d", a, got, lane)
		}
	}
}

func TestDivergentDiamond(t *testing.T) {
	// Even lanes get 100, odd lanes get 200; all lanes then add lane id.
	b := isa.NewBuilder("diamond", 1)
	lane := b.Lane()
	odd := b.OpImm(isa.OpIADDI, lane, 0)
	b.Op2To(isa.OpAND, odd, odd, b.Movi(1))
	r := b.NewReg()
	elseL, join := b.Label(), b.Label()
	b.Bnz(odd, elseL)
	b.MoviTo(r, 100)
	b.Bra(join)
	b.Bind(elseL)
	b.MoviTo(r, 200)
	b.Bind(join)
	sum := b.Iadd(r, lane)
	addr := b.Muli(lane, 4)
	b.Stg(addr, sum, 4096)
	b.Exit()
	k := b.MustKernel()
	w, mem := runSingleWarp(t, k)
	if w.StackDepth() != 0 {
		t.Fatalf("stack depth = %d after exit", w.StackDepth())
	}
	for l := 0; l < isa.WarpWidth; l++ {
		want := uint32(100 + l)
		if l%2 == 1 {
			want = uint32(200 + l)
		}
		if got := mem.LoadGlobal(uint32(4096 + 4*l)); got != want {
			t.Fatalf("lane %d: got %d, want %d", l, got, want)
		}
	}
}

func TestDivergentLoopTripCounts(t *testing.T) {
	// Each lane loops lane+1 times, accumulating 10 per trip.
	b := isa.NewBuilder("divloop", 1)
	lane := b.Lane()
	i := b.Addi(lane, 1)
	acc := b.Movi(0)
	ten := b.Movi(10)
	top := b.Label()
	b.Bind(top)
	b.Op2To(isa.OpIADD, acc, acc, ten)
	b.OpImmTo(isa.OpIADDI, i, i, ^uint32(0))
	b.Bnz(i, top)
	addr := b.Muli(lane, 4)
	b.Stg(addr, acc, 8192)
	b.Exit()
	k := b.MustKernel()
	_, mem := runSingleWarp(t, k)
	for l := 0; l < isa.WarpWidth; l++ {
		want := uint32(10 * (l + 1))
		if got := mem.LoadGlobal(uint32(8192 + 4*l)); got != want {
			t.Fatalf("lane %d: acc = %d, want %d", l, got, want)
		}
	}
}

func TestNestedDivergence(t *testing.T) {
	// Outer split on lane<16, inner split on lane parity.
	b := isa.NewBuilder("nested", 1)
	lane := b.Lane()
	hi := b.OpImm(isa.OpSHRI, lane, 4) // 1 for lanes >= 16
	parity := b.Op2(isa.OpAND, lane, b.Movi(1))
	r := b.Movi(0)
	outerElse, outerJoin := b.Label(), b.Label()
	innerElse, innerJoin := b.Label(), b.Label()
	b.Bnz(hi, outerElse)
	// lanes < 16: inner diamond on parity
	b.Bnz(parity, innerElse)
	b.MoviTo(r, 1) // even low lanes
	b.Bra(innerJoin)
	b.Bind(innerElse)
	b.MoviTo(r, 2) // odd low lanes
	b.Bind(innerJoin)
	b.Bra(outerJoin)
	b.Bind(outerElse)
	b.MoviTo(r, 3) // high lanes
	b.Bind(outerJoin)
	addr := b.Muli(lane, 4)
	b.Stg(addr, r, 0)
	b.Exit()
	k := b.MustKernel()
	_, mem := runSingleWarp(t, k)
	for l := 0; l < isa.WarpWidth; l++ {
		var want uint32
		switch {
		case l >= 16:
			want = 3
		case l%2 == 1:
			want = 2
		default:
			want = 1
		}
		if got := mem.LoadGlobal(uint32(4 * l)); got != want {
			t.Fatalf("lane %d: r = %d, want %d", l, got, want)
		}
	}
}

func TestDivergentExit(t *testing.T) {
	// Odd lanes exit early; even lanes store.
	b := isa.NewBuilder("dexit", 1)
	lane := b.Lane()
	parity := b.Op2(isa.OpAND, lane, b.Movi(1))
	cont := b.Label()
	b.Bz(parity, cont)
	b.Exit() // odd lanes leave
	b.Bind(cont)
	addr := b.Muli(lane, 4)
	b.Stg(addr, lane, 1024)
	b.Exit()
	k := b.MustKernel()
	_, mem := runSingleWarp(t, k)
	for l := 0; l < isa.WarpWidth; l += 2 {
		if got := mem.LoadGlobal(uint32(1024 + 4*l)); got != uint32(l) {
			t.Fatalf("even lane %d: got %d", l, got)
		}
	}
	// Odd lanes never stored; their slots read as the init pattern.
	a := uint32(1024 + 4)
	if got := mem.LoadGlobal(a); got != Mix(a) {
		t.Fatalf("odd lane slot written: %d", got)
	}
}

func TestSharedMemoryAndBarrier(t *testing.T) {
	// Warp 0 writes shared[lane], all warps barrier, then every warp
	// reads shared[lane] and stores to its own global slot.
	b := isa.NewBuilder("shmem", 2)
	lane := b.Lane()
	wid := b.Wid()
	saddr := b.Muli(lane, 4)
	val := b.Addi(lane, 500)
	skip := b.Label()
	b.Bnz(wid, skip) // only warp 0 (of the CTA... wid is global) writes
	b.Sts(saddr, val, 0)
	b.Bind(skip)
	b.Bar()
	got := b.Lds(saddr, 0)
	tid := b.Tid()
	gaddr := b.Muli(tid, 4)
	b.Stg(gaddr, got, 1<<16)
	b.Exit()
	k := b.MustKernel()

	mem := NewMemory(nil)
	res, err := Run(k, 2, mem) // one CTA of 2 warps
	if err != nil {
		t.Fatal(err)
	}
	if res.DynInsns == 0 {
		t.Fatal("no instructions executed")
	}
	for tid := 0; tid < 2*isa.WarpWidth; tid++ {
		want := uint32(500 + tid%isa.WarpWidth)
		a := uint32(1<<16 + 4*tid)
		if got := mem.LoadGlobal(a); got != want {
			t.Fatalf("tid %d: got %d, want %d", tid, got, want)
		}
	}
}

func TestRunDeadlockDetection(t *testing.T) {
	// Warp 0 exits before the barrier; warp 1 waits. With both in one
	// CTA the barrier must still release (exited warps don't count).
	b := isa.NewBuilder("bar-exit", 2)
	wid := b.Wid()
	wait := b.Label()
	b.Bnz(wid, wait)
	b.Exit() // warp 0 exits
	b.Bind(wait)
	b.Bar()
	addr := b.Movi(64)
	b.Stg(addr, wid, 0)
	b.Exit()
	k := b.MustKernel()
	if _, err := Run(k, 2, nil); err != nil {
		t.Fatalf("barrier with exited warp deadlocked: %v", err)
	}
}

func TestRunLimitGuardsRunaway(t *testing.T) {
	// An infinite loop must trip the step budget, not hang.
	b := isa.NewBuilder("forever", 1)
	one := b.Movi(1)
	top := b.Label()
	b.Bind(top)
	b.Op2To(isa.OpIADD, one, one, one)
	lbl := b.Movi(1)
	b.Bnz(lbl, top)
	b.Exit()
	k := b.MustKernel()
	if _, err := RunLimit(k, 1, nil, 10_000); err == nil {
		t.Fatal("runaway kernel did not error")
	}
}
