package exec

import (
	"testing"

	"repro/internal/cfg"
	"repro/internal/isa"
)

// runBinop executes `dst = a OP b` for every lane with lane-varying
// operands and returns the destination values.
func runBinop(t *testing.T, op isa.Opcode, af, bf func(lane int) uint32) [isa.WarpWidth]uint32 {
	t.Helper()
	b := isa.NewBuilder("sem", 1)
	lane := b.Lane()
	// a = f(lane) via arithmetic: materialize with shifts and adds is
	// awkward; instead load from memory initialized by the generator.
	a4 := b.Muli(lane, 4)
	av := b.Ldg(a4, 0x1000)
	bv := b.Ldg(a4, 0x2000)
	r := b.Op2(op, av, bv)
	b.Stg(a4, r, 0x3000)
	b.Exit()
	k := b.MustKernel()

	mem := NewMemory(func(addr uint32) uint32 {
		lane := (addr % 0x1000) / 4
		if addr >= 0x2000 {
			return bf(int(lane))
		}
		return af(int(lane))
	})
	g := cfg.New(k)
	w := NewWarp(k, g, 0, 0, mem)
	for !w.Done() {
		w.Step()
	}
	var out [isa.WarpWidth]uint32
	for l := 0; l < isa.WarpWidth; l++ {
		out[l] = mem.LoadGlobal(uint32(0x3000 + 4*l))
	}
	return out
}

func TestBinaryOpSemantics(t *testing.T) {
	af := func(l int) uint32 { return uint32(l*7 + 3) }
	bf := func(l int) uint32 { return uint32(l*13 + 100) }
	cases := []struct {
		op   isa.Opcode
		want func(a, b uint32) uint32
	}{
		{isa.OpIADD, func(a, b uint32) uint32 { return a + b }},
		{isa.OpISUB, func(a, b uint32) uint32 { return a - b }},
		{isa.OpIMUL, func(a, b uint32) uint32 { return a * b }},
		{isa.OpAND, func(a, b uint32) uint32 { return a & b }},
		{isa.OpOR, func(a, b uint32) uint32 { return a | b }},
		{isa.OpXOR, func(a, b uint32) uint32 { return a ^ b }},
		{isa.OpMIN, func(a, b uint32) uint32 {
			if a < b {
				return a
			}
			return b
		}},
		{isa.OpMAX, func(a, b uint32) uint32 {
			if a > b {
				return a
			}
			return b
		}},
		{isa.OpFADD, func(a, b uint32) uint32 { return a + b }},
		{isa.OpFMUL, func(a, b uint32) uint32 { return a * b }},
	}
	for _, c := range cases {
		got := runBinop(t, c.op, af, bf)
		for l := 0; l < isa.WarpWidth; l++ {
			if want := c.want(af(l), bf(l)); got[l] != want {
				t.Fatalf("%v lane %d: got %d, want %d", c.op, l, got[l], want)
			}
		}
	}
}

func TestImmediateOpSemantics(t *testing.T) {
	b := isa.NewBuilder("imm", 1)
	lane := b.Lane()
	addr := b.Muli(lane, 4)
	v1 := b.Addi(lane, 1000)
	v2 := b.OpImm(isa.OpSHLI, v1, 3)
	v3 := b.OpImm(isa.OpSHRI, v2, 1)
	v4 := b.Muli(v3, 5)
	b.Stg(addr, v4, 0x4000)
	b.Exit()
	k := b.MustKernel()
	mem := NewMemory(nil)
	g := cfg.New(k)
	w := NewWarp(k, g, 0, 0, mem)
	for !w.Done() {
		w.Step()
	}
	for l := 0; l < isa.WarpWidth; l++ {
		want := (uint32(l+1000) << 3 >> 1) * 5
		if got := mem.LoadGlobal(uint32(0x4000 + 4*l)); got != want {
			t.Fatalf("lane %d: got %d, want %d", l, got, want)
		}
	}
}

func TestTernaryOpSemantics(t *testing.T) {
	b := isa.NewBuilder("tri", 1)
	lane := b.Lane()
	addr := b.Muli(lane, 4)
	two := b.Movi(2)
	five := b.Movi(5)
	mad := b.Op3(isa.OpIMAD, lane, two, five) // lane*2 + 5
	parity := b.Op2(isa.OpAND, lane, b.Movi(1))
	sel := b.Op3(isa.OpSELP, mad, five, parity) // parity!=0 ? mad : 5
	ffma := b.Op3(isa.OpFFMA, sel, two, lane)   // sel*2 + lane
	b.Stg(addr, ffma, 0x5000)
	b.Exit()
	k := b.MustKernel()
	mem := NewMemory(nil)
	g := cfg.New(k)
	w := NewWarp(k, g, 0, 0, mem)
	for !w.Done() {
		w.Step()
	}
	for l := 0; l < isa.WarpWidth; l++ {
		sel := uint32(5)
		if l%2 == 1 {
			sel = uint32(l*2 + 5)
		}
		want := sel*2 + uint32(l)
		if got := mem.LoadGlobal(uint32(0x5000 + 4*l)); got != want {
			t.Fatalf("lane %d: got %d, want %d", l, got, want)
		}
	}
}

func TestSFUDeterministic(t *testing.T) {
	b := isa.NewBuilder("sfu", 1)
	lane := b.Lane()
	addr := b.Muli(lane, 4)
	s := b.Sfu(lane)
	b.Stg(addr, s, 0x6000)
	b.Exit()
	k := b.MustKernel()
	mem := NewMemory(nil)
	g := cfg.New(k)
	w := NewWarp(k, g, 0, 0, mem)
	for !w.Done() {
		w.Step()
	}
	for l := 0; l < isa.WarpWidth; l++ {
		if got := mem.LoadGlobal(uint32(0x6000 + 4*l)); got != Mix(uint32(l)) {
			t.Fatalf("lane %d: SFU result not Mix(lane)", l)
		}
	}
}

func TestNopAndWid(t *testing.T) {
	b := isa.NewBuilder("nw", 1)
	b.MoviTo(b.NewReg(), 0) // placeholder to allocate r0 deterministically
	wid := b.Wid()
	lane := b.Lane()
	addr := b.Muli(lane, 4)
	b.Stg(addr, wid, 0x7000)
	b.Exit()
	k := b.MustKernel()
	// NOP injection: prepend a NOP by hand.
	k.Blocks[0].Insns = append([]isa.Instruction{{Op: isa.OpNOP,
		Dst: isa.NoReg, Src: [3]isa.Reg{isa.NoReg, isa.NoReg, isa.NoReg}}},
		k.Blocks[0].Insns...)
	mem := NewMemory(nil)
	g := cfg.New(k)
	w := NewWarp(k, g, 5, 0, mem)
	steps := uint64(0)
	for !w.Done() {
		w.Step()
		steps++
	}
	if w.Steps() != steps {
		t.Fatalf("Steps = %d, want %d", w.Steps(), steps)
	}
	if got := mem.LoadGlobal(0x7000); got != 5 {
		t.Fatalf("wid = %d, want 5", got)
	}
}

func TestActiveLaneCountAndMask(t *testing.T) {
	b := isa.NewBuilder("mask", 1)
	lane := b.Lane()
	parity := b.Op2(isa.OpAND, lane, b.Movi(1))
	skip := b.Label()
	b.Bnz(parity, skip)
	b.MoviTo(b.NewReg(), 1) // even lanes only
	b.Bind(skip)
	b.Exit()
	k := b.MustKernel()
	g := cfg.New(k)
	w := NewWarp(k, g, 0, 0, NewMemory(nil))
	if w.ActiveLaneCount() != isa.WarpWidth {
		t.Fatalf("initial active = %d", w.ActiveLaneCount())
	}
	// Step until the divergent movi executes; its mask must be 16 lanes.
	for !w.Done() {
		info := w.Step()
		if info.Insn.Op == isa.OpMOVI && info.PC.Block > 0 {
			if n := popcount(info.Mask); n != 16 {
				t.Fatalf("divergent movi mask = %d lanes", n)
			}
		}
	}
	if w.ActiveMask() != 0 {
		t.Fatal("mask nonzero after exit")
	}
}

func popcount(m uint32) int {
	n := 0
	for ; m != 0; m &= m - 1 {
		n++
	}
	return n
}
