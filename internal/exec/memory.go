// Package exec executes kernels functionally: per-warp architectural
// register state with full 32-lane values, a SIMT reconvergence stack for
// control divergence, and a functional memory. The timing simulator
// (package sim) drives one exec.Warp per hardware warp, deciding *when*
// each instruction issues while exec decides *what* it computes.
//
// Executing functionally at issue time means register values observed by
// the RegLess hardware models (notably the compressor's pattern matcher)
// are genuine values produced by real address arithmetic and loop
// induction, not synthesized statistics.
package exec

// Memory is the functional (value-level) memory: a global space plus one
// shared-memory space per CTA. Uninitialized global words read through an
// init generator so loads always return deterministic values.
type Memory struct {
	global map[uint32]uint32
	shared map[int]map[uint32]uint32
	init   func(addr uint32) uint32
}

// NewMemory returns a Memory whose uninitialized global words read as
// init(addr); a nil init reads as a mixed hash of the address (so values
// are deterministic but not trivially compressible).
func NewMemory(init func(addr uint32) uint32) *Memory {
	if init == nil {
		init = func(addr uint32) uint32 { return Mix(addr) }
	}
	return &Memory{
		global: make(map[uint32]uint32),
		shared: make(map[int]map[uint32]uint32),
		init:   init,
	}
}

// Mix is a deterministic 32-bit hash used for SFU results and default
// memory contents.
func Mix(x uint32) uint32 {
	x ^= x >> 16
	x *= 0x7feb352d
	x ^= x >> 15
	x *= 0x846ca68b
	x ^= x >> 16
	return x
}

func wordAddr(addr uint32) uint32 { return addr &^ 3 }

// LoadGlobal reads the 32-bit word containing addr.
func (m *Memory) LoadGlobal(addr uint32) uint32 {
	a := wordAddr(addr)
	if v, ok := m.global[a]; ok {
		return v
	}
	return m.init(a)
}

// StoreGlobal writes the 32-bit word containing addr.
func (m *Memory) StoreGlobal(addr, val uint32) {
	m.global[wordAddr(addr)] = val
}

// LoadShared reads from cta's shared memory (zero-initialized).
func (m *Memory) LoadShared(cta int, addr uint32) uint32 {
	s := m.shared[cta]
	if s == nil {
		return 0
	}
	return s[wordAddr(addr)]
}

// StoreShared writes to cta's shared memory.
func (m *Memory) StoreShared(cta int, addr, val uint32) {
	s := m.shared[cta]
	if s == nil {
		s = make(map[uint32]uint32)
		m.shared[cta] = s
	}
	s[wordAddr(addr)] = val
}

// GlobalStores returns a copy of every explicitly written global word —
// the kernel's observable output, used by equivalence tests.
func (m *Memory) GlobalStores() map[uint32]uint32 {
	out := make(map[uint32]uint32, len(m.global))
	for k, v := range m.global {
		out[k] = v
	}
	return out
}
