// Package exec executes kernels functionally: per-warp architectural
// register state with full 32-lane values, a SIMT reconvergence stack for
// control divergence, and a functional memory. The timing simulator
// (package sim) drives one exec.Warp per hardware warp, deciding *when*
// each instruction issues while exec decides *what* it computes.
//
// Executing functionally at issue time means register values observed by
// the RegLess hardware models (notably the compressor's pattern matcher)
// are genuine values produced by real address arithmetic and loop
// induction, not synthesized statistics.
package exec

import "math/bits"

// The functional memory is paged: 64 KiB pages held in a map keyed by
// the high address bits, with the last-touched page cached so the
// streaming access patterns the kernels produce (unit-stride rows,
// per-warp tiles) hit a two-compare fast path instead of a map lookup
// per lane. Global pages carry a written bitmap because unwritten words
// read through the init generator; shared pages don't — their words are
// zero-initialized, which a zeroed page already encodes.
const (
	pageShift = 16                    // 64 KiB of address space per page
	pageWords = 1 << (pageShift - 2)  // 4-byte words per page
	pageMask  = uint32(pageWords - 1) // word-index mask within a page
)

type page struct {
	vals    [pageWords]uint32
	written [pageWords / 64]uint64
}

// pagedMem is one paged address space with a one-entry page cache.
type pagedMem struct {
	pages   map[uint32]*page
	lastKey uint32
	lastPg  *page
}

// lookup returns the page containing word address a, or nil if no store
// has touched it.
func (p *pagedMem) lookup(a uint32) *page {
	key := a >> pageShift
	if pg := p.lastPg; pg != nil && p.lastKey == key {
		return pg
	}
	pg := p.pages[key]
	if pg != nil {
		p.lastKey, p.lastPg = key, pg
	}
	return pg
}

// ensure returns the page containing word address a, allocating it on
// first store.
func (p *pagedMem) ensure(a uint32) *page {
	key := a >> pageShift
	if pg := p.lastPg; pg != nil && p.lastKey == key {
		return pg
	}
	if p.pages == nil {
		p.pages = make(map[uint32]*page)
	}
	pg := p.pages[key]
	if pg == nil {
		pg = new(page)
		p.pages[key] = pg
	}
	p.lastKey, p.lastPg = key, pg
	return pg
}

// Memory is the functional (value-level) memory: a global space plus one
// shared-memory space per CTA. Uninitialized global words read through an
// init generator so loads always return deterministic values.
type Memory struct {
	global pagedMem
	shared []pagedMem // indexed by CTA
	init   func(addr uint32) uint32
}

// NewMemory returns a Memory whose uninitialized global words read as
// init(addr); a nil init reads as a mixed hash of the address (so values
// are deterministic but not trivially compressible).
func NewMemory(init func(addr uint32) uint32) *Memory {
	if init == nil {
		init = func(addr uint32) uint32 { return Mix(addr) }
	}
	return &Memory{init: init}
}

// Mix is a deterministic 32-bit hash used for SFU results and default
// memory contents.
func Mix(x uint32) uint32 {
	x ^= x >> 16
	x *= 0x7feb352d
	x ^= x >> 15
	x *= 0x846ca68b
	x ^= x >> 16
	return x
}

func wordAddr(addr uint32) uint32 { return addr &^ 3 }

// LoadGlobal reads the 32-bit word containing addr.
func (m *Memory) LoadGlobal(addr uint32) uint32 {
	a := wordAddr(addr)
	if pg := m.global.lookup(a); pg != nil {
		idx := (a >> 2) & pageMask
		if pg.written[idx>>6]&(1<<(idx&63)) != 0 {
			return pg.vals[idx]
		}
	}
	return m.init(a)
}

// StoreGlobal writes the 32-bit word containing addr.
func (m *Memory) StoreGlobal(addr, val uint32) {
	a := wordAddr(addr)
	pg := m.global.ensure(a)
	idx := (a >> 2) & pageMask
	pg.vals[idx] = val
	pg.written[idx>>6] |= 1 << (idx & 63)
}

// LoadShared reads from cta's shared memory (zero-initialized).
func (m *Memory) LoadShared(cta int, addr uint32) uint32 {
	if cta >= len(m.shared) {
		return 0
	}
	a := wordAddr(addr)
	pg := m.shared[cta].lookup(a)
	if pg == nil {
		return 0
	}
	return pg.vals[(a>>2)&pageMask]
}

// StoreShared writes to cta's shared memory.
func (m *Memory) StoreShared(cta int, addr, val uint32) {
	for cta >= len(m.shared) {
		m.shared = append(m.shared, pagedMem{})
	}
	a := wordAddr(addr)
	m.shared[cta].ensure(a).vals[(a>>2)&pageMask] = val
}

// GlobalStores returns a copy of every explicitly written global word —
// the kernel's observable output, used by equivalence tests.
func (m *Memory) GlobalStores() map[uint32]uint32 {
	out := make(map[uint32]uint32)
	for key, pg := range m.global.pages {
		base := key << pageShift
		for w, mask := range pg.written {
			for mask != 0 {
				i := w*64 + bits.TrailingZeros64(mask)
				out[base+uint32(i)<<2] = pg.vals[i]
				mask &= mask - 1
			}
		}
	}
	return out
}
