package launch

import (
	"testing"

	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/kernels"
	"repro/internal/rf"
	"repro/internal/sim"
)

func baseFactory() ProviderFactory {
	return func(int) (sim.Provider, error) { return rf.NewBaseline(), nil }
}

func testCfg() sim.Config {
	c := sim.DefaultConfig()
	c.MaxCycles = 10_000_000
	return c
}

func TestWaveEquivalence(t *testing.T) {
	k := kernels.MustLoad("streamcluster")
	mm := exec.NewMemory(nil)
	res, err := Run(k, 32, 8, testCfg(), baseFactory(), mm)
	if err != nil {
		t.Fatal(err)
	}
	if res.Waves != 4 || res.TotalWarps != 32 {
		t.Fatalf("waves = %d total = %d", res.Waves, res.TotalWarps)
	}
	ref, err := exec.Run(k, 32, exec.NewMemory(nil))
	if err != nil {
		t.Fatal(err)
	}
	if res.Insns != ref.DynInsns {
		t.Fatalf("insns %d vs %d", res.Insns, ref.DynInsns)
	}
	got := mm.GlobalStores()
	if len(got) != len(ref.Stores) {
		t.Fatalf("stores %d vs %d", len(got), len(ref.Stores))
	}
	for a, v := range ref.Stores {
		if got[a] != v {
			t.Fatalf("wave launch diverged at %#x", a)
		}
	}
	// Total cycles = sum of waves.
	var sum uint64
	for _, w := range res.PerWave {
		sum += w.Cycles
	}
	if sum != res.Cycles {
		t.Fatalf("cycles %d != wave sum %d", res.Cycles, sum)
	}
}

func TestWaveRegLess(t *testing.T) {
	k := kernels.MustLoad("nw") // barriers across waves
	mm := exec.NewMemory(nil)
	factory := func(int) (sim.Provider, error) {
		return core.New(core.DefaultConfig(), k)
	}
	res, err := Run(k, 16, 8, testCfg(), factory, mm)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := exec.Run(k, 16, exec.NewMemory(nil))
	if err != nil {
		t.Fatal(err)
	}
	got := mm.GlobalStores()
	for a, v := range ref.Stores {
		if got[a] != v {
			t.Fatalf("RegLess wave launch diverged at %#x", a)
		}
	}
	if res.Waves != 2 {
		t.Fatalf("waves = %d", res.Waves)
	}
}

func TestMoreWavesCostMore(t *testing.T) {
	k := kernels.MustLoad("lud")
	a, err := Run(k, 32, 32, testCfg(), baseFactory(), exec.NewMemory(nil))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(k, 32, 16, testCfg(), baseFactory(), exec.NewMemory(nil))
	if err != nil {
		t.Fatal(err)
	}
	if b.Cycles <= a.Cycles {
		t.Fatalf("halving occupancy did not cost cycles: %d vs %d", b.Cycles, a.Cycles)
	}
}

func TestLaunchValidation(t *testing.T) {
	k := kernels.MustLoad("nw") // CTA size 8
	cfg := testCfg()
	if _, err := Run(k, 16, 6, cfg, baseFactory(), nil); err == nil {
		t.Fatal("accepted resident warps not divisible by schedulers/CTA")
	}
	if _, err := Run(k, 12, 8, cfg, baseFactory(), nil); err == nil {
		t.Fatal("accepted grid not a multiple of CTA size")
	}
	if _, err := Run(k, 0, 8, cfg, baseFactory(), nil); err == nil {
		t.Fatal("accepted zero warps")
	}
}
