package launch

import (
	"fmt"

	"repro/internal/exec"
	"repro/internal/isa"
	"repro/internal/kernels"
	"repro/internal/mem"
	"repro/internal/sim"
)

// AppProviderFactory builds a register provider for one kernel of an
// application sequence (kernel launches re-initialize register hardware,
// so each kernel gets a fresh provider).
type AppProviderFactory func(kernelIndex int, k *isa.Kernel) (sim.Provider, error)

// AppResult summarizes a multi-kernel application run.
type AppResult struct {
	// Cycles is the end-to-end time: kernels launch back-to-back.
	Cycles uint64
	// PerKernel holds each kernel's statistics in launch order.
	PerKernel []*sim.Stats
	// MemStats is the hierarchy's cumulative statistics (the hierarchy —
	// caches included — persists across the sequence, so later kernels
	// hit lines earlier kernels left in L2).
	MemStats mem.Stats
}

// RunApp executes an application's kernels sequentially: one shared
// functional memory (later kernels read earlier kernels' stores) and one
// shared memory hierarchy (warm caches across launches).
func RunApp(app kernels.Application, warps int, cfg sim.Config,
	factory AppProviderFactory, mm *exec.Memory) (*AppResult, error) {
	if len(app.Kernels) == 0 {
		return nil, fmt.Errorf("launch: application %q has no kernels", app.Name)
	}
	if mm == nil {
		mm = exec.NewMemory(nil)
	}
	hier := mem.New(cfg.Mem)
	res := &AppResult{}
	for i, k := range app.Kernels {
		p, err := factory(i, k)
		if err != nil {
			return nil, fmt.Errorf("launch: %s kernel %d provider: %w", app.Name, i, err)
		}
		kcfg := cfg
		kcfg.Warps = warps
		smv, err := sim.NewWithHierarchy(kcfg, k, p, mm, hier)
		if err != nil {
			return nil, fmt.Errorf("launch: %s kernel %d: %w", app.Name, i, err)
		}
		st, err := smv.Run()
		if err != nil {
			return nil, fmt.Errorf("launch: %s kernel %d (%s): %w", app.Name, i, k.Name, err)
		}
		res.Cycles += st.Cycles
		res.PerKernel = append(res.PerKernel, st)
	}
	res.MemStats = hier.Stats
	return res, nil
}
