// Package launch runs a CUDA-style grid on the simulator: when the grid
// holds more warps than an SM can keep resident, the launch proceeds in
// sequential *waves* (as hardware CTA schedulers do once occupancy is
// exhausted). This is what makes occupancy experiments fair: an
// occupancy-limited configuration runs the same total work in more waves
// rather than silently doing less work.
package launch

import (
	"fmt"

	"repro/internal/exec"
	"repro/internal/isa"
	"repro/internal/sim"
)

// ProviderFactory builds a register provider for one wave. Waves run
// sequentially on the same SM; hardware state does not persist between
// them (each wave's provider is fresh, like a new kernel launch).
type ProviderFactory func(wave int) (sim.Provider, error)

// Result aggregates a multi-wave launch.
type Result struct {
	// Cycles is the total run time: waves execute back-to-back.
	Cycles uint64
	// Waves is how many launches were needed.
	Waves int
	// TotalWarps is the grid size executed.
	TotalWarps int
	// Insns sums dynamic instructions across waves.
	Insns uint64
	// PerWave holds each wave's statistics.
	PerWave []*sim.Stats
}

// Run executes totalWarps warps of k with at most residentWarps resident
// at a time (the occupancy limit of the register scheme under test). The
// simulator configuration's Warps field is set per wave. All waves share
// one functional memory, so the launch is architecturally equivalent to
// one big run.
func Run(k *isa.Kernel, totalWarps, residentWarps int, cfg sim.Config,
	factory ProviderFactory, mm *exec.Memory) (*Result, error) {
	if totalWarps <= 0 || residentWarps <= 0 {
		return nil, fmt.Errorf("launch: warps must be positive")
	}
	if residentWarps%cfg.Schedulers != 0 {
		return nil, fmt.Errorf("launch: resident warps %d not divisible by %d schedulers",
			residentWarps, cfg.Schedulers)
	}
	if residentWarps%k.WarpsPerCTA != 0 {
		return nil, fmt.Errorf("launch: resident warps %d not a multiple of CTA size %d",
			residentWarps, k.WarpsPerCTA)
	}
	if totalWarps%k.WarpsPerCTA != 0 {
		return nil, fmt.Errorf("launch: grid %d not a multiple of CTA size %d",
			totalWarps, k.WarpsPerCTA)
	}
	if mm == nil {
		mm = exec.NewMemory(nil)
	}
	res := &Result{TotalWarps: totalWarps}
	for base := 0; base < totalWarps; base += residentWarps {
		n := residentWarps
		if base+n > totalWarps {
			n = totalWarps - base
		}
		waveCfg := cfg
		waveCfg.Warps = n
		waveCfg.WarpIDBase = base
		p, err := factory(res.Waves)
		if err != nil {
			return nil, fmt.Errorf("launch: wave %d provider: %w", res.Waves, err)
		}
		smv, err := sim.New(waveCfg, k, p, mm)
		if err != nil {
			return nil, fmt.Errorf("launch: wave %d: %w", res.Waves, err)
		}
		st, err := smv.Run()
		if err != nil {
			return nil, fmt.Errorf("launch: wave %d: %w", res.Waves, err)
		}
		res.Cycles += st.Cycles
		res.Insns += st.DynInsns
		res.PerWave = append(res.PerWave, st)
		res.Waves++
	}
	return res, nil
}
