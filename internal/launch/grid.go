package launch

// Multi-SM block scheduler: RunGrid distributes a CUDA grid across the
// chip's SMs the way hardware CTA schedulers do once every SM is at its
// occupancy limit — each SM takes a contiguous CTA-aligned chunk of
// warps, all SMs run their chunk concurrently (lockstep, contending for
// the shared banked L2 and DRAM), and when the chip drains the next
// *wave* of chunks launches. Waves are synchronous: a fast SM idles at
// the wave boundary rather than stealing the next chunk early. That
// sacrifices a little fidelity (real schedulers backfill per-CTA) for
// determinism — chunk->SM assignment is a pure function of grid size, SM
// count, and occupancy, never of timing.
//
// The banked L2's *contents* stay warm across waves (a later wave reuses
// lines an earlier wave staged) while its timing bookkeeping resets with
// the per-wave clocks (mem.BankedL2.ResetTiming).

import (
	"fmt"

	"repro/internal/exec"
	"repro/internal/gpu"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/sim"
)

// GridFactory builds the register provider for one SM of one wave.
// Hardware state does not persist between waves (each wave's providers
// are fresh, like a new kernel launch); sm indexes the SM within the
// chip so providers can derive disjoint backing-store offsets.
type GridFactory func(sm, wave int) (sim.Provider, error)

// GridResult aggregates a multi-SM, multi-wave launch.
type GridResult struct {
	// Cycles is the total run time: per-wave chip times (slowest SM)
	// summed across the sequential waves.
	Cycles uint64
	// Waves is how many chip launches were needed.
	Waves int
	// TotalWarps is the grid size executed.
	TotalWarps int
	// Insns sums dynamic instructions across all SMs and waves.
	Insns uint64
	// PerWave holds each wave's chip result.
	PerWave []*gpu.Result
	// L2 is the cumulative chip-level L2/DRAM traffic.
	L2 mem.BankedL2Stats
	// FFSkippedCycles/FFJumps total the coordinated fast-forward's work.
	FFSkippedCycles, FFJumps uint64
}

// RunGrid executes totalWarps warps of k on an sms-SM chip with at most
// residentWarps resident per SM at a time. All SMs share one functional
// memory and one banked L2 (built from l2cfg), so the launch is
// architecturally equivalent to one big run while the timing sees
// chip-level contention. cfg.Warps and cfg.WarpIDBase are set per chunk.
func RunGrid(k *isa.Kernel, totalWarps, residentWarps, sms int, cfg sim.Config,
	l2cfg mem.BankedL2Config, factory GridFactory, mm *exec.Memory) (*GridResult, error) {
	if totalWarps <= 0 || residentWarps <= 0 {
		return nil, fmt.Errorf("launch: warps must be positive")
	}
	if sms <= 0 {
		return nil, fmt.Errorf("launch: need at least one SM")
	}
	if residentWarps%cfg.Schedulers != 0 {
		return nil, fmt.Errorf("launch: resident warps %d not divisible by %d schedulers",
			residentWarps, cfg.Schedulers)
	}
	if residentWarps%k.WarpsPerCTA != 0 {
		return nil, fmt.Errorf("launch: resident warps %d not a multiple of CTA size %d",
			residentWarps, k.WarpsPerCTA)
	}
	if totalWarps%k.WarpsPerCTA != 0 {
		return nil, fmt.Errorf("launch: grid %d not a multiple of CTA size %d",
			totalWarps, k.WarpsPerCTA)
	}
	if mm == nil {
		mm = exec.NewMemory(nil)
	}
	l2, err := mem.NewBankedL2(l2cfg)
	if err != nil {
		return nil, err
	}
	res := &GridResult{TotalWarps: totalWarps}
	stride := residentWarps * sms
	for base := 0; base < totalWarps; base += stride {
		var chipSMs []*sim.SM
		for s := 0; s < sms; s++ {
			wbase := base + s*residentWarps
			if wbase >= totalWarps {
				break
			}
			n := residentWarps
			if wbase+n > totalWarps {
				n = totalWarps - wbase
			}
			p, err := factory(s, res.Waves)
			if err != nil {
				return nil, fmt.Errorf("launch: wave %d SM %d provider: %w", res.Waves, s, err)
			}
			smCfg := cfg
			smCfg.Warps = n
			smCfg.WarpIDBase = wbase
			hier := l2.AttachHierarchy(smCfg.Mem)
			smv, err := sim.NewWithHierarchy(smCfg, k, p, mm, hier)
			if err != nil {
				return nil, fmt.Errorf("launch: wave %d SM %d: %w", res.Waves, s, err)
			}
			chipSMs = append(chipSMs, smv)
		}
		chip := gpu.FromSMs(gpu.Config{SMs: len(chipSMs), SM: cfg, L2: l2cfg},
			l2, chipSMs, []*exec.Memory{mm})
		wres, err := chip.Run()
		if err != nil {
			return nil, fmt.Errorf("launch: wave %d: %w", res.Waves, err)
		}
		res.Cycles += wres.Cycles
		res.Insns += wres.TotalInsns
		res.FFSkippedCycles += wres.FFSkippedCycles
		res.FFJumps += wres.FFJumps
		res.PerWave = append(res.PerWave, wres)
		res.Waves++
		l2.ResetTiming()
	}
	res.L2 = l2.Stats
	return res, nil
}
