package launch

import (
	"testing"

	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/isa"
	"repro/internal/kernels"
	"repro/internal/sim"
)

func appBaseFactory() AppProviderFactory {
	return func(int, *isa.Kernel) (sim.Provider, error) { return baseFactory()(0) }
}

func TestAppsRunAndChain(t *testing.T) {
	for _, app := range kernels.Apps() {
		app := app
		t.Run(app.Name, func(t *testing.T) {
			t.Parallel()
			if len(app.Kernels) < 2 {
				t.Fatalf("application has %d kernels", len(app.Kernels))
			}
			mm := exec.NewMemory(nil)
			res, err := RunApp(app, 8, testCfg(), appBaseFactory(), mm)
			if err != nil {
				t.Fatal(err)
			}
			if len(res.PerKernel) != len(app.Kernels) || res.Cycles == 0 {
				t.Fatalf("degenerate result %+v", res)
			}
			// Reference: run the kernels sequentially through the pure
			// functional executor on one memory.
			ref := exec.NewMemory(nil)
			for _, k := range app.Kernels {
				if _, err := exec.Run(k, 8, ref); err != nil {
					t.Fatal(err)
				}
			}
			want := ref.GlobalStores()
			got := mm.GlobalStores()
			if len(got) != len(want) {
				t.Fatalf("store count %d, want %d", len(got), len(want))
			}
			for a, v := range want {
				if got[a] != v {
					t.Fatalf("app chain diverged at %#x: %d vs %d", a, got[a], v)
				}
			}
		})
	}
}

func TestAppRegLess(t *testing.T) {
	app, err := kernels.AppByName("backprop_app")
	if err != nil {
		t.Fatal(err)
	}
	factory := func(_ int, k *isa.Kernel) (sim.Provider, error) {
		return core.New(core.DefaultConfig(), k)
	}
	mm := exec.NewMemory(nil)
	if _, err := RunApp(app, 8, testCfg(), factory, mm); err != nil {
		t.Fatal(err)
	}
	ref := exec.NewMemory(nil)
	for _, k := range app.Kernels {
		if _, err := exec.Run(k, 8, ref); err != nil {
			t.Fatal(err)
		}
	}
	want := ref.GlobalStores()
	got := mm.GlobalStores()
	for a, v := range want {
		if got[a] != v {
			t.Fatalf("RegLess app diverged at %#x", a)
		}
	}
}

func TestAppWarmCaches(t *testing.T) {
	// srad's second pass re-reads pass 1's coefficients: with the shared
	// hierarchy those loads hit L2 lines pass 1 wrote.
	app, err := kernels.AppByName("srad_app")
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunApp(app, 8, testCfg(), appBaseFactory(), exec.NewMemory(nil))
	if err != nil {
		t.Fatal(err)
	}
	if res.MemStats.L2Hits == 0 {
		t.Fatal("no L2 hits across the kernel sequence — cache state not shared")
	}
}

func TestAppByNameUnknown(t *testing.T) {
	if _, err := kernels.AppByName("nosuch_app"); err == nil {
		t.Fatal("unknown app accepted")
	}
	if _, err := RunApp(kernels.Application{Name: "empty"}, 8, testCfg(), appBaseFactory(), nil); err == nil {
		t.Fatal("empty app accepted")
	}
}
