package launch

import (
	"testing"

	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/kernels"
	"repro/internal/mem"
	"repro/internal/rf"
	"repro/internal/sim"
)

func gridBaseFactory() GridFactory {
	return func(int, int) (sim.Provider, error) { return rf.NewBaseline(), nil }
}

// TestGridEquivalence checks that distributing a grid across a 2-SM chip
// in waves is functionally identical to the single-shot reference
// execution: same stores, same dynamic instruction count.
func TestGridEquivalence(t *testing.T) {
	k := kernels.MustLoad("streamcluster")
	mm := exec.NewMemory(nil)
	res, err := RunGrid(k, 32, 8, 2, testCfg(), mem.DefaultBankedL2Config(), gridBaseFactory(), mm)
	if err != nil {
		t.Fatal(err)
	}
	// 32 warps / (8 resident x 2 SMs) = 2 waves.
	if res.Waves != 2 || res.TotalWarps != 32 {
		t.Fatalf("waves = %d total = %d", res.Waves, res.TotalWarps)
	}
	ref, err := exec.Run(k, 32, exec.NewMemory(nil))
	if err != nil {
		t.Fatal(err)
	}
	if res.Insns != ref.DynInsns {
		t.Fatalf("insns %d vs %d", res.Insns, ref.DynInsns)
	}
	got := mm.GlobalStores()
	if len(got) != len(ref.Stores) {
		t.Fatalf("stores %d vs %d", len(got), len(ref.Stores))
	}
	for a, v := range ref.Stores {
		if got[a] != v {
			t.Fatalf("grid launch diverged at %#x", a)
		}
	}
	var sum uint64
	for _, w := range res.PerWave {
		sum += w.Cycles
	}
	if sum != res.Cycles {
		t.Fatalf("cycles %d != wave sum %d", res.Cycles, sum)
	}
	if res.L2.Hits+res.L2.Misses == 0 {
		t.Fatal("no traffic reached the shared L2")
	}
}

// TestGridMoreSMsFewerWaves checks the block scheduler's point: the same
// grid at the same occupancy needs fewer waves (and fewer cycles) on a
// wider chip.
func TestGridMoreSMsFewerWaves(t *testing.T) {
	k := kernels.MustLoad("streamcluster")
	one, err := RunGrid(k, 32, 8, 1, testCfg(), mem.DefaultBankedL2Config(), gridBaseFactory(), exec.NewMemory(nil))
	if err != nil {
		t.Fatal(err)
	}
	four, err := RunGrid(k, 32, 8, 4, testCfg(), mem.DefaultBankedL2Config(), gridBaseFactory(), exec.NewMemory(nil))
	if err != nil {
		t.Fatal(err)
	}
	if one.Waves != 4 || four.Waves != 1 {
		t.Fatalf("waves = %d/%d, want 4/1", one.Waves, four.Waves)
	}
	if four.Cycles >= one.Cycles {
		t.Fatalf("4 SMs (%d cycles) not faster than 1 SM (%d cycles)", four.Cycles, one.Cycles)
	}
	if one.Insns != four.Insns {
		t.Fatalf("insns diverge across SM counts: %d vs %d", one.Insns, four.Insns)
	}
}

// TestGridRegLess runs a barrier-heavy kernel under RegLess providers
// with per-SM disjoint backing windows and checks functional equivalence.
func TestGridRegLess(t *testing.T) {
	k := kernels.MustLoad("nw")
	mm := exec.NewMemory(nil)
	factory := func(sm, wave int) (sim.Provider, error) {
		c := core.DefaultConfig()
		c.AddrOffset = uint32(sm) << 24
		return core.New(c, k)
	}
	res, err := RunGrid(k, 32, 8, 2, testCfg(), mem.DefaultBankedL2Config(), factory, mm)
	if err != nil {
		t.Fatal(err)
	}
	if res.Waves != 2 {
		t.Fatalf("waves = %d", res.Waves)
	}
	ref, err := exec.Run(k, 32, exec.NewMemory(nil))
	if err != nil {
		t.Fatal(err)
	}
	got := mm.GlobalStores()
	for a, v := range ref.Stores {
		if got[a] != v {
			t.Fatalf("RegLess grid launch diverged at %#x", a)
		}
	}
}

// TestGridValidation exercises the launch-shape checks.
func TestGridValidation(t *testing.T) {
	k := kernels.MustLoad("streamcluster")
	cfg := testCfg()
	l2 := mem.DefaultBankedL2Config()
	mm := exec.NewMemory(nil)
	cases := []struct {
		name                 string
		total, resident, sms int
	}{
		{"zero total", 0, 8, 2},
		{"zero resident", 32, 0, 2},
		{"zero SMs", 32, 8, 0},
		{"resident not scheduler-aligned", 32, 6, 2},
		{"total not CTA-aligned", 33, 8, 2},
	}
	for _, c := range cases {
		if _, err := RunGrid(k, c.total, c.resident, c.sms, cfg, l2, gridBaseFactory(), mm); err == nil {
			t.Fatalf("%s: accepted", c.name)
		}
	}
}
