package metadata

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/isa"
	"repro/internal/regalloc"
	"repro/internal/regions"
)

func randomAnnotations(rng *rand.Rand, compact bool) Annotations {
	a := Annotations{Compact: compact}
	maxE, maxI := 20, 25
	bankMax := 16
	if compact {
		maxE, maxI = compactEntries, compactInsns
		bankMax = compactBankLimit + 1
	}
	for b := range a.BankUsage {
		a.BankUsage[b] = rng.Intn(bankMax)
	}
	for i := 0; i < rng.Intn(maxE+1); i++ {
		a.Entries = append(a.Entries, Entry{
			Reg:        isa.Reg(rng.Intn(64)),
			Invalidate: rng.Intn(2) == 0,
			CacheInval: rng.Intn(3) == 0,
		})
	}
	n := 1 + rng.Intn(maxI)
	for i := 0; i < n; i++ {
		var f InsnFlags
		for s := 0; s < 4; s++ {
			f.LastUse[s] = rng.Intn(3) == 0
			f.Erase[s] = f.LastUse[s] && rng.Intn(2) == 0
		}
		a.Flags = append(a.Flags, f)
	}
	return a
}

func annotationsEqual(a, b Annotations) bool {
	if a.Compact != b.Compact || a.BankUsage != b.BankUsage {
		return false
	}
	if len(a.Entries) != len(b.Entries) || len(a.Flags) != len(b.Flags) {
		return false
	}
	for i := range a.Entries {
		if a.Entries[i] != b.Entries[i] {
			return false
		}
	}
	for i := range a.Flags {
		if a.Flags[i] != b.Flags[i] {
			return false
		}
	}
	return true
}

func TestRoundTripRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 500; trial++ {
		compact := rng.Intn(2) == 0
		a := randomAnnotations(rng, compact)
		words, err := Encode(a)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		got, err := Decode(words, len(a.Flags), a.Compact)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		got.Compact = a.Compact
		if !annotationsEqual(a, got) {
			t.Fatalf("trial %d roundtrip mismatch:\n got %+v\nwant %+v", trial, got, a)
		}
	}
}

func TestCompactSingleWord(t *testing.T) {
	a := Annotations{Compact: true}
	a.BankUsage[0] = 2
	a.Entries = []Entry{{Reg: 3, Invalidate: true}}
	a.Flags = make([]InsnFlags, 3)
	a.Flags[0].LastUse[0] = true
	words, err := Encode(a)
	if err != nil {
		t.Fatal(err)
	}
	if len(words) != 1 {
		t.Fatalf("compact encoding used %d words, want 1", len(words))
	}
}

func TestCostScalesWithRegion(t *testing.T) {
	// Flag word + entries + one last-use word per 6 instructions.
	a := Annotations{}
	a.Flags = make([]InsnFlags, 13) // ceil(13/6) = 3 words
	a.Entries = make([]Entry, 9)    // 2 in flag word + ceil(7/6) = 2 words
	words, err := Encode(a)
	if err != nil {
		t.Fatal(err)
	}
	want := 1 + 2 + 3
	if len(words) != want {
		t.Fatalf("words = %d, want %d", len(words), want)
	}
}

func TestTooManyEntriesRejected(t *testing.T) {
	a := Annotations{Entries: make([]Entry, maxEntries+1)}
	if _, err := Encode(a); err == nil {
		t.Fatal("Encode accepted an over-long entry list")
	}
}

func TestBankUsageOverflowRejected(t *testing.T) {
	a := Annotations{}
	a.BankUsage[0] = 16
	if _, err := Encode(a); err == nil {
		t.Fatal("Encode accepted out-of-range bank usage")
	}
}

// buildCompiled compiles a nontrivial kernel for integration tests.
func buildCompiled(t *testing.T) *regions.Compiled {
	t.Helper()
	b := isa.NewBuilder("meta", 2)
	tid := b.Tid()
	i := b.Addi(tid, 4)
	acc := b.Movi(0)
	top := b.Label()
	b.Bind(top)
	addr := b.Muli(i, 8)
	v := b.Ldg(addr, 0)
	v2 := b.Sfu(v)
	b.Op2To(isa.OpIADD, acc, acc, v2)
	b.OpImmTo(isa.OpIADDI, i, i, ^uint32(0))
	b.Bnz(i, top)
	b.Stg(acc, acc, 0)
	b.Exit()
	alloc, err := regalloc.Allocate(b.MustKernel())
	if err != nil {
		t.Fatal(err)
	}
	c, err := regions.Compile(alloc.Kernel, regions.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestBuildEncodeDecodeRealKernel(t *testing.T) {
	c := buildCompiled(t)
	for _, r := range c.Regions {
		a := Build(c, r)
		words, err := Encode(a)
		if err != nil {
			t.Fatalf("region %d: %v", r.ID, err)
		}
		got, err := Decode(words, len(a.Flags), a.Compact)
		if err != nil {
			t.Fatalf("region %d: %v", r.ID, err)
		}
		got.Compact = a.Compact
		if !annotationsEqual(a, got) {
			t.Fatalf("region %d roundtrip mismatch:\n got %+v\nwant %+v", r.ID, got, a)
		}
		// Every preload and invalidation must appear as an entry.
		if len(a.Entries) != len(r.Preloads)+len(r.CacheInvalidations) {
			t.Fatalf("region %d: %d entries for %d preloads + %d invalidations",
				r.ID, len(a.Entries), len(r.Preloads), len(r.CacheInvalidations))
		}
	}
}

func TestApplySetsCosts(t *testing.T) {
	c := buildCompiled(t)
	total, err := Apply(c)
	if err != nil {
		t.Fatal(err)
	}
	sum := 0
	for _, r := range c.Regions {
		if r.MetaInsns < 1 {
			t.Fatalf("region %d has metadata cost %d", r.ID, r.MetaInsns)
		}
		sum += r.MetaInsns
	}
	if sum != total {
		t.Fatalf("Apply total %d != sum %d", total, sum)
	}
}

func TestBuildFlagsMatchRegionMaps(t *testing.T) {
	c := buildCompiled(t)
	for _, r := range c.Regions {
		a := Build(c, r)
		// Count flagged operands vs. region's erase+evict registers.
		flagCount := 0
		for _, f := range a.Flags {
			for s := 0; s < 4; s++ {
				if f.LastUse[s] {
					flagCount++
				}
			}
		}
		mapCount := 0
		for _, regs := range r.EraseAt {
			mapCount += len(regs)
		}
		for _, regs := range r.EvictAt {
			mapCount += len(regs)
		}
		if flagCount != mapCount {
			t.Fatalf("region %d: %d operand flags for %d map entries", r.ID, flagCount, mapCount)
		}
	}
}

func TestAnnotationsZeroValueEncodes(t *testing.T) {
	var a Annotations
	words, err := Encode(a)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(words, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.BankUsage, a.BankUsage) || len(got.Entries) != 0 {
		t.Fatalf("zero-value roundtrip: %+v", got)
	}
}
