// Package metadata implements the RegLess instruction-stream metadata
// encoding (paper §5.4). The compiler's per-region annotations — bank
// usage, preloads, cache invalidations, and per-instruction last-use
// (erase/evict) flags — are packed into 54-bit payloads carried by
// metadata instructions interleaved with the real instruction stream
// (64-bit instructions minus a 10-bit opcode).
//
// Layout (one deviation from the paper is noted below):
//
//   - A region begins with a *flag word*: 8 banks x 4 bits of bank usage
//     (32 bits), a 6-bit entry count, and the first two register entries
//     (8 bits each: 1 kind bit, 6 reg bits, 1 invalidate bit) — 54 bits.
//   - Additional *entry words* carry 6 register entries each.
//   - *Last-use words* carry 2 bits per operand slot (is-last-use,
//     erase-vs-evict) for 4 operand slots per instruction, 6 instructions
//     per word. (The paper packs 9 instructions per word with 3 operand
//     slots; our ISA has up to 4 operand slots, so 6 x 8 = 48 bits.)
//   - Regions with at most 3 instructions, at most 1 entry, and coarse
//     bank usage use a single *compact word* (count + 2-bit bank usages +
//     entry + flags), mirroring the paper's single-instruction encoding
//     for small control-flow-heavy regions.
//
// Encoding is real: Encode produces the words and Decode reconstructs the
// annotations bit-exactly, which the tests verify. The word count is the
// per-region overhead charged by the timing and energy models.
package metadata

import (
	"fmt"
	"sort"

	"repro/internal/isa"
	"repro/internal/regions"
)

// PayloadBits is the metadata capacity of one instruction (64 - 10).
const PayloadBits = 54

const (
	bankFieldBits   = 4
	numBanks        = regions.NumBanks
	regBits         = 6 // up to 64 architectural registers
	entryBits       = 8 // kind(1) + reg(6) + flag(1)
	countBits       = 6
	maxEntries      = 1<<countBits - 1
	flagWordEntries = 2 // 32 + 6 + 2x8 = 54
	entryWordSlots  = 6 // 6x8 = 48 <= 54
	insnFlagBits    = 8 // 4 operand slots x (last-use, erase-vs-evict)
	lastUseInsns    = 6 // 6x8 = 48 <= 54

	// Compact form: count(2) + 8 banks x 2-bit coarse usage (16) +
	// 1 entry (8) + 3 instructions of flags (24) = 50 <= 54.
	compactInsns     = 3
	compactEntries   = 1
	compactBankBits  = 2
	compactBankLimit = 1<<compactBankBits - 1
)

// Entry is one register entry: a preload (with optional invalidating-read
// flag) or a cache invalidation.
type Entry struct {
	Reg        isa.Reg
	Invalidate bool // for preloads: invalidating read
	CacheInval bool // kind bit: cache invalidation rather than preload
}

// InsnFlags carries the last-use markers for one instruction's operand
// slots: slot order is Src0, Src1, Src2, Dst.
type InsnFlags struct {
	LastUse [4]bool
	// Erase[i] distinguishes erase (true: dead interior value, line
	// freed) from evict (false: line becomes evictable) when LastUse[i].
	Erase [4]bool
}

// Annotations is the decodable content of one region's metadata.
type Annotations struct {
	BankUsage [numBanks]int
	Entries   []Entry
	Flags     []InsnFlags // one per instruction in the region
	Compact   bool        // encoded with the single-word compact form
}

// Build collects a region's annotations into encodable form. Last-use
// flags are derived from the region's EraseAt/EvictAt maps by matching
// registers to the instruction's operand slots.
func Build(c *regions.Compiled, r *regions.Region) Annotations {
	a := Annotations{BankUsage: r.BankUsage}
	for _, p := range r.Preloads {
		a.Entries = append(a.Entries, Entry{Reg: p.Reg, Invalidate: p.Invalidate})
	}
	for _, reg := range r.CacheInvalidations {
		a.Entries = append(a.Entries, Entry{Reg: reg, CacheInval: true})
	}
	sort.Slice(a.Entries, func(i, j int) bool {
		if a.Entries[i].CacheInval != a.Entries[j].CacheInval {
			return !a.Entries[i].CacheInval
		}
		return a.Entries[i].Reg < a.Entries[j].Reg
	})

	blk := c.Kernel.Blocks[r.Block]
	for i := r.Start; i < r.End; i++ {
		gi := r.StartGI + (i - r.Start)
		in := &blk.Insns[i]
		var f InsnFlags
		mark := func(reg isa.Reg, erase bool) {
			for s := 0; s < in.Op.NumSrc(); s++ {
				if in.Src[s] == reg && !f.LastUse[s] {
					f.LastUse[s] = true
					f.Erase[s] = erase
					return
				}
			}
			if in.Op.HasDst() && in.Dst == reg && !f.LastUse[3] {
				f.LastUse[3] = true
				f.Erase[3] = erase
			}
		}
		for _, reg := range r.EraseAt[gi] {
			mark(reg, true)
		}
		for _, reg := range r.EvictAt[gi] {
			mark(reg, false)
		}
		a.Flags = append(a.Flags, f)
	}
	a.Compact = len(a.Flags) <= compactInsns && len(a.Entries) <= compactEntries
	for _, u := range a.BankUsage {
		if u > compactBankLimit {
			a.Compact = false
		}
	}
	return a
}

// bitWriter packs little-endian bit fields into 54-bit words. Fields never
// straddle word boundaries: the encoder calls flush at layout-defined
// points, and put panics on overflow to catch layout bugs in tests.
type bitWriter struct {
	words []uint64
	cur   uint64
	used  int
}

func (w *bitWriter) put(v uint64, bits int) {
	if w.used+bits > PayloadBits {
		panic(fmt.Sprintf("metadata: word overflow (%d+%d bits)", w.used, bits))
	}
	w.cur |= v << uint(w.used)
	w.used += bits
}

func (w *bitWriter) flush() {
	w.words = append(w.words, w.cur)
	w.cur = 0
	w.used = 0
}

type bitReader struct {
	words []uint64
	idx   int
	cur   uint64
	used  int
}

func (r *bitReader) get(bits int) uint64 {
	if r.used+bits > PayloadBits {
		panic(fmt.Sprintf("metadata: word underflow (%d+%d bits)", r.used, bits))
	}
	v := (r.cur >> uint(r.used)) & ((1 << uint(bits)) - 1)
	r.used += bits
	return v
}

func (r *bitReader) next() {
	r.idx++
	r.cur = r.words[r.idx]
	r.used = 0
}

func putEntry(w *bitWriter, e Entry) {
	kind := uint64(0)
	if e.CacheInval {
		kind = 1
	}
	flag := uint64(0)
	if e.Invalidate {
		flag = 1
	}
	w.put(kind|uint64(e.Reg)<<1|flag<<(1+regBits), entryBits)
}

func getEntry(r *bitReader) Entry {
	v := r.get(entryBits)
	return Entry{
		CacheInval: v&1 != 0,
		Reg:        isa.Reg((v >> 1) & (1<<regBits - 1)),
		Invalidate: v>>(1+regBits)&1 != 0,
	}
}

func putFlags(w *bitWriter, f InsnFlags) {
	var v uint64
	for s := 0; s < 4; s++ {
		if f.LastUse[s] {
			v |= 1 << uint(2*s)
		}
		if f.Erase[s] {
			v |= 1 << uint(2*s+1)
		}
	}
	w.put(v, insnFlagBits)
}

func getFlags(r *bitReader) InsnFlags {
	v := r.get(insnFlagBits)
	var f InsnFlags
	for s := 0; s < 4; s++ {
		f.LastUse[s] = v&(1<<uint(2*s)) != 0
		f.Erase[s] = v&(1<<uint(2*s+1)) != 0
	}
	return f
}

// Encode packs annotations into 54-bit metadata words. It returns an error
// if a field exceeds its encoding range (bank usage >= 16, reg >= 64).
func Encode(a Annotations) ([]uint64, error) {
	for _, u := range a.BankUsage {
		if u >= 1<<bankFieldBits {
			return nil, fmt.Errorf("metadata: bank usage %d exceeds %d-bit field", u, bankFieldBits)
		}
	}
	for _, e := range a.Entries {
		if int(e.Reg) >= 1<<regBits {
			return nil, fmt.Errorf("metadata: register %v exceeds %d-bit field", e.Reg, regBits)
		}
	}
	if len(a.Entries) > maxEntries {
		return nil, fmt.Errorf("metadata: %d entries exceed the %d-entry count field", len(a.Entries), maxEntries)
	}
	w := &bitWriter{}
	if a.Compact {
		if len(a.Entries) > compactEntries || len(a.Flags) > compactInsns {
			return nil, fmt.Errorf("metadata: compact form overflow (%d entries, %d insns)",
				len(a.Entries), len(a.Flags))
		}
		for _, u := range a.BankUsage {
			if u > compactBankLimit {
				return nil, fmt.Errorf("metadata: bank usage %d exceeds compact %d-bit field", u, compactBankBits)
			}
		}
		w.put(uint64(len(a.Entries)), 2)
		for _, u := range a.BankUsage {
			w.put(uint64(u), compactBankBits)
		}
		for _, e := range a.Entries {
			putEntry(w, e)
		}
		for _, f := range a.Flags {
			putFlags(w, f)
		}
		w.flush()
		return w.words, nil
	}
	// Flag word: bank usage + entry count + the first entry.
	for _, u := range a.BankUsage {
		w.put(uint64(u), bankFieldBits)
	}
	w.put(uint64(len(a.Entries)), countBits)
	n := len(a.Entries)
	if n > flagWordEntries {
		n = flagWordEntries
	}
	for i := 0; i < n; i++ {
		putEntry(w, a.Entries[i])
	}
	w.flush()
	// Entry words, entryWordSlots entries per word.
	if len(a.Entries) > n {
		for i := n; i < len(a.Entries); i++ {
			putEntry(w, a.Entries[i])
			if (i-n)%entryWordSlots == entryWordSlots-1 {
				w.flush()
			}
		}
		if w.used > 0 {
			w.flush()
		}
	}
	// Last-use words, lastUseInsns instructions per word.
	if len(a.Flags) > 0 {
		for i, f := range a.Flags {
			putFlags(w, f)
			if i%lastUseInsns == lastUseInsns-1 {
				w.flush()
			}
		}
		if w.used > 0 {
			w.flush()
		}
	}
	return w.words, nil
}

// Decode reconstructs annotations from words. numInsns is the region's
// instruction count (needed to know how many flag groups follow) and
// compact selects the compact form.
func Decode(words []uint64, numInsns int, compact bool) (Annotations, error) {
	if len(words) == 0 {
		return Annotations{}, fmt.Errorf("metadata: empty encoding")
	}
	r := &bitReader{words: words, cur: words[0]}
	a := Annotations{Compact: compact}
	if compact {
		n := int(r.get(2))
		for b := 0; b < numBanks; b++ {
			a.BankUsage[b] = int(r.get(compactBankBits))
		}
		for i := 0; i < n; i++ {
			a.Entries = append(a.Entries, getEntry(r))
		}
		for i := 0; i < numInsns; i++ {
			a.Flags = append(a.Flags, getFlags(r))
		}
		return a, nil
	}
	for b := 0; b < numBanks; b++ {
		a.BankUsage[b] = int(r.get(bankFieldBits))
	}
	total := int(r.get(countBits))
	n := total
	if n > flagWordEntries {
		n = flagWordEntries
	}
	for i := 0; i < n; i++ {
		a.Entries = append(a.Entries, getEntry(r))
	}
	for i := n; i < total; i++ {
		if (i-n)%entryWordSlots == 0 {
			r.next()
		}
		a.Entries = append(a.Entries, getEntry(r))
	}
	for i := 0; i < numInsns; i++ {
		if i%lastUseInsns == 0 {
			r.next()
		}
		a.Flags = append(a.Flags, getFlags(r))
	}
	return a, nil
}

// Cost returns the number of metadata instructions one region requires.
func Cost(c *regions.Compiled, r *regions.Region) (int, error) {
	words, err := Encode(Build(c, r))
	if err != nil {
		return 0, err
	}
	return len(words), nil
}

// Apply computes and stores the metadata cost on every region and returns
// the kernel-wide total.
func Apply(c *regions.Compiled) (int, error) {
	total := 0
	for _, r := range c.Regions {
		n, err := Cost(c, r)
		if err != nil {
			return 0, fmt.Errorf("region %d: %w", r.ID, err)
		}
		r.MetaInsns = n
		total += n
	}
	return total, nil
}
