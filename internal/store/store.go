// Package store is the persistent content-addressed run cache behind
// `regless serve`. Every simulation in this repository is deterministic
// (verified by the multi-SM two-run diffs and the fast-forward
// differentials), so a completed result is cacheable forever — the store
// keeps one file per result, addressed by the hash of a canonical key
// that names everything the result depends on: the kernel's content hash
// (not just its name), the register scheme and OSU capacity, the SM
// configuration, and the robustness instrumentation (sanitize flag, fault
// plan) that can legally change the outcome.
//
// Durability discipline:
//
//   - Writes go to a private file under tmp/ and reach their final path
//     only by rename, so a crash mid-write can never leave a partial
//     entry where Get would find it. Leftover tmp files are swept (and
//     counted) when the store reopens.
//   - Every entry embeds a sha256 checksum of its payload and its full
//     key. Get verifies both (and that the key hashes to the file's own
//     name) before serving; anything torn, truncated, or tampered is
//     moved to quarantine/ and reported as a miss, so the caller
//     recomputes instead of serving corruption.
//
// The store holds opaque payload bytes. Serving layers store their
// response encoding verbatim, which is what makes cache hits byte-
// identical to the original computation across process restarts.
package store

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"unicode/utf8"
)

// Key names one simulation result. Every field participates in the
// content address; two keys with equal Hash are interchangeable.
type Key struct {
	// KernelSHA is the sha256 hex digest of the kernel's canonical
	// assembly text (kernels.Hash) — the content component. Bench rides
	// along for human-readable listings but the hash is what guarantees
	// a cached result still matches the code a binary would simulate.
	KernelSHA string `json:"kernel_sha"`
	Bench     string `json:"bench"`
	Scheme    string `json:"scheme"`
	// Capacity is the RegLess OSU capacity in registers per SM;
	// canonicalization folds it to 0 for schemes it does not apply to,
	// mirroring the experiment suite's key normalization.
	Capacity int `json:"capacity"`
	Warps    int `json:"warps"`
	SMs      int `json:"sms"`

	MaxCycles uint64 `json:"max_cycles"`
	Watchdog  uint64 `json:"watchdog,omitempty"`
	// Sanitize and Faults change what a run may legally return (a
	// detected fault is an error, a tolerated one may still shift
	// timing), so instrumented runs never alias clean entries.
	Sanitize bool   `json:"sanitize,omitempty"`
	Faults   string `json:"faults,omitempty"`
	// Report names the deep-dive analyses attached to the payload (the
	// canonical comma-joined form of the run request's "report" list,
	// e.g. "preload,stalls"). Reported results carry extra payload
	// sections, so they must never alias plain entries; the empty string
	// is omitted from the canonical form, keeping every pre-existing
	// entry's address unchanged.
	Report string `json:"report,omitempty"`
}

// reglessScheme mirrors the experiment suite's normKey: capacity is
// meaningful for RegLess schemes only.
func reglessScheme(s string) bool { return s == "regless" || s == "regless-nocomp" }

// Normalized returns the canonical form of the key: capacity folded to 0
// for non-RegLess schemes and the 0/1 SM aliasing resolved (both mean the
// classic single-SM path).
func (k Key) Normalized() Key {
	if !reglessScheme(k.Scheme) {
		k.Capacity = 0
	}
	if k.SMs == 0 {
		k.SMs = 1
	}
	return k
}

// isHex reports whether s is entirely lowercase hex.
func isHex(s string) bool {
	for _, c := range s {
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// Validate rejects keys that could not have come from a real run request:
// they would otherwise mint unreachable cache entries. String fields must
// be valid UTF-8 — json.Marshal substitutes U+FFFD for invalid bytes, so
// a non-UTF-8 key would decode from its own canonical form into a key
// that hashes differently (one logical key, two addresses).
func (k Key) Validate() error {
	if len(k.KernelSHA) != sha256.Size*2 || !isHex(k.KernelSHA) {
		return fmt.Errorf("store: kernel_sha %q is not a sha256 hex digest", k.KernelSHA)
	}
	if k.Bench == "" || strings.ContainsAny(k.Bench, "/\\\x00") || !utf8.ValidString(k.Bench) {
		return fmt.Errorf("store: bad bench name %q", k.Bench)
	}
	if k.Scheme == "" || strings.ContainsAny(k.Scheme, "/\\\x00") || !utf8.ValidString(k.Scheme) {
		return fmt.Errorf("store: bad scheme name %q", k.Scheme)
	}
	if !utf8.ValidString(k.Faults) {
		return fmt.Errorf("store: fault spec is not valid UTF-8")
	}
	if strings.ContainsAny(k.Report, "/\\\x00") || !utf8.ValidString(k.Report) {
		return fmt.Errorf("store: bad report spec %q", k.Report)
	}
	if k.Capacity < 0 {
		return fmt.Errorf("store: negative capacity %d", k.Capacity)
	}
	if k.Warps < 1 {
		return fmt.Errorf("store: warps must be at least 1, got %d", k.Warps)
	}
	if k.SMs < 0 {
		return fmt.Errorf("store: negative sms %d", k.SMs)
	}
	if k.MaxCycles < 1 {
		return fmt.Errorf("store: max_cycles must be at least 1, got %d", k.MaxCycles)
	}
	return nil
}

// Canonical returns the canonical serialized key: validated, normalized,
// and marshaled with a fixed field order. Equal keys produce equal bytes;
// re-canonicalizing a decoded canonical form is the identity (fuzzed).
func (k Key) Canonical() ([]byte, error) {
	if err := k.Validate(); err != nil {
		return nil, err
	}
	return json.Marshal(k.Normalized())
}

// Hash returns the key's content address: sha256 hex over Canonical.
func (k Key) Hash() (string, error) {
	c, err := k.Canonical()
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(c)
	return hex.EncodeToString(sum[:]), nil
}

// Stats counts store activity since Open. All fields except Bytes (a
// gauge) are monotonic.
type Stats struct {
	// Hits and Misses count Get outcomes; a quarantined entry counts as
	// both a miss and a quarantine.
	Hits   uint64 `json:"hits"`
	Misses uint64 `json:"misses"`
	// Puts counts entries durably written (tmp write + rename complete).
	Puts uint64 `json:"puts"`
	// Quarantined counts corrupt entries detected by Get or Verify and
	// moved aside; RecoveredTemps counts partial tmp files swept at Open.
	Quarantined    uint64 `json:"quarantined"`
	RecoveredTemps uint64 `json:"recovered_temps"`
	// Bytes is the current entry-file total; Evictions counts entries
	// removed by GC; GCRuns and GCMicros count GC passes and their total
	// wall time.
	Bytes     int64  `json:"bytes"`
	Evictions uint64 `json:"evictions"`
	GCRuns    uint64 `json:"gc_runs"`
	GCMicros  uint64 `json:"gc_us"`
}

// Store is a disk-backed content-addressed result cache. All methods are
// safe for concurrent use: entries are immutable once renamed into place,
// the counters are atomic, and eviction (the one operation that removes
// live entries) takes mu as a writer while Get/Put hold it as readers —
// GC can never yank an entry out from under an in-flight read or write.
type Store struct {
	dir  string
	opts Options

	mu sync.RWMutex

	hits, misses, puts, quarantined, recovered atomic.Uint64
	evictions, gcRuns, gcMicros                atomic.Uint64
	bytes                                      atomic.Int64
	ops                                        atomic.Uint64
}

// entry is the on-disk format: the full key (so a listing is
// self-describing and Get can cross-check the address), the payload, and
// the payload checksum that detects torn or tampered bytes.
type entry struct {
	Key        Key             `json:"key"`
	PayloadSHA string          `json:"payload_sha256"`
	Payload    json.RawMessage `json:"payload"`
}

// Open opens (creating if needed) a store rooted at dir and sweeps any
// partial tmp files a previous crash left behind. Equivalent to OpenWith
// with zero Options: unbounded, no chaos.
func Open(dir string) (*Store, error) {
	return OpenWith(dir, Options{})
}

// OpenWith opens a store with explicit resource limits and hooks. Besides
// the tmp-file sweep, it re-derives the entry byte total from disk (the
// total is not persisted — disk is the source of truth after a crash) and
// immediately enforces the byte budget, so a warm restart under a smaller
// budget trims itself before serving.
func OpenWith(dir string, opts Options) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("store: empty directory")
	}
	s := &Store{dir: dir, opts: opts}
	for _, d := range []string{dir, s.tmpDir(), s.quarantineDir()} {
		if err := os.MkdirAll(d, 0o755); err != nil {
			return nil, fmt.Errorf("store: %w", err)
		}
	}
	temps, err := os.ReadDir(s.tmpDir())
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	for _, t := range temps {
		if err := os.Remove(filepath.Join(s.tmpDir(), t.Name())); err == nil {
			s.recovered.Add(1)
		}
	}
	// One GC pass at open: sums bytes, trims to budget, ages quarantine.
	if _, err := s.GC(); err != nil {
		return nil, err
	}
	return s, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

func (s *Store) tmpDir() string        { return filepath.Join(s.dir, "tmp") }
func (s *Store) quarantineDir() string { return filepath.Join(s.dir, "quarantine") }

// path shards entries by the first hash byte to keep directories small.
func (s *Store) path(hash string) string {
	return filepath.Join(s.dir, hash[:2], hash+".json")
}

// Stats returns the activity counters.
func (s *Store) Stats() Stats {
	return Stats{
		Hits:           s.hits.Load(),
		Misses:         s.misses.Load(),
		Puts:           s.puts.Load(),
		Quarantined:    s.quarantined.Load(),
		RecoveredTemps: s.recovered.Load(),
		Bytes:          s.bytes.Load(),
		Evictions:      s.evictions.Load(),
		GCRuns:         s.gcRuns.Load(),
		GCMicros:       s.gcMicros.Load(),
	}
}

func payloadSHA(p []byte) string {
	sum := sha256.Sum256(p)
	return hex.EncodeToString(sum[:])
}

// Get returns the stored payload for the key, reporting whether it was
// found intact. Corrupt entries (unparseable, checksum mismatch, key not
// matching the address) are quarantined and reported as a miss; only I/O
// errors other than not-exist surface as err. A hit refreshes the
// entry's access-time sidecar, which is what GC's LRU ordering reads.
func (s *Store) Get(k Key) ([]byte, bool, error) {
	hash, err := k.Hash()
	if err != nil {
		return nil, false, err
	}
	op := s.ops.Add(1)
	s.chaosDelay(op)
	s.mu.RLock()
	defer s.mu.RUnlock()
	path := s.path(hash)
	raw, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		s.misses.Add(1)
		return nil, false, nil
	}
	if err != nil {
		return nil, false, fmt.Errorf("store: %w", err)
	}
	if s.opts.Chaos.StoreCorrupts(op) && len(raw) > 0 {
		// Simulated bit rot: flip one byte of what was read so the
		// checksum path below detects it and the caller recomputes.
		raw[len(raw)/2] ^= 0x40
	}
	payload, verr := verifyEntry(hash, raw)
	if verr != nil {
		s.quarantine(path)
		s.misses.Add(1)
		return nil, false, nil
	}
	s.hits.Add(1)
	s.touch(hash, op)
	return payload, true, nil
}

// verifyEntry checks one entry file body against its address and returns
// the payload bytes.
func verifyEntry(hash string, raw []byte) ([]byte, error) {
	var e entry
	if err := json.Unmarshal(raw, &e); err != nil {
		return nil, fmt.Errorf("store: entry %s: %w", hash, err)
	}
	keyHash, err := e.Key.Hash()
	if err != nil {
		return nil, fmt.Errorf("store: entry %s: bad key: %w", hash, err)
	}
	if keyHash != hash {
		return nil, fmt.Errorf("store: entry %s: key hashes to %s", hash, keyHash)
	}
	if len(e.Payload) == 0 {
		return nil, fmt.Errorf("store: entry %s: empty payload", hash)
	}
	if got := payloadSHA(e.Payload); got != e.PayloadSHA {
		return nil, fmt.Errorf("store: entry %s: payload checksum %s, want %s", hash, got, e.PayloadSHA)
	}
	return e.Payload, nil
}

// quarantine moves a corrupt entry aside (best effort: a concurrent Get
// may have already moved it).
func (s *Store) quarantine(path string) {
	dst := filepath.Join(s.quarantineDir(), filepath.Base(path))
	if err := os.Rename(path, dst); err == nil {
		s.quarantined.Add(1)
	}
}

// Put durably stores payload under the key: the entry is assembled in a
// private tmp file and renamed into place, so readers only ever see
// complete entries. Re-putting an existing key atomically replaces it
// with identical content (results are deterministic), so concurrent Puts
// of the same key are harmless.
func (s *Store) Put(k Key, payload []byte) error {
	if len(payload) == 0 {
		return fmt.Errorf("store: refusing to put empty payload")
	}
	hash, err := k.Hash()
	if err != nil {
		return err
	}
	op := s.ops.Add(1)
	s.chaosDelay(op)
	if s.opts.Chaos.StoreWriteFails(op) {
		return fmt.Errorf("store: %w", errInjectedDiskFull)
	}
	if err := s.put(k, hash, payload, op); err != nil {
		return err
	}
	// Budget enforcement happens outside the read lock put held.
	s.maybeGC()
	return nil
}

// errInjectedDiskFull marks a chaos-injected write failure; callers treat
// it like any other Put error (result still served from memory, entry
// recomputed next time).
var errInjectedDiskFull = fmt.Errorf("injected disk-full fault")

func (s *Store) put(k Key, hash string, payload []byte, op uint64) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	body, err := json.Marshal(entry{Key: k.Normalized(), PayloadSHA: payloadSHA(payload), Payload: payload})
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	tmp, err := os.CreateTemp(s.tmpDir(), hash+".*")
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if _, err := tmp.Write(body); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("store: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("store: %w", err)
	}
	final := s.path(hash)
	if err := os.MkdirAll(filepath.Dir(final), 0o755); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("store: %w", err)
	}
	// Replacing an existing entry rewrites identical bytes (results are
	// deterministic), so the byte delta of a replacement is zero; only a
	// fresh entry grows the total.
	var old int64
	if fi, err := os.Stat(final); err == nil {
		old = fi.Size()
	}
	if err := os.Rename(tmp.Name(), final); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("store: %w", err)
	}
	s.bytes.Add(int64(len(body)) - old)
	s.puts.Add(1)
	s.touch(hash, op)
	return nil
}

// Len walks the store and returns the number of entry files present
// (without verifying them; see Verify).
func (s *Store) Len() (int, error) {
	n := 0
	err := s.walkEntries(func(string, string) error { n++; return nil })
	return n, err
}

// Verify walks every entry, checks it parses, matches its checksum, and
// lives at the path its key hashes to, and confirms no partial tmp files
// remain. Corrupt entries are quarantined (counted, like Get) and
// reported in the returned error; the int is the number of intact
// entries. A consistency check for tests and operators, not a hot path.
func (s *Store) Verify() (int, error) {
	temps, err := os.ReadDir(s.tmpDir())
	if err != nil {
		return 0, fmt.Errorf("store: %w", err)
	}
	if len(temps) > 0 {
		return 0, fmt.Errorf("store: %d partial tmp files present", len(temps))
	}
	intact := 0
	var bad []string
	err = s.walkEntries(func(hash, path string) error {
		raw, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		if _, verr := verifyEntry(hash, raw); verr != nil {
			s.quarantine(path)
			bad = append(bad, verr.Error())
			return nil
		}
		intact++
		return nil
	})
	if err != nil {
		return intact, err
	}
	if len(bad) > 0 {
		return intact, fmt.Errorf("store: %d corrupt entries quarantined: %s", len(bad), strings.Join(bad, "; "))
	}
	return intact, nil
}

// walkEntries visits every entry file as (hash, path), skipping the tmp
// and quarantine directories and non-entry files (access-time sidecars).
func (s *Store) walkEntries(fn func(hash, path string) error) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.walkEntriesLocked(fn)
}

// walkEntriesLocked is walkEntries for callers already holding mu in
// either mode.
func (s *Store) walkEntriesLocked(fn func(hash, path string) error) error {
	shards, err := os.ReadDir(s.dir)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	for _, sh := range shards {
		name := sh.Name()
		if !sh.IsDir() || name == "tmp" || name == "quarantine" {
			continue
		}
		files, err := os.ReadDir(filepath.Join(s.dir, name))
		if err != nil {
			return fmt.Errorf("store: %w", err)
		}
		for _, f := range files {
			hash, ok := strings.CutSuffix(f.Name(), ".json")
			if !ok {
				continue
			}
			if err := fn(hash, filepath.Join(s.dir, name, f.Name())); err != nil {
				return err
			}
		}
	}
	return nil
}
