package store

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/faults"
)

// Options configure resource limits and test hooks for a store. The zero
// value means: unbounded growth, quarantine kept a day, wall clock, no
// chaos.
type Options struct {
	// MaxBytes is the size budget for entry files. When a Put pushes the
	// store past it, a GC pass evicts least-recently-used entries until
	// the store fits again. Zero or negative disables eviction.
	MaxBytes int64
	// QuarantineMaxAge bounds how long quarantined corpses are kept for
	// inspection; GC passes (and Open) remove older ones. Zero means
	// DefaultQuarantineMaxAge; negative keeps them forever.
	QuarantineMaxAge time.Duration
	// Now substitutes the clock used for access-time stamps and
	// quarantine aging. Nil means time.Now.
	Now func() time.Time
	// Chaos, when non-nil, injects serve-level faults (disk-full,
	// slow-disk, store-corrupt, clock-skew) into store operations. Each
	// Get or Put consumes one operation number, so a spec like
	// "disk-full@2" arms against the second store operation.
	Chaos *faults.Injector
}

// DefaultQuarantineMaxAge is how long quarantined entries survive when
// Options does not say otherwise.
const DefaultQuarantineMaxAge = 24 * time.Hour

func (s *Store) now() time.Time {
	if s.opts.Now != nil {
		return s.opts.Now()
	}
	return time.Now()
}

// sidecarPath is the access-time sidecar for an entry: decimal unix
// nanoseconds, best-effort. A missing or torn sidecar parses as epoch 0,
// which makes its entry the first eviction candidate — crash-safe in the
// degraded-but-correct sense (nothing wrong is ever served, the entry is
// just recomputed sooner than strict LRU would have).
func (s *Store) sidecarPath(hash string) string {
	return filepath.Join(s.dir, hash[:2], hash+".atime")
}

// touch stamps the entry's access time, applying any armed clock-skew
// fault (the stamp moves into the past, so the entry ages early).
func (s *Store) touch(hash string, op uint64) {
	now := s.now()
	if sec := s.opts.Chaos.ClockSkewSeconds(op); sec != 0 {
		now = now.Add(-time.Duration(sec) * time.Second)
	}
	_ = os.WriteFile(s.sidecarPath(hash), []byte(strconv.FormatInt(now.UnixNano(), 10)), 0o644)
}

// Bytes returns the current entry-file byte total (excluding sidecars,
// tmp, and quarantine).
func (s *Store) Bytes() int64 { return s.bytes.Load() }

// maybeGC runs a GC pass if the byte budget is exceeded. Called after
// Put releases its read lock, never while holding it.
func (s *Store) maybeGC() {
	if s.opts.MaxBytes <= 0 || s.bytes.Load() <= s.opts.MaxBytes {
		return
	}
	s.GC()
}

// gcCandidate is one entry considered for eviction.
type gcCandidate struct {
	hash  string
	path  string
	size  int64
	atime int64
}

// GC takes the writer lock (so it never races an in-flight Get or Put),
// re-derives the authoritative byte total from disk, evicts least-
// recently-used entries until the store fits its budget, and ages out
// old quarantine corpses. Returns the number of entries evicted.
func (s *Store) GC() (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	start := time.Now()
	defer func() {
		s.gcRuns.Add(1)
		s.gcMicros.Add(uint64(time.Since(start).Microseconds()))
	}()

	var cands []gcCandidate
	var total int64
	err := s.walkEntriesLocked(func(hash, path string) error {
		fi, err := os.Stat(path)
		if err != nil {
			return nil // raced with nothing (we hold the lock); vanished entries just drop out
		}
		var atime int64
		if raw, err := os.ReadFile(s.sidecarPath(hash)); err == nil {
			if n, perr := strconv.ParseInt(strings.TrimSpace(string(raw)), 10, 64); perr == nil {
				atime = n
			}
		}
		total += fi.Size()
		cands = append(cands, gcCandidate{hash: hash, path: path, size: fi.Size(), atime: atime})
		return nil
	})
	if err != nil {
		return 0, err
	}

	evicted := 0
	if s.opts.MaxBytes > 0 && total > s.opts.MaxBytes {
		sort.Slice(cands, func(i, j int) bool {
			if cands[i].atime != cands[j].atime {
				return cands[i].atime < cands[j].atime
			}
			return cands[i].hash < cands[j].hash
		})
		for _, c := range cands {
			if total <= s.opts.MaxBytes {
				break
			}
			if rmErr := os.Remove(c.path); rmErr != nil && !os.IsNotExist(rmErr) {
				continue
			}
			os.Remove(s.sidecarPath(c.hash))
			total -= c.size
			evicted++
			s.evictions.Add(1)
		}
	}
	s.bytes.Store(total)
	s.ageQuarantineLocked()
	return evicted, nil
}

// ageQuarantineLocked removes quarantine corpses older than the
// configured retention. Caller holds mu.
func (s *Store) ageQuarantineLocked() {
	maxAge := s.opts.QuarantineMaxAge
	if maxAge == 0 {
		maxAge = DefaultQuarantineMaxAge
	}
	if maxAge < 0 {
		return
	}
	cutoff := s.now().Add(-maxAge)
	files, err := os.ReadDir(s.quarantineDir())
	if err != nil {
		return
	}
	for _, f := range files {
		fi, err := f.Info()
		if err != nil {
			continue
		}
		if fi.ModTime().Before(cutoff) {
			os.Remove(filepath.Join(s.quarantineDir(), f.Name()))
		}
	}
}

// Sync fsyncs the store's directories so every completed rename is
// durable. Called at drain; entry file contents were written before their
// rename, so syncing the directories pins the namespace.
func (s *Store) Sync() error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	dirs := []string{s.dir, s.tmpDir(), s.quarantineDir()}
	shards, err := os.ReadDir(s.dir)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	for _, sh := range shards {
		if sh.IsDir() && sh.Name() != "tmp" && sh.Name() != "quarantine" {
			dirs = append(dirs, filepath.Join(s.dir, sh.Name()))
		}
	}
	for _, d := range dirs {
		f, err := os.Open(d)
		if err != nil {
			return fmt.Errorf("store: %w", err)
		}
		serr := f.Sync()
		f.Close()
		if serr != nil {
			return fmt.Errorf("store: sync %s: %w", d, serr)
		}
	}
	return nil
}

// chaosDelay sleeps out an armed slow-disk fault for this operation.
func (s *Store) chaosDelay(op uint64) {
	if ms := s.opts.Chaos.StoreDelayMillis(op); ms > 0 {
		time.Sleep(time.Duration(ms) * time.Millisecond)
	}
}
