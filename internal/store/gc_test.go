package store

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/faults"
)

// fakeClock is a settable Options.Now.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func mustOpenWith(t *testing.T, dir string, opts Options) *Store {
	t.Helper()
	s, err := OpenWith(dir, opts)
	if err != nil {
		t.Fatalf("OpenWith(%s): %v", dir, err)
	}
	return s
}

func putN(t *testing.T, s *Store, n int, payload []byte) []Key {
	t.Helper()
	keys := make([]Key, n)
	for i := range keys {
		keys[i] = testKey(fmt.Sprintf("bench%02d", i))
		if err := s.Put(keys[i], payload); err != nil {
			t.Fatalf("Put %d: %v", i, err)
		}
	}
	return keys
}

func TestGCEnforcesBudgetLRU(t *testing.T) {
	dir := t.TempDir()
	clk := newFakeClock()
	payload := []byte(`{"cycles":1120,"ipc":0.96}`)

	// Learn the per-entry file size, then budget for exactly three.
	probe := mustOpenWith(t, t.TempDir(), Options{Now: clk.Now})
	if err := probe.Put(testKey("bench99"), payload); err != nil {
		t.Fatal(err)
	}
	entrySize := probe.Bytes()
	if entrySize <= 0 {
		t.Fatalf("probe entry size = %d", entrySize)
	}

	s := mustOpenWith(t, dir, Options{MaxBytes: 3 * entrySize, Now: clk.Now})
	var keys []Key
	for i := 0; i < 3; i++ {
		k := testKey(fmt.Sprintf("bench%02d", i))
		keys = append(keys, k)
		clk.Advance(time.Second)
		if err := s.Put(k, payload); err != nil {
			t.Fatal(err)
		}
	}
	if s.Bytes() != 3*entrySize {
		t.Fatalf("Bytes() = %d, want %d", s.Bytes(), 3*entrySize)
	}
	// Refresh bench00 so bench01 becomes the least recently used.
	clk.Advance(time.Second)
	if _, ok, _ := s.Get(keys[0]); !ok {
		t.Fatal("Get bench00 missed")
	}
	clk.Advance(time.Second)
	k3 := testKey("bench03")
	if err := s.Put(k3, payload); err != nil {
		t.Fatal(err)
	}
	if s.Bytes() > 3*entrySize {
		t.Fatalf("Bytes() = %d over budget %d after GC", s.Bytes(), 3*entrySize)
	}
	if _, ok, _ := s.Get(keys[1]); ok {
		t.Error("LRU entry bench01 survived eviction")
	}
	for _, k := range []Key{keys[0], keys[2], k3} {
		if _, ok, _ := s.Get(k); !ok {
			t.Errorf("recently used entry %s evicted", k.Bench)
		}
	}
	st := s.Stats()
	if st.Evictions != 1 || st.GCRuns == 0 {
		t.Errorf("stats = %+v, want 1 eviction and >0 gc runs", st)
	}
	// The consistency sweep still passes: no sidecar confuses Verify.
	if n, err := s.Verify(); err != nil || n != 3 {
		t.Errorf("Verify = %d, %v", n, err)
	}
}

func TestGCMissingSidecarEvictedFirst(t *testing.T) {
	dir := t.TempDir()
	clk := newFakeClock()
	payload := []byte(`{"cycles":7}`)
	s := mustOpenWith(t, dir, Options{Now: clk.Now})
	keys := putN(t, s, 3, payload)

	// Simulate a crash that lost one sidecar: that entry must be the
	// first eviction candidate (epoch 0), not a GC error.
	h, _ := keys[2].Hash()
	if err := os.Remove(s.sidecarPath(h)); err != nil {
		t.Fatal(err)
	}
	s.opts.MaxBytes = s.Bytes() - 1 // force exactly one eviction
	if n, err := s.GC(); err != nil || n != 1 {
		t.Fatalf("GC = %d, %v, want 1 eviction", n, err)
	}
	if _, ok, _ := s.Get(keys[2]); ok {
		t.Error("sidecar-less entry survived; LRU order not crash-safe")
	}
}

func TestWarmRestartTrimsToSmallerBudget(t *testing.T) {
	dir := t.TempDir()
	clk := newFakeClock()
	payload := []byte(`{"cycles":7}`)
	s := mustOpenWith(t, dir, Options{Now: clk.Now})
	putN(t, s, 4, payload)
	total := s.Bytes()

	s2 := mustOpenWith(t, dir, Options{MaxBytes: total / 2, Now: clk.Now})
	if s2.Bytes() > total/2 {
		t.Fatalf("reopened store holds %d bytes, budget %d", s2.Bytes(), total/2)
	}
	if n, err := s2.Verify(); err != nil || n == 0 {
		t.Fatalf("Verify after trim = %d, %v", n, err)
	}
}

func TestQuarantineAging(t *testing.T) {
	dir := t.TempDir()
	clk := newFakeClock()
	s := mustOpenWith(t, dir, Options{QuarantineMaxAge: time.Hour, Now: clk.Now})
	k := testKey("rot")
	if err := s.Put(k, []byte(`{"x":1}`)); err != nil {
		t.Fatal(err)
	}
	// Corrupt the entry on disk; the next Get quarantines it.
	p := entryPath(t, s, k)
	if err := os.WriteFile(p, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := s.Get(k); ok || err != nil {
		t.Fatalf("Get corrupt = ok=%v err=%v", ok, err)
	}
	qdir := s.quarantineDir()
	if ents, _ := os.ReadDir(qdir); len(ents) != 1 {
		t.Fatalf("quarantine holds %d files, want 1", len(ents))
	}
	// Aging uses file mtimes against Options.Now; backdate the corpse
	// beyond the retention window and GC must remove it.
	corpse := filepath.Join(qdir, filepath.Base(p))
	old := clk.Now().Add(-2 * time.Hour)
	if err := os.Chtimes(corpse, old, old); err != nil {
		t.Fatal(err)
	}
	if _, err := s.GC(); err != nil {
		t.Fatal(err)
	}
	if ents, _ := os.ReadDir(qdir); len(ents) != 0 {
		t.Fatalf("aged corpse not removed: %d files remain", len(ents))
	}
}

// TestEvictionRacesGet drives GC (writer) against concurrent Gets and
// Puts (readers) on overlapping keys under -race. The invariant: every
// Get either hits with the exact original payload or misses cleanly —
// never an error, never torn bytes.
func TestEvictionRacesGet(t *testing.T) {
	dir := t.TempDir()
	payload := []byte(`{"cycles":1120,"ipc":0.96,"pad":"xxxxxxxxxxxxxxxx"}`)
	s := mustOpenWith(t, dir, Options{MaxBytes: 2048})
	keys := putN(t, s, 8, payload)

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				k := keys[(g+i)%len(keys)]
				got, ok, err := s.Get(k)
				if err != nil {
					t.Errorf("Get: %v", err)
					return
				}
				if ok && !bytes.Equal(got, payload) {
					t.Errorf("Get returned torn payload: %q", got)
					return
				}
				if !ok {
					if err := s.Put(k, payload); err != nil {
						t.Errorf("Put: %v", err)
						return
					}
				}
			}
		}(g)
	}
	for i := 0; i < 50; i++ {
		if _, err := s.GC(); err != nil {
			t.Errorf("GC: %v", err)
			break
		}
	}
	close(stop)
	wg.Wait()
	if s.Bytes() > 2048 {
		t.Errorf("store ended at %d bytes, budget 2048", s.Bytes())
	}
	if _, err := s.Verify(); err != nil {
		t.Errorf("Verify after race: %v", err)
	}
}

func TestChaosDiskFullAndCorrupt(t *testing.T) {
	plan, err := faults.Parse("disk-full@1; store-corrupt@3")
	if err != nil {
		t.Fatal(err)
	}
	s := mustOpenWith(t, t.TempDir(), Options{Chaos: faults.NewInjector(plan)})
	k := testKey("chaos")
	payload := []byte(`{"x":1}`)
	// Op 1: injected disk-full — Put fails, nothing lands on disk.
	if err := s.Put(k, payload); err == nil {
		t.Fatal("Put under disk-full succeeded")
	}
	if n, err := s.Len(); err != nil || n != 0 {
		t.Fatalf("Len after failed Put = %d, %v", n, err)
	}
	// Op 2: clean retry.
	if err := s.Put(k, payload); err != nil {
		t.Fatal(err)
	}
	// Op 3: injected read corruption — detected, quarantined, miss.
	if _, ok, err := s.Get(k); ok || err != nil {
		t.Fatalf("Get under store-corrupt = ok=%v err=%v, want clean miss", ok, err)
	}
	if st := s.Stats(); st.Quarantined != 1 {
		t.Fatalf("stats = %+v, want 1 quarantined", st)
	}
	// The fault is one-shot: recompute, re-put, and the store is whole.
	if err := s.Put(k, payload); err != nil {
		t.Fatal(err)
	}
	got, ok, err := s.Get(k)
	if err != nil || !ok || !bytes.Equal(got, payload) {
		t.Fatalf("recovery Get = %q ok=%v err=%v", got, ok, err)
	}
}

func TestChaosClockSkewAgesEntry(t *testing.T) {
	clk := newFakeClock()
	plan, err := faults.Parse("clock-skew:skew=3600")
	if err != nil {
		t.Fatal(err)
	}
	s := mustOpenWith(t, t.TempDir(), Options{Now: clk.Now, Chaos: faults.NewInjector(plan)})
	payload := []byte(`{"x":1}`)
	kSkew, kFresh := testKey("skewed"), testKey("fresh")
	if err := s.Put(kSkew, payload); err != nil { // op 1: atime skewed 1h back
		t.Fatal(err)
	}
	if err := s.Put(kFresh, payload); err != nil { // op 2: skew arm already spent
		t.Fatal(err)
	}
	s.opts.MaxBytes = s.Bytes() - 1
	if n, err := s.GC(); err != nil || n != 1 {
		t.Fatalf("GC = %d, %v", n, err)
	}
	if _, ok, _ := s.Get(kSkew); ok {
		t.Error("skewed entry survived; clock-skew did not age it")
	}
	if _, ok, _ := s.Get(kFresh); !ok {
		t.Error("fresh entry evicted instead of the skewed one")
	}
}

func TestSyncSucceeds(t *testing.T) {
	s := mustOpenWith(t, t.TempDir(), Options{})
	if err := s.Put(testKey("sync"), []byte(`{"x":1}`)); err != nil {
		t.Fatal(err)
	}
	if err := s.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
}
