package store

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// testKey builds a valid key whose kernel hash is derived from the bench
// name, so distinct benches get distinct addresses.
func testKey(bench string) Key {
	sum := sha256.Sum256([]byte("kernel:" + bench))
	return Key{
		KernelSHA: hex.EncodeToString(sum[:]),
		Bench:     bench,
		Scheme:    "regless",
		Capacity:  512,
		Warps:     8,
		SMs:       1,
		MaxCycles: 1000,
	}
}

func mustOpen(t *testing.T, dir string) *Store {
	t.Helper()
	s, err := Open(dir)
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	return s
}

func entryPath(t *testing.T, s *Store, k Key) string {
	t.Helper()
	h, err := k.Hash()
	if err != nil {
		t.Fatal(err)
	}
	return s.path(h)
}

func TestRoundTripAndWarmReopen(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir)
	k := testKey("nw")
	payload := []byte(`{"cycles":1120,"ipc":0.96}`)

	if _, ok, err := s.Get(k); err != nil || ok {
		t.Fatalf("Get on empty store = ok=%v err=%v, want miss", ok, err)
	}
	if err := s.Put(k, payload); err != nil {
		t.Fatalf("Put: %v", err)
	}
	got, ok, err := s.Get(k)
	if err != nil || !ok {
		t.Fatalf("Get after Put = ok=%v err=%v", ok, err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("Get = %s, want %s", got, payload)
	}
	if st := s.Stats(); st.Hits != 1 || st.Misses != 1 || st.Puts != 1 {
		t.Fatalf("stats = %+v, want 1 hit, 1 miss, 1 put", st)
	}

	// A fresh process over the same directory serves the same bytes: the
	// store is warm across restarts.
	s2 := mustOpen(t, dir)
	got2, ok, err := s2.Get(k)
	if err != nil || !ok {
		t.Fatalf("reopened Get = ok=%v err=%v", ok, err)
	}
	if !bytes.Equal(got2, payload) {
		t.Fatal("reopened store served different bytes")
	}
	if n, err := s2.Verify(); err != nil || n != 1 {
		t.Fatalf("Verify = %d, %v", n, err)
	}
}

func TestKeyNormalizationAliases(t *testing.T) {
	// Capacity folds to 0 for non-RegLess schemes, so two baseline keys
	// differing only in capacity share one address.
	a, b := testKey("nw"), testKey("nw")
	a.Scheme, b.Scheme = "baseline", "baseline"
	a.Capacity, b.Capacity = 256, 512
	ha, err := a.Hash()
	if err != nil {
		t.Fatal(err)
	}
	hb, err := b.Hash()
	if err != nil {
		t.Fatal(err)
	}
	if ha != hb {
		t.Error("baseline keys with different capacities did not alias")
	}

	// For RegLess the capacity is load-bearing.
	c, d := testKey("nw"), testKey("nw")
	c.Capacity, d.Capacity = 256, 512
	hc, _ := c.Hash()
	hd, _ := d.Hash()
	if hc == hd {
		t.Error("regless keys with different capacities collided")
	}

	// SMs 0 and 1 both mean the classic single-SM path.
	e, f := testKey("nw"), testKey("nw")
	e.SMs, f.SMs = 0, 1
	he, _ := e.Hash()
	hf, _ := f.Hash()
	if he != hf {
		t.Error("SMs 0 and 1 did not alias")
	}

	// A fault plan is load-bearing: instrumented runs never alias clean
	// entries.
	g := testKey("nw")
	g.Faults = "osu-tag@200; seed=3"
	hg, _ := g.Hash()
	if hg == ha || hg == hc {
		t.Error("fault-armed key aliased a clean key")
	}
}

func TestKeyValidateRejects(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Key)
	}{
		{"short sha", func(k *Key) { k.KernelSHA = "abc" }},
		{"uppercase sha", func(k *Key) { k.KernelSHA = strings.ToUpper(k.KernelSHA) }},
		{"empty bench", func(k *Key) { k.Bench = "" }},
		{"bench with slash", func(k *Key) { k.Bench = "../escape" }},
		{"empty scheme", func(k *Key) { k.Scheme = "" }},
		{"scheme with backslash", func(k *Key) { k.Scheme = `a\b` }},
		{"negative capacity", func(k *Key) { k.Capacity = -1 }},
		{"zero warps", func(k *Key) { k.Warps = 0 }},
		{"negative sms", func(k *Key) { k.SMs = -1 }},
		{"zero max cycles", func(k *Key) { k.MaxCycles = 0 }},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			k := testKey("nw")
			c.mutate(&k)
			if err := k.Validate(); err == nil {
				t.Errorf("Validate accepted %+v", k)
			}
			if _, err := k.Hash(); err == nil {
				t.Error("Hash minted an address for an invalid key")
			}
		})
	}
}

// TestCrashRecoverySweepsTemps simulates a process killed mid-write: the
// temp-file + rename discipline means the partial write only ever exists
// under tmp/, so Get never sees it, and reopening sweeps it.
func TestCrashRecoverySweepsTemps(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir)
	k := testKey("nw")
	if err := s.Put(k, []byte(`{"good":true}`)); err != nil {
		t.Fatal(err)
	}

	// The "crash": a partial entry body stranded in tmp/, exactly what
	// Put leaves behind if the process dies between write and rename.
	k2 := testKey("bfs")
	h2, _ := k2.Hash()
	partial := []byte(`{"key":{"kernel_sha":"tru`) // torn mid-field
	if err := os.WriteFile(filepath.Join(dir, "tmp", h2+".123456"), partial, 0o644); err != nil {
		t.Fatal(err)
	}

	// The torn write is invisible to readers of the dying process...
	if _, ok, _ := s.Get(k2); ok {
		t.Fatal("partial tmp write was served")
	}
	// ...and Verify refuses to certify a store with partial files.
	if _, err := s.Verify(); err == nil {
		t.Fatal("Verify ignored a partial tmp file")
	}

	// Reopen (the restart): the partial file is swept and counted.
	s2 := mustOpen(t, dir)
	if st := s2.Stats(); st.RecoveredTemps != 1 {
		t.Fatalf("RecoveredTemps = %d, want 1", st.RecoveredTemps)
	}
	temps, err := os.ReadDir(filepath.Join(dir, "tmp"))
	if err != nil {
		t.Fatal(err)
	}
	if len(temps) != 0 {
		t.Fatalf("%d tmp files survived reopen", len(temps))
	}

	// The intact entry still serves; the torn key misses and can be
	// recomputed.
	if _, ok, err := s2.Get(k); err != nil || !ok {
		t.Fatalf("intact entry lost after recovery: ok=%v err=%v", ok, err)
	}
	if _, ok, _ := s2.Get(k2); ok {
		t.Fatal("torn key served after recovery")
	}
	if err := s2.Put(k2, []byte(`{"recomputed":true}`)); err != nil {
		t.Fatal(err)
	}
	if n, err := s2.Verify(); err != nil || n != 2 {
		t.Fatalf("Verify after recompute = %d, %v", n, err)
	}
}

// TestCorruptEntriesQuarantined covers the three corruption shapes Get
// must detect: truncation, payload bit-flips, and an entry sitting at an
// address its key does not hash to. Each is quarantined, reported as a
// miss, and recomputable.
func TestCorruptEntriesQuarantined(t *testing.T) {
	payload := []byte(`{"cycles":1120,"value":12345}`)

	corruptions := []struct {
		name    string
		corrupt func(t *testing.T, s *Store, k Key)
	}{
		{"truncated", func(t *testing.T, s *Store, k Key) {
			p := entryPath(t, s, k)
			raw, err := os.ReadFile(p)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(p, raw[:len(raw)/2], 0o644); err != nil {
				t.Fatal(err)
			}
		}},
		{"payload flip", func(t *testing.T, s *Store, k Key) {
			p := entryPath(t, s, k)
			raw, err := os.ReadFile(p)
			if err != nil {
				t.Fatal(err)
			}
			// Flip one payload digit; the file stays valid JSON but the
			// checksum no longer matches.
			flipped := bytes.Replace(raw, []byte("12345"), []byte("12346"), 1)
			if bytes.Equal(flipped, raw) {
				t.Fatal("corruption did not apply")
			}
			if err := os.WriteFile(p, flipped, 0o644); err != nil {
				t.Fatal(err)
			}
		}},
		{"wrong address", func(t *testing.T, s *Store, k Key) {
			// Copy a valid entry for a *different* key to this key's
			// address: internally consistent, but the embedded key does
			// not hash to the file name.
			other := testKey("other-bench")
			if err := s.Put(other, []byte(`{"other":true}`)); err != nil {
				t.Fatal(err)
			}
			raw, err := os.ReadFile(entryPath(t, s, other))
			if err != nil {
				t.Fatal(err)
			}
			dst := entryPath(t, s, k)
			if err := os.MkdirAll(filepath.Dir(dst), 0o755); err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(dst, raw, 0o644); err != nil {
				t.Fatal(err)
			}
		}},
	}

	for _, c := range corruptions {
		t.Run(c.name, func(t *testing.T) {
			dir := t.TempDir()
			s := mustOpen(t, dir)
			k := testKey("nw")
			if c.name != "wrong address" {
				if err := s.Put(k, payload); err != nil {
					t.Fatal(err)
				}
			}
			c.corrupt(t, s, k)

			before := s.Stats().Quarantined
			if _, ok, err := s.Get(k); err != nil || ok {
				t.Fatalf("corrupt entry served: ok=%v err=%v", ok, err)
			}
			if q := s.Stats().Quarantined; q != before+1 {
				t.Fatalf("Quarantined = %d, want %d", q, before+1)
			}
			// The entry left the serving tree for quarantine/.
			if _, err := os.Stat(entryPath(t, s, k)); !os.IsNotExist(err) {
				t.Fatal("corrupt entry still at its serving path")
			}
			qfiles, err := os.ReadDir(filepath.Join(dir, "quarantine"))
			if err != nil {
				t.Fatal(err)
			}
			if len(qfiles) == 0 {
				t.Fatal("nothing in quarantine/")
			}

			// Recompute path: a fresh Put serves again.
			if err := s.Put(k, payload); err != nil {
				t.Fatalf("recompute Put: %v", err)
			}
			got, ok, err := s.Get(k)
			if err != nil || !ok || !bytes.Equal(got, payload) {
				t.Fatalf("recomputed entry not served: ok=%v err=%v", ok, err)
			}
			if _, err := s.Verify(); err != nil {
				t.Fatalf("Verify after recompute: %v", err)
			}
		})
	}
}

func TestVerifyQuarantinesCorruptEntries(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir)
	var keys []Key
	for i := 0; i < 3; i++ {
		k := testKey(fmt.Sprintf("bench-%d", i))
		keys = append(keys, k)
		if err := s.Put(k, []byte(fmt.Sprintf(`{"i":%d}`, i))); err != nil {
			t.Fatal(err)
		}
	}
	// Tear one entry on disk.
	p := entryPath(t, s, keys[1])
	if err := os.WriteFile(p, []byte(`{"key":`), 0o644); err != nil {
		t.Fatal(err)
	}

	intact, err := s.Verify()
	if err == nil {
		t.Fatal("Verify certified a corrupt store")
	}
	if intact != 2 {
		t.Fatalf("intact = %d, want 2", intact)
	}
	// The sweep moved the bad entry aside; a second pass is clean.
	intact, err = s.Verify()
	if err != nil || intact != 2 {
		t.Fatalf("second Verify = %d, %v, want clean 2", intact, err)
	}
}

func TestPutRejectsEmptyPayload(t *testing.T) {
	s := mustOpen(t, t.TempDir())
	if err := s.Put(testKey("nw"), nil); err == nil {
		t.Fatal("Put accepted an empty payload")
	}
	if err := s.Put(testKey("nw"), []byte{}); err == nil {
		t.Fatal("Put accepted a zero-length payload")
	}
}

func TestLenCountsEntries(t *testing.T) {
	s := mustOpen(t, t.TempDir())
	for i := 0; i < 4; i++ {
		if err := s.Put(testKey(fmt.Sprintf("b%d", i)), []byte(`{"x":1}`)); err != nil {
			t.Fatal(err)
		}
	}
	if n, err := s.Len(); err != nil || n != 4 {
		t.Fatalf("Len = %d, %v, want 4", n, err)
	}
}
