package store

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

const fuzzSHA = "9f86d081884c7d659a2feaa0c55ad015a3bf4f1b2b0b822cd15d6c15b0f00a08"

// FuzzKeyCanonical fuzzes key canonicalization: for arbitrary field
// values, Canonical/Hash must never panic; when a key is accepted, its
// canonical form must be a fixed point (decode → re-canonicalize →
// identical bytes, identical hash), since cache addressing depends on
// equal keys producing equal addresses in every process.
func FuzzKeyCanonical(f *testing.F) {
	f.Add(fuzzSHA, "nw", "regless", 512, 8, 1, uint64(1000), uint64(0), false, "")
	f.Add(fuzzSHA, "bfs", "baseline", 256, 64, 15, uint64(60_000_000), uint64(20_000), true, "osu-tag@200; seed=3")
	f.Add("", "", "", 0, 0, 0, uint64(0), uint64(0), false, "")
	f.Add("abc", "../../etc", `a\b`, -5, -1, -2, uint64(1), uint64(1), true, "\x00")
	f.Add(strings.ToUpper(fuzzSHA), "nw", "regless-nocomp", 1<<30, 1, 0, uint64(1), uint64(0), false, "seed=9")

	f.Fuzz(func(t *testing.T, sha, bench, scheme string, capacity, warps, sms int, maxCycles, watchdog uint64, sanitize bool, faults string) {
		k := Key{
			KernelSHA: sha,
			Bench:     bench,
			Scheme:    scheme,
			Capacity:  capacity,
			Warps:     warps,
			SMs:       sms,
			MaxCycles: maxCycles,
			Watchdog:  watchdog,
			Sanitize:  sanitize,
			Faults:    faults,
		}
		c1, err := k.Canonical()
		if err != nil {
			// Rejection must be consistent: no hash for an invalid key.
			if _, herr := k.Hash(); herr == nil {
				t.Fatalf("Validate rejected key but Hash minted an address: %+v", k)
			}
			return
		}
		h1, err := k.Hash()
		if err != nil {
			t.Fatalf("Canonical succeeded but Hash failed: %v", err)
		}

		// Canonicalization is a fixed point under decode/re-encode.
		var k2 Key
		if err := json.Unmarshal(c1, &k2); err != nil {
			t.Fatalf("canonical form does not decode: %v", err)
		}
		c2, err := k2.Canonical()
		if err != nil {
			t.Fatalf("re-canonicalizing a canonical key failed: %v", err)
		}
		if !bytes.Equal(c1, c2) {
			t.Fatalf("canonicalization not idempotent:\n%s\n%s", c1, c2)
		}
		h2, err := k2.Hash()
		if err != nil || h1 != h2 {
			t.Fatalf("hash unstable across canonicalization: %s vs %s (%v)", h1, h2, err)
		}

		// Normalization is idempotent.
		if n1, n2 := k.Normalized(), k.Normalized().Normalized(); n1 != n2 {
			t.Fatalf("Normalized not idempotent: %+v vs %+v", n1, n2)
		}
	})
}
