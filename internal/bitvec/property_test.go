package bitvec

import (
	"math/rand"
	"sort"
	"testing"
)

// mapSet is the trivially correct oracle: a map of member bits plus a
// mirror of every Set operation.
type mapSet map[int]bool

func (m mapSet) set(i int)   { m[i] = true }
func (m mapSet) clear(i int) { delete(m, i) }
func (m mapSet) get(i int) bool {
	return m[i]
}
func (m mapSet) reset() {
	for k := range m {
		delete(m, k)
	}
}
func (m mapSet) or(o mapSet) {
	for k := range o {
		m[k] = true
	}
}
func (m mapSet) and(o mapSet) {
	for k := range m {
		if !o[k] {
			delete(m, k)
		}
	}
}
func (m mapSet) andNot(o mapSet) {
	for k := range o {
		delete(m, k)
	}
}
func (m mapSet) copyFrom(o mapSet) {
	m.reset()
	m.or(o)
}
func (m mapSet) members() []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}
func (m mapSet) intersects(o mapSet) bool {
	for k := range m {
		if o[k] {
			return true
		}
	}
	return false
}

// checkAgainstOracle compares every observer of s with the oracle.
func checkAgainstOracle(t *testing.T, step int, s *Set, m mapSet) {
	t.Helper()
	if s.Count() != len(m) {
		t.Fatalf("step %d: Count=%d oracle=%d", step, s.Count(), len(m))
	}
	if s.Empty() != (len(m) == 0) {
		t.Fatalf("step %d: Empty=%v oracle size %d", step, s.Empty(), len(m))
	}
	got := s.Members()
	want := m.members()
	if len(got) != len(want) {
		t.Fatalf("step %d: Members=%v oracle=%v", step, got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("step %d: Members=%v oracle=%v", step, got, want)
		}
	}
	for _, i := range want {
		if !s.Get(i) {
			t.Fatalf("step %d: Get(%d)=false, oracle has it", step, i)
		}
	}
}

// TestPropertyAgainstMapOracle drives random operation sequences over two
// sets (bit mutations, bulk Or/And/AndNot/CopyFrom/Reset, Copy aliasing)
// and checks every observer against a map-based oracle after each step.
func TestPropertyAgainstMapOracle(t *testing.T) {
	caps := []int{1, 7, 63, 64, 65, 200}
	for _, n := range caps {
		n := n
		for seed := int64(0); seed < 4; seed++ {
			seed := seed
			t.Run("", func(t *testing.T) {
				t.Parallel()
				rng := rand.New(rand.NewSource(seed*1000 + int64(n)))
				a, b := New(n), New(n)
				ma, mb := mapSet{}, mapSet{}
				for step := 0; step < 500; step++ {
					i := rng.Intn(n)
					switch rng.Intn(10) {
					case 0:
						a.Set(i)
						ma.set(i)
					case 1:
						b.Set(i)
						mb.set(i)
					case 2:
						a.Clear(i)
						ma.clear(i)
					case 3:
						b.Clear(i)
						mb.clear(i)
					case 4:
						changedS := a.Or(b)
						before := len(ma)
						ma.or(mb)
						if changedS != (len(ma) != before) {
							t.Fatalf("step %d: Or changed=%v oracle grew=%v", step, changedS, len(ma) != before)
						}
					case 5:
						a.And(b)
						ma.and(mb)
					case 6:
						a.AndNot(b)
						ma.andNot(mb)
					case 7:
						b.CopyFrom(a)
						mb.copyFrom(ma)
					case 8:
						if rng.Intn(4) == 0 {
							a.Reset()
							ma.reset()
						}
					case 9:
						// Copy independence: mutating the copy must not
						// disturb the original.
						c := a.Copy()
						if !c.Equal(a) {
							t.Fatalf("step %d: Copy not Equal to source", step)
						}
						c.Set(i)
						c.Clear((i + 1) % n)
						checkAgainstOracle(t, step, a, ma)
					}
					if a.Intersects(b) != ma.intersects(mb) {
						t.Fatalf("step %d: Intersects=%v oracle=%v", step, a.Intersects(b), ma.intersects(mb))
					}
					checkAgainstOracle(t, step, a, ma)
					checkAgainstOracle(t, step, b, mb)
				}
			})
		}
	}
}
