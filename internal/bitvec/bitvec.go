// Package bitvec provides a dense fixed-capacity bit set used by the
// compiler's dataflow analyses (liveness sets over registers) and by the
// hardware models (compressed-register bit vectors).
package bitvec

import (
	"math/bits"
	"strconv"
	"strings"
)

// Set is a bit set over [0, Cap). The zero value is unusable; use New.
type Set struct {
	words []uint64
	n     int
}

// New returns an empty set with capacity n bits.
func New(n int) *Set {
	return &Set{words: make([]uint64, (n+63)/64), n: n}
}

// Cap returns the capacity in bits.
func (s *Set) Cap() int { return s.n }

// Set sets bit i.
func (s *Set) Set(i int) { s.words[i>>6] |= 1 << (uint(i) & 63) }

// Clear clears bit i.
func (s *Set) Clear(i int) { s.words[i>>6] &^= 1 << (uint(i) & 63) }

// Get reports whether bit i is set.
func (s *Set) Get(i int) bool { return s.words[i>>6]&(1<<(uint(i)&63)) != 0 }

// Reset clears all bits.
func (s *Set) Reset() {
	for i := range s.words {
		s.words[i] = 0
	}
}

// Copy returns an independent copy of s.
func (s *Set) Copy() *Set {
	w := make([]uint64, len(s.words))
	copy(w, s.words)
	return &Set{words: w, n: s.n}
}

// CopyFrom overwrites s with o (capacities must match).
func (s *Set) CopyFrom(o *Set) {
	copy(s.words, o.words)
}

// Or sets s |= o and reports whether s changed.
func (s *Set) Or(o *Set) bool {
	changed := false
	for i, w := range o.words {
		nw := s.words[i] | w
		if nw != s.words[i] {
			s.words[i] = nw
			changed = true
		}
	}
	return changed
}

// And sets s &= o.
func (s *Set) And(o *Set) {
	for i := range s.words {
		s.words[i] &= o.words[i]
	}
}

// AndNot sets s &^= o.
func (s *Set) AndNot(o *Set) {
	for i := range s.words {
		s.words[i] &^= o.words[i]
	}
}

// Equal reports whether s and o contain the same bits.
func (s *Set) Equal(o *Set) bool {
	if s.n != o.n {
		return false
	}
	for i := range s.words {
		if s.words[i] != o.words[i] {
			return false
		}
	}
	return true
}

// Count returns the number of set bits.
func (s *Set) Count() int {
	c := 0
	for _, w := range s.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// Empty reports whether no bits are set.
func (s *Set) Empty() bool {
	for _, w := range s.words {
		if w != 0 {
			return false
		}
	}
	return true
}

// Intersects reports whether s ∩ o is non-empty.
func (s *Set) Intersects(o *Set) bool {
	for i, w := range o.words {
		if s.words[i]&w != 0 {
			return true
		}
	}
	return false
}

// ForEach calls f for every set bit in ascending order.
func (s *Set) ForEach(f func(i int)) {
	for wi, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			f(wi<<6 + b)
			w &= w - 1
		}
	}
}

// Members returns the set bits in ascending order.
func (s *Set) Members() []int {
	out := make([]int, 0, s.Count())
	s.ForEach(func(i int) { out = append(out, i) })
	return out
}

// String renders "{1, 5, 9}".
func (s *Set) String() string {
	var b strings.Builder
	b.WriteByte('{')
	first := true
	s.ForEach(func(i int) {
		if !first {
			b.WriteString(", ")
		}
		first = false
		b.WriteString(strconv.Itoa(i))
	})
	b.WriteByte('}')
	return b.String()
}
