package bitvec

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSetGetClear(t *testing.T) {
	s := New(130)
	for _, i := range []int{0, 1, 63, 64, 65, 127, 128, 129} {
		if s.Get(i) {
			t.Fatalf("bit %d set in empty set", i)
		}
		s.Set(i)
		if !s.Get(i) {
			t.Fatalf("bit %d not set after Set", i)
		}
		s.Clear(i)
		if s.Get(i) {
			t.Fatalf("bit %d still set after Clear", i)
		}
	}
}

func TestCountMembers(t *testing.T) {
	s := New(200)
	want := []int{3, 64, 65, 130, 199}
	for _, i := range want {
		s.Set(i)
	}
	if got := s.Count(); got != len(want) {
		t.Fatalf("Count = %d, want %d", got, len(want))
	}
	got := s.Members()
	if len(got) != len(want) {
		t.Fatalf("Members = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Members = %v, want %v", got, want)
		}
	}
}

func TestOrAndNot(t *testing.T) {
	a := New(100)
	b := New(100)
	a.Set(1)
	a.Set(70)
	b.Set(70)
	b.Set(99)
	if !a.Or(b) {
		t.Fatal("Or reported no change")
	}
	for _, i := range []int{1, 70, 99} {
		if !a.Get(i) {
			t.Fatalf("bit %d missing after Or", i)
		}
	}
	if a.Or(b) {
		t.Fatal("second Or reported change")
	}
	a.AndNot(b)
	if a.Get(70) || a.Get(99) || !a.Get(1) {
		t.Fatalf("AndNot wrong: %v", a)
	}
}

func TestEqualCopy(t *testing.T) {
	a := New(64)
	a.Set(5)
	b := a.Copy()
	if !a.Equal(b) {
		t.Fatal("copy not equal")
	}
	b.Set(6)
	if a.Equal(b) {
		t.Fatal("mutation of copy affected equality check")
	}
	if a.Get(6) {
		t.Fatal("copy shares storage")
	}
}

func TestIntersectsEmpty(t *testing.T) {
	a := New(128)
	b := New(128)
	if a.Intersects(b) {
		t.Fatal("empty sets intersect")
	}
	if !a.Empty() {
		t.Fatal("new set not empty")
	}
	a.Set(100)
	b.Set(100)
	if !a.Intersects(b) {
		t.Fatal("sets with common bit do not intersect")
	}
	a.Reset()
	if !a.Empty() {
		t.Fatal("Reset did not empty the set")
	}
}

func TestString(t *testing.T) {
	s := New(16)
	s.Set(2)
	s.Set(9)
	if got := s.String(); got != "{2, 9}" {
		t.Fatalf("String = %q", got)
	}
}

// Property: Or is equivalent to set union on member lists.
func TestQuickOrIsUnion(t *testing.T) {
	f := func(xs, ys []uint8) bool {
		a, b := New(256), New(256)
		want := map[int]bool{}
		for _, x := range xs {
			a.Set(int(x))
			want[int(x)] = true
		}
		for _, y := range ys {
			b.Set(int(y))
			want[int(y)] = true
		}
		a.Or(b)
		if a.Count() != len(want) {
			return false
		}
		for _, m := range a.Members() {
			if !want[m] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: ForEach visits exactly the set bits in ascending order.
func TestQuickForEachOrdered(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		s := New(512)
		n := rng.Intn(100)
		for i := 0; i < n; i++ {
			s.Set(rng.Intn(512))
		}
		prev := -1
		s.ForEach(func(i int) {
			if i <= prev {
				t.Fatalf("ForEach out of order: %d after %d", i, prev)
			}
			if !s.Get(i) {
				t.Fatalf("ForEach visited unset bit %d", i)
			}
			prev = i
		})
	}
}
