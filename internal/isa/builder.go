package isa

import "fmt"

// Builder constructs kernels block-by-block with forward-reference labels.
// It is the assembly layer used by package kernels to express the synthetic
// Rodinia-like workloads and by tests to express microkernels.
//
// Typical use:
//
//	b := isa.NewBuilder("saxpy", 2)
//	tid := b.Tid()
//	...
//	loop := b.Label()
//	b.Bind(loop)
//	...
//	b.Bnz(cond, loop)
//	b.Exit()
//	k, err := b.Kernel()
type Builder struct {
	name        string
	warpsPerCTA int
	blocks      []*BasicBlock
	cur         *BasicBlock
	nextReg     Reg
	labels      []int // label -> block ID, -1 if unbound
	patches     []patch
	err         error
}

type patch struct {
	block, index int
	label        Label
}

// Label is a forward-referenceable branch target.
type Label int

// NewBuilder returns a Builder for a kernel with the given name and CTA
// size in warps.
func NewBuilder(name string, warpsPerCTA int) *Builder {
	b := &Builder{name: name, warpsPerCTA: warpsPerCTA}
	b.startBlock()
	return b
}

func (b *Builder) startBlock() {
	blk := &BasicBlock{ID: len(b.blocks)}
	b.blocks = append(b.blocks, blk)
	b.cur = blk
}

// NewReg allocates a fresh architectural register.
func (b *Builder) NewReg() Reg {
	r := b.nextReg
	b.nextReg++
	return r
}

// Label allocates an unbound label.
func (b *Builder) Label() Label {
	b.labels = append(b.labels, -1)
	return Label(len(b.labels) - 1)
}

// Bind attaches lbl to the next emitted instruction, starting a new basic
// block if the current one is non-empty.
func (b *Builder) Bind(lbl Label) {
	if b.labels[lbl] != -1 {
		b.fail("label %d bound twice", lbl)
		return
	}
	if len(b.cur.Insns) > 0 {
		b.startBlock()
	}
	b.labels[lbl] = b.cur.ID
}

func (b *Builder) fail(format string, args ...any) {
	if b.err == nil {
		b.err = fmt.Errorf("builder %q: "+format, append([]any{b.name}, args...)...)
	}
}

func (b *Builder) emit(in Instruction) {
	// Normalize unused operand slots so instructions compare and render
	// canonically regardless of how they were constructed.
	for s := in.Op.NumSrc(); s < len(in.Src); s++ {
		in.Src[s] = NoReg
	}
	if !in.Op.HasDst() {
		in.Dst = NoReg
	}
	b.cur.Insns = append(b.cur.Insns, in)
	if in.Op.IsBranch() || in.Op == OpEXIT {
		b.startBlock()
	}
}

// --- value producers ---

// Movi emits Dst = imm and returns a fresh destination register.
func (b *Builder) Movi(imm uint32) Reg { r := b.NewReg(); b.MoviTo(r, imm); return r }

// MoviTo emits dst = imm.
func (b *Builder) MoviTo(dst Reg, imm uint32) { b.emit(Instruction{Op: OpMOVI, Dst: dst, Imm: imm}) }

// Tid emits Dst = global thread id into a fresh register.
func (b *Builder) Tid() Reg { r := b.NewReg(); b.emit(Instruction{Op: OpTID, Dst: r}); return r }

// Lane emits Dst = lane id into a fresh register.
func (b *Builder) Lane() Reg { r := b.NewReg(); b.emit(Instruction{Op: OpLANE, Dst: r}); return r }

// Wid emits Dst = warp id into a fresh register.
func (b *Builder) Wid() Reg { r := b.NewReg(); b.emit(Instruction{Op: OpWID, Dst: r}); return r }

// --- two/three source ops (fresh destination) ---

// Op2 emits a two-source operation into a fresh register.
func (b *Builder) Op2(op Opcode, s0, s1 Reg) Reg {
	r := b.NewReg()
	b.Op2To(op, r, s0, s1)
	return r
}

// Op2To emits a two-source operation into dst.
func (b *Builder) Op2To(op Opcode, dst, s0, s1 Reg) {
	if op.NumSrc() != 2 || !op.HasDst() {
		b.fail("Op2To: %v is not a 2-source ALU op", op)
	}
	b.emit(Instruction{Op: op, Dst: dst, Src: [3]Reg{s0, s1, NoReg}})
}

// Op3 emits a three-source operation into a fresh register.
func (b *Builder) Op3(op Opcode, s0, s1, s2 Reg) Reg {
	r := b.NewReg()
	b.Op3To(op, r, s0, s1, s2)
	return r
}

// Op3To emits a three-source operation into dst.
func (b *Builder) Op3To(op Opcode, dst, s0, s1, s2 Reg) {
	if op.NumSrc() != 3 || !op.HasDst() {
		b.fail("Op3To: %v is not a 3-source op", op)
	}
	b.emit(Instruction{Op: op, Dst: dst, Src: [3]Reg{s0, s1, s2}})
}

// OpImm emits a register-immediate operation into a fresh register.
func (b *Builder) OpImm(op Opcode, s0 Reg, imm uint32) Reg {
	r := b.NewReg()
	b.OpImmTo(op, r, s0, imm)
	return r
}

// OpImmTo emits a register-immediate operation into dst.
func (b *Builder) OpImmTo(op Opcode, dst, s0 Reg, imm uint32) {
	if op.NumSrc() != 1 || !op.HasDst() {
		b.fail("OpImmTo: %v is not a 1-source op", op)
	}
	b.emit(Instruction{Op: op, Dst: dst, Src: [3]Reg{s0, NoReg, NoReg}, Imm: imm})
}

// Iadd emits Dst = s0+s1 into a fresh register.
func (b *Builder) Iadd(s0, s1 Reg) Reg { return b.Op2(OpIADD, s0, s1) }

// Addi emits Dst = s0+imm into a fresh register.
func (b *Builder) Addi(s0 Reg, imm uint32) Reg { return b.OpImm(OpIADDI, s0, imm) }

// Muli emits Dst = s0*imm into a fresh register.
func (b *Builder) Muli(s0 Reg, imm uint32) Reg { return b.OpImm(OpIMULI, s0, imm) }

// Sfu emits a special-function op into a fresh register.
func (b *Builder) Sfu(s0 Reg) Reg { return b.OpImm(OpSFU, s0, 0) }

// --- memory ---

// Ldg emits a global load from address register addr (+off) into a fresh
// register.
func (b *Builder) Ldg(addr Reg, off uint32) Reg {
	r := b.NewReg()
	b.LdgTo(r, addr, off)
	return r
}

// LdgTo emits a global load into dst.
func (b *Builder) LdgTo(dst, addr Reg, off uint32) {
	b.emit(Instruction{Op: OpLDG, Dst: dst, Src: [3]Reg{addr, NoReg, NoReg}, Imm: off})
}

// Stg emits a global store of val to address register addr (+off).
func (b *Builder) Stg(addr, val Reg, off uint32) {
	b.emit(Instruction{Op: OpSTG, Src: [3]Reg{addr, val, NoReg}, Imm: off})
}

// Lds emits a shared-memory load into a fresh register.
func (b *Builder) Lds(addr Reg, off uint32) Reg {
	r := b.NewReg()
	b.emit(Instruction{Op: OpLDS, Dst: r, Src: [3]Reg{addr, NoReg, NoReg}, Imm: off})
	return r
}

// Sts emits a shared-memory store.
func (b *Builder) Sts(addr, val Reg, off uint32) {
	b.emit(Instruction{Op: OpSTS, Src: [3]Reg{addr, val, NoReg}, Imm: off})
}

// --- control ---

// Bnz emits a per-lane branch to lbl where cond != 0.
func (b *Builder) Bnz(cond Reg, lbl Label) {
	b.patches = append(b.patches, patch{b.cur.ID, len(b.cur.Insns), lbl})
	b.emit(Instruction{Op: OpBNZ, Src: [3]Reg{cond, NoReg, NoReg}})
}

// Bz emits a per-lane branch to lbl where cond == 0.
func (b *Builder) Bz(cond Reg, lbl Label) {
	b.patches = append(b.patches, patch{b.cur.ID, len(b.cur.Insns), lbl})
	b.emit(Instruction{Op: OpBZ, Src: [3]Reg{cond, NoReg, NoReg}})
}

// Bra emits an unconditional branch to lbl.
func (b *Builder) Bra(lbl Label) {
	b.patches = append(b.patches, patch{b.cur.ID, len(b.cur.Insns), lbl})
	b.emit(Instruction{Op: OpBRA})
}

// Bar emits a CTA barrier.
func (b *Builder) Bar() { b.emit(Instruction{Op: OpBAR}) }

// Exit emits a kernel exit.
func (b *Builder) Exit() { b.emit(Instruction{Op: OpEXIT}) }

// Kernel finalizes the build: patches labels, trims a trailing empty block,
// validates, and returns the kernel.
func (b *Builder) Kernel() (*Kernel, error) {
	if b.err != nil {
		return nil, b.err
	}
	// Drop a trailing empty block left by a terminating emit.
	if n := len(b.blocks); n > 0 && len(b.blocks[n-1].Insns) == 0 {
		b.blocks = b.blocks[:n-1]
	}
	for _, p := range b.patches {
		target := b.labels[p.label]
		if target == -1 {
			return nil, fmt.Errorf("builder %q: unbound label %d", b.name, p.label)
		}
		b.blocks[p.block].Insns[p.index].Target = target
	}
	k := &Kernel{
		Name:        b.name,
		Blocks:      b.blocks,
		NumRegs:     int(b.nextReg),
		WarpsPerCTA: b.warpsPerCTA,
	}
	if err := k.Validate(); err != nil {
		return nil, err
	}
	return k, nil
}

// MustKernel is Kernel but panics on error; for tests and the static
// kernel suite where a build error is a programming bug.
func (b *Builder) MustKernel() *Kernel {
	k, err := b.Kernel()
	if err != nil {
		panic(err)
	}
	return k
}
