package isa

import (
	"strings"
	"testing"
)

func TestBuilderOpArityChecks(t *testing.T) {
	cases := []func(b *Builder){
		func(b *Builder) { b.Op2To(OpIMAD, 0, 0, 0) },    // 3-src op via Op2
		func(b *Builder) { b.Op3To(OpIADD, 0, 0, 0, 0) }, // 2-src op via Op3
		func(b *Builder) { b.OpImmTo(OpIADD, 0, 0, 1) },  // 2-src op via OpImm
		func(b *Builder) { b.Op2To(OpSTG, 0, 0, 0) },     // store has no dst
	}
	for i, mis := range cases {
		b := NewBuilder("bad", 1)
		r := b.Movi(0)
		_ = r
		mis(b)
		b.Exit()
		if _, err := b.Kernel(); err == nil {
			t.Errorf("case %d: builder accepted mis-typed emission", i)
		}
	}
}

func TestBuilderDoubleBind(t *testing.T) {
	b := NewBuilder("db", 1)
	l := b.Label()
	b.Bind(l)
	b.MoviTo(b.NewReg(), 1)
	b.Bind(l)
	b.Exit()
	if _, err := b.Kernel(); err == nil || !strings.Contains(err.Error(), "twice") {
		t.Fatalf("err = %v", err)
	}
}

func TestBuilderMustKernelPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustKernel did not panic on invalid kernel")
		}
	}()
	b := NewBuilder("panic", 1)
	lbl := b.Label()
	c := b.Movi(1)
	b.Bnz(c, lbl) // unbound label
	b.Exit()
	b.MustKernel()
}

func TestBuilderSharedMemoryOps(t *testing.T) {
	b := NewBuilder("sh", 2)
	lane := b.Lane()
	sa := b.Muli(lane, 4)
	b.Sts(sa, lane, 0)
	b.Bar()
	v := b.Lds(sa, 4)
	b.Stg(sa, v, 0x1000)
	b.Exit()
	k := b.MustKernel()
	var ops []Opcode
	for _, blk := range k.Blocks {
		for i := range blk.Insns {
			ops = append(ops, blk.Insns[i].Op)
		}
	}
	wantSeq := []Opcode{OpLANE, OpIMULI, OpSTS, OpBAR, OpLDS, OpSTG, OpEXIT}
	if len(ops) != len(wantSeq) {
		t.Fatalf("ops = %v", ops)
	}
	for i := range ops {
		if ops[i] != wantSeq[i] {
			t.Fatalf("op %d = %v, want %v", i, ops[i], wantSeq[i])
		}
	}
	// BAR stays mid-block (the region compiler, not the CFG, splits at
	// barriers).
	if len(k.Blocks) != 1 {
		t.Fatalf("blocks = %d, want 1", len(k.Blocks))
	}
}

func TestBuilderBzBranch(t *testing.T) {
	b := NewBuilder("bz", 1)
	c := b.Movi(0)
	skip := b.Label()
	b.Bz(c, skip)
	b.MoviTo(c, 1)
	b.Bind(skip)
	b.Exit()
	k := b.MustKernel()
	if k.Blocks[0].Terminator().Op != OpBZ {
		t.Fatalf("terminator = %v", k.Blocks[0].Terminator().Op)
	}
	succ := k.Successors(0)
	if len(succ) != 2 {
		t.Fatalf("successors = %v", succ)
	}
}

func TestBuilderNormalizesOperandSlots(t *testing.T) {
	b := NewBuilder("norm", 1)
	x := b.Tid()
	b.Stg(x, x, 0)
	b.Exit()
	k := b.MustKernel()
	tidInsn := k.Blocks[0].Insns[0]
	for s := 0; s < 3; s++ {
		if tidInsn.Src[s] != NoReg {
			t.Fatalf("tid src[%d] = %v, want NoReg", s, tidInsn.Src[s])
		}
	}
	exitInsn := k.Blocks[0].Insns[2]
	if exitInsn.Dst != NoReg {
		t.Fatalf("exit dst = %v", exitInsn.Dst)
	}
}

func TestKernelAtAndTerminator(t *testing.T) {
	b := NewBuilder("at", 1)
	x := b.Movi(7)
	b.Stg(x, x, 0)
	b.Exit()
	k := b.MustKernel()
	if got := k.At(PC{Block: 0, Index: 0}); got.Op != OpMOVI {
		t.Fatalf("At = %v", got.Op)
	}
	empty := &BasicBlock{}
	if empty.Terminator() != nil {
		t.Fatal("empty block has a terminator")
	}
}

func TestOpcodeStringOutOfRange(t *testing.T) {
	if s := Opcode(200).String(); !strings.Contains(s, "200") {
		t.Fatalf("String = %q", s)
	}
}
