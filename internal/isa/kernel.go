package isa

import (
	"fmt"
	"strings"
)

// Instruction is one machine instruction. Operand slots beyond the opcode's
// arity hold NoReg. For branches, Target is the destination block ID.
type Instruction struct {
	Op     Opcode
	Dst    Reg
	Src    [3]Reg
	Imm    uint32
	Target int
}

// SrcRegs returns the valid source registers, in operand order.
func (in *Instruction) SrcRegs() []Reg {
	n := in.Op.NumSrc()
	out := make([]Reg, 0, n)
	for i := 0; i < n; i++ {
		if in.Src[i].Valid() {
			out = append(out, in.Src[i])
		}
	}
	return out
}

// Regs appends every register the instruction touches (sources then
// destination) to dst and returns it.
func (in *Instruction) Regs(dst []Reg) []Reg {
	for i := 0; i < in.Op.NumSrc(); i++ {
		if in.Src[i].Valid() {
			dst = append(dst, in.Src[i])
		}
	}
	if in.Op.HasDst() && in.Dst.Valid() {
		dst = append(dst, in.Dst)
	}
	return dst
}

// String renders the instruction in a readable assembly-like form.
func (in *Instruction) String() string {
	var b strings.Builder
	b.WriteString(in.Op.String())
	if in.Op.HasDst() {
		fmt.Fprintf(&b, " %s,", in.Dst)
	}
	for i := 0; i < in.Op.NumSrc(); i++ {
		fmt.Fprintf(&b, " %s", in.Src[i])
	}
	switch {
	case in.Op.IsBranch() && in.Op != OpBAR:
		fmt.Fprintf(&b, " -> B%d", in.Target)
	case in.Op == OpMOVI || in.Op == OpIADDI || in.Op == OpIMULI ||
		in.Op == OpSHLI || in.Op == OpSHRI || in.Op.IsMemory():
		fmt.Fprintf(&b, " #%d", in.Imm)
	}
	return b.String()
}

// BasicBlock is a maximal straight-line instruction sequence. Only the last
// instruction may branch. Successors are derived: the branch target (if
// any) plus the fallthrough block, except after OpBRA (no fallthrough) and
// OpEXIT (no successors).
type BasicBlock struct {
	ID    int
	Insns []Instruction
}

// Terminator returns the last instruction, or nil for an empty block.
func (b *BasicBlock) Terminator() *Instruction {
	if len(b.Insns) == 0 {
		return nil
	}
	return &b.Insns[len(b.Insns)-1]
}

// Kernel is a compiled GPU kernel: a CFG of basic blocks plus launch
// metadata. Block 0 is the entry. Blocks are laid out in order; block i
// falls through to block i+1 unless its terminator says otherwise.
type Kernel struct {
	// Name identifies the kernel (benchmark name for the Rodinia suite).
	Name string
	// Blocks in layout order; Blocks[i].ID == i.
	Blocks []*BasicBlock
	// NumRegs is the number of architectural registers used (registers
	// are numbered 0..NumRegs-1).
	NumRegs int
	// WarpsPerCTA is the cooperative-thread-array size in warps; OpBAR
	// synchronizes warps within one CTA.
	WarpsPerCTA int
}

// PC addresses one instruction inside a kernel.
type PC struct {
	Block int
	Index int
}

// Less orders PCs by layout position.
func (p PC) Less(q PC) bool {
	if p.Block != q.Block {
		return p.Block < q.Block
	}
	return p.Index < q.Index
}

// String renders "B2:5".
func (p PC) String() string { return fmt.Sprintf("B%d:%d", p.Block, p.Index) }

// At returns the instruction at pc.
func (k *Kernel) At(pc PC) *Instruction { return &k.Blocks[pc.Block].Insns[pc.Index] }

// NumInsns counts the static instructions in the kernel.
func (k *Kernel) NumInsns() int {
	n := 0
	for _, b := range k.Blocks {
		n += len(b.Insns)
	}
	return n
}

// Successors returns the successor block IDs of block id, in
// taken-then-fallthrough order.
func (k *Kernel) Successors(id int) []int {
	b := k.Blocks[id]
	t := b.Terminator()
	if t == nil {
		if id+1 < len(k.Blocks) {
			return []int{id + 1}
		}
		return nil
	}
	switch t.Op {
	case OpEXIT:
		return nil
	case OpBRA:
		return []int{t.Target}
	case OpBNZ, OpBZ:
		succ := []int{t.Target}
		if id+1 < len(k.Blocks) && t.Target != id+1 {
			succ = append(succ, id+1)
		}
		return succ
	default:
		if id+1 < len(k.Blocks) {
			return []int{id + 1}
		}
		return nil
	}
}

// Validate checks structural invariants: non-empty blocks, IDs matching
// layout order, branch targets in range, register numbers below NumRegs,
// every terminal path ending in OpEXIT, and branches appearing only as
// terminators.
func (k *Kernel) Validate() error {
	if len(k.Blocks) == 0 {
		return fmt.Errorf("kernel %q: no blocks", k.Name)
	}
	if k.WarpsPerCTA <= 0 {
		return fmt.Errorf("kernel %q: WarpsPerCTA must be positive", k.Name)
	}
	sawExit := false
	for i, b := range k.Blocks {
		if b.ID != i {
			return fmt.Errorf("kernel %q: block %d has ID %d", k.Name, i, b.ID)
		}
		if len(b.Insns) == 0 {
			return fmt.Errorf("kernel %q: block %d empty", k.Name, i)
		}
		for j := range b.Insns {
			in := &b.Insns[j]
			if int(in.Op) >= NumOpcodes {
				return fmt.Errorf("kernel %q: B%d:%d bad opcode %d", k.Name, i, j, in.Op)
			}
			if in.Op.IsBranch() && j != len(b.Insns)-1 {
				return fmt.Errorf("kernel %q: B%d:%d branch not at block end", k.Name, i, j)
			}
			if in.Op == OpEXIT {
				if j != len(b.Insns)-1 {
					return fmt.Errorf("kernel %q: B%d:%d exit not at block end", k.Name, i, j)
				}
				sawExit = true
			}
			if in.Op.IsBranch() && in.Op != OpBAR {
				if in.Target < 0 || in.Target >= len(k.Blocks) {
					return fmt.Errorf("kernel %q: B%d:%d branch target %d out of range", k.Name, i, j, in.Target)
				}
			}
			if in.Op.HasDst() {
				if !in.Dst.Valid() || int(in.Dst) >= k.NumRegs {
					return fmt.Errorf("kernel %q: B%d:%d bad dst %v (NumRegs=%d)", k.Name, i, j, in.Dst, k.NumRegs)
				}
			}
			for s := 0; s < in.Op.NumSrc(); s++ {
				if !in.Src[s].Valid() || int(in.Src[s]) >= k.NumRegs {
					return fmt.Errorf("kernel %q: B%d:%d bad src%d %v (NumRegs=%d)", k.Name, i, j, s, in.Src[s], k.NumRegs)
				}
			}
		}
		// The last block must not fall off the end of the kernel.
		if i == len(k.Blocks)-1 {
			t := b.Terminator()
			if t.Op != OpEXIT && t.Op != OpBRA {
				return fmt.Errorf("kernel %q: last block falls through past kernel end", k.Name)
			}
		}
	}
	if !sawExit {
		return fmt.Errorf("kernel %q: no exit instruction", k.Name)
	}
	return nil
}

// Disassemble renders the whole kernel as text (used by cmd/kernelinfo and
// in test failure output).
func (k *Kernel) Disassemble() string {
	var b strings.Builder
	fmt.Fprintf(&b, "kernel %s (regs=%d, warps/cta=%d)\n", k.Name, k.NumRegs, k.WarpsPerCTA)
	for _, blk := range k.Blocks {
		fmt.Fprintf(&b, "B%d:\n", blk.ID)
		for i := range blk.Insns {
			fmt.Fprintf(&b, "  %2d: %s\n", i, blk.Insns[i].String())
		}
	}
	return b.String()
}
