package isa

import (
	"strings"
	"testing"
)

func TestOpcodeTableConsistent(t *testing.T) {
	for op := Opcode(0); int(op) < NumOpcodes; op++ {
		if op.String() == "" {
			t.Fatalf("opcode %d has no name", op)
		}
		if op.NumSrc() < 0 || op.NumSrc() > 3 {
			t.Fatalf("%v: bad NumSrc %d", op, op.NumSrc())
		}
		if op.IsLoad() && !op.IsMemory() {
			t.Fatalf("%v: load but not memory", op)
		}
		if op.IsStore() && !op.IsMemory() {
			t.Fatalf("%v: store but not memory", op)
		}
		if op.IsLoad() && !op.HasDst() {
			t.Fatalf("%v: load without destination", op)
		}
		if op.IsStore() && op.HasDst() {
			t.Fatalf("%v: store with destination", op)
		}
	}
	if !OpLDG.IsGlobalLoad() || OpLDS.IsGlobalLoad() {
		t.Fatal("IsGlobalLoad misclassifies")
	}
}

func TestRegString(t *testing.T) {
	if Reg(7).String() != "r7" {
		t.Fatalf("got %q", Reg(7).String())
	}
	if NoReg.String() != "-" {
		t.Fatalf("got %q", NoReg.String())
	}
	if NoReg.Valid() {
		t.Fatal("NoReg is Valid")
	}
}

func buildStraightline(t *testing.T) *Kernel {
	t.Helper()
	b := NewBuilder("straight", 2)
	x := b.Movi(10)
	y := b.Movi(32)
	z := b.Iadd(x, y)
	addr := b.Muli(z, 4)
	b.Stg(addr, z, 0)
	b.Exit()
	k, err := b.Kernel()
	if err != nil {
		t.Fatal(err)
	}
	return k
}

func TestBuilderStraightline(t *testing.T) {
	k := buildStraightline(t)
	if len(k.Blocks) != 1 {
		t.Fatalf("blocks = %d, want 1", len(k.Blocks))
	}
	if k.NumInsns() != 6 {
		t.Fatalf("insns = %d, want 6", k.NumInsns())
	}
	if k.NumRegs != 4 {
		t.Fatalf("regs = %d, want 4", k.NumRegs)
	}
	if got := k.Successors(0); got != nil {
		t.Fatalf("exit block has successors %v", got)
	}
}

func TestBuilderLoop(t *testing.T) {
	b := NewBuilder("loop", 2)
	i := b.Movi(8)
	acc := b.Movi(0)
	top := b.Label()
	b.Bind(top)
	b.Op2To(OpIADD, acc, acc, i)
	b.OpImmTo(OpIADDI, i, i, ^uint32(0)) // i--
	b.Bnz(i, top)
	b.Stg(acc, acc, 0)
	b.Exit()
	k, err := b.Kernel()
	if err != nil {
		t.Fatal(err)
	}
	if len(k.Blocks) != 3 {
		t.Fatalf("blocks = %d, want 3: %s", len(k.Blocks), k.Disassemble())
	}
	// Loop block branches back to itself and falls through.
	succ := k.Successors(1)
	if len(succ) != 2 || succ[0] != 1 || succ[1] != 2 {
		t.Fatalf("loop successors = %v", succ)
	}
}

func TestBuilderUnboundLabel(t *testing.T) {
	b := NewBuilder("bad", 1)
	lbl := b.Label()
	c := b.Movi(1)
	b.Bnz(c, lbl)
	b.Exit()
	if _, err := b.Kernel(); err == nil || !strings.Contains(err.Error(), "unbound label") {
		t.Fatalf("err = %v, want unbound label", err)
	}
}

func TestValidateCatchesBadReg(t *testing.T) {
	k := buildStraightline(t)
	k.Blocks[0].Insns[2].Src[0] = Reg(99)
	if err := k.Validate(); err == nil {
		t.Fatal("Validate accepted out-of-range register")
	}
}

func TestValidateCatchesFallthroughOffEnd(t *testing.T) {
	k := &Kernel{
		Name:        "fall",
		WarpsPerCTA: 1,
		NumRegs:     1,
		Blocks: []*BasicBlock{
			{ID: 0, Insns: []Instruction{{Op: OpMOVI, Dst: 0}}},
		},
	}
	if err := k.Validate(); err == nil {
		t.Fatal("Validate accepted kernel falling off the end")
	}
}

func TestValidateCatchesMidBlockBranch(t *testing.T) {
	k := &Kernel{
		Name:        "mid",
		WarpsPerCTA: 1,
		NumRegs:     1,
		Blocks: []*BasicBlock{
			{ID: 0, Insns: []Instruction{
				{Op: OpBRA, Target: 0},
				{Op: OpEXIT},
			}},
		},
	}
	if err := k.Validate(); err == nil {
		t.Fatal("Validate accepted branch in the middle of a block")
	}
}

func TestPCOrdering(t *testing.T) {
	a := PC{Block: 1, Index: 5}
	b := PC{Block: 2, Index: 0}
	c := PC{Block: 1, Index: 6}
	if !a.Less(b) || !a.Less(c) || b.Less(a) {
		t.Fatal("PC.Less ordering wrong")
	}
	if a.String() != "B1:5" {
		t.Fatalf("PC.String = %q", a.String())
	}
}

func TestInstructionString(t *testing.T) {
	in := Instruction{Op: OpIADD, Dst: 2, Src: [3]Reg{0, 1, NoReg}}
	if got := in.String(); got != "iadd r2, r0 r1" {
		t.Fatalf("String = %q", got)
	}
	br := Instruction{Op: OpBNZ, Src: [3]Reg{3, NoReg, NoReg}, Target: 7}
	if got := br.String(); !strings.Contains(got, "B7") {
		t.Fatalf("branch String = %q", got)
	}
}

func TestDisassembleSmoke(t *testing.T) {
	k := buildStraightline(t)
	d := k.Disassemble()
	if !strings.Contains(d, "kernel straight") || !strings.Contains(d, "iadd") {
		t.Fatalf("Disassemble output missing content:\n%s", d)
	}
}

func TestRegsAccessors(t *testing.T) {
	in := Instruction{Op: OpIMAD, Dst: 3, Src: [3]Reg{0, 1, 2}}
	regs := in.Regs(nil)
	if len(regs) != 4 {
		t.Fatalf("Regs = %v", regs)
	}
	srcs := in.SrcRegs()
	if len(srcs) != 3 || srcs[0] != 0 || srcs[2] != 2 {
		t.Fatalf("SrcRegs = %v", srcs)
	}
}
