// Package isa defines the SASS-like instruction set architecture used by the
// RegLess reproduction: registers, opcodes, instructions, basic blocks and
// kernels.
//
// The ISA is deliberately close to the abstraction level the RegLess paper
// operates on (post-register-allocation machine code for an NVIDIA-style
// SIMT machine): instructions read up to three 32-bit architectural
// registers and write at most one, each register holding one value per SIMD
// lane (32 lanes per warp). Control flow is expressed with basic blocks and
// per-lane conditional branches; divergence and reconvergence are handled by
// the executor's SIMT stack (package exec).
//
// Kernels built against this ISA are *real programs*: package exec runs them
// functionally with full lane values, so downstream consumers (liveness,
// region creation, the compressor) observe genuine value patterns rather
// than synthetic statistics.
package isa

import "fmt"

// WarpWidth is the number of SIMD lanes in a warp (CUDA warp size).
const WarpWidth = 32

// Reg names an architectural register. Registers are dense small integers
// assigned by the kernel builder; NoReg marks an unused operand slot.
type Reg uint16

// NoReg is the sentinel for an absent register operand.
const NoReg Reg = 0xFFFF

// Valid reports whether r names a real register (not NoReg).
func (r Reg) Valid() bool { return r != NoReg }

// String implements fmt.Stringer ("r7", or "-" for NoReg).
func (r Reg) String() string {
	if !r.Valid() {
		return "-"
	}
	return fmt.Sprintf("r%d", uint16(r))
}

// Class groups opcodes by the execution resource they occupy. The timing
// simulator assigns issue ports and latencies per class, and the RegLess
// compiler keys its global-load/use splitting rule on ClassMemGlobal loads.
type Class uint8

const (
	// ClassALU covers single-cycle integer/logic operations.
	ClassALU Class = iota
	// ClassFMA covers multiply/fused-multiply-add style operations
	// executed on the FMA pipes with a short pipelined latency.
	ClassFMA
	// ClassSFU covers special-function operations (rsqrt, sin, ...) with
	// long latency and few units.
	ClassSFU
	// ClassMemGlobal covers global memory loads and stores (long,
	// variable latency through the memory hierarchy).
	ClassMemGlobal
	// ClassMemShared covers shared-memory (scratchpad) accesses with
	// short fixed latency.
	ClassMemShared
	// ClassControl covers branches.
	ClassControl
	// ClassBarrier covers CTA-wide barriers.
	ClassBarrier
	// ClassExit covers kernel termination.
	ClassExit
)

// Opcode enumerates the machine operations. Functional semantics live in
// package exec; the comments here are normative.
type Opcode uint8

const (
	// OpNOP does nothing.
	OpNOP Opcode = iota
	// OpMOVI: Dst[lane] = Imm.
	OpMOVI
	// OpTID: Dst[lane] = warpGlobalID*WarpWidth + lane (global thread id).
	OpTID
	// OpLANE: Dst[lane] = lane.
	OpLANE
	// OpWID: Dst[lane] = warpGlobalID (broadcast).
	OpWID
	// OpIADD: Dst = Src0 + Src1.
	OpIADD
	// OpISUB: Dst = Src0 - Src1.
	OpISUB
	// OpIADDI: Dst = Src0 + Imm.
	OpIADDI
	// OpIMUL: Dst = Src0 * Src1 (low 32 bits).
	OpIMUL
	// OpIMULI: Dst = Src0 * Imm.
	OpIMULI
	// OpIMAD: Dst = Src0*Src1 + Src2.
	OpIMAD
	// OpAND: Dst = Src0 & Src1.
	OpAND
	// OpOR: Dst = Src0 | Src1.
	OpOR
	// OpXOR: Dst = Src0 ^ Src1.
	OpXOR
	// OpSHLI: Dst = Src0 << (Imm & 31).
	OpSHLI
	// OpSHRI: Dst = Src0 >> (Imm & 31).
	OpSHRI
	// OpMIN: Dst = min(Src0, Src1) (unsigned).
	OpMIN
	// OpMAX: Dst = max(Src0, Src1) (unsigned).
	OpMAX
	// OpSELP: Dst = Src2 != 0 ? Src0 : Src1, per lane.
	OpSELP
	// OpFADD models a floating add on the FMA pipe. Functionally it is an
	// integer add (value identity is irrelevant to the experiments, the
	// latency class is what matters).
	OpFADD
	// OpFMUL models a floating multiply on the FMA pipe (integer multiply
	// functionally).
	OpFMUL
	// OpFFMA models a fused multiply-add: Dst = Src0*Src1 + Src2.
	OpFFMA
	// OpSFU models a special-function op: Dst = hash(Src0), long latency.
	OpSFU
	// OpLDG: global load, Dst[lane] = mem[Src0[lane] + Imm] for active
	// lanes.
	OpLDG
	// OpSTG: global store, mem[Src0[lane] + Imm] = Src1[lane].
	OpSTG
	// OpLDS: shared-memory load, Dst[lane] = shared[Src0[lane] + Imm].
	OpLDS
	// OpSTS: shared-memory store, shared[Src0[lane] + Imm] = Src1[lane].
	OpSTS
	// OpBNZ: per-lane conditional branch to Target where Src0 != 0;
	// other lanes fall through (divergence).
	OpBNZ
	// OpBZ: per-lane conditional branch to Target where Src0 == 0.
	OpBZ
	// OpBRA: unconditional branch to Target.
	OpBRA
	// OpBAR: CTA barrier; the warp waits until all warps of its CTA
	// arrive.
	OpBAR
	// OpEXIT terminates the warp.
	OpEXIT

	numOpcodes
)

// NumOpcodes is the count of defined opcodes (useful for table sizing).
const NumOpcodes = int(numOpcodes)

var opInfo = [NumOpcodes]struct {
	name    string
	class   Class
	nSrc    int
	hasDst  bool
	branch  bool
	memory  bool
	isLoad  bool
	isStore bool
}{
	OpNOP:   {"nop", ClassALU, 0, false, false, false, false, false},
	OpMOVI:  {"movi", ClassALU, 0, true, false, false, false, false},
	OpTID:   {"tid", ClassALU, 0, true, false, false, false, false},
	OpLANE:  {"lane", ClassALU, 0, true, false, false, false, false},
	OpWID:   {"wid", ClassALU, 0, true, false, false, false, false},
	OpIADD:  {"iadd", ClassALU, 2, true, false, false, false, false},
	OpISUB:  {"isub", ClassALU, 2, true, false, false, false, false},
	OpIADDI: {"iaddi", ClassALU, 1, true, false, false, false, false},
	OpIMUL:  {"imul", ClassFMA, 2, true, false, false, false, false},
	OpIMULI: {"imuli", ClassFMA, 1, true, false, false, false, false},
	OpIMAD:  {"imad", ClassFMA, 3, true, false, false, false, false},
	OpAND:   {"and", ClassALU, 2, true, false, false, false, false},
	OpOR:    {"or", ClassALU, 2, true, false, false, false, false},
	OpXOR:   {"xor", ClassALU, 2, true, false, false, false, false},
	OpSHLI:  {"shli", ClassALU, 1, true, false, false, false, false},
	OpSHRI:  {"shri", ClassALU, 1, true, false, false, false, false},
	OpMIN:   {"min", ClassALU, 2, true, false, false, false, false},
	OpMAX:   {"max", ClassALU, 2, true, false, false, false, false},
	OpSELP:  {"selp", ClassALU, 3, true, false, false, false, false},
	OpFADD:  {"fadd", ClassFMA, 2, true, false, false, false, false},
	OpFMUL:  {"fmul", ClassFMA, 2, true, false, false, false, false},
	OpFFMA:  {"ffma", ClassFMA, 3, true, false, false, false, false},
	OpSFU:   {"sfu", ClassSFU, 1, true, false, false, false, false},
	OpLDG:   {"ldg", ClassMemGlobal, 1, true, false, true, true, false},
	OpSTG:   {"stg", ClassMemGlobal, 2, false, false, true, false, true},
	OpLDS:   {"lds", ClassMemShared, 1, true, false, true, true, false},
	OpSTS:   {"sts", ClassMemShared, 2, false, false, true, false, true},
	OpBNZ:   {"bnz", ClassControl, 1, false, true, false, false, false},
	OpBZ:    {"bz", ClassControl, 1, false, true, false, false, false},
	OpBRA:   {"bra", ClassControl, 0, false, true, false, false, false},
	OpBAR:   {"bar", ClassBarrier, 0, false, false, false, false, false},
	OpEXIT:  {"exit", ClassExit, 0, false, false, false, false, false},
}

// String returns the mnemonic.
func (o Opcode) String() string {
	if int(o) < NumOpcodes {
		return opInfo[o].name
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// ClassOf returns the execution-resource class of the opcode.
func (o Opcode) ClassOf() Class { return opInfo[o].class }

// NumSrc returns how many source-register operands the opcode reads.
func (o Opcode) NumSrc() int { return opInfo[o].nSrc }

// HasDst reports whether the opcode writes a destination register.
func (o Opcode) HasDst() bool { return opInfo[o].hasDst }

// IsBranch reports whether the opcode may transfer control.
func (o Opcode) IsBranch() bool { return opInfo[o].branch }

// IsMemory reports whether the opcode accesses a memory space.
func (o Opcode) IsMemory() bool { return opInfo[o].memory }

// IsLoad reports whether the opcode is a (global or shared) load.
func (o Opcode) IsLoad() bool { return opInfo[o].isLoad }

// IsStore reports whether the opcode is a (global or shared) store.
func (o Opcode) IsStore() bool { return opInfo[o].isStore }

// IsGlobalLoad reports whether the opcode is a long-latency global load —
// the instructions Algorithm 1 refuses to co-locate with their first use.
func (o Opcode) IsGlobalLoad() bool { return o == OpLDG }
