package mem

import "repro/internal/metrics"

// BindMetrics exposes the hierarchy's counters and live occupancies on r
// under "mem/...". The Stats fields stay plain uint64 increments on the hot
// path (Bind registers views, not replacements); occupancy gauges sample
// only at window boundaries.
func (h *Hierarchy) BindMetrics(r *metrics.Registry) {
	r.Bind("mem/l1_hits", &h.Stats.L1Hits)
	r.Bind("mem/l1_misses", &h.Stats.L1Misses)
	r.Bind("mem/l1_reads", &h.Stats.L1Reads)
	r.Bind("mem/l1_writes", &h.Stats.L1Writes)
	r.Bind("mem/l1_writebacks", &h.Stats.L1Writebacks)
	r.Bind("mem/l1_invalidations", &h.Stats.L1Invalidations)
	r.Bind("mem/l2_hits", &h.Stats.L2Hits)
	r.Bind("mem/l2_misses", &h.Stats.L2Misses)
	r.Bind("mem/data_reads", &h.Stats.DataReads)
	r.Bind("mem/data_writes", &h.Stats.DataWrites)
	r.Bind("mem/dram_accesses", &h.Stats.DRAMAccesses)
	r.Bind("mem/l1_port_rejects", &h.Stats.L1PortRejects)
	r.Bind("mem/mshr_rejects", &h.Stats.MSHRRejects)
	r.Bind("mem/data_rejects", &h.Stats.DataRejects)
	r.Gauge("mem/mshr_occupancy", func() uint64 { return uint64(len(h.mshrs)) })
	r.Gauge("mem/data_in_flight", func() uint64 { return uint64(h.dataInFlight) })
}
