package mem

import "repro/internal/metrics"

// BindMetrics exposes the hierarchy's counters and live occupancies on r
// under "mem/...". The Stats fields stay plain uint64 increments on the hot
// path (Bind registers views, not replacements); occupancy gauges sample
// only at window boundaries.
func (h *Hierarchy) BindMetrics(r *metrics.Registry) {
	r.Bind("mem/l1_hits", &h.Stats.L1Hits)
	r.Bind("mem/l1_misses", &h.Stats.L1Misses)
	r.Bind("mem/l1_reads", &h.Stats.L1Reads)
	r.Bind("mem/l1_writes", &h.Stats.L1Writes)
	r.Bind("mem/l1_writebacks", &h.Stats.L1Writebacks)
	r.Bind("mem/l1_invalidations", &h.Stats.L1Invalidations)
	r.Bind("mem/l2_hits", &h.Stats.L2Hits)
	r.Bind("mem/l2_misses", &h.Stats.L2Misses)
	r.Bind("mem/data_reads", &h.Stats.DataReads)
	r.Bind("mem/data_writes", &h.Stats.DataWrites)
	r.Bind("mem/dram_accesses", &h.Stats.DRAMAccesses)
	r.Bind("mem/l1_port_rejects", &h.Stats.L1PortRejects)
	r.Bind("mem/mshr_rejects", &h.Stats.MSHRRejects)
	r.Bind("mem/data_rejects", &h.Stats.DataRejects)
	r.Gauge("mem/mshr_occupancy", func() uint64 { return uint64(len(h.mshrs)) })
	r.Gauge("mem/data_in_flight", func() uint64 { return uint64(h.dataInFlight) })
}

// BindMetrics exposes the chip-level L2/DRAM counters on r under
// "l2/...". Bind it on ONE registry per chip (the counters aggregate all
// SMs' traffic; per-SM L2 hit/miss shares stay on each SM's "mem/..."
// registry).
func (l2 *BankedL2) BindMetrics(r *metrics.Registry) {
	r.Bind("l2/hits", &l2.Stats.Hits)
	r.Bind("l2/misses", &l2.Stats.Misses)
	r.Bind("l2/port_queue_cycles", &l2.Stats.PortQueueCycles)
	r.Bind("l2/mshr_merges", &l2.Stats.MSHRMerges)
	r.Bind("l2/mshr_full_retries", &l2.Stats.MSHRFullRetries)
	r.Bind("l2/dram_accesses", &l2.Stats.DRAMAccesses)
	r.Bind("l2/dram_writes", &l2.Stats.DRAMWrites)
	r.Bind("l2/dram_queue_cycles", &l2.Stats.DRAMQueueCycles)
	r.Gauge("l2/mshr_occupancy", func() uint64 {
		var n uint64
		for i := range l2.banks {
			n += uint64(len(l2.banks[i].mshrs))
		}
		return n
	})
}
