// Package mem models the memory hierarchy at cycle granularity: the
// per-SM L1 data cache (48 KB, 32 MSHRs, one request per cycle —
// Table 1), an L2, and DRAM with a bandwidth limit. The L2 comes in two
// forms: a private flat slice with a per-SM DRAM share (the single-SM
// model, this file) or the chip-wide BankedL2 (l2.go) that all SMs'
// hierarchies share in the multi-SM model.
//
// Following the paper's GTX 980 configuration, ordinary global data
// accesses *bypass* the L1 and go straight to L2 ("data accesses bypassed",
// Table 1); the L1 serves the register backing store. For register lines
// the L1 is write-back with no fetch-on-write, because RegLess guarantees
// whole-line writes by preloading any partially-written register (§5.2.3).
//
// Timing is cycle-ticked: callers submit requests (which may be refused
// when a port or MSHR is unavailable — callers retry next cycle) and
// completion callbacks fire during Tick.
package mem

import (
	"repro/internal/events"
	"repro/internal/faults"
)

// LineSize is the cache line size in bytes; one register (32 lanes x 4 B)
// fills exactly one line.
const LineSize = 128

// Address-space bases. The CUDA-level allocator in the paper places the
// register backing store with cudaMalloc (§5.2.3); we fix the layout.
const (
	// RegSpaceBase is the uncompressed register backing store.
	RegSpaceBase uint32 = 0x4000_0000
	// CompressedBase is the adjacent space holding compressed register
	// lines (§5.3).
	CompressedBase uint32 = 0x6000_0000
)

// Config sets the hierarchy geometry and latencies (defaults follow
// Table 1 and common GTX 980 figures).
type Config struct {
	L1Sets       int // 64 sets x 6 ways x 128 B = 48 KB
	L1Ways       int
	L1MSHRs      int
	L1HitLatency int

	L2Sets    int // per-SM slice of the 2 MB L2
	L2Ways    int
	L2Latency int

	DRAMLatency int
	// DRAMCyclesPerLine throttles DRAM bandwidth: minimum cycles between
	// line transfers for this SM's share of the 224 GB/s.
	DRAMCyclesPerLine int
	// DataQueueDepth bounds in-flight bypassing data accesses.
	DataQueueDepth int
	// DataCyclesPerReq throttles the SM's interconnect injection rate.
	DataCyclesPerReq int

	// AddrBias shifts this hierarchy's addresses before they reach a
	// shared (banked) L2, so co-resident kernels with identical virtual
	// layouts occupy distinct lines. Zero for private L2s and for
	// single-kernel multi-SM runs (SMs of one kernel genuinely share
	// lines).
	AddrBias uint32
}

// DefaultConfig returns the Table 1 configuration for one SM.
func DefaultConfig() Config {
	return Config{
		L1Sets:       64,
		L1Ways:       6,
		L1MSHRs:      32,
		L1HitLatency: 24,
		L2Sets:       512, // 512 x 8 x 128 B = 512 KB slice
		L2Ways:       8,
		L2Latency:    95,
		DRAMLatency:  225,
		// One SM's share of 224 GB/s at 1 GHz is ~14 B/cycle, i.e. one
		// 128 B line every ~9 cycles.
		DRAMCyclesPerLine: 9,
		DataQueueDepth:    64,
		DataCyclesPerReq:  2,
	}
}

// Source tells a completion callback which level satisfied the access —
// the provenance Figure 17 reports for register preloads.
type Source uint8

const (
	// SrcL1 marks an L1 hit (or a write absorbed by L1).
	SrcL1 Source = iota
	// SrcL2 marks an L1 miss satisfied by the L2.
	SrcL2
	// SrcDRAM marks a miss that went to DRAM.
	SrcDRAM
)

// String names the source.
func (s Source) String() string {
	switch s {
	case SrcL1:
		return "L1"
	case SrcL2:
		return "L2"
	default:
		return "DRAM"
	}
}

// Stats counts hierarchy events for the energy model and Figures 17/18.
type Stats struct {
	L1Hits          uint64
	L1Misses        uint64
	L1Reads         uint64
	L1Writes        uint64
	L1Writebacks    uint64
	L1Invalidations uint64
	L2Hits          uint64
	L2Misses        uint64
	DataReads       uint64
	DataWrites      uint64
	DRAMAccesses    uint64

	// Structural-hazard rejections (the submitting unit retries next
	// cycle, so these count contention cycles, not lost requests):
	// L1PortRejects are requests refused because the single L1 port was
	// claimed this cycle, MSHRRejects because all MSHRs were in use, and
	// DataRejects because the bypass queue or injection port was busy.
	L1PortRejects uint64
	MSHRRejects   uint64
	DataRejects   uint64

	// FaultDrops/FaultDelays count injected response faults applied
	// (zero outside fault-injection runs).
	FaultDrops  uint64
	FaultDelays uint64
}

type line struct {
	tag   uint32
	valid bool
	dirty bool
	lru   uint64
}

type cache struct {
	sets, ways int
	lines      []line
}

func newCache(sets, ways int) *cache {
	return &cache{sets: sets, ways: ways, lines: make([]line, sets*ways)}
}

func (c *cache) set(addr uint32) []line {
	idx := int(addr/LineSize) % c.sets
	return c.lines[idx*c.ways : (idx+1)*c.ways]
}

// lookup returns the way holding addr, or nil.
func (c *cache) lookup(addr uint32, now uint64) *line {
	tag := addr / LineSize
	set := c.set(addr)
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			set[i].lru = now
			return &set[i]
		}
	}
	return nil
}

// victim returns the way to fill for addr (LRU; invalid ways first).
func (c *cache) victim(addr uint32) *line {
	set := c.set(addr)
	var v *line
	for i := range set {
		if !set[i].valid {
			return &set[i]
		}
		if v == nil || set[i].lru < v.lru {
			v = &set[i]
		}
	}
	return v
}

// invalidate drops addr's line if present, returning whether it was dirty.
func (c *cache) invalidate(addr uint32) (present, dirty bool) {
	tag := addr / LineSize
	set := c.set(addr)
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			set[i].valid = false
			return true, set[i].dirty
		}
	}
	return false, false
}

// event is a pending completion.
type event struct {
	cycle uint64
	fn    func()
}

// Hierarchy is the per-SM memory system.
type Hierarchy struct {
	cfg   Config
	Stats Stats

	l1 *cache
	l2 *cache

	now uint64

	// L1 port: one request per cycle (Table 1).
	l1PortCycle uint64

	// MSHRs: line address -> waiting callbacks.
	mshrs map[uint32][]func(Source)

	// Bypassing data path.
	dataInFlight int
	dataNextFree uint64

	// DRAM bandwidth throttle.
	dramNextFree uint64

	// banked, when non-nil, replaces the private L2 slice and DRAM
	// throttle with the chip-wide banked level (multi-SM simulation).
	banked *BankedL2

	// rec, when attached, observes accepted L1 accesses (nil-safe).
	rec *events.Recorder

	// flt, when armed, corrupts accepted response callbacks (nil-safe:
	// the disabled path costs one branch per accepted access).
	flt *faults.Injector

	events eventQueue
}

// SetRecorder attaches an event recorder for backing-store L1 traffic.
func (h *Hierarchy) SetRecorder(r *events.Recorder) { h.rec = r }

// SetFaults arms a fault injector: accepted L1/data response callbacks
// consult it for mem-delay/mem-drop faults.
func (h *Hierarchy) SetFaults(in *faults.Injector) { h.flt = in }

// applyFault runs one accepted response callback through the injector:
// a dropped response returns nil (the requester never hears back — the
// hierarchy's own accounting is unaffected), a delayed one is rescheduled
// after the extra latency. Called only at accept points, never on
// rejected requests, so a fault is consumed exactly when it takes effect.
func (h *Hierarchy) applyFault(done func(Source)) func(Source) {
	if h.flt == nil || done == nil {
		return done
	}
	drop, delay := h.flt.MemResponse(h.now)
	if drop {
		h.Stats.FaultDrops++
		return nil
	}
	if delay > 0 {
		h.Stats.FaultDelays++
		orig := done
		return func(s Source) { h.after(delay, func() { orig(s) }) }
	}
	return done
}

// l2addr applies the co-residency address bias for the shared level.
func (h *Hierarchy) l2addr(a uint32) uint32 { return a + h.cfg.AddrBias }

// BankedL2 returns the chip-wide L2 this hierarchy is attached to, or
// nil when it runs against its private slice.
func (h *Hierarchy) BankedL2() *BankedL2 { return h.banked }

// New builds a hierarchy.
func New(cfg Config) *Hierarchy {
	return &Hierarchy{
		cfg:   cfg,
		l1:    newCache(cfg.L1Sets, cfg.L1Ways),
		l2:    newCache(cfg.L2Sets, cfg.L2Ways),
		mshrs: make(map[uint32][]func(Source)),
	}
}

// Now returns the hierarchy's current cycle.
func (h *Hierarchy) Now() uint64 { return h.now }

// Tick advances one cycle and fires due completions.
func (h *Hierarchy) Tick() {
	h.now++
	for {
		fn, ok := h.events.popDue(h.now)
		if !ok {
			return
		}
		fn()
	}
}

func (h *Hierarchy) after(delay int, fn func()) {
	h.events.push(event{cycle: h.now + uint64(delay), fn: fn})
}

// NextWake returns the earliest future cycle at which the hierarchy can
// change observable state on its own: the next scheduled completion, plus
// — when the caller has a data access waiting to retry (dataWaiting) —
// the cycle the injection port frees. ok=false means no self-driven
// activity is pending. Used by the SM's cycle-skip fast-forward.
func (h *Hierarchy) NextWake(dataWaiting bool) (uint64, bool) {
	wake, ok := h.events.nextCycle()
	if dataWaiting && h.dataInFlight < h.cfg.DataQueueDepth {
		// The port frees at dataNextFree; a retry then succeeds (queue
		// depth permitting). If the port is already free the retry
		// succeeds next cycle.
		t := h.dataNextFree
		if t <= h.now {
			t = h.now + 1
		}
		if !ok || t < wake {
			wake, ok = t, true
		}
	}
	return wake, ok
}

// FastForwardTo jumps the hierarchy clock to cycle without ticking the
// intermediate cycles. The caller guarantees no event is due at or before
// cycle (the fast-forward wake computation stops short of the earliest
// completion), so skipped cycles are provably inert.
func (h *Hierarchy) FastForwardTo(cycle uint64) {
	if cycle > h.now {
		h.now = cycle
	}
}

func align(addr uint32) uint32 { return addr &^ (LineSize - 1) }

func (h *Hierarchy) countL1(write bool) {
	if write {
		h.Stats.L1Writes++
	} else {
		h.Stats.L1Reads++
	}
}

// l1PortAvailable reports whether the single L1 port is unused this cycle;
// claimL1Port marks it used. A request refused for a structural hazard
// (e.g. no MSHR) does not claim the port.
func (h *Hierarchy) l1PortAvailable() bool { return h.l1PortCycle != h.now+1 }
func (h *Hierarchy) claimL1Port()          { h.l1PortCycle = h.now + 1 }

// L1Access submits a register-space L1 access. done fires when the data is
// available (reads) or accepted (writes), and reports which level supplied
// it. Returns false when the port or an MSHR is unavailable; the caller
// retries. done may be nil.
func (h *Hierarchy) L1Access(addr uint32, write bool, done func(Source)) bool {
	a := align(addr)
	if !h.l1PortAvailable() {
		h.Stats.L1PortRejects++
		return false
	}
	complete := func(delay int, src Source) {
		if done != nil {
			h.after(delay, func() { done(src) })
		}
	}
	if ln := h.l1.lookup(a, h.now); ln != nil {
		h.claimL1Port()
		h.countL1(write)
		h.Stats.L1Hits++
		h.rec.L1(write, true, a)
		if write {
			ln.dirty = true
		}
		done = h.applyFault(done)
		complete(h.cfg.L1HitLatency, SrcL1)
		return true
	}
	if write {
		// No fetch-on-write: whole-line register writes allocate
		// directly (§5.2.3).
		h.claimL1Port()
		h.countL1(write)
		h.Stats.L1Hits++ // counts as a hit: no lower-level traffic
		h.rec.L1(write, true, a)
		h.fill(a, true)
		done = h.applyFault(done)
		complete(h.cfg.L1HitLatency, SrcL1)
		return true
	}
	// Read miss: take an MSHR (merge secondary misses).
	if waiters, ok := h.mshrs[a]; ok {
		h.claimL1Port()
		h.countL1(write)
		h.mshrs[a] = append(waiters, h.applyFault(done))
		h.Stats.L1Misses++
		h.rec.L1(write, false, a)
		return true
	}
	if len(h.mshrs) >= h.cfg.L1MSHRs {
		h.Stats.MSHRRejects++
		return false
	}
	h.claimL1Port()
	h.countL1(write)
	h.Stats.L1Misses++
	h.rec.L1(write, false, a)
	h.mshrs[a] = []func(Source){h.applyFault(done)}
	h.l2Access(a, false, func(src Source) {
		h.fill(a, false)
		for _, fn := range h.mshrs[a] {
			if fn != nil {
				fn(src)
			}
		}
		delete(h.mshrs, a)
	})
	return true
}

// fill installs a line in L1, writing back a dirty victim.
func (h *Hierarchy) fill(a uint32, dirty bool) {
	v := h.l1.victim(a)
	if v.valid && v.dirty {
		h.Stats.L1Writebacks++
		h.l2Access(v.tag*LineSize, true, nil)
	}
	*v = line{tag: a / LineSize, valid: true, dirty: dirty, lru: h.now}
}

// L1Invalidate drops a register line from L1 and L2 (a compiler cache
// invalidation annotation, §4.3). It consumes the L1 port.
func (h *Hierarchy) L1Invalidate(addr uint32) bool {
	a := align(addr)
	if !h.l1PortAvailable() {
		h.Stats.L1PortRejects++
		return false
	}
	h.claimL1Port()
	h.Stats.L1Invalidations++
	h.l1.invalidate(a)
	h.l2Invalidate(a)
	return true
}

// L1InvalidateQuiet drops a register line from L1 and L2 without consuming
// the L1 port — used for invalidating reads, where the invalidation
// piggybacks on the read access itself (§4.3).
func (h *Hierarchy) L1InvalidateQuiet(addr uint32) {
	a := align(addr)
	h.l1.invalidate(a)
	h.l2Invalidate(a)
}

// l2Invalidate drops a line from whichever L2 this hierarchy talks to.
func (h *Hierarchy) l2Invalidate(a uint32) {
	if h.banked != nil {
		h.banked.invalidate(h.l2addr(a))
		return
	}
	h.l2.invalidate(a)
}

// l2Access runs an access at the L2 (from L1 misses/writebacks); done may
// be nil (writes). With a chip-wide banked L2 attached, the access is
// routed there (bank port arbitration, shared MSHRs, chip DRAM budget);
// otherwise it probes the private slice.
func (h *Hierarchy) l2Access(a uint32, write bool, done func(Source)) {
	if h.banked != nil {
		h.banked.access(h, h.l2addr(a), write, done)
		return
	}
	l2 := h.l2
	if ln := l2.lookup(a, h.now); ln != nil {
		h.Stats.L2Hits++
		if write {
			ln.dirty = true
		}
		if done != nil {
			h.after(h.cfg.L2Latency, func() { done(SrcL2) })
		}
		return
	}
	h.Stats.L2Misses++
	if write {
		// Write-allocate without fetch (register lines are whole).
		v := l2.victim(a)
		if v.valid && v.dirty {
			h.dramWrite()
		}
		*v = line{tag: a / LineSize, valid: true, dirty: true, lru: h.now}
		return
	}
	delay := h.cfg.L2Latency + h.cfg.DRAMLatency + h.dramQueueDelay()
	h.after(delay, func() {
		v := l2.victim(a)
		if v.valid && v.dirty {
			h.dramWrite()
		}
		*v = line{tag: a / LineSize, valid: true, lru: h.now}
		if done != nil {
			done(SrcDRAM)
		}
	})
}

// dramQueueDelay advances the private DRAM bandwidth throttle and
// returns the queueing delay for one line transfer (chip-wide runs use
// BankedL2's throttle instead).
func (h *Hierarchy) dramQueueDelay() int {
	h.Stats.DRAMAccesses++
	start := h.now
	if h.dramNextFree > start {
		start = h.dramNextFree
	}
	h.dramNextFree = start + uint64(h.cfg.DRAMCyclesPerLine)
	return int(start - h.now)
}

func (h *Hierarchy) dramWrite() {
	h.dramQueueDelay() // consumes bandwidth; completion not tracked
}

// DataAccess submits a global data access that bypasses L1 (Table 1).
// done fires when a read's data returns; writes complete immediately after
// acceptance. Returns false when the data queue is full or the injection
// port is busy.
func (h *Hierarchy) DataAccess(addr uint32, write bool, done func(Source)) bool {
	a := align(addr)
	if h.dataInFlight >= h.cfg.DataQueueDepth || h.dataNextFree > h.now {
		h.Stats.DataRejects++
		return false
	}
	h.dataNextFree = h.now + uint64(h.cfg.DataCyclesPerReq)
	h.dataInFlight++
	done = h.applyFault(done)
	if write {
		// Writes are fire-and-forget at the core: the L2 update is
		// submitted now, the queue slot frees after the injection
		// latency, and the warp-side callback fires immediately.
		h.Stats.DataWrites++
		h.l2Access(a, true, nil)
		h.after(h.cfg.L2Latency, func() { h.dataInFlight-- })
		if done != nil {
			h.after(1, func() { done(SrcL2) })
		}
		return true
	}
	h.Stats.DataReads++
	h.l2Access(a, false, func(src Source) {
		h.dataInFlight--
		if done != nil {
			done(src)
		}
	})
	return true
}

// Drained reports whether no events or in-flight accesses remain.
func (h *Hierarchy) Drained() bool {
	return h.events.len() == 0 && len(h.mshrs) == 0 && h.dataInFlight == 0
}
