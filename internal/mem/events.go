package mem

// eventQueue is a min-heap of pending completions ordered by cycle.
// Events scheduled for the same cycle fire in insertion order (the seq
// tiebreak). Hand-rolled rather than container/heap so the per-event
// push/pop stays monomorphic in the simulation hot loop, and so the
// cycle-skip fast-forward can peek the earliest completion.
type eventQueue struct {
	h   []heapItem
	seq uint64
}

type heapItem struct {
	event
	seq uint64
}

func (q *eventQueue) before(a, b heapItem) bool {
	if a.cycle != b.cycle {
		return a.cycle < b.cycle
	}
	return a.seq < b.seq
}

func (q *eventQueue) push(e event) {
	q.seq++
	q.h = append(q.h, heapItem{event: e, seq: q.seq})
	i := len(q.h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !q.before(q.h[i], q.h[parent]) {
			break
		}
		q.h[i], q.h[parent] = q.h[parent], q.h[i]
		i = parent
	}
}

// popDue removes and returns the next event due at or before now.
func (q *eventQueue) popDue(now uint64) (func(), bool) {
	if len(q.h) == 0 || q.h[0].cycle > now {
		return nil, false
	}
	fn := q.h[0].fn
	n := len(q.h) - 1
	q.h[0] = q.h[n]
	q.h[n] = heapItem{} // release the fn for GC
	q.h = q.h[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < n && q.before(q.h[l], q.h[min]) {
			min = l
		}
		if r < n && q.before(q.h[r], q.h[min]) {
			min = r
		}
		if min == i {
			break
		}
		q.h[i], q.h[min] = q.h[min], q.h[i]
		i = min
	}
	return fn, true
}

// nextCycle peeks the earliest scheduled completion (ok=false when empty).
func (q *eventQueue) nextCycle() (uint64, bool) {
	if len(q.h) == 0 {
		return 0, false
	}
	return q.h[0].cycle, true
}

func (q *eventQueue) len() int { return len(q.h) }
