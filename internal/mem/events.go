package mem

import "container/heap"

// eventQueue is a min-heap of pending completions ordered by cycle.
// Events scheduled for the same cycle fire in insertion order.
type eventQueue struct {
	h   eventHeap
	seq uint64
}

type heapItem struct {
	event
	seq uint64
}

type eventHeap []heapItem

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].cycle != h[j].cycle {
		return h[i].cycle < h[j].cycle
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(heapItem)) }
func (h *eventHeap) Pop() any     { old := *h; n := len(old); it := old[n-1]; *h = old[:n-1]; return it }

func (q *eventQueue) push(e event) {
	q.seq++
	heap.Push(&q.h, heapItem{event: e, seq: q.seq})
}

// popDue removes and returns the next event due at or before now.
func (q *eventQueue) popDue(now uint64) (func(), bool) {
	if len(q.h) == 0 || q.h[0].cycle > now {
		return nil, false
	}
	it := heap.Pop(&q.h).(heapItem)
	return it.fn, true
}

func (q *eventQueue) len() int { return len(q.h) }
