package mem

// SharedL2 is a GPU-wide L2 + DRAM back end that several per-SM
// hierarchies can attach to (Table 1's 2 MB L2 and 224 GB/s DRAM shared by
// all SMs). Access is single-threaded: the GPU model ticks its SMs in
// lockstep on one goroutine.
type SharedL2 struct {
	cache             *cache
	dramNextFree      uint64
	dramCyclesPerLine int

	// Stats aggregates across all attached SMs.
	Stats struct {
		L2Hits       uint64
		L2Misses     uint64
		DRAMAccesses uint64
	}
}

// SharedL2Config sizes the shared level.
type SharedL2Config struct {
	Sets, Ways        int
	DRAMCyclesPerLine int
}

// DefaultSharedL2Config returns the full-GPU 2 MB L2 (2048 sets x 8 ways x
// 128 B) with the whole 224 GB/s DRAM interface (one line every ~0.6
// cycles at 1 GHz; rounded to 1).
func DefaultSharedL2Config() SharedL2Config {
	return SharedL2Config{Sets: 2048, Ways: 8, DRAMCyclesPerLine: 1}
}

// NewSharedL2 builds the shared level.
func NewSharedL2(cfg SharedL2Config) *SharedL2 {
	if cfg.DRAMCyclesPerLine < 1 {
		cfg.DRAMCyclesPerLine = 1
	}
	return &SharedL2{
		cache:             newCache(cfg.Sets, cfg.Ways),
		dramCyclesPerLine: cfg.DRAMCyclesPerLine,
	}
}

// attach makes hierarchy h use the shared L2 instead of its private slice.
func (s *SharedL2) attach(h *Hierarchy) { h.shared = s }

// AttachHierarchy builds a per-SM hierarchy (private L1, shared L2).
func (s *SharedL2) AttachHierarchy(cfg Config) *Hierarchy {
	h := New(cfg)
	s.attach(h)
	return h
}
