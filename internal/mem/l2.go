// Banked chip-level L2 + DRAM back end for multi-SM simulation.
//
// The single-SM model gives each SM a private flat L2 slice (mem.go);
// the full-GPU model replaces that with one BankedL2 shared by every
// SM's hierarchy: a set-associative cache interleaved across banks by
// line address, each bank with its own single-request-per-cycle port
// and its own MSHR file (secondary misses from *any* SM merge onto the
// first fetch of a line), all backed by one DRAM interface with a
// latency and a chip-wide bandwidth budget. This is where inter-SM
// interference lives: one SM's preload traffic occupies bank ports,
// steals MSHRs, and evicts lines another SM staged.
//
// Access is single-threaded: the GPU model ticks its SMs in lockstep on
// one goroutine, so SM index order is the (deterministic) arbitration
// order for same-cycle bank-port contention. The BankedL2 has no clock
// of its own — it trusts the submitting hierarchy's cycle, which is
// identical across SMs in lockstep — and schedules every completion on
// the *requesting* hierarchy's event queue, so the cycle-skip
// fast-forward's per-SM wake computation covers all chip-level events.
package mem

import "fmt"

// BankedL2Config sizes the chip-level L2 and DRAM interface.
type BankedL2Config struct {
	// Banks is the number of address-interleaved banks
	// (bank = line address mod Banks).
	Banks int
	// SetsPerBank x Ways x Banks x 128 B is the total capacity.
	SetsPerBank int
	Ways        int
	// PortsPerBank is how many requests one bank accepts per cycle;
	// further same-cycle requests queue (charged as delay). 0 models an
	// unported ideal bank.
	PortsPerBank int
	// MSHRsPerBank bounds outstanding DRAM fetches per bank; secondary
	// misses to an in-flight line merge onto the first fetch. 0 disables
	// MSHR tracking entirely (every miss fetches independently).
	MSHRsPerBank int
	// MSHRRetry is the back-off before a request rejected by a full MSHR
	// file retries the bank.
	MSHRRetry int
	// Latency is the L2 access latency in cycles (pipelined: latency,
	// not occupancy).
	Latency int
	// DRAMLatency is the miss penalty beyond L2.
	DRAMLatency int
	// DRAMCyclesPerLine throttles the chip-wide DRAM interface: minimum
	// cycles between line transfers (224 GB/s at 1 GHz moves a 128 B
	// line every ~0.57 cycles; rounded to 1).
	DRAMCyclesPerLine int
}

// DefaultBankedL2Config returns the GTX 980's 2 MB L2 as 16 banks x 128
// sets x 8 ways x 128 B with one port and 32 MSHRs per bank.
func DefaultBankedL2Config() BankedL2Config {
	return BankedL2Config{
		Banks:             16,
		SetsPerBank:       128,
		Ways:              8,
		PortsPerBank:      1,
		MSHRsPerBank:      32,
		MSHRRetry:         4,
		Latency:           95,
		DRAMLatency:       225,
		DRAMCyclesPerLine: 1,
	}
}

// Validate rejects geometries the model cannot represent.
func (c BankedL2Config) Validate() error {
	if c.Banks < 1 || c.SetsPerBank < 1 || c.Ways < 1 {
		return fmt.Errorf("mem: banked L2 needs at least 1 bank/set/way, got %d/%d/%d",
			c.Banks, c.SetsPerBank, c.Ways)
	}
	if c.PortsPerBank < 0 || c.MSHRsPerBank < 0 {
		return fmt.Errorf("mem: negative bank ports (%d) or MSHRs (%d)", c.PortsPerBank, c.MSHRsPerBank)
	}
	return nil
}

// BankedL2Stats aggregates chip-level memory traffic.
type BankedL2Stats struct {
	Hits   uint64
	Misses uint64
	// PortQueueCycles sums the cycles requests waited for a bank port
	// (the chip-level contention signal).
	PortQueueCycles uint64
	// MSHRMerges counts secondary misses folded onto an in-flight fetch
	// (cross-SM merges included).
	MSHRMerges uint64
	// MSHRFullRetries counts requests bounced by a full per-bank MSHR
	// file (each retries after MSHRRetry cycles).
	MSHRFullRetries uint64
	// DRAMAccesses counts line fetches, DRAMWrites dirty writebacks;
	// DRAMQueueCycles sums bandwidth-throttle queueing delay.
	DRAMAccesses    uint64
	DRAMWrites      uint64
	DRAMQueueCycles uint64
}

// l2waiter is one merged requester parked on an in-flight fetch.
type l2waiter struct {
	done func(Source)
}

// l2bank is one address-interleaved slice of the chip L2.
type l2bank struct {
	cache *cache
	// Port accounting: portsUsed requests accepted at portCycle; the
	// overflow queues (nextFree).
	portCycle uint64
	portsUsed int
	nextFree  uint64
	// In-flight DRAM fetches by (bias-adjusted) line address.
	mshrs map[uint32][]l2waiter
	hits, misses uint64
}

// BankedL2 is the chip-wide shared L2 + DRAM interface.
type BankedL2 struct {
	cfg   BankedL2Config
	banks []l2bank
	// DRAM bandwidth throttle (chip-wide).
	dramNextFree uint64

	Stats BankedL2Stats
}

// NewBankedL2 builds the shared level.
func NewBankedL2(cfg BankedL2Config) (*BankedL2, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	l2 := &BankedL2{cfg: cfg, banks: make([]l2bank, cfg.Banks)}
	for i := range l2.banks {
		l2.banks[i].cache = newCache(cfg.SetsPerBank, cfg.Ways)
		l2.banks[i].mshrs = make(map[uint32][]l2waiter)
	}
	return l2, nil
}

// Config returns the geometry the level was built with.
func (l2 *BankedL2) Config() BankedL2Config { return l2.cfg }

// bankOf interleaves line addresses across banks and returns the bank
// plus the bank-local probe address (consecutive lines hit consecutive
// banks; within a bank, the line's bank-local index feeds the existing
// set mapping).
func (l2 *BankedL2) bankOf(a uint32) (*l2bank, uint32) {
	ln := a / LineSize
	b := int(ln) % l2.cfg.Banks
	return &l2.banks[b], (ln / uint32(l2.cfg.Banks)) * LineSize
}

// portDelay charges bank-port arbitration at cycle now: the request is
// serviced at the first cycle with a free port slot, and the wait is
// returned as added latency. PortsPerBank == 0 models an ideal bank.
func (l2 *BankedL2) portDelay(b *l2bank, now uint64) int {
	if l2.cfg.PortsPerBank <= 0 {
		return 0
	}
	at := now
	if b.nextFree > at {
		at = b.nextFree
	}
	if at != b.portCycle {
		b.portCycle = at
		b.portsUsed = 0
	}
	b.portsUsed++
	if b.portsUsed >= l2.cfg.PortsPerBank {
		b.nextFree = at + 1
	}
	wait := at - now
	l2.Stats.PortQueueCycles += wait
	return int(wait)
}

// dramQueueDelay advances the chip-wide bandwidth throttle and returns
// the queueing delay for one line transfer.
func (l2 *BankedL2) dramQueueDelay(now uint64) int {
	start := now
	if l2.dramNextFree > start {
		start = l2.dramNextFree
	}
	l2.dramNextFree = start + uint64(l2.cfg.DRAMCyclesPerLine)
	l2.Stats.DRAMQueueCycles += start - now
	return int(start - now)
}

// dramWrite consumes write bandwidth (completion is not tracked — the
// line is already installed and the writeback buffer is not modelled).
func (l2 *BankedL2) dramWrite(now uint64) {
	l2.Stats.DRAMWrites++
	l2.dramQueueDelay(now)
}

// access runs one L2 access submitted by hierarchy h at h.Now(). The
// address must already carry the hierarchy's timing bias. Completions
// are scheduled on h's event queue; merged secondary misses fire from
// the *first* requester's queue (deterministic under lockstep).
func (l2 *BankedL2) access(h *Hierarchy, a uint32, write bool, done func(Source)) {
	now := h.now
	bank, ba := l2.bankOf(a)
	if ln := bank.cache.lookup(ba, now); ln != nil {
		pd := l2.portDelay(bank, now)
		l2.Stats.Hits++
		bank.hits++
		h.Stats.L2Hits++
		if write {
			ln.dirty = true
		}
		if done != nil {
			h.after(pd+l2.cfg.Latency, func() { done(SrcL2) })
		}
		return
	}
	if write {
		// Write-allocate without fetch: register lines are written whole
		// (§5.2.3), so a miss installs the line directly and only a dirty
		// victim costs DRAM bandwidth.
		l2.portDelay(bank, now) // books the slot; writes have no completion to delay
		l2.Stats.Misses++
		bank.misses++
		h.Stats.L2Misses++
		v := bank.cache.victim(ba)
		if v.valid && v.dirty {
			l2.dramWrite(now)
		}
		*v = line{tag: ba / LineSize, valid: true, dirty: true, lru: now}
		return
	}
	// Read miss: merge onto an in-flight fetch when MSHR tracking is on.
	if l2.cfg.MSHRsPerBank > 0 {
		if waiters, ok := bank.mshrs[a]; ok {
			l2.portDelay(bank, now)
			l2.Stats.Misses++
			bank.misses++
			h.Stats.L2Misses++
			l2.Stats.MSHRMerges++
			bank.mshrs[a] = append(waiters, l2waiter{done: done})
			return
		}
		if len(bank.mshrs) >= l2.cfg.MSHRsPerBank {
			// MSHR file full: the request is refused at the bank input
			// queue and retries after the back-off. Critically, a bounced
			// request consumes NO port slot and counts NO miss — hundreds
			// of spinning retries against a 1-request/cycle port would
			// otherwise grow the port backlog without bound, receding
			// every in-flight fetch's completion horizon (a livelock
			// observed at 16 SMs, not a slowdown: MSHRs stop turning over
			// entirely). The miss is counted once, when accepted.
			l2.Stats.MSHRFullRetries++
			retry := l2.cfg.MSHRRetry
			if retry < 1 {
				retry = 1
			}
			h.after(retry, func() { l2.access(h, a, false, done) })
			return
		}
		bank.mshrs[a] = []l2waiter{{done: done}}
	}
	pd := l2.portDelay(bank, now)
	l2.Stats.Misses++
	bank.misses++
	h.Stats.L2Misses++
	delay := pd + l2.cfg.Latency + l2.cfg.DRAMLatency + l2.dramQueueDelay(now)
	l2.Stats.DRAMAccesses++
	h.Stats.DRAMAccesses++
	h.after(delay, func() {
		v := bank.cache.victim(ba)
		if v.valid && v.dirty {
			l2.dramWrite(h.now)
		}
		*v = line{tag: ba / LineSize, valid: true, lru: h.now}
		if l2.cfg.MSHRsPerBank > 0 {
			for _, w := range bank.mshrs[a] {
				if w.done != nil {
					w.done(SrcDRAM)
				}
			}
			delete(bank.mshrs, a)
			return
		}
		if done != nil {
			done(SrcDRAM)
		}
	})
}

// ResetTiming clears the level's timing bookkeeping at a wave boundary
// (the launch block scheduler's per-wave SMs restart their clocks at 0):
// bank ports and the DRAM throttle free, and every resident line's LRU
// stamp collapses to 0 so stale large timestamps from the previous wave
// cannot outrank the new wave's touches. Cache contents and statistics
// persist — the warm L2 across waves is the point. The caller guarantees
// all attached hierarchies are drained (no in-flight MSHR fetches).
func (l2 *BankedL2) ResetTiming() {
	l2.dramNextFree = 0
	for i := range l2.banks {
		b := &l2.banks[i]
		b.portCycle, b.portsUsed, b.nextFree = 0, 0, 0
		for j := range b.cache.lines {
			b.cache.lines[j].lru = 0
		}
	}
}

// invalidate drops a line from its bank (compiler cache-invalidation
// annotations reach the shared level too).
func (l2 *BankedL2) invalidate(a uint32) {
	bank, ba := l2.bankOf(a)
	bank.cache.invalidate(ba)
}

// MSHROccupancy reports each bank's in-flight fetch count (diagnostics
// and the chip-level invariant sweep).
func (l2 *BankedL2) MSHROccupancy() []int {
	out := make([]int, len(l2.banks))
	for i := range l2.banks {
		out[i] = len(l2.banks[i].mshrs)
	}
	return out
}

// BankLoads reports per-bank (hits, misses) — the interleaving-balance
// signal for the gpuscale table and the sanitizer's bank accounting.
func (l2 *BankedL2) BankLoads() (hits, misses []uint64) {
	hits = make([]uint64, len(l2.banks))
	misses = make([]uint64, len(l2.banks))
	for i := range l2.banks {
		hits[i] = l2.banks[i].hits
		misses[i] = l2.banks[i].misses
	}
	return hits, misses
}

// CheckInvariants validates the level's structural invariants (run by
// the chip loop under -sanitize): per-bank MSHR occupancy within bounds
// and hit/miss accounting consistent with the aggregate.
func (l2 *BankedL2) CheckInvariants() error {
	var hits, misses uint64
	for i := range l2.banks {
		b := &l2.banks[i]
		if l2.cfg.MSHRsPerBank > 0 && len(b.mshrs) > l2.cfg.MSHRsPerBank {
			return fmt.Errorf("mem/l2bank: bank %d holds %d MSHRs (limit %d)",
				i, len(b.mshrs), l2.cfg.MSHRsPerBank)
		}
		hits += b.hits
		misses += b.misses
	}
	if hits != l2.Stats.Hits || misses != l2.Stats.Misses {
		return fmt.Errorf("mem/l2bank: per-bank totals %d/%d disagree with aggregate %d/%d",
			hits, misses, l2.Stats.Hits, l2.Stats.Misses)
	}
	return nil
}

// AttachHierarchy builds a per-SM hierarchy (private L1) whose L2 level
// is this chip-wide banked L2.
func (l2 *BankedL2) AttachHierarchy(cfg Config) *Hierarchy {
	h := New(cfg)
	h.banked = l2
	return h
}
