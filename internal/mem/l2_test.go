package mem

import (
	"math/rand"
	"testing"
)

// drainHier ticks the hierarchy until every scheduled completion (L2
// fetches, MSHR retries) has fired.
func drainHier(t *testing.T, h *Hierarchy) {
	t.Helper()
	for i := 0; !h.Drained(); i++ {
		if i > 1_000_000 {
			t.Fatal("hierarchy did not drain")
		}
		h.Tick()
	}
}

// l2Oracle replays an access stream against a plain map-and-slices model
// of the banked L2: per-bank set-associative LRU arrays with the same
// interleaving (bank = line mod Banks, bank-local index = line / Banks).
// It is only valid for *serialized* accesses (the caller drains between
// submissions), where installation order equals access order and a
// monotonic counter reproduces the LRU ordering.
type l2Oracle struct {
	cfg   BankedL2Config
	banks [][]struct {
		tag   uint32
		valid bool
		dirty bool
		last  uint64
	}
	tick                          uint64
	hits, misses, fetches, writes uint64
}

func newL2Oracle(cfg BankedL2Config) *l2Oracle {
	o := &l2Oracle{cfg: cfg}
	o.banks = make([][]struct {
		tag   uint32
		valid bool
		dirty bool
		last  uint64
	}, cfg.Banks)
	for i := range o.banks {
		o.banks[i] = make([]struct {
			tag   uint32
			valid bool
			dirty bool
			last  uint64
		}, cfg.SetsPerBank*cfg.Ways)
	}
	return o
}

func (o *l2Oracle) access(a uint32, write bool) {
	o.tick++
	ln := a / LineSize
	bank := o.banks[int(ln)%o.cfg.Banks]
	tag := ln / uint32(o.cfg.Banks) // bank-local line index == cache tag
	si := int(tag) % o.cfg.SetsPerBank
	set := bank[si*o.cfg.Ways : (si+1)*o.cfg.Ways]
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			o.hits++
			set[i].last = o.tick
			if write {
				set[i].dirty = true
			}
			return
		}
	}
	o.misses++
	v := &set[0]
	for i := range set {
		if !set[i].valid {
			v = &set[i]
			break
		}
		if set[i].last < v.last {
			v = &set[i]
		}
	}
	if !write {
		o.fetches++
	}
	if v.valid && v.dirty {
		o.writes++
	}
	v.tag, v.valid, v.dirty, v.last = tag, true, write, o.tick
}

// TestBankedL2MapOracle replays a random mixed read/write stream through
// the banked L2, serialized (drain between accesses), and checks every
// counter against the oracle: hits, misses, DRAM fetches, and dirty
// writebacks must agree exactly.
func TestBankedL2MapOracle(t *testing.T) {
	cfg := BankedL2Config{
		Banks: 4, SetsPerBank: 4, Ways: 2,
		PortsPerBank: 1, MSHRsPerBank: 8, MSHRRetry: 2,
		Latency: 2, DRAMLatency: 3, DRAMCyclesPerLine: 1,
	}
	l2, err := NewBankedL2(cfg)
	if err != nil {
		t.Fatal(err)
	}
	h := l2.AttachHierarchy(DefaultConfig())
	oracle := newL2Oracle(cfg)

	rng := rand.New(rand.NewSource(1))
	// 3x the capacity in distinct lines forces conflict evictions.
	lines := cfg.Banks * cfg.SetsPerBank * cfg.Ways * 3
	for i := 0; i < 4000; i++ {
		a := uint32(rng.Intn(lines)) * LineSize
		write := rng.Intn(3) == 0
		fired := false
		l2.access(h, a, write, func(Source) { fired = true })
		drainHier(t, h)
		// Write misses complete inline with no event, so the drain can do
		// zero ticks; advance one cycle so LRU stamps strictly increase
		// per access (the ordering the oracle's counter reproduces).
		h.Tick()
		if !write && !fired {
			t.Fatalf("access %d: read callback never fired", i)
		}
		oracle.access(a, write)
	}

	if l2.Stats.Hits != oracle.hits || l2.Stats.Misses != oracle.misses {
		t.Fatalf("hits/misses = %d/%d, oracle %d/%d",
			l2.Stats.Hits, l2.Stats.Misses, oracle.hits, oracle.misses)
	}
	if l2.Stats.DRAMAccesses != oracle.fetches {
		t.Fatalf("DRAM fetches = %d, oracle %d", l2.Stats.DRAMAccesses, oracle.fetches)
	}
	if l2.Stats.DRAMWrites != oracle.writes {
		t.Fatalf("DRAM writes = %d, oracle %d", l2.Stats.DRAMWrites, oracle.writes)
	}
	if err := l2.CheckInvariants(); err != nil {
		t.Fatal(err)
	}

	// Timing reset keeps contents: a line the oracle says is resident
	// must still hit after ResetTiming.
	l2.ResetTiming()
	for b := range oracle.banks {
		for _, ln := range oracle.banks[b] {
			if !ln.valid {
				continue
			}
			// Reconstruct the global address from (bank, tag).
			a := (ln.tag*uint32(cfg.Banks) + uint32(b)) * LineSize
			before := l2.Stats.Hits
			l2.access(h, a, false, nil)
			drainHier(t, h)
			if l2.Stats.Hits != before+1 {
				t.Fatalf("bank %d tag %d: resident line missed after ResetTiming", b, ln.tag)
			}
		}
	}
}

// TestBankedL2MSHRMerge checks that a same-cycle secondary read miss to
// an in-flight line merges onto the first fetch: one DRAM access, both
// callbacks fire from the same completion.
func TestBankedL2MSHRMerge(t *testing.T) {
	cfg := BankedL2Config{
		Banks: 2, SetsPerBank: 4, Ways: 2,
		MSHRsPerBank: 4, MSHRRetry: 2, Latency: 2, DRAMLatency: 5,
	}
	l2, err := NewBankedL2(cfg)
	if err != nil {
		t.Fatal(err)
	}
	h := l2.AttachHierarchy(DefaultConfig())
	var got []Source
	addr := uint32(0x1000)
	l2.access(h, addr, false, func(s Source) { got = append(got, s) })
	l2.access(h, addr, false, func(s Source) { got = append(got, s) })
	if l2.Stats.MSHRMerges != 1 {
		t.Fatalf("merges = %d, want 1", l2.Stats.MSHRMerges)
	}
	if l2.Stats.DRAMAccesses != 1 {
		t.Fatalf("DRAM accesses = %d, want 1 (merged)", l2.Stats.DRAMAccesses)
	}
	drainHier(t, h)
	if len(got) != 2 || got[0] != SrcDRAM || got[1] != SrcDRAM {
		t.Fatalf("callbacks = %v, want two SrcDRAM", got)
	}
	if l2.Stats.Misses != 2 {
		t.Fatalf("misses = %d, want 2 (both accesses count)", l2.Stats.Misses)
	}
}

// TestBankedL2MSHRFull checks the bounce-and-retry path: with one MSHR
// per bank, a second same-cycle miss to a different line is rejected,
// retries after the back-off, and still completes.
func TestBankedL2MSHRFull(t *testing.T) {
	cfg := BankedL2Config{
		Banks: 1, SetsPerBank: 4, Ways: 2,
		MSHRsPerBank: 1, MSHRRetry: 3, Latency: 2, DRAMLatency: 5,
	}
	l2, err := NewBankedL2(cfg)
	if err != nil {
		t.Fatal(err)
	}
	h := l2.AttachHierarchy(DefaultConfig())
	done := 0
	l2.access(h, 0, false, func(Source) { done++ })
	l2.access(h, 128, false, func(Source) { done++ })
	if l2.Stats.MSHRFullRetries == 0 {
		t.Fatal("second miss was not bounced by the full MSHR file")
	}
	drainHier(t, h)
	if done != 2 {
		t.Fatalf("completions = %d, want 2", done)
	}
	if l2.Stats.DRAMAccesses != 2 {
		t.Fatalf("DRAM accesses = %d, want 2", l2.Stats.DRAMAccesses)
	}
	if err := l2.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestBankedL2PortContention checks single-port bank arbitration: the
// second same-cycle request to one bank waits exactly one cycle, and the
// wait is charged to PortQueueCycles.
func TestBankedL2PortContention(t *testing.T) {
	cfg := BankedL2Config{
		Banks: 2, SetsPerBank: 4, Ways: 2,
		PortsPerBank: 1, MSHRsPerBank: 8, MSHRRetry: 2,
		Latency: 2, DRAMLatency: 5,
	}
	l2, err := NewBankedL2(cfg)
	if err != nil {
		t.Fatal(err)
	}
	h := l2.AttachHierarchy(DefaultConfig())
	var t1, t2 uint64
	// Lines 0 and 2 both land in bank 0 (line mod 2).
	l2.access(h, 0, false, func(Source) { t1 = h.Now() })
	l2.access(h, 2*LineSize, false, func(Source) { t2 = h.Now() })
	drainHier(t, h)
	if l2.Stats.PortQueueCycles != 1 {
		t.Fatalf("port queue cycles = %d, want 1", l2.Stats.PortQueueCycles)
	}
	if t2 != t1+1 {
		t.Fatalf("second completion at %d, want %d (one cycle after first)", t2, t1+1)
	}
}

// TestBankedL2Interleave checks the address interleaving: consecutive
// lines land on consecutive banks, spreading a streaming sweep evenly.
func TestBankedL2Interleave(t *testing.T) {
	cfg := BankedL2Config{Banks: 8, SetsPerBank: 4, Ways: 2, Latency: 1, DRAMLatency: 1}
	l2, err := NewBankedL2(cfg)
	if err != nil {
		t.Fatal(err)
	}
	h := l2.AttachHierarchy(DefaultConfig())
	for i := 0; i < cfg.Banks; i++ {
		l2.access(h, uint32(i)*LineSize, false, nil)
	}
	drainHier(t, h)
	_, misses := l2.BankLoads()
	for b, m := range misses {
		if m != 1 {
			t.Fatalf("bank %d got %d misses, want exactly 1 (round-robin interleave)", b, m)
		}
	}
}

// TestBankedL2DRAMThrottle checks the chip-wide bandwidth budget: two
// same-cycle misses on different banks (no port conflict) still serialize
// at the DRAM interface.
func TestBankedL2DRAMThrottle(t *testing.T) {
	cfg := BankedL2Config{
		Banks: 2, SetsPerBank: 4, Ways: 2,
		PortsPerBank: 1, Latency: 2, DRAMLatency: 5, DRAMCyclesPerLine: 10,
	}
	l2, err := NewBankedL2(cfg)
	if err != nil {
		t.Fatal(err)
	}
	h := l2.AttachHierarchy(DefaultConfig())
	var t1, t2 uint64
	l2.access(h, 0, false, func(Source) { t1 = h.Now() })        // bank 0
	l2.access(h, LineSize, false, func(Source) { t2 = h.Now() }) // bank 1
	drainHier(t, h)
	if l2.Stats.DRAMQueueCycles != 10 {
		t.Fatalf("DRAM queue cycles = %d, want 10", l2.Stats.DRAMQueueCycles)
	}
	if t2 != t1+10 {
		t.Fatalf("throttled completion at %d, want %d", t2, t1+10)
	}
}

// TestBankedL2WriteAllocate checks write-allocate-without-fetch: a write
// miss installs the line with zero DRAM fetch traffic (register lines
// are written whole, §5.2.3), and the line then hits on read.
func TestBankedL2WriteAllocate(t *testing.T) {
	cfg := BankedL2Config{Banks: 2, SetsPerBank: 4, Ways: 2, Latency: 1, DRAMLatency: 1}
	l2, err := NewBankedL2(cfg)
	if err != nil {
		t.Fatal(err)
	}
	h := l2.AttachHierarchy(DefaultConfig())
	l2.access(h, 0x2000, true, nil)
	if l2.Stats.DRAMAccesses != 0 {
		t.Fatalf("write miss fetched from DRAM (%d accesses)", l2.Stats.DRAMAccesses)
	}
	hit := false
	l2.access(h, 0x2000, false, func(s Source) { hit = s == SrcL2 })
	drainHier(t, h)
	if !hit || l2.Stats.Hits != 1 {
		t.Fatalf("read after write-allocate: hit=%v hits=%d", hit, l2.Stats.Hits)
	}
}

// TestBankedL2Validate rejects degenerate geometries.
func TestBankedL2Validate(t *testing.T) {
	bad := []BankedL2Config{
		{Banks: 0, SetsPerBank: 4, Ways: 2},
		{Banks: 2, SetsPerBank: 0, Ways: 2},
		{Banks: 2, SetsPerBank: 4, Ways: 0},
		{Banks: 2, SetsPerBank: 4, Ways: 2, PortsPerBank: -1},
		{Banks: 2, SetsPerBank: 4, Ways: 2, MSHRsPerBank: -1},
	}
	for i, cfg := range bad {
		if _, err := NewBankedL2(cfg); err == nil {
			t.Fatalf("config %d accepted: %+v", i, cfg)
		}
	}
	if err := DefaultBankedL2Config().Validate(); err != nil {
		t.Fatal(err)
	}
}
