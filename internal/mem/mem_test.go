package mem

import "testing"

// run advances the hierarchy until a condition holds or maxCycles elapse.
func run(t *testing.T, h *Hierarchy, max int, cond func() bool) {
	t.Helper()
	for i := 0; i < max; i++ {
		if cond() {
			return
		}
		h.Tick()
	}
	if !cond() {
		t.Fatalf("condition not reached in %d cycles", max)
	}
}

func TestL1HitLatency(t *testing.T) {
	h := New(DefaultConfig())
	addr := RegSpaceBase + 3*LineSize

	// First access: write (no fetch-on-write => allocates, "hit" path).
	doneW := false
	if !h.L1Access(addr, true, func(Source) { doneW = true }) {
		t.Fatal("L1 write refused")
	}
	run(t, h, 100, func() bool { return doneW })

	h.Tick() // free the port
	start := h.Now()
	doneR := false
	if !h.L1Access(addr, false, func(Source) { doneR = true }) {
		t.Fatal("L1 read refused")
	}
	run(t, h, 100, func() bool { return doneR })
	lat := int(h.Now() - start)
	if lat != DefaultConfig().L1HitLatency {
		t.Fatalf("hit latency = %d, want %d", lat, DefaultConfig().L1HitLatency)
	}
	if h.Stats.L1Hits != 2 || h.Stats.L1Misses != 0 {
		t.Fatalf("stats = %+v", h.Stats)
	}
}

func TestL1MissGoesToL2(t *testing.T) {
	h := New(DefaultConfig())
	addr := RegSpaceBase + 77*LineSize
	done := false
	if !h.L1Access(addr, false, func(Source) { done = true }) {
		t.Fatal("refused")
	}
	start := h.Now()
	run(t, h, 2000, func() bool { return done })
	lat := int(h.Now() - start)
	if lat <= DefaultConfig().L1HitLatency {
		t.Fatalf("miss latency %d not above hit latency", lat)
	}
	if h.Stats.L1Misses != 1 {
		t.Fatalf("stats = %+v", h.Stats)
	}
	// Second read hits.
	h.Tick()
	done2 := false
	if !h.L1Access(addr, false, func(Source) { done2 = true }) {
		t.Fatal("refused")
	}
	run(t, h, 100, func() bool { return done2 })
	if h.Stats.L1Hits != 1 {
		t.Fatalf("stats after refill = %+v", h.Stats)
	}
}

func TestL1PortOneRequestPerCycle(t *testing.T) {
	h := New(DefaultConfig())
	h.Tick()
	a := RegSpaceBase
	if !h.L1Access(a, true, func(Source) {}) {
		t.Fatal("first access refused")
	}
	if h.L1Access(a+LineSize, true, func(Source) {}) {
		t.Fatal("second access in same cycle accepted")
	}
	h.Tick()
	if !h.L1Access(a+LineSize, true, func(Source) {}) {
		t.Fatal("access refused after port freed")
	}
}

func TestMSHRLimitAndMerge(t *testing.T) {
	cfg := DefaultConfig()
	cfg.L1MSHRs = 2
	h := New(cfg)
	calls := 0
	// Two distinct misses fill the MSHRs.
	h.Tick()
	if !h.L1Access(RegSpaceBase, false, func(Source) { calls++ }) {
		t.Fatal("miss 1 refused")
	}
	h.Tick()
	if !h.L1Access(RegSpaceBase+LineSize, false, func(Source) { calls++ }) {
		t.Fatal("miss 2 refused")
	}
	// Third distinct miss must be refused.
	h.Tick()
	if h.L1Access(RegSpaceBase+2*LineSize, false, func(Source) { calls++ }) {
		t.Fatal("third miss accepted beyond MSHR limit")
	}
	// Secondary miss to an existing line merges.
	if !h.L1Access(RegSpaceBase, false, func(Source) { calls++ }) {
		t.Fatal("secondary miss refused")
	}
	run(t, h, 5000, func() bool { return calls == 3 })
	if h.Stats.L1Misses != 3 {
		t.Fatalf("stats = %+v", h.Stats)
	}
}

func TestDirtyEvictionWritesBack(t *testing.T) {
	cfg := DefaultConfig()
	cfg.L1Sets = 1
	cfg.L1Ways = 2
	h := New(cfg)
	write := func(addr uint32) {
		h.Tick()
		ok := false
		if !h.L1Access(addr, true, func(Source) { ok = true }) {
			t.Fatalf("write %#x refused", addr)
		}
		run(t, h, 200, func() bool { return ok })
	}
	write(RegSpaceBase)
	write(RegSpaceBase + LineSize)
	write(RegSpaceBase + 2*LineSize) // evicts a dirty line
	if h.Stats.L1Writebacks != 1 {
		t.Fatalf("writebacks = %d, want 1 (stats %+v)", h.Stats.L1Writebacks, h.Stats)
	}
}

func TestInvalidateDropsLine(t *testing.T) {
	h := New(DefaultConfig())
	addr := RegSpaceBase + 5*LineSize
	done := false
	h.Tick()
	h.L1Access(addr, true, func(Source) { done = true })
	run(t, h, 200, func() bool { return done })
	h.Tick()
	if !h.L1Invalidate(addr) {
		t.Fatal("invalidate refused")
	}
	// The next read must miss.
	h.Tick()
	miss := false
	h.L1Access(addr, false, func(Source) { miss = true })
	run(t, h, 5000, func() bool { return miss })
	if h.Stats.L1Misses != 1 {
		t.Fatalf("read after invalidate did not miss: %+v", h.Stats)
	}
	if h.Stats.L1Invalidations != 1 {
		t.Fatalf("invalidations = %d", h.Stats.L1Invalidations)
	}
	// Invalidation of a dirty line must not write back.
	if h.Stats.L1Writebacks != 0 {
		t.Fatalf("invalidate wrote back a dead register: %+v", h.Stats)
	}
}

func TestDataBypassesL1(t *testing.T) {
	h := New(DefaultConfig())
	done := false
	h.Tick()
	if !h.DataAccess(0x100, false, func(Source) { done = true }) {
		t.Fatal("data access refused")
	}
	run(t, h, 5000, func() bool { return done })
	if h.Stats.L1Reads != 0 || h.Stats.L1Hits != 0 {
		t.Fatalf("data access touched L1: %+v", h.Stats)
	}
	if h.Stats.DataReads != 1 || h.Stats.L2Misses != 1 {
		t.Fatalf("stats = %+v", h.Stats)
	}
	// Re-read: L2 hit, much faster.
	h.Tick()
	start := h.Now()
	done2 := false
	h.DataAccess(0x100, false, func(Source) { done2 = true })
	run(t, h, 1000, func() bool { return done2 })
	if int(h.Now()-start) > DefaultConfig().L2Latency+2 {
		t.Fatalf("L2 hit took %d cycles", h.Now()-start)
	}
	if h.Stats.L2Hits != 1 {
		t.Fatalf("stats = %+v", h.Stats)
	}
}

func TestDataQueueBackpressure(t *testing.T) {
	cfg := DefaultConfig()
	cfg.DataQueueDepth = 2
	cfg.DataCyclesPerReq = 1
	h := New(cfg)
	h.Tick()
	if !h.DataAccess(0x0, false, nil) {
		t.Fatal("refused 1")
	}
	h.Tick()
	if !h.DataAccess(0x1000, false, nil) {
		t.Fatal("refused 2")
	}
	h.Tick()
	if h.DataAccess(0x2000, false, nil) {
		t.Fatal("accepted beyond queue depth")
	}
	run(t, h, 5000, func() bool { return h.Drained() })
	if !h.DataAccess(0x2000, false, nil) {
		t.Fatal("refused after drain")
	}
}

func TestDRAMBandwidthThrottle(t *testing.T) {
	cfg := DefaultConfig()
	cfg.L2Sets, cfg.L2Ways = 1, 1 // force DRAM traffic
	h := New(cfg)
	n := 0
	h.Tick()
	for i := 0; i < 8; i++ {
		for !h.DataAccess(uint32(i)*4096, false, func(Source) { n++ }) {
			h.Tick()
		}
		h.Tick()
	}
	start := h.Now()
	run(t, h, 50000, func() bool { return n == 8 })
	elapsed := int(h.Now() - start)
	// 8 line transfers at 9 cycles/line must take at least ~63 cycles
	// beyond the base latency of the last request.
	if elapsed < (8-1)*cfg.DRAMCyclesPerLine {
		t.Fatalf("8 DRAM transfers finished in %d cycles — no throttling", elapsed)
	}
	if h.Stats.DRAMAccesses < 8 {
		t.Fatalf("stats = %+v", h.Stats)
	}
}

func TestDrainedIdle(t *testing.T) {
	h := New(DefaultConfig())
	if !h.Drained() {
		t.Fatal("fresh hierarchy not drained")
	}
	h.Tick()
	h.L1Access(RegSpaceBase, false, func(Source) {})
	if h.Drained() {
		t.Fatal("drained with a pending miss")
	}
	run(t, h, 5000, func() bool { return h.Drained() })
}

func TestL1InvalidateQuiet(t *testing.T) {
	h := New(DefaultConfig())
	addr := RegSpaceBase + 9*LineSize
	done := false
	h.Tick()
	h.L1Access(addr, true, func(Source) { done = true })
	run(t, h, 200, func() bool { return done })
	// Quiet invalidation: no port claim, so a same-cycle access works.
	h.Tick()
	h.L1InvalidateQuiet(addr)
	if !h.L1Access(RegSpaceBase, true, nil) {
		t.Fatal("quiet invalidate consumed the L1 port")
	}
	if h.Stats.L1Invalidations != 0 {
		t.Fatal("quiet invalidate counted as a port operation")
	}
	// The line is gone: the next read misses.
	h.Tick()
	miss := false
	h.L1Access(addr, false, func(Source) { miss = true })
	run(t, h, 5000, func() bool { return miss })
	if h.Stats.L1Misses != 1 {
		t.Fatalf("stats = %+v", h.Stats)
	}
}

func TestSourceString(t *testing.T) {
	if SrcL1.String() != "L1" || SrcL2.String() != "L2" || SrcDRAM.String() != "DRAM" {
		t.Fatal("Source.String wrong")
	}
}

func TestCallbackSourceReporting(t *testing.T) {
	h := New(DefaultConfig())
	addr := RegSpaceBase + 33*LineSize
	var first Source
	got := false
	h.Tick()
	h.L1Access(addr, false, func(s Source) { first = s; got = true })
	run(t, h, 5000, func() bool { return got })
	if first != SrcDRAM {
		t.Fatalf("cold read source = %v, want DRAM", first)
	}
	// Second read: L1 hit.
	h.Tick()
	got = false
	h.L1Access(addr, false, func(s Source) { first = s; got = true })
	run(t, h, 200, func() bool { return got })
	if first != SrcL1 {
		t.Fatalf("warm read source = %v, want L1", first)
	}
	// Evict from L1 only; next read comes from L2.
	h.Tick()
	h.l1.invalidate(align(addr))
	got = false
	h.L1Access(addr, false, func(s Source) { first = s; got = true })
	run(t, h, 2000, func() bool { return got })
	if first != SrcL2 {
		t.Fatalf("L2 read source = %v, want L2", first)
	}
}
