// Package regalloc assigns the kernel builder's SSA-like virtual registers
// to a compact set of architectural registers with reuse, standing in for
// ptxas in the paper's toolchain (§6.1: "register assignment was done by
// ptxas").
//
// Allocation is a linear scan over conservative live intervals derived from
// the divergence-aware liveness analysis in package cfg: soft definitions
// (writes under divergent control) do not end a live interval, and any
// value live into a loop header is kept live to the end of the loop body,
// so lanes revisiting the body via the back edge still see it. Two virtual
// registers share an architectural register only if their intervals are
// disjoint, which keeps functional behaviour bit-identical — the
// end-to-end tests run kernels before and after allocation and compare
// architectural state.
//
// Following the paper's note that "the compiler selects register numbers in
// a manner that reduces bank conflicts" (§5.2), when several architectural
// registers are free the allocator prefers one whose OSU bank (reg mod 8)
// differs from the banks of the defining instruction's other operands.
package regalloc

import (
	"fmt"
	"sort"

	"repro/internal/cfg"
	"repro/internal/isa"
)

// NumBanks is the operand-staging-unit bank count used for the
// conflict-avoidance heuristic.
const NumBanks = 8

// Result carries the rewritten kernel and the allocation map for
// inspection.
type Result struct {
	Kernel *isa.Kernel
	// Assign maps virtual register -> architectural register.
	Assign []isa.Reg
	// NumArchRegs is the number of architectural registers used.
	NumArchRegs int
	// Intervals are the conservative live intervals (global instruction
	// index space) the allocation was computed from, indexed by virtual
	// register; Start==-1 marks an unused virtual.
	Intervals []Interval
}

// Interval is a closed range of global instruction indexes.
type Interval struct{ Start, End int }

// Overlaps reports whether two intervals intersect.
func (iv Interval) Overlaps(o Interval) bool {
	return iv.Start <= o.End && o.Start <= iv.End
}

// Allocate rewrites k onto architectural registers and returns the new
// kernel (k is not modified).
func Allocate(k *isa.Kernel) (*Result, error) {
	g := cfg.New(k)
	lv := cfg.ComputeLiveness(g)
	ivs := intervals(g, lv)

	// Order virtuals by interval start for the linear scan.
	order := make([]int, 0, len(ivs))
	for v, iv := range ivs {
		if iv.Start >= 0 {
			order = append(order, v)
		}
	}
	sort.Slice(order, func(a, b int) bool {
		ia, ib := ivs[order[a]], ivs[order[b]]
		if ia.Start != ib.Start {
			return ia.Start < ib.Start
		}
		return order[a] < order[b]
	})

	assign := make([]isa.Reg, k.NumRegs)
	for i := range assign {
		assign[i] = isa.NoReg
	}
	type active struct {
		end   int
		color isa.Reg
	}
	var actives []active
	var free []isa.Reg
	next := isa.Reg(0)

	// defBanks[v] lists the banks of the other operands in v's defining
	// instruction, for the conflict-avoidance preference.
	defBanks := defOperandBanks(k, g)

	for _, v := range order {
		iv := ivs[v]
		// Expire finished intervals.
		kept := actives[:0]
		for _, a := range actives {
			if a.end < iv.Start {
				free = append(free, a.color)
			} else {
				kept = append(kept, a)
			}
		}
		actives = kept

		color := pickColor(&free, defBanks[v])
		if !color.Valid() {
			color = next
			next++
		}
		assign[v] = color
		actives = append(actives, active{end: iv.End, color: color})
	}

	// next may lag behind colors drawn from the free list; compute the
	// true architectural register count.
	max := isa.Reg(0)
	used := false
	for _, c := range assign {
		if c.Valid() {
			used = true
			if c > max {
				max = c
			}
		}
	}
	n := 0
	if used {
		n = int(max) + 1
	}

	out := rewrite(k, assign, n)
	if err := out.Validate(); err != nil {
		return nil, fmt.Errorf("regalloc produced invalid kernel: %w", err)
	}
	return &Result{Kernel: out, Assign: assign, NumArchRegs: n, Intervals: ivs}, nil
}

// intervals derives a conservative closed interval per virtual register in
// global-instruction-index space.
func intervals(g *cfg.Graph, lv *cfg.Liveness) []Interval {
	k := g.K
	ivs := make([]Interval, k.NumRegs)
	for i := range ivs {
		ivs[i] = Interval{Start: -1, End: -1}
	}
	touch := func(v isa.Reg, gi int) {
		iv := &ivs[v]
		if iv.Start == -1 || gi < iv.Start {
			iv.Start = gi
		}
		if gi > iv.End {
			iv.End = gi
		}
	}
	for b, blk := range k.Blocks {
		if !g.Reachable(b) {
			continue
		}
		for i := range blk.Insns {
			gi := g.GlobalIndex(isa.PC{Block: b, Index: i})
			in := &blk.Insns[i]
			for _, s := range in.SrcRegs() {
				touch(s, gi)
			}
			if in.Op.HasDst() {
				touch(in.Dst, gi)
			}
			// Anything live at this point spans it.
			lv.LiveIn(gi).ForEach(func(v int) { touch(isa.Reg(v), gi) })
		}
	}
	// Back-edge extension: a value live into a loop header stays
	// allocated until the end of the loop body.
	for _, e := range g.BackEdges {
		headStart := g.GlobalIndex(isa.PC{Block: e.To, Index: 0})
		tailBlk := k.Blocks[e.From]
		tailEnd := g.GlobalIndex(isa.PC{Block: e.From, Index: len(tailBlk.Insns) - 1})
		lv.BlockLiveIn(e.To).ForEach(func(v int) {
			touch(isa.Reg(v), headStart)
			touch(isa.Reg(v), tailEnd)
		})
	}
	return ivs
}

// defOperandBanks returns, per virtual register, the OSU banks of the other
// operands in its first defining instruction.
func defOperandBanks(k *isa.Kernel, g *cfg.Graph) [][]int {
	out := make([][]int, k.NumRegs)
	seen := make([]bool, k.NumRegs)
	for b, blk := range k.Blocks {
		if !g.Reachable(b) {
			continue
		}
		for i := range blk.Insns {
			in := &blk.Insns[i]
			if !in.Op.HasDst() || seen[in.Dst] {
				continue
			}
			seen[in.Dst] = true
			for _, s := range in.SrcRegs() {
				out[in.Dst] = append(out[in.Dst], int(s)%NumBanks)
			}
		}
	}
	return out
}

// pickColor selects a register from the free list, preferring one whose
// bank avoids the defining instruction's other operand banks. It removes
// and returns the chosen color, or NoReg if the free list is empty.
func pickColor(free *[]isa.Reg, avoid []int) isa.Reg {
	fl := *free
	if len(fl) == 0 {
		return isa.NoReg
	}
	avoidSet := map[int]bool{}
	for _, b := range avoid {
		avoidSet[b] = true
	}
	best := -1
	for i, c := range fl {
		if !avoidSet[int(c)%NumBanks] {
			best = i
			break
		}
	}
	if best == -1 {
		// No conflict-free color; recycle the least-recently-freed one
		// (FIFO), matching production compilers' tendency to spread
		// values across the register budget rather than hammer a few
		// hot names.
		best = 0
	}
	color := fl[best]
	*free = append(fl[:best], fl[best+1:]...)
	return color
}

// rewrite deep-copies k with every register operand remapped.
func rewrite(k *isa.Kernel, assign []isa.Reg, numRegs int) *isa.Kernel {
	blocks := make([]*isa.BasicBlock, len(k.Blocks))
	for i, blk := range k.Blocks {
		nb := &isa.BasicBlock{ID: blk.ID, Insns: make([]isa.Instruction, len(blk.Insns))}
		copy(nb.Insns, blk.Insns)
		for j := range nb.Insns {
			in := &nb.Insns[j]
			if in.Op.HasDst() && in.Dst.Valid() {
				in.Dst = assign[in.Dst]
			}
			for s := 0; s < in.Op.NumSrc(); s++ {
				if in.Src[s].Valid() {
					in.Src[s] = assign[in.Src[s]]
				}
			}
		}
		blocks[i] = nb
	}
	return &isa.Kernel{
		Name:        k.Name,
		Blocks:      blocks,
		NumRegs:     numRegs,
		WarpsPerCTA: k.WarpsPerCTA,
	}
}
