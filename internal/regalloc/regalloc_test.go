package regalloc

import (
	"math/rand"
	"testing"

	"repro/internal/isa"
)

func TestAllocateStraightlineReuses(t *testing.T) {
	b := isa.NewBuilder("chain", 1)
	// A long dependence chain: each value dies immediately, so the
	// allocator should reuse a handful of registers, not 20.
	v := b.Movi(1)
	for i := 0; i < 20; i++ {
		v = b.Addi(v, 1)
	}
	b.Stg(v, v, 0)
	b.Exit()
	k := b.MustKernel()
	res, err := Allocate(k)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumArchRegs >= k.NumRegs {
		t.Fatalf("no reuse: %d arch regs from %d virtuals", res.NumArchRegs, k.NumRegs)
	}
	if res.NumArchRegs > 4 {
		t.Fatalf("chain needs few registers, got %d", res.NumArchRegs)
	}
}

func TestAllocatePreservesStructure(t *testing.T) {
	b := isa.NewBuilder("s", 1)
	x := b.Movi(3)
	y := b.Movi(4)
	z := b.Iadd(x, y)
	b.Stg(z, z, 0)
	b.Exit()
	k := b.MustKernel()
	res, err := Allocate(k)
	if err != nil {
		t.Fatal(err)
	}
	out := res.Kernel
	if out.NumInsns() != k.NumInsns() || len(out.Blocks) != len(k.Blocks) {
		t.Fatal("allocation changed kernel shape")
	}
	// x and y overlap (both live at the iadd) so must differ.
	if res.Assign[x] == res.Assign[y] {
		t.Fatalf("overlapping virtuals share a register: %v", res.Assign)
	}
	// The original kernel must be untouched.
	if k.Blocks[0].Insns[2].Src[0] != x {
		t.Fatal("Allocate mutated its input")
	}
}

func TestOverlappingIntervalsDistinctColors(t *testing.T) {
	for _, k := range []*isa.Kernel{randomKernel(1), randomKernel(2), randomKernel(3), diamondLoop()} {
		res, err := Allocate(k)
		if err != nil {
			t.Fatalf("%s: %v", k.Name, err)
		}
		checkNoColorConflicts(t, res)
	}
}

func checkNoColorConflicts(t *testing.T, res *Result) {
	t.Helper()
	for v1, iv1 := range res.Intervals {
		if iv1.Start < 0 {
			continue
		}
		for v2 := v1 + 1; v2 < len(res.Intervals); v2++ {
			iv2 := res.Intervals[v2]
			if iv2.Start < 0 {
				continue
			}
			if iv1.Overlaps(iv2) && res.Assign[v1] == res.Assign[v2] {
				t.Fatalf("virtuals %d and %d overlap (%v vs %v) but share %v",
					v1, v2, iv1, iv2, res.Assign[v1])
			}
		}
	}
}

// randomKernel builds a structured random kernel: straightline chunks,
// if/else diamonds, and counted loops with varying value lifetimes.
func randomKernel(seed int64) *isa.Kernel {
	rng := rand.New(rand.NewSource(seed))
	b := isa.NewBuilder("rand", 2)
	live := []isa.Reg{b.Tid(), b.Movi(7)}
	pick := func() isa.Reg { return live[rng.Intn(len(live))] }
	for step := 0; step < 12; step++ {
		switch rng.Intn(4) {
		case 0: // straightline ALU
			for i := 0; i < 1+rng.Intn(4); i++ {
				r := b.Iadd(pick(), pick())
				live = append(live, r)
			}
		case 1: // diamond
			elseL, join := b.Label(), b.Label()
			c := b.OpImm(isa.OpIADDI, pick(), uint32(rng.Intn(3)))
			b.Bnz(c, elseL)
			t1 := b.Addi(pick(), 1)
			b.Bra(join)
			b.Bind(elseL)
			t2 := b.Addi(pick(), 2)
			b.Bind(join)
			r := b.Iadd(t1, t2) // soft-ish merge of both arms
			live = append(live, r)
		case 2: // counted loop
			i := b.Movi(uint32(2 + rng.Intn(3)))
			acc := b.Movi(0)
			top := b.Label()
			b.Bind(top)
			b.Op2To(isa.OpIADD, acc, acc, pick())
			b.OpImmTo(isa.OpIADDI, i, i, ^uint32(0))
			b.Bnz(i, top)
			live = append(live, acc)
		case 3: // memory
			addr := b.Muli(pick(), 4)
			v := b.Ldg(addr, 0)
			b.Stg(addr, v, 64)
			live = append(live, v)
		}
		if len(live) > 8 {
			live = live[len(live)-8:]
		}
	}
	b.Stg(pick(), pick(), 0)
	b.Exit()
	return b.MustKernel()
}

func diamondLoop() *isa.Kernel {
	b := isa.NewBuilder("dloop", 2)
	i := b.Movi(5)
	acc := b.Movi(0)
	tidv := b.Tid()
	top := b.Label()
	elseL := b.Label()
	join := b.Label()
	b.Bind(top)
	b.Bnz(tidv, elseL)
	b.Op2To(isa.OpIADD, acc, acc, i) // soft def under divergence
	b.Bra(join)
	b.Bind(elseL)
	b.Op2To(isa.OpISUB, acc, acc, i) // the other arm's soft def
	b.Bind(join)
	b.OpImmTo(isa.OpIADDI, i, i, ^uint32(0))
	b.Bnz(i, top)
	b.Stg(acc, acc, 0)
	b.Exit()
	return b.MustKernel()
}

func TestLoopCarriedNotClobbered(t *testing.T) {
	// A value defined before a loop and read at the top of each
	// iteration must not share a register with a value defined at the
	// bottom of the loop body.
	b := isa.NewBuilder("carry", 1)
	base := b.Movi(100) // live across the whole loop
	i := b.Movi(4)
	acc := b.Movi(0)
	top := b.Label()
	b.Bind(top)
	b.Op2To(isa.OpIADD, acc, acc, base) // reads base at top
	tmp := b.Addi(acc, 9)               // defined at bottom of body
	b.Op2To(isa.OpMAX, acc, acc, tmp)
	b.OpImmTo(isa.OpIADDI, i, i, ^uint32(0))
	b.Bnz(i, top)
	b.Stg(acc, acc, 0)
	b.Exit()
	k := b.MustKernel()
	res, err := Allocate(k)
	if err != nil {
		t.Fatal(err)
	}
	if res.Assign[base] == res.Assign[tmp] {
		t.Fatal("loop-carried value shares a register with a body temporary")
	}
	checkNoColorConflicts(t, res)
}

func TestBankPreference(t *testing.T) {
	// With plenty of free registers, operands of one instruction should
	// land in distinct banks when possible. Build many independent pairs
	// and check the adds' source banks differ more often than not.
	b := isa.NewBuilder("banks", 1)
	sink := b.Movi(0)
	for i := 0; i < 10; i++ {
		x := b.Movi(uint32(i))
		y := b.Movi(uint32(i + 1))
		z := b.Iadd(x, y)
		b.Op2To(isa.OpMAX, sink, sink, z)
	}
	b.Stg(sink, sink, 0)
	b.Exit()
	k := b.MustKernel()
	res, err := Allocate(k)
	if err != nil {
		t.Fatal(err)
	}
	checkNoColorConflicts(t, res)
	conflicts := 0
	total := 0
	for _, blk := range res.Kernel.Blocks {
		for j := range blk.Insns {
			in := &blk.Insns[j]
			if in.Op != isa.OpIADD {
				continue
			}
			total++
			if int(in.Src[0])%NumBanks == int(in.Src[1])%NumBanks {
				conflicts++
			}
		}
	}
	if total == 0 {
		t.Fatal("no adds found")
	}
	if conflicts > total/2 {
		t.Fatalf("bank conflicts on %d/%d adds", conflicts, total)
	}
}
