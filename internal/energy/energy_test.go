package energy_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/energy"
	"repro/internal/exec"
	"repro/internal/kernels"
	"repro/internal/rf"
	"repro/internal/sim"
)

func simCfg() sim.Config {
	c := sim.DefaultConfig()
	c.Warps = 16
	c.MaxCycles = 8_000_000
	return c
}

func runBaseline(t *testing.T, name string) energy.Activity {
	t.Helper()
	k := kernels.MustLoad(name)
	p := rf.NewBaseline()
	smv, err := sim.New(simCfg(), k, p, exec.NewMemory(nil))
	if err != nil {
		t.Fatal(err)
	}
	st, err := smv.Run()
	if err != nil {
		t.Fatal(err)
	}
	return energy.FromRun(st, p.Stats(), smv.Mem.Stats)
}

// Calibration: across a representative subset, the baseline register file
// must account for roughly the paper's no-RF bound (16.7%) of GPU energy.
func TestCalibrationRFShare(t *testing.T) {
	p := energy.DefaultParams()
	var rfE, total float64
	for _, name := range []string{"bfs", "hotspot", "lud", "kmeans", "srad_v1", "backprop", "myocyte", "streamcluster"} {
		a := runBaseline(t, name)
		b := energy.Compute(p, energy.Scheme{Kind: energy.KindBaseline, Entries: 2048}, a)
		rfE += b.RFTotal
		total += b.Total
	}
	share := rfE / total
	if share < 0.12 || share > 0.22 {
		t.Fatalf("baseline RF share = %.3f, want ~0.167 (±0.05)", share)
	}
	t.Logf("baseline RF share of GPU energy: %.3f (paper bound: 0.167)", share)
}

func TestSchemeOrderingOnFixedActivity(t *testing.T) {
	p := energy.DefaultParams()
	a := energy.Activity{
		Cycles:       100_000,
		DynInsns:     150_000,
		StructReads:  250_000,
		StructWrites: 130_000,
		TagLookups:   20_000,
		LRFAccesses:  100_000,
		ORFAccesses:  200_000,
		MRFAccesses:  80_000,
		L1Accesses:   2_000,
		L2Accesses:   10_000,
		DRAMAccesses: 3_000,
	}
	base := energy.Compute(p, energy.Scheme{Kind: energy.KindBaseline, Entries: 2048}, a)
	rfv := energy.Compute(p, energy.Scheme{Kind: energy.KindRFV, Entries: 1024}, a)
	regless := energy.Compute(p, energy.Scheme{Kind: energy.KindRegLess, Entries: 512, Compressor: true}, a)
	norf := energy.Compute(p, energy.Scheme{Kind: energy.KindNoRF}, a)

	if !(norf.RFTotal == 0 && norf.Total < regless.Total) {
		t.Fatal("NoRF bound not minimal")
	}
	if !(regless.RFTotal < rfv.RFTotal && rfv.RFTotal < base.RFTotal) {
		t.Fatalf("RF energy ordering wrong: regless %.0f, rfv %.0f, base %.0f",
			regless.RFTotal, rfv.RFTotal, base.RFTotal)
	}
	// RegLess RF energy must be roughly a quarter of baseline (the
	// paper's 75.3% saving).
	ratio := regless.RFTotal / base.RFTotal
	if ratio > 0.45 || ratio < 0.10 {
		t.Fatalf("RegLess/baseline RF energy = %.2f, want ~0.25", ratio)
	}
	// Rest-of-GPU components identical across schemes for identical
	// activity.
	if base.InsnEnergy != rfv.InsnEnergy || base.MemEnergy != regless.MemEnergy {
		t.Fatal("non-RF energy differs on identical activity")
	}
}

func TestAreaModel(t *testing.T) {
	base := energy.Area(energy.Scheme{Kind: energy.KindBaseline, Entries: 2048}, 2048)
	if got := base.Total(); got < 0.99 || got > 1.01 {
		t.Fatalf("baseline area = %v, want 1.0", got)
	}
	rl := energy.Area(energy.Scheme{Kind: energy.KindRegLess, Entries: 512, Compressor: true}, 2048)
	if rl.Total() < 0.2 || rl.Total() > 0.45 {
		t.Fatalf("RegLess-512 area = %v, want ~0.25-0.4 of baseline", rl.Total())
	}
	if rl.Compressor <= 0 {
		t.Fatal("compressor area missing")
	}
	// Monotone in capacity.
	prev := 0.0
	for _, n := range []int{128, 192, 256, 384, 512, 1024, 2048} {
		a := energy.Area(energy.Scheme{Kind: energy.KindRegLess, Entries: n, Compressor: true}, 2048).Total()
		if a <= prev {
			t.Fatalf("area not monotone at %d entries", n)
		}
		prev = a
	}
}

func TestPowerModel(t *testing.T) {
	p := energy.DefaultParams()
	prev := 0.0
	for _, n := range []int{128, 256, 512, 1024, 2048} {
		pw := energy.Power(p, energy.Scheme{Kind: energy.KindRegLess, Entries: n, Compressor: true}, 3.0)
		if pw <= prev {
			t.Fatalf("power not monotone at %d entries", n)
		}
		prev = pw
	}
	// A full-capacity RegLess costs slightly more than the baseline RF
	// (tag overhead), matching §6.2.
	full := energy.Power(p, energy.Scheme{Kind: energy.KindRegLess, Entries: 2048, Compressor: true}, 3.0)
	if full <= 1.0 || full > 1.3 {
		t.Fatalf("full-size RegLess power = %.2f, want slightly above 1.0", full)
	}
}

// End-to-end: RegLess total GPU energy on a real run lands well below the
// baseline on the same kernel, and above the NoRF bound.
func TestGPUEnergySavingsEndToEnd(t *testing.T) {
	params := energy.DefaultParams()
	name := "hotspot"
	aBase := runBaseline(t, name)
	bBase := energy.Compute(params, energy.Scheme{Kind: energy.KindBaseline, Entries: 2048}, aBase)
	bNoRF := energy.Compute(params, energy.Scheme{Kind: energy.KindNoRF}, aBase)

	k := kernels.MustLoad(name)
	p, err := core.New(core.DefaultConfig(), k)
	if err != nil {
		t.Fatal(err)
	}
	smv, err := sim.New(simCfg(), k, p, exec.NewMemory(nil))
	if err != nil {
		t.Fatal(err)
	}
	st, err := smv.Run()
	if err != nil {
		t.Fatal(err)
	}
	aRL := energy.FromRun(st, p.Stats(), smv.Mem.Stats)
	bRL := energy.Compute(params, energy.Scheme{Kind: energy.KindRegLess, Entries: 512, Compressor: true}, aRL)

	if !(bNoRF.Total < bRL.Total && bRL.Total < bBase.Total) {
		t.Fatalf("ordering violated: noRF %.0f, regless %.0f, base %.0f",
			bNoRF.Total, bRL.Total, bBase.Total)
	}
	saving := 1 - bRL.Total/bBase.Total
	bound := 1 - bNoRF.Total/bBase.Total
	t.Logf("%s: GPU energy saving %.1f%% (upper bound %.1f%%)", name, 100*saving, 100*bound)
	if saving < 0.03 {
		t.Fatalf("GPU saving %.3f too small", saving)
	}
}
