// Package energy is the analytical power/area model standing in for the
// paper's placed-and-routed Verilog + GPUWattch flow (§6.1-6.2). Absolute
// pJ values are unobtainable without the EDA tools, so the model is built
// for *relative* results — every figure in the paper normalizes to the
// baseline register file or baseline GPU.
//
// # Calibration
//
// Free constants (Params) are set so that, with the measured activity of
// our simulator on the Rodinia-analogue suite:
//
//   - the baseline register file accounts for ~16.7% of total GPU energy —
//     the paper's "No RF" upper bound (Figure 15);
//   - dynamic access energy for an N-entry SRAM operand structure scales
//     linearly with capacity (bitline/wordline length) plus a per-access
//     tag/arbitration adder for tagged structures, which reproduces the
//     paper's observation that RegLess structures cost "slightly more
//     energy and power than the baseline register file scaled to their
//     capacity" (§6.2);
//   - static power scales with capacity.
//
// A calibration test asserts the 16.7% property against live simulation.
package energy

import "math"

// Params holds every free constant, in arbitrary consistent energy units
// (one unit ≈ 1 pJ at the calibration point).
type Params struct {
	// RFAccessFull is the dynamic energy of one 128-byte access to the
	// full 2048-entry register file.
	RFAccessFull float64
	// RFEntriesFull is the baseline capacity the access energy is
	// quoted at.
	RFEntriesFull int
	// TagAccess is the adder per access to a tagged structure (OSU).
	TagAccess float64
	// TagLookup is a standalone tag-array probe (preload checks).
	TagLookup float64
	// RFStaticFull is the full RF's static energy per cycle; scales
	// linearly with capacity.
	RFStaticFull float64

	// LRFAccess / ORFAccess are RFH's small-structure access energies;
	// RFH's MRF uses RFAccessFull. SmallStatic is the added static
	// power of RFH's buffers or RFV's rename table.
	LRFAccess   float64
	ORFAccess   float64
	SmallStatic float64

	// CompressorMatch is one pattern match; CompressorBitCheck one bit
	// vector probe; CompressorStatic per-cycle; CompressorCache one
	// internal line access.
	CompressorMatch    float64
	CompressorBitCheck float64
	CompressorStatic   float64
	CompressorCache    float64

	// InsnPipeline is all non-operand per-instruction energy (fetch,
	// decode, issue, execute, commit); metadata instructions cost
	// MetaInsnFrac of it (no execution, no operands).
	InsnPipeline float64
	MetaInsnFrac float64

	// Memory access energies.
	L1Access   float64
	L2Access   float64
	DRAMAccess float64

	// GPUStatic is the per-cycle energy of everything outside the
	// register scheme and the counted events (leakage, clocks,
	// schedulers, NoC, ...).
	GPUStatic float64
}

// DefaultParams returns the calibrated constants.
func DefaultParams() Params {
	return Params{
		RFAccessFull:       50,
		RFEntriesFull:      2048,
		TagAccess:          2.0,
		TagLookup:          1.2,
		RFStaticFull:       30,
		LRFAccess:          2.0,
		ORFAccess:          6.0,
		SmallStatic:        3.0,
		CompressorMatch:    3.0,
		CompressorBitCheck: 0.4,
		CompressorStatic:   1.0,
		CompressorCache:    4.0,
		InsnPipeline:       150,
		MetaInsnFrac:       0.25,
		L1Access:           80,
		L2Access:           250,
		DRAMAccess:         800,
		GPUStatic:          380,
	}
}

// RFAccess returns the per-access dynamic energy of an operand structure
// with the given entry count (linear capacity scaling).
func (p Params) RFAccess(entries int) float64 {
	return p.RFAccessFull * float64(entries) / float64(p.RFEntriesFull)
}

// RFStatic returns the per-cycle static energy for a structure with the
// given entry count.
func (p Params) RFStatic(entries int) float64 {
	return p.RFStaticFull * float64(entries) / float64(p.RFEntriesFull)
}

// Kind selects the register scheme being modelled.
type Kind int

const (
	// KindBaseline is the full register file.
	KindBaseline Kind = iota
	// KindRFV is register file virtualization (half-size RF + renaming).
	KindRFV
	// KindRFH is the LRF/ORF/MRF hierarchy (full MRF retained).
	KindRFH
	// KindRegLess is the operand staging unit.
	KindRegLess
	// KindNoRF is the upper bound: a register file that costs nothing.
	KindNoRF
)

// Scheme describes the hardware configuration under evaluation.
type Scheme struct {
	Kind Kind
	// Entries is the primary operand structure's capacity in registers
	// (2048 baseline, 1024 RFV, OSU size for RegLess).
	Entries int
	// Compressor marks a RegLess configuration with the compressor on.
	Compressor bool
}

// Activity is the measured event mix of one simulation run.
type Activity struct {
	Cycles   uint64
	DynInsns uint64
	// MetaInsns is metadata instruction slots (RegLess).
	MetaInsns uint64

	// StructReads/Writes are accesses to the primary operand structure.
	StructReads  uint64
	StructWrites uint64
	// TagLookups are standalone OSU tag probes (preloads).
	TagLookups uint64

	// RFH level split (reads+writes classified by serving level).
	LRFAccesses uint64
	ORFAccesses uint64
	MRFAccesses uint64

	// Compressor activity.
	CompMatches   uint64
	CompBitChecks uint64
	CompCacheOps  uint64

	// Memory system activity (register traffic and data traffic).
	L1Accesses   uint64
	L2Accesses   uint64
	DRAMAccesses uint64
}

// Breakdown is the energy decomposition of one run.
type Breakdown struct {
	// RFDynamic + RFStatic = RFTotal: the register scheme's energy
	// (Figure 14's quantity).
	RFDynamic float64
	RFStatic  float64
	RFTotal   float64

	// InsnEnergy, MemEnergy and GPUStaticEnergy compose the rest.
	InsnEnergy      float64
	MemEnergy       float64
	GPUStaticEnergy float64

	// Total GPU energy (Figure 15's quantity).
	Total float64
}

// Compute evaluates the model.
func Compute(p Params, s Scheme, a Activity) Breakdown {
	var b Breakdown
	cyc := float64(a.Cycles)

	switch s.Kind {
	case KindBaseline:
		b.RFDynamic = float64(a.StructReads+a.StructWrites) * p.RFAccess(s.Entries)
		b.RFStatic = cyc * p.RFStatic(s.Entries)
	case KindRFV:
		b.RFDynamic = float64(a.StructReads+a.StructWrites) * p.RFAccess(s.Entries)
		b.RFStatic = cyc * (p.RFStatic(s.Entries) + p.SmallStatic)
	case KindRFH:
		b.RFDynamic = float64(a.LRFAccesses)*p.LRFAccess +
			float64(a.ORFAccesses)*p.ORFAccess +
			float64(a.MRFAccesses)*p.RFAccess(p.RFEntriesFull)
		// The full-size MRF remains resident behind the buffers.
		b.RFStatic = cyc * (p.RFStatic(p.RFEntriesFull) + p.SmallStatic)
	case KindRegLess:
		access := p.RFAccess(s.Entries) + p.TagAccess
		b.RFDynamic = float64(a.StructReads+a.StructWrites)*access +
			float64(a.TagLookups)*p.TagLookup
		b.RFStatic = cyc * p.RFStatic(s.Entries)
		if s.Compressor {
			b.RFDynamic += float64(a.CompMatches)*p.CompressorMatch +
				float64(a.CompBitChecks)*p.CompressorBitCheck +
				float64(a.CompCacheOps)*p.CompressorCache
			b.RFStatic += cyc * p.CompressorStatic
		}
	case KindNoRF:
		// Free register file: the bound in Figure 15.
	}
	b.RFTotal = b.RFDynamic + b.RFStatic

	b.InsnEnergy = float64(a.DynInsns)*p.InsnPipeline +
		float64(a.MetaInsns)*p.InsnPipeline*p.MetaInsnFrac
	b.MemEnergy = float64(a.L1Accesses)*p.L1Access +
		float64(a.L2Accesses)*p.L2Access +
		float64(a.DRAMAccesses)*p.DRAMAccess
	b.GPUStaticEnergy = cyc * p.GPUStatic
	b.Total = b.RFTotal + b.InsnEnergy + b.MemEnergy + b.GPUStaticEnergy
	return b
}

// AreaBreakdown decomposes a configuration's area (Figure 11), normalized
// externally against the baseline.
type AreaBreakdown struct {
	Storage    float64
	Logic      float64
	Compressor float64
}

// Total sums the components.
func (a AreaBreakdown) Total() float64 { return a.Storage + a.Logic + a.Compressor }

// Area parameters: the baseline 2048-entry RF is 85% storage, 15% logic
// (operand collectors, arbitration). RegLess logic (tags, per-bank decode,
// capacity managers) shrinks sub-linearly with capacity; the compressor is
// a constant adder.
const (
	areaStorageShare   = 0.85
	areaLogicShare     = 0.15
	reglessLogicScale  = 0.17
	reglessLogicExp    = 0.7
	compressorAreaFrac = 0.02
)

// Area returns a configuration's area relative to the baseline RF (= 1.0).
func Area(s Scheme, fullEntries int) AreaBreakdown {
	frac := float64(s.Entries) / float64(fullEntries)
	switch s.Kind {
	case KindBaseline, KindRFV:
		return AreaBreakdown{
			Storage: areaStorageShare * frac,
			Logic:   areaLogicShare * frac,
		}
	case KindRegLess:
		a := AreaBreakdown{
			Storage: areaStorageShare * frac,
			Logic:   reglessLogicScale * math.Pow(frac, reglessLogicExp),
		}
		if s.Compressor {
			a.Compressor = compressorAreaFrac
		}
		return a
	default:
		return AreaBreakdown{}
	}
}

// Power returns a configuration's combined static and average dynamic
// power relative to the baseline RF under the same nominal activity
// (Figure 12). The activity assumption is the suite-average access rate
// (accesses per cycle) r.
func Power(p Params, s Scheme, accessesPerCycle float64) float64 {
	basePower := p.RFStatic(p.RFEntriesFull) + accessesPerCycle*p.RFAccess(p.RFEntriesFull)
	var dyn, stat float64
	switch s.Kind {
	case KindRegLess:
		dyn = accessesPerCycle * (p.RFAccess(s.Entries) + p.TagAccess)
		stat = p.RFStatic(s.Entries)
		if s.Compressor {
			stat += p.CompressorStatic
		}
	default:
		dyn = accessesPerCycle * p.RFAccess(s.Entries)
		stat = p.RFStatic(s.Entries)
	}
	return (dyn + stat) / basePower
}
