package energy

import (
	"repro/internal/mem"
	"repro/internal/sim"
)

// FromRun assembles an Activity from one simulation's statistics.
func FromRun(st *sim.Stats, ps *sim.ProviderStats, ms mem.Stats) Activity {
	return Activity{
		Cycles:        st.Cycles,
		DynInsns:      st.DynInsns,
		MetaInsns:     ps.MetaInsns,
		StructReads:   ps.StructReads,
		StructWrites:  ps.StructWrites,
		TagLookups:    ps.TagLookups,
		LRFAccesses:   ps.LRFAccesses,
		ORFAccesses:   ps.ORFAccesses,
		MRFAccesses:   ps.MRFAccesses,
		CompMatches:   ps.CompressorHits + ps.CompressorMisses,
		CompBitChecks: ps.CompressorBitChecks,
		CompCacheOps:  ps.CompressorCacheOps,
		L1Accesses:    ms.L1Reads + ms.L1Writes + ms.L1Invalidations,
		L2Accesses:    ms.L2Hits + ms.L2Misses,
		DRAMAccesses:  ms.DRAMAccesses,
	}
}
