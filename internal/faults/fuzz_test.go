package faults

import "testing"

// FuzzParse enforces the parser's contract: any input either parses into
// a plan whose String() round-trips, or returns an error — never a
// panic. `go test -fuzz=FuzzParse ./internal/faults` explores beyond the
// seed corpus.
func FuzzParse(f *testing.F) {
	for _, seed := range []string{
		"mem-drop@5000",
		"mem-delay@1000:delay=2000; seed=7",
		"osu-tag@2500:shard=1",
		"osu-state",
		"compress-pattern@100",
		"meta-bank:region=2",
		"meta-erase:region=3; seed=42",
		"mem-drop@10; osu-tag@20; seed=1",
		"",
		";",
		"seed=",
		"seed=18446744073709551615",
		"mem-drop@",
		"mem-drop@@5",
		"mem-delay:delay=",
		"osu-tag:shard=1:region=2",
		"osu-tag::",
		"unknown-class",
		"mem-drop@99999999999999999999999",
		"mem-delay:delay=-1",
		"  mem-drop@5  ;  seed=3  ",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, spec string) {
		p, err := Parse(spec)
		if err != nil {
			return
		}
		s := p.String()
		p2, err := Parse(s)
		if err != nil {
			t.Fatalf("Parse(%q) ok but Parse(String() = %q) failed: %v", spec, s, err)
		}
		if s2 := p2.String(); s2 != s {
			t.Fatalf("String() not a fixed point: %q -> %q (from %q)", s, s2, spec)
		}
	})
}
