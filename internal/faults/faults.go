// Package faults is the deterministic fault-injection harness: a small
// spec language naming *what* to corrupt and *when*, and a seed-driven
// Injector that layers (mem, osu, compress, region metadata) consult at
// their natural corruption points. Injection exists to prove the
// robustness contract in DESIGN.md §11: every fault class is either
// tolerated (functional output unchanged) or detected (a sanitizer or
// watchdog diagnostic naming the faulted component) — never a hang,
// never a raw panic.
//
// Spec grammar (clauses separated by ';'):
//
//	spec   := clause (';' clause)*
//	clause := class ['@' cycle] (':' key '=' int)*  |  'seed' '=' int
//	class  := mem-delay | mem-drop | osu-tag | osu-state |
//	          compress-pattern | meta-bank | meta-erase |
//	          disk-full | slow-disk | store-corrupt |
//	          client-abort | clock-skew
//
// Examples:
//
//	mem-drop@5000
//	mem-delay@1000:delay=2000; seed=7
//	osu-tag@2500:shard=1
//	meta-erase:region=3
//	disk-full@2; slow-disk@4:delay=100
//	clock-skew:skew=7200
//
// Runtime classes fire at their '@' cycle (default 0: as soon as the
// target exists); meta-* classes corrupt compiled region metadata before
// the simulation starts, so their cycle is ignored. Unset targets
// (shard, region) are picked deterministically from the seed, so one
// spec string replays the same corruption everywhere.
//
// The serve classes (disk-full, slow-disk, store-corrupt, client-abort,
// clock-skew) are consulted by the sweep service and its disk store
// rather than by the simulator; for them the '@' value counts store (or
// HTTP request) operations instead of simulation cycles. Plan.Split
// separates the two populations so a mixed campaign arms each layer with
// only its own clauses.
package faults

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Class names a fault family; the value is the spec-language spelling.
type Class string

const (
	// MemDelay delays one L1/data response callback by Delay cycles.
	MemDelay Class = "mem-delay"
	// MemDrop drops one L1/data response callback outright.
	MemDrop Class = "mem-drop"
	// OSUTag corrupts a resident OSU line's register tag.
	OSUTag Class = "osu-tag"
	// OSUState flips a resident OSU line between the active and
	// evictable populations.
	OSUState Class = "osu-state"
	// CompressPattern flips one entry of the compressor's pattern
	// bit vector.
	CompressPattern Class = "compress-pattern"
	// MetaBank zeroes a region's busiest bank-usage annotation, so the
	// capacity manager under-reserves for it (compile-time).
	MetaBank Class = "meta-bank"
	// MetaErase deletes one of a region's erase annotations, leaking a
	// staged register past the region's end (compile-time).
	MetaErase Class = "meta-erase"

	// DiskFull fails one store write with a synthetic no-space error
	// (serve level).
	DiskFull Class = "disk-full"
	// SlowDisk delays one store operation by Delay milliseconds (serve
	// level).
	SlowDisk Class = "slow-disk"
	// StoreCorrupt flips a byte of a freshly persisted store entry, so a
	// later read sees torn bytes (serve level).
	StoreCorrupt Class = "store-corrupt"
	// ClientAbort aborts one HTTP response mid-flight, as a client
	// disconnect or proxy reset would (serve level).
	ClientAbort Class = "client-abort"
	// ClockSkew skews one access-time stamp the store writes by Skew
	// seconds into the future, as a wall-clock jump would (serve level).
	ClockSkew Class = "clock-skew"
)

// Classes lists every simulator-level fault class in spec order (the sim
// fault-matrix tests iterate this).
func Classes() []Class {
	return []Class{MemDelay, MemDrop, OSUTag, OSUState, CompressPattern, MetaBank, MetaErase}
}

// ServeClasses lists every serve-level fault class in spec order (the
// service fault-matrix tests iterate this).
func ServeClasses() []Class {
	return []Class{DiskFull, SlowDisk, StoreCorrupt, ClientAbort, ClockSkew}
}

// ServeLevel reports whether the class is consulted by the sweep service
// and its store rather than by the simulator.
func (c Class) ServeLevel() bool {
	for _, k := range ServeClasses() {
		if c == k {
			return true
		}
	}
	return false
}

func validClass(c Class) bool {
	for _, k := range Classes() {
		if c == k {
			return true
		}
	}
	return c.ServeLevel()
}

// CompileTime reports whether the class corrupts compiled metadata
// (applied before cycle 0) rather than live machine state.
func (c Class) CompileTime() bool { return c == MetaBank || c == MetaErase }

// Fault is one parsed clause.
type Fault struct {
	Class Class
	// At is the cycle the fault becomes due (runtime classes); serve
	// classes count store or request operations instead of cycles.
	At uint64
	// Delay is mem-delay's extra response latency in cycles, or
	// slow-disk's store-operation delay in milliseconds.
	Delay int
	// Shard targets one provider shard (-1: seed-picked).
	Shard int
	// Region targets one compiled region (-1: seed-picked).
	Region int
	// Skew is clock-skew's access-time offset in seconds.
	Skew int
}

// Plan is a parsed spec: the seed plus every fault clause.
type Plan struct {
	Seed   uint64
	Faults []Fault
}

// DefaultDelay is mem-delay's extra latency when the spec omits delay=.
const DefaultDelay = 1000

// DefaultSlowDiskMillis is slow-disk's store-operation delay when the
// spec omits delay=.
const DefaultSlowDiskMillis = 50

// DefaultSkewSeconds is clock-skew's access-time offset when the spec
// omits skew=.
const DefaultSkewSeconds = 3600

// defaultDelayFor returns the class's delay= default.
func defaultDelayFor(c Class) int {
	if c == SlowDisk {
		return DefaultSlowDiskMillis
	}
	return DefaultDelay
}

// ArmedClasses returns the distinct fault classes the plan arms, in spec
// order (simulator classes first, then serve classes). Health endpoints
// report them so a degraded service is attributable to its injection
// campaign rather than mistaken for an organic failure.
func (p *Plan) ArmedClasses() []string {
	if p == nil {
		return nil
	}
	armed := map[Class]bool{}
	for _, f := range p.Faults {
		armed[f.Class] = true
	}
	out := make([]string, 0, len(armed))
	for _, c := range append(Classes(), ServeClasses()...) {
		if armed[c] {
			out = append(out, string(c))
		}
	}
	return out
}

// Split partitions the plan into its simulator-level and serve-level
// clauses (both sharing the seed), so a mixed chaos campaign arms the
// simulator with only the classes it consults and the service/store
// layer with only its own. Either side is nil when it has no clauses.
func (p *Plan) Split() (simPlan, servePlan *Plan) {
	if p == nil {
		return nil, nil
	}
	for _, f := range p.Faults {
		if f.Class.ServeLevel() {
			if servePlan == nil {
				servePlan = &Plan{Seed: p.Seed}
			}
			servePlan.Faults = append(servePlan.Faults, f)
		} else {
			if simPlan == nil {
				simPlan = &Plan{Seed: p.Seed}
			}
			simPlan.Faults = append(simPlan.Faults, f)
		}
	}
	return simPlan, servePlan
}

// Parse builds a Plan from a spec string. Malformed specs return errors,
// never panic (a fuzz target enforces this).
func Parse(spec string) (*Plan, error) {
	p := &Plan{}
	for _, raw := range strings.Split(spec, ";") {
		clause := strings.TrimSpace(raw)
		if clause == "" {
			return nil, fmt.Errorf("faults: empty clause in %q", spec)
		}
		if v, ok := strings.CutPrefix(clause, "seed="); ok {
			n, err := strconv.ParseUint(strings.TrimSpace(v), 10, 64)
			if err != nil {
				return nil, fmt.Errorf("faults: bad seed %q: %v", v, err)
			}
			p.Seed = n
			continue
		}
		head := clause
		params := ""
		if i := strings.IndexByte(clause, ':'); i >= 0 {
			head, params = clause[:i], clause[i+1:]
		}
		f := Fault{Delay: DefaultDelay, Shard: -1, Region: -1}
		name := head
		if i := strings.IndexByte(head, '@'); i >= 0 {
			name = head[:i]
			at, err := strconv.ParseUint(head[i+1:], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("faults: bad cycle in %q: %v", clause, err)
			}
			f.At = at
		}
		f.Class = Class(strings.TrimSpace(name))
		if !validClass(f.Class) {
			return nil, fmt.Errorf("faults: unknown class %q (valid: %s)", name, classList())
		}
		f.Delay = defaultDelayFor(f.Class)
		if f.Class == ClockSkew {
			f.Skew = DefaultSkewSeconds
		}
		if params != "" {
			for _, kv := range strings.Split(params, ":") {
				key, val, ok := strings.Cut(kv, "=")
				if !ok {
					return nil, fmt.Errorf("faults: parameter %q is not key=value", kv)
				}
				n, err := strconv.Atoi(strings.TrimSpace(val))
				if err != nil || n < 0 {
					return nil, fmt.Errorf("faults: bad value in %q", kv)
				}
				switch strings.TrimSpace(key) {
				case "delay":
					if f.Class != MemDelay && f.Class != SlowDisk {
						return nil, fmt.Errorf("faults: delay= applies to mem-delay or slow-disk, not %s", f.Class)
					}
					if n == 0 {
						return nil, fmt.Errorf("faults: delay must be positive")
					}
					f.Delay = n
				case "shard":
					f.Shard = n
				case "region":
					f.Region = n
				case "skew":
					if f.Class != ClockSkew {
						return nil, fmt.Errorf("faults: skew= applies to clock-skew, not %s", f.Class)
					}
					if n == 0 {
						return nil, fmt.Errorf("faults: skew must be positive")
					}
					f.Skew = n
				default:
					return nil, fmt.Errorf("faults: unknown parameter %q", key)
				}
			}
		}
		p.Faults = append(p.Faults, f)
	}
	if len(p.Faults) == 0 {
		return nil, fmt.Errorf("faults: spec %q names no faults", spec)
	}
	return p, nil
}

func classList() string {
	all := append(Classes(), ServeClasses()...)
	names := make([]string, 0, len(all))
	for _, c := range all {
		names = append(names, string(c))
	}
	return strings.Join(names, ", ")
}

// String renders the plan back into spec syntax; Parse(p.String())
// yields an equivalent plan (the fuzz target checks the round trip).
func (p *Plan) String() string {
	var b strings.Builder
	for i, f := range p.Faults {
		if i > 0 {
			b.WriteString("; ")
		}
		fmt.Fprintf(&b, "%s@%d", f.Class, f.At)
		if (f.Class == MemDelay || f.Class == SlowDisk) && f.Delay != defaultDelayFor(f.Class) {
			fmt.Fprintf(&b, ":delay=%d", f.Delay)
		}
		if f.Shard >= 0 {
			fmt.Fprintf(&b, ":shard=%d", f.Shard)
		}
		if f.Region >= 0 {
			fmt.Fprintf(&b, ":region=%d", f.Region)
		}
		if f.Class == ClockSkew && f.Skew != DefaultSkewSeconds {
			fmt.Fprintf(&b, ":skew=%d", f.Skew)
		}
	}
	if p.Seed != 0 {
		fmt.Fprintf(&b, "; seed=%d", p.Seed)
	}
	return b.String()
}

// armed is one not-yet-applied fault.
type armed struct {
	Fault
	fired bool
}

// Injector is one simulation's live fault state: per-class one-shot arms
// plus a deterministic picker. A nil *Injector is a valid no-op (the
// disabled-path idiom shared with metrics and events); every consult
// costs one branch when no faults are armed.
//
// The simulator-level consults (Due, Consume, Pick, MemResponse,
// CompileTime) are lock-free: each simulation owns its injector on one
// goroutine. The serve-level consults (StoreWriteFails and friends) are
// called concurrently from HTTP handlers and pool workers, so they — and
// the cold inspection methods they share state with — serialize on mu.
type Injector struct {
	faults []armed
	rng    uint64
	log    []string

	// mu guards faults and log for the concurrent serve-level consults.
	mu sync.Mutex
}

// NewInjector arms every fault in the plan for one simulation. Each
// simulation needs its own Injector (one-shot state); building two from
// the same Plan replays identical corruption.
func NewInjector(p *Plan) *Injector {
	in := &Injector{rng: p.Seed*0x9E3779B97F4A7C15 + 0xD1B54A32D192ED03}
	for _, f := range p.Faults {
		in.faults = append(in.faults, armed{Fault: f})
	}
	return in
}

// Pick returns a deterministic value in [0, n) from the seed stream
// (splitmix64). Callers use it to choose corruption targets.
func (in *Injector) Pick(n int) int {
	if in == nil || n <= 0 {
		return 0
	}
	in.rng += 0x9E3779B97F4A7C15
	z := in.rng
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	z ^= z >> 31
	return int(z % uint64(n))
}

// Due returns an armed fault of class c whose cycle has arrived. The
// fault stays armed until Consume: corruption points that find no target
// (e.g. an empty OSU) retry next cycle.
func (in *Injector) Due(c Class, now uint64) (Fault, bool) {
	if in == nil {
		return Fault{}, false
	}
	for i := range in.faults {
		f := &in.faults[i]
		if !f.fired && f.Class == c && now >= f.At {
			return f.Fault, true
		}
	}
	return Fault{}, false
}

// Consume disarms the first armed fault of class c, logging what was
// done (shown in diagnostics and asserted by tests).
func (in *Injector) Consume(c Class, detail string) {
	if in == nil {
		return
	}
	for i := range in.faults {
		f := &in.faults[i]
		if !f.fired && f.Class == c {
			f.fired = true
			in.log = append(in.log, fmt.Sprintf("%s: %s", c, detail))
			return
		}
	}
}

// CompileTime returns (and consumes) an armed compile-time fault of
// class c; providers call it once while corrupting compiled metadata.
func (in *Injector) CompileTime(c Class) (Fault, bool) {
	if in == nil || !c.CompileTime() {
		return Fault{}, false
	}
	for i := range in.faults {
		f := &in.faults[i]
		if !f.fired && f.Class == c {
			f.fired = true
			return f.Fault, true
		}
	}
	return Fault{}, false
}

// Note records a compile-time corruption description (CompileTime
// consumes the arm before the corruption site knows its target).
func (in *Injector) Note(c Class, detail string) {
	if in == nil {
		return
	}
	in.log = append(in.log, fmt.Sprintf("%s: %s", c, detail))
}

// MemResponse consults the mem-delay/mem-drop arms for one accepted
// response callback. At most one fault applies per call; drop wins over
// delay when both are due.
func (in *Injector) MemResponse(now uint64) (drop bool, delay int) {
	if in == nil {
		return false, 0
	}
	if _, ok := in.Due(MemDrop, now); ok {
		in.Consume(MemDrop, fmt.Sprintf("dropped response at cycle %d", now))
		return true, 0
	}
	if f, ok := in.Due(MemDelay, now); ok {
		in.Consume(MemDelay, fmt.Sprintf("delayed response by %d cycles at cycle %d", f.Delay, now))
		return false, f.Delay
	}
	return false, 0
}

// ---------------------------------------------------------------------
// Serve-level consults. The store and the sweep service call these at
// their natural corruption points, passing a monotonically increasing
// operation index as "now" (the serve analogue of the simulation cycle).
// All are one-shot arms sharing the Due/Consume discipline, and all are
// nil-safe no-ops.

// takeServe atomically finds and fires the first due arm of class c,
// logging detail(f). It returns the fired fault.
func (in *Injector) takeServe(c Class, now uint64, detail func(Fault) string) (Fault, bool) {
	if in == nil {
		return Fault{}, false
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	for i := range in.faults {
		f := &in.faults[i]
		if !f.fired && f.Class == c && now >= f.At {
			f.fired = true
			in.log = append(in.log, fmt.Sprintf("%s: %s", c, detail(f.Fault)))
			return f.Fault, true
		}
	}
	return Fault{}, false
}

// StoreWriteFails consults the disk-full arm for one store write.
func (in *Injector) StoreWriteFails(op uint64) bool {
	_, ok := in.takeServe(DiskFull, op, func(Fault) string {
		return fmt.Sprintf("failed store write at op %d", op)
	})
	return ok
}

// StoreDelayMillis consults the slow-disk arm for one store operation,
// returning the extra latency to impose in milliseconds (0: none).
func (in *Injector) StoreDelayMillis(op uint64) int {
	f, ok := in.takeServe(SlowDisk, op, func(f Fault) string {
		return fmt.Sprintf("delayed store op %d by %dms", op, f.Delay)
	})
	if !ok {
		return 0
	}
	return f.Delay
}

// StoreCorrupts consults the store-corrupt arm after one completed store
// write; true means the caller should corrupt the persisted bytes.
func (in *Injector) StoreCorrupts(op uint64) bool {
	_, ok := in.takeServe(StoreCorrupt, op, func(Fault) string {
		return fmt.Sprintf("corrupted stored entry at op %d", op)
	})
	return ok
}

// ClockSkewSeconds consults the clock-skew arm for one access-time
// stamp, returning the forward skew to apply in seconds (0: none).
func (in *Injector) ClockSkewSeconds(op uint64) int {
	f, ok := in.takeServe(ClockSkew, op, func(f Fault) string {
		return fmt.Sprintf("skewed atime stamp by %ds at op %d", f.Skew, op)
	})
	if !ok {
		return 0
	}
	return f.Skew
}

// AbortsClient consults the client-abort arm for one HTTP request; true
// means the server should abort the response mid-flight.
func (in *Injector) AbortsClient(req uint64) bool {
	_, ok := in.takeServe(ClientAbort, req, func(Fault) string {
		return fmt.Sprintf("aborted client response at request %d", req)
	})
	return ok
}

// Active reports whether any fault is still armed.
func (in *Injector) Active() bool {
	if in == nil {
		return false
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	for i := range in.faults {
		if !in.faults[i].fired {
			return true
		}
	}
	return false
}

// Applied returns human-readable descriptions of every fault that fired,
// in application order.
func (in *Injector) Applied() []string {
	if in == nil {
		return nil
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	out := make([]string, len(in.log))
	copy(out, in.log)
	return out
}

// Pending returns the classes still armed, sorted (diagnostics).
func (in *Injector) Pending() []Class {
	if in == nil {
		return nil
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	var out []Class
	for i := range in.faults {
		if !in.faults[i].fired {
			out = append(out, in.faults[i].Class)
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out
}
