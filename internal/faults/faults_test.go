package faults

import (
	"strings"
	"testing"
)

func TestParseValidSpecs(t *testing.T) {
	cases := []struct {
		spec string
		want Plan
	}{
		{"mem-drop@5000", Plan{Faults: []Fault{
			{Class: MemDrop, At: 5000, Delay: DefaultDelay, Shard: -1, Region: -1}}}},
		{"mem-delay@1000:delay=2000; seed=7", Plan{Seed: 7, Faults: []Fault{
			{Class: MemDelay, At: 1000, Delay: 2000, Shard: -1, Region: -1}}}},
		{"osu-tag@2500:shard=1", Plan{Faults: []Fault{
			{Class: OSUTag, At: 2500, Delay: DefaultDelay, Shard: 1, Region: -1}}}},
		{"meta-erase:region=3", Plan{Faults: []Fault{
			{Class: MetaErase, Delay: DefaultDelay, Shard: -1, Region: 3}}}},
		{"compress-pattern", Plan{Faults: []Fault{
			{Class: CompressPattern, Delay: DefaultDelay, Shard: -1, Region: -1}}}},
		{"mem-drop@10; osu-state@20:shard=0; seed=42", Plan{Seed: 42, Faults: []Fault{
			{Class: MemDrop, At: 10, Delay: DefaultDelay, Shard: -1, Region: -1},
			{Class: OSUState, At: 20, Delay: DefaultDelay, Shard: 0, Region: -1}}}},
	}
	for _, c := range cases {
		p, err := Parse(c.spec)
		if err != nil {
			t.Errorf("Parse(%q) = %v", c.spec, err)
			continue
		}
		if p.Seed != c.want.Seed || len(p.Faults) != len(c.want.Faults) {
			t.Errorf("Parse(%q) = %+v, want %+v", c.spec, p, c.want)
			continue
		}
		for i, f := range p.Faults {
			if f != c.want.Faults[i] {
				t.Errorf("Parse(%q) fault %d = %+v, want %+v", c.spec, i, f, c.want.Faults[i])
			}
		}
	}
}

func TestParseRejectsMalformed(t *testing.T) {
	cases := []struct{ spec, wantErr string }{
		{"", "empty clause"},
		{"; mem-drop", "empty clause"},
		{"warp-eater", "unknown class"},
		{"mem-drop@xyz", "bad cycle"},
		{"seed=banana", "bad seed"},
		{"seed=1", "names no faults"},
		{"mem-drop:delay=5", "delay= applies to mem-delay"},
		{"mem-delay:delay=0", "delay must be positive"},
		{"mem-delay:delay=-3", "bad value"},
		{"osu-tag:shard", "not key=value"},
		{"osu-tag:color=5", "unknown parameter"},
		{"osu-tag:shard=red", "bad value"},
	}
	for _, c := range cases {
		p, err := Parse(c.spec)
		if err == nil {
			t.Errorf("Parse(%q) = %+v, want error containing %q", c.spec, p, c.wantErr)
			continue
		}
		if !strings.Contains(err.Error(), c.wantErr) {
			t.Errorf("Parse(%q) = %v, want error containing %q", c.spec, err, c.wantErr)
		}
	}
}

func TestStringRoundTrip(t *testing.T) {
	specs := []string{
		"mem-drop@5000",
		"mem-delay@1000:delay=2000; seed=7",
		"osu-tag@2500:shard=1; meta-bank:region=2",
		"compress-pattern@100; mem-drop@200; seed=99",
	}
	for _, spec := range specs {
		p1, err := Parse(spec)
		if err != nil {
			t.Fatalf("Parse(%q) = %v", spec, err)
		}
		p2, err := Parse(p1.String())
		if err != nil {
			t.Fatalf("Parse(%q.String() = %q) = %v", spec, p1.String(), err)
		}
		if p1.String() != p2.String() {
			t.Errorf("round trip diverged: %q -> %q", p1.String(), p2.String())
		}
	}
}

func TestInjectorDeterminism(t *testing.T) {
	p, err := Parse("osu-tag@100; seed=13")
	if err != nil {
		t.Fatal(err)
	}
	a, b := NewInjector(p), NewInjector(p)
	for i := 0; i < 32; i++ {
		if x, y := a.Pick(1000), b.Pick(1000); x != y {
			t.Fatalf("draw %d diverged: %d vs %d", i, x, y)
		}
	}
	// A different seed must give a different stream (overwhelmingly).
	p2, _ := Parse("osu-tag@100; seed=14")
	c, d := NewInjector(p), NewInjector(p2)
	same := 0
	for i := 0; i < 32; i++ {
		if c.Pick(1<<30) == d.Pick(1<<30) {
			same++
		}
	}
	if same == 32 {
		t.Error("seed 13 and 14 produced identical pick streams")
	}
}

func TestDueConsumeLifecycle(t *testing.T) {
	p, err := Parse("osu-tag@100:shard=2")
	if err != nil {
		t.Fatal(err)
	}
	in := NewInjector(p)
	if !in.Active() {
		t.Fatal("fresh injector reports inactive")
	}
	if _, ok := in.Due(OSUTag, 99); ok {
		t.Error("fault due before its cycle")
	}
	f, ok := in.Due(OSUTag, 100)
	if !ok || f.Shard != 2 {
		t.Fatalf("Due at cycle 100 = %+v, %v", f, ok)
	}
	// Stays armed until consumed: a corruption point with no target retries.
	if _, ok := in.Due(OSUTag, 150); !ok {
		t.Error("unconsumed fault disarmed itself")
	}
	in.Consume(OSUTag, "corrupted line 3")
	if _, ok := in.Due(OSUTag, 200); ok {
		t.Error("consumed fault still due")
	}
	if in.Active() {
		t.Error("injector active after last fault consumed")
	}
	applied := in.Applied()
	if len(applied) != 1 || !strings.Contains(applied[0], "corrupted line 3") {
		t.Errorf("Applied() = %v", applied)
	}
	if len(in.Pending()) != 0 {
		t.Errorf("Pending() = %v, want empty", in.Pending())
	}
}

func TestMemResponseDropWinsOverDelay(t *testing.T) {
	p, err := Parse("mem-drop@10; mem-delay@10:delay=500")
	if err != nil {
		t.Fatal(err)
	}
	in := NewInjector(p)
	if drop, delay := in.MemResponse(5); drop || delay != 0 {
		t.Errorf("faults applied before due: drop=%v delay=%d", drop, delay)
	}
	if drop, _ := in.MemResponse(10); !drop {
		t.Error("drop did not win at its cycle")
	}
	if drop, delay := in.MemResponse(10); drop || delay != 500 {
		t.Errorf("second consult = drop=%v delay=%d, want delay=500", drop, delay)
	}
	if drop, delay := in.MemResponse(11); drop || delay != 0 {
		t.Errorf("one-shot faults re-fired: drop=%v delay=%d", drop, delay)
	}
}

func TestCompileTimeConsumes(t *testing.T) {
	p, err := Parse("meta-bank:region=1; osu-tag@5")
	if err != nil {
		t.Fatal(err)
	}
	in := NewInjector(p)
	if _, ok := in.CompileTime(OSUTag); ok {
		t.Error("runtime class returned from CompileTime")
	}
	f, ok := in.CompileTime(MetaBank)
	if !ok || f.Region != 1 {
		t.Fatalf("CompileTime(MetaBank) = %+v, %v", f, ok)
	}
	if _, ok := in.CompileTime(MetaBank); ok {
		t.Error("compile-time fault fired twice")
	}
	in.Note(MetaBank, "zeroed bank 3")
	if got := in.Applied(); len(got) != 1 || !strings.Contains(got[0], "zeroed bank 3") {
		t.Errorf("Applied() = %v", got)
	}
}

func TestNilInjectorIsNoOp(t *testing.T) {
	var in *Injector
	if in.Pick(10) != 0 {
		t.Error("nil Pick != 0")
	}
	if _, ok := in.Due(MemDrop, 0); ok {
		t.Error("nil Due reported a fault")
	}
	in.Consume(MemDrop, "x")
	in.Note(MemDrop, "x")
	if _, ok := in.CompileTime(MetaBank); ok {
		t.Error("nil CompileTime reported a fault")
	}
	if drop, delay := in.MemResponse(0); drop || delay != 0 {
		t.Error("nil MemResponse injected")
	}
	if in.Active() {
		t.Error("nil injector active")
	}
	if in.Applied() != nil || in.Pending() != nil {
		t.Error("nil injector has history")
	}
}

func TestClassesAndCompileTime(t *testing.T) {
	cs := Classes()
	if len(cs) != 7 {
		t.Fatalf("Classes() = %v", cs)
	}
	for _, c := range cs {
		wantCT := c == MetaBank || c == MetaErase
		if c.CompileTime() != wantCT {
			t.Errorf("%s.CompileTime() = %v", c, c.CompileTime())
		}
	}
}

func TestServeClasses(t *testing.T) {
	ss := ServeClasses()
	if len(ss) != 5 {
		t.Fatalf("ServeClasses() = %v", ss)
	}
	for _, c := range ss {
		if !c.ServeLevel() {
			t.Errorf("%s.ServeLevel() = false", c)
		}
		if c.CompileTime() {
			t.Errorf("%s.CompileTime() = true", c)
		}
	}
	for _, c := range Classes() {
		if c.ServeLevel() {
			t.Errorf("sim class %s reports ServeLevel", c)
		}
	}
}

func TestParseServeSpecs(t *testing.T) {
	cases := []struct {
		spec string
		want Fault
	}{
		{"disk-full@2", Fault{Class: DiskFull, At: 2, Delay: DefaultDelay, Shard: -1, Region: -1}},
		{"slow-disk@4:delay=100", Fault{Class: SlowDisk, At: 4, Delay: 100, Shard: -1, Region: -1}},
		{"slow-disk", Fault{Class: SlowDisk, Delay: DefaultSlowDiskMillis, Shard: -1, Region: -1}},
		{"store-corrupt@1", Fault{Class: StoreCorrupt, At: 1, Delay: DefaultDelay, Shard: -1, Region: -1}},
		{"client-abort@3", Fault{Class: ClientAbort, At: 3, Delay: DefaultDelay, Shard: -1, Region: -1}},
		{"clock-skew", Fault{Class: ClockSkew, Delay: DefaultDelay, Shard: -1, Region: -1, Skew: DefaultSkewSeconds}},
		{"clock-skew:skew=7200", Fault{Class: ClockSkew, Delay: DefaultDelay, Shard: -1, Region: -1, Skew: 7200}},
	}
	for _, c := range cases {
		p, err := Parse(c.spec)
		if err != nil {
			t.Errorf("Parse(%q) = %v", c.spec, err)
			continue
		}
		if len(p.Faults) != 1 || p.Faults[0] != c.want {
			t.Errorf("Parse(%q) = %+v, want %+v", c.spec, p.Faults, c.want)
		}
	}
	for _, bad := range []struct{ spec, wantErr string }{
		{"mem-drop:skew=10", "skew= applies to clock-skew"},
		{"clock-skew:skew=0", "skew must be positive"},
		{"disk-full:delay=5", "delay= applies to mem-delay or slow-disk"},
	} {
		if p, err := Parse(bad.spec); err == nil {
			t.Errorf("Parse(%q) = %+v, want error", bad.spec, p)
		} else if !strings.Contains(err.Error(), bad.wantErr) {
			t.Errorf("Parse(%q) = %v, want error containing %q", bad.spec, err, bad.wantErr)
		}
	}
}

func TestServeStringRoundTrip(t *testing.T) {
	specs := []string{
		"disk-full@2; slow-disk@4:delay=100",
		"clock-skew:skew=7200; store-corrupt@1; seed=5",
		"client-abort@3; mem-drop@10; seed=9",
		"slow-disk",
	}
	for _, spec := range specs {
		p1, err := Parse(spec)
		if err != nil {
			t.Fatalf("Parse(%q) = %v", spec, err)
		}
		p2, err := Parse(p1.String())
		if err != nil {
			t.Fatalf("Parse(%q.String() = %q) = %v", spec, p1.String(), err)
		}
		if p1.String() != p2.String() {
			t.Errorf("round trip diverged: %q -> %q", p1.String(), p2.String())
		}
	}
}

func TestPlanSplit(t *testing.T) {
	p, err := Parse("mem-drop@10; disk-full@2; slow-disk@4:delay=100; osu-tag@20:shard=1; seed=11")
	if err != nil {
		t.Fatal(err)
	}
	sim, serve := p.Split()
	if sim == nil || serve == nil {
		t.Fatalf("Split() = %v, %v", sim, serve)
	}
	if sim.Seed != 11 || serve.Seed != 11 {
		t.Errorf("Split seeds = %d, %d, want 11", sim.Seed, serve.Seed)
	}
	if got := sim.String(); got != "mem-drop@10; osu-tag@20:shard=1; seed=11" {
		t.Errorf("sim side = %q", got)
	}
	if got := serve.String(); got != "disk-full@2; slow-disk@4:delay=100; seed=11" {
		t.Errorf("serve side = %q", got)
	}

	simOnly, _ := Parse("mem-drop@10")
	s, sv := simOnly.Split()
	if s == nil || sv != nil {
		t.Errorf("sim-only Split() = %v, %v, want plan, nil", s, sv)
	}
	serveOnly, _ := Parse("disk-full@1")
	s, sv = serveOnly.Split()
	if s != nil || sv == nil {
		t.Errorf("serve-only Split() = %v, %v, want nil, plan", s, sv)
	}
	var nilPlan *Plan
	s, sv = nilPlan.Split()
	if s != nil || sv != nil {
		t.Errorf("nil Split() = %v, %v", s, sv)
	}
}

func TestServeConsultsOneShot(t *testing.T) {
	p, err := Parse("disk-full@2; slow-disk@3:delay=40; store-corrupt@1; clock-skew:skew=60; client-abort@2")
	if err != nil {
		t.Fatal(err)
	}
	in := NewInjector(p)
	if in.StoreWriteFails(1) {
		t.Error("disk-full fired before op 2")
	}
	if !in.StoreWriteFails(2) {
		t.Error("disk-full did not fire at op 2")
	}
	if in.StoreWriteFails(3) {
		t.Error("disk-full fired twice")
	}
	if d := in.StoreDelayMillis(2); d != 0 {
		t.Errorf("slow-disk fired early: %d", d)
	}
	if d := in.StoreDelayMillis(3); d != 40 {
		t.Errorf("StoreDelayMillis(3) = %d, want 40", d)
	}
	if d := in.StoreDelayMillis(4); d != 0 {
		t.Errorf("slow-disk fired twice: %d", d)
	}
	if !in.StoreCorrupts(1) {
		t.Error("store-corrupt did not fire at op 1")
	}
	if in.StoreCorrupts(1) {
		t.Error("store-corrupt fired twice")
	}
	if s := in.ClockSkewSeconds(0); s != 60 {
		t.Errorf("ClockSkewSeconds(0) = %d, want 60", s)
	}
	if s := in.ClockSkewSeconds(1); s != 0 {
		t.Errorf("clock-skew fired twice: %d", s)
	}
	if in.AbortsClient(1) {
		t.Error("client-abort fired before req 2")
	}
	if !in.AbortsClient(2) {
		t.Error("client-abort did not fire at req 2")
	}
	if in.Active() {
		t.Error("injector active after all serve arms consumed")
	}
	if got := in.Applied(); len(got) != 5 {
		t.Errorf("Applied() = %v, want 5 entries", got)
	}

	var nilIn *Injector
	if nilIn.StoreWriteFails(0) || nilIn.StoreCorrupts(0) || nilIn.AbortsClient(0) {
		t.Error("nil injector fired a serve fault")
	}
	if nilIn.StoreDelayMillis(0) != 0 || nilIn.ClockSkewSeconds(0) != 0 {
		t.Error("nil injector returned a serve value")
	}
}
