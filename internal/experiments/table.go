package experiments

import (
	"fmt"
	"strings"
)

// Table is one experiment's printable result.
type Table struct {
	ID     string // "fig16", "table2", ...
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Note appends a footnote.
func (t *Table) Note(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// Render formats the table as aligned text.
func (t *Table) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", strings.ToUpper(t.ID), t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Markdown renders the table as GitHub-flavored markdown (EXPERIMENTS.md).
func (t *Table) Markdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "### %s — %s\n\n", strings.ToUpper(t.ID), t.Title)
	b.WriteString("| " + strings.Join(t.Header, " | ") + " |\n")
	b.WriteString("|" + strings.Repeat("---|", len(t.Header)) + "\n")
	for _, row := range t.Rows {
		b.WriteString("| " + strings.Join(row, " | ") + " |\n")
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "\n*%s*\n", n)
	}
	b.WriteByte('\n')
	return b.String()
}

func f2(x float64) string { return fmt.Sprintf("%.2f", x) }
func f3(x float64) string { return fmt.Sprintf("%.3f", x) }
func f1(x float64) string { return fmt.Sprintf("%.1f", x) }
func pct(x float64) string {
	return fmt.Sprintf("%.1f%%", 100*x)
}

// fmtSscan parses a leading float (test helper shared with the _test file).
func fmtSscan(s string, f *float64) (int, error) {
	return fmt.Sscanf(s, "%f", f)
}
