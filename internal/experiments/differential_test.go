package experiments

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/isa"
	"repro/internal/kernels"
	"repro/internal/rf"
	"repro/internal/sim"
)

// differentialSchemes are the providers whose timing must never change
// architectural results: every one runs each kernel to completion and
// produces bit-identical global stores versus the functional reference.
var differentialSchemes = []Scheme{SchemeBaseline, SchemeRFV, SchemeRFH, SchemeRegLess}

// diffCase is one kernel under differential test.
type diffCase struct {
	name string
	k    *isa.Kernel
}

// differentialCases returns the full Rodinia suite plus parameterized
// microkernels chosen to stress each provider differently: deep register
// pressure (RFV victimization), divergence (RFH's last-result forwarding
// across reconvergence), serial pointer chases (RegLess drain/preload
// churn), and maximal occupancy (capacity-manager contention).
func differentialCases(t *testing.T) []diffCase {
	var cases []diffCase
	for _, name := range kernels.Names() {
		k, err := kernels.Load(name)
		if err != nil {
			t.Fatalf("load %s: %v", name, err)
		}
		cases = append(cases, diffCase{name: name, k: k})
	}
	micro := []struct {
		name  string
		build func() (*isa.Kernel, error)
	}{
		{"micro_regpressure_8", func() (*isa.Kernel, error) { return kernels.MicroRegPressure(8) }},
		{"micro_regpressure_24", func() (*isa.Kernel, error) { return kernels.MicroRegPressure(24) }},
		{"micro_divergence_2", func() (*isa.Kernel, error) { return kernels.MicroDivergence(2) }},
		{"micro_divergence_4", func() (*isa.Kernel, error) { return kernels.MicroDivergence(4) }},
		{"micro_pointerchase_16", func() (*isa.Kernel, error) { return kernels.MicroPointerChase(16) }},
		{"micro_pointerchase_64", func() (*isa.Kernel, error) { return kernels.MicroPointerChase(64) }},
		{"micro_occupancy", kernels.MicroOccupancy},
	}
	for _, m := range micro {
		k, err := m.build()
		if err != nil {
			t.Fatalf("build %s: %v", m.name, err)
		}
		cases = append(cases, diffCase{name: m.name, k: k})
	}
	return cases
}

// buildProviderFor mirrors BuildSM's provider table for an in-memory
// kernel (microkernels have no benchmark name to Load by).
func buildProviderFor(scheme Scheme, k *isa.Kernel, simCfg *sim.Config) (sim.Provider, error) {
	switch scheme {
	case SchemeBaseline:
		return rf.NewBaseline(), nil
	case SchemeRFV:
		simCfg.Sched = sim.SchedTwoLevel
		return rf.NewRFV(RFVEntries), nil
	case SchemeRFH:
		simCfg.Sched = sim.SchedTwoLevel
		return rf.NewRFH(RFHORFEntries), nil
	case SchemeRegLess:
		return core.New(core.ConfigForCapacity(DefaultCapacity), k)
	}
	return nil, fmt.Errorf("unknown scheme %q", scheme)
}

// TestDifferentialStoreEquivalence runs every kernel under every provider
// and demands bit-identical global stores versus the functional reference
// — timing models may reorder and stall, but never change architectural
// results.
func TestDifferentialStoreEquivalence(t *testing.T) {
	const warps = 16
	for _, c := range differentialCases(t) {
		for _, scheme := range differentialSchemes {
			c, scheme := c, scheme
			t.Run(fmt.Sprintf("%s/%s", c.name, scheme), func(t *testing.T) {
				t.Parallel()
				simCfg := sim.DefaultConfig()
				simCfg.Warps = warps
				simCfg.MaxCycles = 20_000_000
				p, err := buildProviderFor(scheme, c.k, &simCfg)
				if err != nil {
					t.Fatal(err)
				}
				mm := exec.NewMemory(nil)
				smv, err := sim.New(simCfg, c.k, p, mm)
				if err != nil {
					t.Fatal(err)
				}
				if _, err := smv.Run(); err != nil {
					t.Fatal(err)
				}
				ref, err := exec.Run(c.k, warps, exec.NewMemory(nil))
				if err != nil {
					t.Fatal(err)
				}
				got := ref.Stores
				sims := mm.GlobalStores()
				if len(sims) != len(got) {
					t.Fatalf("%d simulated stores vs %d reference", len(sims), len(got))
				}
				for a, v := range got {
					if sims[a] != v {
						t.Fatalf("store mismatch at %#x: simulated %d, reference %d", a, sims[a], v)
					}
				}
			})
		}
	}
}
