// Package experiments regenerates every table and figure of the paper's
// evaluation (§6): one runner per figure, all built on a memoizing
// simulation cache so figures sharing runs (e.g. the baseline) pay once.
//
// The per-experiment index in DESIGN.md maps each paper figure/table to
// its function here and to the benchmark in bench_test.go that drives it.
package experiments

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"repro/internal/core"
	"repro/internal/energy"
	"repro/internal/exec"
	"repro/internal/kernels"
	"repro/internal/mem"
	"repro/internal/rf"
	"repro/internal/sim"
)

// Scheme names the register configurations under test.
type Scheme string

const (
	// SchemeBaseline is the full 2048-entry register file with GTO.
	SchemeBaseline Scheme = "baseline"
	// SchemeRFV is register file virtualization (half-size RF,
	// two-level scheduler, as in the paper's comparison).
	SchemeRFV Scheme = "rfv"
	// SchemeRFH is the register file hierarchy (8-entry per-warp
	// buffer, two-level scheduler).
	SchemeRFH Scheme = "rfh"
	// SchemeRegLess is RegLess at the capacity given per run.
	SchemeRegLess Scheme = "regless"
	// SchemeRegLessNC is RegLess without the compressor (Figure 16).
	SchemeRegLessNC Scheme = "regless-nocomp"
	// SchemeBaseline2L is the baseline RF under the two-level warp
	// scheduler (Figure 2's comparison).
	SchemeBaseline2L Scheme = "baseline-2level"
)

// BaselineEntries is the full register file capacity per SM in registers.
const BaselineEntries = 2048

// RFVEntries is RFV's half-size physical file.
const RFVEntries = 1024

// RFHORFEntries is RFH's per-warp buffer capacity (Figure 3's
// "8-entry scratchpad").
const RFHORFEntries = 8

// Options scales the experiments; Quick() shrinks them for tests.
type Options struct {
	Warps      int
	Benchmarks []string
	MaxCycles  uint64
}

// Default returns the full-scale options (Table 1's 64 warps per SM).
func Default() Options {
	return Options{Warps: 64, Benchmarks: kernels.Names(), MaxCycles: 60_000_000}
}

// Quick returns reduced-scale options for unit tests.
func Quick() Options {
	return Options{Warps: 16, Benchmarks: []string{"bfs", "hotspot", "lud", "nw", "streamcluster"}, MaxCycles: 20_000_000}
}

// Run is one completed simulation.
type Run struct {
	Bench    string
	Scheme   Scheme
	Capacity int // RegLess OSU registers per SM (0 otherwise)

	Stats *sim.Stats
	Prov  sim.ProviderStats
	Mem   mem.Stats

	// Provider is retained for scheme-specific inspection (RegLess's
	// compiled regions).
	RegLess *core.Provider
}

// Activity converts the run for the energy model.
func (r *Run) Activity() energy.Activity {
	return energy.FromRun(r.Stats, &r.Prov, r.Mem)
}

// EnergyScheme maps the run to its energy-model scheme.
func (r *Run) EnergyScheme() energy.Scheme {
	switch r.Scheme {
	case SchemeBaseline, SchemeBaseline2L:
		return energy.Scheme{Kind: energy.KindBaseline, Entries: BaselineEntries}
	case SchemeRFV:
		return energy.Scheme{Kind: energy.KindRFV, Entries: RFVEntries}
	case SchemeRFH:
		return energy.Scheme{Kind: energy.KindRFH, Entries: BaselineEntries}
	case SchemeRegLessNC:
		return energy.Scheme{Kind: energy.KindRegLess, Entries: r.Capacity, Compressor: false}
	default:
		return energy.Scheme{Kind: energy.KindRegLess, Entries: r.Capacity, Compressor: true}
	}
}

type runKey struct {
	bench    string
	scheme   Scheme
	capacity int
}

// Suite memoizes simulation runs across experiments.
type Suite struct {
	Opts   Options
	Params energy.Params

	mu    sync.Mutex
	cache map[runKey]*Run
}

// NewSuite builds an experiment suite.
func NewSuite(opts Options) *Suite {
	return &Suite{Opts: opts, Params: energy.DefaultParams(), cache: map[runKey]*Run{}}
}

// Get returns the memoized run for (bench, scheme, capacity), simulating
// on first use. capacity applies to RegLess schemes only (registers/SM).
func (s *Suite) Get(bench string, scheme Scheme, capacity int) (*Run, error) {
	if scheme != SchemeRegLess && scheme != SchemeRegLessNC {
		capacity = 0
	}
	key := runKey{bench, scheme, capacity}
	s.mu.Lock()
	if r, ok := s.cache[key]; ok {
		s.mu.Unlock()
		return r, nil
	}
	s.mu.Unlock()

	r, err := s.simulate(bench, scheme, capacity)
	if err != nil {
		return nil, fmt.Errorf("%s/%s/%d: %w", bench, scheme, capacity, err)
	}
	s.mu.Lock()
	s.cache[key] = r
	s.mu.Unlock()
	return r, nil
}

func (s *Suite) simulate(bench string, scheme Scheme, capacity int) (*Run, error) {
	smv, rp, err := BuildSM(bench, scheme, capacity, s.Opts.Warps, s.Opts.MaxCycles)
	if err != nil {
		return nil, err
	}
	run := &Run{Bench: bench, Scheme: scheme, Capacity: capacity, RegLess: rp}
	st, err := smv.Run()
	if err != nil {
		return nil, err
	}
	run.Stats = st
	run.Prov = *smv.Provider.Stats()
	run.Mem = smv.Mem.Stats
	return run, nil
}

// BuildSM constructs a ready-to-run SM for (bench, scheme): the shared
// assembly used by the suite cache and by tools that drive the simulation
// themselves (the timeline tracer). The returned core provider is non-nil
// only for RegLess schemes.
func BuildSM(bench string, scheme Scheme, capacity, warps int, maxCycles uint64) (*sim.SM, *core.Provider, error) {
	k, err := kernels.Load(bench)
	if err != nil {
		return nil, nil, err
	}
	simCfg := sim.DefaultConfig()
	simCfg.Warps = warps
	simCfg.MaxCycles = maxCycles

	var provider sim.Provider
	var rp *core.Provider
	switch scheme {
	case SchemeBaseline:
		provider = rf.NewBaseline()
	case SchemeBaseline2L:
		provider = rf.NewBaseline()
		simCfg.Sched = sim.SchedTwoLevel
	case SchemeRFV:
		provider = rf.NewRFV(RFVEntries)
		simCfg.Sched = sim.SchedTwoLevel
	case SchemeRFH:
		provider = rf.NewRFH(RFHORFEntries)
		simCfg.Sched = sim.SchedTwoLevel
	case SchemeRegLess, SchemeRegLessNC:
		cfg := core.ConfigForCapacity(capacity)
		cfg.EnableCompressor = scheme == SchemeRegLess
		p, err := core.New(cfg, k)
		if err != nil {
			return nil, nil, err
		}
		rp = p
		provider = p
	default:
		return nil, nil, fmt.Errorf("unknown scheme %q", scheme)
	}
	smv, err := sim.New(simCfg, k, provider, exec.NewMemory(nil))
	if err != nil {
		return nil, nil, err
	}
	return smv, rp, nil
}

// GeoMean returns the geometric mean of xs.
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += math.Log(x)
	}
	return math.Exp(sum / float64(len(xs)))
}

// sortedBenchmarks returns the option benchmarks in suite order.
func (s *Suite) benchmarks() []string {
	out := make([]string, len(s.Opts.Benchmarks))
	copy(out, s.Opts.Benchmarks)
	order := map[string]int{}
	for i, n := range kernels.Names() {
		order[n] = i
	}
	sort.Slice(out, func(a, b int) bool { return order[out[a]] < order[out[b]] })
	return out
}
