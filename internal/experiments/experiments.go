// Package experiments regenerates every table and figure of the paper's
// evaluation (§6): one runner per figure, all built on a memoizing
// simulation cache so figures sharing runs (e.g. the baseline) pay once.
//
// The per-experiment index in DESIGN.md maps each paper figure/table to
// its function here and to the benchmark in bench_test.go that drives it.
package experiments

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/energy"
	"repro/internal/exec"
	"repro/internal/faults"
	"repro/internal/gpu"
	"repro/internal/kernels"
	"repro/internal/mem"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/rf"
	"repro/internal/sanitizer"
	"repro/internal/sim"
)

// Scheme names the register configurations under test.
type Scheme string

const (
	// SchemeBaseline is the full 2048-entry register file with GTO.
	SchemeBaseline Scheme = "baseline"
	// SchemeRFV is register file virtualization (half-size RF,
	// two-level scheduler, as in the paper's comparison).
	SchemeRFV Scheme = "rfv"
	// SchemeRFH is the register file hierarchy (8-entry per-warp
	// buffer, two-level scheduler).
	SchemeRFH Scheme = "rfh"
	// SchemeRegLess is RegLess at the capacity given per run.
	SchemeRegLess Scheme = "regless"
	// SchemeRegLessNC is RegLess without the compressor (Figure 16).
	SchemeRegLessNC Scheme = "regless-nocomp"
	// SchemeBaseline2L is the baseline RF under the two-level warp
	// scheduler (Figure 2's comparison).
	SchemeBaseline2L Scheme = "baseline-2level"
)

// Schemes lists every scheme in a stable order (external input
// validation, service sweep grids).
func Schemes() []Scheme {
	return []Scheme{SchemeBaseline, SchemeBaseline2L, SchemeRFV, SchemeRFH, SchemeRegLess, SchemeRegLessNC}
}

// ParseScheme validates a scheme name from external input (CLI flags,
// service requests) so unknown names fail at admission instead of
// surfacing later as a failed simulation.
func ParseScheme(name string) (Scheme, error) {
	for _, s := range Schemes() {
		if string(s) == name {
			return s, nil
		}
	}
	have := make([]string, 0, len(Schemes()))
	for _, s := range Schemes() {
		have = append(have, string(s))
	}
	return "", fmt.Errorf("unknown scheme %q (have %s)", name, strings.Join(have, ", "))
}

// BaselineEntries is the full register file capacity per SM in registers.
const BaselineEntries = 2048

// RFVEntries is RFV's half-size physical file.
const RFVEntries = 1024

// RFHORFEntries is RFH's per-warp buffer capacity (Figure 3's
// "8-entry scratchpad").
const RFHORFEntries = 8

// Options scales the experiments; Quick() shrinks them for tests.
type Options struct {
	Warps      int
	Benchmarks []string
	MaxCycles  uint64
	// Parallelism bounds how many simulations the run planner executes
	// concurrently (0 means runtime.GOMAXPROCS(0)). Simulations are
	// independent and deterministic, and tables are assembled serially
	// from the warm cache, so output is identical at any setting.
	Parallelism int

	// MetricsWriter, when non-nil, receives one JSONL record per
	// statistics window of every simulation the suite executes, labeled
	// with the run's (bench, scheme, capacity). Records from concurrent
	// simulations interleave whole lines; call FlushMetrics after the
	// last run. Streaming does not perturb results — windows only read
	// counters the simulations maintain anyway.
	MetricsWriter io.Writer

	// Watchdog is the forward-progress watchdog threshold in cycles
	// (0: the simulator default).
	Watchdog uint64
	// Sanitize attaches the cycle-level invariant sanitizer to every
	// simulation (robustness runs; costs per-cycle checking).
	Sanitize bool
	// Faults is a fault-injection plan applied to every simulation (each
	// run gets its own injector, so corruption replays identically).
	Faults *faults.Plan

	// NoFastForward steps every cycle instead of skipping provably
	// frozen spans (differential validation / stepped-path profiling;
	// results are identical either way).
	NoFastForward bool

	// SMs scales every simulation to a multi-SM chip: N lockstep SMs
	// with private L1s sharing the banked L2 and DRAM interface, the
	// kernel's grid striped across them. 0 or 1 keeps the classic
	// single-SM path (private L2 slice) — the byte-identical golden
	// configuration.
	SMs int
}

// Default returns the full-scale options (Table 1's 64 warps per SM).
func Default() Options {
	return Options{Warps: 64, Benchmarks: kernels.Names(), MaxCycles: 60_000_000}
}

// Quick returns reduced-scale options for unit tests.
func Quick() Options {
	return Options{Warps: 16, Benchmarks: []string{"bfs", "hotspot", "lud", "nw", "streamcluster"}, MaxCycles: 20_000_000}
}

// benchmarks returns o.Benchmarks in canonical suite order.
func (o Options) benchmarks() []string {
	out := make([]string, len(o.Benchmarks))
	copy(out, o.Benchmarks)
	order := map[string]int{}
	for i, n := range kernels.Names() {
		order[n] = i
	}
	sort.Slice(out, func(a, b int) bool { return order[out[a]] < order[out[b]] })
	return out
}

// Run is one completed simulation.
type Run struct {
	Bench    string
	Scheme   Scheme
	Capacity int // RegLess OSU registers per SM (0 otherwise)

	Stats *sim.Stats
	Prov  sim.ProviderStats
	Mem   mem.Stats

	// Provider is retained for scheme-specific inspection (RegLess's
	// compiled regions; SM 0's in multi-SM runs).
	RegLess *core.Provider

	// Chip holds the full multi-SM result when the suite ran with
	// Options.SMs > 1 (nil on the classic single-SM path).
	Chip *gpu.Result
}

// Activity converts the run for the energy model.
func (r *Run) Activity() energy.Activity {
	return energy.FromRun(r.Stats, &r.Prov, r.Mem)
}

// EnergyScheme maps the run to its energy-model scheme.
func (r *Run) EnergyScheme() energy.Scheme {
	switch r.Scheme {
	case SchemeBaseline, SchemeBaseline2L:
		return energy.Scheme{Kind: energy.KindBaseline, Entries: BaselineEntries}
	case SchemeRFV:
		return energy.Scheme{Kind: energy.KindRFV, Entries: RFVEntries}
	case SchemeRFH:
		return energy.Scheme{Kind: energy.KindRFH, Entries: BaselineEntries}
	case SchemeRegLessNC:
		return energy.Scheme{Kind: energy.KindRegLess, Entries: r.Capacity, Compressor: false}
	default:
		return energy.Scheme{Kind: energy.KindRegLess, Entries: r.Capacity, Compressor: true}
	}
}

type runKey struct {
	bench    string
	scheme   Scheme
	capacity int
}

// normKey canonicalizes a run key: capacity applies to RegLess schemes
// only, so non-RegLess keys fold to capacity 0.
func normKey(bench string, scheme Scheme, capacity int) runKey {
	if scheme != SchemeRegLess && scheme != SchemeRegLessNC {
		capacity = 0
	}
	return runKey{bench, scheme, capacity}
}

// runEntry is one singleflight cache slot: the first caller simulates and
// closes done; every other caller of the same key blocks on done and
// shares the result.
type runEntry struct {
	done chan struct{}
	run  *Run
	err  error
}

// Suite memoizes simulation runs across experiments. Get is a
// singleflight: concurrent callers of the same (bench, scheme, capacity)
// share one in-flight simulation, so the run planner can fan an
// experiment's requirements across a worker pool without duplicating
// work.
type Suite struct {
	Opts   Options
	Params energy.Params

	// jsonl streams per-window metrics when Opts.MetricsWriter is set.
	jsonl *metrics.JSONLWriter

	// OnSimulate, when non-nil, is invoked exactly once per simulation
	// actually executed (cache misses only) — a hook for tests and
	// progress reporting. Set it before the first Get; it may be called
	// concurrently from planner workers.
	OnSimulate func(bench string, scheme Scheme, capacity int)

	mu    sync.Mutex
	cache map[runKey]*runEntry
}

// NewSuite builds an experiment suite.
func NewSuite(opts Options) *Suite {
	s := &Suite{Opts: opts, Params: energy.DefaultParams(), cache: map[runKey]*runEntry{}}
	if opts.MetricsWriter != nil {
		s.jsonl = metrics.NewJSONLWriter(opts.MetricsWriter)
	}
	return s
}

// FlushMetrics drains the buffered JSONL stream (no-op without a
// MetricsWriter) and reports the first write error.
func (s *Suite) FlushMetrics() error {
	if s.jsonl == nil {
		return nil
	}
	return s.jsonl.Flush()
}

// Get returns the memoized run for (bench, scheme, capacity), simulating
// on first use. capacity applies to RegLess schemes only (registers/SM).
// Concurrent callers of the same key share one simulation; errors are
// cached alongside results (simulations are deterministic, so retrying
// cannot help).
func (s *Suite) Get(bench string, scheme Scheme, capacity int) (*Run, error) {
	return s.GetCtx(context.Background(), bench, scheme, capacity)
}

// GetCtx is Get with service-level span recording and cooperative
// cancellation. When ctx carries an obs trace (serve's execute path), the
// suite records its phases — "suite-wait" when another caller's in-flight
// simulation is joined, else "kernel-load"/"build"/"run" children under
// the carried parent span. When ctx is cancelable, the cycle loop polls
// it and an abandoned simulation returns ctx's error instead of running
// to completion.
//
// Cancellation must not poison the cache: simulation errors are cached
// (deterministic — retrying cannot help), but a context error says
// nothing about the key, so the leader removes its entry before
// publishing, a joined follower whose own ctx is still live re-runs the
// key, and the next Get simulates fresh. Without a trace or a deadline in
// ctx this is exactly Get.
func (s *Suite) GetCtx(ctx context.Context, bench string, scheme Scheme, capacity int) (*Run, error) {
	key := normKey(bench, scheme, capacity)
	for {
		s.mu.Lock()
		e, ok := s.cache[key]
		if !ok {
			e = &runEntry{done: make(chan struct{})}
			s.cache[key] = e
		}
		s.mu.Unlock()
		if ok {
			tr, parent := obs.FromContext(ctx)
			wait := tr.Start(parent, "suite-wait")
			select {
			case <-e.done:
			case <-ctx.Done():
				tr.End(wait)
				return nil, fmt.Errorf("%s/%s/%d: %w", key.bench, key.scheme, key.capacity, ctx.Err())
			}
			tr.End(wait)
			if e.err != nil && isCtxErr(e.err) && ctx.Err() == nil {
				// The leader was abandoned but this caller was not:
				// its entry is gone from the cache, so loop and lead.
				continue
			}
			return e.run, e.err
		}
		if s.OnSimulate != nil {
			s.OnSimulate(key.bench, key.scheme, key.capacity)
		}
		r, err := s.simulate(ctx, key.bench, key.scheme, key.capacity)
		if err != nil {
			if isCtxErr(err) {
				s.mu.Lock()
				if s.cache[key] == e {
					delete(s.cache, key)
				}
				s.mu.Unlock()
			}
			e.err = fmt.Errorf("%s/%s/%d: %w", key.bench, key.scheme, key.capacity, err)
		} else {
			e.run = r
		}
		close(e.done)
		return e.run, e.err
	}
}

// isCtxErr reports whether err is a cancellation/deadline error rather
// than a result of the simulation itself.
func isCtxErr(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// parallelism resolves the planner's worker count.
func (s *Suite) parallelism() int {
	if s.Opts.Parallelism > 0 {
		return s.Opts.Parallelism
	}
	return runtime.GOMAXPROCS(0)
}

// Warm ensures every key has a completed run, fanning cache misses across
// the planner's worker pool. Keys are deduplicated after normalization;
// already-cached keys cost nothing. The first error in key order is
// returned (matching what a serial pass would report), after all workers
// finish.
func (s *Suite) Warm(keys []runKey) error {
	seen := map[runKey]bool{}
	work := make([]runKey, 0, len(keys))
	for _, k := range keys {
		k = normKey(k.bench, k.scheme, k.capacity)
		if !seen[k] {
			seen[k] = true
			work = append(work, k)
		}
	}
	return s.forEach(len(work), func(i int) error {
		_, err := s.Get(work[i].bench, work[i].scheme, work[i].capacity)
		return err
	})
}

// forEach runs fn(0..n-1) across min(parallelism, n) workers and returns
// the first error by index. All indices are attempted even after a
// failure, so the reported error does not depend on worker scheduling.
func (s *Suite) forEach(n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	workers := s.parallelism()
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		var first error
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil && first == nil {
				first = err
			}
		}
		return first
	}
	errs := make([]error, n)
	var next int64 = -1
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := atomic.AddInt64(&next, 1)
				if i >= int64(n) {
					return
				}
				errs[i] = fn(int(i))
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// CachedRuns returns every completed run in deterministic key order
// (bench, then scheme, then capacity) — the raw material for throughput
// reporting and JSON snapshots.
func (s *Suite) CachedRuns() []*Run {
	s.mu.Lock()
	entries := make([]*runEntry, 0, len(s.cache))
	for _, e := range s.cache {
		entries = append(entries, e)
	}
	s.mu.Unlock()
	var out []*Run
	for _, e := range entries {
		<-e.done
		if e.run != nil {
			out = append(out, e.run)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Bench != b.Bench {
			return a.Bench < b.Bench
		}
		if a.Scheme != b.Scheme {
			return a.Scheme < b.Scheme
		}
		return a.Capacity < b.Capacity
	})
	return out
}

func (s *Suite) simulate(ctx context.Context, bench string, scheme Scheme, capacity int) (*Run, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if s.Opts.SMs > 1 {
		return s.simulateChip(ctx, bench, scheme, capacity)
	}
	tr, parent := obs.FromContext(ctx)
	// kernels.Load memoizes per bench, so this explicit warm makes the
	// span measure the real (first) load; BuildSM's own call then hits.
	kl := tr.Start(parent, "kernel-load")
	if _, err := kernels.Load(bench); err != nil {
		tr.End(kl)
		return nil, err
	}
	tr.End(kl)
	build := tr.Start(parent, "build")
	smv, rp, err := BuildSM(bench, scheme, SimSetup{
		Capacity:      capacity,
		Warps:         s.Opts.Warps,
		MaxCycles:     s.Opts.MaxCycles,
		Watchdog:      s.Opts.Watchdog,
		Sanitize:      s.Opts.Sanitize,
		Faults:        s.Opts.Faults,
		NoFastForward: s.Opts.NoFastForward,
	})
	tr.End(build)
	if err != nil {
		return nil, err
	}
	if s.jsonl != nil {
		smv.Metrics.SetSink(s.jsonl.Run(
			metrics.String("bench", bench),
			metrics.String("scheme", string(scheme)),
			metrics.Int("capacity", capacity),
		))
	}
	run := &Run{Bench: bench, Scheme: scheme, Capacity: capacity, RegLess: rp}
	smv.AttachContext(ctx)
	cycle := tr.Start(parent, "run")
	st, err := smv.Run()
	tr.End(cycle)
	if err != nil {
		return nil, err
	}
	run.Stats = st
	run.Prov = *smv.Provider.Stats()
	run.Mem = smv.Mem.Stats
	return run, nil
}

// SimSetup parameterizes one SM assembly beyond (bench, scheme): sizing,
// termination bounds, and the robustness instrumentation (sanitizer,
// fault injection).
type SimSetup struct {
	// Capacity is RegLess's OSU registers per SM (ignored otherwise).
	Capacity int
	Warps    int
	// MaxCycles aborts runaway simulations; Watchdog (0: simulator
	// default) trips the forward-progress check far sooner.
	MaxCycles uint64
	Watchdog  uint64
	// Sanitize attaches the cycle-level invariant sanitizer.
	Sanitize bool
	// Faults, when non-nil, arms a fresh injector for this simulation.
	Faults *faults.Plan
	// Memory, when non-nil, backs the run's functional state (tests
	// retain it to compare final stores against the exec reference).
	Memory *exec.Memory
	// NoFastForward disables the cycle-skip fast-forward.
	NoFastForward bool
}

// BuildSM constructs a ready-to-run SM for (bench, scheme): the shared
// assembly used by the suite cache and by tools that drive the simulation
// themselves (the timeline tracer). The returned core provider is non-nil
// only for RegLess schemes.
func BuildSM(bench string, scheme Scheme, su SimSetup) (*sim.SM, *core.Provider, error) {
	k, err := kernels.Load(bench)
	if err != nil {
		return nil, nil, err
	}
	simCfg := sim.DefaultConfig()
	simCfg.Warps = su.Warps
	if su.MaxCycles > 0 {
		simCfg.MaxCycles = su.MaxCycles
	}
	if su.Watchdog > 0 {
		simCfg.WatchdogCycles = su.Watchdog
	}
	simCfg.NoFastForward = su.NoFastForward

	var provider sim.Provider
	var rp *core.Provider
	switch scheme {
	case SchemeBaseline:
		provider = rf.NewBaseline()
	case SchemeBaseline2L:
		provider = rf.NewBaseline()
		simCfg.Sched = sim.SchedTwoLevel
	case SchemeRFV:
		provider = rf.NewRFV(RFVEntries)
		simCfg.Sched = sim.SchedTwoLevel
	case SchemeRFH:
		provider = rf.NewRFH(RFHORFEntries)
		simCfg.Sched = sim.SchedTwoLevel
	case SchemeRegLess, SchemeRegLessNC:
		cfg := core.ConfigForCapacity(su.Capacity)
		cfg.EnableCompressor = scheme == SchemeRegLess
		p, err := core.New(cfg, k)
		if err != nil {
			return nil, nil, err
		}
		rp = p
		provider = p
	default:
		return nil, nil, fmt.Errorf("unknown scheme %q", scheme)
	}
	mm := su.Memory
	if mm == nil {
		mm = exec.NewMemory(nil)
	}
	smv, err := sim.New(simCfg, k, provider, mm)
	if err != nil {
		return nil, nil, err
	}
	if su.Faults != nil {
		smv.AttachFaults(faults.NewInjector(su.Faults))
	}
	if su.Sanitize {
		san := sanitizer.New()
		smv.AttachSanitizer(san)
	}
	return smv, rp, nil
}

// GeoMean returns the geometric mean of xs.
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += math.Log(x)
	}
	return math.Exp(sum / float64(len(xs)))
}

// benchmarks returns the option benchmarks in suite order.
func (s *Suite) benchmarks() []string { return s.Opts.benchmarks() }
