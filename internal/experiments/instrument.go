package experiments

// Instrumented execution: the serve deep-dive path ("report": [...])
// needs the same Run the suite would cache plus the event recorders
// that observed it, so the stall-attribution/preload analysis
// (events.Analyze) can be attached to the stored result. This lives in
// experiments — not serve — because the chip-path result assembly
// (mergeSimStats + per-SM counter summing) must stay in one place.

import (
	"context"

	"repro/internal/events"
	"repro/internal/kernels"
	"repro/internal/obs"
)

// Instrumented is one simulation executed with event recording attached.
type Instrumented struct {
	Run *Run
	// Recs holds one recorder per SM (length 1 on the single-SM path);
	// Schedulers and Cycles are the matching events.Analyze inputs
	// (per-SM scheduler group count and per-SM cycle count).
	Recs       []*events.Recorder
	Schedulers []int
	Cycles     []uint64
}

// SimulateInstrumented runs (bench, scheme) once with an event recorder
// attached to every SM and the su sizing (su.Capacity is the RegLess
// capacity). Unlike Suite.Get it is never cached or shared: recorders
// are per-call state. The recording itself does not perturb results —
// the event layer is passive — so Run matches what an uninstrumented
// simulation of the same point produces. A trace carried in ctx gets the
// same kernel-load/build/run spans as the suite path.
func SimulateInstrumented(ctx context.Context, bench string, scheme Scheme, sms int, su SimSetup, mask events.Mask) (*Instrumented, error) {
	tr, parent := obs.FromContext(ctx)
	kl := tr.Start(parent, "kernel-load")
	if _, err := kernels.Load(bench); err != nil {
		tr.End(kl)
		return nil, err
	}
	tr.End(kl)

	run := &Run{Bench: bench, Scheme: scheme, Capacity: su.Capacity}
	if scheme != SchemeRegLess && scheme != SchemeRegLessNC {
		run.Capacity = 0
	}
	inst := &Instrumented{Run: run}

	if sms > 1 {
		build := tr.Start(parent, "build")
		g, rp, err := BuildChip(bench, scheme, sms, su)
		tr.End(build)
		if err != nil {
			return nil, err
		}
		run.RegLess = rp
		for _, smv := range g.SMs {
			rec := events.NewRecorder(smv.Cfg.Schedulers, mask)
			smv.AttachRecorder(rec)
			inst.Recs = append(inst.Recs, rec)
			inst.Schedulers = append(inst.Schedulers, smv.Cfg.Schedulers)
		}
		cycle := tr.Start(parent, "run")
		res, err := g.Run()
		tr.End(cycle)
		if err != nil {
			return nil, err
		}
		run.Chip = res
		run.Stats = mergeSimStats(res)
		for _, smv := range g.SMs {
			addProviderStats(&run.Prov, smv.Provider.Stats())
			addMemStats(&run.Mem, &smv.Mem.Stats)
		}
		for _, st := range res.PerSM {
			inst.Cycles = append(inst.Cycles, st.Cycles)
		}
		return inst, nil
	}

	build := tr.Start(parent, "build")
	smv, rp, err := BuildSM(bench, scheme, su)
	tr.End(build)
	if err != nil {
		return nil, err
	}
	run.RegLess = rp
	rec := events.NewRecorder(smv.Cfg.Schedulers, mask)
	smv.AttachRecorder(rec)
	cycle := tr.Start(parent, "run")
	st, err := smv.Run()
	tr.End(cycle)
	if err != nil {
		return nil, err
	}
	run.Stats = st
	run.Prov = *smv.Provider.Stats()
	run.Mem = smv.Mem.Stats
	inst.Recs = []*events.Recorder{rec}
	inst.Schedulers = []int{smv.Cfg.Schedulers}
	inst.Cycles = []uint64{st.Cycles}
	return inst, nil
}
