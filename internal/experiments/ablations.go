package experiments

import (
	"fmt"

	"repro/internal/compress"
	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/kernels"
	"repro/internal/sim"
)

// AblationCapacity is where the design choices bite: small enough that the
// OSU is under pressure (the compressor and the warp stack order matter),
// large enough that nothing thrashes pathologically.
const AblationCapacity = 256

// ablationVariant is one RegLess configuration mutation.
type ablationVariant struct {
	name   string
	mutate func(*core.Config)
}

func ablationVariants() []ablationVariant {
	return []ablationVariant{
		{"regless (paper design)", func(*core.Config) {}},
		{"FIFO warp stack", func(c *core.Config) { c.FIFOStack = true }},
		{"no compressor", func(c *core.Config) { c.EnableCompressor = false }},
		{"const-only compressor", func(c *core.Config) {
			c.CompressorPatterns = compress.PatternsConstOnly
		}},
		{"full-warp-only compressor", func(c *core.Config) {
			c.CompressorPatterns = compress.PatternsFullWarpOnly
		}},
		{"no region size floor", func(c *core.Config) { c.Regions.MinRegionInsns = 1 }},
		{"no metadata overhead", func(c *core.Config) { c.MetadataOverhead = false }},
	}
}

// ablationRun is one measured variant on one benchmark.
type ablationRun struct {
	cycles   uint64
	osuHit   float64 // preload fraction served without the memory system
	l1PerKC  float64 // L1 requests per 1000 cycles
	metaInsn uint64
}

func (s *Suite) runAblation(bench string, mutate func(*core.Config)) (*ablationRun, error) {
	k, err := kernels.Load(bench)
	if err != nil {
		return nil, err
	}
	cfg := core.ConfigForCapacity(AblationCapacity)
	mutate(&cfg)
	p, err := core.New(cfg, k)
	if err != nil {
		return nil, err
	}
	simCfg := sim.DefaultConfig()
	simCfg.Warps = s.Opts.Warps
	simCfg.MaxCycles = s.Opts.MaxCycles
	smv, err := sim.New(simCfg, k, p, exec.NewMemory(nil))
	if err != nil {
		return nil, err
	}
	st, err := smv.Run()
	if err != nil {
		return nil, err
	}
	ps := p.Stats()
	out := &ablationRun{cycles: st.Cycles, metaInsn: ps.MetaInsns}
	if n := ps.Preloads(); n > 0 {
		out.osuHit = float64(ps.PreloadFromOSU+ps.PreloadFromCompressor) / float64(n)
	}
	out.l1PerKC = 1000 * float64(ps.L1PreloadReads+ps.L1StoreWrites+ps.L1Invalidates) / float64(st.Cycles)
	return out, nil
}

// Ablations quantifies the design choices DESIGN.md §7 calls out, at a
// 256-register OSU where they matter. Run-time columns are geomeans
// normalized to the paper-design variant. The (variant x benchmark)
// matrix runs on the suite's worker pool; each cell is an independent
// deterministic simulation, so rows are assembled afterwards in a fixed
// order.
func Ablations(s *Suite) (*Table, error) {
	t := &Table{
		ID:     "ablation",
		Title:  fmt.Sprintf("Design ablations at %d registers/SM (vs paper design)", AblationCapacity),
		Header: []string{"Variant", "Run time", "Staged preloads", "L1 req/kcycle"},
	}
	variants := ablationVariants()
	benches := s.benchmarks()
	grid := make([]*ablationRun, len(variants)*len(benches))
	err := s.forEach(len(grid), func(i int) error {
		v := variants[i/len(benches)]
		r, err := s.runAblation(benches[i%len(benches)], v.mutate)
		if err != nil {
			return err
		}
		grid[i] = r
		return nil
	})
	if err != nil {
		return nil, err
	}
	// Row 0 (the paper design) is the per-benchmark normalization point.
	for vi, v := range variants {
		var ratios []float64
		var hitSum, l1Sum float64
		for bi := range benches {
			r := grid[vi*len(benches)+bi]
			base := grid[bi]
			ratios = append(ratios, float64(r.cycles)/float64(base.cycles))
			hitSum += r.osuHit
			l1Sum += r.l1PerKC
		}
		n := float64(len(benches))
		t.AddRow(v.name, f3(GeoMean(ratios)), pct(hitSum/n), f2(l1Sum/n))
	}
	t.Note("LIFO vs FIFO isolates §5.1's warp-stack choice; pattern sets isolate §5.3's compressor design")
	return t, nil
}
