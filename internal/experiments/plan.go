package experiments

// The run planner. Each experiment declares the simulations its runner
// will consult (Requirements); All and ByID collect the union, fan the
// cache misses across the suite's worker pool (Suite.Warm), and only then
// assemble tables serially from the warm cache. Because every simulation
// is independent and deterministic, the printed tables are byte-identical
// at any parallelism — the planner changes wall-clock only.

// Experiment couples a table runner with the planner's declaration of the
// simulations it consumes.
type Experiment struct {
	// ID is the experiment identifier ("fig16", "table2", ...).
	ID string
	// Run assembles the table, reading simulations through Suite.Get.
	Run func(*Suite) (*Table, error)
	// Requirements lists every (bench, scheme, capacity) Run will consult
	// under the given options. Nil means the experiment drives its own
	// simulations outside the suite cache (ablation, gpuscale, oversub)
	// or needs none (table1, fig5, fig11); such runners parallelize
	// internally via Suite.forEach where it pays.
	Requirements func(Options) []runKey
}

// schemeCap pairs a scheme with its RegLess capacity (0 for the rest).
type schemeCap struct {
	scheme   Scheme
	capacity int
}

// benchCross builds the cross product of opts' benchmarks (suite order)
// with the given scheme/capacity pairs.
func benchCross(opts Options, scs ...schemeCap) []runKey {
	out := make([]runKey, 0, len(opts.Benchmarks)*len(scs))
	for _, b := range opts.benchmarks() {
		for _, sc := range scs {
			out = append(out, normKey(b, sc.scheme, sc.capacity))
		}
	}
	return out
}

func reqRegLessDefault(o Options) []runKey {
	return benchCross(o, schemeCap{SchemeRegLess, DefaultCapacity})
}

// reqComparison covers the four-scheme comparisons of Figures 14 and 15.
func reqComparison(o Options) []runKey {
	return benchCross(o,
		schemeCap{SchemeBaseline, 0},
		schemeCap{SchemeRFH, 0},
		schemeCap{SchemeRFV, 0},
		schemeCap{SchemeRegLess, DefaultCapacity})
}

// reqBaseRegLess covers runners contrasting RegLess with the baseline.
func reqBaseRegLess(o Options) []runKey {
	return benchCross(o,
		schemeCap{SchemeBaseline, 0},
		schemeCap{SchemeRegLess, DefaultCapacity})
}

// paperExperiments returns the table/figure runners in paper order.
func paperExperiments() []Experiment {
	return []Experiment{
		{"table1", Table1, nil},
		{"fig2", Fig2, func(o Options) []runKey {
			return benchCross(o,
				schemeCap{SchemeBaseline, 0},
				schemeCap{SchemeBaseline2L, 0})
		}},
		{"fig3", Fig3, func(Options) []runKey {
			// Fig3 samples hotspot regardless of the benchmark subset.
			return []runKey{
				normKey("hotspot", SchemeBaseline, 0),
				normKey("hotspot", SchemeRFH, 0),
				normKey("hotspot", SchemeRegLess, DefaultCapacity),
			}
		}},
		{"fig5", Fig5, nil},
		{"fig11", Fig11, nil},
		{"fig12", Fig12, reqRegLessDefault},
		{"fig13", Fig13, func(o Options) []runKey {
			keys := benchCross(o, schemeCap{SchemeBaseline, 0})
			for _, c := range fig13Capacities {
				keys = append(keys, benchCross(o, schemeCap{SchemeRegLess, c})...)
			}
			return keys
		}},
		{"fig14", Fig14, reqComparison},
		{"fig15", Fig15, reqComparison},
		{"fig16", Fig16, func(o Options) []runKey {
			return benchCross(o,
				schemeCap{SchemeBaseline, 0},
				schemeCap{SchemeRegLess, DefaultCapacity},
				schemeCap{SchemeRegLessNC, DefaultCapacity},
				schemeCap{SchemeRFV, 0},
				schemeCap{SchemeRFH, 0})
		}},
		{"fig17", Fig17, reqRegLessDefault},
		{"fig18", Fig18, reqRegLessDefault},
		{"fig19", Fig19, reqRegLessDefault},
		{"table2", Table2, reqRegLessDefault},
	}
}

// extensionExperiments returns the beyond-the-paper runners.
func extensionExperiments() []Experiment {
	return []Experiment{
		{"ablation", Ablations, nil},
		{"gpuscale", GPUScale, nil},
		{"coresident", CoResident, nil},
		{"oversub", Oversubscription, nil},
		{"breakdown", EnergyBreakdown, reqBaseRegLess},
		{"sensitivity", Sensitivity, reqBaseRegLess},
	}
}

// Experiments returns every registered experiment: paper order, then the
// extensions.
func Experiments() []Experiment {
	return append(paperExperiments(), extensionExperiments()...)
}

// All runs every paper experiment in order. The planner first warms the
// union of their requirements across the worker pool, then the tables are
// assembled serially from the cache, so output matches a serial run
// byte for byte.
func All(s *Suite) ([]*Table, error) {
	exps := paperExperiments()
	var keys []runKey
	for _, e := range exps {
		if e.Requirements != nil {
			keys = append(keys, e.Requirements(s.Opts)...)
		}
	}
	if err := s.Warm(keys); err != nil {
		return nil, err
	}
	var out []*Table
	for _, e := range exps {
		tb, err := e.Run(s)
		if err != nil {
			return nil, err
		}
		out = append(out, tb)
	}
	return out, nil
}

// ByID returns the experiment function for an ID like "fig16". The
// returned function warms the experiment's requirements in parallel
// before assembling the table.
func ByID(id string) (func(*Suite) (*Table, error), bool) {
	for _, e := range Experiments() {
		if e.ID != id {
			continue
		}
		e := e
		return func(s *Suite) (*Table, error) {
			if e.Requirements != nil {
				if err := s.Warm(e.Requirements(s.Opts)); err != nil {
					return nil, err
				}
			}
			return e.Run(s)
		}, true
	}
	return nil, false
}
