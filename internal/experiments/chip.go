package experiments

// Multi-SM suite path: when Options.SMs > 1 every simulation in the run
// cache is a full chip — N lockstep SMs with private L1s and register
// schemes, one banked L2, one DRAM budget, the grid striped across SMs
// by warp ID. The cached Run aggregates the chip (cycles = slowest SM,
// counters summed) so every paper experiment's table logic works
// unchanged; the chip result itself is retained on Run.Chip for the
// chip-level columns (gpuscale, Table 1's configuration row).

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/faults"
	"repro/internal/gpu"
	"repro/internal/kernels"
	"repro/internal/mem"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/rf"
	"repro/internal/sanitizer"
	"repro/internal/sim"
)

// regLessSMOffset returns the backing-store offset for one SM's RegLess
// shard: disjoint 16 MB windows keep per-SM register spills from
// aliasing in the shared L2 (one kernel's SMs share data lines but
// never register lines).
func regLessSMOffset(sm int) uint32 { return uint32(sm) << 24 }

// BuildChip constructs a ready-to-run multi-SM chip for (bench, scheme):
// the chip-level counterpart of BuildSM. The returned core provider is
// SM 0's (non-nil only for RegLess schemes); scheme-wide provider
// statistics are summed across SMs at result time.
func BuildChip(bench string, scheme Scheme, sms int, su SimSetup) (*gpu.GPU, *core.Provider, error) {
	k, err := kernels.Load(bench)
	if err != nil {
		return nil, nil, err
	}
	cfg := gpu.DefaultConfig()
	cfg.SMs = sms
	cfg.SM.Warps = su.Warps
	if su.MaxCycles > 0 {
		cfg.SM.MaxCycles = su.MaxCycles
	}
	if su.Watchdog > 0 {
		cfg.SM.WatchdogCycles = su.Watchdog
	}
	cfg.SM.NoFastForward = su.NoFastForward

	var rp *core.Provider
	factory := func(i int) (sim.Provider, error) { return rf.NewBaseline(), nil }
	switch scheme {
	case SchemeBaseline:
	case SchemeBaseline2L:
		cfg.SM.Sched = sim.SchedTwoLevel
	case SchemeRFV:
		cfg.SM.Sched = sim.SchedTwoLevel
		factory = func(int) (sim.Provider, error) { return rf.NewRFV(RFVEntries), nil }
	case SchemeRFH:
		cfg.SM.Sched = sim.SchedTwoLevel
		factory = func(int) (sim.Provider, error) { return rf.NewRFH(RFHORFEntries), nil }
	case SchemeRegLess, SchemeRegLessNC:
		factory = func(i int) (sim.Provider, error) {
			c := core.ConfigForCapacity(su.Capacity)
			c.EnableCompressor = scheme == SchemeRegLess
			c.AddrOffset = regLessSMOffset(i)
			p, err := core.New(c, k)
			if err != nil {
				return nil, err
			}
			if i == 0 {
				rp = p
			}
			return p, nil
		}
	default:
		return nil, nil, fmt.Errorf("unknown scheme %q", scheme)
	}
	mm := su.Memory
	if mm == nil {
		mm = exec.NewMemory(nil)
	}
	g, err := gpu.New(cfg, k, factory, mm)
	if err != nil {
		return nil, nil, err
	}
	for _, smv := range g.SMs {
		if su.Faults != nil {
			smv.AttachFaults(faults.NewInjector(su.Faults))
		}
		if su.Sanitize {
			smv.AttachSanitizer(sanitizer.New())
		}
	}
	return g, rp, nil
}

// simulateChip is the Opts.SMs>1 branch of Suite.simulate: one chip run,
// aggregated into the same Run shape the single-SM path produces.
func (s *Suite) simulateChip(ctx context.Context, bench string, scheme Scheme, capacity int) (*Run, error) {
	tr, parent := obs.FromContext(ctx)
	kl := tr.Start(parent, "kernel-load")
	if _, err := kernels.Load(bench); err != nil {
		tr.End(kl)
		return nil, err
	}
	tr.End(kl)
	build := tr.Start(parent, "build")
	g, rp, err := BuildChip(bench, scheme, s.Opts.SMs, SimSetup{
		Capacity:      capacity,
		Warps:         s.Opts.Warps,
		MaxCycles:     s.Opts.MaxCycles,
		Watchdog:      s.Opts.Watchdog,
		Sanitize:      s.Opts.Sanitize,
		Faults:        s.Opts.Faults,
		NoFastForward: s.Opts.NoFastForward,
	})
	tr.End(build)
	if err != nil {
		return nil, err
	}
	if s.jsonl != nil {
		for i, smv := range g.SMs {
			smv.Metrics.SetSink(s.jsonl.Run(
				metrics.String("bench", bench),
				metrics.String("scheme", string(scheme)),
				metrics.Int("capacity", capacity),
				metrics.Int("sm", i),
			))
			if i == 0 {
				// Chip-level L2/DRAM counters ride SM 0's window stream.
				g.L2.BindMetrics(smv.Metrics)
			}
		}
	}
	run := &Run{Bench: bench, Scheme: scheme, Capacity: capacity, RegLess: rp}
	g.AttachContext(ctx)
	cycle := tr.Start(parent, "run")
	res, err := g.Run()
	tr.End(cycle)
	if err != nil {
		return nil, err
	}
	run.Chip = res
	run.Stats = mergeSimStats(res)
	for _, smv := range g.SMs {
		addProviderStats(&run.Prov, smv.Provider.Stats())
		addMemStats(&run.Mem, &smv.Mem.Stats)
	}
	return run, nil
}

// mergeSimStats folds per-SM statistics into one SM-shaped Stats:
// cycles are the chip run time (slowest SM), event counters sum,
// WorkingSetKB averages over SMs (it is itself a per-window mean), and
// BackingSeries sums elementwise (the chip's backing traffic over time).
func mergeSimStats(res *gpu.Result) *sim.Stats {
	out := &sim.Stats{Cycles: res.Cycles}
	for _, st := range res.PerSM {
		out.DynInsns += st.DynInsns
		out.IssueStalls += st.IssueStalls
		out.ALUOps += st.ALUOps
		out.FMAOps += st.FMAOps
		out.SFUOps += st.SFUOps
		out.GlobalLoads += st.GlobalLoads
		out.GlobalStores += st.GlobalStores
		out.SharedOps += st.SharedOps
		out.Branches += st.Branches
		out.Barriers += st.Barriers
		out.MemLines += st.MemLines
		out.ActiveLanes += st.ActiveLanes
		out.WorkingSetKB += st.WorkingSetKB
		out.FFSkippedCycles += st.FFSkippedCycles
		out.FFJumps += st.FFJumps
		for len(out.BackingSeries) < len(st.BackingSeries) {
			out.BackingSeries = append(out.BackingSeries, 0)
		}
		for i, v := range st.BackingSeries {
			out.BackingSeries[i] += v
		}
	}
	if n := len(res.PerSM); n > 0 {
		out.WorkingSetKB /= float64(n)
	}
	return out
}

func addProviderStats(dst *sim.ProviderStats, src *sim.ProviderStats) {
	dst.StructReads += src.StructReads
	dst.StructWrites += src.StructWrites
	dst.TagLookups += src.TagLookups
	dst.BankConflicts += src.BankConflicts
	dst.BackingAccesses += src.BackingAccesses
	dst.PreloadFromOSU += src.PreloadFromOSU
	dst.PreloadFromCompressor += src.PreloadFromCompressor
	dst.PreloadFromL1 += src.PreloadFromL1
	dst.PreloadFromL2DRAM += src.PreloadFromL2DRAM
	dst.Evictions += src.Evictions
	dst.CompressorHits += src.CompressorHits
	dst.CompressorMisses += src.CompressorMisses
	dst.CompressorBitChecks += src.CompressorBitChecks
	dst.CompressorCacheOps += src.CompressorCacheOps
	dst.CacheInvalidations += src.CacheInvalidations
	dst.MetaInsns += src.MetaInsns
	dst.StallCycles += src.StallCycles
	dst.L1PreloadReads += src.L1PreloadReads
	dst.L1StoreWrites += src.L1StoreWrites
	dst.L1Invalidates += src.L1Invalidates
	dst.LRFAccesses += src.LRFAccesses
	dst.ORFAccesses += src.ORFAccesses
	dst.MRFAccesses += src.MRFAccesses
	dst.RegionActivations += src.RegionActivations
	dst.RegionCycles += src.RegionCycles
}

func addMemStats(dst *mem.Stats, src *mem.Stats) {
	dst.L1Hits += src.L1Hits
	dst.L1Misses += src.L1Misses
	dst.L1Reads += src.L1Reads
	dst.L1Writes += src.L1Writes
	dst.L1Writebacks += src.L1Writebacks
	dst.L1Invalidations += src.L1Invalidations
	dst.L2Hits += src.L2Hits
	dst.L2Misses += src.L2Misses
	dst.DataReads += src.DataReads
	dst.DataWrites += src.DataWrites
	dst.DRAMAccesses += src.DRAMAccesses
	dst.L1PortRejects += src.L1PortRejects
	dst.MSHRRejects += src.MSHRRejects
	dst.DataRejects += src.DataRejects
	dst.FaultDrops += src.FaultDrops
	dst.FaultDelays += src.FaultDelays
}
