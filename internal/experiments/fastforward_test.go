package experiments

import (
	"bytes"
	"testing"
)

// TestFastForwardDifferential is the cycle-skip fast-forward's ground
// truth: the entire Quick-scale suite — every table, every run's cycle
// count, and every exported metrics window — must be byte-identical
// between a fast-forwarded run and a stepped one. Parallelism is pinned
// to 1 so the JSONL streams are ordered identically and can be compared
// as raw bytes.
func TestFastForwardDifferential(t *testing.T) {
	render := func(noFF bool) (tables []byte, stream []byte, suite *Suite) {
		var buf, jsonl bytes.Buffer
		opts := Quick()
		opts.Parallelism = 1
		opts.MetricsWriter = &jsonl
		opts.NoFastForward = noFF
		suite = NewSuite(opts)
		tbs, err := All(suite)
		if err != nil {
			t.Fatal(err)
		}
		if err := suite.FlushMetrics(); err != nil {
			t.Fatal(err)
		}
		for _, tb := range tbs {
			buf.WriteString(tb.Render())
			buf.WriteByte('\n')
		}
		return buf.Bytes(), jsonl.Bytes(), suite
	}

	ffTables, ffStream, ffSuite := render(false)
	stTables, stStream, stSuite := render(true)

	if !bytes.Equal(ffTables, stTables) {
		t.Error("rendered tables differ between fast-forwarded and stepped runs")
		diffLines(t, ffTables, stTables)
	}
	if !bytes.Equal(ffStream, stStream) {
		t.Error("metrics JSONL streams differ between fast-forwarded and stepped runs")
		diffLines(t, ffStream, stStream)
	}

	ffRuns, stRuns := ffSuite.CachedRuns(), stSuite.CachedRuns()
	if len(ffRuns) != len(stRuns) || len(ffRuns) == 0 {
		t.Fatalf("run counts differ: %d vs %d", len(ffRuns), len(stRuns))
	}
	var skipped, jumps uint64
	for i, fr := range ffRuns {
		sr := stRuns[i]
		if fr.Bench != sr.Bench || fr.Scheme != sr.Scheme || fr.Capacity != sr.Capacity {
			t.Fatalf("run %d key mismatch: %s/%s/%d vs %s/%s/%d",
				i, fr.Bench, fr.Scheme, fr.Capacity, sr.Bench, sr.Scheme, sr.Capacity)
		}
		if fr.Stats.Cycles != sr.Stats.Cycles {
			t.Errorf("%s/%s/%d: cycles %d (ff) vs %d (stepped)",
				fr.Bench, fr.Scheme, fr.Capacity, fr.Stats.Cycles, sr.Stats.Cycles)
		}
		if fr.Stats.DynInsns != sr.Stats.DynInsns || fr.Stats.IssueStalls != sr.Stats.IssueStalls {
			t.Errorf("%s/%s/%d: insns/stalls diverge: (%d,%d) vs (%d,%d)",
				fr.Bench, fr.Scheme, fr.Capacity,
				fr.Stats.DynInsns, fr.Stats.IssueStalls, sr.Stats.DynInsns, sr.Stats.IssueStalls)
		}
		if fr.Prov != sr.Prov {
			t.Errorf("%s/%s/%d: provider stats diverge", fr.Bench, fr.Scheme, fr.Capacity)
		}
		if fr.Mem != sr.Mem {
			t.Errorf("%s/%s/%d: memory stats diverge", fr.Bench, fr.Scheme, fr.Capacity)
		}
		if sr.Stats.FFSkippedCycles != 0 || sr.Stats.FFJumps != 0 {
			t.Errorf("%s/%s/%d: stepped run recorded fast-forward activity (%d cycles, %d jumps)",
				sr.Bench, sr.Scheme, sr.Capacity, sr.Stats.FFSkippedCycles, sr.Stats.FFJumps)
		}
		skipped += fr.Stats.FFSkippedCycles
		jumps += fr.Stats.FFJumps
	}
	if skipped == 0 || jumps == 0 {
		t.Fatalf("fast-forward never engaged across the suite (skipped %d, jumps %d) — the differential proved nothing",
			skipped, jumps)
	}
	t.Logf("fast-forward skipped %d cycles over %d jumps with identical output", skipped, jumps)
}

// diffLines reports the first differing line of two byte streams.
func diffLines(t *testing.T, a, b []byte) {
	t.Helper()
	al, bl := bytes.Split(a, []byte("\n")), bytes.Split(b, []byte("\n"))
	for i := 0; i < len(al) && i < len(bl); i++ {
		if !bytes.Equal(al[i], bl[i]) {
			t.Errorf("first divergence at line %d:\n  ff:      %s\n  stepped: %s", i+1, al[i], bl[i])
			return
		}
	}
	t.Errorf("streams differ in length: %d vs %d lines", len(al), len(bl))
}

// TestFastForwardTwoLevelBarrierChurnParity pins the two-level scheduler
// regression the Quick-scale differential cannot see: at 64 warps,
// barrier-stalled warps churn through the active set on zero-issue
// cycles (promote admits them, the next pick demotes them), rotating
// pending order without issuing. A skip across such a span used to land
// with a different active set than a stepped run and change the cycle
// count. The scheduler frozen() gate must hold the fast-forward back
// exactly there — and still engage elsewhere.
func TestFastForwardTwoLevelBarrierChurnParity(t *testing.T) {
	run := func(noFF bool) *Run {
		s := NewSuite(Options{Warps: 64, Benchmarks: []string{"hotspot"}, MaxCycles: 60_000_000, NoFastForward: noFF})
		r, err := s.Get("hotspot", SchemeBaseline2L, 0)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	ff, st := run(false), run(true)
	if ff.Stats.Cycles != st.Stats.Cycles || ff.Stats.WorkingSetKB != st.Stats.WorkingSetKB {
		t.Fatalf("two-level fast-forward diverged: cycles %d/%d working set %.3f/%.3f",
			ff.Stats.Cycles, st.Stats.Cycles, ff.Stats.WorkingSetKB, st.Stats.WorkingSetKB)
	}
	if ff.Stats.IssueStalls != st.Stats.IssueStalls || ff.Mem != st.Mem {
		t.Fatalf("two-level fast-forward stall/memory stats diverged")
	}
	if ff.Stats.FFJumps == 0 {
		t.Fatal("fast-forward never engaged under the two-level scheduler")
	}
}
