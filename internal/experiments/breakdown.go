package experiments

import (
	"repro/internal/energy"
)

// EnergyBreakdown (extension) decomposes each benchmark's baseline GPU
// energy into the model's components and shows where RegLess's savings
// come from — the per-component view behind Figures 14 and 15.
func EnergyBreakdown(s *Suite) (*Table, error) {
	t := &Table{
		ID:    "breakdown",
		Title: "GPU energy decomposition: baseline shares and RegLess deltas",
		Header: []string{"Benchmark", "RF share", "Insn share", "Mem share", "Static share",
			"RegLess RF", "RegLess total"},
	}
	for _, bench := range s.benchmarks() {
		base, err := s.Get(bench, SchemeBaseline, 0)
		if err != nil {
			return nil, err
		}
		bb := energy.Compute(s.Params, base.EnergyScheme(), base.Activity())
		rgl, err := s.Get(bench, SchemeRegLess, DefaultCapacity)
		if err != nil {
			return nil, err
		}
		rb := energy.Compute(s.Params, rgl.EnergyScheme(), rgl.Activity())
		t.AddRow(bench,
			pct(bb.RFTotal/bb.Total),
			pct(bb.InsnEnergy/bb.Total),
			pct(bb.MemEnergy/bb.Total),
			pct(bb.GPUStaticEnergy/bb.Total),
			f3(rb.RFTotal/bb.RFTotal),
			f3(rb.Total/bb.Total))
	}
	t.Note("RF share is the per-benchmark ceiling on GPU savings (the No-RF bound of Fig 15)")
	return t, nil
}
