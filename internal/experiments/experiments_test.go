package experiments

import (
	"strings"
	"testing"
)

func quickSuite() *Suite { return NewSuite(Quick()) }

func TestRunCacheMemoizes(t *testing.T) {
	s := quickSuite()
	a, err := s.Get("bfs", SchemeBaseline, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Get("bfs", SchemeBaseline, 0)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("cache returned distinct runs")
	}
	if a.Stats.Cycles == 0 {
		t.Fatal("empty run")
	}
}

func TestTableRendering(t *testing.T) {
	tb := &Table{ID: "figX", Title: "demo", Header: []string{"A", "B"}}
	tb.AddRow("x", "1")
	tb.Note("hello %d", 7)
	text := tb.Render()
	if !strings.Contains(text, "FIGX") || !strings.Contains(text, "hello 7") {
		t.Fatalf("render output:\n%s", text)
	}
	md := tb.Markdown()
	if !strings.Contains(md, "| A | B |") {
		t.Fatalf("markdown output:\n%s", md)
	}
}

func TestFig2WorkingSetOrdering(t *testing.T) {
	s := quickSuite()
	tb, err := Fig2(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != len(s.Opts.Benchmarks)+1 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	// The mean 2-level working set must not exceed GTO's (the paper's
	// motivation for coordinating scheduling with allocation).
	mean := tb.Rows[len(tb.Rows)-1]
	var g, two float64
	if _, err := sscan(mean[1], &g); err != nil {
		t.Fatal(err)
	}
	if _, err := sscan(mean[2], &two); err != nil {
		t.Fatal(err)
	}
	if two > g*1.05 {
		t.Fatalf("2-level working set %v above GTO %v", two, g)
	}
}

func sscan(s string, f *float64) (int, error) {
	return fmtSscan(s, f)
}

func TestFig3Ordering(t *testing.T) {
	s := quickSuite()
	tb, err := Fig3(s)
	if err != nil {
		t.Fatal(err)
	}
	// Average row: baseline >> RegLess (Figure 3's point).
	last := tb.Rows[len(tb.Rows)-1]
	var base, rgl float64
	if _, err := fmtSscan(last[1], &base); err != nil {
		t.Fatal(err)
	}
	if _, err := fmtSscan(last[3], &rgl); err != nil {
		t.Fatal(err)
	}
	if base <= rgl*2 {
		t.Fatalf("baseline backing accesses (%v) not well above RegLess (%v)", base, rgl)
	}
}

func TestFig13SweepShape(t *testing.T) {
	s := quickSuite()
	pts, err := s.sweepCapacities([]int{128, 512})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatal("missing points")
	}
	// Larger capacity must not be slower and must cost more energy than
	// the smaller one saves... at minimum: both run, energy < 1.05, and
	// 512 run time within a few percent of baseline (paper's design
	// goal).
	if pts[1].RunTime > 1.10 {
		t.Fatalf("RegLess-512 geomean run time %.3f, want ~1.0", pts[1].RunTime)
	}
	if pts[0].RunTime < pts[1].RunTime*0.95 {
		t.Fatalf("128-capacity faster than 512: %.3f vs %.3f", pts[0].RunTime, pts[1].RunTime)
	}
	for _, p := range pts {
		if p.GPUEnergy >= 1.0 {
			t.Fatalf("capacity %d: GPU energy %.3f not below baseline", p.Capacity, p.GPUEnergy)
		}
	}
}

func TestFig14Ordering(t *testing.T) {
	s := quickSuite()
	tb, err := Fig14(s)
	if err != nil {
		t.Fatal(err)
	}
	last := tb.Rows[len(tb.Rows)-1]
	var rfh, rfv, rgl float64
	fmtSscan(last[1], &rfh)
	fmtSscan(last[2], &rfv)
	fmtSscan(last[3], &rgl)
	// Paper ordering: RegLess < RFH < RFV < 1.
	if !(rgl < rfh && rgl < rfv && rfh < 1 && rfv < 1) {
		t.Fatalf("RF energy ordering wrong: rfh=%v rfv=%v regless=%v", rfh, rfv, rgl)
	}
	if rgl > 0.45 {
		t.Fatalf("RegLess RF energy %.3f, want ~0.25", rgl)
	}
}

func TestFig15Bound(t *testing.T) {
	s := quickSuite()
	tb, err := Fig15(s)
	if err != nil {
		t.Fatal(err)
	}
	last := tb.Rows[len(tb.Rows)-1]
	var norf, rgl float64
	fmtSscan(last[1], &norf)
	fmtSscan(last[4], &rgl)
	if !(norf < rgl && rgl < 1.0) {
		t.Fatalf("bound violated: norf=%v regless=%v", norf, rgl)
	}
}

func TestFig17SourcesSane(t *testing.T) {
	s := quickSuite()
	tb, err := Fig17(s)
	if err != nil {
		t.Fatal(err)
	}
	// Mean row: OSU percentage dominates.
	last := tb.Rows[len(tb.Rows)-1]
	var osuPct float64
	fmtSscan(strings.TrimSuffix(last[1], "%"), &osuPct)
	if osuPct < 50 {
		t.Fatalf("OSU serves only %.1f%% of preloads", osuPct)
	}
}

func TestFig18WithinBudget(t *testing.T) {
	s := quickSuite()
	tb, err := Fig18(s)
	if err != nil {
		t.Fatal(err)
	}
	last := tb.Rows[len(tb.Rows)-1]
	var mean float64
	fmtSscan(last[4], &mean)
	if mean > 0.25 {
		t.Fatalf("mean L1 traffic %.3f req/cycle — far above the paper's ~0.02", mean)
	}
}

func TestAllExperimentsRun(t *testing.T) {
	s := quickSuite()
	tables, err := All(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 14 {
		t.Fatalf("got %d tables, want 14", len(tables))
	}
	seen := map[string]bool{}
	for _, tb := range tables {
		if tb.ID == "" || len(tb.Rows) == 0 {
			t.Fatalf("degenerate table %+v", tb)
		}
		if seen[tb.ID] {
			t.Fatalf("duplicate id %s", tb.ID)
		}
		seen[tb.ID] = true
	}
}

func TestByID(t *testing.T) {
	if _, ok := ByID("fig16"); !ok {
		t.Fatal("fig16 missing")
	}
	if _, ok := ByID("fig99"); ok {
		t.Fatal("fig99 should not exist")
	}
}
