package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/kernels"
	"repro/internal/launch"
	"repro/internal/rf"
	"repro/internal/sim"
)

// Oversubscription (extension) demonstrates the paper's related-work claim
// that "RegLess would be able to oversubscribe the register file without
// any design changes" (§7). The workload's per-warp register footprint
// exceeds 2048/64 = 32 registers, so the baseline register file caps
// occupancy at floor(2048 / regsPerWarp) resident warps and must run the
// grid in more waves; RegLess stages per-region registers only, keeps all
// 64 warps resident, and finishes the same grid in fewer waves.
func Oversubscription(s *Suite) (*Table, error) {
	k, err := kernels.MicroOccupancy()
	if err != nil {
		return nil, err
	}
	fullWarps := s.Opts.Warps
	// Occupancy limit, aligned down to a CTA-size multiple.
	baseWarps := BaselineEntries / k.NumRegs / k.WarpsPerCTA * k.WarpsPerCTA
	if baseWarps > fullWarps {
		baseWarps = fullWarps
	}
	if baseWarps < k.WarpsPerCTA {
		baseWarps = k.WarpsPerCTA
	}
	grid := 2 * fullWarps // the same total work for both schemes

	simCfg := sim.DefaultConfig()
	simCfg.MaxCycles = s.Opts.MaxCycles

	// The two launches are independent (each gets a private functional
	// memory); run them on the worker pool.
	var base, rgl *launch.Result
	err = s.forEach(2, func(i int) error {
		if i == 0 {
			r, err := launch.Run(k, grid, baseWarps, simCfg,
				func(int) (sim.Provider, error) { return rf.NewBaseline(), nil },
				exec.NewMemory(nil))
			base = r
			return err
		}
		r, err := launch.Run(k, grid, fullWarps, simCfg,
			func(int) (sim.Provider, error) {
				return core.New(core.ConfigForCapacity(DefaultCapacity), k)
			},
			exec.NewMemory(nil))
		rgl = r
		return err
	})
	if err != nil {
		return nil, err
	}

	t := &Table{
		ID: "oversub",
		Title: fmt.Sprintf("Register file oversubscription: %d-warp grid of a %d regs/warp kernel",
			grid, k.NumRegs),
		Header: []string{"Scheme", "Resident warps", "Waves", "Total cycles", "Speedup"},
	}
	t.AddRow("baseline (occupancy-limited)", fmt.Sprintf("%d", baseWarps),
		fmt.Sprintf("%d", base.Waves), fmt.Sprintf("%d", base.Cycles), "1.000")
	t.AddRow("RegLess-512 (oversubscribed)", fmt.Sprintf("%d", fullWarps),
		fmt.Sprintf("%d", rgl.Waves), fmt.Sprintf("%d", rgl.Cycles),
		f3(float64(base.Cycles)/float64(rgl.Cycles)))
	t.Note("baseline RF holds %d entries: at %d regs/warp only %d warps fit, forcing %d waves; RegLess keeps %d resident",
		BaselineEntries, k.NumRegs, baseWarps, base.Waves, fullWarps)
	return t, nil
}
