package experiments

import (
	"fmt"

	"repro/internal/cfg"
	"repro/internal/energy"
	"repro/internal/kernels"
	"repro/internal/mem"
	"repro/internal/sim"
)

// Capacities is the OSU sweep of Figures 11-13 (registers per SM).
var Capacities = []int{128, 192, 256, 384, 512, 1024, 2048}

// DefaultCapacity is the paper's chosen design point (§6.2).
const DefaultCapacity = 512

// Table1 prints the simulation parameters (paper Table 1).
func Table1(s *Suite) (*Table, error) {
	c := sim.DefaultConfig()
	t := &Table{ID: "table1", Title: "Simulation parameters", Header: []string{"Parameter", "Value"}}
	if s.Opts.SMs > 1 {
		l2 := mem.DefaultBankedL2Config()
		t.AddRow("SMs simulated", fmt.Sprintf("%d, lockstep, shared banked L2 (paper: 16)", s.Opts.SMs))
		t.AddRow("Warps per SM", fmt.Sprintf("%d", s.Opts.Warps))
		t.AddRow("Warp schedulers", fmt.Sprintf("%d, GTO", c.Schedulers))
		t.AddRow("L1 cache", "48KB (64 sets x 6 ways x 128B), 32 MSHRs, data accesses bypassed")
		t.AddRow("L1 bandwidth", "one request per cycle")
		t.AddRow("Memory system", fmt.Sprintf(
			"2MB L2 (%d banks x %d sets x %d ways), %d MSHRs/bank, DRAM %d cycles, 1 line per %d cycles",
			l2.Banks, l2.SetsPerBank, l2.Ways, l2.MSHRsPerBank, l2.DRAMLatency, l2.DRAMCyclesPerLine))
	} else {
		t.AddRow("SMs simulated", "1 (paper: 16; all RegLess mechanisms are per-SM)")
		t.AddRow("Warps per SM", fmt.Sprintf("%d", s.Opts.Warps))
		t.AddRow("Warp schedulers", fmt.Sprintf("%d, GTO", c.Schedulers))
		t.AddRow("L1 cache", "48KB (64 sets x 6 ways x 128B), 32 MSHRs, data accesses bypassed")
		t.AddRow("L1 bandwidth", "one request per cycle")
		t.AddRow("Memory system", fmt.Sprintf("512KB L2 slice, DRAM %d cycles, 1 line per %d cycles",
			c.Mem.DRAMLatency, c.Mem.DRAMCyclesPerLine))
	}
	t.AddRow("Compressor", "one op per cycle, 12 lines per shard (48 per SM)")
	t.AddRow("OSU (chosen point)", "512 registers/SM = 4 shards x 8 banks x 16 lines")
	return t, nil
}

// Fig2 measures the average register working set per 100-cycle window
// under GTO and the two-level scheduler (paper Figure 2).
func Fig2(s *Suite) (*Table, error) {
	t := &Table{
		ID:     "fig2",
		Title:  "Average register working set per 100-cycle window (KB)",
		Header: []string{"Benchmark", "GTO", "2-Level"},
	}
	var sumG, sum2 float64
	for _, bench := range s.benchmarks() {
		gto, err := s.Get(bench, SchemeBaseline, 0)
		if err != nil {
			return nil, err
		}
		two, err := s.Get(bench, SchemeBaseline2L, 0)
		if err != nil {
			return nil, err
		}
		t.AddRow(bench, f1(gto.Stats.WorkingSetKB), f1(two.Stats.WorkingSetKB))
		sumG += gto.Stats.WorkingSetKB
		sum2 += two.Stats.WorkingSetKB
	}
	n := float64(len(s.benchmarks()))
	t.AddRow("MEAN", f1(sumG/n), f1(sum2/n))
	t.Note("paper: both schedulers touch ≤10%% of the 256KB/SM file per window; 2-level below GTO")
	return t, nil
}

// Fig3 samples backing-store accesses per 100-cycle window during
// hotspot's steady state for baseline, RFH, and RegLess (paper Figure 3).
func Fig3(s *Suite) (*Table, error) {
	base, err := s.Get("hotspot", SchemeBaseline, 0)
	if err != nil {
		return nil, err
	}
	rfh, err := s.Get("hotspot", SchemeRFH, 0)
	if err != nil {
		return nil, err
	}
	rgl, err := s.Get("hotspot", SchemeRegLess, DefaultCapacity)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "fig3",
		Title:  "hotspot: backing-store accesses per 100-cycle window",
		Header: []string{"Window", "Baseline RF", "RFH (main RF)", "RegLess (L1)"},
	}
	get := func(sr []uint64, i int) string {
		if i < len(sr) {
			return fmt.Sprintf("%d", sr[i])
		}
		return "-"
	}
	n := len(base.Stats.BackingSeries)
	if m := len(rfh.Stats.BackingSeries); m > n {
		n = m
	}
	if m := len(rgl.Stats.BackingSeries); m > n {
		n = m
	}
	// Sample up to 20 windows from the steady state (skip warm-up).
	start := n / 4
	end := start + 20
	if end > n {
		end = n
	}
	for i := start; i < end; i++ {
		t.AddRow(fmt.Sprintf("%d", i), get(base.Stats.BackingSeries, i),
			get(rfh.Stats.BackingSeries, i), get(rgl.Stats.BackingSeries, i))
	}
	avg := func(sr []uint64) float64 {
		if len(sr) == 0 {
			return 0
		}
		var s uint64
		for _, x := range sr {
			s += x
		}
		return float64(s) / float64(len(sr))
	}
	t.AddRow("AVG(all)", f1(avg(base.Stats.BackingSeries)), f1(avg(rfh.Stats.BackingSeries)),
		f1(avg(rgl.Stats.BackingSeries)))
	t.Note("paper: baseline ~600, RFH well below, RegLess near zero")
	return t, nil
}

// Fig5 plots the live-register count per static instruction for a portion
// of particle_filter (paper Figure 5).
func Fig5(s *Suite) (*Table, error) {
	k, err := kernels.Load("particle_filter")
	if err != nil {
		return nil, err
	}
	g := cfg.New(k)
	lv := cfg.ComputeLiveness(g)
	counts := lv.LiveCounts()
	t := &Table{
		ID:     "fig5",
		Title:  "particle_filter: live registers per static instruction",
		Header: []string{"Instruction", "Live registers"},
	}
	limit := len(counts)
	if limit > 40 {
		limit = 40
	}
	min, max := counts[0], counts[0]
	for i := 0; i < limit; i++ {
		t.AddRow(fmt.Sprintf("%d", i), fmt.Sprintf("%d", counts[i]))
	}
	for _, c := range counts {
		if c < min {
			min = c
		}
		if c > max {
			max = c
		}
	}
	t.Note("range %d..%d; low points are the natural region seams (§4.1)", min, max)
	return t, nil
}

// Fig11 reports area versus OSU capacity (paper Figure 11), normalized to
// the 2048-entry baseline register file.
func Fig11(s *Suite) (*Table, error) {
	t := &Table{
		ID:     "fig11",
		Title:  "Area for RegLess configurations (normalized to baseline RF)",
		Header: []string{"Capacity", "Logic", "Storage", "Compressor", "Total"},
	}
	for _, cap := range Capacities {
		a := energy.Area(energy.Scheme{Kind: energy.KindRegLess, Entries: cap, Compressor: true}, BaselineEntries)
		t.AddRow(fmt.Sprintf("%d", cap), f3(a.Logic), f3(a.Storage), f3(a.Compressor), f3(a.Total()))
	}
	base := energy.Area(energy.Scheme{Kind: energy.KindBaseline, Entries: BaselineEntries}, BaselineEntries)
	t.AddRow("baseline", f3(base.Logic), f3(base.Storage), "0.000", f3(base.Total()))
	return t, nil
}

// Fig12 reports combined static and average dynamic power versus capacity
// (paper Figure 12), normalized to the baseline RF, using the measured
// suite-average OSU access rate.
func Fig12(s *Suite) (*Table, error) {
	// Measure accesses/cycle at the chosen design point.
	var acc, cyc float64
	for _, bench := range s.benchmarks() {
		r, err := s.Get(bench, SchemeRegLess, DefaultCapacity)
		if err != nil {
			return nil, err
		}
		acc += float64(r.Prov.StructReads + r.Prov.StructWrites)
		cyc += float64(r.Stats.Cycles)
	}
	rate := acc / cyc
	t := &Table{
		ID:     "fig12",
		Title:  "Combined static + dynamic power (normalized to baseline RF)",
		Header: []string{"Capacity", "OSU", "Compressor", "Total"},
	}
	for _, cap := range Capacities {
		osuP := energy.Power(s.Params, energy.Scheme{Kind: energy.KindRegLess, Entries: cap}, rate)
		full := energy.Power(s.Params, energy.Scheme{Kind: energy.KindRegLess, Entries: cap, Compressor: true}, rate)
		t.AddRow(fmt.Sprintf("%d", cap), f3(osuP), f3(full-osuP), f3(full))
	}
	t.Note("measured OSU access rate: %.2f accesses/cycle", rate)
	return t, nil
}

// capacityPoint is one Figure 13 sweep point.
type capacityPoint struct {
	Capacity  int
	RunTime   float64 // geomean normalized to baseline
	GPUEnergy float64 // geomean normalized to baseline
	WorstSlow float64 // worst-case per-benchmark slowdown
}

// sweepCapacities runs the suite at every capacity.
func (s *Suite) sweepCapacities(caps []int) ([]capacityPoint, error) {
	var out []capacityPoint
	for _, cap := range caps {
		var times, energies []float64
		worst := 0.0
		for _, bench := range s.benchmarks() {
			base, err := s.Get(bench, SchemeBaseline, 0)
			if err != nil {
				return nil, err
			}
			rgl, err := s.Get(bench, SchemeRegLess, cap)
			if err != nil {
				return nil, err
			}
			rt := float64(rgl.Stats.Cycles) / float64(base.Stats.Cycles)
			times = append(times, rt)
			if rt > worst {
				worst = rt
			}
			eBase := energy.Compute(s.Params, base.EnergyScheme(), base.Activity()).Total
			eRgl := energy.Compute(s.Params, rgl.EnergyScheme(), rgl.Activity()).Total
			energies = append(energies, eRgl/eBase)
		}
		out = append(out, capacityPoint{
			Capacity:  cap,
			RunTime:   GeoMean(times),
			GPUEnergy: GeoMean(energies),
			WorstSlow: worst,
		})
	}
	return out, nil
}

// fig13Capacities is Figure 13's sweep (the planner declares the same
// points as requirements).
var fig13Capacities = []int{128, 192, 256, 384, 512, 1024}

// Fig13 sweeps run time versus GPU energy across OSU capacities (paper
// Figure 13).
func Fig13(s *Suite) (*Table, error) {
	pts, err := s.sweepCapacities(fig13Capacities)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "fig13",
		Title:  "Run time vs GPU energy across OSU capacities (normalized to baseline)",
		Header: []string{"Capacity", "Run time (geomean)", "GPU energy (geomean)", "Worst-case run time"},
	}
	for _, p := range pts {
		t.AddRow(fmt.Sprintf("%d", p.Capacity), f3(p.RunTime), f3(p.GPUEnergy), f3(p.WorstSlow))
	}
	t.Note("paper: small capacities are energy-Pareto-optimal; 512 chosen for no average performance loss")
	return t, nil
}

// Fig14 reports register-structure energy per benchmark for RFH, RFV, and
// RegLess, normalized to the baseline RF (paper Figure 14).
func Fig14(s *Suite) (*Table, error) {
	t := &Table{
		ID:     "fig14",
		Title:  "Register file energy (normalized to baseline)",
		Header: []string{"Benchmark", "RFH", "RFV", "RegLess"},
	}
	var gH, gV, gR []float64
	for _, bench := range s.benchmarks() {
		base, err := s.Get(bench, SchemeBaseline, 0)
		if err != nil {
			return nil, err
		}
		eBase := energy.Compute(s.Params, base.EnergyScheme(), base.Activity()).RFTotal
		row := []string{bench}
		for _, sch := range []Scheme{SchemeRFH, SchemeRFV, SchemeRegLess} {
			r, err := s.Get(bench, sch, DefaultCapacity)
			if err != nil {
				return nil, err
			}
			e := energy.Compute(s.Params, r.EnergyScheme(), r.Activity()).RFTotal / eBase
			row = append(row, f3(e))
			switch sch {
			case SchemeRFH:
				gH = append(gH, e)
			case SchemeRFV:
				gV = append(gV, e)
			default:
				gR = append(gR, e)
			}
		}
		t.Rows = append(t.Rows, row)
	}
	t.AddRow("GEOMEAN", f3(GeoMean(gH)), f3(GeoMean(gV)), f3(GeoMean(gR)))
	t.Note("paper: RFH 0.380, RFV 0.548, RegLess 0.247 (savings 62.0%%, 45.2%%, 75.3%%)")
	return t, nil
}

// Fig15 reports total GPU energy per benchmark including the No-RF upper
// bound (paper Figure 15).
func Fig15(s *Suite) (*Table, error) {
	t := &Table{
		ID:     "fig15",
		Title:  "Total GPU energy (normalized to baseline)",
		Header: []string{"Benchmark", "No RF", "RFH", "RFV", "RegLess"},
	}
	var gN, gH, gV, gR []float64
	for _, bench := range s.benchmarks() {
		base, err := s.Get(bench, SchemeBaseline, 0)
		if err != nil {
			return nil, err
		}
		eBase := energy.Compute(s.Params, base.EnergyScheme(), base.Activity()).Total
		eNoRF := energy.Compute(s.Params, energy.Scheme{Kind: energy.KindNoRF}, base.Activity()).Total / eBase
		row := []string{bench, f3(eNoRF)}
		gN = append(gN, eNoRF)
		for _, sch := range []Scheme{SchemeRFH, SchemeRFV, SchemeRegLess} {
			r, err := s.Get(bench, sch, DefaultCapacity)
			if err != nil {
				return nil, err
			}
			e := energy.Compute(s.Params, r.EnergyScheme(), r.Activity()).Total / eBase
			row = append(row, f3(e))
			switch sch {
			case SchemeRFH:
				gH = append(gH, e)
			case SchemeRFV:
				gV = append(gV, e)
			default:
				gR = append(gR, e)
			}
		}
		t.Rows = append(t.Rows, row)
	}
	t.AddRow("GEOMEAN", f3(GeoMean(gN)), f3(GeoMean(gH)), f3(GeoMean(gV)), f3(GeoMean(gR)))
	t.Note("paper: No-RF bound 0.833 (16.7%% saving); RegLess 0.89 (11%%), RFV 0.963, RFH 0.971")
	return t, nil
}

// Fig16 reports normalized run time per benchmark for RegLess, with
// geomeans for the no-compressor ablation, RFV, and RFH (paper Figure 16).
func Fig16(s *Suite) (*Table, error) {
	t := &Table{
		ID:     "fig16",
		Title:  "Run time (normalized to baseline; lower is better)",
		Header: []string{"Benchmark", "RegLess"},
	}
	var gR, gNC, gV, gH []float64
	for _, bench := range s.benchmarks() {
		base, err := s.Get(bench, SchemeBaseline, 0)
		if err != nil {
			return nil, err
		}
		rgl, err := s.Get(bench, SchemeRegLess, DefaultCapacity)
		if err != nil {
			return nil, err
		}
		rt := float64(rgl.Stats.Cycles) / float64(base.Stats.Cycles)
		t.AddRow(bench, f3(rt))
		gR = append(gR, rt)

		nc, err := s.Get(bench, SchemeRegLessNC, DefaultCapacity)
		if err != nil {
			return nil, err
		}
		gNC = append(gNC, float64(nc.Stats.Cycles)/float64(base.Stats.Cycles))
		v, err := s.Get(bench, SchemeRFV, 0)
		if err != nil {
			return nil, err
		}
		gV = append(gV, float64(v.Stats.Cycles)/float64(base.Stats.Cycles))
		h, err := s.Get(bench, SchemeRFH, 0)
		if err != nil {
			return nil, err
		}
		gH = append(gH, float64(h.Stats.Cycles)/float64(base.Stats.Cycles))
	}
	t.AddRow("GEOMEAN", f3(GeoMean(gR)))
	t.AddRow("GEOMEAN no-compressor", f3(GeoMean(gNC)))
	t.AddRow("GEOMEAN RFV", f3(GeoMean(gV)))
	t.AddRow("GEOMEAN RFH", f3(GeoMean(gH)))
	t.Note("paper: RegLess geomean 1.00; no-compressor +10.2%%; RFV/RFH slower (2-level scheduler)")
	return t, nil
}

// Fig17 breaks down where register preloads were served from (paper
// Figure 17).
func Fig17(s *Suite) (*Table, error) {
	t := &Table{
		ID:     "fig17",
		Title:  "Register preload sources",
		Header: []string{"Benchmark", "OSU", "Compressor", "L1", "L2/DRAM"},
	}
	var tot, osu, comp, l1, deep uint64
	for _, bench := range s.benchmarks() {
		r, err := s.Get(bench, SchemeRegLess, DefaultCapacity)
		if err != nil {
			return nil, err
		}
		p := r.Prov
		n := p.Preloads()
		if n == 0 {
			t.AddRow(bench, "-", "-", "-", "-")
			continue
		}
		t.AddRow(bench,
			pct(float64(p.PreloadFromOSU)/float64(n)),
			pct(float64(p.PreloadFromCompressor)/float64(n)),
			pct(float64(p.PreloadFromL1)/float64(n)),
			pct(float64(p.PreloadFromL2DRAM)/float64(n)))
		tot += n
		osu += p.PreloadFromOSU
		comp += p.PreloadFromCompressor
		l1 += p.PreloadFromL1
		deep += p.PreloadFromL2DRAM
	}
	if tot > 0 {
		t.AddRow("MEAN", pct(float64(osu)/float64(tot)), pct(float64(comp)/float64(tot)),
			pct(float64(l1)/float64(tot)), pct(float64(deep)/float64(tot)))
	}
	t.Note("paper: 0.9%% of preloads from L1, 0.013%% from L2/DRAM")
	return t, nil
}

// Fig18 reports RegLess's average L1 requests per cycle, split by type
// (paper Figure 18).
func Fig18(s *Suite) (*Table, error) {
	t := &Table{
		ID:     "fig18",
		Title:  "RegLess L1 requests per cycle",
		Header: []string{"Benchmark", "Preloads", "Stores", "Invalidations", "Total"},
	}
	var sumTotal float64
	for _, bench := range s.benchmarks() {
		r, err := s.Get(bench, SchemeRegLess, DefaultCapacity)
		if err != nil {
			return nil, err
		}
		cyc := float64(r.Stats.Cycles)
		pre := float64(r.Prov.L1PreloadReads) / cyc
		st := float64(r.Prov.L1StoreWrites) / cyc
		inv := float64(r.Prov.L1Invalidates) / cyc
		t.AddRow(bench, fmt.Sprintf("%.4f", pre), fmt.Sprintf("%.4f", st),
			fmt.Sprintf("%.4f", inv), fmt.Sprintf("%.4f", pre+st+inv))
		sumTotal += pre + st + inv
	}
	t.AddRow("MEAN", "", "", "", fmt.Sprintf("%.4f", sumTotal/float64(len(s.benchmarks()))))
	t.Note("paper: fewer than 0.02 requests/cycle on average (budget: 1)")
	return t, nil
}

// Fig19 reports per-region preloads and concurrent live registers (paper
// Figure 19).
func Fig19(s *Suite) (*Table, error) {
	t := &Table{
		ID:     "fig19",
		Title:  "Registers per region: preloads, mean and std of concurrent live",
		Header: []string{"Benchmark", "Preloads", "Mean live", "Std dev"},
	}
	for _, bench := range s.benchmarks() {
		r, err := s.Get(bench, SchemeRegLess, DefaultCapacity)
		if err != nil {
			return nil, err
		}
		_, preloads, meanLive, stdLive := r.RegLess.DynamicRegionStats()
		t.AddRow(bench, f1(preloads), f1(meanLive), f1(stdLive))
	}
	t.Note("execution-weighted, as in the paper; live registers consistently exceed preloads — most lifetimes are interior")
	return t, nil
}

// Table2 reports static instructions per region and dynamic cycles per
// region (paper Table 2).
func Table2(s *Suite) (*Table, error) {
	t := &Table{
		ID:     "table2",
		Title:  "Average instructions per region and cycles per region",
		Header: []string{"Benchmark", "Insns/region", "Cycles/region"},
	}
	for _, bench := range s.benchmarks() {
		r, err := s.Get(bench, SchemeRegLess, DefaultCapacity)
		if err != nil {
			return nil, err
		}
		insns, _, _, _ := r.RegLess.DynamicRegionStats()
		cpr := 0.0
		if r.Prov.RegionActivations > 0 {
			cpr = float64(r.Prov.RegionCycles) / float64(r.Prov.RegionActivations)
		}
		t.AddRow(bench, f1(insns), f1(cpr))
	}
	t.Note("paper range: 3.3-16.0 insns/region, 16-1601 cycles/region")
	return t, nil
}

// All and ByID live in plan.go: they drive the run planner before
// assembling tables.
