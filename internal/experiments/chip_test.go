package experiments

import (
	"context"
	"reflect"
	"testing"
)

// chipOpts is a small chip configuration the differential tests share.
func chipOpts(sms int) Options {
	return Options{
		Warps:      8,
		Benchmarks: []string{"bfs"},
		MaxCycles:  20_000_000,
		SMs:        sms,
	}
}

// TestSMs1TakesClassicPath guards the golden gate: Opts.SMs values 0 and
// 1 must both take the untouched single-SM path and render byte-identical
// tables (the multi-SM machinery may only engage at SMs > 1).
func TestSMs1TakesClassicPath(t *testing.T) {
	run, ok := ByID("fig14")
	if !ok {
		t.Fatal("fig14 not registered")
	}
	opts0 := chipOpts(0)
	opts0.Benchmarks = []string{"bfs", "hotspot"}
	opts1 := opts0
	opts1.SMs = 1
	tb0, err := run(NewSuite(opts0))
	if err != nil {
		t.Fatal(err)
	}
	tb1, err := run(NewSuite(opts1))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(tb0, tb1) {
		t.Fatalf("-sms 1 diverged from the classic path:\n%v\nvs\n%v", tb0, tb1)
	}
}

// TestChipFFParity checks that the coordinated chip fast-forward is pure
// elision at -sms 4: stepping every cycle and jumping frozen spans must
// produce identical cycles, instructions, and memory traffic.
func TestChipFFParity(t *testing.T) {
	ff := NewSuite(chipOpts(4))
	stepped := NewSuite(chipOpts(4))
	stepped.Opts.NoFastForward = true

	for _, scheme := range []Scheme{SchemeBaseline, SchemeRegLess} {
		cap := 0
		if scheme == SchemeRegLess {
			cap = DefaultCapacity
		}
		a, err := ff.simulateChip(context.Background(), "bfs", scheme, cap)
		if err != nil {
			t.Fatal(err)
		}
		b, err := stepped.simulateChip(context.Background(), "bfs", scheme, cap)
		if err != nil {
			t.Fatal(err)
		}
		if a.Chip.FFJumps == 0 {
			t.Fatalf("%s: chip fast-forward never engaged", scheme)
		}
		if a.Stats.Cycles != b.Stats.Cycles || a.Stats.DynInsns != b.Stats.DynInsns {
			t.Fatalf("%s: FF on %d cycles/%d insns vs off %d/%d", scheme,
				a.Stats.Cycles, a.Stats.DynInsns, b.Stats.Cycles, b.Stats.DynInsns)
		}
		if a.Chip.L2 != b.Chip.L2 {
			t.Fatalf("%s: L2 traffic diverges under FF:\n%+v\nvs\n%+v", scheme, a.Chip.L2, b.Chip.L2)
		}
		for i := range a.Chip.PerSM {
			if a.Chip.PerSM[i].Cycles != b.Chip.PerSM[i].Cycles {
				t.Fatalf("%s: SM %d cycles %d vs %d", scheme, i,
					a.Chip.PerSM[i].Cycles, b.Chip.PerSM[i].Cycles)
			}
		}
	}
}

// TestChipDeterminism16 runs the same 16-SM chip twice from fresh state
// and requires bit-identical results: cycles, per-SM stats, chip L2 and
// DRAM counters.
func TestChipDeterminism16(t *testing.T) {
	a, err := NewSuite(chipOpts(16)).simulateChip(context.Background(), "bfs", SchemeRegLess, DefaultCapacity)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewSuite(chipOpts(16)).simulateChip(context.Background(), "bfs", SchemeRegLess, DefaultCapacity)
	if err != nil {
		t.Fatal(err)
	}
	if a.Chip.Cycles != b.Chip.Cycles {
		t.Fatalf("cycles %d vs %d", a.Chip.Cycles, b.Chip.Cycles)
	}
	if a.Chip.L2 != b.Chip.L2 {
		t.Fatalf("L2 stats diverge:\n%+v\nvs\n%+v", a.Chip.L2, b.Chip.L2)
	}
	if !reflect.DeepEqual(a.Stats, b.Stats) {
		t.Fatalf("merged stats diverge:\n%+v\nvs\n%+v", a.Stats, b.Stats)
	}
	if !reflect.DeepEqual(a.Mem, b.Mem) {
		t.Fatalf("mem stats diverge:\n%+v\nvs\n%+v", a.Mem, b.Mem)
	}
}
