package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/gpu"
	"repro/internal/isa"
	"repro/internal/kernels"
	"repro/internal/rf"
	"repro/internal/sim"
)

// GPUScale (extension beyond the paper's per-SM evaluation) runs the full
// multi-SM chip — private L1s and RegLess shards per SM, one shared 2 MB
// L2 and DRAM interface — and checks that RegLess's per-SM conclusions
// survive chip-level memory contention.
func GPUScale(s *Suite) (*Table, error) {
	t := &Table{
		ID:    "gpuscale",
		Title: "Multi-SM scaling: RegLess vs baseline at chip level",
		Header: []string{"Benchmark", "SMs", "Baseline cycles", "RegLess cycles",
			"Run time", "DRAM accesses (base/rgls)"},
	}
	benches := s.benchmarks()
	if len(benches) > 4 {
		benches = benches[:4]
	}
	smCounts := []int{1, 4, 8}
	// Each cell of the (benchmark x SM-count x scheme) matrix is an
	// independent chip simulation; fan them out on the worker pool and
	// assemble rows in order afterwards.
	type cell struct {
		base, rgls *gpu.Result
	}
	cells := make([]cell, len(benches)*len(smCounts))
	err := s.forEach(2*len(cells), func(i int) error {
		ci := i / 2
		bench := benches[ci/len(smCounts)]
		sms := smCounts[ci%len(smCounts)]
		k, err := kernels.Load(bench)
		if err != nil {
			return err
		}
		cfg := gpu.DefaultConfig()
		cfg.SMs = sms
		cfg.SM.Warps = s.Opts.Warps
		cfg.SM.MaxCycles = s.Opts.MaxCycles
		if i%2 == 0 {
			base, err := runChip(cfg, k, func(int) (sim.Provider, error) {
				return rf.NewBaseline(), nil
			})
			if err != nil {
				return fmt.Errorf("%s/%d SMs baseline: %w", bench, sms, err)
			}
			cells[ci].base = base
			return nil
		}
		rgls, err := runChip(cfg, k, func(i int) (sim.Provider, error) {
			c := core.ConfigForCapacity(DefaultCapacity)
			c.AddrOffset = uint32(i) << 24
			return core.New(c, k)
		})
		if err != nil {
			return fmt.Errorf("%s/%d SMs regless: %w", bench, sms, err)
		}
		cells[ci].rgls = rgls
		return nil
	})
	if err != nil {
		return nil, err
	}
	for ci, c := range cells {
		bench := benches[ci/len(smCounts)]
		sms := smCounts[ci%len(smCounts)]
		t.AddRow(bench, fmt.Sprintf("%d", sms),
			fmt.Sprintf("%d", c.base.Cycles), fmt.Sprintf("%d", c.rgls.Cycles),
			f3(float64(c.rgls.Cycles)/float64(c.base.Cycles)),
			fmt.Sprintf("%d/%d", c.base.DRAMAccesses, c.rgls.DRAMAccesses))
	}
	t.Note("extension: the paper evaluates per-SM; this checks the shared-L2 chip")
	return t, nil
}

func runChip(cfg gpu.Config, k *isa.Kernel, factory gpu.ProviderFactory) (*gpu.Result, error) {
	g, err := gpu.New(cfg, k, factory, exec.NewMemory(nil))
	if err != nil {
		return nil, err
	}
	return g.Run()
}
