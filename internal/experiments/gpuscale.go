package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/gpu"
	"repro/internal/isa"
	"repro/internal/kernels"
	"repro/internal/launch"
	"repro/internal/mem"
	"repro/internal/rf"
	"repro/internal/sim"
)

// gpuScaleSMs is the chip sizes the scaling table sweeps (the GTX 980
// tops out at 16).
var gpuScaleSMs = []int{1, 4, 8, 16}

// GPUScale (extension beyond the paper's per-SM evaluation) is the
// strong-scaling table: a fixed grid of 16 x Warps warps — the 16-SM
// chip's single occupancy wave — is distributed across 1/4/8/16 SMs by
// the launch block scheduler, every configuration contending for the
// same banked 2 MB L2 and DRAM budget. Fewer SMs run the same work in
// more sequential waves; more SMs trade waves for bank-port, MSHR, and
// DRAM-bandwidth contention. The table reports where RegLess's staging
// traffic makes that trade differently from the baseline RF.
func GPUScale(s *Suite) (*Table, error) {
	t := &Table{
		ID:    "gpuscale",
		Title: "Multi-SM strong scaling: RegLess vs baseline on the banked L2 chip",
		Header: []string{"Benchmark", "SMs", "Baseline cycles", "RegLess cycles",
			"Run time", "L2 hit% (base/rgls)", "DRAM (base/rgls)", "Port-q cyc (base/rgls)"},
	}
	benches := s.benchmarks()
	if s.Opts.SMs <= 1 && len(benches) > 6 {
		// The full 21-benchmark sweep is the -sms mode's job; the default
		// single-SM invocation keeps the extension table affordable.
		benches = benches[:6]
	}
	totalWarps := 16 * s.Opts.Warps
	type cell struct {
		base, rgls *launch.GridResult
	}
	cells := make([]cell, len(benches)*len(gpuScaleSMs))
	err := s.forEach(2*len(cells), func(i int) error {
		ci := i / 2
		bench := benches[ci/len(gpuScaleSMs)]
		sms := gpuScaleSMs[ci%len(gpuScaleSMs)]
		k, err := kernels.Load(bench)
		if err != nil {
			return err
		}
		if i%2 == 0 {
			res, err := runGrid(s, k, totalWarps, sms, func(sm, wave int) (sim.Provider, error) {
				return rf.NewBaseline(), nil
			})
			if err != nil {
				return fmt.Errorf("%s/%d SMs baseline: %w", bench, sms, err)
			}
			cells[ci].base = res
			return nil
		}
		res, err := runGrid(s, k, totalWarps, sms, func(sm, wave int) (sim.Provider, error) {
			c := core.ConfigForCapacity(DefaultCapacity)
			c.AddrOffset = regLessSMOffset(sm)
			return core.New(c, k)
		})
		if err != nil {
			return fmt.Errorf("%s/%d SMs regless: %w", bench, sms, err)
		}
		cells[ci].rgls = res
		return nil
	})
	if err != nil {
		return nil, err
	}
	hitPct := func(st mem.BankedL2Stats) float64 {
		if st.Hits+st.Misses == 0 {
			return 0
		}
		return 100 * float64(st.Hits) / float64(st.Hits+st.Misses)
	}
	for ci, c := range cells {
		bench := benches[ci/len(gpuScaleSMs)]
		sms := gpuScaleSMs[ci%len(gpuScaleSMs)]
		t.AddRow(bench, fmt.Sprintf("%d", sms),
			fmt.Sprintf("%d", c.base.Cycles), fmt.Sprintf("%d", c.rgls.Cycles),
			f3(float64(c.rgls.Cycles)/float64(c.base.Cycles)),
			fmt.Sprintf("%.1f/%.1f", hitPct(c.base.L2), hitPct(c.rgls.L2)),
			fmt.Sprintf("%d/%d", c.base.L2.DRAMAccesses, c.rgls.L2.DRAMAccesses),
			fmt.Sprintf("%d/%d", c.base.L2.PortQueueCycles, c.rgls.L2.PortQueueCycles))
	}
	t.Note("extension: fixed grid of 16xWarps warps, waves x SMs swept; contention = bank ports + MSHRs + DRAM budget")
	return t, nil
}

// runGrid launches the fixed grid on an sms-SM chip at suite scale.
func runGrid(s *Suite, k *isa.Kernel, totalWarps, sms int, factory launch.GridFactory) (*launch.GridResult, error) {
	cfg := sim.DefaultConfig()
	cfg.Warps = s.Opts.Warps
	cfg.MaxCycles = s.Opts.MaxCycles
	cfg.NoFastForward = s.Opts.NoFastForward
	return launch.RunGrid(k, totalWarps, s.Opts.Warps, sms, cfg,
		mem.DefaultBankedL2Config(), factory, nil)
}

// runChip runs one single-wave chip (all warps resident) — the
// co-residency experiment's building block.
func runChip(cfg gpu.Config, k *isa.Kernel, factory gpu.ProviderFactory) (*gpu.Result, error) {
	g, err := gpu.New(cfg, k, factory, nil)
	if err != nil {
		return nil, err
	}
	return g.Run()
}
