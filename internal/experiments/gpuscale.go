package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/gpu"
	"repro/internal/isa"
	"repro/internal/kernels"
	"repro/internal/rf"
	"repro/internal/sim"
)

// GPUScale (extension beyond the paper's per-SM evaluation) runs the full
// multi-SM chip — private L1s and RegLess shards per SM, one shared 2 MB
// L2 and DRAM interface — and checks that RegLess's per-SM conclusions
// survive chip-level memory contention.
func GPUScale(s *Suite) (*Table, error) {
	t := &Table{
		ID:    "gpuscale",
		Title: "Multi-SM scaling: RegLess vs baseline at chip level",
		Header: []string{"Benchmark", "SMs", "Baseline cycles", "RegLess cycles",
			"Run time", "DRAM accesses (base/rgls)"},
	}
	benches := s.benchmarks()
	if len(benches) > 4 {
		benches = benches[:4]
	}
	for _, bench := range benches {
		k, err := kernels.Load(bench)
		if err != nil {
			return nil, err
		}
		for _, sms := range []int{1, 4, 8} {
			cfg := gpu.DefaultConfig()
			cfg.SMs = sms
			cfg.SM.Warps = s.Opts.Warps
			cfg.SM.MaxCycles = s.Opts.MaxCycles

			base, err := runChip(cfg, k, func(int) (sim.Provider, error) {
				return rf.NewBaseline(), nil
			})
			if err != nil {
				return nil, fmt.Errorf("%s/%d SMs baseline: %w", bench, sms, err)
			}
			rgls, err := runChip(cfg, k, func(i int) (sim.Provider, error) {
				c := core.ConfigForCapacity(DefaultCapacity)
				c.AddrOffset = uint32(i) << 24
				return core.New(c, k)
			})
			if err != nil {
				return nil, fmt.Errorf("%s/%d SMs regless: %w", bench, sms, err)
			}
			t.AddRow(bench, fmt.Sprintf("%d", sms),
				fmt.Sprintf("%d", base.Cycles), fmt.Sprintf("%d", rgls.Cycles),
				f3(float64(rgls.Cycles)/float64(base.Cycles)),
				fmt.Sprintf("%d/%d", base.DRAMAccesses, rgls.DRAMAccesses))
		}
	}
	t.Note("extension: the paper evaluates per-SM; this checks the shared-L2 chip")
	return t, nil
}

func runChip(cfg gpu.Config, k *isa.Kernel, factory gpu.ProviderFactory) (*gpu.Result, error) {
	g, err := gpu.New(cfg, k, factory, exec.NewMemory(nil))
	if err != nil {
		return nil, err
	}
	return g.Run()
}
