package experiments

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"repro/internal/exec"
	"repro/internal/faults"
	"repro/internal/kernels"
	"repro/internal/sanitizer"
)

// matrixOutcome is one fault-injected run's classification.
type matrixOutcome struct {
	diag     *sanitizer.Diagnostic // nil when the run completed
	panicked any                   // recovered value, nil when none
	stores   map[uint32]uint32     // final global stores when completed
}

// runFaulted executes one fault-injected, sanitized simulation of `bench`
// and classifies the result. Panics are recovered and reported as matrix
// failures rather than crashing the test binary, because the robustness
// contract is precisely "never a raw panic".
func runFaulted(t *testing.T, bench string, scheme Scheme, spec string) (out matrixOutcome) {
	t.Helper()
	plan, err := faults.Parse(spec)
	if err != nil {
		t.Fatalf("Parse(%q) = %v", spec, err)
	}
	mm := exec.NewMemory(nil)
	defer func() {
		if r := recover(); r != nil {
			out.panicked = r
		}
	}()
	smv, _, err := BuildSM(bench, scheme, SimSetup{
		Capacity:  DefaultCapacity,
		Warps:     8,
		MaxCycles: 2_000_000,
		Watchdog:  20_000,
		Sanitize:  true,
		Faults:    plan,
		Memory:    mm,
	})
	if err != nil {
		t.Fatalf("BuildSM: %v", err)
	}
	if _, err := smv.Run(); err != nil {
		var d *sanitizer.Diagnostic
		if !errors.As(err, &d) {
			t.Fatalf("%s/%s/%s: abnormal exit is not a Diagnostic: %v", bench, scheme, spec, err)
		}
		out.diag = d
		return out
	}
	out.stores = mm.GlobalStores()
	return out
}

// refStores computes the functional reference output for a benchmark.
func refStores(t *testing.T, bench string, warps int) map[uint32]uint32 {
	t.Helper()
	k, err := kernels.Load(bench)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := exec.Run(k, warps, exec.NewMemory(nil))
	if err != nil {
		t.Fatal(err)
	}
	return ref.Stores
}

func sameStores(a, b map[uint32]uint32) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

// TestFaultMatrixToleratedOrDetected is the robustness contract's proof:
// every fault class, injected into both a baseline and a RegLess
// simulation, either leaves the functional output byte-identical to the
// fault-free reference (tolerated) or aborts with a structured diagnostic
// naming the faulted component (detected) — never a hang (the watchdog
// bounds livelocks far below MaxCycles), never a raw panic.
func TestFaultMatrixToleratedOrDetected(t *testing.T) {
	const bench = "nw"
	ref := refStores(t, bench, 8)
	for _, scheme := range []Scheme{SchemeBaseline, SchemeRegLess} {
		for _, class := range faults.Classes() {
			// Cycle 200 lands mid-run (nw at 8 warps finishes in ~1100
			// cycles), so runtime corruption points have live targets.
			spec := fmt.Sprintf("%s@200; seed=3", class)
			t.Run(fmt.Sprintf("%s/%s", scheme, class), func(t *testing.T) {
				out := runFaulted(t, bench, scheme, spec)
				switch {
				case out.panicked != nil:
					t.Fatalf("raw panic: %v", out.panicked)
				case out.diag != nil:
					d := out.diag
					if d.Component == "" || d.Violation == "" {
						t.Fatalf("diagnostic names no component: %+v", d)
					}
					if d.Component == "sim/maxcycles" {
						t.Fatalf("run hung until MaxCycles; watchdog/sanitizer never fired: %s", d.Error())
					}
					t.Logf("detected by %s: %s", d.Component, d.Violation)
				default:
					if !sameStores(out.stores, ref) {
						t.Fatalf("fault silently corrupted output: %d stores vs %d reference",
							len(out.stores), len(ref))
					}
					t.Log("tolerated: output identical to fault-free reference")
				}
			})
		}
	}
}

// TestFaultMatrixDetectionPaths pins the expected detector for the
// classes whose corruption must not be silently absorbed: a dropped
// memory response trips the forward-progress watchdog, a corrupted OSU
// tag trips the OSU partition invariant, and a leaked erase annotation
// trips the drain check at region exit.
func TestFaultMatrixDetectionPaths(t *testing.T) {
	cases := []struct {
		scheme    Scheme
		spec      string
		component string // prefix match
	}{
		// nw's loads cluster at the start of the run; a drop armed from
		// cycle 0 hits a load response some warp depends on (later drops
		// land on end-of-run store acks nobody waits for — tolerated).
		{SchemeBaseline, "mem-drop@0; seed=3", "sim/watchdog"},
		{SchemeRegLess, "mem-drop@0; seed=3", "sim/watchdog"},
		{SchemeRegLess, "osu-tag@200; seed=3", "osu/"},
		// Region 0 is interior (drains mid-run); a leak in the exit
		// region would be absorbed by the warp-exit cleanup instead.
		{SchemeRegLess, "meta-erase:region=0; seed=3", "core/"},
	}
	for _, c := range cases {
		t.Run(fmt.Sprintf("%s/%s", c.scheme, c.spec), func(t *testing.T) {
			out := runFaulted(t, "nw", c.scheme, c.spec)
			if out.panicked != nil {
				t.Fatalf("raw panic: %v", out.panicked)
			}
			if out.diag == nil {
				t.Fatal("fault was not detected")
			}
			if !strings.HasPrefix(out.diag.Component, c.component) {
				t.Fatalf("detected by %q (%s), want component %q*",
					out.diag.Component, out.diag.Violation, c.component)
			}
			if len(out.diag.FaultsApplied) == 0 {
				t.Error("bundle does not list the applied fault")
			}
			if len(out.diag.Warps) == 0 || len(out.diag.Metrics) == 0 {
				t.Error("bundle missing warp states or metrics snapshot")
			}
		})
	}
}

// TestFaultClassesTolerated pins the classes that must be absorbed
// without any functional effect: a delayed memory response and a flipped
// compressor pattern bit perturb timing only.
func TestFaultClassesTolerated(t *testing.T) {
	ref := refStores(t, "nw", 8)
	cases := []struct {
		scheme Scheme
		spec   string
	}{
		{SchemeBaseline, "mem-delay@200:delay=500; seed=3"},
		{SchemeRegLess, "mem-delay@200:delay=500; seed=3"},
		{SchemeRegLess, "compress-pattern@200; seed=3"},
	}
	for _, c := range cases {
		t.Run(fmt.Sprintf("%s/%s", c.scheme, c.spec), func(t *testing.T) {
			out := runFaulted(t, "nw", c.scheme, c.spec)
			if out.panicked != nil {
				t.Fatalf("raw panic: %v", out.panicked)
			}
			if out.diag != nil {
				t.Fatalf("tolerable fault was flagged: %s", out.diag.Error())
			}
			if !sameStores(out.stores, ref) {
				t.Fatal("tolerable fault changed the functional output")
			}
		})
	}
}

// TestSanitizedSuiteMatchesPlain: a sanitized, fault-free run must
// produce the same cycle count and output as the plain run — the checker
// observes, never perturbs.
func TestSanitizedSuiteMatchesPlain(t *testing.T) {
	for _, scheme := range []Scheme{SchemeBaseline, SchemeRegLess} {
		build := func(sanitize bool) (uint64, map[uint32]uint32) {
			mm := exec.NewMemory(nil)
			smv, _, err := BuildSM("nw", scheme, SimSetup{
				Capacity: DefaultCapacity, Warps: 8, MaxCycles: 2_000_000,
				Sanitize: sanitize, Memory: mm,
			})
			if err != nil {
				t.Fatal(err)
			}
			st, err := smv.Run()
			if err != nil {
				t.Fatal(err)
			}
			return st.Cycles, mm.GlobalStores()
		}
		plainCycles, plainStores := build(false)
		sanCycles, sanStores := build(true)
		if plainCycles != sanCycles {
			t.Errorf("%s: sanitizer changed timing: %d vs %d cycles", scheme, plainCycles, sanCycles)
		}
		if !sameStores(plainStores, sanStores) {
			t.Errorf("%s: sanitizer changed output", scheme)
		}
	}
}
