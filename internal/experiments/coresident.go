package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/gpu"
	"repro/internal/kernels"
	"repro/internal/rf"
	"repro/internal/sim"
)

// coResidentPairs is the kernel pairings the interference table runs:
// a bandwidth-hungry kernel against a compute-leaning one, plus a
// same-kernel pairing (the worst case for L2 set conflicts, since the
// working sets are congruent).
var coResidentPairs = [][2]string{
	{"bfs", "hotspot"},
	{"streamcluster", "nw"},
	{"bfs", "bfs"},
}

// coResidentBias is the L2 address bias separating the second slot's
// congruent virtual layout from the first's (the top half of the
// 32-bit space; no legitimate address reaches it unbiased).
const coResidentBias uint32 = 0x8000_0000

// CoResident (extension) is the multi-kernel co-residency table: two
// kernels split the chip's SMs and contend for the banked L2 and DRAM
// budget. Each pairing is measured three ways — each kernel alone on
// its half of the chip (the isolation baseline; the other half idle),
// then both together — and the table reports the co-residency slowdown
// each kernel suffers, per scheme. RegLess adds register-staging
// traffic to the shared level, so its interference profile is the
// experiment's point.
func CoResident(s *Suite) (*Table, error) {
	t := &Table{
		ID:    "coresident",
		Title: "Multi-kernel co-residency: shared-L2 interference",
		Header: []string{"Pair", "Scheme", "Iso cycles (A/B)", "Co cycles (A/B)",
			"Slowdown A", "Slowdown B", "L2 hit% (iso A/co)"},
	}
	sms := s.Opts.SMs
	if sms < 2 {
		sms = 8
	}
	half := sms / 2
	schemes := []Scheme{SchemeBaseline, SchemeRegLess}
	type cell struct {
		isoA, isoB uint64
		co         *gpu.Result
		isoAL2Hit  float64
	}
	cells := make([]cell, len(coResidentPairs)*len(schemes))
	err := s.forEach(len(cells), func(i int) error {
		pair := coResidentPairs[i/len(schemes)]
		scheme := schemes[i%len(schemes)]
		cfg := gpu.DefaultConfig()
		cfg.SMs = half
		cfg.SM.Warps = s.Opts.Warps
		cfg.SM.MaxCycles = s.Opts.MaxCycles
		cfg.SM.NoFastForward = s.Opts.NoFastForward

		slot := func(bench string, bias uint32) (gpu.KernelSlot, error) {
			k, err := kernels.Load(bench)
			if err != nil {
				return gpu.KernelSlot{}, err
			}
			factory := func(int) (sim.Provider, error) { return nil, nil }
			switch scheme {
			case SchemeBaseline:
				factory = baselineChipFactory()
			case SchemeRegLess:
				factory = func(smi int) (sim.Provider, error) {
					c := core.ConfigForCapacity(DefaultCapacity)
					c.AddrOffset = regLessSMOffset(smi)
					return core.New(c, k)
				}
			}
			return gpu.KernelSlot{K: k, SMs: half, Factory: factory, AddrBias: bias}, nil
		}

		iso := func(bench string) (*gpu.Result, error) {
			sl, err := slot(bench, 0)
			if err != nil {
				return nil, err
			}
			g, err := gpu.NewCoResident(cfg, []gpu.KernelSlot{sl})
			if err != nil {
				return nil, err
			}
			return g.Run()
		}
		resA, err := iso(pair[0])
		if err != nil {
			return fmt.Errorf("%s iso %s: %w", pair[0], scheme, err)
		}
		resB, err := iso(pair[1])
		if err != nil {
			return fmt.Errorf("%s iso %s: %w", pair[1], scheme, err)
		}
		slA, err := slot(pair[0], 0)
		if err != nil {
			return err
		}
		slB, err := slot(pair[1], coResidentBias)
		if err != nil {
			return err
		}
		co, err := gpu.NewCoResident(cfg, []gpu.KernelSlot{slA, slB})
		if err != nil {
			return err
		}
		cores, err := co.Run()
		if err != nil {
			return fmt.Errorf("%s+%s co %s: %w", pair[0], pair[1], scheme, err)
		}
		c := &cells[i]
		c.isoA, c.isoB, c.co = resA.KernelCycles[0], resB.KernelCycles[0], cores
		if tot := resA.L2.Hits + resA.L2.Misses; tot > 0 {
			c.isoAL2Hit = 100 * float64(resA.L2.Hits) / float64(tot)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	for i, c := range cells {
		pair := coResidentPairs[i/len(schemes)]
		scheme := schemes[i%len(schemes)]
		coHit := 0.0
		if tot := c.co.L2.Hits + c.co.L2.Misses; tot > 0 {
			coHit = 100 * float64(c.co.L2.Hits) / float64(tot)
		}
		t.AddRow(fmt.Sprintf("%s+%s", pair[0], pair[1]), string(scheme),
			fmt.Sprintf("%d/%d", c.isoA, c.isoB),
			fmt.Sprintf("%d/%d", c.co.KernelCycles[0], c.co.KernelCycles[1]),
			f3(float64(c.co.KernelCycles[0])/float64(c.isoA)),
			f3(float64(c.co.KernelCycles[1])/float64(c.isoB)),
			fmt.Sprintf("%.1f/%.1f", c.isoAL2Hit, coHit))
	}
	t.Note(fmt.Sprintf("extension: %d SMs per kernel on a %d-SM chip; slowdown = co-resident / isolated cycles", half, sms))
	return t, nil
}

// baselineChipFactory builds baseline-RF providers for every SM.
func baselineChipFactory() gpu.ProviderFactory {
	return func(int) (sim.Provider, error) { return rf.NewBaseline(), nil }
}
