package experiments

import (
	"strings"
	"testing"
)

func extSuite() *Suite {
	s := NewSuite(Options{
		Warps:      16,
		Benchmarks: []string{"bfs", "hotspot", "dwt2d"},
		MaxCycles:  20_000_000,
	})
	return s
}

func TestAblations(t *testing.T) {
	s := extSuite()
	tb, err := Ablations(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != len(ablationVariants()) {
		t.Fatalf("rows = %d, want %d", len(tb.Rows), len(ablationVariants()))
	}
	// The paper-design row is the normalization point.
	var base float64
	if _, err := fmtSscan(tb.Rows[0][1], &base); err != nil {
		t.Fatal(err)
	}
	if base != 1.0 {
		t.Fatalf("paper design row = %v, want 1.000", base)
	}
	// FIFO stack must reduce staged-preload hits versus LIFO (the
	// paper's §5.1 motivation for the warp stack).
	var lifoHit, fifoHit float64
	fmtSscan(strings.TrimSuffix(tb.Rows[0][2], "%"), &lifoHit)
	for _, row := range tb.Rows {
		if row[0] == "FIFO warp stack" {
			fmtSscan(strings.TrimSuffix(row[2], "%"), &fifoHit)
		}
	}
	if fifoHit >= lifoHit {
		t.Fatalf("FIFO staged hits %.1f%% not below LIFO %.1f%%", fifoHit, lifoHit)
	}
}

func TestGPUScale(t *testing.T) {
	s := extSuite()
	s.Opts.Benchmarks = []string{"bfs"}
	s.Opts.Warps = 8
	tb, err := GPUScale(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 4 { // 1 benchmark x 4 SM counts (1/4/8/16)
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	// RegLess must stay within a sane factor of baseline at every scale.
	for _, row := range tb.Rows {
		var ratio float64
		if _, err := fmtSscan(row[4], &ratio); err != nil {
			t.Fatal(err)
		}
		if ratio > 1.5 {
			t.Fatalf("%v: chip-level RegLess ratio %v", row, ratio)
		}
	}
	// Strong scaling: the same fixed grid must finish faster on 16 SMs
	// than serialized through 1 (contention cannot eat a 16x width win).
	var one, sixteen float64
	if _, err := fmtSscan(tb.Rows[0][2], &one); err != nil {
		t.Fatal(err)
	}
	if _, err := fmtSscan(tb.Rows[3][2], &sixteen); err != nil {
		t.Fatal(err)
	}
	if sixteen >= one {
		t.Fatalf("no strong scaling: 1 SM %.0f cycles vs 16 SMs %.0f", one, sixteen)
	}
}

func TestOversubscription(t *testing.T) {
	s := extSuite()
	s.Opts.Warps = 64
	tb, err := Oversubscription(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 2 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	var speedup float64
	if _, err := fmtSscan(tb.Rows[1][4], &speedup); err != nil {
		t.Fatal(err)
	}
	// RegLess runs the same grid in fewer waves; it must win.
	if speedup <= 1.0 {
		t.Fatalf("oversubscription speedup %v — RegLess did not win", speedup)
	}
}

func TestEnergyBreakdown(t *testing.T) {
	s := extSuite()
	tb, err := EnergyBreakdown(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != len(s.Opts.Benchmarks) {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	// Shares must sum to ~100%.
	for _, row := range tb.Rows {
		var sum float64
		for _, cell := range row[1:5] {
			var v float64
			fmtSscan(strings.TrimSuffix(cell, "%"), &v)
			sum += v
		}
		if sum < 99 || sum > 101 {
			t.Fatalf("%s: shares sum to %.1f%%", row[0], sum)
		}
	}
}

func TestSensitivity(t *testing.T) {
	s := extSuite()
	tb, err := Sensitivity(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) < 6 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	// Under every perturbation the qualitative conclusion must hold:
	// RegLess RF energy well below baseline, GPU energy below baseline,
	// and above the No-RF bound.
	for _, row := range tb.Rows {
		var rf, gpu, bound float64
		fmtSscan(row[1], &rf)
		fmtSscan(row[2], &gpu)
		fmtSscan(row[3], &bound)
		if rf >= 0.6 {
			t.Fatalf("%s: RF ratio %v not well below 1", row[0], rf)
		}
		if gpu >= 1.0 || gpu <= bound {
			t.Fatalf("%s: GPU ratio %v outside (bound %v, 1)", row[0], gpu, bound)
		}
	}
}
