package experiments

import (
	"fmt"

	"repro/internal/energy"
)

// Sensitivity (extension) perturbs the energy model's free constants and
// recomputes the headline results, showing the paper-shape conclusions are
// not artifacts of one calibration: RegLess's register-energy ratio moves
// little (it is dominated by the capacity ratio), while the GPU-level
// saving scales with the assumed register-file share, bracketing the
// paper's 11%.
func Sensitivity(s *Suite) (*Table, error) {
	type variant struct {
		name   string
		mutate func(*energy.Params)
	}
	variants := []variant{
		{"calibrated", func(*energy.Params) {}},
		{"RF access +50%", func(p *energy.Params) { p.RFAccessFull *= 1.5 }},
		{"RF access -33%", func(p *energy.Params) { p.RFAccessFull /= 1.5 }},
		{"RF static +50%", func(p *energy.Params) { p.RFStaticFull *= 1.5 }},
		{"GPU static +50%", func(p *energy.Params) { p.GPUStatic *= 1.5 }},
		{"GPU static -33%", func(p *energy.Params) { p.GPUStatic /= 1.5 }},
		{"memory energy x2", func(p *energy.Params) {
			p.L1Access *= 2
			p.L2Access *= 2
			p.DRAMAccess *= 2
		}},
		{"tag overhead x3", func(p *energy.Params) {
			p.TagAccess *= 3
			p.TagLookup *= 3
		}},
	}

	t := &Table{
		ID:    "sensitivity",
		Title: "Energy-model sensitivity: headline ratios under perturbed constants",
		Header: []string{"Variant", "RF energy (RegLess/base)", "GPU energy (RegLess/base)",
			"No-RF bound"},
	}
	for _, v := range variants {
		params := energy.DefaultParams()
		v.mutate(&params)
		var rfR, gpuR, bound []float64
		for _, bench := range s.benchmarks() {
			base, err := s.Get(bench, SchemeBaseline, 0)
			if err != nil {
				return nil, err
			}
			rgl, err := s.Get(bench, SchemeRegLess, DefaultCapacity)
			if err != nil {
				return nil, err
			}
			bb := energy.Compute(params, base.EnergyScheme(), base.Activity())
			rb := energy.Compute(params, rgl.EnergyScheme(), rgl.Activity())
			nb := energy.Compute(params, energy.Scheme{Kind: energy.KindNoRF}, base.Activity())
			if bb.RFTotal > 0 {
				rfR = append(rfR, rb.RFTotal/bb.RFTotal)
			}
			gpuR = append(gpuR, rb.Total/bb.Total)
			bound = append(bound, nb.Total/bb.Total)
		}
		t.AddRow(v.name, f3(GeoMean(rfR)), f3(GeoMean(gpuR)), f3(GeoMean(bound)))
	}
	t.Note(fmt.Sprintf("geomeans over %d benchmarks; simulations are shared, only the model constants change",
		len(s.benchmarks())))
	return t, nil
}
