package experiments

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/faults"
)

func cancelOpts() Options {
	// Every repo benchmark finishes in a few thousand cycles — fewer loop
	// iterations than one cancellation-poll interval — so these tests
	// stretch the run deterministically: a mem-delay fault parks one
	// response for 800k cycles (under the 1M watchdog), and NoFastForward
	// keeps the loop stepping through the idle span (fault injection
	// disables the event-wheel skip anyway), guaranteeing ~100 context
	// polls per run while a full run still completes in well under a
	// second.
	plan, err := faults.Parse("mem-delay@500:delay=800000")
	if err != nil {
		panic(err)
	}
	return Options{
		Warps: 8, Benchmarks: []string{"nw"}, MaxCycles: 2_000_000,
		NoFastForward: true, Faults: plan,
	}
}

func TestGetCtxPreCanceledDoesNotSimulate(t *testing.T) {
	s := NewSuite(cancelOpts())
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := s.GetCtx(ctx, "nw", SchemeRegLess, 512)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("GetCtx with canceled ctx = %v, want context.Canceled", err)
	}
	// The canceled attempt must not poison the cache: a clean Get works.
	r, err := s.Get("nw", SchemeRegLess, 512)
	if err != nil || r == nil {
		t.Fatalf("Get after canceled attempt = %v, %v", r, err)
	}
}

func TestGetCtxCancelMidRunFreesAndDoesNotPoison(t *testing.T) {
	s := NewSuite(cancelOpts())
	started := make(chan struct{})
	var once sync.Once
	s.OnSimulate = func(string, Scheme, int) { once.Do(func() { close(started) }) }
	ctx, cancel := context.WithCancel(context.Background())
	errCh := make(chan error, 1)
	go func() {
		_, err := s.GetCtx(ctx, "nw", SchemeRegLess, 512)
		errCh <- err
	}()
	<-started
	cancel()
	select {
	case err := <-errCh:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("abandoned GetCtx = %v, want context.Canceled", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("canceled simulation did not return; cycle loop never polled ctx")
	}
	// Deterministic-simulation errors are cached, but cancellation is a
	// property of the request, not the key: a retry must simulate fresh.
	r, err := s.Get("nw", SchemeRegLess, 512)
	if err != nil || r == nil {
		t.Fatalf("Get after mid-run cancel = %v, %v", r, err)
	}
}

func TestGetCtxFollowerRetakesLeadAfterLeaderCanceled(t *testing.T) {
	s := NewSuite(cancelOpts())
	started := make(chan struct{})
	var simulations int
	var mu sync.Mutex
	s.OnSimulate = func(string, Scheme, int) {
		mu.Lock()
		simulations++
		if simulations == 1 {
			close(started)
		}
		mu.Unlock()
	}
	leaderCtx, cancelLeader := context.WithCancel(context.Background())
	leaderErr := make(chan error, 1)
	go func() {
		_, err := s.GetCtx(leaderCtx, "nw", SchemeRegLess, 512)
		leaderErr <- err
	}()
	<-started
	followerErr := make(chan error, 1)
	go func() {
		r, err := s.GetCtx(context.Background(), "nw", SchemeRegLess, 512)
		if err == nil && r == nil {
			err = errors.New("nil run with nil error")
		}
		followerErr <- err
	}()
	// Give the follower a moment to join the in-flight entry, then
	// abandon the leader. (If the follower instead arrives after the
	// deletion it simply leads from the start — same outcome.)
	time.Sleep(10 * time.Millisecond)
	cancelLeader()
	if err := <-leaderErr; !errors.Is(err, context.Canceled) {
		t.Fatalf("leader error = %v, want context.Canceled", err)
	}
	select {
	case err := <-followerErr:
		if err != nil {
			t.Fatalf("follower inherited the leader's cancellation: %v", err)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("follower hung after leader cancellation")
	}
}

func TestChipRunCanceled(t *testing.T) {
	opts := cancelOpts()
	opts.SMs = 2
	s := NewSuite(opts)
	started := make(chan struct{})
	var once sync.Once
	s.OnSimulate = func(string, Scheme, int) { once.Do(func() { close(started) }) }
	ctx, cancel := context.WithCancel(context.Background())
	errCh := make(chan error, 1)
	go func() {
		_, err := s.GetCtx(ctx, "nw", SchemeBaseline, 0)
		errCh <- err
	}()
	<-started
	cancel()
	select {
	case err := <-errCh:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("chip GetCtx = %v, want context.Canceled", err)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("canceled chip run did not return")
	}
}

func TestDeadlineExceededClassified(t *testing.T) {
	s := NewSuite(cancelOpts())
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	time.Sleep(2 * time.Millisecond)
	_, err := s.GetCtx(ctx, "nw", SchemeBaseline, 0)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("GetCtx past deadline = %v, want DeadlineExceeded", err)
	}
}
