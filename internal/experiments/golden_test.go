package experiments

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// update rewrites the golden files instead of diffing against them:
//
//	go test ./internal/experiments -run TestSuiteGolden -update
var update = flag.Bool("update", false, "rewrite golden files")

// renderAll produces the canonical text of every table at Quick scale —
// the exact bytes `regless -experiment all` prints for these options.
func renderAll(t *testing.T) []byte {
	t.Helper()
	suite := NewSuite(Quick())
	tables, err := All(suite)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	for _, tb := range tables {
		buf.WriteString(tb.Render())
		buf.WriteByte('\n')
	}
	return buf.Bytes()
}

// TestSuiteGolden locks the full rendered experiment suite against a
// checked-in transcript: any drift in simulation results, statistics
// plumbing, or table formatting fails with the first differing line. The
// metrics-registry refactor (and anything after it) must keep this output
// byte-identical; intentional changes re-bless with -update.
func TestSuiteGolden(t *testing.T) {
	got := renderAll(t)
	golden := filepath.Join("testdata", "suite_golden.txt")
	if *update {
		if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", golden, len(got))
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to create it)", err)
	}
	if bytes.Equal(got, want) {
		return
	}
	gl := strings.Split(string(got), "\n")
	wl := strings.Split(string(want), "\n")
	for i := 0; i < len(gl) && i < len(wl); i++ {
		if gl[i] != wl[i] {
			t.Fatalf("suite output diverges from %s at line %d:\n got: %q\nwant: %q\n(re-bless intentional changes with -update)",
				golden, i+1, gl[i], wl[i])
		}
	}
	t.Fatalf("suite output length changed: %d lines vs %d in %s (re-bless with -update)",
		len(gl), len(wl), golden)
}
