package experiments

import (
	"sync"
	"sync/atomic"
	"testing"
)

// parOpts keeps concurrency tests fast: one tiny benchmark, forced
// parallelism so the pool is exercised even on one core.
func parOpts() Options {
	return Options{
		Warps:       8,
		Benchmarks:  []string{"bfs", "streamcluster"},
		MaxCycles:   20_000_000,
		Parallelism: 8,
	}
}

// TestSingleflightGet hammers one key from 32 goroutines: exactly one
// simulation must run, and every caller must get the same *Run.
func TestSingleflightGet(t *testing.T) {
	s := NewSuite(parOpts())
	var sims int32
	s.OnSimulate = func(string, Scheme, int) { atomic.AddInt32(&sims, 1) }

	const callers = 32
	runs := make([]*Run, callers)
	errs := make([]error, callers)
	gate := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-gate
			runs[i], errs[i] = s.Get("streamcluster", SchemeBaseline, 0)
		}(i)
	}
	close(gate)
	wg.Wait()

	if n := atomic.LoadInt32(&sims); n != 1 {
		t.Fatalf("%d simulations ran, want exactly 1", n)
	}
	for i := range runs {
		if errs[i] != nil {
			t.Fatalf("caller %d: %v", i, errs[i])
		}
		if runs[i] != runs[0] {
			t.Fatalf("caller %d got a different *Run", i)
		}
	}
	if runs[0] == nil || runs[0].Stats.Cycles == 0 {
		t.Fatal("empty run")
	}
}

// TestWarmDedupes feeds the planner duplicate and alias keys (non-RegLess
// capacities fold to zero) and checks one simulation per unique key.
func TestWarmDedupes(t *testing.T) {
	s := NewSuite(parOpts())
	var sims int32
	s.OnSimulate = func(string, Scheme, int) { atomic.AddInt32(&sims, 1) }
	keys := []runKey{
		{"bfs", SchemeBaseline, 0},
		{"bfs", SchemeBaseline, 512}, // alias of the previous key
		{"bfs", SchemeBaseline, 0},
		{"streamcluster", SchemeRegLess, 256},
		{"streamcluster", SchemeRegLess, 256},
	}
	if err := s.Warm(keys); err != nil {
		t.Fatal(err)
	}
	if n := atomic.LoadInt32(&sims); n != 2 {
		t.Fatalf("%d simulations ran, want 2 (bfs/baseline + streamcluster/regless-256)", n)
	}
	// A second warm over the same keys is free.
	if err := s.Warm(keys); err != nil {
		t.Fatal(err)
	}
	if n := atomic.LoadInt32(&sims); n != 2 {
		t.Fatalf("re-warm re-simulated: %d runs", n)
	}
}

// TestWarmError checks that a bad key surfaces its error through the
// parallel fan-out.
func TestWarmError(t *testing.T) {
	s := NewSuite(parOpts())
	err := s.Warm([]runKey{
		{"bfs", SchemeBaseline, 0},
		{"nonesuch", SchemeBaseline, 0},
	})
	if err == nil {
		t.Fatal("unknown benchmark did not error")
	}
}

// TestRequirementsCoverRunners verifies every declared requirement list is
// complete: after Warm, running the experiment must trigger zero
// additional simulations — the property that makes All's parallel fan-out
// equivalent to the serial pass.
func TestRequirementsCoverRunners(t *testing.T) {
	opts := Options{
		Warps:       8,
		Benchmarks:  []string{"bfs", "hotspot"},
		MaxCycles:   20_000_000,
		Parallelism: 4,
	}
	for _, e := range Experiments() {
		if e.Requirements == nil {
			continue
		}
		e := e
		t.Run(e.ID, func(t *testing.T) {
			s := NewSuite(opts)
			var sims int32
			s.OnSimulate = func(string, Scheme, int) { atomic.AddInt32(&sims, 1) }
			if err := s.Warm(e.Requirements(s.Opts)); err != nil {
				t.Fatal(err)
			}
			warmed := atomic.LoadInt32(&sims)
			if _, err := e.Run(s); err != nil {
				t.Fatal(err)
			}
			if after := atomic.LoadInt32(&sims); after != warmed {
				t.Fatalf("runner simulated %d keys the planner did not declare", after-warmed)
			}
		})
	}
}

// TestParallelAllMatchesSerial runs the full paper suite serially and in
// parallel and requires identical rendered tables.
func TestParallelAllMatchesSerial(t *testing.T) {
	render := func(par int) string {
		opts := parOpts()
		opts.Parallelism = par
		s := NewSuite(opts)
		tables, err := All(s)
		if err != nil {
			t.Fatal(err)
		}
		out := ""
		for _, tb := range tables {
			out += tb.Render() + "\n"
		}
		return out
	}
	serial := render(1)
	parallel := render(8)
	if serial != parallel {
		t.Fatal("parallel output differs from serial output")
	}
}

// TestForEachOrderIndependentError checks the first-by-index error
// contract that keeps error reporting deterministic under parallelism.
func TestForEachOrderIndependentError(t *testing.T) {
	s := NewSuite(parOpts())
	errA := &testErr{"a"}
	errB := &testErr{"b"}
	err := s.forEach(8, func(i int) error {
		switch i {
		case 3:
			return errA
		case 6:
			return errB
		}
		return nil
	})
	if err != errA {
		t.Fatalf("got %v, want the lowest-index error", err)
	}
}

type testErr struct{ s string }

func (e *testErr) Error() string { return e.s }
