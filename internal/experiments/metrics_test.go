package experiments

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"testing"
)

// jsonlRecord mirrors one exported window for decoding in tests.
type jsonlRecord struct {
	Bench    string            `json:"bench"`
	Scheme   string            `json:"scheme"`
	Capacity int               `json:"capacity"`
	Window   int               `json:"window"`
	Start    uint64            `json:"start"`
	End      uint64            `json:"end"`
	Counters map[string]uint64 `json:"counters"`
	Gauges   map[string]uint64 `json:"gauges"`
}

// TestFig17MetricsReconcile streams per-window metrics while running the
// preload-source experiment and reconciles the JSONL stream against the
// figure's own numbers: per run, every window must parse, windows must
// tile the run ([0,c1],(c1,c2],... with increasing indices), and the
// preload-source counter deltas must sum to exactly the ProviderStats
// totals the printed breakdown is computed from.
func TestFig17MetricsReconcile(t *testing.T) {
	var stream bytes.Buffer
	opts := Quick()
	opts.MetricsWriter = &stream
	suite := NewSuite(opts)
	if _, err := Fig17(suite); err != nil {
		t.Fatal(err)
	}
	if err := suite.FlushMetrics(); err != nil {
		t.Fatal(err)
	}

	type agg struct {
		osu, comp, l1, deep uint64
		lastWindow          int
		lastEnd             uint64
	}
	sums := map[string]*agg{}
	lines := strings.Split(strings.TrimSpace(stream.String()), "\n")
	if len(lines) == 0 || lines[0] == "" {
		t.Fatal("empty metrics stream")
	}
	for i, ln := range lines {
		var rec jsonlRecord
		if err := json.Unmarshal([]byte(ln), &rec); err != nil {
			t.Fatalf("line %d is not valid JSON: %v\n%s", i+1, err, ln)
		}
		key := fmt.Sprintf("%s/%s/%d", rec.Bench, rec.Scheme, rec.Capacity)
		a := sums[key]
		if a == nil {
			a = &agg{lastWindow: -1}
			sums[key] = a
		}
		if rec.Window != a.lastWindow+1 {
			t.Fatalf("%s: window %d follows %d", key, rec.Window, a.lastWindow)
		}
		if rec.Start != a.lastEnd || rec.End <= rec.Start {
			t.Fatalf("%s window %d: interval (%d,%d] does not tile previous end %d",
				key, rec.Window, rec.Start, rec.End, a.lastEnd)
		}
		a.lastWindow = rec.Window
		a.lastEnd = rec.End
		a.osu += rec.Counters["provider/preload_from_osu"]
		a.comp += rec.Counters["provider/preload_from_compressor"]
		a.l1 += rec.Counters["provider/preload_from_l1"]
		a.deep += rec.Counters["provider/preload_from_l2dram"]
	}

	runs := suite.CachedRuns()
	if len(runs) == 0 {
		t.Fatal("no cached runs")
	}
	for _, r := range runs {
		key := fmt.Sprintf("%s/%s/%d", r.Bench, r.Scheme, r.Capacity)
		a := sums[key]
		if a == nil {
			t.Fatalf("run %s missing from the metrics stream", key)
		}
		if a.osu != r.Prov.PreloadFromOSU || a.comp != r.Prov.PreloadFromCompressor ||
			a.l1 != r.Prov.PreloadFromL1 || a.deep != r.Prov.PreloadFromL2DRAM {
			t.Fatalf("%s: window deltas (osu %d, comp %d, l1 %d, deep %d) != run totals (osu %d, comp %d, l1 %d, deep %d)",
				key, a.osu, a.comp, a.l1, a.deep,
				r.Prov.PreloadFromOSU, r.Prov.PreloadFromCompressor, r.Prov.PreloadFromL1, r.Prov.PreloadFromL2DRAM)
		}
		if a.lastEnd != r.Stats.Cycles {
			t.Fatalf("%s: final window ends at %d, run at %d cycles", key, a.lastEnd, r.Stats.Cycles)
		}
	}
	if len(sums) != len(runs) {
		t.Fatalf("stream has %d runs, cache has %d", len(sums), len(runs))
	}
}

// TestMetricsStreamParallelComplete checks the mutex-serialized writer
// under a concurrent planner: every line still parses and no run is lost.
func TestMetricsStreamParallelComplete(t *testing.T) {
	var stream bytes.Buffer
	opts := Quick()
	opts.Parallelism = 8
	opts.MetricsWriter = &stream
	suite := NewSuite(opts)
	if _, err := Fig17(suite); err != nil {
		t.Fatal(err)
	}
	if err := suite.FlushMetrics(); err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for i, ln := range strings.Split(strings.TrimSpace(stream.String()), "\n") {
		var rec jsonlRecord
		if err := json.Unmarshal([]byte(ln), &rec); err != nil {
			t.Fatalf("line %d corrupted under parallel writes: %v", i+1, err)
		}
		seen[rec.Bench] = true
	}
	for _, bench := range suite.Opts.Benchmarks {
		if !seen[bench] {
			t.Fatalf("bench %s missing from parallel stream", bench)
		}
	}
}
