package sim

import (
	"testing"

	"repro/internal/exec"
	"repro/internal/sanitizer"
)

// passiveProvider is nullProvider plus truthful hot-path hints, so the
// cycle-skip fast-forward engages (an unhinted provider without TickIdle
// keeps the simulator on the stepped path).
type passiveProvider struct{ nullProvider }

func (*passiveProvider) HotHints() HotPathHints {
	return HotPathHints{AlwaysIssuable: true, PassiveTick: true, PassiveWriteback: true}
}

// stuckPassiveProvider refuses every issue but has a passive tick: a
// livelock the fast-forward is allowed to skip across — straight into
// the watchdog window, never past it.
type stuckPassiveProvider struct{ nullProvider }

func (*stuckPassiveProvider) CanIssue(*Warp) bool { return false }
func (*stuckPassiveProvider) HotHints() HotPathHints {
	return HotPathHints{PassiveTick: true, PassiveWriteback: true}
}

// TestFastForwardRunParity: a fast-forwarded run of the test kernel must
// finish with identical statistics to a stepped run, and must actually
// have skipped cycles (otherwise this test proves nothing).
func TestFastForwardRunParity(t *testing.T) {
	k := smallKernel(t)
	run := func(noFF bool) (*Stats, *SM) {
		cfgv := testConfig()
		cfgv.NoFastForward = noFF
		sm, err := New(cfgv, k, &passiveProvider{}, exec.NewMemory(nil))
		if err != nil {
			t.Fatal(err)
		}
		st, err := sm.Run()
		if err != nil {
			t.Fatal(err)
		}
		return st, sm
	}
	ff, _ := run(false)
	st, _ := run(true)
	if ff.Cycles != st.Cycles || ff.DynInsns != st.DynInsns || ff.IssueStalls != st.IssueStalls {
		t.Fatalf("fast-forward diverged: cycles %d/%d insns %d/%d stalls %d/%d",
			ff.Cycles, st.Cycles, ff.DynInsns, st.DynInsns, ff.IssueStalls, st.IssueStalls)
	}
	if ff.WorkingSetKB != st.WorkingSetKB || len(ff.BackingSeries) != len(st.BackingSeries) {
		t.Fatalf("window series diverged: %v/%v windows %d/%d",
			ff.WorkingSetKB, st.WorkingSetKB, len(ff.BackingSeries), len(st.BackingSeries))
	}
	if ff.FFJumps == 0 || ff.FFSkippedCycles == 0 {
		t.Fatalf("fast-forward never engaged (jumps %d, skipped %d)", ff.FFJumps, ff.FFSkippedCycles)
	}
	if st.FFJumps != 0 || st.FFSkippedCycles != 0 {
		t.Fatalf("NoFastForward run still skipped (jumps %d, skipped %d)", st.FFJumps, st.FFSkippedCycles)
	}
}

// TestFastForwardWatchdogParity: on a livelocked machine the fast-forward
// must jump to — and not past — the watchdog window, producing the exact
// diagnostic a stepped run produces, in one jump instead of half a
// million steps.
func TestFastForwardWatchdogParity(t *testing.T) {
	k := smallKernel(t)
	run := func(noFF bool) (*sanitizer.Diagnostic, *SM) {
		cfgv := testConfig()
		cfgv.WatchdogCycles = 500
		cfgv.NoFastForward = noFF
		sm, err := New(cfgv, k, &stuckPassiveProvider{}, exec.NewMemory(nil))
		if err != nil {
			t.Fatal(err)
		}
		_, err = sm.Run()
		return asDiagnostic(t, err), sm
	}
	ffD, ffSM := run(false)
	stD, _ := run(true)
	if ffD.Component != "sim/watchdog" || stD.Component != "sim/watchdog" {
		t.Fatalf("components: ff %q, stepped %q", ffD.Component, stD.Component)
	}
	if ffD.Cycle != stD.Cycle {
		t.Fatalf("watchdog tripped at cycle %d fast-forwarded vs %d stepped", ffD.Cycle, stD.Cycle)
	}
	if ffD.Violation != stD.Violation {
		t.Fatalf("violations differ:\nff:      %s\nstepped: %s", ffD.Violation, stD.Violation)
	}
	if ffSM.Stats.FFJumps == 0 {
		t.Fatal("fast-forward never engaged on the livelocked machine")
	}
}

// TestFastForwardWatchdogQuietOnHealthyRun: skipping long memory stalls
// must not eat into the watchdog budget — a window that a stepped run
// survives is survived fast-forwarded too.
func TestFastForwardWatchdogQuietOnHealthyRun(t *testing.T) {
	cfgv := testConfig()
	cfgv.WatchdogCycles = 10_000
	sm, err := New(cfgv, smallKernel(t), &passiveProvider{}, exec.NewMemory(nil))
	if err != nil {
		t.Fatal(err)
	}
	st, err := sm.Run()
	if err != nil {
		t.Fatalf("healthy fast-forwarded run tripped: %v", err)
	}
	if st.FFJumps == 0 {
		t.Fatal("fast-forward never engaged; watchdog interaction untested")
	}
}

// TestFastForwardSanitizerAtSkipBoundaries: with a sanitizer attached,
// every stepped cycle is checked and every fast-forward jump lands on a
// checked cycle (the skipped interior is provably frozen, so the
// boundary check subsumes the per-cycle checks it replaces). The check
// ledger must account for every cycle of the run.
func TestFastForwardSanitizerAtSkipBoundaries(t *testing.T) {
	sm, err := New(testConfig(), smallKernel(t), &passiveProvider{}, exec.NewMemory(nil))
	if err != nil {
		t.Fatal(err)
	}
	san := sanitizer.New()
	var checked []uint64
	san.Register("test/ledger", func() error {
		checked = append(checked, sm.Cycle())
		return nil
	})
	sm.AttachSanitizer(san)
	st, err := sm.Run()
	if err != nil {
		t.Fatal(err)
	}
	if st.FFJumps == 0 {
		t.Fatal("fast-forward never engaged; boundary checking untested")
	}
	stepped := st.Cycles - st.FFSkippedCycles
	if want := stepped + st.FFJumps; uint64(len(checked)) != want {
		t.Fatalf("sanitizer ran %d times, want %d (%d stepped cycles + %d skip boundaries)",
			len(checked), want, stepped, st.FFJumps)
	}
	var gaps, unchecked uint64
	for i := 1; i < len(checked); i++ {
		d := checked[i] - checked[i-1]
		if d == 0 {
			t.Fatalf("cycle %d checked twice", checked[i])
		}
		if d > 1 {
			gaps++
			unchecked += d - 1
		}
	}
	// A 1-cycle jump leaves no gap (its only skipped cycle is the checked
	// boundary), so gaps is bounded by — not equal to — the jump count.
	if gaps == 0 || gaps > st.FFJumps {
		t.Fatalf("%d check gaps for %d jumps", gaps, st.FFJumps)
	}
	if unchecked != st.FFSkippedCycles-st.FFJumps {
		t.Fatalf("%d cycles escaped checking, want %d (skipped minus boundary re-checks)",
			unchecked, st.FFSkippedCycles-st.FFJumps)
	}
}
