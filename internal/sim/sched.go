package sim

// scheduler picks the warp a scheduler group issues from each cycle.
// candidates exposes the warps pick actually considered this cycle so
// stall attribution classifies the same set (the two-level scheduler
// restricts issue to its active set). frozen reports that a failed pick
// on a machine whose warp state cannot change mutates no scheduler
// state — the cycle-skip fast-forward may only jump a group whose
// scheduler is frozen, or the post-skip pick order diverges from a
// stepped run's.
//
// The hot pick scans walk packed warp-ID slices (SM.groupIDs) rather
// than Warp pointers: a ready test against a blocked warp touches only
// the SM's SoA arrays, so a fully stalled group costs a handful of
// contiguous loads instead of a pointer chase per candidate.
type scheduler interface {
	pick(group int, sm *SM) *Warp
	candidates(group int) []*Warp
	frozen(group int, sm *SM) bool
}

// gto is greedy-then-oldest: keep issuing from the current warp until it
// stalls, then switch to the oldest ready warp (smallest ID — all warps
// launch together).
type gto struct {
	current []int32 // per group; -1 when unset
	ids     [][]int32
	groups  [][]*Warp
}

func newGTO(sm *SM) *gto {
	cur := make([]int32, len(sm.groups))
	for i := range cur {
		cur[i] = -1
	}
	return &gto{current: cur, ids: sm.groupIDs, groups: sm.groups}
}

func (s *gto) candidates(g int) []*Warp { return s.groups[g] }

// frozen: a failed GTO pick leaves current untouched.
func (s *gto) frozen(int, *SM) bool { return true }

func (s *gto) pick(g int, sm *SM) *Warp {
	if cur := s.current[g]; cur >= 0 && sm.ready(g, cur) {
		return sm.Warps[cur]
	}
	for _, id := range s.ids[g] {
		if sm.ready(g, id) {
			s.current[g] = id
			return sm.Warps[id]
		}
	}
	return nil
}

// twoLevel keeps a small active set per group; only active warps may
// issue. A warp blocked on a long-latency memory operation is demoted to
// the pending queue and the next pending warp promoted (Gebhart et al.
// [9]; used by RFH and the Figure 2 comparison).
type twoLevel struct {
	active  [][]*Warp
	pending [][]*Warp
	size    int
}

func newTwoLevel(groups [][]*Warp, size int) *twoLevel {
	s := &twoLevel{size: size}
	for _, g := range groups {
		n := size
		if n > len(g) {
			n = len(g)
		}
		act := make([]*Warp, n)
		copy(act, g[:n])
		pend := make([]*Warp, len(g)-n)
		copy(pend, g[n:])
		s.active = append(s.active, act)
		s.pending = append(s.pending, pend)
	}
	return s
}

// candidates returns the post-pick active set: pick runs first each
// cycle, so demotions and promotions have already settled.
func (s *twoLevel) candidates(g int) []*Warp { return s.active[g] }

// frozen reports that the next pick will not demote or promote anything.
// Not guaranteed even on a fully stalled machine: promote admits warps
// that are at a barrier (it only filters memory blocking), and pick
// demotes them again next cycle, so barrier-heavy groups rotate pending
// order every cycle without issuing. All inputs (finished, barrier,
// scoreboard) are fixed while no warp issues and no event fires, so one
// check covers the whole prospective skip span.
func (s *twoLevel) frozen(g int, sm *SM) bool {
	act := s.active[g]
	for _, w := range act {
		if sm.wFlags[w.ID] != 0 || w.MemoryBlocked() {
			return false // a demotion is due next pick
		}
	}
	if len(act) < s.size {
		for _, w := range s.pending[g] {
			if w.Finished() || !w.MemoryBlocked() {
				return false // promote would remove or pop this warp
			}
		}
	}
	return true
}

func (s *twoLevel) pick(g int, sm *SM) *Warp {
	// Demote active warps that are finished or stalled on long-latency
	// events (memory, barriers); promotable pending warps replace them.
	act := s.active[g]
	for i := 0; i < len(act); i++ {
		w := act[i]
		if sm.wFlags[w.ID] == 0 && !w.MemoryBlocked() {
			continue
		}
		if next := s.promote(g); next != nil {
			if lat := uint64(sm.Cfg.PromoteLatency); lat > 0 {
				if t := sm.Cycle() + lat; t > sm.wStallUntil[next.ID] {
					sm.wStallUntil[next.ID] = t
				}
			}
			act[i] = next
			if !w.Finished() {
				s.pending[g] = append(s.pending[g], w)
			}
		} else {
			// Nothing promotable now: drop the slot (it is refilled
			// below once a pending warp unblocks).
			if !w.Finished() {
				s.pending[g] = append(s.pending[g], w)
			}
			act = append(act[:i], act[i+1:]...)
			i--
		}
	}
	// Refill the active set from pending as warps unblock; promoted
	// warps pay the pipeline-refill latency before issuing.
	for len(act) < s.size {
		next := s.promote(g)
		if next == nil {
			break
		}
		if lat := uint64(sm.Cfg.PromoteLatency); lat > 0 {
			if t := sm.Cycle() + lat; t > sm.wStallUntil[next.ID] {
				sm.wStallUntil[next.ID] = t
			}
		}
		act = append(act, next)
	}
	s.active[g] = act
	for _, w := range act {
		if sm.ready(g, int32(w.ID)) {
			return w
		}
	}
	return nil
}

// promote pops the first pending warp that can make progress. Removal is
// in place (order-preserving copy-down) — the full-slice-expression append
// it replaced allocated a fresh backing array per promotion.
func (s *twoLevel) promote(g int) *Warp {
	pend := s.pending[g]
	for i, w := range pend {
		if w.Finished() {
			copy(pend[i:], pend[i+1:])
			s.pending[g] = pend[:len(pend)-1]
			return s.promote(g)
		}
		if !w.MemoryBlocked() {
			copy(pend[i:], pend[i+1:])
			s.pending[g] = pend[:len(pend)-1]
			return w
		}
	}
	return nil
}

// lrr is loose round-robin: each cycle starts the scan one past the last
// issuer, giving every ready warp an equal share of issue slots.
type lrr struct {
	next   []int
	ids    [][]int32
	groups [][]*Warp
}

func newLRR(sm *SM) *lrr {
	return &lrr{next: make([]int, len(sm.groups)), ids: sm.groupIDs, groups: sm.groups}
}

func (s *lrr) candidates(g int) []*Warp { return s.groups[g] }

// frozen: a failed LRR pick leaves next untouched.
func (s *lrr) frozen(int, *SM) bool { return true }

func (s *lrr) pick(g int, sm *SM) *Warp {
	ids := s.ids[g]
	n := len(ids)
	for i := 0; i < n; i++ {
		id := ids[(s.next[g]+i)%n]
		if sm.ready(g, id) {
			s.next[g] = (s.next[g] + i + 1) % n
			return sm.Warps[id]
		}
	}
	return nil
}
