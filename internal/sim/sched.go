package sim

// scheduler picks the warp a scheduler group issues from each cycle.
// candidates exposes the warps pick actually considered this cycle so
// stall attribution classifies the same set (the two-level scheduler
// restricts issue to its active set).
type scheduler interface {
	pick(group int, sm *SM) *Warp
	candidates(group int) []*Warp
}

// gto is greedy-then-oldest: keep issuing from the current warp until it
// stalls, then switch to the oldest ready warp (smallest ID — all warps
// launch together).
type gto struct {
	current []*Warp // per group
	groups  [][]*Warp
}

func newGTO(groups [][]*Warp) *gto {
	return &gto{current: make([]*Warp, len(groups)), groups: groups}
}

func (s *gto) candidates(g int) []*Warp { return s.groups[g] }

func (s *gto) pick(g int, sm *SM) *Warp {
	if cur := s.current[g]; cur != nil && sm.ready(cur) {
		return cur
	}
	for _, w := range s.groups[g] {
		if sm.ready(w) {
			s.current[g] = w
			return w
		}
	}
	return nil
}

// twoLevel keeps a small active set per group; only active warps may
// issue. A warp blocked on a long-latency memory operation is demoted to
// the pending queue and the next pending warp promoted (Gebhart et al.
// [9]; used by RFH and the Figure 2 comparison).
type twoLevel struct {
	active  [][]*Warp
	pending [][]*Warp
	size    int
}

func newTwoLevel(groups [][]*Warp, size int) *twoLevel {
	s := &twoLevel{size: size}
	for _, g := range groups {
		n := size
		if n > len(g) {
			n = len(g)
		}
		act := make([]*Warp, n)
		copy(act, g[:n])
		pend := make([]*Warp, len(g)-n)
		copy(pend, g[n:])
		s.active = append(s.active, act)
		s.pending = append(s.pending, pend)
	}
	return s
}

// candidates returns the post-pick active set: pick runs first each
// cycle, so demotions and promotions have already settled.
func (s *twoLevel) candidates(g int) []*Warp { return s.active[g] }

func (s *twoLevel) pick(g int, sm *SM) *Warp {
	// Demote active warps that are finished or stalled on long-latency
	// events (memory, barriers); promotable pending warps replace them.
	act := s.active[g]
	for i := 0; i < len(act); i++ {
		w := act[i]
		if !w.finished && !w.MemoryBlocked() && !w.atBarrier {
			continue
		}
		if next := s.promote(g); next != nil {
			if lat := uint64(sm.Cfg.PromoteLatency); lat > 0 {
				if t := sm.Cycle() + lat; t > next.stallUntil {
					next.stallUntil = t
				}
			}
			act[i] = next
			if !w.finished {
				s.pending[g] = append(s.pending[g], w)
			}
		} else {
			// Nothing promotable now: drop the slot (it is refilled
			// below once a pending warp unblocks).
			if !w.finished {
				s.pending[g] = append(s.pending[g], w)
			}
			act = append(act[:i], act[i+1:]...)
			i--
		}
	}
	// Refill the active set from pending as warps unblock; promoted
	// warps pay the pipeline-refill latency before issuing.
	for len(act) < s.size {
		next := s.promote(g)
		if next == nil {
			break
		}
		if lat := uint64(sm.Cfg.PromoteLatency); lat > 0 {
			if t := sm.Cycle() + lat; t > next.stallUntil {
				next.stallUntil = t
			}
		}
		act = append(act, next)
	}
	s.active[g] = act
	for _, w := range act {
		if sm.ready(w) {
			return w
		}
	}
	return nil
}

// promote pops the first pending warp that can make progress.
func (s *twoLevel) promote(g int) *Warp {
	pend := s.pending[g]
	for i, w := range pend {
		if w.finished {
			s.pending[g] = append(pend[:i:i], pend[i+1:]...)
			return s.promote(g)
		}
		if !w.MemoryBlocked() {
			s.pending[g] = append(pend[:i:i], pend[i+1:]...)
			return w
		}
	}
	return nil
}

// lrr is loose round-robin: each cycle starts the scan one past the last
// issuer, giving every ready warp an equal share of issue slots.
type lrr struct {
	next   []int
	groups [][]*Warp
}

func newLRR(groups [][]*Warp) *lrr {
	return &lrr{next: make([]int, len(groups)), groups: groups}
}

func (s *lrr) candidates(g int) []*Warp { return s.groups[g] }

func (s *lrr) pick(g int, sm *SM) *Warp {
	grp := s.groups[g]
	n := len(grp)
	for i := 0; i < n; i++ {
		w := grp[(s.next[g]+i)%n]
		if sm.ready(w) {
			s.next[g] = (s.next[g] + i + 1) % n
			return w
		}
	}
	return nil
}
