package sim

import "repro/internal/isa"

// eventWheel is the SM's timing calendar: a hand-rolled binary min-heap
// ordered by (cycle, seq) so same-cycle entries fire in insertion order —
// the exact semantics of the append-per-cycle map it replaced, without the
// per-cycle map churn the profiles surfaced.
//
// The common entry is a scoreboard release (a fixed-latency writeback): it
// is stored inline as (warp, reg, mem) instead of a closure, so the steady
// state allocates nothing. Provider callbacks (compressor decompress
// delays) still carry a fn.
type wheelEntry struct {
	cycle uint64
	seq   uint64
	fn    func()
	warp  int32
	reg   isa.Reg
	mem   bool
}

type eventWheel struct {
	h   []wheelEntry
	seq uint64
}

func (w *eventWheel) len() int { return len(w.h) }

// nextCycle peeks the earliest scheduled cycle (ok=false when empty).
func (w *eventWheel) nextCycle() (uint64, bool) {
	if len(w.h) == 0 {
		return 0, false
	}
	return w.h[0].cycle, true
}

func (w *eventWheel) before(a, b wheelEntry) bool {
	if a.cycle != b.cycle {
		return a.cycle < b.cycle
	}
	return a.seq < b.seq
}

func (w *eventWheel) push(e wheelEntry) {
	w.seq++
	e.seq = w.seq
	w.h = append(w.h, e)
	i := len(w.h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !w.before(w.h[i], w.h[parent]) {
			break
		}
		w.h[i], w.h[parent] = w.h[parent], w.h[i]
		i = parent
	}
}

// popDue removes the earliest entry due at or before now.
func (w *eventWheel) popDue(now uint64) (wheelEntry, bool) {
	if len(w.h) == 0 || w.h[0].cycle > now {
		return wheelEntry{}, false
	}
	top := w.h[0]
	n := len(w.h) - 1
	w.h[0] = w.h[n]
	w.h[n] = wheelEntry{} // release the fn for GC
	w.h = w.h[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < n && w.before(w.h[l], w.h[min]) {
			min = l
		}
		if r < n && w.before(w.h[r], w.h[min]) {
			min = r
		}
		if min == i {
			break
		}
		w.h[i], w.h[min] = w.h[min], w.h[i]
		i = min
	}
	return top, true
}
