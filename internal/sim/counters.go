package sim

import "repro/internal/metrics"

// ProviderCounters is the registry-backed storage behind ProviderStats.
// Providers used to carry an ad-hoc ProviderStats struct each and bump its
// fields directly; they now hold one of these (built against the owning
// SM's metrics registry at Attach) so every scheme event is a named,
// exportable counter, and Stats() materializes the identical ProviderStats
// view the figures and the energy model have always consumed.
//
// Counter names are stable and shared across schemes ("provider/..."), so
// per-window JSONL streams from different providers line up column-wise.
type ProviderCounters struct {
	StructReads     metrics.Counter
	StructWrites    metrics.Counter
	TagLookups      metrics.Counter
	BankConflicts   metrics.Counter
	BackingAccesses metrics.Counter

	PreloadFromOSU        metrics.Counter
	PreloadFromCompressor metrics.Counter
	PreloadFromL1         metrics.Counter
	PreloadFromL2DRAM     metrics.Counter

	Evictions           metrics.Counter
	CompressorHits      metrics.Counter
	CompressorMisses    metrics.Counter
	CompressorBitChecks metrics.Counter
	CompressorCacheOps  metrics.Counter
	CacheInvalidations  metrics.Counter
	MetaInsns           metrics.Counter
	StallCycles         metrics.Counter

	L1PreloadReads metrics.Counter
	L1StoreWrites  metrics.Counter
	L1Invalidates  metrics.Counter

	LRFAccesses metrics.Counter
	ORFAccesses metrics.Counter
	MRFAccesses metrics.Counter

	RegionActivations metrics.Counter
	RegionCycles      metrics.Counter

	// snap is the cached ProviderStats view refreshed by Stats().
	snap ProviderStats
}

// NewProviderCounters registers the canonical provider counter set on r
// (nil r yields no-op counters; Stats() then reports zeros).
func NewProviderCounters(r *metrics.Registry) *ProviderCounters {
	return &ProviderCounters{
		StructReads:     r.Counter("provider/struct_reads"),
		StructWrites:    r.Counter("provider/struct_writes"),
		TagLookups:      r.Counter("provider/tag_lookups"),
		BankConflicts:   r.Counter("provider/bank_conflicts"),
		BackingAccesses: r.Counter("provider/backing_accesses"),

		PreloadFromOSU:        r.Counter("provider/preload_from_osu"),
		PreloadFromCompressor: r.Counter("provider/preload_from_compressor"),
		PreloadFromL1:         r.Counter("provider/preload_from_l1"),
		PreloadFromL2DRAM:     r.Counter("provider/preload_from_l2dram"),

		Evictions:           r.Counter("provider/evictions"),
		CompressorHits:      r.Counter("provider/compressor_hits"),
		CompressorMisses:    r.Counter("provider/compressor_misses"),
		CompressorBitChecks: r.Counter("provider/compressor_bit_checks"),
		CompressorCacheOps:  r.Counter("provider/compressor_cache_ops"),
		CacheInvalidations:  r.Counter("provider/cache_invalidations"),
		MetaInsns:           r.Counter("provider/meta_insns"),
		StallCycles:         r.Counter("provider/stall_cycles"),

		L1PreloadReads: r.Counter("provider/l1_preload_reads"),
		L1StoreWrites:  r.Counter("provider/l1_store_writes"),
		L1Invalidates:  r.Counter("provider/l1_invalidates"),

		LRFAccesses: r.Counter("provider/lrf_accesses"),
		ORFAccesses: r.Counter("provider/orf_accesses"),
		MRFAccesses: r.Counter("provider/mrf_accesses"),

		RegionActivations: r.Counter("provider/region_activations"),
		RegionCycles:      r.Counter("provider/region_cycles"),
	}
}

// Stats refreshes and returns the ProviderStats view of the counters. The
// returned pointer stays valid (and is overwritten) across calls. A nil
// receiver — a provider whose Attach never ran — reports zeros.
func (c *ProviderCounters) Stats() *ProviderStats {
	if c == nil {
		return &ProviderStats{}
	}
	c.snap = ProviderStats{
		StructReads:     c.StructReads.Value(),
		StructWrites:    c.StructWrites.Value(),
		TagLookups:      c.TagLookups.Value(),
		BankConflicts:   c.BankConflicts.Value(),
		BackingAccesses: c.BackingAccesses.Value(),

		PreloadFromOSU:        c.PreloadFromOSU.Value(),
		PreloadFromCompressor: c.PreloadFromCompressor.Value(),
		PreloadFromL1:         c.PreloadFromL1.Value(),
		PreloadFromL2DRAM:     c.PreloadFromL2DRAM.Value(),

		Evictions:           c.Evictions.Value(),
		CompressorHits:      c.CompressorHits.Value(),
		CompressorMisses:    c.CompressorMisses.Value(),
		CompressorBitChecks: c.CompressorBitChecks.Value(),
		CompressorCacheOps:  c.CompressorCacheOps.Value(),
		CacheInvalidations:  c.CacheInvalidations.Value(),
		MetaInsns:           c.MetaInsns.Value(),
		StallCycles:         c.StallCycles.Value(),

		L1PreloadReads: c.L1PreloadReads.Value(),
		L1StoreWrites:  c.L1StoreWrites.Value(),
		L1Invalidates:  c.L1Invalidates.Value(),

		LRFAccesses: c.LRFAccesses.Value(),
		ORFAccesses: c.ORFAccesses.Value(),
		MRFAccesses: c.MRFAccesses.Value(),

		RegionActivations: c.RegionActivations.Value(),
		RegionCycles:      c.RegionCycles.Value(),
	}
	return &c.snap
}
