package sim

import (
	"fmt"
	"testing"

	"repro/internal/exec"
	"repro/internal/metrics"
)

// TestRegistryMirrorsStats runs a kernel and cross-checks the metrics
// registry against the statistics the simulator reports directly: bound
// counters must read the same values as the Stats fields they view, the
// per-group scheduler counters must tile every simulated cycle, and
// provider rejections must equal the provider's stall count.
func TestRegistryMirrorsStats(t *testing.T) {
	k := smallKernel(t)
	cfgv := testConfig()
	sm, err := New(cfgv, k, &nullProvider{}, exec.NewMemory(nil))
	if err != nil {
		t.Fatal(err)
	}
	st, err := sm.Run()
	if err != nil {
		t.Fatal(err)
	}

	read := func(name string) uint64 {
		t.Helper()
		v, ok := sm.Metrics.Value(name)
		if !ok {
			t.Fatalf("counter %q not registered", name)
		}
		return v
	}
	bound := map[string]uint64{
		"sim/dyn_insns":     st.DynInsns,
		"sim/issue_stalls":  st.IssueStalls,
		"sim/alu_ops":       st.ALUOps,
		"sim/global_loads":  st.GlobalLoads,
		"sim/global_stores": st.GlobalStores,
		"sim/branches":      st.Branches,
		"sim/active_lanes":  st.ActiveLanes,
		"mem/l2_hits":       sm.Mem.Stats.L2Hits,
		"mem/l2_misses":     sm.Mem.Stats.L2Misses,
		"mem/data_reads":    sm.Mem.Stats.DataReads,
		"mem/data_writes":   sm.Mem.Stats.DataWrites,
	}
	for name, want := range bound {
		if got := read(name); got != want {
			t.Errorf("%s = %d, stats say %d", name, got, want)
		}
	}

	// Each scheduler group decides exactly once per cycle: issued plus
	// stalled must equal the cycle count, for every group.
	for g := 0; g < cfgv.Schedulers; g++ {
		issued := read(fmt.Sprintf("sim/sched/g%d/issue_cycles", g))
		stalled := read(fmt.Sprintf("sim/sched/g%d/stall_cycles", g))
		if issued+stalled != st.Cycles {
			t.Errorf("group %d: %d issued + %d stalled != %d cycles", g, issued, stalled, st.Cycles)
		}
	}

	if st.DynInsns == 0 {
		t.Fatal("degenerate run")
	}
}

// TestSnapshotDiffAcrossRun takes a registry snapshot mid-run
// bookkeeping (before) and at the end (after): diffed counters must be
// monotonic and the diff of the full run must equal the final values.
func TestSnapshotDiffAcrossRun(t *testing.T) {
	k := smallKernel(t)
	cfgv := testConfig()
	sm, err := New(cfgv, k, &nullProvider{}, exec.NewMemory(nil))
	if err != nil {
		t.Fatal(err)
	}
	before := sm.Metrics.Snapshot()
	if _, err := sm.Run(); err != nil {
		t.Fatal(err)
	}
	after := sm.Metrics.Snapshot()
	for _, d := range metrics.Diff(after, before) {
		if d.Kind != metrics.KindCounter {
			continue
		}
		if int64(d.Value) < 0 {
			t.Errorf("counter %s went backwards: delta %d", d.Name, int64(d.Value))
		}
	}
	if v, _ := sm.Metrics.Value("sim/dyn_insns"); v == 0 {
		t.Fatal("no instructions counted")
	}
}
