package sim

import (
	"math/bits"

	"repro/internal/exec"
	"repro/internal/isa"
)

// Warp flag bits in SM.wFlags (struct-of-arrays hot state).
const (
	warpFinished  uint8 = 1 << 0
	warpAtBarrier uint8 = 1 << 1
)

// Warp is the timing-level wrapper around a functional warp. The fields
// the per-cycle ready-scan touches — finished/barrier flags, stall timers,
// the pending-register scoreboard, and the decoded next instruction — live
// in packed per-SM arrays (SM.wFlags and friends) so the scan walks
// contiguous memory instead of chasing warp pointers; Warp keeps only the
// identity and the cold bookkeeping.
type Warp struct {
	ID    int
	Group int // scheduler group (shard) the warp belongs to

	Exec *exec.Warp

	sm *SM

	// pendingMem counts outstanding global-load destinations (used by
	// the two-level scheduler to demote stalled warps).
	pendingMem int
	// pendingTotal counts all outstanding writes (region draining).
	pendingTotal int

	// lastIssue is the cycle this warp last issued (GTO tiebreak).
	lastIssue uint64

	// ProviderData carries provider-specific per-warp state (the
	// RegLess capacity manager's warp record, RFV's rename map, ...).
	ProviderData any
}

// Finished reports whether every lane has exited.
func (w *Warp) Finished() bool { return w.sm.wFlags[w.ID]&warpFinished != 0 }

// AtBarrier reports whether the warp is waiting at a CTA barrier.
func (w *Warp) AtBarrier() bool { return w.sm.wFlags[w.ID]&warpAtBarrier != 0 }

// NextPC returns the next instruction's location (valid if !Finished).
func (w *Warp) NextPC() isa.PC { return w.Exec.PC() }

// NextInsn returns the next instruction (valid if !Finished).
func (w *Warp) NextInsn() *isa.Instruction { return w.sm.wInsn[w.ID] }

// NextGI returns the next instruction's global index.
func (w *Warp) NextGI() int { return w.sm.G.GlobalIndex(w.Exec.PC()) }

// PendingWrites reports outstanding writes (draining condition).
func (w *Warp) PendingWrites() int { return w.pendingTotal }

// sbReady reports that no pending write overlaps warp id's next
// instruction: the cached register-need mask against the scoreboard
// bitmask. Pending counts per register are provably 0 or 1 (the
// scoreboard refuses to reissue a destination with an outstanding
// write), so one bit per register suffices.
func (sm *SM) sbReady(id int) bool {
	if sm.maskWords == 1 {
		return sm.wPending[id]&sm.wNeed[id] == 0
	}
	base := id * sm.maskWords
	for i := 0; i < sm.maskWords; i++ {
		if sm.wPending[base+i]&sm.wNeed[base+i] != 0 {
			return false
		}
	}
	return true
}

func (w *Warp) addPending(r isa.Reg, memOp bool) {
	sm := w.sm
	sm.wPending[w.ID*sm.maskWords+int(r)>>6] |= 1 << (uint(r) & 63)
	w.pendingTotal++
	if memOp {
		w.pendingMem++
	}
}

func (w *Warp) completePending(r isa.Reg, memOp bool) {
	sm := w.sm
	sm.wPending[w.ID*sm.maskWords+int(r)>>6] &^= 1 << (uint(r) & 63)
	w.pendingTotal--
	if memOp {
		w.pendingMem--
	}
	if !sm.passiveWB {
		sm.Provider.OnWriteback(w, r)
	}
}

// pendingCount returns the number of registers with outstanding writes
// (sanitizer cross-check against pendingTotal).
func (sm *SM) pendingCount(id int) int {
	base := id * sm.maskWords
	n := 0
	for i := 0; i < sm.maskWords; i++ {
		n += bits.OnesCount64(sm.wPending[base+i])
	}
	return n
}

// MemoryBlocked reports the warp is waiting on an outstanding global load
// whose destination its next instruction needs.
func (w *Warp) MemoryBlocked() bool {
	return w.pendingMem > 0 && !w.Finished() && !w.sm.sbReady(w.ID)
}

// refreshInsn re-derives warp w's cached decode — next instruction,
// class, and scoreboard need mask — after its PC moved (issue) or it
// finished. The need mask covers valid sources plus the destination: the
// same register set the map-based scoreboard walked.
func (sm *SM) refreshInsn(w *Warp) {
	id := w.ID
	base := id * sm.maskWords
	for i := 0; i < sm.maskWords; i++ {
		sm.wNeed[base+i] = 0
	}
	if sm.wFlags[id]&warpFinished != 0 {
		sm.wInsn[id] = nil
		sm.wClass[id] = isa.ClassALU
		return
	}
	in := w.Exec.Insn()
	sm.wInsn[id] = in
	sm.wClass[id] = in.Op.ClassOf()
	for i := 0; i < in.Op.NumSrc(); i++ {
		if r := in.Src[i]; r.Valid() {
			sm.wNeed[base+int(r)>>6] |= 1 << (uint(r) & 63)
		}
	}
	if in.Op.HasDst() && in.Dst.Valid() {
		sm.wNeed[base+int(in.Dst)>>6] |= 1 << (uint(in.Dst) & 63)
	}
}
