package sim

import (
	"repro/internal/exec"
	"repro/internal/isa"
)

// Warp is the timing-level wrapper around a functional warp: scoreboard
// state, stall bookkeeping, and provider hooks.
type Warp struct {
	ID    int
	Group int // scheduler group (shard) the warp belongs to

	Exec *exec.Warp

	sm *SM

	// pending[r] counts outstanding writes to register r; an instruction
	// may not issue while any of its registers has pending writes (RAW
	// and WAW hazards).
	pending []uint8
	// pendingMem counts outstanding global-load destinations (used by
	// the two-level scheduler to demote stalled warps).
	pendingMem int
	// pendingTotal counts all outstanding writes (region draining).
	pendingTotal int

	atBarrier  bool
	finished   bool
	stallUntil uint64

	// lastIssue is the cycle this warp last issued (GTO tiebreak).
	lastIssue uint64

	// ProviderData carries provider-specific per-warp state (the
	// RegLess capacity manager's warp record, RFV's rename map, ...).
	ProviderData any
}

// Finished reports whether every lane has exited.
func (w *Warp) Finished() bool { return w.finished }

// AtBarrier reports whether the warp is waiting at a CTA barrier.
func (w *Warp) AtBarrier() bool { return w.atBarrier }

// NextPC returns the next instruction's location (valid if !Finished).
func (w *Warp) NextPC() isa.PC { return w.Exec.PC() }

// NextInsn returns the next instruction (valid if !Finished).
func (w *Warp) NextInsn() *isa.Instruction { return w.Exec.Insn() }

// NextGI returns the next instruction's global index.
func (w *Warp) NextGI() int { return w.sm.G.GlobalIndex(w.Exec.PC()) }

// PendingWrites reports outstanding writes (draining condition).
func (w *Warp) PendingWrites() int { return w.pendingTotal }

// scoreboardReady reports no pending writes overlap the instruction.
func (w *Warp) scoreboardReady(in *isa.Instruction) bool {
	for i := 0; i < in.Op.NumSrc(); i++ {
		if in.Src[i].Valid() && w.pending[in.Src[i]] > 0 {
			return false
		}
	}
	if in.Op.HasDst() && in.Dst.Valid() && w.pending[in.Dst] > 0 {
		return false
	}
	return true
}

func (w *Warp) addPending(r isa.Reg, memOp bool) {
	w.pending[r]++
	w.pendingTotal++
	if memOp {
		w.pendingMem++
	}
}

func (w *Warp) completePending(r isa.Reg, memOp bool) {
	w.pending[r]--
	w.pendingTotal--
	if memOp {
		w.pendingMem--
	}
	w.sm.Provider.OnWriteback(w, r)
}

// MemoryBlocked reports the warp is waiting on an outstanding global load
// whose destination its next instruction needs.
func (w *Warp) MemoryBlocked() bool {
	return w.pendingMem > 0 && !w.finished && !w.scoreboardReady(w.Exec.Insn())
}
