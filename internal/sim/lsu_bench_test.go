package sim

import (
	"testing"

	"repro/internal/isa"
	"repro/internal/mem"
)

// coalesceAlloc is the retired implementation kept as the benchmark
// baseline: it grew a fresh []uint32 per memory instruction — one
// allocation (often several, through append growth) on every global
// load/store the SM issued.
func coalesceAlloc(addrs []uint32) []uint32 {
	var lines []uint32
	for _, a := range addrs {
		l := a &^ (mem.LineSize - 1)
		found := false
		for _, x := range lines {
			if x == l {
				found = true
				break
			}
		}
		if !found {
			lines = append(lines, l)
		}
	}
	return lines
}

// benchAddrs returns the three lane-address shapes that dominate the
// suite: fully coalesced (one line), strided (a line per lane), and a
// mixed pattern (a few lines, repeated hits).
func benchAddrs() map[string][]uint32 {
	coalesced := make([]uint32, isa.WarpWidth)
	strided := make([]uint32, isa.WarpWidth)
	mixed := make([]uint32, isa.WarpWidth)
	for i := range coalesced {
		coalesced[i] = 0x100000 + uint32(i)*4
		strided[i] = 0x100000 + uint32(i)*mem.LineSize
		mixed[i] = 0x100000 + uint32(i%4)*mem.LineSize + uint32(i)*4
	}
	return map[string][]uint32{"coalesced": coalesced, "strided": strided, "mixed": mixed}
}

// BenchmarkCoalesce measures the scratch-buffer path the LSU uses now:
// zero allocations per memory instruction.
func BenchmarkCoalesce(b *testing.B) {
	for name, addrs := range benchAddrs() {
		b.Run(name, func(b *testing.B) {
			var lines [isa.WarpWidth]uint32
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if coalesceInto(&lines, addrs) == 0 {
					b.Fatal("no lines")
				}
			}
		})
	}
}

// BenchmarkCoalesceAlloc measures the retired allocating implementation
// for before/after comparison.
func BenchmarkCoalesceAlloc(b *testing.B) {
	for name, addrs := range benchAddrs() {
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if len(coalesceAlloc(addrs)) == 0 {
					b.Fatal("no lines")
				}
			}
		})
	}
}

// TestCoalesceMatchesRetiredImplementation pins the scratch-buffer path
// to the allocating one it replaced, shape by shape.
func TestCoalesceMatchesRetiredImplementation(t *testing.T) {
	for name, addrs := range benchAddrs() {
		var lines [isa.WarpWidth]uint32
		n := coalesceInto(&lines, addrs)
		want := coalesceAlloc(addrs)
		if n != len(want) {
			t.Fatalf("%s: %d lines, want %d", name, n, len(want))
		}
		for i := range want {
			if lines[i] != want[i] {
				t.Fatalf("%s: line %d = %#x, want %#x", name, i, lines[i], want[i])
			}
		}
	}
}
