package sim

import (
	"fmt"

	"repro/internal/events"
	"repro/internal/faults"
	"repro/internal/sanitizer"
)

// SanitizerAware is an optional Provider refinement: providers with
// internal machinery (RegLess's per-shard CM/OSU/compressor) register
// their own invariant checks when a sanitizer is attached.
type SanitizerAware interface {
	AttachSanitizer(s *sanitizer.Sanitizer)
}

// FaultAware is an optional Provider refinement: providers that can host
// injected faults (corrupted OSU tags, flipped compressor patterns,
// mis-annotated region metadata) accept the injector.
type FaultAware interface {
	SetFaults(in *faults.Injector)
}

// WarpReporter is an optional Provider refinement: providers that track
// per-warp capacity state (RegLess) report it for diagnostic bundles.
type WarpReporter interface {
	// WarpDiag returns warp w's capacity state name and current region
	// (region -1 when none).
	WarpDiag(w int) (state string, region int)
}

// AttachSanitizer wires the cycle-level invariant checker through the
// machine: the SM registers its scoreboard/warp-state check and a
// SanitizerAware provider adds its own (OSU partition, CM reservations
// and transitions, staged-count agreement). Call once, before Run; a nil
// sanitizer leaves checking disabled at one branch per cycle.
func (sm *SM) AttachSanitizer(s *sanitizer.Sanitizer) {
	sm.san = s
	s.Register("sim/warps", sm.checkWarps)
	if sa, ok := sm.Provider.(SanitizerAware); ok {
		sa.AttachSanitizer(s)
	}
}

// AttachFaults hands the fault injector to every layer that can host
// faults: the memory hierarchy (delayed/dropped L1 responses) and a
// FaultAware provider (OSU/compressor/metadata corruption). Call once,
// before Run.
func (sm *SM) AttachFaults(in *faults.Injector) {
	sm.flt = in
	sm.Mem.SetFaults(in)
	if fa, ok := sm.Provider.(FaultAware); ok {
		fa.SetFaults(in)
	}
}

// ReportFault records an invariant violation detected inside a layer
// without an error return path (provider hooks, writeback callbacks).
// The first report wins; Run surfaces it as a Diagnostic at the end of
// the current cycle instead of panicking mid-callback.
func (sm *SM) ReportFault(component, violation string, warp int) {
	if sm.fault != nil {
		return
	}
	sm.fault = &sanitizer.Diagnostic{
		Component: component,
		Violation: violation,
		Cycle:     sm.cycle,
		Warp:      warp,
	}
}

// CheckHealth inspects the machine after a step: a latched fault report,
// the forward-progress watchdog, then the sanitizer sweep. It returns a
// fully-populated Diagnostic error on the first problem. The healthy
// path costs two nil checks and one compare.
func (sm *SM) CheckHealth() error {
	if sm.fault != nil {
		return sm.diagnose(sm.fault)
	}
	if wd := sm.Cfg.WatchdogCycles; wd > 0 && sm.cycle-sm.lastProgress > wd && !sm.allDone() {
		return sm.diagnose(&sanitizer.Diagnostic{
			Component: "sim/watchdog",
			Violation: fmt.Sprintf("no warp issued for %d cycles (last issue at cycle %d, %d insns retired)",
				sm.cycle-sm.lastProgress, sm.lastProgress, sm.Stats.DynInsns),
			Cycle: sm.cycle,
			Warp:  -1,
		})
	}
	if d := sm.san.Check(sm.cycle); d != nil {
		return sm.diagnose(d)
	}
	return nil
}

// checkWarps is the SM's own invariant: per-warp scoreboard totals agree
// with the per-register counters and no warp is in an impossible state.
func (sm *SM) checkWarps() error {
	for _, w := range sm.Warps {
		sum := sm.pendingCount(w.ID)
		if sum != w.pendingTotal {
			return fmt.Errorf("warp %d: scoreboard counters sum to %d but pending total is %d",
				w.ID, sum, w.pendingTotal)
		}
		if w.pendingMem < 0 || w.pendingMem > w.pendingTotal {
			return fmt.Errorf("warp %d: pending mem writes %d outside [0,%d]",
				w.ID, w.pendingMem, w.pendingTotal)
		}
		if w.Finished() && w.AtBarrier() {
			return fmt.Errorf("warp %d: finished while waiting at a barrier", w.ID)
		}
	}
	return nil
}

// diagEvents is how many trailing recorded events a bundle carries.
const diagEvents = 64

// diagnose completes a Diagnostic with the machine context: run
// identity, applied faults, per-warp state (capacity phase via
// WarpReporter), the attributed stall breakdown, a metrics snapshot, and
// the last recorded events.
func (sm *SM) diagnose(d *sanitizer.Diagnostic) *sanitizer.Diagnostic {
	d.Kernel = sm.K.Name
	d.Provider = sm.Provider.Name()
	d.FaultsApplied = sm.flt.Applied()
	wr, _ := sm.Provider.(WarpReporter)
	var counts [events.NumStallReasons]int
	for _, w := range sm.Warps {
		wd := sanitizer.WarpDiag{
			ID:            w.ID,
			Group:         w.Group,
			Region:        -1,
			Finished:      w.Finished(),
			AtBarrier:     w.AtBarrier(),
			PendingWrites: w.pendingTotal,
			LastIssue:     w.lastIssue,
		}
		if wr != nil {
			wd.State, wd.Region = wr.WarpDiag(w.ID)
		}
		d.Warps = append(d.Warps, wd)
		if !w.Finished() {
			counts[sm.classifyWarp(w)]++
		}
	}
	for r := events.StallReason(0); r < events.NumStallReasons; r++ {
		if counts[r] > 0 {
			d.Stalls = append(d.Stalls, sanitizer.StallCount{Reason: r.String(), Warps: counts[r]})
		}
	}
	for _, s := range sm.Metrics.Snapshot() {
		d.Metrics = append(d.Metrics, sanitizer.Metric{Name: s.Name, Value: s.Value})
	}
	for _, e := range sm.Rec.Tail(diagEvents) {
		d.Events = append(d.Events, sanitizer.EventRecord{
			Cycle:  e.Cycle,
			Kind:   e.Kind.String(),
			Warp:   int(e.Warp),
			Detail: eventDetail(e),
		})
	}
	return d
}

// eventDetail renders an event's per-kind payload for the bundle.
func eventDetail(e events.Event) string {
	switch e.Kind {
	case events.KindIssue:
		return fmt.Sprintf("group %d gi %d", e.B, e.Arg)
	case events.KindStall:
		return fmt.Sprintf("group %d %s", e.B, events.StallReason(e.A))
	case events.KindWarpState:
		return fmt.Sprintf("shard %d -> %s region %d", e.B, events.Phase(e.A), e.Region())
	case events.KindBarrier:
		if e.A == 1 {
			return "enter"
		}
		return "release"
	case events.KindPreloadIssue:
		return fmt.Sprintf("shard %d r%d", e.B, e.Arg)
	case events.KindPreloadFill:
		return fmt.Sprintf("shard %d r%d from %s", e.B, e.Arg, events.PreloadSrc(e.A))
	case events.KindOSUAlloc, events.KindOSUActivate, events.KindOSUDemote, events.KindOSUEvict, events.KindOSUErase:
		return fmt.Sprintf("shard %d r%d %s", e.B, e.Arg, events.LineState(e.A))
	case events.KindCompress:
		return fmt.Sprintf("shard %d pattern %d hit=%d", e.B, e.A, e.Arg)
	case events.KindL1Access:
		return fmt.Sprintf("addr %#x flags %d", e.Arg, e.A)
	default:
		return ""
	}
}
