package sim

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/exec"
	"repro/internal/sanitizer"
)

// stuckProvider refuses every issue: a synthetic livelock (the machine
// ticks but no warp ever makes forward progress).
type stuckProvider struct{ nullProvider }

func (*stuckProvider) CanIssue(*Warp) bool { return false }

// faultingProvider latches a fault report from inside Tick, modeling a
// layer that detects corruption in a hook with no error return.
type faultingProvider struct {
	nullProvider
	sm *SM
}

func (p *faultingProvider) Attach(sm *SM) error { p.sm = sm; return nil }
func (p *faultingProvider) Tick() {
	if p.sm.Cycle() == 50 {
		p.sm.ReportFault("test/unit", "synthetic corruption", 3)
	}
}

func asDiagnostic(t *testing.T, err error) *sanitizer.Diagnostic {
	t.Helper()
	if err == nil {
		t.Fatal("run succeeded, want diagnostic")
	}
	var d *sanitizer.Diagnostic
	if !errors.As(err, &d) {
		t.Fatalf("error is not a Diagnostic: %v", err)
	}
	return d
}

// TestWatchdogFiresOnLivelock: with no warp ever issuing, the
// forward-progress watchdog must produce a diagnostic shortly after its
// window — orders of magnitude before MaxCycles would abort.
func TestWatchdogFiresOnLivelock(t *testing.T) {
	cfgv := testConfig()
	cfgv.WatchdogCycles = 500
	sm, err := New(cfgv, smallKernel(t), &stuckProvider{}, exec.NewMemory(nil))
	if err != nil {
		t.Fatal(err)
	}
	_, err = sm.Run()
	d := asDiagnostic(t, err)
	if d.Component != "sim/watchdog" {
		t.Errorf("component = %q, want sim/watchdog", d.Component)
	}
	if d.Cycle > 1000 {
		t.Errorf("watchdog tripped at cycle %d, want shortly after the %d-cycle window (MaxCycles %d)",
			d.Cycle, cfgv.WatchdogCycles, cfgv.MaxCycles)
	}
	if !strings.Contains(d.Violation, "no warp issued") {
		t.Errorf("violation = %q", d.Violation)
	}
	if len(d.Warps) != cfgv.Warps {
		t.Errorf("bundle tracks %d warps, want %d", len(d.Warps), cfgv.Warps)
	}
	if len(d.Metrics) == 0 {
		t.Error("bundle has no metrics snapshot")
	}
	if len(d.Stalls) == 0 {
		t.Error("bundle has no stall attribution")
	}
}

// TestWatchdogQuietOnHealthyRun: a tight-but-sufficient window must not
// trip while warps are genuinely progressing.
func TestWatchdogQuietOnHealthyRun(t *testing.T) {
	cfgv := testConfig()
	cfgv.WatchdogCycles = 10_000
	sm, err := New(cfgv, smallKernel(t), &nullProvider{}, exec.NewMemory(nil))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sm.Run(); err != nil {
		t.Fatalf("healthy run tripped: %v", err)
	}
}

// TestMaxCyclesProducesDiagnostic: the MaxCycles abort is a structured
// bundle naming sim/maxcycles, not a bare error.
func TestMaxCyclesProducesDiagnostic(t *testing.T) {
	cfgv := testConfig()
	cfgv.MaxCycles = 10
	cfgv.WatchdogCycles = 0 // isolate the MaxCycles path
	sm, err := New(cfgv, smallKernel(t), &stuckProvider{}, exec.NewMemory(nil))
	if err != nil {
		t.Fatal(err)
	}
	_, err = sm.Run()
	d := asDiagnostic(t, err)
	if d.Component != "sim/maxcycles" {
		t.Errorf("component = %q, want sim/maxcycles", d.Component)
	}
	if !strings.Contains(d.Violation, "exceeded 10 cycles") {
		t.Errorf("violation = %q", d.Violation)
	}
	if d.Kernel != "small" || d.Provider == "" {
		t.Errorf("bundle lacks run identity: kernel %q provider %q", d.Kernel, d.Provider)
	}
}

// TestReportFaultSurfacesAtEndOfCycle: a hook-latched fault aborts the
// run as a completed diagnostic bundle.
func TestReportFaultSurfacesAtEndOfCycle(t *testing.T) {
	p := &faultingProvider{}
	sm, err := New(testConfig(), smallKernel(t), p, exec.NewMemory(nil))
	if err != nil {
		t.Fatal(err)
	}
	_, err = sm.Run()
	d := asDiagnostic(t, err)
	if d.Component != "test/unit" || d.Warp != 3 {
		t.Errorf("diagnostic = %+v", d)
	}
	if d.Cycle != 50 {
		t.Errorf("fault latched at cycle %d, want 50", d.Cycle)
	}
	// Only the first report wins.
	sm.ReportFault("test/other", "later", 1)
	if sm.fault.Component != "test/unit" {
		t.Error("second ReportFault overwrote the first")
	}
}

// TestSanitizerSweepCatchesScoreboardCorruption: the SM's own registered
// invariant (scoreboard totals) turns state corruption into a diagnostic.
func TestSanitizerSweepCatchesScoreboardCorruption(t *testing.T) {
	sm, err := New(testConfig(), smallKernel(t), &nullProvider{}, exec.NewMemory(nil))
	if err != nil {
		t.Fatal(err)
	}
	sm.AttachSanitizer(sanitizer.New())
	if err := sm.CheckHealth(); err != nil {
		t.Fatalf("fresh machine unhealthy: %v", err)
	}
	sm.Warps[2].pendingTotal = 7 // desync from the per-register counters
	err = sm.CheckHealth()
	d := asDiagnostic(t, err)
	if d.Component != "sim/warps" {
		t.Errorf("component = %q, want sim/warps", d.Component)
	}
	if !strings.Contains(d.Violation, "warp 2") {
		t.Errorf("violation = %q", d.Violation)
	}
}

// TestSanitizedRunMatchesPlainRun: enabling the sanitizer must not
// perturb simulation results, only observe them.
func TestSanitizedRunMatchesPlainRun(t *testing.T) {
	k := smallKernel(t)
	plain, _ := runSim(t, k, testConfig())

	sm, err := New(testConfig(), k, &nullProvider{}, exec.NewMemory(nil))
	if err != nil {
		t.Fatal(err)
	}
	sm.AttachSanitizer(sanitizer.New())
	st, err := sm.Run()
	if err != nil {
		t.Fatalf("sanitized run failed: %v", err)
	}
	if st.Cycles != plain.Cycles || st.DynInsns != plain.DynInsns {
		t.Errorf("sanitizer perturbed the run: %d/%d cycles, %d/%d insns",
			st.Cycles, plain.Cycles, st.DynInsns, plain.DynInsns)
	}
}
