package sim

import (
	"repro/internal/isa"
	"repro/internal/mem"
)

// lsu is the load/store unit: a queue of coalesced memory instructions
// whose line requests drain into the bypassing L2 path as the interconnect
// accepts them. One memory instruction is accepted per issue (the SM's
// single LSU port); its lines may take several cycles to inject.
type lsu struct {
	sm    *SM
	queue []*memOp
	cap   int
}

type memOp struct {
	w         *Warp
	dst       isa.Reg // NoReg for stores
	write     bool
	lines     []uint32
	submitted int
	remaining int
}

func newLSU(sm *SM, capacity int) *lsu {
	return &lsu{sm: sm, cap: capacity}
}

func (l *lsu) hasRoom() bool { return len(l.queue) < l.cap }

func (l *lsu) empty() bool { return len(l.queue) == 0 }

// submit enqueues a coalesced memory instruction. Lines must be non-empty
// unless every lane was inactive (then the op completes immediately).
func (l *lsu) submit(w *Warp, dst isa.Reg, lines []uint32, write bool) {
	op := &memOp{w: w, dst: dst, write: write, lines: lines, remaining: len(lines)}
	if len(lines) == 0 {
		l.finish(op)
		return
	}
	l.queue = append(l.queue, op)
}

// tick injects as many line requests as the memory system accepts,
// in order across queued ops (one op's lines first).
func (l *lsu) tick() {
	for len(l.queue) > 0 {
		op := l.queue[0]
		for op.submitted < len(op.lines) {
			line := op.lines[op.submitted]
			accepted := l.sm.Mem.DataAccess(line, op.write, func(mem.Source) {
				op.remaining--
				if op.remaining == 0 {
					l.finish(op)
				}
			})
			if !accepted {
				return
			}
			op.submitted++
		}
		// All lines injected; pop. Completion happens via callbacks.
		l.queue = l.queue[1:]
	}
}

func (l *lsu) finish(op *memOp) {
	if !op.write && op.dst.Valid() {
		op.w.completePending(op.dst, true)
	}
}
