package sim

import (
	"repro/internal/isa"
	"repro/internal/mem"
)

// lsu is the load/store unit: a queue of coalesced memory instructions
// whose line requests drain into the bypassing L2 path as the interconnect
// accepts them. One memory instruction is accepted per issue (the SM's
// single LSU port); its lines may take several cycles to inject.
//
// Ops are pooled and their line list is an inline array (a warp has at
// most WarpWidth lanes, so at most WarpWidth distinct lines), so the
// steady state performs no allocation per memory instruction — the fresh
// []uint32 per coalesce call the profiles surfaced is gone.
type lsu struct {
	sm    *SM
	queue []*memOp
	cap   int
	free  *memOp
}

type memOp struct {
	w         *Warp
	dst       isa.Reg // NoReg for stores
	write     bool
	lines     [isa.WarpWidth]uint32
	nLines    int
	submitted int
	remaining int
	// done is the completion callback handed to the memory system; bound
	// to the op once at first allocation so pooled reuse allocates no
	// closures.
	done func(mem.Source)
	next *memOp // pool free list
}

func newLSU(sm *SM, capacity int) *lsu {
	return &lsu{sm: sm, cap: capacity}
}

func (l *lsu) hasRoom() bool { return len(l.queue) < l.cap }

func (l *lsu) empty() bool { return len(l.queue) == 0 }

func (l *lsu) alloc() *memOp {
	op := l.free
	if op == nil {
		op = &memOp{}
		op.done = func(mem.Source) {
			op.remaining--
			if op.remaining == 0 {
				l.finish(op)
				l.release(op)
			}
		}
		return op
	}
	l.free = op.next
	return op
}

func (l *lsu) release(op *memOp) {
	op.w = nil
	op.next = l.free
	l.free = op
}

// submit coalesces one memory instruction's lane addresses and enqueues
// it. With no active lanes the op completes immediately.
func (l *lsu) submit(w *Warp, dst isa.Reg, addrs []uint32, write bool) {
	op := l.alloc()
	op.w, op.dst, op.write = w, dst, write
	op.nLines = coalesceInto(&op.lines, addrs)
	op.submitted, op.remaining = 0, op.nLines
	l.sm.Stats.MemLines += uint64(op.nLines)
	if op.nLines == 0 {
		l.finish(op)
		l.release(op)
		return
	}
	l.queue = append(l.queue, op)
}

// tick injects as many line requests as the memory system accepts,
// in order across queued ops (one op's lines first).
func (l *lsu) tick() {
	for len(l.queue) > 0 {
		op := l.queue[0]
		for op.submitted < op.nLines {
			if !l.sm.Mem.DataAccess(op.lines[op.submitted], op.write, op.done) {
				return
			}
			op.submitted++
		}
		// All lines injected; pop. Completion happens via callbacks.
		l.queue = l.queue[1:]
	}
}

func (l *lsu) finish(op *memOp) {
	if !op.write && op.dst.Valid() {
		op.w.completePending(op.dst, true)
	}
}

// coalesceInto groups per-lane byte addresses into distinct 128 B lines,
// writing them into the caller's inline buffer; returns the line count.
func coalesceInto(lines *[isa.WarpWidth]uint32, addrs []uint32) int {
	n := 0
	for _, a := range addrs {
		ln := a &^ (mem.LineSize - 1)
		found := false
		for i := 0; i < n; i++ {
			if lines[i] == ln {
				found = true
				break
			}
		}
		if !found {
			lines[n] = ln
			n++
		}
	}
	return n
}
