// Package sim is the cycle-level streaming-multiprocessor model: 64 warps
// across 4 scheduler groups (Table 1's GTX 980 SM), GTO or two-level warp
// scheduling, a scoreboard, latency-modelled execution pipes, CTA barriers,
// an LSU with address coalescing over the bypassing L2 path, and a
// pluggable register Provider (baseline RF / RFV / RFH / RegLess).
//
// The simulator co-simulates function and timing: issuing an instruction
// executes it functionally (package exec), so values, divergence, and
// memory addresses are real; the surrounding machinery decides only *when*
// each instruction issues and completes.
package sim

import (
	"fmt"

	"repro/internal/cfg"
	"repro/internal/events"
	"repro/internal/exec"
	"repro/internal/faults"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/metrics"
	"repro/internal/sanitizer"
)

// SchedKind selects the warp scheduling policy.
type SchedKind int

const (
	// SchedGTO is greedy-then-oldest (the baseline; Table 1).
	SchedGTO SchedKind = iota
	// SchedTwoLevel is the two-level scheduler of Gebhart et al. [9],
	// used by the RFH and Figure 2 experiments.
	SchedTwoLevel
	// SchedLRR is loose round-robin: fairness-first, no greediness.
	SchedLRR
)

func (s SchedKind) String() string {
	switch s {
	case SchedTwoLevel:
		return "2-level"
	case SchedLRR:
		return "LRR"
	default:
		return "GTO"
	}
}

// Config parameterizes the SM (defaults follow Table 1).
type Config struct {
	Warps      int
	Schedulers int
	Sched      SchedKind
	// ActiveSet is the two-level scheduler's active warps per scheduler.
	ActiveSet int
	// PromoteLatency is the pipeline-refill delay a warp pays when the
	// two-level scheduler promotes it into the active set.
	PromoteLatency int

	// Execution latencies (cycles from issue to writeback).
	ALULat   int
	FMALat   int
	SFULat   int
	ShmemLat int
	// SFUIssueInterval throttles SFU issue per scheduler group.
	SFUIssueInterval int
	// LSUQueue bounds in-flight memory instructions per SM.
	LSUQueue int

	Mem mem.Config

	// WarpIDBase offsets the global warp/thread IDs of this SM's warps
	// (multi-SM simulation: SM i hosts warps [i*Warps, (i+1)*Warps)).
	// Must be a multiple of the kernel's WarpsPerCTA.
	WarpIDBase int

	// WindowSize is the sampling window for working-set and traffic
	// series (100 cycles in Figures 2 and 3).
	WindowSize int
	// MaxCycles aborts runaway simulations.
	MaxCycles uint64
	// WatchdogCycles trips the forward-progress watchdog when no warp
	// issues for this many cycles while warps remain unfinished (0
	// disables). It fires far sooner than MaxCycles and produces a full
	// Diagnostic instead of a bare overrun error.
	WatchdogCycles uint64
}

// DefaultConfig returns the Table 1 SM configuration.
func DefaultConfig() Config {
	return Config{
		Warps:            64,
		Schedulers:       4,
		Sched:            SchedGTO,
		ActiveSet:        3,
		PromoteLatency:   4,
		ALULat:           6,
		FMALat:           6,
		SFULat:           24,
		ShmemLat:         26,
		SFUIssueInterval: 4,
		LSUQueue:         16,
		Mem:              mem.DefaultConfig(),
		WindowSize:       100,
		MaxCycles:        30_000_000,
		WatchdogCycles:   1_000_000,
	}
}

// Stats aggregates SM-level counters.
type Stats struct {
	Cycles      uint64
	DynInsns    uint64
	IssueStalls uint64

	ALUOps, FMAOps, SFUOps        uint64
	GlobalLoads, GlobalStores     uint64
	SharedOps, Branches, Barriers uint64

	// MemLines counts coalesced line requests issued by the LSU.
	MemLines uint64

	// ActiveLanes sums the active-lane count over issued instructions;
	// ActiveLanes / (DynInsns*32) is SIMT lane efficiency.
	ActiveLanes uint64

	// WorkingSetKB is the average distinct register bytes touched per
	// window (Figure 2).
	WorkingSetKB float64
	// BackingSeries samples the provider's backing-store accesses per
	// window over time (Figure 3).
	BackingSeries []uint64
}

// IPC returns retired instructions per cycle.
func (s *Stats) IPC() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.DynInsns) / float64(s.Cycles)
}

// SIMTEfficiency returns the mean fraction of active lanes per issued
// instruction (1.0 = fully convergent).
func (s *Stats) SIMTEfficiency() float64 {
	if s.DynInsns == 0 {
		return 0
	}
	return float64(s.ActiveLanes) / float64(s.DynInsns*isa.WarpWidth)
}

func popcount32(m uint32) int {
	n := 0
	for ; m != 0; m &= m - 1 {
		n++
	}
	return n
}

// SM is one streaming multiprocessor.
type SM struct {
	Cfg      Config
	K        *isa.Kernel
	G        *cfg.Graph
	Mem      *mem.Hierarchy
	Provider Provider
	Warps    []*Warp

	Stats Stats

	// Metrics is the simulation's observability registry: every layer
	// (SM, provider, OSU/CM/compressor shards, memory hierarchy)
	// registers its counters here at construction. Attach a sink
	// (Metrics.SetSink) before Run to stream per-window snapshots.
	Metrics *metrics.Registry

	// Rec, when attached (AttachRecorder), receives cycle-stamped typed
	// events from every layer; nil (the default) costs one branch per
	// emission site.
	Rec *events.Recorder

	// prober is the provider's side-effect-free CanIssue, cached at
	// AttachRecorder for stall attribution (nil: always issuable).
	prober IssueProber

	groups [][]*Warp
	sched  scheduler
	lsu    *lsu

	// Per-scheduler-group issue accounting (cycles with an issue, cycles
	// without, scoreboard rejections, provider staging rejections).
	mIssued        []metrics.Counter
	mNoIssue       []metrics.Counter
	mScoreboard    []metrics.Counter
	mProviderStall []metrics.Counter

	cycle     uint64
	calendar  map[uint64][]func()
	atBarrier []bool

	// Sanitizer / fault-injection state (nil when disabled; the healthy
	// path costs two nil checks and one compare per cycle).
	san          *sanitizer.Sanitizer
	flt          *faults.Injector
	fault        *sanitizer.Diagnostic
	lastProgress uint64

	sfuNextIssue []uint64

	// Working-set window tracking.
	windowRegs    map[uint32]struct{}
	windowSum     float64
	windowCount   uint64
	lastBackingCt uint64
}

// New builds an SM running kernel k under the given provider. The memory
// image mm may be nil for the default deterministic contents.
func New(cfgv Config, k *isa.Kernel, p Provider, mm *exec.Memory) (*SM, error) {
	return NewWithHierarchy(cfgv, k, p, mm, nil)
}

// NewWithHierarchy is New with an injected memory hierarchy (multi-SM
// simulation attaches per-SM hierarchies to a shared L2). A nil hierarchy
// builds a private one from cfgv.Mem.
func NewWithHierarchy(cfgv Config, k *isa.Kernel, p Provider, mm *exec.Memory, hier *mem.Hierarchy) (*SM, error) {
	if err := k.Validate(); err != nil {
		return nil, err
	}
	if cfgv.Warps%cfgv.Schedulers != 0 {
		return nil, fmt.Errorf("sim: %d warps not divisible into %d schedulers", cfgv.Warps, cfgv.Schedulers)
	}
	if cfgv.WarpIDBase%k.WarpsPerCTA != 0 {
		return nil, fmt.Errorf("sim: warp ID base %d not aligned to CTA size %d", cfgv.WarpIDBase, k.WarpsPerCTA)
	}
	if mm == nil {
		mm = exec.NewMemory(nil)
	}
	if hier == nil {
		hier = mem.New(cfgv.Mem)
	}
	g := cfg.New(k)
	sm := &SM{
		Cfg:          cfgv,
		K:            k,
		G:            g,
		Mem:          hier,
		Provider:     p,
		Metrics:      metrics.NewRegistry(),
		calendar:     map[uint64][]func(){},
		windowRegs:   map[uint32]struct{}{},
		atBarrier:    make([]bool, cfgv.Warps),
		sfuNextIssue: make([]uint64, cfgv.Schedulers),
	}
	sm.registerMetrics()
	sm.groups = make([][]*Warp, cfgv.Schedulers)
	for i := 0; i < cfgv.Warps; i++ {
		gid := cfgv.WarpIDBase + i
		w := &Warp{
			ID:      i,
			Group:   i % cfgv.Schedulers,
			Exec:    exec.NewWarp(k, g, gid, gid/k.WarpsPerCTA, mm),
			sm:      sm,
			pending: make([]uint8, k.NumRegs),
		}
		sm.Warps = append(sm.Warps, w)
		sm.groups[w.Group] = append(sm.groups[w.Group], w)
	}
	switch cfgv.Sched {
	case SchedTwoLevel:
		sm.sched = newTwoLevel(sm.groups, cfgv.ActiveSet)
	case SchedLRR:
		sm.sched = newLRR(sm.groups)
	default:
		sm.sched = newGTO(sm.groups)
	}
	sm.lsu = newLSU(sm, cfgv.LSUQueue)
	if err := p.Attach(sm); err != nil {
		return nil, err
	}
	return sm, nil
}

// registerMetrics binds the SM's own counters into the registry: views
// over the Stats struct (zero hot-path cost) plus per-scheduler-group
// issue/stall counters and an LSU backlog gauge. The memory hierarchy and
// the provider add their own cells afterwards (provider at Attach).
func (sm *SM) registerMetrics() {
	r := sm.Metrics
	r.Bind("sim/dyn_insns", &sm.Stats.DynInsns)
	r.Bind("sim/issue_stalls", &sm.Stats.IssueStalls)
	r.Bind("sim/alu_ops", &sm.Stats.ALUOps)
	r.Bind("sim/fma_ops", &sm.Stats.FMAOps)
	r.Bind("sim/sfu_ops", &sm.Stats.SFUOps)
	r.Bind("sim/global_loads", &sm.Stats.GlobalLoads)
	r.Bind("sim/global_stores", &sm.Stats.GlobalStores)
	r.Bind("sim/shared_ops", &sm.Stats.SharedOps)
	r.Bind("sim/branches", &sm.Stats.Branches)
	r.Bind("sim/barriers", &sm.Stats.Barriers)
	r.Bind("sim/mem_lines", &sm.Stats.MemLines)
	r.Bind("sim/active_lanes", &sm.Stats.ActiveLanes)
	r.Gauge("sim/lsu_queue_depth", func() uint64 { return uint64(len(sm.lsu.queue)) })
	for g := 0; g < sm.Cfg.Schedulers; g++ {
		sm.mIssued = append(sm.mIssued, r.Counter(fmt.Sprintf("sim/sched/g%d/issue_cycles", g)))
		sm.mNoIssue = append(sm.mNoIssue, r.Counter(fmt.Sprintf("sim/sched/g%d/stall_cycles", g)))
		sm.mScoreboard = append(sm.mScoreboard, r.Counter(fmt.Sprintf("sim/sched/g%d/scoreboard_rejects", g)))
		sm.mProviderStall = append(sm.mProviderStall, r.Counter(fmt.Sprintf("sim/sched/g%d/provider_rejects", g)))
	}
	sm.Mem.BindMetrics(r)
}

// Cycle returns the current cycle.
func (sm *SM) Cycle() uint64 { return sm.cycle }

// After schedules fn to run delay cycles from now; providers use it for
// fixed-latency internal operations (e.g. compressor decompress delay).
func (sm *SM) After(delay int, fn func()) { sm.after(delay, fn) }

// after schedules fn at cycle now+delay.
func (sm *SM) after(delay int, fn func()) {
	c := sm.cycle + uint64(delay)
	sm.calendar[c] = append(sm.calendar[c], fn)
}

// Run simulates to completion and returns the statistics. Abnormal
// terminations — a MaxCycles overrun, a watchdog trip, a sanitizer
// violation, or a fault reported by the provider — return a
// *sanitizer.Diagnostic error carrying the machine state at detection.
func (sm *SM) Run() (*Stats, error) {
	for !sm.Done() {
		if sm.cycle >= sm.Cfg.MaxCycles {
			return nil, sm.diagnose(&sanitizer.Diagnostic{
				Component: "sim/maxcycles",
				Violation: fmt.Sprintf("kernel %q exceeded %d cycles (%d insns retired)",
					sm.K.Name, sm.Cfg.MaxCycles, sm.Stats.DynInsns),
				Cycle: sm.cycle,
				Warp:  -1,
			})
		}
		sm.StepOne()
		if err := sm.CheckHealth(); err != nil {
			return nil, err
		}
	}
	return sm.Finalize(), nil
}

// Done reports whether every warp finished and all machinery drained.
func (sm *SM) Done() bool {
	return sm.allDone() && sm.Provider.Drained() && sm.Mem.Drained() && sm.lsu.empty()
}

// StepOne advances the SM by one cycle (lockstep multi-SM simulation).
func (sm *SM) StepOne() { sm.step() }

// Finalize closes the statistics windows and returns the stats. Call once
// after the last StepOne.
func (sm *SM) Finalize() *Stats {
	sm.finishWindows()
	sm.Stats.Cycles = sm.cycle
	return &sm.Stats
}

func (sm *SM) allDone() bool {
	for _, w := range sm.Warps {
		if !w.finished {
			return false
		}
	}
	return true
}

// step advances the SM one cycle.
func (sm *SM) step() {
	sm.cycle++
	sm.Rec.SetCycle(sm.cycle)
	sm.Mem.Tick()
	if fns, ok := sm.calendar[sm.cycle]; ok {
		for _, fn := range fns {
			fn()
		}
		delete(sm.calendar, sm.cycle)
	}
	sm.Provider.Tick()
	sm.lsu.tick()
	for g := 0; g < sm.Cfg.Schedulers; g++ {
		if w := sm.sched.pick(g, sm); w != nil {
			sm.mIssued[g].Inc()
			if sm.Rec.Enabled(events.MaskSched) {
				sm.Rec.Issue(g, w.ID, w.NextGI())
			}
			sm.issue(w)
		} else {
			sm.mNoIssue[g].Inc()
			if sm.Rec.Enabled(events.MaskSched) {
				reason, culprit := sm.stallReason(g)
				sm.Rec.Stall(g, reason, culprit)
			}
		}
	}
	sm.releaseBarriers()
	sm.sampleWindow()
}

// ready reports whether w can issue this cycle (all hazards clear).
func (sm *SM) ready(w *Warp) bool {
	if w.finished || w.atBarrier || w.stallUntil > sm.cycle {
		return false
	}
	in := w.Exec.Insn()
	if !w.scoreboardReady(in) {
		sm.mScoreboard[w.Group].Inc()
		return false
	}
	switch in.Op.ClassOf() {
	case isa.ClassMemGlobal:
		if !sm.lsu.hasRoom() {
			return false
		}
	case isa.ClassSFU:
		if sm.sfuNextIssue[w.Group] > sm.cycle {
			return false
		}
	}
	if !sm.Provider.CanIssue(w) {
		sm.Stats.IssueStalls++
		sm.mProviderStall[w.Group].Inc()
		return false
	}
	return true
}

// issue executes one instruction from w and models its timing.
func (sm *SM) issue(w *Warp) {
	info := w.Exec.Step()
	w.lastIssue = sm.cycle
	sm.lastProgress = sm.cycle
	sm.Stats.DynInsns++
	sm.Stats.ActiveLanes += uint64(popcount32(info.Mask))
	sm.trackWindow(w, info.Insn)

	penalty := sm.Provider.OnIssue(w, &info)
	if penalty > 0 {
		w.stallUntil = sm.cycle + uint64(penalty)
	}

	in := info.Insn
	switch in.Op.ClassOf() {
	case isa.ClassALU:
		sm.Stats.ALUOps++
		sm.retire(w, in, sm.Cfg.ALULat, false)
	case isa.ClassFMA:
		sm.Stats.FMAOps++
		sm.retire(w, in, sm.Cfg.FMALat, false)
	case isa.ClassSFU:
		sm.Stats.SFUOps++
		sm.sfuNextIssue[w.Group] = sm.cycle + uint64(sm.Cfg.SFUIssueInterval)
		sm.retire(w, in, sm.Cfg.SFULat, false)
	case isa.ClassMemShared:
		sm.Stats.SharedOps++
		sm.retire(w, in, sm.Cfg.ShmemLat, false)
	case isa.ClassMemGlobal:
		lines := coalesce(info.Addrs)
		sm.Stats.MemLines += uint64(len(lines))
		if in.Op.IsStore() {
			sm.Stats.GlobalStores++
			sm.lsu.submit(w, isa.NoReg, lines, true)
		} else {
			sm.Stats.GlobalLoads++
			w.addPending(in.Dst, true)
			sm.lsu.submit(w, in.Dst, lines, false)
		}
	case isa.ClassControl:
		sm.Stats.Branches++
	case isa.ClassBarrier:
		sm.Stats.Barriers++
		w.atBarrier = true
		sm.Rec.Barrier(w.Group, w.ID, true)
	case isa.ClassExit:
		if info.Exited {
			w.finished = true
			sm.Rec.Exit(w.Group, w.ID)
			sm.Provider.OnWarpFinish(w)
		}
	}
}

// retire schedules the scoreboard release for a fixed-latency op.
func (sm *SM) retire(w *Warp, in *isa.Instruction, lat int, memOp bool) {
	if !in.Op.HasDst() || !in.Dst.Valid() {
		return
	}
	dst := in.Dst
	w.addPending(dst, memOp)
	sm.after(lat, func() { w.completePending(dst, memOp) })
}

// coalesce groups per-lane byte addresses into distinct 128 B lines.
func coalesce(addrs []uint32) []uint32 {
	var lines []uint32
	for _, a := range addrs {
		l := a &^ (mem.LineSize - 1)
		found := false
		for _, x := range lines {
			if x == l {
				found = true
				break
			}
		}
		if !found {
			lines = append(lines, l)
		}
	}
	return lines
}

// releaseBarriers frees CTAs whose live warps have all arrived.
func (sm *SM) releaseBarriers() {
	per := sm.K.WarpsPerCTA
	for lo := 0; lo < len(sm.Warps); lo += per {
		hi := lo + per
		if hi > len(sm.Warps) {
			hi = len(sm.Warps)
		}
		allAt := true
		anyAt := false
		for i := lo; i < hi; i++ {
			w := sm.Warps[i]
			if w.finished {
				continue
			}
			if !w.atBarrier {
				allAt = false
			} else {
				anyAt = true
			}
		}
		if allAt && anyAt {
			for i := lo; i < hi; i++ {
				w := sm.Warps[i]
				if w.atBarrier {
					w.atBarrier = false
					sm.Rec.Barrier(w.Group, w.ID, false)
				}
			}
		}
	}
}

// trackWindow records register accesses for the working-set series.
func (sm *SM) trackWindow(w *Warp, in *isa.Instruction) {
	key := func(r isa.Reg) uint32 { return uint32(w.ID)<<16 | uint32(r) }
	for i := 0; i < in.Op.NumSrc(); i++ {
		if in.Src[i].Valid() {
			sm.windowRegs[key(in.Src[i])] = struct{}{}
		}
	}
	if in.Op.HasDst() && in.Dst.Valid() {
		sm.windowRegs[key(in.Dst)] = struct{}{}
	}
}

// sampleWindow closes a window at each WindowSize boundary.
func (sm *SM) sampleWindow() {
	if sm.Cfg.WindowSize <= 0 || sm.cycle%uint64(sm.Cfg.WindowSize) != 0 {
		return
	}
	sm.windowSum += float64(len(sm.windowRegs)) * mem.LineSize / 1024.0
	sm.windowCount++
	for k := range sm.windowRegs {
		delete(sm.windowRegs, k)
	}
	cur := sm.Provider.Stats().BackingAccesses
	sm.Stats.BackingSeries = append(sm.Stats.BackingSeries, cur-sm.lastBackingCt)
	sm.lastBackingCt = cur
	if sm.Metrics.HasSink() {
		sm.Metrics.CloseWindow(sm.cycle)
	}
}

func (sm *SM) finishWindows() {
	if sm.windowCount > 0 {
		sm.Stats.WorkingSetKB = sm.windowSum / float64(sm.windowCount)
	}
	// Close the final partial window so exported deltas always sum to the
	// run's counter totals (CloseWindow skips empty intervals itself).
	if sm.Metrics.HasSink() {
		sm.Metrics.CloseWindow(sm.cycle)
	}
}
