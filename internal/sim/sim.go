// Package sim is the cycle-level streaming-multiprocessor model: 64 warps
// across 4 scheduler groups (Table 1's GTX 980 SM), GTO or two-level warp
// scheduling, a scoreboard, latency-modelled execution pipes, CTA barriers,
// an LSU with address coalescing over the bypassing L2 path, and a
// pluggable register Provider (baseline RF / RFV / RFH / RegLess).
//
// The simulator co-simulates function and timing: issuing an instruction
// executes it functionally (package exec), so values, divergence, and
// memory addresses are real; the surrounding machinery decides only *when*
// each instruction issues and completes.
package sim

import (
	"context"
	"fmt"
	"math/bits"

	"repro/internal/cfg"
	"repro/internal/events"
	"repro/internal/exec"
	"repro/internal/faults"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/metrics"
	"repro/internal/sanitizer"
)

// SchedKind selects the warp scheduling policy.
type SchedKind int

const (
	// SchedGTO is greedy-then-oldest (the baseline; Table 1).
	SchedGTO SchedKind = iota
	// SchedTwoLevel is the two-level scheduler of Gebhart et al. [9],
	// used by the RFH and Figure 2 experiments.
	SchedTwoLevel
	// SchedLRR is loose round-robin: fairness-first, no greediness.
	SchedLRR
)

func (s SchedKind) String() string {
	switch s {
	case SchedTwoLevel:
		return "2-level"
	case SchedLRR:
		return "LRR"
	default:
		return "GTO"
	}
}

// Config parameterizes the SM (defaults follow Table 1).
type Config struct {
	Warps      int
	Schedulers int
	Sched      SchedKind
	// ActiveSet is the two-level scheduler's active warps per scheduler.
	ActiveSet int
	// PromoteLatency is the pipeline-refill delay a warp pays when the
	// two-level scheduler promotes it into the active set.
	PromoteLatency int

	// Execution latencies (cycles from issue to writeback).
	ALULat   int
	FMALat   int
	SFULat   int
	ShmemLat int
	// SFUIssueInterval throttles SFU issue per scheduler group.
	SFUIssueInterval int
	// LSUQueue bounds in-flight memory instructions per SM.
	LSUQueue int

	Mem mem.Config

	// WarpIDBase offsets the global warp/thread IDs of this SM's warps
	// (multi-SM simulation: SM i hosts warps [i*Warps, (i+1)*Warps)).
	// Must be a multiple of the kernel's WarpsPerCTA.
	WarpIDBase int

	// WindowSize is the sampling window for working-set and traffic
	// series (100 cycles in Figures 2 and 3).
	WindowSize int
	// MaxCycles aborts runaway simulations.
	MaxCycles uint64
	// WatchdogCycles trips the forward-progress watchdog when no warp
	// issues for this many cycles while warps remain unfinished (0
	// disables). It fires far sooner than MaxCycles and produces a full
	// Diagnostic instead of a bare overrun error.
	WatchdogCycles uint64

	// NoFastForward disables the cycle-skip fast-forward (fastforward.go),
	// stepping every cycle even when the machine is provably frozen. The
	// results are identical either way; the switch exists for differential
	// validation and for profiling the stepped path.
	NoFastForward bool
}

// DefaultConfig returns the Table 1 SM configuration.
func DefaultConfig() Config {
	return Config{
		Warps:            64,
		Schedulers:       4,
		Sched:            SchedGTO,
		ActiveSet:        3,
		PromoteLatency:   4,
		ALULat:           6,
		FMALat:           6,
		SFULat:           24,
		ShmemLat:         26,
		SFUIssueInterval: 4,
		LSUQueue:         16,
		Mem:              mem.DefaultConfig(),
		WindowSize:       100,
		MaxCycles:        30_000_000,
		WatchdogCycles:   1_000_000,
	}
}

// Stats aggregates SM-level counters.
type Stats struct {
	Cycles      uint64
	DynInsns    uint64
	IssueStalls uint64

	ALUOps, FMAOps, SFUOps        uint64
	GlobalLoads, GlobalStores     uint64
	SharedOps, Branches, Barriers uint64

	// MemLines counts coalesced line requests issued by the LSU.
	MemLines uint64

	// ActiveLanes sums the active-lane count over issued instructions;
	// ActiveLanes / (DynInsns*32) is SIMT lane efficiency.
	ActiveLanes uint64

	// WorkingSetKB is the average distinct register bytes touched per
	// window (Figure 2).
	WorkingSetKB float64
	// BackingSeries samples the provider's backing-store accesses per
	// window over time (Figure 3).
	BackingSeries []uint64

	// FFSkippedCycles counts cycles covered by fast-forward jumps and
	// FFJumps the jumps themselves (fastforward.go). Deliberately not
	// bound into the metrics registry: a fast-forwarded run must export
	// byte-identical window snapshots to a stepped one.
	FFSkippedCycles uint64
	FFJumps         uint64
}

// IPC returns retired instructions per cycle.
func (s *Stats) IPC() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.DynInsns) / float64(s.Cycles)
}

// SIMTEfficiency returns the mean fraction of active lanes per issued
// instruction (1.0 = fully convergent).
func (s *Stats) SIMTEfficiency() float64 {
	if s.DynInsns == 0 {
		return 0
	}
	return float64(s.ActiveLanes) / float64(s.DynInsns*isa.WarpWidth)
}

// SM is one streaming multiprocessor.
type SM struct {
	Cfg      Config
	K        *isa.Kernel
	G        *cfg.Graph
	Mem      *mem.Hierarchy
	Provider Provider
	Warps    []*Warp

	Stats Stats

	// Metrics is the simulation's observability registry: every layer
	// (SM, provider, OSU/CM/compressor shards, memory hierarchy)
	// registers its counters here at construction. Attach a sink
	// (Metrics.SetSink) before Run to stream per-window snapshots.
	Metrics *metrics.Registry

	// Rec, when attached (AttachRecorder), receives cycle-stamped typed
	// events from every layer; nil (the default) costs one branch per
	// emission site.
	Rec *events.Recorder

	// prober is the provider's side-effect-free CanIssue, cached at
	// AttachRecorder for stall attribution (nil: always issuable).
	prober IssueProber

	groups [][]*Warp
	// groupIDs mirrors groups as packed warp IDs: the per-cycle pick scan
	// walks these instead of chasing Warp pointers (a ready test touches
	// only the SoA arrays, indexed by ID).
	groupIDs [][]int32
	sched    scheduler
	lsu      *lsu

	// Devirtualized hot-path dispatch, resolved once at construction:
	// pickFn is the concrete scheduler's pick (no itab lookup per group
	// per cycle) and the hint flags elide provider calls that are
	// provable no-ops (HotPathHints).
	pickFn         func(int, *SM) *Warp
	alwaysIssuable bool
	passiveTick    bool
	passiveWB      bool

	// Per-scheduler-group issue accounting (cycles with an issue, cycles
	// without, scoreboard rejections, provider staging rejections).
	mIssued        []metrics.Counter
	mNoIssue       []metrics.Counter
	mScoreboard    []metrics.Counter
	mProviderStall []metrics.Counter

	cycle uint64
	wheel eventWheel

	// Struct-of-arrays warp hot state, indexed by warp ID (see Warp).
	// wPending and wNeed are maskWords 64-bit words per warp; wInsn and
	// wClass cache the decoded next instruction so the ready-scan never
	// re-derives it.
	wFlags      []uint8
	wStallUntil []uint64
	wClass      []isa.Class
	wInsn       []*isa.Instruction
	wPending    []uint64
	wNeed       []uint64
	maskWords   int

	// Per-cycle ready-scan tallies (zeroed each step): how many
	// scoreboard and provider rejections each group's pick scan charged
	// this cycle. The cycle-skip fast-forward replays these for skipped
	// cycles so counters stay byte-identical with a stepped run.
	scanSB   []uint32
	scanProv []uint32

	// CTA barrier accounting: warps waiting / alive per CTA, plus the
	// CTAs whose counters changed this cycle (barrier release is only
	// re-evaluated for those, replacing the per-cycle full scan).
	ctaAt       []int32
	ctaLive     []int32
	ctaDirty    []int32
	ctaDirtyFlg []bool

	// Fast-forward stall-replay scratch (allocated on first use; only a
	// recorder-attached run needs it).
	ffReason  []events.StallReason
	ffCulprit []int

	// Sanitizer / fault-injection state (nil when disabled; the healthy
	// path costs two nil checks and one compare per cycle).
	san          *sanitizer.Sanitizer
	flt          *faults.Injector
	fault        *sanitizer.Diagnostic
	lastProgress uint64

	// Cooperative cancellation (nil when disabled — see AttachContext).
	cancelCh         <-chan struct{}
	cancelCtx        context.Context
	sinceCancelCheck uint64

	sfuNextIssue []uint64

	// Working-set window tracking: a per-warp register bitmask (maskWords
	// words per warp) plus a running distinct count — the same
	// (warp, register) set the map it replaced held, without the hashing.
	windowMask     []uint64
	windowDistinct int
	windowSum      float64
	windowCount    uint64
	lastBackingCt  uint64
}

// New builds an SM running kernel k under the given provider. The memory
// image mm may be nil for the default deterministic contents.
func New(cfgv Config, k *isa.Kernel, p Provider, mm *exec.Memory) (*SM, error) {
	return NewWithHierarchy(cfgv, k, p, mm, nil)
}

// NewWithHierarchy is New with an injected memory hierarchy (multi-SM
// simulation attaches per-SM hierarchies to a shared L2). A nil hierarchy
// builds a private one from cfgv.Mem.
func NewWithHierarchy(cfgv Config, k *isa.Kernel, p Provider, mm *exec.Memory, hier *mem.Hierarchy) (*SM, error) {
	if err := k.Validate(); err != nil {
		return nil, err
	}
	if cfgv.Warps%cfgv.Schedulers != 0 {
		return nil, fmt.Errorf("sim: %d warps not divisible into %d schedulers", cfgv.Warps, cfgv.Schedulers)
	}
	if cfgv.WarpIDBase%k.WarpsPerCTA != 0 {
		return nil, fmt.Errorf("sim: warp ID base %d not aligned to CTA size %d", cfgv.WarpIDBase, k.WarpsPerCTA)
	}
	if mm == nil {
		mm = exec.NewMemory(nil)
	}
	if hier == nil {
		hier = mem.New(cfgv.Mem)
	}
	g := cfg.New(k)
	sm := &SM{
		Cfg:          cfgv,
		K:            k,
		G:            g,
		Mem:          hier,
		Provider:     p,
		Metrics:      metrics.NewRegistry(),
		sfuNextIssue: make([]uint64, cfgv.Schedulers),
	}
	sm.maskWords = (k.NumRegs + 63) / 64
	if sm.maskWords < 1 {
		sm.maskWords = 1
	}
	sm.wFlags = make([]uint8, cfgv.Warps)
	sm.wStallUntil = make([]uint64, cfgv.Warps)
	sm.wClass = make([]isa.Class, cfgv.Warps)
	sm.wInsn = make([]*isa.Instruction, cfgv.Warps)
	sm.wPending = make([]uint64, cfgv.Warps*sm.maskWords)
	sm.wNeed = make([]uint64, cfgv.Warps*sm.maskWords)
	sm.windowMask = make([]uint64, cfgv.Warps*sm.maskWords)
	sm.scanSB = make([]uint32, cfgv.Schedulers)
	sm.scanProv = make([]uint32, cfgv.Schedulers)
	numCTAs := (cfgv.Warps + k.WarpsPerCTA - 1) / k.WarpsPerCTA
	sm.ctaAt = make([]int32, numCTAs)
	sm.ctaLive = make([]int32, numCTAs)
	sm.ctaDirtyFlg = make([]bool, numCTAs)
	sm.registerMetrics()
	sm.groups = make([][]*Warp, cfgv.Schedulers)
	sm.groupIDs = make([][]int32, cfgv.Schedulers)
	for i := 0; i < cfgv.Warps; i++ {
		gid := cfgv.WarpIDBase + i
		w := &Warp{
			ID:    i,
			Group: i % cfgv.Schedulers,
			Exec:  exec.NewWarp(k, g, gid, gid/k.WarpsPerCTA, mm),
			sm:    sm,
		}
		sm.Warps = append(sm.Warps, w)
		sm.groups[w.Group] = append(sm.groups[w.Group], w)
		sm.groupIDs[w.Group] = append(sm.groupIDs[w.Group], int32(w.ID))
		sm.ctaLive[i/k.WarpsPerCTA]++
		sm.refreshInsn(w)
	}
	switch cfgv.Sched {
	case SchedTwoLevel:
		s := newTwoLevel(sm.groups, cfgv.ActiveSet)
		sm.sched, sm.pickFn = s, s.pick
	case SchedLRR:
		s := newLRR(sm)
		sm.sched, sm.pickFn = s, s.pick
	default:
		s := newGTO(sm)
		sm.sched, sm.pickFn = s, s.pick
	}
	sm.lsu = newLSU(sm, cfgv.LSUQueue)
	if err := p.Attach(sm); err != nil {
		return nil, err
	}
	if hp, ok := p.(HintedProvider); ok {
		h := hp.HotHints()
		sm.alwaysIssuable = h.AlwaysIssuable
		sm.passiveTick = h.PassiveTick
		sm.passiveWB = h.PassiveWriteback
	}
	return sm, nil
}

// registerMetrics binds the SM's own counters into the registry: views
// over the Stats struct (zero hot-path cost) plus per-scheduler-group
// issue/stall counters and an LSU backlog gauge. The memory hierarchy and
// the provider add their own cells afterwards (provider at Attach).
func (sm *SM) registerMetrics() {
	r := sm.Metrics
	r.Bind("sim/dyn_insns", &sm.Stats.DynInsns)
	r.Bind("sim/issue_stalls", &sm.Stats.IssueStalls)
	r.Bind("sim/alu_ops", &sm.Stats.ALUOps)
	r.Bind("sim/fma_ops", &sm.Stats.FMAOps)
	r.Bind("sim/sfu_ops", &sm.Stats.SFUOps)
	r.Bind("sim/global_loads", &sm.Stats.GlobalLoads)
	r.Bind("sim/global_stores", &sm.Stats.GlobalStores)
	r.Bind("sim/shared_ops", &sm.Stats.SharedOps)
	r.Bind("sim/branches", &sm.Stats.Branches)
	r.Bind("sim/barriers", &sm.Stats.Barriers)
	r.Bind("sim/mem_lines", &sm.Stats.MemLines)
	r.Bind("sim/active_lanes", &sm.Stats.ActiveLanes)
	r.Gauge("sim/lsu_queue_depth", func() uint64 { return uint64(len(sm.lsu.queue)) })
	for g := 0; g < sm.Cfg.Schedulers; g++ {
		sm.mIssued = append(sm.mIssued, r.Counter(fmt.Sprintf("sim/sched/g%d/issue_cycles", g)))
		sm.mNoIssue = append(sm.mNoIssue, r.Counter(fmt.Sprintf("sim/sched/g%d/stall_cycles", g)))
		sm.mScoreboard = append(sm.mScoreboard, r.Counter(fmt.Sprintf("sim/sched/g%d/scoreboard_rejects", g)))
		sm.mProviderStall = append(sm.mProviderStall, r.Counter(fmt.Sprintf("sim/sched/g%d/provider_rejects", g)))
	}
	sm.Mem.BindMetrics(r)
}

// Cycle returns the current cycle.
func (sm *SM) Cycle() uint64 { return sm.cycle }

// After schedules fn to run delay cycles from now; providers use it for
// fixed-latency internal operations (e.g. compressor decompress delay).
func (sm *SM) After(delay int, fn func()) { sm.after(delay, fn) }

// after schedules fn at cycle now+delay.
func (sm *SM) after(delay int, fn func()) {
	sm.wheel.push(wheelEntry{cycle: sm.cycle + uint64(delay), fn: fn})
}

// Run simulates to completion and returns the statistics. Abnormal
// terminations — a MaxCycles overrun, a watchdog trip, a sanitizer
// violation, or a fault reported by the provider — return a
// *sanitizer.Diagnostic error carrying the machine state at detection.
func (sm *SM) Run() (*Stats, error) {
	for !sm.Done() {
		if sm.cancelCh != nil {
			if err := sm.canceled(); err != nil {
				return nil, err
			}
		}
		if sm.cycle >= sm.Cfg.MaxCycles {
			return nil, sm.diagnose(&sanitizer.Diagnostic{
				Component: "sim/maxcycles",
				Violation: fmt.Sprintf("kernel %q exceeded %d cycles (%d insns retired)",
					sm.K.Name, sm.Cfg.MaxCycles, sm.Stats.DynInsns),
				Cycle: sm.cycle,
				Warp:  -1,
			})
		}
		sm.StepOne()
		if err := sm.CheckHealth(); err != nil {
			return nil, err
		}
		if sm.TryFastForward() > 0 {
			// Re-check at the skip boundary: the sanitizer sweep is pure,
			// so one check of the frozen state stands in for the per-cycle
			// checks the skipped span would have run.
			if err := sm.CheckHealth(); err != nil {
				return nil, err
			}
		}
	}
	return sm.Finalize(), nil
}

// Done reports whether every warp finished and all machinery drained.
func (sm *SM) Done() bool {
	return sm.allDone() && sm.Provider.Drained() && sm.Mem.Drained() && sm.lsu.empty()
}

// StepOne advances the SM by one cycle (lockstep multi-SM simulation).
func (sm *SM) StepOne() { sm.step() }

// Finalize closes the statistics windows and returns the stats. Call once
// after the last StepOne.
func (sm *SM) Finalize() *Stats {
	sm.finishWindows()
	sm.Stats.Cycles = sm.cycle
	return &sm.Stats
}

func (sm *SM) allDone() bool {
	for _, f := range sm.wFlags {
		if f&warpFinished == 0 {
			return false
		}
	}
	return true
}

// step advances the SM one cycle.
func (sm *SM) step() {
	sm.cycle++
	sm.Rec.SetCycle(sm.cycle)
	sm.Mem.Tick()
	for {
		e, ok := sm.wheel.popDue(sm.cycle)
		if !ok {
			break
		}
		if e.fn != nil {
			e.fn()
		} else {
			sm.Warps[e.warp].completePending(e.reg, e.mem)
		}
	}
	if !sm.passiveTick {
		sm.Provider.Tick()
	}
	sm.lsu.tick()
	for g := range sm.scanSB {
		sm.scanSB[g] = 0
		sm.scanProv[g] = 0
	}
	for g := 0; g < sm.Cfg.Schedulers; g++ {
		if w := sm.pickFn(g, sm); w != nil {
			sm.mIssued[g].Inc()
			if sm.Rec.Enabled(events.MaskSched) {
				sm.Rec.Issue(g, w.ID, w.NextGI())
			}
			sm.issue(w)
		} else {
			sm.mNoIssue[g].Inc()
			if sm.Rec.Enabled(events.MaskSched) {
				reason, culprit := sm.stallReason(g)
				sm.Rec.Stall(g, reason, culprit)
			}
		}
	}
	sm.releaseBarriers()
	sm.sampleWindow()
}

// ready reports whether warp id (in scheduler group g) can issue this
// cycle (all hazards clear). It touches only the SoA arrays until the
// provider consult, so a pick scan over blocked warps stays off the Warp
// structs entirely.
func (sm *SM) ready(g int, id int32) bool {
	if sm.wFlags[id] != 0 || sm.wStallUntil[id] > sm.cycle {
		return false
	}
	if !sm.sbReady(int(id)) {
		sm.mScoreboard[g].Inc()
		sm.scanSB[g]++
		return false
	}
	switch sm.wClass[id] {
	case isa.ClassMemGlobal:
		if !sm.lsu.hasRoom() {
			return false
		}
	case isa.ClassSFU:
		if sm.sfuNextIssue[g] > sm.cycle {
			return false
		}
	}
	if !sm.alwaysIssuable && !sm.Provider.CanIssue(sm.Warps[id]) {
		sm.Stats.IssueStalls++
		sm.mProviderStall[g].Inc()
		sm.scanProv[g]++
		return false
	}
	return true
}

// issue executes one instruction from w and models its timing.
func (sm *SM) issue(w *Warp) {
	id := w.ID
	cls := sm.wClass[id] // the issuing instruction's class (pre-refresh)
	info := w.Exec.Step()
	w.lastIssue = sm.cycle
	sm.lastProgress = sm.cycle
	sm.Stats.DynInsns++
	sm.Stats.ActiveLanes += uint64(bits.OnesCount32(info.Mask))
	sm.trackWindow(id)

	penalty := sm.Provider.OnIssue(w, &info)
	if penalty > 0 {
		sm.wStallUntil[id] = sm.cycle + uint64(penalty)
	}

	in := info.Insn
	switch cls {
	case isa.ClassALU:
		sm.Stats.ALUOps++
		sm.retire(w, in, sm.Cfg.ALULat, false)
	case isa.ClassFMA:
		sm.Stats.FMAOps++
		sm.retire(w, in, sm.Cfg.FMALat, false)
	case isa.ClassSFU:
		sm.Stats.SFUOps++
		sm.sfuNextIssue[w.Group] = sm.cycle + uint64(sm.Cfg.SFUIssueInterval)
		sm.retire(w, in, sm.Cfg.SFULat, false)
	case isa.ClassMemShared:
		sm.Stats.SharedOps++
		sm.retire(w, in, sm.Cfg.ShmemLat, false)
	case isa.ClassMemGlobal:
		if in.Op.IsStore() {
			sm.Stats.GlobalStores++
			sm.lsu.submit(w, isa.NoReg, info.Addrs, true)
		} else {
			sm.Stats.GlobalLoads++
			w.addPending(in.Dst, true)
			sm.lsu.submit(w, in.Dst, info.Addrs, false)
		}
	case isa.ClassControl:
		sm.Stats.Branches++
	case isa.ClassBarrier:
		sm.Stats.Barriers++
		sm.wFlags[id] |= warpAtBarrier
		sm.markCTADirty(id)
		sm.ctaAt[id/sm.K.WarpsPerCTA]++
		sm.Rec.Barrier(w.Group, id, true)
	case isa.ClassExit:
		if info.Exited {
			sm.wFlags[id] |= warpFinished
			sm.markCTADirty(id)
			sm.ctaLive[id/sm.K.WarpsPerCTA]--
			sm.Rec.Exit(w.Group, id)
			sm.Provider.OnWarpFinish(w)
		}
	}
	sm.refreshInsn(w)
}

// retire schedules the scoreboard release for a fixed-latency op.
func (sm *SM) retire(w *Warp, in *isa.Instruction, lat int, memOp bool) {
	if !in.Op.HasDst() || !in.Dst.Valid() {
		return
	}
	dst := in.Dst
	w.addPending(dst, memOp)
	sm.wheel.push(wheelEntry{cycle: sm.cycle + uint64(lat), warp: int32(w.ID), reg: dst, mem: memOp})
}

// markCTADirty queues warp id's CTA for a barrier-release check at the
// end of the cycle.
func (sm *SM) markCTADirty(id int) {
	cta := id / sm.K.WarpsPerCTA
	if !sm.ctaDirtyFlg[cta] {
		sm.ctaDirtyFlg[cta] = true
		sm.ctaDirty = append(sm.ctaDirty, int32(cta))
	}
}

// releaseBarriers frees CTAs whose live warps have all arrived. Only CTAs
// whose arrival/live counts changed this cycle are examined; they are
// visited in ascending CTA order, matching the full scan it replaced.
func (sm *SM) releaseBarriers() {
	if len(sm.ctaDirty) == 0 {
		return
	}
	// Insertion sort: at most Schedulers CTAs go dirty per cycle.
	d := sm.ctaDirty
	for i := 1; i < len(d); i++ {
		for j := i; j > 0 && d[j] < d[j-1]; j-- {
			d[j], d[j-1] = d[j-1], d[j]
		}
	}
	per := sm.K.WarpsPerCTA
	for _, cta := range d {
		sm.ctaDirtyFlg[cta] = false
		if sm.ctaAt[cta] == 0 || sm.ctaAt[cta] != sm.ctaLive[cta] {
			continue
		}
		lo := int(cta) * per
		hi := lo + per
		if hi > len(sm.Warps) {
			hi = len(sm.Warps)
		}
		for i := lo; i < hi; i++ {
			if sm.wFlags[i]&warpAtBarrier != 0 {
				sm.wFlags[i] &^= warpAtBarrier
				sm.Rec.Barrier(sm.Warps[i].Group, i, false)
			}
		}
		sm.ctaAt[cta] = 0
	}
	sm.ctaDirty = sm.ctaDirty[:0]
}

// trackWindow records the issuing instruction's registers for the
// working-set series: the cached need mask, folded into the per-warp
// window mask with a running distinct count.
func (sm *SM) trackWindow(id int) {
	base := id * sm.maskWords
	for i := 0; i < sm.maskWords; i++ {
		if fresh := sm.wNeed[base+i] &^ sm.windowMask[base+i]; fresh != 0 {
			sm.windowMask[base+i] |= fresh
			sm.windowDistinct += bits.OnesCount64(fresh)
		}
	}
}

// sampleWindow closes a window at each WindowSize boundary.
func (sm *SM) sampleWindow() {
	if sm.Cfg.WindowSize <= 0 || sm.cycle%uint64(sm.Cfg.WindowSize) != 0 {
		return
	}
	sm.closeWindow()
}

// closeWindow performs the per-boundary sampling work: the working-set
// point, the backing-traffic series point, and the metrics window. The
// stepped path reaches it from sampleWindow; the fast-forward path calls
// it directly at each boundary a skip crosses.
func (sm *SM) closeWindow() {
	sm.windowSum += float64(sm.windowDistinct) * mem.LineSize / 1024.0
	sm.windowCount++
	if sm.windowDistinct > 0 {
		for i := range sm.windowMask {
			sm.windowMask[i] = 0
		}
		sm.windowDistinct = 0
	}
	cur := sm.Provider.Stats().BackingAccesses
	sm.Stats.BackingSeries = append(sm.Stats.BackingSeries, cur-sm.lastBackingCt)
	sm.lastBackingCt = cur
	if sm.Metrics.HasSink() {
		sm.Metrics.CloseWindow(sm.cycle)
	}
}

func (sm *SM) finishWindows() {
	if sm.windowCount > 0 {
		sm.Stats.WorkingSetKB = sm.windowSum / float64(sm.windowCount)
	}
	// Close the final partial window so exported deltas always sum to the
	// run's counter totals (CloseWindow skips empty intervals itself).
	if sm.Metrics.HasSink() {
		sm.Metrics.CloseWindow(sm.cycle)
	}
}
