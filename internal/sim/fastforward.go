package sim

import "repro/internal/events"

// Cycle-skip fast-forward: when a stepped cycle issues nothing and every
// component is provably frozen, the SM jumps straight to the cycle before
// the earliest wakeup instead of stepping the inert span cycle by cycle.
//
// Soundness argument. A cycle's observable work comes from (a) due timing
// events — the SM wheel (writebacks, provider callbacks) and the memory
// hierarchy's event heap, (b) the LSU injecting lines, (c) the provider's
// Tick machinery, and (d) the issue scan. After a zero-issue cycle the
// scan's outcome is a pure function of state that only (a)-(c) can change:
// barrier releases and window tracking need an issue, GTO and LRR mutate
// their structures only on a successful pick, and per-warp stall timers
// are compared against the clock. The two-level scheduler is the
// exception — its demote/promote pass can rotate pending order on
// zero-issue cycles (barrier-stalled warps churn through the active set)
// — so each group's scheduler must additionally report frozen() before a
// skip. So the machine stays frozen until the earliest of:
// the next wheel event, the next memory event (or data-port retry slot
// when the LSU is waiting), the first warp stall timer to expire, and the
// first SFU issue interval to expire. The skip stops one cycle short of
// that minimum and the next stepped cycle performs the wakeup normally.
//
// The skipped cycles still happened architecturally: every per-cycle
// counter the stepped span would have bumped is replicated (the frozen
// scan repeats the same scoreboard/provider rejections every cycle — the
// step captured them in scanSB/scanProv), metrics windows are closed at
// every WindowSize boundary the skip crosses, the LSU's one rejected
// injection per cycle is charged, attributed stall events are replayed
// per cycle when a recorder listens, and the watchdog trip cycle caps the
// jump so a hung machine diagnoses at the same cycle it would have when
// stepped. A byte-identical run, minus the time.

// noWake is the "no wakeup source" sentinel for the target computation.
const noWake = ^uint64(0)

// TryFastForward attempts a cycle skip after a step. It returns the
// number of cycles skipped (0 when any gate fails or the machine wakes
// next cycle anyway). Call it between StepOne and the next cycle's step;
// Run and trace.Run do. Multi-SM chips coordinate instead via
// FFEligible / FFWakeTarget / FFJumpTo (a lone SM may not jump past
// another SM's wakeup — gpu.Chip takes the min across SMs).
func (sm *SM) TryFastForward() uint64 {
	if !sm.FFEligible() {
		return 0
	}
	target, ok := sm.FFWakeTarget()
	if !ok || target <= sm.cycle+1 {
		return 0
	}
	return sm.FFJumpTo(target - 1)
}

// FFEligible reports whether this SM is provably frozen after the cycle
// just stepped. Gates: the feature is on, no fault injector is armed
// (faults fire on wall-clock cycles inside provider ticks), this cycle
// issued nothing (an issue moves architectural state: windows, barriers,
// scheduler structures), the provider is provably idle — either
// hint-passive or reporting TickIdle on its current state — and every
// group's scheduler is mutation-free on failed picks (two-level
// demote/promote churns on zero-issue cycles). A finished SM is NOT
// eligible via this method (the single-SM loop exits instead); chips
// exclude done SMs before asking.
func (sm *SM) FFEligible() bool {
	if sm.Cfg.NoFastForward || sm.flt != nil || sm.lastProgress == sm.cycle {
		return false
	}
	if !sm.passiveTick {
		ti, ok := sm.Provider.(TickIdler)
		if !ok || !ti.TickIdle() {
			return false
		}
	}
	if sm.Done() {
		return false
	}
	for g := 0; g < sm.Cfg.Schedulers; g++ {
		if !sm.sched.frozen(g, sm) {
			return false
		}
	}
	return true
}

// FFWakeTarget exposes this SM's earliest wake cycle for chip-level
// coordination; ok=false means nothing will ever wake this SM (a hang —
// the watchdog target is included, so this only happens with the
// watchdog disabled).
func (sm *SM) FFWakeTarget() (uint64, bool) {
	t := sm.wakeTarget()
	return t, t != noWake
}

// FFJumpTo advances the frozen SM to cycle `to` (exclusive of the wake
// cycle: callers pass target-1), replicating the skipped span's
// accounting, and returns the cycles skipped. The caller has verified
// FFEligible and to <= every relevant wake target - 1; jumping past a
// wake is unsound.
func (sm *SM) FFJumpTo(to uint64) uint64 {
	if to <= sm.cycle {
		return 0
	}
	n := to - sm.cycle
	sm.replicateSkip(to)
	sm.Stats.FFSkippedCycles += n
	sm.Stats.FFJumps++
	return n
}

// wakeTarget computes the earliest future cycle at which the frozen
// machine can change state, capped by the watchdog trip cycle and the
// MaxCycles abort so abnormal terminations keep their stepped-run cycle
// numbers. Sources may be conservative (an early wakeup just steps one
// inert cycle and fast-forwards again); missing one would be unsound.
func (sm *SM) wakeTarget() uint64 {
	target := noWake
	if t, ok := sm.wheel.nextCycle(); ok && t < target {
		target = t
	}
	if t, ok := sm.Mem.NextWake(!sm.lsu.empty()); ok && t < target {
		target = t
	}
	// Warp stall timers: only live, non-barrier warps can wake this way
	// (a barrier release needs another warp's issue, which needs one of
	// the other wakeup sources first).
	for id := range sm.wFlags {
		if sm.wFlags[id] == 0 {
			if t := sm.wStallUntil[id]; t > sm.cycle && t < target {
				target = t
			}
		}
	}
	for _, t := range sm.sfuNextIssue {
		if t > sm.cycle && t < target {
			target = t
		}
	}
	if wd := sm.Cfg.WatchdogCycles; wd > 0 && !sm.allDone() {
		if trip := sm.lastProgress + wd + 1; trip < target {
			target = trip
		}
	}
	if mc := sm.Cfg.MaxCycles; mc > 0 && target > mc {
		target = mc
	}
	return target
}

// replicateSkip advances sm.cycle to end, replaying everything the
// stepped span would have recorded: per-group no-issue and rejection
// counters (the frozen scan tallies times the span length), provider
// stall accounting, the LSU's one rejected data injection per cycle,
// metrics-window closes at every boundary crossed, and per-cycle stall
// attribution events when a recorder listens.
func (sm *SM) replicateSkip(end uint64) {
	var sumProv uint64
	for g := 0; g < sm.Cfg.Schedulers; g++ {
		sumProv += uint64(sm.scanProv[g])
	}
	lsuWaiting := !sm.lsu.empty()

	recSched := sm.Rec.Enabled(events.MaskSched)
	if recSched {
		if sm.ffReason == nil {
			sm.ffReason = make([]events.StallReason, sm.Cfg.Schedulers)
			sm.ffCulprit = make([]int, sm.Cfg.Schedulers)
		}
		// The attribution is a pure function of the frozen state:
		// compute it once (sm.cycle still on the stepped cycle) and
		// replay it for every skipped cycle.
		for g := 0; g < sm.Cfg.Schedulers; g++ {
			sm.ffReason[g], sm.ffCulprit[g] = sm.stallReason(g)
		}
	}

	ws := uint64(0)
	if sm.Cfg.WindowSize > 0 {
		ws = uint64(sm.Cfg.WindowSize)
	}
	for sm.cycle < end {
		next := end
		if ws > 0 {
			if b := sm.cycle + ws - sm.cycle%ws; b < next {
				next = b
			}
		}
		seg := next - sm.cycle
		for g := 0; g < sm.Cfg.Schedulers; g++ {
			sm.mNoIssue[g].Add(seg)
			if c := uint64(sm.scanSB[g]); c > 0 {
				sm.mScoreboard[g].Add(seg * c)
			}
			if c := uint64(sm.scanProv[g]); c > 0 {
				sm.mProviderStall[g].Add(seg * c)
			}
		}
		if sumProv > 0 {
			sm.Stats.IssueStalls += seg * sumProv
			if sr, ok := sm.Provider.(StallReplicator); ok {
				sr.ReplicateStalls(seg * sumProv)
			}
		}
		if lsuWaiting {
			// Each stepped cycle would have retried queue-head injection
			// exactly once and been rejected (the wake target stops short
			// of the cycle the port or queue frees).
			sm.Mem.Stats.DataRejects += seg
		}
		if recSched {
			for c := sm.cycle + 1; c <= next; c++ {
				sm.Rec.SetCycle(c)
				for g := 0; g < sm.Cfg.Schedulers; g++ {
					sm.Rec.Stall(g, sm.ffReason[g], sm.ffCulprit[g])
				}
			}
		}
		sm.cycle = next
		if ws > 0 && next%ws == 0 {
			sm.closeWindow()
		}
	}
	sm.Mem.FastForwardTo(end)
}
