package sim

import (
	"repro/internal/events"
	"repro/internal/isa"
)

// IssueProber is an optional Provider refinement: a side-effect-free
// CanIssue used by stall attribution. CanIssue itself counts refusals
// (Stats.IssueStalls, provider stall counters), so the classifier —
// which probes warps the scheduler never tried — must not call it.
// Providers whose CanIssue is unconditional need not implement this.
type IssueProber interface {
	CanIssueQuiet(w *Warp) bool
}

// RecorderAware is an optional Provider refinement: providers that own
// internal machinery (RegLess's per-shard CM/OSU/compressor) forward the
// recorder so those layers emit their own events.
type RecorderAware interface {
	AttachRecorder(r *events.Recorder)
}

// AttachRecorder wires an event recorder through the whole machine: the
// SM's scheduler (issue/stall/barrier/exit events), the memory hierarchy
// (backing-store L1 accesses), and the provider's internals when it is
// RecorderAware. Call once, before Run; a nil recorder detaches.
func (sm *SM) AttachRecorder(r *events.Recorder) {
	sm.Rec = r
	sm.prober, _ = sm.Provider.(IssueProber)
	sm.Mem.SetRecorder(r)
	if ra, ok := sm.Provider.(RecorderAware); ok {
		ra.AttachRecorder(r)
	}
}

// stallReason attributes a no-issue cycle in group g: every candidate
// warp is classified by how close it came to issuing and the cycle is
// charged to the highest reason present (StallReason values are ordered
// by proximity to issue). Returns the charged warp (-1 when idle).
//
// Candidates are the warps the scheduler actually considered (the
// two-level scheduler only scans its active set); when none of them has
// a reason — e.g. an empty active set while demoted warps wait on
// memory — the whole group is scanned so the cycle is still explained.
func (sm *SM) stallReason(g int) (events.StallReason, int) {
	best, bestWarp := classifyScan(sm, sm.sched.candidates(g))
	if best == events.StallIdle {
		best, bestWarp = classifyScan(sm, sm.groups[g])
	}
	return best, bestWarp
}

func classifyScan(sm *SM, warps []*Warp) (events.StallReason, int) {
	best := events.StallIdle
	bestWarp := -1
	for _, w := range warps {
		if r := sm.classifyWarp(w); r > best {
			best, bestWarp = r, w.ID
		}
	}
	return best, bestWarp
}

// classifyWarp mirrors ready()'s hazard checks without its counter side
// effects: the first failing check, in issue order, is the warp's reason.
func (sm *SM) classifyWarp(w *Warp) events.StallReason {
	id := w.ID
	if sm.wFlags[id]&warpFinished != 0 {
		return events.StallIdle
	}
	if sm.wFlags[id]&warpAtBarrier != 0 {
		return events.StallBarrier
	}
	if sm.wStallUntil[id] > sm.cycle {
		return events.StallConflict
	}
	if !sm.sbReady(id) {
		if w.pendingMem > 0 {
			return events.StallMemory
		}
		return events.StallScoreboard
	}
	switch sm.wClass[id] {
	case isa.ClassMemGlobal:
		if !sm.lsu.hasRoom() {
			return events.StallLSU
		}
	case isa.ClassSFU:
		if sm.sfuNextIssue[w.Group] > sm.cycle {
			return events.StallSFU
		}
	}
	if sm.prober != nil && !sm.prober.CanIssueQuiet(w) {
		return events.StallCapacity
	}
	// Every hazard clear yet the scheduler skipped the group: does not
	// happen with the shipped policies (they issue any ready warp), but
	// classify it as a scoreboard conflict rather than lose the cycle.
	return events.StallScoreboard
}
