package sim

import (
	"repro/internal/exec"
	"repro/internal/isa"
)

// Provider abstracts the register storage scheme under evaluation: the
// baseline register file, RFV (register file virtualization, Jeon et al.),
// RFH (the compile-time register hierarchy, Gebhart et al.), or RegLess.
// The SM consults the provider before issuing from a warp (RegLess gates
// warps whose regions are not staged) and notifies it of issues,
// writebacks, and warp completion; the provider drives its own machinery
// (capacity managers, preload queues, compressors) from Tick.
type Provider interface {
	// Name identifies the scheme in reports.
	Name() string
	// Attach binds the provider to the SM before simulation starts. A
	// non-nil error (kernel mismatch, shard/scheduler disagreement)
	// aborts construction instead of crashing mid-run.
	Attach(sm *SM) error
	// CanIssue reports whether warp w may issue its next instruction
	// this cycle as far as register availability is concerned.
	CanIssue(w *Warp) bool
	// OnIssue is called when w issues; info is the executed instruction.
	// The returned penalty is added as issue-stall cycles (operand bank
	// conflicts, metadata instruction slots).
	OnIssue(w *Warp, info *exec.StepInfo) int
	// OnWriteback is called when a destination write completes.
	OnWriteback(w *Warp, reg isa.Reg)
	// OnWarpFinish is called when a warp exits.
	OnWarpFinish(w *Warp)
	// Tick advances provider machinery by one cycle (called after the
	// memory hierarchy tick, before instruction issue).
	Tick()
	// Drained reports whether no provider work is outstanding.
	Drained() bool
	// Stats exposes the provider's event counters.
	Stats() *ProviderStats
}

// ProviderStats counts register-scheme events; the energy model and the
// per-figure experiments consume these.
type ProviderStats struct {
	// StructReads/StructWrites are accesses to the primary operand
	// structure (main RF for baseline/RFV, OSU data banks for RegLess).
	StructReads  uint64
	StructWrites uint64
	// TagLookups counts OSU tag-array lookups (RegLess).
	TagLookups uint64
	// BankConflicts counts same-cycle operand bank collisions.
	BankConflicts uint64
	// BackingAccesses counts accesses to the scheme's backing store:
	// the main RF behind RFH's buffers, or the L1 for RegLess — the
	// quantity plotted in Figure 3.
	BackingAccesses uint64

	// Preload source breakdown (RegLess; Figure 17).
	PreloadFromOSU        uint64
	PreloadFromCompressor uint64
	PreloadFromL1         uint64
	PreloadFromL2DRAM     uint64

	// Evictions counts OSU lines written out toward the memory system.
	Evictions uint64
	// CompressorHits/Misses count eviction-side pattern matches;
	// CompressorBitChecks counts preload-side bit-vector probes and
	// CompressorCacheOps internal compressed-line cache accesses.
	CompressorHits      uint64
	CompressorMisses    uint64
	CompressorBitChecks uint64
	CompressorCacheOps  uint64
	// CacheInvalidations counts invalidation annotations executed.
	CacheInvalidations uint64
	// MetaInsns counts metadata instruction issue slots consumed.
	MetaInsns uint64
	// StallCycles counts cycles a warp wanted to issue but the provider
	// refused (waiting for staging).
	StallCycles uint64

	// L1 traffic split for Figure 18 (RegLess): reads issued for
	// preloads (including compressed-line fetches), writes issued for
	// evictions, and invalidation operations.
	L1PreloadReads uint64
	L1StoreWrites  uint64
	L1Invalidates  uint64

	// RFH access split across the hierarchy levels.
	LRFAccesses uint64
	ORFAccesses uint64
	MRFAccesses uint64

	// RegionActivations and RegionCycles accumulate dynamic region
	// statistics (Table 2's cycles/region) for schemes that track
	// regions.
	RegionActivations uint64
	RegionCycles      uint64
}

// Preloads returns the total preload count across sources.
func (s *ProviderStats) Preloads() uint64 {
	return s.PreloadFromOSU + s.PreloadFromCompressor + s.PreloadFromL1 + s.PreloadFromL2DRAM
}
