package sim

import (
	"repro/internal/exec"
	"repro/internal/isa"
)

// Provider abstracts the register storage scheme under evaluation: the
// baseline register file, RFV (register file virtualization, Jeon et al.),
// RFH (the compile-time register hierarchy, Gebhart et al.), or RegLess.
// The SM consults the provider before issuing from a warp (RegLess gates
// warps whose regions are not staged) and notifies it of issues,
// writebacks, and warp completion; the provider drives its own machinery
// (capacity managers, preload queues, compressors) from Tick.
type Provider interface {
	// Name identifies the scheme in reports.
	Name() string
	// Attach binds the provider to the SM before simulation starts. A
	// non-nil error (kernel mismatch, shard/scheduler disagreement)
	// aborts construction instead of crashing mid-run.
	Attach(sm *SM) error
	// CanIssue reports whether warp w may issue its next instruction
	// this cycle as far as register availability is concerned.
	CanIssue(w *Warp) bool
	// OnIssue is called when w issues; info is the executed instruction.
	// The returned penalty is added as issue-stall cycles (operand bank
	// conflicts, metadata instruction slots).
	OnIssue(w *Warp, info *exec.StepInfo) int
	// OnWriteback is called when a destination write completes.
	OnWriteback(w *Warp, reg isa.Reg)
	// OnWarpFinish is called when a warp exits.
	OnWarpFinish(w *Warp)
	// Tick advances provider machinery by one cycle (called after the
	// memory hierarchy tick, before instruction issue).
	Tick()
	// Drained reports whether no provider work is outstanding.
	Drained() bool
	// Stats exposes the provider's event counters.
	Stats() *ProviderStats
}

// ProviderStats counts register-scheme events; the energy model and the
// per-figure experiments consume these.
type ProviderStats struct {
	// StructReads/StructWrites are accesses to the primary operand
	// structure (main RF for baseline/RFV, OSU data banks for RegLess).
	StructReads  uint64
	StructWrites uint64
	// TagLookups counts OSU tag-array lookups (RegLess).
	TagLookups uint64
	// BankConflicts counts same-cycle operand bank collisions.
	BankConflicts uint64
	// BackingAccesses counts accesses to the scheme's backing store:
	// the main RF behind RFH's buffers, or the L1 for RegLess — the
	// quantity plotted in Figure 3.
	BackingAccesses uint64

	// Preload source breakdown (RegLess; Figure 17).
	PreloadFromOSU        uint64
	PreloadFromCompressor uint64
	PreloadFromL1         uint64
	PreloadFromL2DRAM     uint64

	// Evictions counts OSU lines written out toward the memory system.
	Evictions uint64
	// CompressorHits/Misses count eviction-side pattern matches;
	// CompressorBitChecks counts preload-side bit-vector probes and
	// CompressorCacheOps internal compressed-line cache accesses.
	CompressorHits      uint64
	CompressorMisses    uint64
	CompressorBitChecks uint64
	CompressorCacheOps  uint64
	// CacheInvalidations counts invalidation annotations executed.
	CacheInvalidations uint64
	// MetaInsns counts metadata instruction issue slots consumed.
	MetaInsns uint64
	// StallCycles counts cycles a warp wanted to issue but the provider
	// refused (waiting for staging).
	StallCycles uint64

	// L1 traffic split for Figure 18 (RegLess): reads issued for
	// preloads (including compressed-line fetches), writes issued for
	// evictions, and invalidation operations.
	L1PreloadReads uint64
	L1StoreWrites  uint64
	L1Invalidates  uint64

	// RFH access split across the hierarchy levels.
	LRFAccesses uint64
	ORFAccesses uint64
	MRFAccesses uint64

	// RegionActivations and RegionCycles accumulate dynamic region
	// statistics (Table 2's cycles/region) for schemes that track
	// regions.
	RegionActivations uint64
	RegionCycles      uint64
}

// Preloads returns the total preload count across sources.
func (s *ProviderStats) Preloads() uint64 {
	return s.PreloadFromOSU + s.PreloadFromCompressor + s.PreloadFromL1 + s.PreloadFromL2DRAM
}

// HotPathHints devirtualizes the per-cycle provider dispatch: the provider
// set is closed (baseline/RFV/RFH/RegLess), and the three RF-style
// providers have an unconditional CanIssue and no-op Tick/OnWriteback — so
// the SM skips those interface calls entirely on its hot path instead of
// paying a dynamic dispatch per warp per cycle. Hints are capability
// declarations, not tuning knobs: set a field only when the corresponding
// method is a provable no-op for the provider's whole lifetime.
type HotPathHints struct {
	// AlwaysIssuable: CanIssue returns true unconditionally (no gating,
	// no counter side effects).
	AlwaysIssuable bool
	// PassiveTick: Tick is a no-op (no internal machinery to advance).
	PassiveTick bool
	// PassiveWriteback: OnWriteback is a no-op.
	PassiveWriteback bool
}

// HintedProvider is an optional Provider refinement publishing hot-path
// hints; providers that do not implement it get the all-false (fully
// virtual) treatment.
type HintedProvider interface {
	HotHints() HotPathHints
}

// TickIdler is an optional Provider refinement for the cycle-skip
// fast-forward: TickIdle reports that, with the rest of the machine
// frozen, the provider's Tick is a provable no-op — no queued work, no
// activation that could succeed — so skipping its Tick calls cannot
// change behavior. Providers with PassiveTick are idle by construction
// and need not implement this.
type TickIdler interface {
	TickIdle() bool
}

// StallReplicator is an optional Provider refinement for the cycle-skip
// fast-forward: the SM bulk-replays the provider-refusal stall cycles a
// skipped span would have accumulated (CanIssue refusals count
// Stats().StallCycles per probe, and a frozen span repeats the same
// probes every cycle).
type StallReplicator interface {
	ReplicateStalls(n uint64)
}
