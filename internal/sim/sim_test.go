package sim

import (
	"testing"

	"repro/internal/exec"
	"repro/internal/isa"
)

// nullProvider is a pass-through register provider for simulator tests.
type nullProvider struct{ stats ProviderStats }

func (nullProvider) Name() string                       { return "null" }
func (*nullProvider) Attach(*SM) error                  { return nil }
func (*nullProvider) CanIssue(*Warp) bool               { return true }
func (*nullProvider) OnIssue(*Warp, *exec.StepInfo) int { return 0 }
func (*nullProvider) OnWriteback(*Warp, isa.Reg)        {}
func (*nullProvider) OnWarpFinish(*Warp)                {}
func (*nullProvider) Tick()                             {}
func (*nullProvider) Drained() bool                     { return true }
func (p *nullProvider) Stats() *ProviderStats           { return &p.stats }

func smallKernel(t *testing.T) *isa.Kernel {
	t.Helper()
	b := isa.NewBuilder("small", 4)
	tid := b.Tid()
	idx := b.OpImm(isa.OpSHLI, tid, 2)
	i := b.Movi(4)
	acc := b.Movi(0)
	top := b.Label()
	b.Bind(top)
	v := b.Ldg(idx, 0x100000)
	b.Op2To(isa.OpIADD, acc, acc, v)
	b.OpImmTo(isa.OpIADDI, idx, idx, 1024)
	b.OpImmTo(isa.OpIADDI, i, i, ^uint32(0))
	b.Bnz(i, top)
	b.Stg(idx, acc, 0x200000)
	b.Exit()
	return b.MustKernel()
}

func runSim(t *testing.T, k *isa.Kernel, cfgv Config) (*Stats, *exec.Memory) {
	t.Helper()
	mm := exec.NewMemory(nil)
	sm, err := New(cfgv, k, &nullProvider{}, mm)
	if err != nil {
		t.Fatal(err)
	}
	st, err := sm.Run()
	if err != nil {
		t.Fatal(err)
	}
	return st, mm
}

func testConfig() Config {
	c := DefaultConfig()
	c.Warps = 16
	c.MaxCycles = 2_000_000
	return c
}

func TestSimCompletesAndMatchesFunctional(t *testing.T) {
	k := smallKernel(t)
	st, mm := runSim(t, k, testConfig())
	if st.Cycles == 0 || st.DynInsns == 0 {
		t.Fatalf("degenerate run: %+v", st)
	}
	// Compare against the pure-functional reference.
	ref, err := exec.Run(k, 16, exec.NewMemory(nil))
	if err != nil {
		t.Fatal(err)
	}
	if ref.DynInsns != st.DynInsns {
		t.Fatalf("dyn insns: sim %d vs functional %d", st.DynInsns, ref.DynInsns)
	}
	got := mm.GlobalStores()
	if len(got) != len(ref.Stores) {
		t.Fatalf("store counts differ: %d vs %d", len(got), len(ref.Stores))
	}
	for a, v := range ref.Stores {
		if got[a] != v {
			t.Fatalf("store mismatch at %#x: %d vs %d", a, got[a], v)
		}
	}
}

func TestSimMemoryLatencyVisible(t *testing.T) {
	// A load-dependent chain must take far longer than an ALU chain of
	// the same length.
	alu := func() *isa.Kernel {
		b := isa.NewBuilder("alu", 4)
		v := b.Movi(1)
		for i := 0; i < 8; i++ {
			v = b.Addi(v, 1)
		}
		b.Stg(v, v, 0x200000)
		b.Exit()
		return b.MustKernel()
	}()
	ld := func() *isa.Kernel {
		b := isa.NewBuilder("ld", 4)
		mask := b.Movi(0xFFFFC)
		v := b.Movi(0x100000)
		for i := 0; i < 8; i++ {
			v = b.Ldg(v, 0) // dependent loads (pointer chase)
			v = b.Op2(isa.OpAND, v, mask)
		}
		b.Stg(v, v, 0x200000)
		b.Exit()
		return b.MustKernel()
	}()
	cfgv := testConfig()
	cfgv.Warps = 4
	stALU, _ := runSim(t, alu, cfgv)
	stLD, _ := runSim(t, ld, cfgv)
	if stLD.Cycles < stALU.Cycles*3 {
		t.Fatalf("memory latency invisible: ALU %d cycles, load chain %d", stALU.Cycles, stLD.Cycles)
	}
}

func TestSimCoalescing(t *testing.T) {
	// Coalesced access: one line per warp load.
	co := func() *isa.Kernel {
		b := isa.NewBuilder("co", 4)
		tid := b.Tid()
		a := b.OpImm(isa.OpSHLI, tid, 2)
		v := b.Ldg(a, 0x100000)
		b.Stg(a, v, 0x200000)
		b.Exit()
		return b.MustKernel()
	}()
	// Scattered: 128-byte stride per lane -> 32 lines per warp load.
	sc := func() *isa.Kernel {
		b := isa.NewBuilder("sc", 4)
		tid := b.Tid()
		a := b.OpImm(isa.OpSHLI, tid, 7)
		v := b.Ldg(a, 0x100000)
		b.Stg(a, v, 0x200000)
		b.Exit()
		return b.MustKernel()
	}()
	cfgv := testConfig()
	cfgv.Warps = 4
	stCo, _ := runSim(t, co, cfgv)
	stSc, _ := runSim(t, sc, cfgv)
	// co: 4 warps x (1 load + 1 store) = 8 lines.
	if stCo.MemLines != 8 {
		t.Fatalf("coalesced lines = %d, want 8", stCo.MemLines)
	}
	if stSc.MemLines != 8*32 {
		t.Fatalf("scattered lines = %d, want 256", stSc.MemLines)
	}
}

func TestSimBarrier(t *testing.T) {
	b := isa.NewBuilder("bar", 4)
	lane := b.Lane()
	sa := b.Muli(lane, 4)
	wid := b.Wid()
	b.Sts(sa, wid, 0)
	b.Bar()
	v := b.Lds(sa, 0)
	tid := b.Tid()
	ga := b.Muli(tid, 4)
	b.Stg(ga, v, 0x200000)
	b.Exit()
	k := b.MustKernel()
	st, _ := runSim(t, k, testConfig())
	if st.Barriers != 16 {
		t.Fatalf("barriers executed = %d, want 16", st.Barriers)
	}
}

func TestTwoLevelSchedulerCompletes(t *testing.T) {
	cfgv := testConfig()
	cfgv.Sched = SchedTwoLevel
	cfgv.ActiveSet = 2
	k := smallKernel(t)
	st, mm := runSim(t, k, cfgv)
	ref, err := exec.Run(k, cfgv.Warps, exec.NewMemory(nil))
	if err != nil {
		t.Fatal(err)
	}
	got := mm.GlobalStores()
	for a, v := range ref.Stores {
		if got[a] != v {
			t.Fatalf("two-level run diverged at %#x", a)
		}
	}
	if st.Cycles == 0 {
		t.Fatal("no cycles")
	}
}

func TestWindowStatsPopulated(t *testing.T) {
	cfgv := testConfig()
	cfgv.WindowSize = 50
	st, _ := runSim(t, smallKernel(t), cfgv)
	if st.WorkingSetKB <= 0 {
		t.Fatalf("working set = %v", st.WorkingSetKB)
	}
	if len(st.BackingSeries) == 0 {
		t.Fatal("no backing-store series sampled")
	}
}

func TestGTOStickiness(t *testing.T) {
	// With a pure ALU kernel and GTO, the same warp should issue
	// repeatedly: total cycles ≈ serialized dependent chains of warp 0,
	// then others overlap. Mostly this is a smoke test that GTO doesn't
	// round-robin pathologically (cycles should be well under
	// warps x chainLatency).
	b := isa.NewBuilder("sticky", 4)
	v := b.Movi(1)
	for i := 0; i < 20; i++ {
		v = b.Addi(v, 1)
	}
	b.Stg(v, v, 0x200000)
	b.Exit()
	k := b.MustKernel()
	cfgv := testConfig()
	cfgv.Warps = 16
	st, _ := runSim(t, k, cfgv)
	serial := uint64(16/4) * 20 * uint64(cfgv.ALULat)
	if st.Cycles >= serial {
		t.Fatalf("GTO failed to overlap warps: %d cycles >= %d", st.Cycles, serial)
	}
}

func TestMaxCyclesGuard(t *testing.T) {
	cfgv := testConfig()
	cfgv.MaxCycles = 10
	mm := exec.NewMemory(nil)
	sm, err := New(cfgv, smallKernel(t), &nullProvider{}, mm)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sm.Run(); err == nil {
		t.Fatal("MaxCycles guard did not trip")
	}
}

func TestLRRSchedulerCompletes(t *testing.T) {
	cfgv := testConfig()
	cfgv.Sched = SchedLRR
	k := smallKernel(t)
	_, mm := runSim(t, k, cfgv)
	ref, err := exec.Run(k, cfgv.Warps, exec.NewMemory(nil))
	if err != nil {
		t.Fatal(err)
	}
	got := mm.GlobalStores()
	for a, v := range ref.Stores {
		if got[a] != v {
			t.Fatalf("LRR run diverged at %#x", a)
		}
	}
}

func TestLRRFairness(t *testing.T) {
	// Pure ALU kernel: under LRR every warp's last-issue cycles should
	// interleave (no warp monopolizes), unlike GTO.
	b := isa.NewBuilder("fair", 4)
	v := b.Movi(1)
	for i := 0; i < 30; i++ {
		v = b.Addi(v, 1)
	}
	b.Stg(v, v, 0x200000)
	b.Exit()
	k := b.MustKernel()
	cfgv := testConfig()
	cfgv.Warps = 8
	cfgv.Sched = SchedLRR
	mm := exec.NewMemory(nil)
	sm, err := New(cfgv, k, &nullProvider{}, mm)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sm.Run(); err != nil {
		t.Fatal(err)
	}
	// All warps in a group finish within a small window of one another.
	var last [4]uint64
	for _, w := range sm.Warps {
		if w.lastIssue > last[w.Group] {
			last[w.Group] = w.lastIssue
		}
	}
	for _, w := range sm.Warps {
		if last[w.Group]-w.lastIssue > 64 {
			t.Fatalf("warp %d finished %d cycles before its group's last",
				w.ID, last[w.Group]-w.lastIssue)
		}
	}
}

func TestSIMTEfficiency(t *testing.T) {
	// Uniform kernel: efficiency 1. Divergent diamond: below 1.
	uniform := smallKernel(t)
	stU, _ := runSim(t, uniform, testConfig())
	if e := stU.SIMTEfficiency(); e != 1.0 {
		t.Fatalf("uniform efficiency = %v", e)
	}
	b := isa.NewBuilder("div", 4)
	lane := b.Lane()
	parity := b.Op2(isa.OpAND, lane, b.Movi(1))
	elseL, join := b.Label(), b.Label()
	b.Bnz(parity, elseL)
	x := b.Addi(lane, 1)
	_ = x
	b.Bra(join)
	b.Bind(elseL)
	y := b.Addi(lane, 2)
	_ = y
	b.Bind(join)
	addr := b.Muli(lane, 4)
	b.Stg(addr, lane, 0x200000)
	b.Exit()
	k := b.MustKernel()
	stD, _ := runSim(t, k, testConfig())
	if e := stD.SIMTEfficiency(); e >= 1.0 || e <= 0.5 {
		t.Fatalf("divergent efficiency = %v, want in (0.5, 1)", e)
	}
}
