// Cooperative cancellation for the cycle loop. A simulation abandoned by
// its requester (deadline expiry, client disconnect, server drain) should
// free its worker-pool slot instead of simulating to completion; the cost
// on the healthy path must be unmeasurable, because the inner loop is the
// hottest code in the repository (ROADMAP BENCH gate).
package sim

import (
	"context"
	"fmt"
)

// CancelCheckInterval is how many cycle-loop iterations pass between
// context polls. At ~1M simcycles/s a check every 8192 iterations bounds
// cancellation latency to well under 10ms of simulated work while keeping
// the poll off the per-cycle path.
const CancelCheckInterval = 8192

// AttachContext arms cooperative cancellation: Run will poll ctx every
// CancelCheckInterval iterations and return a wrapped ctx.Err() once it
// is done. Attaching context.Background() (whose Done channel is nil)
// leaves the check disabled, so the per-iteration cost of the disabled
// path is a single nil compare.
func (sm *SM) AttachContext(ctx context.Context) {
	if ctx == nil || ctx.Done() == nil {
		sm.cancelCh, sm.cancelCtx = nil, nil
		return
	}
	sm.cancelCh = ctx.Done()
	sm.cancelCtx = ctx
}

// canceled polls the attached context on the check cadence. The returned
// error wraps context.Canceled / context.DeadlineExceeded so callers can
// distinguish abandonment from simulation faults with errors.Is.
func (sm *SM) canceled() error {
	sm.sinceCancelCheck++
	if sm.sinceCancelCheck < CancelCheckInterval {
		return nil
	}
	sm.sinceCancelCheck = 0
	select {
	case <-sm.cancelCh:
		return fmt.Errorf("sim: kernel %q abandoned at cycle %d: %w", sm.K.Name, sm.cycle, sm.cancelCtx.Err())
	default:
		return nil
	}
}
