package kernels

import "repro/internal/isa"

// Builders for the first half of the Rodinia-analogue suite. Comments on
// each builder describe which published characteristics are engineered in
// (see the package comment for the mapping rationale).

// addr4 returns base + 4*idx as a fresh register — the canonical coalesced
// access pattern (and a stride-4-compressible register value).
func addr4(b *isa.Builder, idx isa.Reg, base uint32) isa.Reg {
	return b.Addi(b.Muli(idx, 4), base)
}

// buildBTree: descend a 6-level search tree. Each level is a dependent
// load (pointer chase) whose use must sit in the next region, producing
// the small regions and compressible index arithmetic of b+tree.
func buildBTree() *isa.Kernel {
	b := isa.NewBuilder("b+tree", 8)
	tid := b.Tid()
	key := b.OpImm(isa.OpSHLI, tid, 3) // search key, stride-compressible
	node := b.Op2(isa.OpAND, tid, b.Movi(63))
	lvl := b.Movi(6)
	two := b.Movi(2)
	one := b.Movi(1)
	top := b.Label()
	b.Bind(top)
	a := addr4(b, node, inBase)
	v := b.Ldg(a, 0) // node key (incompressible)
	// go left/right without divergence: node = 2*node + (v<key ? 1 : 2)
	diff := b.Op2(isa.OpISUB, v, key)
	bit := b.OpImm(isa.OpSHRI, diff, 31)
	step := b.Op3(isa.OpSELP, one, two, bit)
	b.Op2To(isa.OpIMUL, node, node, two)
	b.Op2To(isa.OpIADD, node, node, step)
	b.Op2To(isa.OpAND, node, node, b.Movi(1023))
	b.OpImmTo(isa.OpIADDI, lvl, lvl, ^uint32(0))
	b.Bnz(lvl, top)
	// leaf: fetch record, divergent hit check
	ra := addr4(b, node, inBase2)
	rec := b.Ldg(ra, 0)
	hit := b.Op2(isa.OpAND, rec, one)
	miss := b.Label()
	b.Bz(hit, miss)
	b.Stg(addr4(b, tid, outBase), rec, 0)
	b.Bind(miss)
	b.Stg(addr4(b, tid, outBase2), node, 0)
	b.Exit()
	return b.MustKernel()
}

// buildBackprop: forward accumulation over 8 weights, a shared-memory
// partial, a barrier, then a small reduction phase — backprop's
// two-phase barrier structure.
func buildBackprop() *isa.Kernel {
	b := isa.NewBuilder("backprop", 8)
	tid := b.Tid()
	acc := b.Movi(0)
	i := b.Movi(8)
	idx := b.OpImm(isa.OpSHLI, tid, 2)
	top := b.Label()
	b.Bind(top)
	w := b.Ldg(idx, inBase) // weight
	x := b.Ldg(idx, inBase2)
	prod := b.Op2(isa.OpIMUL, w, x)
	b.Op2To(isa.OpIADD, acc, acc, prod)
	b.OpImmTo(isa.OpIADDI, idx, idx, 256)
	b.OpImmTo(isa.OpIADDI, i, i, ^uint32(0))
	b.Bnz(i, top)
	// stage partial into shared, reduce across 4 neighbours
	saddr := b.Muli(tid, 4)
	b.Sts(saddr, acc, 0)
	b.Bar()
	red := b.Movi(0)
	for k := 0; k < 4; k++ {
		nb := b.Op2(isa.OpXOR, saddr, b.Movi(uint32(4<<k)))
		pv := b.Lds(nb, 0)
		b.Op2To(isa.OpIADD, red, red, pv)
	}
	sum := b.Iadd(red, acc)
	b.Stg(addr4(b, tid, outBase), sum, 0)
	b.Exit()
	return b.MustKernel()
}

// buildBFS: an 8-edge frontier walk with irregular neighbour addresses
// (derived from loaded data) and a divergent visited check — tiny regions,
// tiny working set, heavy divergence.
func buildBFS() *isa.Kernel {
	b := isa.NewBuilder("bfs", 8)
	tid := b.Tid()
	node := b.Op2(isa.OpAND, tid, b.Movi(255))
	e := b.Movi(8)
	top := b.Label()
	b.Bind(top)
	ea := addr4(b, node, inBase)
	nbr := b.Ldg(ea, 0) // neighbour id: hash value -> uncoalesced next load
	nid := b.Op2(isa.OpAND, nbr, b.Movi(1023))
	va := addr4(b, nid, inBase2)
	vis := b.Ldg(va, 0)
	low := b.Op2(isa.OpAND, vis, b.Movi(7))
	skip := b.Label()
	b.Bnz(low, skip) // most lanes skip: divergent update
	b.Stg(addr4(b, tid, outBase2), nid, 0)
	b.Bind(skip)
	b.Op2To(isa.OpIADD, node, node, b.Movi(1))
	b.OpImmTo(isa.OpIADDI, e, e, ^uint32(0))
	b.Bnz(e, top)
	b.Stg(addr4(b, tid, outBase), node, 0)
	b.Exit()
	return b.MustKernel()
}

// buildDWT2D: a wide wavelet stencil holding 8 loaded taps plus 9
// coefficients live at once — the 20+ concurrent-live-register regions and
// incompressible values the paper reports for dwt2d.
func buildDWT2D() *isa.Kernel {
	b := isa.NewBuilder("dwt2d", 8)
	tid := b.Tid()
	base := b.OpImm(isa.OpSHLI, tid, 2)
	rows := b.Movi(3)
	top := b.Label()
	b.Bind(top)
	// Load 8 taps; all stay live through the combine.
	var taps [8]isa.Reg
	for i := range taps {
		taps[i] = b.Ldg(base, uint32(inBase+64*i))
	}
	// 9 coefficients (broadcast constants: compressible minority).
	var coef [9]isa.Reg
	for i := range coef {
		coef[i] = b.Movi(uint32(3*i + 1))
	}
	lo := b.Movi(0)
	hi := b.Movi(0)
	for i := 0; i < 8; i++ {
		lo = b.Op3(isa.OpIMAD, taps[i], coef[i], lo)
		hi = b.Op3(isa.OpIMAD, taps[7-i], coef[i+1], hi)
	}
	mix := b.Op2(isa.OpXOR, lo, hi)
	b.Stg(base, lo, outBase)
	b.Stg(base, mix, outBase2)
	b.OpImmTo(isa.OpIADDI, base, base, 32768)
	b.OpImmTo(isa.OpIADDI, rows, rows, ^uint32(0))
	b.Bnz(rows, top)
	b.Exit()
	return b.MustKernel()
}

// buildGaussian: row elimination where the pivot element and the row
// element are loaded back-to-back and both stay live across the pair —
// the "registers live across global loads" behaviour that costs gaussian
// performance under RegLess.
func buildGaussian() *isa.Kernel {
	b := isa.NewBuilder("gaussian", 8)
	tid := b.Tid()
	col := b.OpImm(isa.OpSHLI, tid, 2)
	factor := b.Ldg(col, inBase2) // per-thread multiplier, stays live
	i := b.Movi(6)
	top := b.Label()
	b.Bind(top)
	p := b.Ldg(col, inBase)      // pivot row element
	a := b.Ldg(col, inBase+4096) // own row element (p still live here)
	fp := b.Op2(isa.OpIMUL, factor, p)
	nv := b.Op2(isa.OpISUB, a, fp)
	b.Stg(col, nv, outBase)
	b.OpImmTo(isa.OpIADDI, col, col, 8192)
	b.OpImmTo(isa.OpIADDI, i, i, ^uint32(0))
	b.Bnz(i, top)
	b.Exit()
	return b.MustKernel()
}

// buildHeartwall: three levels of nested data-dependent branches inside a
// loop — the complex control flow that inflates heartwall's potentially
// live register set.
func buildHeartwall() *isa.Kernel {
	b := isa.NewBuilder("heartwall", 8)
	tid := b.Tid()
	acc := b.Movi(0)
	carry := b.Movi(5) // live across all branch arms: conservative liveness
	i := b.Movi(6)
	top := b.Label()
	b.Bind(top)
	a := addr4(b, tid, inBase)
	v := b.Ldg(a, 0)
	c1 := b.Op2(isa.OpAND, v, b.Movi(1))
	c2 := b.Op2(isa.OpAND, v, b.Movi(2))
	c3 := b.Op2(isa.OpAND, v, b.Movi(4))
	l1e, l1j := b.Label(), b.Label()
	b.Bnz(c1, l1e)
	{ // arm A: nested split on c2
		l2e, l2j := b.Label(), b.Label()
		b.Bnz(c2, l2e)
		b.Op2To(isa.OpIADD, acc, acc, carry)
		b.Bra(l2j)
		b.Bind(l2e)
		b.Op2To(isa.OpISUB, acc, acc, carry)
		b.Bind(l2j)
	}
	b.Bra(l1j)
	b.Bind(l1e)
	{ // arm B: nested split on c3
		l3e, l3j := b.Label(), b.Label()
		b.Bnz(c3, l3e)
		b.Op2To(isa.OpXOR, acc, acc, v)
		b.Bra(l3j)
		b.Bind(l3e)
		b.Op2To(isa.OpIADD, carry, carry, v) // soft def of carry
		b.Bind(l3j)
	}
	b.Bind(l1j)
	b.OpImmTo(isa.OpIADDI, tid, tid, 32)
	b.OpImmTo(isa.OpIADDI, i, i, ^uint32(0))
	b.Bnz(i, top)
	sum := b.Iadd(acc, carry)
	b.Stg(addr4(b, b.Tid(), outBase), sum, 0)
	b.Exit()
	return b.MustKernel()
}

// buildHotspot: an iterated 5-point stencil with a shared-memory tile and
// per-step barriers — hotspot's structure, with compressible address
// registers feeding the compressor (paper Figure 17).
func buildHotspot() *isa.Kernel {
	b := isa.NewBuilder("hotspot", 8)
	tid := b.Tid()
	col := b.OpImm(isa.OpSHLI, tid, 2)
	sa := b.Muli(tid, 4)
	t := b.Ldg(col, inBase) // initial temperature
	steps := b.Movi(4)
	top := b.Label()
	b.Bind(top)
	b.Sts(sa, t, 0)
	b.Bar()
	n := b.Lds(sa, 4)
	s := b.Lds(sa, 124)
	wv := b.Ldg(col, inBase2) // west from global (halo)
	p := b.Ldg(col, inBase2+4096)
	sum := b.Iadd(n, s)
	sum2 := b.Iadd(sum, wv)
	delta := b.Op3(isa.OpIMAD, sum2, b.Movi(3), p)
	b.Op2To(isa.OpIADD, t, t, delta)
	b.Bar()
	b.OpImmTo(isa.OpIADDI, steps, steps, ^uint32(0))
	b.Bnz(steps, top)
	b.Stg(col, t, outBase)
	b.Exit()
	return b.MustKernel()
}

// buildHybridsort: divergent 4-way bucketing where accumulators are
// redefined on control paths before being read — producing hybridsort's
// conservative-liveness stores-exceed-loads traffic.
func buildHybridsort() *isa.Kernel {
	b := isa.NewBuilder("hybridsort", 8)
	tid := b.Tid()
	acc0 := b.Movi(0)
	acc1 := b.Movi(0)
	i := b.Movi(8)
	idx := b.OpImm(isa.OpSHLI, tid, 2)
	top := b.Label()
	b.Bind(top)
	v := b.Ldg(idx, inBase)
	bkt := b.Op2(isa.OpAND, v, b.Movi(3))
	hibit := b.Op2(isa.OpAND, v, b.Movi(2))
	lobit := b.Op2(isa.OpAND, v, b.Movi(1))
	lhi, lj := b.Label(), b.Label()
	b.Bnz(hibit, lhi)
	{ // buckets 0/1: redefine acc0 before any read on this path
		l1, l2 := b.Label(), b.Label()
		b.Bnz(lobit, l1)
		b.MoviTo(acc0, 17) // soft redefinition, never read before
		b.Stg(addr4(b, bkt, outBase), v, 0)
		b.Bra(l2)
		b.Bind(l1)
		b.Op2To(isa.OpIADD, acc0, acc0, v)
		b.Bind(l2)
	}
	b.Bra(lj)
	b.Bind(lhi)
	{ // buckets 2/3
		l1, l2 := b.Label(), b.Label()
		b.Bnz(lobit, l1)
		b.Op2To(isa.OpXOR, acc1, acc1, v)
		b.Bra(l2)
		b.Bind(l1)
		b.MoviTo(acc1, 91)
		b.Stg(addr4(b, bkt, outBase2), v, 0)
		b.Bind(l2)
	}
	b.Bind(lj)
	b.OpImmTo(isa.OpIADDI, idx, idx, 1024)
	b.OpImmTo(isa.OpIADDI, i, i, ^uint32(0))
	b.Bnz(i, top)
	fin := b.Iadd(acc0, acc1)
	b.Stg(addr4(b, tid, outBase), fin, 4096)
	b.Exit()
	return b.MustKernel()
}

// buildKmeans: 4 centers x 8 features of multiply-accumulate per load —
// kmeans' long-running compute regions (Table 2: ~1000 cycles/region).
func buildKmeans() *isa.Kernel {
	b := isa.NewBuilder("kmeans", 8)
	tid := b.Tid()
	idx := b.OpImm(isa.OpSHLI, tid, 2)
	best := b.Movi(0xFFFFFFFF)
	bestC := b.Movi(0)
	c := b.Movi(4)
	top := b.Label()
	b.Bind(top)
	f := b.Ldg(idx, inBase) // one feature vector element per center pass
	dist := b.Movi(0)
	for j := 0; j < 8; j++ {
		// center coordinates are derived arithmetically (no load):
		// compute-heavy inner work keeping the region busy.
		cc := b.Op2(isa.OpXOR, c, b.Movi(uint32(0x9e37+j)))
		d := b.Op2(isa.OpISUB, f, cc)
		dist = b.Op3(isa.OpIMAD, d, d, dist)
	}
	isLess := b.Op2(isa.OpMIN, dist, best)
	eq := b.Op2(isa.OpXOR, isLess, best)
	b.Op2To(isa.OpMIN, best, best, dist)
	bc := b.Op3(isa.OpSELP, bestC, c, eq)
	b.Op2To(isa.OpOR, bestC, bc, b.Movi(0))
	b.OpImmTo(isa.OpIADDI, c, c, ^uint32(0))
	b.Bnz(c, top)
	b.Stg(addr4(b, tid, outBase), bestC, 0)
	b.Stg(addr4(b, tid, outBase2), best, 0)
	b.Exit()
	return b.MustKernel()
}

// buildLavaMD: 4 neighbour boxes x 6 particles with a 4-accumulator force
// kernel — lavaMD's long regions with many live registers (Table 2:
// ~1600 cycles/region).
func buildLavaMD() *isa.Kernel {
	b := isa.NewBuilder("lavaMD", 8)
	tid := b.Tid()
	idx := b.OpImm(isa.OpSHLI, tid, 2)
	fx := b.Movi(0)
	fy := b.Movi(0)
	fz := b.Movi(0)
	fw := b.Movi(0)
	box := b.Movi(4)
	btop := b.Label()
	b.Bind(btop)
	px := b.Ldg(idx, inBase)
	py := b.Ldg(idx, inBase+4096)
	j := b.Movi(6)
	ptop := b.Label()
	b.Bind(ptop)
	dx := b.Op2(isa.OpISUB, px, j)
	dy := b.Op2(isa.OpISUB, py, j)
	r2 := b.Op3(isa.OpIMAD, dx, dx, b.Op2(isa.OpIMUL, dy, dy))
	inv := b.Sfu(r2) // 1/r^2 analogue
	s := b.Op2(isa.OpIMUL, inv, r2)
	b.Op3To(isa.OpIMAD, fx, dx, s, fx)
	b.Op3To(isa.OpIMAD, fy, dy, s, fy)
	b.Op3To(isa.OpIMAD, fz, s, s, fz)
	b.Op2To(isa.OpIADD, fw, fw, inv)
	b.OpImmTo(isa.OpIADDI, j, j, ^uint32(0))
	b.Bnz(j, ptop)
	b.OpImmTo(isa.OpIADDI, idx, idx, 8192)
	b.OpImmTo(isa.OpIADDI, box, box, ^uint32(0))
	b.Bnz(box, btop)
	b.Stg(addr4(b, tid, outBase), b.Iadd(fx, fy), 0)
	b.Stg(addr4(b, tid, outBase2), b.Iadd(fz, fw), 0)
	b.Exit()
	return b.MustKernel()
}

// buildLeukocyte: a 3x3 convolution window, one load plus a short chain
// per tap, SFU finish — leukocyte's moderate-pressure compute.
func buildLeukocyte() *isa.Kernel {
	b := isa.NewBuilder("leukocyte", 8)
	tid := b.Tid()
	idx := b.OpImm(isa.OpSHLI, tid, 2)
	acc := b.Movi(0)
	rows := b.Movi(3)
	top := b.Label()
	b.Bind(top)
	// Load the window's three taps up front, then run the combine as a
	// single compute region (matrix-free GICOV evaluation analogue).
	var taps [3]isa.Reg
	for cidx := range taps {
		taps[cidx] = b.Ldg(idx, uint32(inBase+4*cidx))
	}
	grad := b.Op2(isa.OpISUB, taps[2], taps[0])
	mag := b.Op3(isa.OpIMAD, grad, grad, taps[1])
	sin := b.Op2(isa.OpXOR, mag, taps[1])
	cos := b.Op2(isa.OpMAX, mag, grad)
	proj := b.Op3(isa.OpIMAD, sin, cos, mag)
	b.Op3To(isa.OpIMAD, acc, proj, b.Movi(7), acc)
	b.OpImmTo(isa.OpIADDI, idx, idx, 4096)
	b.OpImmTo(isa.OpIADDI, rows, rows, ^uint32(0))
	b.Bnz(rows, top)
	g := b.Sfu(acc)
	out := b.Iadd(g, acc)
	b.Stg(addr4(b, tid, outBase), out, 0)
	b.Exit()
	return b.MustKernel()
}
