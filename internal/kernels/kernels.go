// Package kernels provides the benchmark suite: one synthetic kernel per
// Rodinia benchmark (the suite the paper evaluates, §6.1), written against
// the repro ISA, plus microkernels for targeted tests.
//
// The paper's evaluation uses the real Rodinia CUDA binaries, which we do
// not have; per the reproduction's substitution policy each synthetic
// kernel is engineered to match the published per-benchmark behaviour that
// drives RegLess:
//
//   - region structure (instructions/region, Table 2) via compute chain
//     length between global loads and control-flow density;
//   - register pressure (Figure 19's concurrent live registers; Figure 2's
//     working set) via the number of simultaneously-held values;
//   - memory intensity and coalescing (bfs/mummergpu irregular, stencils
//     coalesced);
//   - value compressibility (Figure 17) via how much of the register
//     population is address arithmetic / broadcast scalars (compressible
//     patterns) versus loaded data (incompressible hash values);
//   - specific quirks the paper calls out: gaussian's registers live
//     across global loads, hybridsort/heartwall's divergent control flow
//     and conservative liveness, hybridsort/srad_v2's redefinitions on a
//     control path before a read (stores exceeding loads, §6.5).
//
// Build functions return kernels over virtual registers; Load runs the
// register allocator so consumers get architecturally-allocated code, as
// ptxas would produce.
package kernels

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/isa"
	"repro/internal/regalloc"
)

// Benchmark describes one suite entry.
type Benchmark struct {
	// Name is the Rodinia benchmark this kernel stands in for.
	Name string
	// Build constructs the kernel over virtual registers.
	Build func() *isa.Kernel
	// Character is a one-line note on what behaviour is engineered in.
	Character string
}

// Buffer base addresses. Each kernel keeps its data in disjoint regions of
// the functional global memory.
const (
	inBase   = 0x0100_0000
	inBase2  = 0x0180_0000
	outBase  = 0x0200_0000
	outBase2 = 0x0280_0000
)

var suite = []Benchmark{
	{"b+tree", buildBTree, "pointer-chasing tree descent, small regions, compressible index registers"},
	{"backprop", buildBackprop, "two barrier-separated phases, shared-memory reduction"},
	{"bfs", buildBFS, "irregular frontier loads, heavy divergence, tiny regions and working set"},
	{"dwt2d", buildDWT2D, "wide stencil with 20+ concurrent live registers, incompressible data"},
	{"gaussian", buildGaussian, "registers live across back-to-back global loads"},
	{"heartwall", buildHeartwall, "deeply nested data-dependent control flow"},
	{"hotspot", buildHotspot, "5-point stencil, shared-memory tile, barriers"},
	{"hybridsort", buildHybridsort, "divergent bucketing with redefinitions before reads (stores > loads)"},
	{"kmeans", buildKmeans, "long feature-accumulation loops, few loads per region"},
	{"lavaMD", buildLavaMD, "nested particle loops, long-running large regions"},
	{"leukocyte", buildLeukocyte, "convolution window with moderate pressure"},
	{"lud", buildLUD, "dense factorization, largest compute regions"},
	{"mummergpu", buildMummer, "irregular string matching, divergent loop exits"},
	{"myocyte", buildMyocyte, "huge straightline ODE expressions, highest register pressure"},
	{"nn", buildNN, "tiny distance kernel dominated by memory latency"},
	{"nw", buildNW, "wavefront DP in shared memory, small working set"},
	{"particle_filter", buildParticleFilter, "sawtooth live-register profile (paper Figure 5)"},
	{"pathfinder", buildPathfinder, "row-wise DP with min-reduction and barriers"},
	{"srad_v1", buildSradV1, "stencil with SFU transcendentals and boundary divergence"},
	{"srad_v2", buildSradV2, "stencil variant with conditional redefinitions (stores > loads)"},
	{"streamcluster", buildStreamcluster, "very short memory-bound regions"},
}

// Suite returns the 21 Rodinia-analogue benchmarks in a stable order.
func Suite() []Benchmark {
	out := make([]Benchmark, len(suite))
	copy(out, suite)
	return out
}

// Names returns the benchmark names in suite order.
func Names() []string {
	names := make([]string, len(suite))
	for i, b := range suite {
		names[i] = b.Name
	}
	return names
}

// ByName finds a benchmark.
func ByName(name string) (Benchmark, error) {
	for _, b := range suite {
		if b.Name == name {
			return b, nil
		}
	}
	sorted := Names()
	sort.Strings(sorted)
	return Benchmark{}, fmt.Errorf("kernels: unknown benchmark %q (have %v)", name, sorted)
}

// loadCache memoizes codegen + register allocation per benchmark: the
// suite kernels are immutable after allocation, every consumer (compiler,
// simulator, executor) reads them without mutation, and the experiment
// engine loads the same benchmark hundreds of times across schemes and
// capacities. Entries carry a sync.Once so concurrent first loads of the
// same benchmark share one allocation instead of racing.
var loadCache = struct {
	sync.Mutex
	m map[string]*loadEntry
}{m: map[string]*loadEntry{}}

type loadEntry struct {
	once sync.Once
	k    *isa.Kernel
	err  error
}

// Load builds a benchmark's kernel and runs register allocation, returning
// architecturally-allocated code. The result is memoized process-wide:
// repeated loads of the same benchmark return the same *isa.Kernel, which
// callers must treat as immutable.
func Load(name string) (*isa.Kernel, error) {
	b, err := ByName(name)
	if err != nil {
		return nil, err
	}
	loadCache.Lock()
	e, ok := loadCache.m[name]
	if !ok {
		e = &loadEntry{}
		loadCache.m[name] = e
	}
	loadCache.Unlock()
	e.once.Do(func() {
		res, err := regalloc.Allocate(b.Build())
		if err != nil {
			e.err = fmt.Errorf("kernels: allocating %s: %w", name, err)
			return
		}
		e.k = res.Kernel
	})
	return e.k, e.err
}

// MustLoad is Load but panics on error (suite kernels failing to build is
// a programming bug).
func MustLoad(name string) *isa.Kernel {
	k, err := Load(name)
	if err != nil {
		panic(err)
	}
	return k
}
