package kernels

import (
	"fmt"

	"repro/internal/isa"
	"repro/internal/regalloc"
)

// Multi-kernel applications: several Rodinia programs launch a *sequence*
// of kernels per outer iteration (backprop's forward/adjust pair, bfs's
// frontier-expand/frontier-update pair, srad's two stencil passes). An
// Application models that: its kernels run back-to-back sharing global
// memory, so later kernels consume earlier kernels' stores and inherit
// their L2 state.
type Application struct {
	Name string
	// Kernels run in order; each is register-allocated.
	Kernels []*isa.Kernel
}

// Apps returns the multi-kernel application suite.
func Apps() []Application {
	return []Application{appBackprop(), appBFS(), appSrad()}
}

// AppByName finds an application.
func AppByName(name string) (Application, error) {
	for _, a := range Apps() {
		if a.Name == name {
			return a, nil
		}
	}
	return Application{}, fmt.Errorf("kernels: unknown application %q", name)
}

func mustAllocK(k *isa.Kernel) *isa.Kernel {
	res, err := regalloc.Allocate(k)
	if err != nil {
		panic(err)
	}
	return res.Kernel
}

// appBackprop: the forward pass writes layer activations that the
// weight-adjustment kernel then consumes.
func appBackprop() Application {
	fb := isa.NewBuilder("backprop_forward", 8)
	{
		tid := fb.Tid()
		idx := fb.OpImm(isa.OpSHLI, tid, 2)
		acc := fb.Movi(0)
		i := fb.Movi(6)
		top := fb.Label()
		fb.Bind(top)
		w := fb.Ldg(idx, inBase)
		x := fb.Ldg(idx, inBase2)
		fb.Op3To(isa.OpIMAD, acc, w, x, acc)
		fb.OpImmTo(isa.OpIADDI, idx, idx, 32768)
		fb.OpImmTo(isa.OpIADDI, i, i, ^uint32(0))
		fb.Bnz(i, top)
		act := fb.Sfu(acc) // activation function
		fb.Stg(addr4(fb, tid, outBase), act, 0)
		fb.Exit()
	}
	ab := isa.NewBuilder("backprop_adjust", 8)
	{
		tid := ab.Tid()
		act := ab.Ldg(addr4(ab, tid, outBase), 0) // forward pass's output
		grad := ab.Ldg(addr4(ab, tid, inBase2), 0)
		delta := ab.Op2(isa.OpIMUL, act, grad)
		wOld := ab.Ldg(addr4(ab, tid, inBase), 0)
		wNew := ab.Iadd(wOld, delta)
		ab.Stg(addr4(ab, tid, outBase2), wNew, 0)
		ab.Exit()
	}
	return Application{
		Name:    "backprop_app",
		Kernels: []*isa.Kernel{mustAllocK(fb.MustKernel()), mustAllocK(ab.MustKernel())},
	}
}

// appBFS: kernel 1 expands the frontier (writes per-thread next-node
// candidates); kernel 2 consumes them and updates per-thread levels.
func appBFS() Application {
	k1 := isa.NewBuilder("bfs_expand", 8)
	{
		tid := k1.Tid()
		node := k1.Op2(isa.OpAND, tid, k1.Movi(255))
		nbr := k1.Ldg(addr4(k1, node, inBase), 0)
		nid := k1.Op2(isa.OpAND, nbr, k1.Movi(1023))
		k1.Stg(addr4(k1, tid, outBase), nid, 0) // candidate for kernel 2
		k1.Exit()
	}
	k2 := isa.NewBuilder("bfs_update", 8)
	{
		tid := k2.Tid()
		cand := k2.Ldg(addr4(k2, tid, outBase), 0) // kernel 1's candidate
		vis := k2.Ldg(addr4(k2, cand, inBase2), 0)
		low := k2.Op2(isa.OpAND, vis, k2.Movi(7))
		skip := k2.Label()
		k2.Bnz(low, skip)
		k2.Stg(addr4(k2, tid, outBase2), cand, 0)
		k2.Bind(skip)
		k2.Exit()
	}
	return Application{
		Name:    "bfs_app",
		Kernels: []*isa.Kernel{mustAllocK(k1.MustKernel()), mustAllocK(k2.MustKernel())},
	}
}

// appSrad: pass 1 computes diffusion coefficients; pass 2 applies them.
func appSrad() Application {
	p1 := isa.NewBuilder("srad_coeff", 8)
	{
		tid := p1.Tid()
		idx := p1.OpImm(isa.OpSHLI, tid, 2)
		c := p1.Ldg(idx, inBase)
		n := p1.Ldg(idx, inBase+4096)
		g := p1.Op2(isa.OpISUB, n, c)
		q := p1.Sfu(g)
		p1.Stg(idx, q, outBase) // coefficient for pass 2
		p1.Exit()
	}
	p2 := isa.NewBuilder("srad_update", 8)
	{
		tid := p2.Tid()
		idx := p2.OpImm(isa.OpSHLI, tid, 2)
		c := p2.Ldg(idx, inBase)
		q := p2.Ldg(idx, outBase) // pass 1's coefficient
		upd := p2.Op3(isa.OpIMAD, q, p2.Movi(3), c)
		p2.Stg(idx, upd, outBase2)
		p2.Exit()
	}
	return Application{
		Name:    "srad_app",
		Kernels: []*isa.Kernel{mustAllocK(p1.MustKernel()), mustAllocK(p2.MustKernel())},
	}
}
