package kernels

import (
	"sync"
	"testing"
)

// TestLoadMemoized checks the process-wide allocation cache: repeated
// loads of a benchmark return the identical allocated kernel, and
// MustLoad shares it.
func TestLoadMemoized(t *testing.T) {
	a, err := Load("bfs")
	if err != nil {
		t.Fatal(err)
	}
	b, err := Load("bfs")
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("second Load re-allocated the kernel")
	}
	if c := MustLoad("bfs"); c != a {
		t.Fatal("MustLoad does not share the Load cache")
	}
}

// TestLoadConcurrent loads the same benchmark from many goroutines; the
// race detector plus the pointer-equality check cover the cache's
// synchronization.
func TestLoadConcurrent(t *testing.T) {
	const callers = 16
	results := make([]interface{}, callers)
	var wg sync.WaitGroup
	gate := make(chan struct{})
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-gate
			k, err := Load("hotspot")
			if err != nil {
				results[i] = err
				return
			}
			results[i] = k
		}(i)
	}
	close(gate)
	wg.Wait()
	for i := 1; i < callers; i++ {
		if results[i] != results[0] {
			t.Fatalf("caller %d got a different kernel or an error: %v", i, results[i])
		}
	}
}

// TestLoadUnknownStillErrors makes sure the cache did not swallow the
// unknown-benchmark error path.
func TestLoadUnknownStillErrors(t *testing.T) {
	if _, err := Load("nonesuch"); err == nil {
		t.Fatal("unknown benchmark did not error")
	}
}
