package kernels

import (
	"testing"

	"repro/internal/exec"
	"repro/internal/metadata"
	"repro/internal/regalloc"
	"repro/internal/regions"
)

func TestSuiteComplete(t *testing.T) {
	if len(Suite()) != 21 {
		t.Fatalf("suite has %d benchmarks, want the 21 Rodinia analogues", len(Suite()))
	}
	seen := map[string]bool{}
	for _, b := range Suite() {
		if seen[b.Name] {
			t.Fatalf("duplicate benchmark %q", b.Name)
		}
		seen[b.Name] = true
		if b.Character == "" {
			t.Fatalf("%s: missing character note", b.Name)
		}
	}
	for _, want := range []string{"bfs", "hotspot", "lud", "myocyte", "particle_filter", "streamcluster"} {
		if !seen[want] {
			t.Fatalf("missing benchmark %q", want)
		}
	}
}

func TestByNameUnknown(t *testing.T) {
	if _, err := ByName("nosuch"); err == nil {
		t.Fatal("ByName accepted unknown benchmark")
	}
}

// Every benchmark must build, validate, allocate, terminate functionally,
// and produce identical outputs before and after register allocation.
func TestAllBenchmarksBuildAndRun(t *testing.T) {
	const warps = 16
	for _, bm := range Suite() {
		bm := bm
		t.Run(bm.Name, func(t *testing.T) {
			t.Parallel()
			virt := bm.Build()
			if err := virt.Validate(); err != nil {
				t.Fatalf("virtual kernel invalid: %v", err)
			}
			res, err := regalloc.Allocate(virt)
			if err != nil {
				t.Fatal(err)
			}
			alloc := res.Kernel
			if alloc.NumRegs < 4 || alloc.NumRegs > 64 {
				t.Errorf("allocated %d registers, outside plausible GPU range [4,64]", alloc.NumRegs)
			}

			want, err := exec.Run(virt, warps, exec.NewMemory(nil))
			if err != nil {
				t.Fatalf("virtual run: %v", err)
			}
			got, err := exec.Run(alloc, warps, exec.NewMemory(nil))
			if err != nil {
				t.Fatalf("allocated run: %v", err)
			}
			if want.DynInsns != got.DynInsns {
				t.Fatalf("dynamic instruction count changed: %d -> %d", want.DynInsns, got.DynInsns)
			}
			if len(want.Stores) == 0 {
				t.Fatal("kernel produced no output")
			}
			if len(want.Stores) != len(got.Stores) {
				t.Fatalf("store count mismatch: %d vs %d", len(want.Stores), len(got.Stores))
			}
			for a, v := range want.Stores {
				if got.Stores[a] != v {
					t.Fatalf("regalloc changed behaviour at %#x: %d vs %d", a, got.Stores[a], v)
				}
			}
		})
	}
}

// Every benchmark must compile into regions with valid metadata under the
// default and a small OSU configuration.
func TestAllBenchmarksCompile(t *testing.T) {
	for _, bm := range Suite() {
		bm := bm
		t.Run(bm.Name, func(t *testing.T) {
			t.Parallel()
			k := MustLoad(bm.Name)
			for _, cfg := range []regions.Config{
				regions.DefaultConfig(),
				{MaxRegsPerRegion: 12, BankLines: 4, MinRegionInsns: 6},
			} {
				c, err := regions.Compile(k, cfg)
				if err != nil {
					t.Fatal(err)
				}
				if len(c.Regions) == 0 {
					t.Fatal("no regions")
				}
				if _, err := metadata.Apply(c); err != nil {
					t.Fatalf("metadata: %v", err)
				}
				s := c.Summarize()
				if s.AvgInsns <= 0 {
					t.Fatalf("bad summary %+v", s)
				}
			}
		})
	}
}

// Spot-check engineered characteristics against the paper's qualitative
// per-benchmark descriptions.
func TestCharacteristicsMatchPaper(t *testing.T) {
	summaries := map[string]regions.Summary{}
	for _, bm := range Suite() {
		k := MustLoad(bm.Name)
		c, err := regions.Compile(k, regions.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		summaries[bm.Name] = c.Summarize()
	}
	// lud has the largest compute regions in the paper (16 insns/region);
	// it must be near the top here too.
	if summaries["lud"].AvgInsns <= summaries["bfs"].AvgInsns {
		t.Errorf("lud regions (%.1f insns) should exceed bfs (%.1f)",
			summaries["lud"].AvgInsns, summaries["bfs"].AvgInsns)
	}
	if summaries["lud"].AvgInsns <= summaries["streamcluster"].AvgInsns {
		t.Errorf("lud regions (%.1f insns) should exceed streamcluster (%.1f)",
			summaries["lud"].AvgInsns, summaries["streamcluster"].AvgInsns)
	}
	// myocyte and dwt2d carry the most concurrent live registers (Fig 19:
	// 20+); they must exceed the light kernels.
	for _, heavy := range []string{"myocyte", "dwt2d"} {
		for _, light := range []string{"bfs", "streamcluster", "nn"} {
			if summaries[heavy].MeanMaxLive <= summaries[light].MeanMaxLive {
				t.Errorf("%s mean live (%.1f) should exceed %s (%.1f)",
					heavy, summaries[heavy].MeanMaxLive, light, summaries[light].MeanMaxLive)
			}
		}
	}
	// Most register placements should be interior — the paper's core
	// observation ("the vast majority of registers are intermediates
	// with short lifetimes", §3).
	interiorHeavy := 0
	for name, s := range summaries {
		if s.InteriorFrac > 0.5 {
			interiorHeavy++
		}
		t.Logf("%-16s regions=%3d insns/region=%5.1f preloads=%4.1f live=%4.1f±%4.1f interior=%.2f",
			name, s.NumRegions, s.AvgInsns, s.AvgPreloads, s.MeanMaxLive, s.StdMaxLive, s.InteriorFrac)
	}
	if interiorHeavy < 11 {
		t.Errorf("only %d/21 benchmarks have interior-dominated regions", interiorHeavy)
	}
}
