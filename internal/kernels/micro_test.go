package kernels

import (
	"testing"

	"repro/internal/exec"
	"repro/internal/isa"
	"repro/internal/regions"
)

func TestMicroRegPressure(t *testing.T) {
	low, err := MicroRegPressure(4)
	if err != nil {
		t.Fatal(err)
	}
	high, err := MicroRegPressure(24)
	if err != nil {
		t.Fatal(err)
	}
	if high.NumRegs <= low.NumRegs {
		t.Fatalf("pressure knob ineffective: %d vs %d regs", high.NumRegs, low.NumRegs)
	}
	for _, k := range []*isa.Kernel{low, high} {
		if _, err := exec.Run(k, 8, nil); err != nil {
			t.Fatalf("%s: %v", k.Name, err)
		}
		if _, err := regions.Compile(k, regions.DefaultConfig()); err != nil {
			t.Fatalf("%s: %v", k.Name, err)
		}
	}
}

func TestMicroDivergenceNesting(t *testing.T) {
	shallow, err := MicroDivergence(1)
	if err != nil {
		t.Fatal(err)
	}
	deep, err := MicroDivergence(4)
	if err != nil {
		t.Fatal(err)
	}
	if len(deep.Blocks) <= len(shallow.Blocks) {
		t.Fatalf("divergence knob ineffective: %d vs %d blocks", len(deep.Blocks), len(shallow.Blocks))
	}
	if _, err := exec.Run(deep, 8, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMicroPointerChase(t *testing.T) {
	k, err := MicroPointerChase(8)
	if err != nil {
		t.Fatal(err)
	}
	res, err := exec.Run(k, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Stores) == 0 {
		t.Fatal("no output")
	}
	// Loads must be serially dependent: the compiler must split each
	// load from its use.
	c, err := regions.Compile(k, regions.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Regions) < 8 {
		t.Fatalf("chase of 8 loads produced only %d regions", len(c.Regions))
	}
}

func TestMicroOccupancyFootprint(t *testing.T) {
	k, err := MicroOccupancy()
	if err != nil {
		t.Fatal(err)
	}
	if k.NumRegs <= 32 {
		t.Fatalf("occupancy kernel uses %d regs; needs >32 to pressure the baseline RF", k.NumRegs)
	}
	if k.NumRegs >= 64 {
		t.Fatalf("occupancy kernel uses %d regs; exceeds the metadata encoding range", k.NumRegs)
	}
	// Regions must still fit the default OSU despite the big footprint
	// (each phase touches only half the registers).
	c, err := regions.Compile(k, regions.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range c.Regions {
		if r.MaxLive > regions.DefaultConfig().MaxRegsPerRegion {
			t.Fatalf("region %d holds %d live regs", r.ID, r.MaxLive)
		}
	}
	if _, err := exec.Run(k, 8, nil); err != nil {
		t.Fatal(err)
	}
}
