package kernels

import (
	"fmt"

	"repro/internal/isa"
	"repro/internal/regalloc"
)

// Microkernels: parameterized stress kernels used by targeted tests and
// the extension experiments. Unlike the Rodinia analogues they isolate a
// single behaviour each.

// MicroRegPressure builds a kernel holding `live` values concurrently
// live across a loop with one load per iteration. live is clamped to
// [4, 24] so regions stay compilable at the default configuration.
func MicroRegPressure(live int) (*isa.Kernel, error) {
	if live < 4 {
		live = 4
	}
	if live > 24 {
		live = 24
	}
	b := isa.NewBuilder(fmt.Sprintf("micro_pressure_%d", live), 8)
	tid := b.Tid()
	idx := b.OpImm(isa.OpSHLI, tid, 2)
	vals := make([]isa.Reg, live)
	for i := range vals {
		vals[i] = b.Movi(uint32(i * 17))
	}
	iter := b.Movi(6)
	top := b.Label()
	b.Bind(top)
	v := b.Ldg(idx, inBase)
	for i := range vals {
		b.Op2To(isa.OpXOR, vals[i], vals[i], v)
	}
	b.OpImmTo(isa.OpIADDI, idx, idx, 32768)
	b.OpImmTo(isa.OpIADDI, iter, iter, ^uint32(0))
	b.Bnz(iter, top)
	acc := b.Movi(0)
	for i := range vals {
		b.Op2To(isa.OpIADD, acc, acc, vals[i])
	}
	b.Stg(addr4(b, tid, outBase), acc, 0)
	b.Exit()
	return allocate(b)
}

// MicroDivergence builds a kernel with `depth` nested data-dependent
// branches per loop iteration (each level splits the active mask).
func MicroDivergence(depth int) (*isa.Kernel, error) {
	if depth < 1 {
		depth = 1
	}
	if depth > 4 {
		depth = 4
	}
	b := isa.NewBuilder(fmt.Sprintf("micro_divergence_%d", depth), 8)
	tid := b.Tid()
	lane := b.Lane()
	acc := b.Movi(0)
	iter := b.Movi(6)
	top := b.Label()
	b.Bind(top)
	v := b.Ldg(addr4(b, tid, inBase), 0)
	var nest func(level int, sel isa.Reg)
	nest = func(level int, sel isa.Reg) {
		if level == 0 {
			b.Op2To(isa.OpIADD, acc, acc, sel)
			return
		}
		bit := b.Op2(isa.OpAND, sel, b.Movi(uint32(1<<uint(level-1))))
		elseL, join := b.Label(), b.Label()
		b.Bnz(bit, elseL)
		nest(level-1, b.Iadd(sel, lane))
		b.Bra(join)
		b.Bind(elseL)
		nest(level-1, b.Op2(isa.OpXOR, sel, lane))
		b.Bind(join)
	}
	nest(depth, v)
	b.OpImmTo(isa.OpIADDI, iter, iter, ^uint32(0))
	b.Bnz(iter, top)
	b.Stg(addr4(b, tid, outBase), acc, 0)
	b.Exit()
	return allocate(b)
}

// MicroPointerChase builds a serial dependent-load chain of the given
// length (pure memory latency, no parallelism within a warp).
func MicroPointerChase(steps int) (*isa.Kernel, error) {
	if steps < 1 {
		steps = 1
	}
	if steps > 32 {
		steps = 32
	}
	b := isa.NewBuilder(fmt.Sprintf("micro_chase_%d", steps), 8)
	tid := b.Tid()
	mask := b.Movi(0x3FFC)
	ptr := b.OpImm(isa.OpSHLI, tid, 2)
	for i := 0; i < steps; i++ {
		v := b.Ldg(ptr, inBase)
		masked := b.Op2(isa.OpAND, v, mask)
		ptr = masked
	}
	b.Stg(addr4(b, tid, outBase), ptr, 0)
	b.Exit()
	return allocate(b)
}

// MicroOccupancy builds a kernel whose *total* register footprint exceeds
// what the baseline register file can hold at full occupancy (>32
// registers/warp at 64 warps x 2048 entries), but whose long-lived state
// is untouched during a latency-bound middle phase. Under RegLess the
// idle values sit (compressed) in the memory hierarchy during the middle,
// so full occupancy remains possible — the register-file oversubscription
// the paper's related-work section claims RegLess enables "without any
// design changes" (§7).
func MicroOccupancy() (*isa.Kernel, error) {
	const group = 38
	b := isa.NewBuilder("micro_occupancy", 8)
	tid := b.Tid()
	// Long-lived per-warp state: initialized up front, untouched during
	// the latency-bound middle, consumed at the end. Under RegLess these
	// values spend the middle loop evicted (compressed: they are
	// tid-affine), freeing the staging unit.
	var state [group]isa.Reg
	for i := 0; i < group; i++ {
		state[i] = b.Addi(tid, uint32(97*i))
	}
	// Latency-bound middle: a warp-uniform serial pointer chase (all
	// lanes follow the same pointer, so each load is one coalesced
	// line). No single warp can hide the chain — occupancy is
	// everything here.
	mask := b.Movi(0x3FFC)
	ptr := b.OpImm(isa.OpSHLI, b.Wid(), 2)
	iter := b.Movi(40)
	top := b.Label()
	b.Bind(top)
	v := b.Ldg(ptr, inBase)
	b.Op2To(isa.OpAND, ptr, v, mask)
	b.OpImmTo(isa.OpIADDI, iter, iter, ^uint32(0))
	b.Bnz(iter, top)
	// Combine the long-lived state with the chase result.
	acc := ptr
	for i := 0; i < group; i++ {
		acc = b.Op2(isa.OpXOR, acc, state[i])
	}
	b.Stg(addr4(b, tid, outBase), acc, 0)
	b.Exit()
	return allocate(b)
}

func allocate(b *isa.Builder) (*isa.Kernel, error) {
	k, err := b.Kernel()
	if err != nil {
		return nil, err
	}
	res, err := regalloc.Allocate(k)
	if err != nil {
		return nil, err
	}
	return res.Kernel, nil
}
