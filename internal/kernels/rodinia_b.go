package kernels

import "repro/internal/isa"

// Builders for the second half of the Rodinia-analogue suite.

// buildLUD: dense factorization with 16-deep register-resident FMA chains
// per global load — the largest compute regions in the suite (Table 2:
// 16 instructions/region).
func buildLUD() *isa.Kernel {
	b := isa.NewBuilder("lud", 16)
	tid := b.Tid()
	idx := b.OpImm(isa.OpSHLI, tid, 2)
	rows := b.Movi(4)
	top := b.Label()
	b.Bind(top)
	pivot := b.Ldg(idx, inBase)
	v := b.Ldg(idx, inBase2)
	// Long register-resident update chain: no loads, no branches.
	x := v
	for j := 0; j < 16; j++ {
		x = b.Op3(isa.OpIMAD, x, pivot, b.Movi(uint32(j|1)))
	}
	b.Stg(idx, x, outBase)
	b.OpImmTo(isa.OpIADDI, idx, idx, 32768)
	b.OpImmTo(isa.OpIADDI, rows, rows, ^uint32(0))
	b.Bnz(rows, top)
	b.Exit()
	return b.MustKernel()
}

// buildMummer: suffix-matching walk with a data-dependent loop exit —
// mummergpu's divergent early-out loops over irregular addresses.
func buildMummer() *isa.Kernel {
	b := isa.NewBuilder("mummergpu", 8)
	tid := b.Tid()
	pos := b.Op2(isa.OpAND, tid, b.Movi(511))
	matched := b.Movi(0)
	i := b.Movi(8)
	top := b.Label()
	exit := b.Label()
	b.Bind(top)
	qa := addr4(b, pos, inBase)
	q := b.Ldg(qa, 0)
	next := b.Op2(isa.OpAND, q, b.Movi(2047)) // pointer chase
	ra := addr4(b, next, inBase2)
	r := b.Ldg(ra, 0)
	diff := b.Op2(isa.OpXOR, q, r)
	stopBit := b.Op2(isa.OpAND, diff, b.Movi(15))
	b.Bz(stopBit, exit) // divergent early exit when "mismatch"
	b.Op2To(isa.OpIADD, matched, matched, b.Movi(1))
	b.Op2To(isa.OpOR, pos, next, b.Movi(0))
	b.OpImmTo(isa.OpIADDI, i, i, ^uint32(0))
	b.Bnz(i, top)
	b.Bind(exit)
	b.Stg(addr4(b, tid, outBase), matched, 0)
	b.Exit()
	return b.MustKernel()
}

// buildMyocyte: one enormous straightline ODE-style expression holding
// ~20 intermediates live — the highest register pressure in the suite
// (Figure 2's largest working set, Figure 19's 20+ live registers).
func buildMyocyte() *isa.Kernel {
	b := isa.NewBuilder("myocyte", 8)
	tid := b.Tid()
	idx := b.OpImm(isa.OpSHLI, tid, 2)
	y0 := b.Ldg(idx, inBase)
	y1 := b.Ldg(idx, inBase2)
	// Build 20 simultaneously-live state derivatives.
	var st [20]isa.Reg
	for j := range st {
		base := y0
		if j%2 == 1 {
			base = y1
		}
		st[j] = b.Op3(isa.OpIMAD, base, b.Movi(uint32(2*j+1)), b.Movi(uint32(j*j)))
	}
	// Nonlinear couplings: every state feeds two others before dying.
	for j := 0; j < 20; j++ {
		k := (j + 7) % 20
		st[j] = b.Op3(isa.OpIMAD, st[j], st[k], st[(j+13)%20])
	}
	// SFU-heavy collapse.
	acc := st[0]
	for j := 1; j < 20; j++ {
		if j%5 == 0 {
			acc = b.Iadd(b.Sfu(acc), st[j])
		} else {
			acc = b.Op2(isa.OpXOR, acc, st[j])
		}
	}
	b.Stg(idx, acc, outBase)
	b.Exit()
	return b.MustKernel()
}

// buildNN: four coordinate loads, a short distance computation, one store
// — nn's tiny latency-bound kernel (speeds up under RegLess's reduced
// warp concurrency).
func buildNN() *isa.Kernel {
	b := isa.NewBuilder("nn", 8)
	tid := b.Tid()
	idx := b.OpImm(isa.OpSHLI, tid, 2)
	lat := b.Ldg(idx, inBase)
	lng := b.Ldg(idx, inBase2)
	tlat := b.Movi(3000)
	tlng := b.Movi(7000)
	dx := b.Op2(isa.OpISUB, lat, tlat)
	dy := b.Op2(isa.OpISUB, lng, tlng)
	d2 := b.Op3(isa.OpIMAD, dx, dx, b.Op2(isa.OpIMUL, dy, dy))
	d := b.Sfu(d2) // sqrt analogue
	b.Stg(idx, d, outBase)
	b.Exit()
	return b.MustKernel()
}

// buildNW: wavefront dynamic programming in shared memory with barriers —
// nw's compute-in-scratchpad structure whose register working set never
// misses the OSU.
func buildNW() *isa.Kernel {
	b := isa.NewBuilder("nw", 8)
	tid := b.Tid()
	sa := b.Muli(tid, 4)
	seed := b.Ldg(addr4(b, tid, inBase), 0)
	b.Sts(sa, seed, 0)
	b.Bar()
	steps := b.Movi(8)
	penalty := b.Movi(10)
	top := b.Label()
	b.Bind(top)
	nw := b.Lds(sa, 0)
	n := b.Lds(sa, 4)
	w := b.Lds(sa, 128)
	up := b.Op2(isa.OpISUB, n, penalty)
	left := b.Op2(isa.OpISUB, w, penalty)
	diag := b.Iadd(nw, b.Movi(1))
	best := b.Op2(isa.OpMAX, up, left)
	best2 := b.Op2(isa.OpMAX, best, diag)
	// Scratch copy in a disjoint shared region (traffic only — no
	// other thread reads it, so no cross-phase race).
	b.Sts(sa, best2, 65536)
	b.Bar()
	b.Sts(sa, best2, 0)
	b.Bar()
	b.OpImmTo(isa.OpIADDI, steps, steps, ^uint32(0))
	b.Bnz(steps, top)
	fin := b.Lds(sa, 0)
	b.Stg(addr4(b, tid, outBase), fin, 0)
	b.Exit()
	return b.MustKernel()
}

// buildParticleFilter: per-iteration buildup of ~10 intermediates that
// collapse to one — the sawtooth live-register profile of paper Figure 5.
func buildParticleFilter() *isa.Kernel {
	b := isa.NewBuilder("particle_filter", 8)
	tid := b.Tid()
	idx := b.OpImm(isa.OpSHLI, tid, 2)
	weight := b.Movi(1)
	i := b.Movi(6)
	top := b.Label()
	b.Bind(top)
	obs := b.Ldg(idx, inBase)
	// Expression tree: 8 leaves -> 4 -> 2 -> 1 (live count rises then
	// collapses, Figure 5's seams).
	var leaves [8]isa.Reg
	for j := range leaves {
		leaves[j] = b.Op3(isa.OpIMAD, obs, b.Movi(uint32(j+2)), b.Movi(uint32(5*j)))
	}
	var mid [4]isa.Reg
	for j := range mid {
		mid[j] = b.Iadd(leaves[2*j], leaves[2*j+1])
	}
	q0 := b.Op2(isa.OpXOR, mid[0], mid[1])
	q1 := b.Op2(isa.OpXOR, mid[2], mid[3])
	lik := b.Sfu(b.Iadd(q0, q1))
	b.Op2To(isa.OpIMUL, weight, weight, lik)
	b.OpImmTo(isa.OpIADDI, idx, idx, 2048)
	b.OpImmTo(isa.OpIADDI, i, i, ^uint32(0))
	b.Bnz(i, top)
	b.Stg(addr4(b, tid, outBase), weight, 0)
	b.Exit()
	return b.MustKernel()
}

// buildPathfinder: row-relaxation DP with shared-memory neighbours and a
// global cost load per row — pathfinder's barriered min-reduction.
func buildPathfinder() *isa.Kernel {
	b := isa.NewBuilder("pathfinder", 8)
	tid := b.Tid()
	sa := b.Muli(tid, 4)
	cur := b.Ldg(addr4(b, tid, inBase), 0)
	rows := b.Movi(6)
	top := b.Label()
	b.Bind(top)
	b.Sts(sa, cur, 0)
	b.Bar()
	l := b.Lds(sa, 124) // left neighbour (wrapping)
	r := b.Lds(sa, 4)
	m1 := b.Op2(isa.OpMIN, l, r)
	m2 := b.Op2(isa.OpMIN, m1, cur)
	cost := b.Ldg(addr4(b, tid, inBase2), 0)
	b.Op2To(isa.OpIADD, cur, m2, cost)
	b.Bar()
	b.OpImmTo(isa.OpIADDI, rows, rows, ^uint32(0))
	b.Bnz(rows, top)
	b.Stg(addr4(b, tid, outBase), cur, 0)
	b.Exit()
	return b.MustKernel()
}

// buildSradV1: 4-neighbour diffusion stencil with SFU transcendentals and
// a divergent boundary path.
func buildSradV1() *isa.Kernel {
	b := isa.NewBuilder("srad_v1", 8)
	tid := b.Tid()
	idx := b.OpImm(isa.OpSHLI, tid, 2)
	iters := b.Movi(3)
	top := b.Label()
	b.Bind(top)
	c := b.Ldg(idx, inBase)
	n := b.Ldg(idx, inBase+4096)
	s := b.Ldg(idx, inBase+8192)
	w := b.Ldg(idx, inBase+12288)
	g := b.Iadd(b.Op2(isa.OpISUB, n, c), b.Op2(isa.OpISUB, s, w))
	qsq := b.Sfu(g) // exp/diffusion coefficient analogue
	upd := b.Op3(isa.OpIMAD, qsq, g, c)
	// Boundary lanes (lane 0/31) take a divergent clamp path.
	lane := b.Lane()
	lm := b.Op2(isa.OpAND, lane, b.Movi(31))
	edge := b.Op2(isa.OpXOR, lm, b.Movi(31))
	inner := b.Label()
	b.Bnz(edge, inner)
	b.MoviTo(upd, 0) // clamp at boundary: soft def
	b.Bind(inner)
	b.Stg(idx, upd, outBase)
	b.OpImmTo(isa.OpIADDI, idx, idx, 16384)
	b.OpImmTo(isa.OpIADDI, iters, iters, ^uint32(0))
	b.Bnz(iters, top)
	b.Exit()
	return b.MustKernel()
}

// buildSradV2: the second srad kernel — conditional redefinition of the
// output before any read, then unconditional store: the
// stores-exceed-loads pattern the paper reports (§6.5).
func buildSradV2() *isa.Kernel {
	b := isa.NewBuilder("srad_v2", 8)
	tid := b.Tid()
	idx := b.OpImm(isa.OpSHLI, tid, 2)
	iters := b.Movi(4)
	top := b.Label()
	b.Bind(top)
	c := b.Ldg(idx, inBase)
	e := b.Ldg(idx, inBase+4096)
	d := b.Op2(isa.OpISUB, e, c)
	out := b.Op3(isa.OpIMAD, d, b.Movi(3), c)
	sel := b.Op2(isa.OpAND, c, b.Movi(1))
	skip := b.Label()
	b.Bz(sel, skip)
	// Redefine out on this path before it is ever read (forces the
	// value to be stored conservatively).
	b.Op2To(isa.OpIMUL, out, d, d)
	b.Stg(idx, out, outBase2)
	b.Bind(skip)
	b.Stg(idx, out, outBase)
	b.OpImmTo(isa.OpIADDI, idx, idx, 8192)
	b.OpImmTo(isa.OpIADDI, iters, iters, ^uint32(0))
	b.Bnz(iters, top)
	b.Exit()
	return b.MustKernel()
}

// buildStreamcluster: alternating load/compute every few instructions —
// the shortest regions in the suite (Table 2: 4.3 insns, 16 cycles).
func buildStreamcluster() *isa.Kernel {
	b := isa.NewBuilder("streamcluster", 8)
	tid := b.Tid()
	idx := b.OpImm(isa.OpSHLI, tid, 2)
	total := b.Movi(0)
	i := b.Movi(8)
	top := b.Label()
	b.Bind(top)
	p := b.Ldg(idx, inBase)
	q := b.Ldg(idx, inBase2)
	d := b.Op2(isa.OpISUB, p, q)
	d2 := b.Op2(isa.OpIMUL, d, d)
	b.Op2To(isa.OpIADD, total, total, d2)
	b.Stg(idx, d2, outBase) // per-pair cost written back immediately
	b.OpImmTo(isa.OpIADDI, idx, idx, 32768)
	b.OpImmTo(isa.OpIADDI, i, i, ^uint32(0))
	b.Bnz(i, top)
	b.Stg(addr4(b, tid, outBase2), total, 0)
	b.Exit()
	return b.MustKernel()
}
