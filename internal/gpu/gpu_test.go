package gpu

import (
	"testing"

	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/kernels"
	"repro/internal/rf"
	"repro/internal/sim"
)

func smallCfg(sms, warps int) Config {
	c := DefaultConfig()
	c.SMs = sms
	c.SM.Warps = warps
	c.SM.MaxCycles = 10_000_000
	return c
}

func baselineFactory() ProviderFactory {
	return func(int) (sim.Provider, error) { return rf.NewBaseline(), nil }
}

func TestMultiSMEquivalence(t *testing.T) {
	for _, name := range []string{"streamcluster", "nw", "bfs"} {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			k := kernels.MustLoad(name)
			const sms, warps = 4, 8
			mm := exec.NewMemory(nil)
			g, err := New(smallCfg(sms, warps), k, baselineFactory(), mm)
			if err != nil {
				t.Fatal(err)
			}
			res, err := g.Run()
			if err != nil {
				t.Fatal(err)
			}
			// Architectural equivalence with one functional run of all
			// warps.
			ref, err := exec.Run(k, sms*warps, exec.NewMemory(nil))
			if err != nil {
				t.Fatal(err)
			}
			if res.TotalInsns != ref.DynInsns {
				t.Fatalf("instructions: gpu %d, functional %d", res.TotalInsns, ref.DynInsns)
			}
			got := mm.GlobalStores()
			if len(got) != len(ref.Stores) {
				t.Fatalf("store count %d, want %d", len(got), len(ref.Stores))
			}
			for a, v := range ref.Stores {
				if got[a] != v {
					t.Fatalf("store mismatch at %#x: %d vs %d", a, got[a], v)
				}
			}
			if res.Cycles == 0 || len(res.PerSM) != sms {
				t.Fatalf("degenerate result %+v", res)
			}
		})
	}
}

func TestMultiSMRegLess(t *testing.T) {
	k := kernels.MustLoad("hotspot")
	const sms, warps = 4, 8
	factory := func(i int) (sim.Provider, error) {
		cfg := core.DefaultConfig()
		cfg.AddrOffset = uint32(i) << 24 // disjoint backing stores
		return core.New(cfg, k)
	}
	mm := exec.NewMemory(nil)
	g, err := New(smallCfg(sms, warps), k, factory, mm)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.Run(); err != nil {
		t.Fatal(err)
	}
	ref, err := exec.Run(k, sms*warps, exec.NewMemory(nil))
	if err != nil {
		t.Fatal(err)
	}
	got := mm.GlobalStores()
	for a, v := range ref.Stores {
		if got[a] != v {
			t.Fatalf("RegLess multi-SM diverged at %#x", a)
		}
	}
}

func TestSharedL2Contention(t *testing.T) {
	// More SMs hitting the same shared L2 must produce more shared-level
	// traffic, and per-SM slowdown from contention must not corrupt
	// results (equivalence is covered above). bfs reads shared tables
	// (graph adjacency + visited), so SMs genuinely share L2 lines.
	k := kernels.MustLoad("bfs")
	run := func(sms int) *Result {
		g, err := New(smallCfg(sms, 8), k, baselineFactory(), exec.NewMemory(nil))
		if err != nil {
			t.Fatal(err)
		}
		res, err := g.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	one := run(1)
	four := run(4)
	if four.L2.Hits+four.L2.Misses <= one.L2.Hits+one.L2.Misses {
		t.Fatalf("shared L2 traffic did not scale: %d vs %d",
			four.L2.Hits+four.L2.Misses, one.L2.Hits+one.L2.Misses)
	}
	// Read-shared input tables mean later SMs should enjoy some L2 hits.
	if four.L2.Hits == 0 {
		t.Fatal("no shared L2 hits despite shared read-only inputs")
	}
}

func TestGPURejectsZeroSMs(t *testing.T) {
	k := kernels.MustLoad("nw")
	if _, err := New(Config{SMs: 0, SM: sim.DefaultConfig()}, k, baselineFactory(), nil); err == nil {
		t.Fatal("accepted zero SMs")
	}
}
