// Package gpu scales the single-SM model up to the paper's full chip: N
// streaming multiprocessors in lockstep, each with a private L1 and
// register scheme, sharing one 2 MB L2 and the DRAM interface (Table 1's
// 16-SM GTX 980). All SMs run the same kernel over disjoint global warp
// ID ranges — the CUDA grid is striped across SMs — and share one
// functional memory, so the multi-SM run is architecturally equivalent to
// a single functional execution of SMs x WarpsPerSM warps.
package gpu

import (
	"fmt"

	"repro/internal/exec"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/sim"
)

// Config sizes the chip.
type Config struct {
	// SMs is the multiprocessor count (16 on the GTX 980).
	SMs int
	// SM is the per-SM configuration; WarpIDBase is set per SM.
	SM sim.Config
	// Shared sizes the chip-wide L2 and DRAM interface.
	Shared mem.SharedL2Config
}

// DefaultConfig returns the 16-SM GTX 980 configuration.
func DefaultConfig() Config {
	return Config{SMs: 16, SM: sim.DefaultConfig(), Shared: mem.DefaultSharedL2Config()}
}

// ProviderFactory builds one SM's register provider. smIndex identifies
// the SM (providers needing disjoint backing-store spaces derive an
// address offset from it).
type ProviderFactory func(smIndex int) (sim.Provider, error)

// GPU is the lockstep multi-SM machine.
type GPU struct {
	Cfg    Config
	SMs    []*sim.SM
	Shared *mem.SharedL2
	Mem    *exec.Memory

	cycle uint64
}

// New builds the GPU: one SM per index, private L1s, shared L2.
func New(cfgv Config, k *isa.Kernel, factory ProviderFactory, mm *exec.Memory) (*GPU, error) {
	if cfgv.SMs <= 0 {
		return nil, fmt.Errorf("gpu: need at least one SM")
	}
	if mm == nil {
		mm = exec.NewMemory(nil)
	}
	shared := mem.NewSharedL2(cfgv.Shared)
	g := &GPU{Cfg: cfgv, Shared: shared, Mem: mm}
	for i := 0; i < cfgv.SMs; i++ {
		p, err := factory(i)
		if err != nil {
			return nil, fmt.Errorf("gpu: SM %d provider: %w", i, err)
		}
		smCfg := cfgv.SM
		smCfg.WarpIDBase = i * smCfg.Warps
		hier := shared.AttachHierarchy(smCfg.Mem)
		smv, err := sim.NewWithHierarchy(smCfg, k, p, mm, hier)
		if err != nil {
			return nil, fmt.Errorf("gpu: SM %d: %w", i, err)
		}
		g.SMs = append(g.SMs, smv)
	}
	return g, nil
}

// Result summarizes a multi-SM run.
type Result struct {
	// Cycles is the chip run time: the slowest SM.
	Cycles uint64
	// PerSM holds each SM's statistics.
	PerSM []*sim.Stats
	// TotalInsns sums dynamic instructions across SMs.
	TotalInsns uint64
	// SharedL2Hits/Misses/DRAM aggregate the shared level's traffic.
	SharedL2Hits, SharedL2Misses, DRAMAccesses uint64
}

// Run advances every SM one cycle at a time (lockstep) until all finish.
func (g *GPU) Run() (*Result, error) {
	for {
		allDone := true
		for _, smv := range g.SMs {
			if !smv.Done() {
				allDone = false
				smv.StepOne()
			}
		}
		if allDone {
			break
		}
		g.cycle++
		if g.cycle >= g.Cfg.SM.MaxCycles {
			return nil, fmt.Errorf("gpu: exceeded %d cycles", g.Cfg.SM.MaxCycles)
		}
	}
	res := &Result{
		SharedL2Hits:   g.Shared.Stats.L2Hits,
		SharedL2Misses: g.Shared.Stats.L2Misses,
		DRAMAccesses:   g.Shared.Stats.DRAMAccesses,
	}
	for _, smv := range g.SMs {
		st := smv.Finalize()
		res.PerSM = append(res.PerSM, st)
		res.TotalInsns += st.DynInsns
		if st.Cycles > res.Cycles {
			res.Cycles = st.Cycles
		}
	}
	return res, nil
}
