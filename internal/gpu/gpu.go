// Package gpu scales the single-SM model up to the paper's full chip: N
// streaming multiprocessors in lockstep, each with a private L1 and
// register scheme, sharing one banked 2 MB L2 and the DRAM interface
// (Table 1's 16-SM GTX 980). In the default single-kernel mode all SMs
// run the same kernel over disjoint global warp ID ranges — the CUDA
// grid is striped across SMs — and share one functional memory, so the
// multi-SM run is architecturally equivalent to a single functional
// execution of SMs x WarpsPerSM warps. The co-residency mode instead
// partitions the SMs between two (or more) kernels that share nothing
// but the L2 and DRAM — the timing-interference configuration.
//
// The chip clock is the lockstep invariant: every non-finished SM sits
// at the same cycle, which makes SM index the deterministic arbitration
// order for same-cycle L2 bank conflicts and lets the chip reuse the
// per-SM cycle-skip fast-forward — a coordinated jump to the earliest
// wake cycle across all SMs (one SM may never jump past another's
// wakeup, since the waker's DRAM response can occupy a bank port the
// sleeper would have raced for).
package gpu

import (
	"context"
	"fmt"

	"repro/internal/exec"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/sim"
)

// Config sizes the chip.
type Config struct {
	// SMs is the multiprocessor count (16 on the GTX 980).
	SMs int
	// SM is the per-SM configuration; WarpIDBase is set per SM.
	SM sim.Config
	// L2 sizes the chip-wide banked L2 and DRAM interface.
	L2 mem.BankedL2Config
}

// DefaultConfig returns the 16-SM GTX 980 configuration.
func DefaultConfig() Config {
	return Config{SMs: 16, SM: sim.DefaultConfig(), L2: mem.DefaultBankedL2Config()}
}

// ProviderFactory builds one SM's register provider. smIndex identifies
// the SM within its kernel (providers needing disjoint backing-store
// spaces derive an address offset from it).
type ProviderFactory func(smIndex int) (sim.Provider, error)

// KernelSlot describes one co-resident kernel: which kernel, how many of
// the chip's SMs it owns, and how its SMs' providers are built. Each
// slot has its own functional memory (kernels do not share allocations);
// AddrBias keeps the slots' identical virtual layouts on distinct L2
// lines at the timing level.
type KernelSlot struct {
	K       *isa.Kernel
	SMs     int
	Factory ProviderFactory
	// Mem is the slot's functional memory (nil: fresh).
	Mem *exec.Memory
	// AddrBias offsets the slot's addresses in the shared L2.
	AddrBias uint32
}

// GPU is the lockstep multi-SM machine.
type GPU struct {
	Cfg Config
	SMs []*sim.SM
	// Slot maps SM index -> co-resident kernel slot (all zero in
	// single-kernel mode).
	Slot []int
	L2   *mem.BankedL2
	// Mems holds each slot's functional memory (one entry in
	// single-kernel mode).
	Mems []*exec.Memory

	// Cooperative cancellation (nil when disabled — see AttachContext).
	cancelCh         <-chan struct{}
	cancelCtx        context.Context
	sinceCancelCheck uint64
}

// AttachContext arms cooperative cancellation of Run on the same terms as
// sim.SM.AttachContext: the chip loop polls ctx every
// sim.CancelCheckInterval iterations, and context.Background() (nil Done
// channel) leaves the check disabled at the cost of one nil compare per
// chip cycle.
func (g *GPU) AttachContext(ctx context.Context) {
	if ctx == nil || ctx.Done() == nil {
		g.cancelCh, g.cancelCtx = nil, nil
		return
	}
	g.cancelCh = ctx.Done()
	g.cancelCtx = ctx
}

// canceled polls the attached context on the check cadence.
func (g *GPU) canceled() error {
	g.sinceCancelCheck++
	if g.sinceCancelCheck < sim.CancelCheckInterval {
		return nil
	}
	g.sinceCancelCheck = 0
	select {
	case <-g.cancelCh:
		return fmt.Errorf("gpu: chip abandoned: %w", g.cancelCtx.Err())
	default:
		return nil
	}
}

// New builds a single-kernel GPU: one SM per index, private L1s, shared
// banked L2, the grid striped across SMs by warp ID.
func New(cfgv Config, k *isa.Kernel, factory ProviderFactory, mm *exec.Memory) (*GPU, error) {
	if mm == nil {
		mm = exec.NewMemory(nil)
	}
	return NewCoResident(cfgv, []KernelSlot{{K: k, SMs: cfgv.SMs, Factory: factory, Mem: mm}})
}

// NewCoResident builds a chip whose SMs are partitioned between kernel
// slots contending for the shared L2 and DRAM. Config.SMs is ignored;
// the chip has the sum of the slots' SM counts.
func NewCoResident(cfgv Config, slots []KernelSlot) (*GPU, error) {
	total := 0
	for _, s := range slots {
		if s.SMs <= 0 {
			return nil, fmt.Errorf("gpu: slot needs at least one SM")
		}
		total += s.SMs
	}
	if total <= 0 {
		return nil, fmt.Errorf("gpu: need at least one SM")
	}
	l2, err := mem.NewBankedL2(cfgv.L2)
	if err != nil {
		return nil, err
	}
	g := &GPU{Cfg: cfgv, L2: l2}
	for si := range slots {
		s := &slots[si]
		if s.Mem == nil {
			s.Mem = exec.NewMemory(nil)
		}
		g.Mems = append(g.Mems, s.Mem)
		for i := 0; i < s.SMs; i++ {
			p, err := s.Factory(i)
			if err != nil {
				return nil, fmt.Errorf("gpu: slot %d SM %d provider: %w", si, i, err)
			}
			smCfg := cfgv.SM
			// Warp IDs are slot-local: each kernel covers warps
			// [0, SMs*Warps) of its own grid.
			smCfg.WarpIDBase = i * smCfg.Warps
			smCfg.Mem.AddrBias = s.AddrBias
			hier := l2.AttachHierarchy(smCfg.Mem)
			smv, err := sim.NewWithHierarchy(smCfg, s.K, p, s.Mem, hier)
			if err != nil {
				return nil, fmt.Errorf("gpu: slot %d SM %d: %w", si, i, err)
			}
			g.SMs = append(g.SMs, smv)
			g.Slot = append(g.Slot, si)
		}
	}
	return g, nil
}

// FromSMs wraps prebuilt lockstep SMs that already share l2 in a chip
// runner — the launch package's block scheduler builds one chip per
// occupancy wave this way, keeping the banked L2 warm across waves.
func FromSMs(cfgv Config, l2 *mem.BankedL2, sms []*sim.SM, mems []*exec.Memory) *GPU {
	return &GPU{Cfg: cfgv, L2: l2, SMs: sms, Slot: make([]int, len(sms)), Mems: mems}
}

// Result summarizes a multi-SM run.
type Result struct {
	// Cycles is the chip run time: the slowest SM.
	Cycles uint64
	// PerSM holds each SM's statistics.
	PerSM []*sim.Stats
	// TotalInsns sums dynamic instructions across SMs.
	TotalInsns uint64
	// L2 is the chip-level L2/DRAM traffic (bank ports, MSHRs, DRAM
	// bandwidth) aggregated across all SMs.
	L2 mem.BankedL2Stats
	// KernelCycles is each co-resident slot's completion cycle (the
	// slowest of its SMs); one entry in single-kernel mode.
	KernelCycles []uint64
	// FFSkippedCycles/FFJumps total the chip-coordinated fast-forward's
	// work (also present per SM in PerSM).
	FFSkippedCycles, FFJumps uint64
}

// Run advances every SM one cycle at a time (lockstep) until all
// finish, jumping provably inert spans chip-coordinated: only when every
// active SM is frozen, and only to the earliest wake cycle any of them
// has. Abnormal terminations (MaxCycles, watchdog, sanitizer, L2
// invariant violations) return an error naming the SM.
func (g *GPU) Run() (*Result, error) {
	for {
		if g.cancelCh != nil {
			if err := g.canceled(); err != nil {
				return nil, err
			}
		}
		allDone := true
		for i, smv := range g.SMs {
			if smv.Done() {
				continue
			}
			allDone = false
			if smv.Cycle() >= smv.Cfg.MaxCycles {
				return nil, fmt.Errorf("gpu: SM %d exceeded %d cycles", i, smv.Cfg.MaxCycles)
			}
			smv.StepOne()
			if err := smv.CheckHealth(); err != nil {
				return nil, fmt.Errorf("gpu: SM %d: %w", i, err)
			}
		}
		if allDone {
			break
		}
		if jumped, err := g.tryFastForward(); err != nil {
			return nil, err
		} else if jumped {
			if err := g.L2.CheckInvariants(); err != nil {
				return nil, err
			}
		}
	}
	if err := g.L2.CheckInvariants(); err != nil {
		return nil, err
	}
	res := &Result{L2: g.L2.Stats, KernelCycles: make([]uint64, len(g.Mems))}
	for i, smv := range g.SMs {
		st := smv.Finalize()
		res.PerSM = append(res.PerSM, st)
		res.TotalInsns += st.DynInsns
		res.FFSkippedCycles += st.FFSkippedCycles
		res.FFJumps += st.FFJumps
		if st.Cycles > res.Cycles {
			res.Cycles = st.Cycles
		}
		if s := g.Slot[i]; s < len(res.KernelCycles) && st.Cycles > res.KernelCycles[s] {
			res.KernelCycles[s] = st.Cycles
		}
	}
	return res, nil
}

// tryFastForward attempts one chip-coordinated cycle skip: every active
// SM must be provably frozen (per-SM FFEligible gates), and the jump
// target is the minimum wake cycle across them — an SM may not skip past
// another SM's wakeup because the waker's new L2/DRAM traffic changes
// the bank-port and bandwidth arbitration every sleeper would see.
// Per-SM watchdog trips and MaxCycles already cap each SM's wake target,
// so abnormal runs keep their stepped-run cycle numbers.
func (g *GPU) tryFastForward() (bool, error) {
	target := ^uint64(0)
	cur := uint64(0)
	active := 0
	for _, smv := range g.SMs {
		if smv.Done() {
			continue
		}
		active++
		cur = smv.Cycle() // identical across active SMs (lockstep)
		if !smv.FFEligible() {
			return false, nil
		}
		t, ok := smv.FFWakeTarget()
		if !ok {
			return false, nil
		}
		if t < target {
			target = t
		}
	}
	if active == 0 || target <= cur+1 {
		return false, nil
	}
	for i, smv := range g.SMs {
		if smv.Done() {
			continue
		}
		smv.FFJumpTo(target - 1)
		if err := smv.CheckHealth(); err != nil {
			return false, fmt.Errorf("gpu: SM %d: %w", i, err)
		}
	}
	return true, nil
}
