package asm

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/exec"
	"repro/internal/isa"
	"repro/internal/kernels"
)

const saxpySrc = `
; simple strided saxpy
.kernel saxpy warps_per_cta=8
    tid   r0
    shli  r1, r0, 2
    movi  r2, 3
    movi  r7, 8
loop:
    ldg   r3, [r1 + 0x1000000]
    ldg   r4, [r1 + 0x1800000]
    imad  r5, r2, r3, r4   // a*x + y
    stg   [r1 + 0x2000000], r5
    iaddi r1, r1, 32768
    iaddi r7, r7, -1
    bnz   r7, loop
    exit
`

func TestParseSaxpy(t *testing.T) {
	k, err := Parse(saxpySrc)
	if err != nil {
		t.Fatal(err)
	}
	if k.Name != "saxpy" || k.WarpsPerCTA != 8 {
		t.Fatalf("header: %q %d", k.Name, k.WarpsPerCTA)
	}
	if k.NumRegs != 8 {
		t.Fatalf("NumRegs = %d, want 8", k.NumRegs)
	}
	if len(k.Blocks) != 3 {
		t.Fatalf("blocks = %d, want 3 (entry, loop, exit)", len(k.Blocks))
	}
	// The bnz targets the loop block.
	var bnz *isa.Instruction
	for _, blk := range k.Blocks {
		for i := range blk.Insns {
			if blk.Insns[i].Op == isa.OpBNZ {
				bnz = &blk.Insns[i]
			}
		}
	}
	if bnz == nil || bnz.Target != 1 {
		t.Fatalf("bnz = %+v", bnz)
	}
	// It runs.
	if _, err := exec.Run(k, 8, nil); err != nil {
		t.Fatal(err)
	}
}

func TestParseErrors(t *testing.T) {
	cases := map[string]string{
		"missing directive": "tid r0\nexit",
		"unknown opcode":    ".kernel x\n    frob r0\n    exit",
		"bad register":      ".kernel x\n    tid rX\n    exit",
		"undefined label":   ".kernel x\n    movi r0, 1\n    bnz r0, nowhere\n    exit",
		"duplicate label":   ".kernel x\nl:\n    movi r0, 1\nl:\n    exit",
		"trailing operands": ".kernel x\n    tid r0, r1\n    exit",
		"missing operand":   ".kernel x\n    iadd r0, r1\n    exit",
		"bad memory":        ".kernel x\n    ldg r0, r1\n    exit",
		"empty kernel":      ".kernel x",
		"label at end":      ".kernel x\n    exit\nend:",
		"bad imm":           ".kernel x\n    movi r0, abc\n    exit",
		"double directive":  ".kernel x\n.kernel y\n    exit",
		"no exit":           ".kernel x\n    movi r0, 1",
	}
	for name, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("%s: parse accepted invalid input", name)
		}
	}
}

func TestFormatParseRoundTripSuite(t *testing.T) {
	for _, bm := range kernels.Suite() {
		bm := bm
		t.Run(bm.Name, func(t *testing.T) {
			t.Parallel()
			k := kernels.MustLoad(bm.Name)
			text := Format(k)
			k2, err := Parse(text)
			if err != nil {
				t.Fatalf("reparse failed: %v\n%s", err, text)
			}
			if k2.NumRegs != k.NumRegs || k2.WarpsPerCTA != k.WarpsPerCTA {
				t.Fatalf("header mismatch: %d/%d vs %d/%d",
					k2.NumRegs, k2.WarpsPerCTA, k.NumRegs, k.WarpsPerCTA)
			}
			if len(k2.Blocks) != len(k.Blocks) {
				t.Fatalf("block count %d vs %d", len(k2.Blocks), len(k.Blocks))
			}
			for bi := range k.Blocks {
				a, b := k.Blocks[bi], k2.Blocks[bi]
				if !reflect.DeepEqual(a.Insns, b.Insns) {
					t.Fatalf("block %d differs:\n%v\nvs\n%v", bi, a.Insns, b.Insns)
				}
			}
			// And behaviour is identical.
			ref, err := exec.Run(k, 8, exec.NewMemory(nil))
			if err != nil {
				t.Fatal(err)
			}
			got, err := exec.Run(k2, 8, exec.NewMemory(nil))
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(ref.Stores, got.Stores) {
				t.Fatal("round-tripped kernel behaves differently")
			}
		})
	}
}

func TestNegativeOffsets(t *testing.T) {
	src := `.kernel neg warps_per_cta=1
    movi r0, 0x1000
    ldg  r1, [r0 - 16]
    stg  [r0 - 4], r1
    iaddi r2, r1, -1
    exit
`
	k, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	ld := k.Blocks[0].Insns[1]
	if int32(ld.Imm) != -16 {
		t.Fatalf("load offset = %d", int32(ld.Imm))
	}
	// Round-trip keeps the negative rendering parseable.
	if _, err := Parse(Format(k)); err != nil {
		t.Fatal(err)
	}
}

func TestCommentsAndWhitespace(t *testing.T) {
	src := "\n\n.kernel c warps_per_cta=2   ; trailing comment\n" +
		"    movi r0, 5 // value\n" +
		"    ; full-line comment\n" +
		"    stg [r0], r0\n" +
		"    exit\n"
	k, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if k.NumInsns() != 3 {
		t.Fatalf("insns = %d, want 3", k.NumInsns())
	}
	if !strings.Contains(Format(k), "movi r0, 5") {
		t.Fatalf("format output:\n%s", Format(k))
	}
}
