package asm

import (
	"testing"

	"repro/internal/kernels"
)

// FuzzParse drives the parser with arbitrary source. Invariants:
//
//  1. Parse never panics, whatever the input.
//  2. Anything that parses must survive a format->parse round trip, and
//     formatting must be a fixed point (Format(Parse(Format(k))) ==
//     Format(k)) — the property TestFormatParseRoundTripSuite checks on
//     the real suite, here under adversarial inputs.
//
// Seeds are the formatted assembly of all 21 suite kernels (real syntax
// in full variety: labels, negative offsets, every opcode the suite
// uses) plus small handwritten edge cases.
func FuzzParse(f *testing.F) {
	for _, name := range kernels.Names() {
		f.Add(Format(kernels.MustLoad(name)))
	}
	f.Add(".kernel t warps_per_cta=1\n    exit\n")
	f.Add(".kernel t warps_per_cta=8\nL:\n    bnz r0, L\n    exit\n")
	f.Add(".kernel t warps_per_cta=2\n    ldg r1, [r0 + -4]\n    exit\n")
	f.Add("; comment only\n")
	f.Add(".kernel t warps_per_cta=1\n    movi r0, 0xffffffff\n    exit")
	f.Fuzz(func(t *testing.T, src string) {
		k, err := Parse(src)
		if err != nil {
			return
		}
		text := Format(k)
		k2, err := Parse(text)
		if err != nil {
			t.Fatalf("formatted output does not parse: %v\n%s", err, text)
		}
		if again := Format(k2); again != text {
			t.Fatalf("format is not a fixed point:\nfirst:\n%s\nsecond:\n%s", text, again)
		}
	})
}
