package asm

import (
	"fmt"
	"strings"

	"repro/internal/isa"
)

// Format renders a kernel in the package's assembly syntax. The output
// parses back to an identical kernel (round-trip property, tested).
func Format(k *isa.Kernel) string {
	var b strings.Builder
	fmt.Fprintf(&b, ".kernel %s warps_per_cta=%d\n", k.Name, k.WarpsPerCTA)

	// Blocks that are branch targets need labels.
	needLabel := map[int]bool{}
	for _, blk := range k.Blocks {
		for i := range blk.Insns {
			in := &blk.Insns[i]
			if in.Op.IsBranch() && in.Op != isa.OpBAR {
				needLabel[in.Target] = true
			}
		}
	}
	label := func(b int) string { return fmt.Sprintf("B%d", b) }

	for _, blk := range k.Blocks {
		if needLabel[blk.ID] {
			fmt.Fprintf(&b, "%s:\n", label(blk.ID))
		}
		for i := range blk.Insns {
			in := &blk.Insns[i]
			fmt.Fprintf(&b, "    %s\n", formatInsn(in, label))
		}
	}
	return b.String()
}

func formatInsn(in *isa.Instruction, label func(int) string) string {
	op := in.Op
	mn := op.String()
	switch {
	case op == isa.OpNOP || op == isa.OpBAR || op == isa.OpEXIT:
		return mn
	case op == isa.OpBRA:
		return fmt.Sprintf("%s %s", mn, label(in.Target))
	case op == isa.OpBNZ || op == isa.OpBZ:
		return fmt.Sprintf("%s %s, %s", mn, in.Src[0], label(in.Target))
	case op == isa.OpMOVI:
		return fmt.Sprintf("%s %s, %s", mn, in.Dst, immStr(in.Imm))
	case op == isa.OpTID || op == isa.OpLANE || op == isa.OpWID:
		return fmt.Sprintf("%s %s", mn, in.Dst)
	case op.IsLoad():
		return fmt.Sprintf("%s %s, %s", mn, in.Dst, memStr(in.Src[0], in.Imm))
	case op.IsStore():
		return fmt.Sprintf("%s %s, %s", mn, memStr(in.Src[0], in.Imm), in.Src[1])
	case op == isa.OpSFU:
		return fmt.Sprintf("%s %s, %s", mn, in.Dst, in.Src[0])
	case op.NumSrc() == 1:
		return fmt.Sprintf("%s %s, %s, %s", mn, in.Dst, in.Src[0], immStr(in.Imm))
	case op.NumSrc() == 2:
		return fmt.Sprintf("%s %s, %s, %s", mn, in.Dst, in.Src[0], in.Src[1])
	default:
		return fmt.Sprintf("%s %s, %s, %s, %s", mn, in.Dst, in.Src[0], in.Src[1], in.Src[2])
	}
}

// immStr renders small negative values (two's complement) readably.
func immStr(v uint32) string {
	if int32(v) < 0 && int32(v) > -4096 {
		return fmt.Sprintf("%d", int32(v))
	}
	if v >= 0x10000 {
		return fmt.Sprintf("0x%x", v)
	}
	return fmt.Sprintf("%d", v)
}

func memStr(r isa.Reg, off uint32) string {
	if off == 0 {
		return fmt.Sprintf("[%s]", r)
	}
	if int32(off) < 0 && int32(off) > -4096 {
		return fmt.Sprintf("[%s - %d]", r, -int32(off))
	}
	return fmt.Sprintf("[%s + %s]", r, immStr(off))
}
