// Package asm provides a textual assembly format for repro kernels: a
// parser and a formatter that round-trip exactly. The format lets kernels
// be written and inspected as plain text instead of through the Go
// builder:
//
//	.kernel saxpy warps_per_cta=8
//	    tid   r0
//	    shli  r1, r0, 2
//	    movi  r2, 3
//	    movi  r7, 8
//	loop:
//	    ldg   r3, [r1 + 0x1000000]
//	    imad  r5, r2, r3, r4
//	    stg   [r1 + 0x2000000], r5
//	    iaddi r1, r1, 32768
//	    iaddi r7, r7, -1
//	    bnz   r7, loop
//	    exit
//
// Registers are architectural (r0..r63): parsed kernels need no register
// allocation. `;` and `//` start comments. Immediates accept decimal,
// hex (0x...), and negative values (two's complement). Memory operands
// are `[rN + offset]` or `[rN]`. Branch targets are labels; a label on
// its own line starts a new basic block.
package asm

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/isa"
)

// Parse assembles source text into a kernel.
func Parse(src string) (*isa.Kernel, error) {
	p := &parser{labels: map[string]int{}}
	lines := strings.Split(src, "\n")
	for i, raw := range lines {
		if err := p.line(raw); err != nil {
			return nil, fmt.Errorf("line %d: %w", i+1, err)
		}
	}
	return p.finish()
}

type pendingInsn struct {
	in    isa.Instruction
	label string // branch target to patch ("" if none)
	line  int
}

type parser struct {
	name        string
	warpsPerCTA int
	labels      map[string]int // label -> instruction index
	insns       []pendingInsn
	maxReg      int
	curLine     int
	sawKernel   bool
}

func (p *parser) line(raw string) error {
	p.curLine++
	s := raw
	if i := strings.Index(s, ";"); i >= 0 {
		s = s[:i]
	}
	if i := strings.Index(s, "//"); i >= 0 {
		s = s[:i]
	}
	s = strings.TrimSpace(s)
	if s == "" {
		return nil
	}
	if strings.HasPrefix(s, ".kernel") {
		return p.kernelDirective(s)
	}
	if strings.HasSuffix(s, ":") {
		label := strings.TrimSuffix(s, ":")
		if !validIdent(label) {
			return fmt.Errorf("bad label %q", label)
		}
		if _, dup := p.labels[label]; dup {
			return fmt.Errorf("duplicate label %q", label)
		}
		p.labels[label] = len(p.insns)
		return nil
	}
	if !p.sawKernel {
		return fmt.Errorf("instruction before .kernel directive")
	}
	return p.insn(s)
}

func (p *parser) kernelDirective(s string) error {
	if p.sawKernel {
		return fmt.Errorf("multiple .kernel directives")
	}
	fields := strings.Fields(s)
	if len(fields) < 2 {
		return fmt.Errorf(".kernel needs a name")
	}
	p.name = fields[1]
	p.warpsPerCTA = 8
	for _, f := range fields[2:] {
		k, v, ok := strings.Cut(f, "=")
		if !ok {
			return fmt.Errorf("bad directive option %q", f)
		}
		switch k {
		case "warps_per_cta":
			n, err := strconv.Atoi(v)
			if err != nil || n <= 0 {
				return fmt.Errorf("bad warps_per_cta %q", v)
			}
			p.warpsPerCTA = n
		default:
			return fmt.Errorf("unknown option %q", k)
		}
	}
	p.sawKernel = true
	return nil
}

var opByName = func() map[string]isa.Opcode {
	m := map[string]isa.Opcode{}
	for op := isa.Opcode(0); int(op) < isa.NumOpcodes; op++ {
		m[op.String()] = op
	}
	return m
}()

func (p *parser) insn(s string) error {
	mn, rest, _ := strings.Cut(s, " ")
	op, ok := opByName[mn]
	if !ok {
		return fmt.Errorf("unknown opcode %q", mn)
	}
	args := splitArgs(rest)
	in := isa.Instruction{Op: op, Dst: isa.NoReg, Src: [3]isa.Reg{isa.NoReg, isa.NoReg, isa.NoReg}}
	label := ""

	take := func() (string, error) {
		if len(args) == 0 {
			return "", fmt.Errorf("%s: missing operand", mn)
		}
		a := args[0]
		args = args[1:]
		return a, nil
	}
	reg := func() (isa.Reg, error) {
		a, err := take()
		if err != nil {
			return isa.NoReg, err
		}
		return p.parseReg(a)
	}
	imm := func() (uint32, error) {
		a, err := take()
		if err != nil {
			return 0, err
		}
		return parseImm(a)
	}

	var err error
	switch {
	case op == isa.OpNOP || op == isa.OpBAR || op == isa.OpEXIT:
		// no operands
	case op == isa.OpBRA:
		label, err = take()
	case op == isa.OpBNZ || op == isa.OpBZ:
		if in.Src[0], err = reg(); err == nil {
			label, err = take()
		}
	case op == isa.OpMOVI:
		if in.Dst, err = reg(); err == nil {
			in.Imm, err = imm()
		}
	case op == isa.OpTID || op == isa.OpLANE || op == isa.OpWID:
		in.Dst, err = reg()
	case op.IsLoad():
		if in.Dst, err = reg(); err == nil {
			var a string
			if a, err = take(); err == nil {
				in.Src[0], in.Imm, err = p.parseMem(a)
			}
		}
	case op.IsStore():
		var a string
		if a, err = take(); err == nil {
			if in.Src[0], in.Imm, err = p.parseMem(a); err == nil {
				in.Src[1], err = reg()
			}
		}
	case op.NumSrc() == 1 && op.HasDst(): // reg-imm ops and SFU
		if in.Dst, err = reg(); err == nil {
			if in.Src[0], err = reg(); err == nil && op != isa.OpSFU {
				in.Imm, err = imm()
			}
		}
	case op.NumSrc() == 2 && op.HasDst():
		if in.Dst, err = reg(); err == nil {
			if in.Src[0], err = reg(); err == nil {
				in.Src[1], err = reg()
			}
		}
	case op.NumSrc() == 3 && op.HasDst():
		if in.Dst, err = reg(); err == nil {
			if in.Src[0], err = reg(); err == nil {
				if in.Src[1], err = reg(); err == nil {
					in.Src[2], err = reg()
				}
			}
		}
	default:
		return fmt.Errorf("unhandled opcode %q", mn)
	}
	if err != nil {
		return err
	}
	if len(args) != 0 {
		return fmt.Errorf("%s: trailing operands %v", mn, args)
	}
	p.insns = append(p.insns, pendingInsn{in: in, label: label, line: p.curLine})
	return nil
}

func (p *parser) parseReg(a string) (isa.Reg, error) {
	if !strings.HasPrefix(a, "r") {
		return isa.NoReg, fmt.Errorf("bad register %q", a)
	}
	n, err := strconv.Atoi(a[1:])
	if err != nil || n < 0 || n > 255 {
		return isa.NoReg, fmt.Errorf("bad register %q", a)
	}
	if n > p.maxReg {
		p.maxReg = n
	}
	return isa.Reg(n), nil
}

// parseMem handles "[rN + off]", "[rN - off]", and "[rN]".
func (p *parser) parseMem(a string) (isa.Reg, uint32, error) {
	if !strings.HasPrefix(a, "[") || !strings.HasSuffix(a, "]") {
		return isa.NoReg, 0, fmt.Errorf("bad memory operand %q", a)
	}
	inner := strings.TrimSpace(a[1 : len(a)-1])
	regPart := inner
	immPart := ""
	neg := false
	if i := strings.IndexAny(inner, "+-"); i > 0 {
		neg = inner[i] == '-'
		regPart = strings.TrimSpace(inner[:i])
		immPart = strings.TrimSpace(inner[i+1:])
	}
	r, err := p.parseReg(regPart)
	if err != nil {
		return isa.NoReg, 0, err
	}
	var off uint32
	if immPart != "" {
		off, err = parseImm(immPart)
		if err != nil {
			return isa.NoReg, 0, err
		}
		if neg {
			off = -off
		}
	}
	return r, off, nil
}

func parseImm(a string) (uint32, error) {
	neg := strings.HasPrefix(a, "-")
	if neg {
		a = a[1:]
	}
	v, err := strconv.ParseUint(a, 0, 32)
	if err != nil {
		return 0, fmt.Errorf("bad immediate %q", a)
	}
	u := uint32(v)
	if neg {
		u = -u
	}
	return u, nil
}

func splitArgs(s string) []string {
	var out []string
	depth := 0
	cur := strings.Builder{}
	flush := func() {
		if t := strings.TrimSpace(cur.String()); t != "" {
			out = append(out, t)
		}
		cur.Reset()
	}
	for _, c := range s {
		switch {
		case c == '[':
			depth++
			cur.WriteRune(c)
		case c == ']':
			depth--
			cur.WriteRune(c)
		case c == ',' && depth == 0:
			flush()
		default:
			cur.WriteRune(c)
		}
	}
	flush()
	return out
}

func validIdent(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		ok := c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

// finish resolves labels into basic blocks and branch targets.
func (p *parser) finish() (*isa.Kernel, error) {
	if !p.sawKernel {
		return nil, fmt.Errorf("missing .kernel directive")
	}
	if len(p.insns) == 0 {
		return nil, fmt.Errorf("empty kernel")
	}
	// Block boundaries: instruction 0, every label target, and every
	// instruction after a branch/exit.
	starts := map[int]bool{0: true}
	for _, idx := range p.labels {
		if idx >= len(p.insns) {
			return nil, fmt.Errorf("label at end of kernel (no instruction follows)")
		}
		starts[idx] = true
	}
	for i, pi := range p.insns {
		if pi.in.Op.IsBranch() || pi.in.Op == isa.OpEXIT {
			starts[i+1] = true
		}
	}
	// Assign block IDs in order.
	blockOf := make([]int, len(p.insns)+1)
	id := -1
	for i := 0; i < len(p.insns); i++ {
		if starts[i] {
			id++
		}
		blockOf[i] = id
	}
	blockOf[len(p.insns)] = id + 1

	k := &isa.Kernel{Name: p.name, WarpsPerCTA: p.warpsPerCTA, NumRegs: p.maxReg + 1}
	var cur *isa.BasicBlock
	for i, pi := range p.insns {
		if starts[i] {
			cur = &isa.BasicBlock{ID: blockOf[i]}
			k.Blocks = append(k.Blocks, cur)
		}
		in := pi.in
		if pi.label != "" {
			target, ok := p.labels[pi.label]
			if !ok {
				return nil, fmt.Errorf("line %d: undefined label %q", pi.line, pi.label)
			}
			in.Target = blockOf[target]
		}
		cur.Insns = append(cur.Insns, in)
	}
	if err := k.Validate(); err != nil {
		return nil, err
	}
	return k, nil
}
