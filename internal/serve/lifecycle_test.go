package serve

// Lifecycle tests: graceful drain (with and without a deadline), request
// budgets, overload shedding, the circuit breaker, request IDs, and SSE
// subscriber behavior during drain. DESIGN.md §16.

import (
	"bufio"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"
	"time"
)

// waitUntil polls cond until it holds or the deadline passes.
func waitUntil(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestDrainGracefulCompletes(t *testing.T) {
	s := newTestServer(t, t.TempDir(), testOpts())
	h := s.Handler()
	var a, b RunStatus
	if code := doJSON(t, h, "POST", "/v1/runs", "dg", RunRequest{Bench: "nw", Scheme: "baseline"}, &a); code != http.StatusAccepted {
		t.Fatalf("POST run = %d", code)
	}
	if code := doJSON(t, h, "POST", "/v1/runs", "dg", RunRequest{Bench: "bfs", Scheme: "baseline"}, &b); code != http.StatusAccepted {
		t.Fatalf("POST run = %d", code)
	}

	rep, err := s.Drain(30 * time.Second)
	if err != nil {
		t.Fatalf("Drain: %v", err)
	}
	if rep.TimedOut || rep.Canceled != 0 {
		t.Fatalf("graceful drain report %+v", rep)
	}
	if rep.Completed != rep.Pending {
		t.Fatalf("drain completed %d of %d pending", rep.Completed, rep.Pending)
	}

	// Reads still work on the drained server; submissions are rejected.
	var st RunStatus
	if code := doJSON(t, h, "GET", "/v1/runs/"+a.ID, "dg", nil, &st); code != http.StatusOK || st.Status != "done" {
		t.Fatalf("GET after drain = %d %q (%s)", code, st.Status, st.Error)
	}
	var rej map[string]string
	if code := doJSON(t, h, "POST", "/v1/runs", "dg", RunRequest{Bench: "nw", Scheme: "regless"}, &rej); code != http.StatusServiceUnavailable {
		t.Fatalf("POST after drain = %d, want 503", code)
	}
	if !strings.Contains(rej["error"], "draining") {
		t.Fatalf("rejection says %q, want draining", rej["error"])
	}
	var hz Health
	if code := doJSON(t, h, "GET", "/healthz", "", nil, &hz); code != http.StatusServiceUnavailable || hz.Status != "draining" {
		t.Fatalf("healthz after drain = %d %q", code, hz.Status)
	}
	if got := counter(t, s, "serve/canceled"); got != 0 {
		t.Fatalf("graceful drain canceled %d jobs", got)
	}

	// Drain and Close are idempotent after the fact.
	if rep2, err := s.Drain(time.Second); err != nil || rep2.Pending != 0 {
		t.Fatalf("second Drain = %+v, %v", rep2, err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close after Drain: %v", err)
	}
}

func TestDrainDeadlineCancelsInflight(t *testing.T) {
	s := newTestServer(t, t.TempDir(), testOpts())
	// Hold every job until its context cancels: the only way out of the
	// pool is the drain deadline.
	s.testExecGate = func(j *job) { <-j.ctx.Done() }
	h := s.Handler()
	var st RunStatus
	if code := doJSON(t, h, "POST", "/v1/runs", "dd", RunRequest{Bench: "nw", Scheme: "baseline"}, &st); code != http.StatusAccepted {
		t.Fatalf("POST run = %d", code)
	}

	rep, err := s.Drain(100 * time.Millisecond)
	if err != nil {
		t.Fatalf("Drain: %v", err)
	}
	if !rep.TimedOut || rep.Pending != 1 || rep.Canceled != 1 {
		t.Fatalf("deadline drain report %+v", rep)
	}
	if got := counter(t, s, "serve/canceled"); got != 1 {
		t.Fatalf("serve/canceled = %d, want 1", got)
	}
	var got RunStatus
	if code := doJSON(t, h, "GET", "/v1/runs/"+st.ID, "dd", nil, &got); code != http.StatusOK || got.Status != "canceled" {
		t.Fatalf("GET after deadline drain = %d %q", code, got.Status)
	}
	// Cancellation is not a simulation failure: healthz may be draining
	// but records no failures.
	if got := counter(t, s, "serve/failures"); got != 0 {
		t.Fatalf("drain cancellation recorded %d failures", got)
	}
}

func TestRequestBudgetExpires(t *testing.T) {
	s, err := New(Config{Opts: testOpts(), StoreDir: t.TempDir(), RequestTimeout: 100 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	s.testExecGate = func(j *job) { <-j.ctx.Done() }
	h := s.Handler()

	var st RunStatus
	if code := doJSON(t, h, "POST", "/v1/runs?wait=1", "exp", RunRequest{Bench: "nw", Scheme: "baseline"}, &st); code != http.StatusOK {
		t.Fatalf("POST run = %d", code)
	}
	if st.Status != "expired" || st.Error == "" {
		t.Fatalf("budgeted run = %q (%s), want expired", st.Status, st.Error)
	}
	if got := counter(t, s, "serve/expired"); got != 1 {
		t.Fatalf("serve/expired = %d, want 1", got)
	}
	// Expiry says nothing about the simulation: healthz stays ok.
	var hz Health
	if code := doJSON(t, h, "GET", "/healthz", "", nil, &hz); code != http.StatusOK || hz.Status != "ok" {
		t.Fatalf("healthz after expiry = %d %q", code, hz.Status)
	}
	// A later submission of the same key replaces the expired job and
	// computes for real.
	s.testExecGate = nil
	var again RunStatus
	if code := doJSON(t, h, "POST", "/v1/runs?wait=1", "exp", RunRequest{Bench: "nw", Scheme: "baseline"}, &again); code != http.StatusOK {
		t.Fatalf("retry POST = %d", code)
	}
	if again.Status != "done" || len(again.Result) == 0 {
		t.Fatalf("retry after expiry = %q (%s), want done", again.Status, again.Error)
	}
	if got := counter(t, s, "serve/failures"); got != 0 {
		t.Fatalf("expiry recorded %d failures", got)
	}
}

func TestBudgetForClamps(t *testing.T) {
	s, err := New(Config{Opts: testOpts(), StoreDir: t.TempDir(), RequestTimeout: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	req := func(hdr string) *http.Request {
		r := httptest.NewRequest("POST", "/v1/runs", nil)
		if hdr != "" {
			r.Header.Set("X-Regless-Timeout", hdr)
		}
		return r
	}
	if d, err := s.budgetFor(req("")); err != nil || d != 5*time.Second {
		t.Fatalf("default budget = %v, %v", d, err)
	}
	if d, err := s.budgetFor(req("1s")); err != nil || d != time.Second {
		t.Fatalf("shortened budget = %v, %v", d, err)
	}
	// A client may never extend the server's budget.
	if d, err := s.budgetFor(req("1m")); err != nil || d != 5*time.Second {
		t.Fatalf("clamped budget = %v, %v", d, err)
	}
	for _, bad := range []string{"garbage", "-1s", "0"} {
		if _, err := s.budgetFor(req(bad)); err == nil {
			t.Fatalf("budgetFor(%q) accepted", bad)
		}
	}
	// No server default: the header is the only deadline.
	s2, err := New(Config{Opts: testOpts(), StoreDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if d, err := s2.budgetFor(req("2s")); err != nil || d != 2*time.Second {
		t.Fatalf("header-only budget = %v, %v", d, err)
	}
	if d, err := s2.budgetFor(req("")); err != nil || d != 0 {
		t.Fatalf("no-deadline budget = %v, %v", d, err)
	}
	// And over HTTP a bad header is a 400 before admission.
	r := httptest.NewRequest("POST", "/v1/runs", strings.NewReader(`{"bench":"nw","scheme":"baseline"}`))
	r.Header.Set("X-Regless-Timeout", "nope")
	rec := httptest.NewRecorder()
	s2.Handler().ServeHTTP(rec, r)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("bad timeout header = %d, want 400", rec.Code)
	}
}

func TestOverloadSheds(t *testing.T) {
	opts := testOpts()
	opts.Parallelism = 1
	s, err := New(Config{Opts: opts, StoreDir: t.TempDir(), QueueLimit: 1})
	if err != nil {
		t.Fatal(err)
	}
	release := make(chan struct{})
	s.testExecGate = func(*job) { <-release }
	h := s.Handler()

	// A occupies the single worker; B fills the queue; C sheds.
	if code := doJSON(t, h, "POST", "/v1/runs", "shed", RunRequest{Bench: "nw", Scheme: "baseline"}, nil); code != http.StatusAccepted {
		t.Fatalf("POST A = %d", code)
	}
	waitUntil(t, "worker pickup", func() bool { return s.admit.inflight.Load() == 1 && s.admit.queued.Load() == 0 })
	if code := doJSON(t, h, "POST", "/v1/runs", "shed", RunRequest{Bench: "bfs", Scheme: "baseline"}, nil); code != http.StatusAccepted {
		t.Fatalf("POST B = %d", code)
	}

	r := httptest.NewRequest("POST", "/v1/runs", strings.NewReader(`{"bench":"nw","scheme":"regless"}`))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, r)
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("POST C = %d, want 429", rec.Code)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Fatal("429 carries no Retry-After")
	}
	if got := counter(t, s, "serve/shed"); got != 1 {
		t.Fatalf("serve/shed = %d, want 1", got)
	}
	var hz Health
	if code := doJSON(t, h, "GET", "/healthz", "", nil, &hz); code != http.StatusServiceUnavailable || hz.Status != "overloaded" {
		t.Fatalf("healthz under load = %d %q", code, hz.Status)
	}

	// Draining the queue reopens admission: the shed point is accepted
	// and computed on retry.
	close(release)
	waitUntil(t, "queue drain", func() bool { return s.admit.queued.Load() == 0 && s.admit.inflight.Load() == 0 })
	var st RunStatus
	if code := doJSON(t, h, "POST", "/v1/runs?wait=1", "shed", RunRequest{Bench: "nw", Scheme: "regless"}, &st); code != http.StatusOK || st.Status != "done" {
		t.Fatalf("retry after shed = %d %q (%s)", code, st.Status, st.Error)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestBreakerQuarantines(t *testing.T) {
	// A corrupted OSU tag under RegLess is the pinned known-detected
	// case: the sanitizer fails the run with a Diagnostic, feeding the
	// breaker.
	opts := faultOpts(t, "osu-tag@200; seed=3")
	s, err := New(Config{Opts: opts, StoreDir: t.TempDir(), BreakerThreshold: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	h := s.Handler()
	body := RunRequest{Bench: "nw", Scheme: "regless"}

	var st RunStatus
	if code := doJSON(t, h, "POST", "/v1/runs?wait=1", "brk", body, &st); code != http.StatusOK || st.Status != "failed" {
		t.Fatalf("first run = %d %q, want failed", code, st.Status)
	}
	if st.Diagnostic == nil {
		t.Fatalf("detected run carries no diagnostic (%s)", st.Error)
	}
	if st.Diagnostic.RequestID == "" {
		t.Fatal("diagnostic carries no request id")
	}
	// Re-submitting the failed config counts against the breaker even
	// though the job map dedupes it.
	if code := doJSON(t, h, "POST", "/v1/runs?wait=1", "brk", body, &st); code != http.StatusOK || st.Status != "failed" {
		t.Fatalf("second run = %d %q", code, st.Status)
	}
	if got := counter(t, s, "serve/breaker_trips"); got != 1 {
		t.Fatalf("serve/breaker_trips = %d, want 1", got)
	}

	var rej map[string]string
	if code := doJSON(t, h, "POST", "/v1/runs", "brk", body, &rej); code != http.StatusServiceUnavailable {
		t.Fatalf("quarantined run = %d, want 503", code)
	}
	if !strings.Contains(rej["error"], "quarantined") {
		t.Fatalf("rejection says %q", rej["error"])
	}
	if got := counter(t, s, "serve/breaker_rejects"); got != 1 {
		t.Fatalf("serve/breaker_rejects = %d, want 1", got)
	}
	// The quarantine is per (bench, scheme, capacity): a different
	// capacity of the same scheme is still admitted.
	other := RunRequest{Bench: "nw", Scheme: "regless", Capacity: 256}
	if code := doJSON(t, h, "POST", "/v1/runs?wait=1", "brk", other, &st); code != http.StatusOK {
		t.Fatalf("other capacity = %d, want admitted", code)
	}
	var hz Health
	if code := doJSON(t, h, "GET", "/healthz", "", nil, &hz); code != http.StatusServiceUnavailable || hz.Status != "degraded" {
		t.Fatalf("healthz with open breaker = %d %q", code, hz.Status)
	}
	if len(hz.Breakers) != 1 || !strings.HasPrefix(hz.Breakers[0], "nw/regless/") {
		t.Fatalf("healthz breakers = %v", hz.Breakers)
	}
}

func TestRequestIDsAssignedAndEchoed(t *testing.T) {
	s := newTestServer(t, t.TempDir(), testOpts())
	defer s.Close()
	h := s.Handler()

	// Client-provided id echoes through response header and status.
	r := httptest.NewRequest("POST", "/v1/runs?wait=1", strings.NewReader(`{"bench":"nw","scheme":"baseline"}`))
	r.Header.Set("X-Request-ID", "trace-me-42")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, r)
	if rec.Code != http.StatusOK {
		t.Fatalf("POST = %d", rec.Code)
	}
	if got := rec.Header().Get("X-Request-ID"); got != "trace-me-42" {
		t.Fatalf("echoed id %q", got)
	}
	if !strings.Contains(rec.Body.String(), `"request_id":"trace-me-42"`) {
		t.Fatalf("status carries no request id: %s", rec.Body.String())
	}

	// Absent header: the server mints a unique id.
	mint := func() string {
		r := httptest.NewRequest("GET", "/healthz", nil)
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, r)
		return rec.Header().Get("X-Request-ID")
	}
	a := mint()
	b := mint()
	if !strings.HasPrefix(a, "r-") || a == b {
		t.Fatalf("minted ids %q, %q", a, b)
	}
}

func TestSSESubscribersDuringDrain(t *testing.T) {
	s := newTestServer(t, t.TempDir(), testOpts())
	s.testExecGate = func(j *job) { <-j.ctx.Done() }
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	before := runtime.NumGoroutine()

	var sw SweepStatus
	code := doJSON(t, s.Handler(), "POST", "/v1/sweeps", "sse",
		SweepRequest{Benchmarks: []string{"nw"}, Schemes: []string{"baseline", "regless"}}, &sw)
	if code != http.StatusAccepted {
		t.Fatalf("POST sweep = %d", code)
	}

	// Subscribe over a real connection and collect the stream.
	events := make(chan string, 1)
	resp, err := http.Get(ts.URL + "/v1/sweeps/" + sw.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		defer resp.Body.Close()
		var b strings.Builder
		sc := bufio.NewScanner(resp.Body)
		for sc.Scan() {
			b.WriteString(sc.Text())
			b.WriteByte('\n')
		}
		events <- b.String()
	}()
	waitUntil(t, "SSE subscription", func() bool {
		s.sseMu.Lock()
		defer s.sseMu.Unlock()
		return len(s.runSubs) > 0
	})

	rep, err := s.Drain(100 * time.Millisecond)
	if err != nil {
		t.Fatalf("Drain: %v", err)
	}
	if rep.Canceled != 2 {
		t.Fatalf("drain report %+v, want 2 canceled", rep)
	}
	select {
	case body := <-events:
		// The stream ended with a terminal frame: either the sweep's
		// summary (every job resolved) or an explicit draining notice.
		if !strings.Contains(body, "event: summary") && !strings.Contains(body, "event: draining") {
			t.Fatalf("stream ended without terminal event:\n%s", body)
		}
		if !strings.Contains(body, `"canceled"`) {
			t.Fatalf("stream never reported the canceled runs:\n%s", body)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("SSE stream did not terminate on drain")
	}

	// No goroutine leak: subscriber, handler, and pool goroutines all
	// unwound (allow slack for runtime/background goroutines).
	waitUntil(t, "goroutines to unwind", func() bool {
		runtime.GC()
		return runtime.NumGoroutine() <= before+3
	})
}

func TestAbandonedWaiterCancelsJob(t *testing.T) {
	s := newTestServer(t, t.TempDir(), testOpts())
	defer s.Close()
	s.testExecGate = func(j *job) { <-j.ctx.Done() }
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// A waiting client that disconnects abandons its (unpinned) job.
	req, err := http.NewRequest("POST", ts.URL+"/v1/runs?wait=1",
		strings.NewReader(`{"bench":"nw","scheme":"baseline"}`))
	if err != nil {
		t.Fatal(err)
	}
	hc := &http.Client{Timeout: 200 * time.Millisecond}
	if _, err := hc.Do(req); err == nil {
		t.Fatal("gated run answered before its client timeout")
	}
	waitUntil(t, "abandoned job cancellation", func() bool {
		return counter(t, s, "serve/canceled") == 1
	})
	if got := counter(t, s, "serve/failures"); got != 0 {
		t.Fatalf("abandonment recorded %d failures", got)
	}
}
