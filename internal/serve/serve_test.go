package serve

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/experiments"
)

// testOpts is the reduced-scale server configuration shared by the serve
// tests: small enough that a cold simulation is fast, identical across
// cold and warm servers so keys line up.
func testOpts() experiments.Options {
	return experiments.Options{
		Warps:       8,
		Benchmarks:  []string{"nw", "bfs"},
		MaxCycles:   2_000_000,
		Parallelism: 4,
	}
}

func newTestServer(t *testing.T, dir string, opts experiments.Options) *Server {
	t.Helper()
	s, err := New(Config{Opts: opts, StoreDir: dir})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return s
}

// doJSON fires one request at the handler and decodes the JSON response.
func doJSON(t *testing.T, h http.Handler, method, path, client string, body any, out any) int {
	t.Helper()
	var rd io.Reader
	if body != nil {
		raw, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(raw)
	}
	req := httptest.NewRequest(method, path, rd)
	if client != "" {
		req.Header.Set("X-Regless-Client", client)
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if out != nil && rec.Body.Len() > 0 {
		if err := json.Unmarshal(rec.Body.Bytes(), out); err != nil {
			t.Fatalf("%s %s: bad response JSON: %v\n%s", method, path, err, rec.Body.Bytes())
		}
	}
	return rec.Code
}

// counter reads one named metric from the server's registry.
func counter(t *testing.T, s *Server, name string) uint64 {
	t.Helper()
	v, ok := s.Metrics().Value(name)
	if !ok {
		t.Fatalf("metric %q not registered", name)
	}
	return v
}

// refPayload computes, via a direct Suite.Get against an independent
// suite, the exact bytes the server must serve for a run — the
// byte-identity oracle.
func refPayload(t *testing.T, suite *experiments.Suite, opts experiments.Options, bench string, scheme experiments.Scheme, capacity int) []byte {
	t.Helper()
	run, err := suite.Get(bench, scheme, capacity)
	if err != nil {
		t.Fatalf("reference Get(%s,%s,%d): %v", bench, scheme, capacity, err)
	}
	sms := opts.SMs
	if sms < 1 {
		sms = 1
	}
	raw, err := json.Marshal(RunResult{
		Bench:    run.Bench,
		Scheme:   string(run.Scheme),
		Capacity: run.Capacity,
		Warps:    opts.Warps,
		SMs:      sms,
		Stats:    *run.Stats,
		Prov:     run.Prov,
		Mem:      run.Mem,
	})
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

func TestRunEndpointMatchesDirectSuite(t *testing.T) {
	opts := testOpts()
	s := newTestServer(t, t.TempDir(), opts)
	defer s.Close()
	h := s.Handler()

	var st RunStatus
	code := doJSON(t, h, "POST", "/v1/runs?wait=1", "c1", RunRequest{Bench: "nw", Scheme: "regless"}, &st)
	if code != http.StatusOK || st.Status != "done" {
		t.Fatalf("POST run = %d %q (%s)", code, st.Status, st.Error)
	}
	if st.Cached {
		t.Fatal("first run of an empty store claims cached")
	}
	want := refPayload(t, experiments.NewSuite(opts), opts, "nw", experiments.SchemeRegLess, experiments.DefaultCapacity)
	if !bytes.Equal(st.Result, want) {
		t.Fatalf("served result differs from direct Suite.Get:\n%s\n%s", st.Result, want)
	}

	// Poll endpoint returns the same job and the same bytes.
	var st2 RunStatus
	if code := doJSON(t, h, "GET", "/v1/runs/"+st.ID, "", nil, &st2); code != http.StatusOK {
		t.Fatalf("GET run = %d", code)
	}
	if !bytes.Equal(st2.Result, st.Result) {
		t.Fatal("poll returned different bytes than submit")
	}

	// Resubmission dedupes onto the same job.
	var st3 RunStatus
	doJSON(t, h, "POST", "/v1/runs?wait=1", "c2", RunRequest{Bench: "nw", Scheme: "regless", Capacity: experiments.DefaultCapacity}, &st3)
	if st3.ID != st.ID {
		t.Fatalf("explicit default capacity minted a second job: %s vs %s", st3.ID, st.ID)
	}
	if got := counter(t, s, "serve/dedup"); got != 1 {
		t.Fatalf("dedup counter = %d, want 1", got)
	}
}

func TestBadRequestsAre4xx(t *testing.T) {
	s := newTestServer(t, t.TempDir(), testOpts())
	defer s.Close()
	h := s.Handler()

	post := func(path, body string) int {
		req := httptest.NewRequest("POST", path, strings.NewReader(body))
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		return rec.Code
	}
	cases := []struct {
		name, path, body string
	}{
		{"unknown bench", "/v1/runs", `{"bench":"nope","scheme":"regless"}`},
		{"unknown scheme", "/v1/runs", `{"bench":"nw","scheme":"nope"}`},
		{"negative capacity", "/v1/runs", `{"bench":"nw","scheme":"regless","capacity":-1}`},
		{"unknown field", "/v1/runs", `{"bench":"nw","scheme":"regless","warps":4}`},
		{"trailing garbage", "/v1/runs", `{"bench":"nw","scheme":"regless"} extra`},
		{"not json", "/v1/runs", `cycles go brr`},
		{"empty body", "/v1/runs", ``},
		{"empty sweep", "/v1/sweeps", `{"benchmarks":[],"schemes":["regless"]}`},
		{"sweep bad cell", "/v1/sweeps", `{"benchmarks":["nw","nope"],"schemes":["regless"]}`},
	}
	for _, c := range cases {
		if code := post(c.path, c.body); code < 400 || code >= 500 {
			t.Errorf("%s: code = %d, want 4xx", c.name, code)
		}
	}
	if code := doJSON(t, h, "GET", "/v1/runs/deadbeef", "", nil, nil); code != http.StatusNotFound {
		t.Errorf("unknown run id = %d, want 404", code)
	}
	if code := doJSON(t, h, "GET", "/v1/sweeps/deadbeef", "", nil, nil); code != http.StatusNotFound {
		t.Errorf("unknown sweep id = %d, want 404", code)
	}
	// A bad-cell sweep admitted nothing.
	if got := counter(t, s, "serve/submissions"); got != 0 {
		t.Errorf("bad requests admitted %d submissions", got)
	}
	if got := counter(t, s, "serve/http_errors"); got == 0 {
		t.Error("http_errors counter never moved")
	}
}

// TestColdWarmRestart is the PR's acceptance proof: the same sweep
// submitted to a fresh server and again to a restarted server over the
// same store directory returns byte-identical results, with the second
// pass served entirely (100% >= 95%) from the disk store.
func TestColdWarmRestart(t *testing.T) {
	dir := t.TempDir()
	opts := testOpts()
	sweepReq := SweepRequest{
		Benchmarks: []string{"nw", "bfs"},
		Schemes:    []string{"baseline", "regless"},
	}

	type pass struct {
		results map[string][]byte // job id -> result bytes
		cached  map[string]bool
		table   string
		hits    uint64
		misses  uint64
	}
	runPass := func(t *testing.T) pass {
		s := newTestServer(t, dir, opts)
		defer s.Close()
		h := s.Handler()
		var sw SweepStatus
		if code := doJSON(t, h, "POST", "/v1/sweeps?wait=1", "acceptance", sweepReq, &sw); code != http.StatusOK {
			t.Fatalf("POST sweep = %d", code)
		}
		if sw.Status != "done" || sw.Total != 4 || sw.Completed != 4 || sw.Failed != 0 {
			t.Fatalf("sweep = %+v", sw)
		}
		p := pass{results: map[string][]byte{}, cached: map[string]bool{}}
		for _, r := range sw.Runs {
			var st RunStatus
			if code := doJSON(t, h, "GET", "/v1/runs/"+r.ID, "", nil, &st); code != http.StatusOK {
				t.Fatalf("GET run %s = %d", r.ID, code)
			}
			if len(st.Result) == 0 {
				t.Fatalf("run %s served no result", r.ID)
			}
			p.results[r.ID] = st.Result
			p.cached[r.ID] = st.Cached
		}
		req := httptest.NewRequest("GET", "/v1/sweeps/"+sw.ID+"/table", nil)
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			t.Fatalf("GET table = %d", rec.Code)
		}
		p.table = rec.Body.String()
		p.hits = counter(t, s, "serve/hits")
		p.misses = counter(t, s, "serve/misses")
		if n, err := s.Store().Verify(); err != nil || n != 4 {
			t.Fatalf("store Verify = %d, %v", n, err)
		}
		return p
	}

	cold := runPass(t)
	if cold.misses != 4 || cold.hits != 0 {
		t.Fatalf("cold pass: hits=%d misses=%d, want 0/4", cold.hits, cold.misses)
	}
	for id, c := range cold.cached {
		if c {
			t.Fatalf("cold pass served %s from a store that was empty", id)
		}
	}

	warm := runPass(t) // fresh Server, same directory: the restart
	if warm.hits != 4 || warm.misses != 0 {
		t.Fatalf("warm pass: hits=%d misses=%d, want 4/0 (>=95%% from store)", warm.hits, warm.misses)
	}
	for id, c := range warm.cached {
		if !c {
			t.Fatalf("warm pass recomputed %s", id)
		}
	}
	if len(warm.results) != len(cold.results) {
		t.Fatalf("pass sizes differ: %d vs %d", len(warm.results), len(cold.results))
	}
	for id, want := range cold.results {
		got, ok := warm.results[id]
		if !ok {
			t.Fatalf("warm pass lost run %s", id)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("run %s not byte-identical across restart:\n%s\n%s", id, got, want)
		}
	}
	if warm.table != cold.table {
		t.Fatalf("table not byte-identical across restart:\n%q\n%q", warm.table, cold.table)
	}

	// And the bytes match an independent direct computation.
	suite := experiments.NewSuite(opts)
	for id, got := range cold.results {
		var res RunResult
		if err := json.Unmarshal(got, &res); err != nil {
			t.Fatal(err)
		}
		want := refPayload(t, suite, opts, res.Bench, experiments.Scheme(res.Scheme), res.Capacity)
		if !bytes.Equal(got, want) {
			t.Fatalf("run %s differs from direct Suite.Get", id)
		}
	}
}

func TestHealthzStartsOK(t *testing.T) {
	s := newTestServer(t, t.TempDir(), testOpts())
	defer s.Close()
	var h Health
	if code := doJSON(t, s.Handler(), "GET", "/healthz", "", nil, &h); code != http.StatusOK {
		t.Fatalf("healthz = %d", code)
	}
	if h.Status != "ok" || h.Failures != 0 {
		t.Fatalf("health = %+v", h)
	}
}

func TestNewRejectsBadConfig(t *testing.T) {
	if _, err := New(Config{Opts: experiments.Options{Warps: 0, MaxCycles: 1}, StoreDir: t.TempDir()}); err == nil {
		t.Error("New accepted zero warps")
	}
	if _, err := New(Config{Opts: experiments.Options{Warps: 1, MaxCycles: 0}, StoreDir: t.TempDir()}); err == nil {
		t.Error("New accepted zero max cycles")
	}
	if _, err := New(Config{Opts: experiments.Options{Warps: 1, MaxCycles: 1}}); err == nil {
		t.Error("New accepted empty store dir")
	}
}
