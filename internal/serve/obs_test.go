package serve

// Observability-layer tests: run traces (span tiling, Perfetto export),
// Prometheus exposition, SSE sweep/metrics streams (completion, slow
// client overflow, disconnect cleanup), deep-dive reports, and the
// /healthz build/store fields.

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
)

// traceTree fetches a completed run's span tree.
func traceTree(t *testing.T, s *Server, id string) *obs.Node {
	t.Helper()
	var resp struct {
		ID   string    `json:"id"`
		Root *obs.Node `json:"root"`
	}
	if code := doJSON(t, s.Handler(), "GET", "/v1/runs/"+id+"/trace", "", nil, &resp); code != http.StatusOK {
		t.Fatalf("GET trace: code %d", code)
	}
	if resp.Root == nil {
		t.Fatal("trace has no root")
	}
	return resp.Root
}

// assertTiling checks the root's children are the named spans, adjacent
// (each starts exactly where the previous ended), and that together they
// cover the root span exactly.
func assertTiling(t *testing.T, root *obs.Node, names []string) {
	t.Helper()
	if len(root.Children) != len(names) {
		var got []string
		for _, c := range root.Children {
			got = append(got, c.Name)
		}
		t.Fatalf("root children = %v, want %v", got, names)
	}
	cursor := root.StartUS
	for i, c := range root.Children {
		if c.Name != names[i] {
			t.Fatalf("child %d = %q, want %q", i, c.Name, names[i])
		}
		if c.StartUS != cursor {
			t.Fatalf("child %q starts at %dus, want %dus (gap/overlap)", c.Name, c.StartUS, cursor)
		}
		cursor = c.StartUS + c.DurUS
	}
	if end := root.StartUS + root.DurUS; cursor != end {
		t.Fatalf("children end at %dus, root ends at %dus — spans do not tile the run", cursor, end)
	}
}

func TestRunTraceTilesExecution(t *testing.T) {
	dir := t.TempDir()
	s := newTestServer(t, dir, testOpts())
	var st RunStatus
	code := doJSON(t, s.Handler(), "POST", "/v1/runs?wait=1", "c", RunRequest{Bench: "nw", Scheme: "baseline"}, &st)
	if code != http.StatusOK || st.Status != "done" {
		t.Fatalf("run: code %d status %q", code, st.Status)
	}
	assertTiling(t, traceTree(t, s, st.ID), []string{"queue", "store-get", "simulate", "assemble", "store-put"})

	// The simulate span carries the suite's child spans.
	root := traceTree(t, s, st.ID)
	var simNode *obs.Node
	for _, c := range root.Children {
		if c.Name == "simulate" {
			simNode = c
		}
	}
	var kids []string
	for _, c := range simNode.Children {
		kids = append(kids, c.Name)
	}
	if want := []string{"kernel-load", "build", "run"}; fmt.Sprint(kids) != fmt.Sprint(want) {
		t.Fatalf("simulate children = %v, want %v", kids, want)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// A warm process serving the same key from disk records a hit-shaped
	// trace: queue and store lookup only.
	warm := newTestServer(t, dir, testOpts())
	defer warm.Close()
	var wst RunStatus
	doJSON(t, warm.Handler(), "POST", "/v1/runs?wait=1", "c", RunRequest{Bench: "nw", Scheme: "baseline"}, &wst)
	if !wst.Cached {
		t.Fatal("warm run not served from store")
	}
	assertTiling(t, traceTree(t, warm, wst.ID), []string{"queue", "store-get"})
}

func TestRunTracePerfettoExport(t *testing.T) {
	s := newTestServer(t, t.TempDir(), testOpts())
	defer s.Close()
	var st RunStatus
	doJSON(t, s.Handler(), "POST", "/v1/runs?wait=1", "c", RunRequest{Bench: "nw", Scheme: "baseline"}, &st)

	req := httptest.NewRequest("GET", "/v1/runs/"+st.ID+"/trace?format=perfetto", nil)
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("perfetto trace: code %d", rec.Code)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
		OtherData   map[string]any   `json:"otherData"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &doc); err != nil {
		t.Fatalf("perfetto export is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) < 5 {
		t.Fatalf("perfetto export has %d events, want >= 5", len(doc.TraceEvents))
	}
	if doc.OtherData["kind"] != "service-trace" {
		t.Fatalf("otherData = %v", doc.OtherData)
	}

	// Incomplete runs refuse a trace (409), unknown runs 404.
	if code := doJSON(t, s.Handler(), "GET", "/v1/runs/nope/trace", "", nil, nil); code != http.StatusNotFound {
		t.Fatalf("unknown trace: code %d, want 404", code)
	}
}

func TestMetricszPrometheusFormat(t *testing.T) {
	s := newTestServer(t, t.TempDir(), testOpts())
	defer s.Close()
	doJSON(t, s.Handler(), "POST", "/v1/runs?wait=1", "c", RunRequest{Bench: "nw", Scheme: "baseline"}, nil)

	req := httptest.NewRequest("GET", "/metricsz?format=prom", nil)
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("prom scrape: code %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("content type %q", ct)
	}
	body := rec.Body.String()
	for _, w := range []string{
		"# TYPE regless_serve_span_simulate_us histogram",
		"regless_serve_span_simulate_us_bucket{le=\"+Inf\"} 1",
		"regless_serve_span_simulate_us_count 1",
		"# TYPE regless_serve_submissions_total counter",
		"# TYPE regless_serve_queue_depth gauge",
	} {
		if !strings.Contains(body, w) {
			t.Fatalf("prom output missing %q:\n%s", w, body)
		}
	}

	// The default format stays the JSON map reglessload scrapes.
	var m map[string]uint64
	if code := doJSON(t, s.Handler(), "GET", "/metricsz", "", nil, &m); code != http.StatusOK {
		t.Fatalf("json scrape: code %d", code)
	}
	if _, ok := m["serve/hits"]; !ok {
		t.Fatal("JSON metricsz lost serve/hits")
	}
}

// sseEvent is one parsed frame from a test stream.
type sseEvent struct {
	name string
	data string
}

// readSSE parses frames off the stream until the named terminal event
// (inclusive) or EOF.
func readSSE(t *testing.T, r *bufio.Reader, until string) []sseEvent {
	t.Helper()
	var out []sseEvent
	var cur sseEvent
	for {
		line, err := r.ReadString('\n')
		if err != nil {
			return out
		}
		line = strings.TrimRight(line, "\n")
		switch {
		case strings.HasPrefix(line, "event: "):
			cur.name = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			cur.data = strings.TrimPrefix(line, "data: ")
		case line == "" && cur.name != "":
			out = append(out, cur)
			if cur.name == until {
				return out
			}
			cur = sseEvent{}
		}
	}
}

func TestSweepEventsStreamToCompletion(t *testing.T) {
	s := newTestServer(t, t.TempDir(), testOpts())
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	var sw SweepStatus
	code := doJSON(t, s.Handler(), "POST", "/v1/sweeps", "c",
		SweepRequest{Benchmarks: []string{"nw", "bfs"}, Schemes: []string{"baseline", "regless"}}, &sw)
	if code != http.StatusAccepted && code != http.StatusOK {
		t.Fatalf("sweep submit: code %d", code)
	}

	resp, err := http.Get(ts.URL + "/v1/sweeps/" + sw.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type %q", ct)
	}
	events := readSSE(t, bufio.NewReader(resp.Body), "summary")
	var runs int
	var summary string
	for _, ev := range events {
		switch ev.name {
		case "run":
			runs++
			var re runEvent
			if err := json.Unmarshal([]byte(ev.data), &re); err != nil {
				t.Fatalf("bad run event %q: %v", ev.data, err)
			}
			if re.Status != "done" {
				t.Fatalf("run event status %q: %s", re.Status, ev.data)
			}
		case "dropped":
			t.Fatalf("unexpected drop on a healthy stream: %s", ev.data)
		case "summary":
			summary = ev.data
		}
	}
	if runs != sw.Total {
		t.Fatalf("streamed %d run events, sweep has %d jobs", runs, sw.Total)
	}
	var sum struct {
		Status    string `json:"status"`
		Total     int    `json:"total"`
		Completed int    `json:"completed"`
	}
	if err := json.Unmarshal([]byte(summary), &sum); err != nil || sum.Status != "done" || sum.Completed != sw.Total {
		t.Fatalf("bad summary %q (err %v)", summary, err)
	}
}

// gateWriter is an SSE sink whose first Write blocks until released —
// the shape of a stalled client socket.
type gateWriter struct {
	gate <-chan struct{}
	mu   sync.Mutex
	buf  bytes.Buffer
	hdr  http.Header
}

func (w *gateWriter) Header() http.Header { return w.hdr }
func (w *gateWriter) WriteHeader(int)     {}
func (w *gateWriter) Flush()              {}
func (w *gateWriter) Write(p []byte) (int, error) {
	<-w.gate
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.buf.Write(p)
}
func (w *gateWriter) String() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.buf.String()
}

// pendingSubs counts per-job subscription entries.
func pendingSubs(s *Server) int {
	s.sseMu.Lock()
	defer s.sseMu.Unlock()
	return len(s.runSubs)
}

func TestSweepEventsSlowClientDrops(t *testing.T) {
	dir := t.TempDir()
	hold := make(chan struct{})
	s, err := New(Config{Opts: testOpts(), StoreDir: dir, SSEBuffer: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	s.testExecGate = func(*job) { <-hold }

	var sw SweepStatus
	doJSON(t, s.Handler(), "POST", "/v1/sweeps", "c",
		SweepRequest{Benchmarks: []string{"nw", "bfs"}, Schemes: []string{"baseline", "regless"}}, &sw)
	if sw.Total != 4 {
		t.Fatalf("sweep has %d jobs, want 4", sw.Total)
	}

	writerGate := make(chan struct{})
	w := &gateWriter{gate: writerGate, hdr: http.Header{}}
	req := httptest.NewRequest("GET", "/v1/sweeps/"+sw.ID+"/events", nil)
	req.SetPathValue("id", sw.ID)
	handlerDone := make(chan struct{})
	go func() {
		defer close(handlerDone)
		s.handleSweepEvents(w, req)
	}()

	// Wait for the stream to register on every job, then let the pool
	// run. All four completions publish while the client's socket is
	// stuck: buffer 1 means at most two frames survive (one in the
	// writer's hand, one buffered) and at least two drop.
	waitCond(t, func() bool { return pendingSubs(s) == 4 })
	close(hold)
	waitCond(t, func() bool { return pendingSubs(s) == 0 })
	close(writerGate)
	select {
	case <-handlerDone:
	case <-time.After(30 * time.Second):
		t.Fatal("stream did not terminate after drops")
	}

	out := w.String()
	if !strings.Contains(out, "event: dropped") {
		t.Fatalf("slow client was not told about dropped frames:\n%s", out)
	}
	if !strings.Contains(out, "event: summary") {
		t.Fatalf("stream did not end with a summary:\n%s", out)
	}
	if n := counter(t, s, "serve/sse_dropped"); n < 2 {
		t.Fatalf("serve/sse_dropped = %d, want >= 2", n)
	}
}

func TestSweepEventsDisconnectCleansUp(t *testing.T) {
	hold := make(chan struct{})
	s := newTestServer(t, t.TempDir(), testOpts())
	defer s.Close()
	s.testExecGate = func(*job) { <-hold }
	defer close(hold)

	var sw SweepStatus
	doJSON(t, s.Handler(), "POST", "/v1/sweeps", "c",
		SweepRequest{Benchmarks: []string{"nw"}, Schemes: []string{"baseline", "regless"}}, &sw)

	ctx, cancel := context.WithCancel(context.Background())
	req := httptest.NewRequest("GET", "/v1/sweeps/"+sw.ID+"/events", nil).WithContext(ctx)
	req.SetPathValue("id", sw.ID)
	rec := httptest.NewRecorder()
	handlerDone := make(chan struct{})
	go func() {
		defer close(handlerDone)
		s.handleSweepEvents(rec, req)
	}()
	waitCond(t, func() bool { return pendingSubs(s) == 2 })

	// Mid-stream disconnect: the handler returns and its subscription
	// disappears from every job, so completions later fan out to nobody.
	cancel()
	select {
	case <-handlerDone:
	case <-time.After(30 * time.Second):
		t.Fatal("handler did not return on client disconnect")
	}
	if n := pendingSubs(s); n != 0 {
		t.Fatalf("%d job subscriptions leaked after disconnect", n)
	}
}

func waitCond(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached in 30s")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestMetricsStreamDeliversWindows(t *testing.T) {
	s, err := New(Config{Opts: testOpts(), StoreDir: t.TempDir(), MetricsEvery: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/v1/metricsz/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	events := readSSE(t, bufio.NewReader(resp.Body), "window")
	if len(events) == 0 {
		t.Fatal("no window event arrived")
	}
	last := events[len(events)-1]
	var win struct {
		Window   *int              `json:"window"`
		Counters map[string]uint64 `json:"counters"`
	}
	if err := json.Unmarshal([]byte(last.data), &win); err != nil || win.Window == nil {
		t.Fatalf("bad window frame %q (err %v)", last.data, err)
	}
}

func TestReportRunAttachesAnalysis(t *testing.T) {
	s := newTestServer(t, t.TempDir(), testOpts())
	defer s.Close()
	h := s.Handler()

	var plain, rep RunStatus
	doJSON(t, h, "POST", "/v1/runs?wait=1", "c", RunRequest{Bench: "nw", Scheme: "regless"}, &plain)
	code := doJSON(t, h, "POST", "/v1/runs?wait=1", "c",
		RunRequest{Bench: "nw", Scheme: "regless", Report: []string{"stalls", "preload"}}, &rep)
	if code != http.StatusOK || rep.Status != "done" {
		t.Fatalf("report run: code %d status %q error %q", code, rep.Status, rep.Error)
	}
	if rep.ID == plain.ID {
		t.Fatal("reported run aliases the plain run's cache key")
	}

	var plainRes, repRes RunResult
	if err := json.Unmarshal(plain.Result, &plainRes); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(rep.Result, &repRes); err != nil {
		t.Fatal(err)
	}
	// The event layer is passive: the instrumented run's statistics match
	// the plain run exactly (Stats holds slices, so compare encodings).
	pb, _ := json.Marshal(plainRes.Stats)
	rb, _ := json.Marshal(repRes.Stats)
	if !bytes.Equal(pb, rb) {
		t.Fatalf("instrumented stats diverge from plain run:\n%s\n%s", pb, rb)
	}
	r := repRes.Report
	if r == nil {
		t.Fatal("result carries no report")
	}
	if want := []string{"preload", "stalls"}; fmt.Sprint(r.Kinds) != fmt.Sprint(want) {
		t.Fatalf("kinds = %v, want canonical %v", r.Kinds, want)
	}
	if len(r.SMs) != 1 || r.SMs[0].Stalls == nil || r.SMs[0].Preload == nil {
		t.Fatalf("report sections missing: %+v", r.SMs)
	}
	if !r.SMs[0].Stalls.Tiles {
		t.Fatal("stall attribution does not tile the run's issue slots")
	}
	if r.SMs[0].Preload.Preloads == 0 {
		t.Fatal("regless run reports zero preloads")
	}
	if plainRes.Report != nil {
		t.Fatal("plain run grew a report")
	}

	// A repeat reported request is a disk hit serving identical bytes.
	var again RunStatus
	doJSON(t, h, "POST", "/v1/runs?wait=1", "c2",
		RunRequest{Bench: "nw", Scheme: "regless", Report: []string{"preload", "stalls", "stalls"}}, &again)
	if again.ID != rep.ID {
		t.Fatal("report list canonicalization is order/dup sensitive")
	}

	// Unknown sections are admission errors.
	if code := doJSON(t, h, "POST", "/v1/runs", "c", RunRequest{Bench: "nw", Scheme: "regless", Report: []string{"vibes"}}, nil); code != http.StatusBadRequest {
		t.Fatalf("unknown report section: code %d, want 400", code)
	}
}

func TestHealthzBuildAndStoreFields(t *testing.T) {
	s, err := New(Config{Opts: testOpts(), StoreDir: t.TempDir(), GitSHA: "abc123"})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	var h Health
	doJSON(t, s.Handler(), "GET", "/healthz", "", nil, &h)
	if h.GitSHA != "abc123" {
		t.Fatalf("git_sha = %q", h.GitSHA)
	}
	if h.StoreEntries != 0 {
		t.Fatalf("fresh store reports %d entries", h.StoreEntries)
	}
	doJSON(t, s.Handler(), "POST", "/v1/runs?wait=1", "c", RunRequest{Bench: "nw", Scheme: "baseline"}, nil)
	doJSON(t, s.Handler(), "GET", "/healthz", "", nil, &h)
	if h.StoreEntries != 1 {
		t.Fatalf("store_entries = %d after one persisted run", h.StoreEntries)
	}
	if h.UptimeSeconds < 0 {
		t.Fatalf("uptime %f", h.UptimeSeconds)
	}
}

func TestPprofGatedByConfig(t *testing.T) {
	off := newTestServer(t, t.TempDir(), testOpts())
	defer off.Close()
	if code := doJSON(t, off.Handler(), "GET", "/debug/pprof/", "", nil, nil); code != http.StatusNotFound {
		t.Fatalf("pprof served without -pprof: code %d", code)
	}
	on, err := New(Config{Opts: testOpts(), StoreDir: t.TempDir(), EnablePprof: true})
	if err != nil {
		t.Fatal(err)
	}
	defer on.Close()
	req := httptest.NewRequest("GET", "/debug/pprof/", nil)
	rec := httptest.NewRecorder()
	on.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("pprof index with -pprof: code %d", rec.Code)
	}
}
