package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"strconv"
	"sync"
	"testing"

	"repro/internal/experiments"
)

// soakRequests returns the soak volume: 2000 by default (the PR's
// contract), overridable via REGLESS_SOAK_REQUESTS so CI can run a
// reduced race-enabled pass without forking the test.
func soakRequests(t *testing.T) int {
	t.Helper()
	if v := os.Getenv("REGLESS_SOAK_REQUESTS"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			t.Fatalf("bad REGLESS_SOAK_REQUESTS=%q", v)
		}
		return n
	}
	return 2000
}

// TestServeSoak is the concurrency proof for the sweep service: a real
// HTTP server takes thousands of concurrent mixed hit/miss submissions
// from many clients, and afterwards (a) every response was byte-identical
// to a direct Suite.Get of the same point, (b) the store is consistent
// (no partial files, every entry verifies), and (c) the counters balance:
// hits + misses == unique keys and submissions == hits + misses + dedup.
//
// Store hits only happen across a restart (within one server lifetime the
// jobs map dedupes every key to one execution), so the test warms half
// the grid on server A, restarts as server B over the same directory, and
// soaks B — first touches of warmed keys are disk hits, first touches of
// cold keys are misses, everything else dedupes.
func TestServeSoak(t *testing.T) {
	n := soakRequests(t)
	dir := t.TempDir()
	opts := testOpts()

	// Six unique points: 2 benches x (baseline + regless at 2 capacities).
	grid := []RunRequest{
		{Bench: "nw", Scheme: "baseline"},
		{Bench: "nw", Scheme: "regless", Capacity: 256},
		{Bench: "nw", Scheme: "regless", Capacity: 512},
		{Bench: "bfs", Scheme: "baseline"},
		{Bench: "bfs", Scheme: "regless", Capacity: 256},
		{Bench: "bfs", Scheme: "regless", Capacity: 512},
	}
	warm := grid[:3]

	// Reference payloads from an independent suite, before any serving.
	ref := make(map[string][]byte, len(grid))
	suite := experiments.NewSuite(opts)
	for _, rr := range grid {
		capacity := rr.Capacity
		if capacity == 0 && rr.Scheme == "regless" {
			capacity = experiments.DefaultCapacity
		}
		ref[rr.Bench+"/"+rr.Scheme+"/"+fmt.Sprint(rr.Capacity)] =
			refPayload(t, suite, opts, rr.Bench, experiments.Scheme(rr.Scheme), capacity)
	}

	// Phase 1: warm half the grid, then "restart".
	a := newTestServer(t, dir, opts)
	for _, rr := range warm {
		var st RunStatus
		if code := doJSON(t, a.Handler(), "POST", "/v1/runs?wait=1", "warmer", rr, &st); code != http.StatusOK || st.Status != "done" {
			t.Fatalf("warmup %+v = %d %q (%s)", rr, code, st.Status, st.Error)
		}
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}

	// Phase 2: soak the restarted server over real HTTP.
	b := newTestServer(t, dir, opts)
	defer b.Close()
	ts := httptest.NewServer(b.Handler())
	defer ts.Close()

	const workers = 16
	hc := &http.Client{}
	var wg sync.WaitGroup
	errCh := make(chan error, workers)
	// results[key][response] dedupes observed bytes per grid point.
	var mu sync.Mutex
	seen := make(map[string]map[string]bool)

	perWorker := n / workers
	extra := n % workers
	for w := 0; w < workers; w++ {
		count := perWorker
		if w < extra {
			count++
		}
		wg.Add(1)
		go func(w, count int) {
			defer wg.Done()
			client := fmt.Sprintf("soak-%d", w)
			for i := 0; i < count; i++ {
				rr := grid[(w+i)%len(grid)]
				body, _ := json.Marshal(rr)
				req, err := http.NewRequest("POST", ts.URL+"/v1/runs?wait=1", bytes.NewReader(body))
				if err != nil {
					errCh <- err
					return
				}
				req.Header.Set("X-Regless-Client", client)
				resp, err := hc.Do(req)
				if err != nil {
					errCh <- err
					return
				}
				raw, err := io.ReadAll(resp.Body)
				resp.Body.Close()
				if err != nil {
					errCh <- err
					return
				}
				if resp.StatusCode != http.StatusOK {
					errCh <- fmt.Errorf("%+v: %s: %s", rr, resp.Status, raw)
					return
				}
				var st RunStatus
				if err := json.Unmarshal(raw, &st); err != nil {
					errCh <- fmt.Errorf("%+v: bad response: %v", rr, err)
					return
				}
				if st.Status != "done" || len(st.Result) == 0 {
					errCh <- fmt.Errorf("%+v: status %q (%s)", rr, st.Status, st.Error)
					return
				}
				key := rr.Bench + "/" + rr.Scheme + "/" + fmt.Sprint(rr.Capacity)
				mu.Lock()
				if seen[key] == nil {
					seen[key] = map[string]bool{}
				}
				seen[key][string(st.Result)] = true
				mu.Unlock()
			}
		}(w, count)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}

	// Every grid point was exercised and served exactly one byte pattern,
	// equal to the direct Suite.Get reference.
	if len(seen) != len(grid) {
		t.Fatalf("soak touched %d/%d grid points", len(seen), len(grid))
	}
	for key, variants := range seen {
		if len(variants) != 1 {
			t.Fatalf("point %s served %d distinct byte patterns", key, len(variants))
		}
		for got := range variants {
			if got != string(ref[key]) {
				t.Fatalf("point %s differs from direct Suite.Get:\n%s\n%s", key, got, ref[key])
			}
		}
	}

	// Counter balance on the soaked server.
	subs := counter(t, b, "serve/submissions")
	dedup := counter(t, b, "serve/dedup")
	hits := counter(t, b, "serve/hits")
	misses := counter(t, b, "serve/misses")
	if subs != uint64(n) {
		t.Fatalf("submissions = %d, want %d", subs, n)
	}
	if hits+misses+dedup != subs {
		t.Fatalf("counter imbalance: hits %d + misses %d + dedup %d != submissions %d", hits, misses, dedup, subs)
	}
	if int(hits) != len(warm) {
		t.Fatalf("hits = %d, want %d (one per warmed key)", hits, len(warm))
	}
	if int(misses) != len(grid)-len(warm) {
		t.Fatalf("misses = %d, want %d (one per cold key)", misses, len(grid)-len(warm))
	}
	if got := counter(t, b, "serve/failures"); got != 0 {
		t.Fatalf("soak produced %d failures", got)
	}

	// Store consistency: every unique key persisted, nothing partial,
	// everything verifies.
	if got, err := b.Store().Len(); err != nil || got != len(grid) {
		t.Fatalf("store Len = %d, %v, want %d", got, err, len(grid))
	}
	if intact, err := b.Store().Verify(); err != nil || intact != len(grid) {
		t.Fatalf("store Verify = %d, %v, want %d intact", intact, err, len(grid))
	}
}
