package serve

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

// TestAdmitterFairness proves the round-robin contract: with one worker
// busy and a 99-job flood queued by client A, client B's single job is
// served on the very next free slot instead of waiting behind the flood.
func TestAdmitterFairness(t *testing.T) {
	exec := make(chan string)
	a := newAdmitter(1, func(j *job) { exec <- j.client })

	// Occupy the worker with A's first job (it blocks sending to exec
	// until we receive), then stack the flood and B's single request.
	a.enqueue(&job{client: "A"})
	for i := 0; i < 99; i++ {
		a.enqueue(&job{client: "A"})
	}
	a.enqueue(&job{client: "B"})

	var order []string
	for i := 0; i < 4; i++ {
		select {
		case c := <-exec:
			order = append(order, c)
		case <-time.After(5 * time.Second):
			t.Fatalf("worker stalled after %v", order)
		}
	}
	sawB := -1
	for i, c := range order {
		if c == "B" {
			sawB = i
		}
	}
	// Round-robin serves B no later than the second dequeue after its
	// enqueue (the occupying job, one A job at worst, then B).
	if sawB < 0 || sawB > 2 {
		t.Fatalf("client B served at position %d of %v; flood starved it", sawB, order)
	}

	// Drain the rest so close() can finish.
	go func() {
		for range exec {
		}
	}()
	a.close()
	close(exec)
}

// TestAdmitterDrainsOnClose: close() returns only after every queued job
// executed — no admitted waiter is left hanging on a shutdown.
func TestAdmitterDrainsOnClose(t *testing.T) {
	var mu sync.Mutex
	ran := map[string]bool{}
	a := newAdmitter(4, func(j *job) {
		mu.Lock()
		ran[j.id] = true
		mu.Unlock()
	})
	const n = 200
	for i := 0; i < n; i++ {
		a.enqueue(&job{id: fmt.Sprint(i), client: fmt.Sprintf("c%d", i%7)})
	}
	a.close()
	mu.Lock()
	defer mu.Unlock()
	if len(ran) != n {
		t.Fatalf("close returned with %d/%d jobs executed", len(ran), n)
	}
	if got := a.queued.Load(); got != 0 {
		t.Fatalf("queued gauge = %d after drain", got)
	}
	if got := a.inflight.Load(); got != 0 {
		t.Fatalf("inflight gauge = %d after drain", got)
	}
}
