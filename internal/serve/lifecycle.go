package serve

// Service lifecycle: the accepting -> draining -> stopped state machine,
// graceful drain with a cancellation deadline, request budgets, the
// per-config circuit breaker, and request-ID assignment. DESIGN.md §16.

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"net/http"
	"sync/atomic"
	"time"
)

// Service states. Transitions are one-way: accepting -> draining ->
// stopped. Submissions are accepted only in stateAccepting; reads
// (status polls, tables, traces, metrics) work in every state so an
// operator can inspect a draining server.
const (
	stateAccepting int32 = iota
	stateDraining
	stateStopped
)

// DrainReport summarizes a graceful shutdown: how many pending jobs
// finished cleanly, how many were canceled at the deadline, and whether
// the deadline fired at all.
type DrainReport struct {
	// Pending is how many jobs were queued or running when drain began.
	Pending int `json:"pending"`
	// Completed finished (done or failed on their own terms) during the
	// drain window; Canceled were abandoned by the drain deadline.
	Completed int `json:"completed"`
	Canceled  int `json:"canceled"`
	// TimedOut reports the drain deadline fired before the pool emptied.
	TimedOut bool `json:"timed_out"`
	// DurationSeconds is the wall time the drain took.
	DurationSeconds float64 `json:"duration_seconds"`
}

// Drain gracefully shuts the server down: new submissions are rejected
// with 503 "draining" immediately, in-flight and queued jobs get up to
// timeout to finish (timeout <= 0 waits indefinitely) before their
// contexts are canceled, SSE subscribers receive their terminal summary
// (or an explicit "draining" event) and close, the final metrics window
// flushes, and the store is fsynced. Safe to call once; later calls
// (including Close after Drain) return immediately.
func (s *Server) Drain(timeout time.Duration) (DrainReport, error) {
	start := time.Now()
	if !s.state.CompareAndSwap(stateAccepting, stateDraining) {
		<-s.drained
		return DrainReport{}, nil
	}

	// Snapshot the jobs that are still pending: these are what the
	// report accounts for.
	s.mu.Lock()
	var pending []*job
	for _, j := range s.jobs {
		select {
		case <-j.done:
		default:
			pending = append(pending, j)
		}
	}
	s.mu.Unlock()

	// Arm the drain deadline: when it fires, every pending job's context
	// is canceled, which the cycle loop observes within one poll
	// interval and queued jobs observe on dequeue.
	timedOut := atomic.Bool{}
	var timer *time.Timer
	if timeout > 0 {
		timer = time.AfterFunc(timeout, func() {
			timedOut.Store(true)
			for _, j := range pending {
				j.cancel()
			}
		})
	}
	s.admit.close()
	if timer != nil {
		timer.Stop()
	}

	// All jobs have finished (cleanly or canceled). Let sweep SSE
	// subscribers flush their terminal events and exit.
	close(s.sseDrain)

	// Flush the final metrics window to subscribers and the JSONL stream
	// before tearing the window loop down.
	close(s.stopWin)
	<-s.winDone
	s.reg.CloseWindow(uint64(time.Since(s.start)/time.Second) + 1)

	rep := DrainReport{Pending: len(pending), TimedOut: timedOut.Load()}
	for _, j := range pending {
		switch j.state.get() {
		case jobCanceled, jobExpired:
			rep.Canceled++
		default:
			rep.Completed++
		}
	}
	rep.DurationSeconds = time.Since(start).Seconds()

	var err error
	if serr := s.st.Sync(); serr != nil {
		err = serr
	}
	if s.jsonl != nil {
		if ferr := s.jsonl.Flush(); ferr != nil && err == nil {
			err = ferr
		}
	}
	s.state.Store(stateStopped)
	close(s.drained)
	return rep, err
}

// draining reports whether the server has left the accepting state.
func (s *Server) draining() bool { return s.state.Load() != stateAccepting }

// ---------------------------------------------------------------------
// Request budgets

// errDraining and errOverloaded are admission rejections with dedicated
// status codes (503 + draining, 429 + Retry-After).
var (
	errDraining   = errors.New("server is draining")
	errOverloaded = errors.New("admission queue is full")
)

// budgetFor resolves the effective request budget: the server's
// -request-timeout default, optionally shortened — never extended — by
// the client's X-Regless-Timeout header. Returns 0 for "no deadline".
func (s *Server) budgetFor(r *http.Request) (time.Duration, error) {
	budget := s.cfg.RequestTimeout
	h := r.Header.Get("X-Regless-Timeout")
	if h == "" {
		return budget, nil
	}
	d, err := time.ParseDuration(h)
	if err != nil || d <= 0 {
		return 0, fmt.Errorf("bad X-Regless-Timeout %q", h)
	}
	if budget <= 0 || d < budget {
		return d, nil
	}
	return budget, nil
}

// retryAfterSeconds estimates when shedding will clear: roughly the
// queue's service time at current depth, clamped to [1s, 30s].
func (s *Server) retryAfterSeconds() int {
	workers := int64(s.cfg.Opts.Parallelism)
	if workers < 1 {
		workers = 1
	}
	est := 1 + s.admit.queued.Load()/workers
	if est < 1 {
		est = 1
	}
	if est > 30 {
		est = 30
	}
	return int(est)
}

// ---------------------------------------------------------------------
// Circuit breaker

// breakerKey quarantines one simulation configuration. Capacity is part
// of the key: a capacity-512 config tripping the sanitizer says nothing
// about capacity 768.
type breakerKey struct {
	bench    string
	scheme   string
	capacity int
}

func (k breakerKey) String() string {
	return fmt.Sprintf("%s/%s/%d", k.bench, k.scheme, k.capacity)
}

// noteDiagnostic counts one sanitizer/watchdog Diagnostic against the
// config and trips the breaker at the threshold. Deduped re-submissions
// of an already-failed job call this too (countOnly path in submit), so
// a poisoned config that clients keep re-requesting trips even though
// the job map never re-simulates the identical key — the breaker's job
// is to stop *variations* of the config (deep-dive report keys, warm
// restarts) from re-simulating it forever.
func (s *Server) noteDiagnostic(k breakerKey) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.breakerOpen[k] {
		return
	}
	s.breakerHits[k]++
	if s.breakerHits[k] >= s.breakerThreshold() {
		s.breakerOpen[k] = true
		s.cBreakerTrips.Inc()
	}
}

func (s *Server) breakerThreshold() int {
	if s.cfg.BreakerThreshold > 0 {
		return s.cfg.BreakerThreshold
	}
	return 3
}

// breakerBlocks reports whether the config is quarantined.
func (s *Server) breakerBlocks(k breakerKey) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.breakerOpen[k]
}

// openBreakers lists quarantined configs for /healthz.
func (s *Server) openBreakers() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.breakerOpen))
	for k := range s.breakerOpen {
		out = append(out, k.String())
	}
	return out
}

// ---------------------------------------------------------------------
// Request IDs

// newRequestID mints a process-unique request id. The boot component
// distinguishes restarts so ids in persisted diagnostics stay unique
// across a server's lifetimes.
func (s *Server) newRequestID() string {
	return fmt.Sprintf("r-%s-%d", s.bootID, s.reqSeq.Add(1))
}

// requestID returns the client-provided X-Request-ID or mints one.
// Client-provided ids are truncated rather than rejected: they are
// annotations, not addresses.
func (s *Server) requestID(r *http.Request) string {
	if id := r.Header.Get("X-Request-ID"); id != "" {
		if len(id) > 128 {
			id = id[:128]
		}
		return id
	}
	return s.newRequestID()
}

// bootIDFrom derives the server's boot id from its start time.
func bootIDFrom(start time.Time) string {
	sum := sha256.Sum256([]byte(start.Format(time.RFC3339Nano)))
	return hex.EncodeToString(sum[:4])
}
