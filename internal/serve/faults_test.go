package serve

import (
	"fmt"
	"net/http"
	"strings"
	"testing"

	"repro/internal/experiments"
	"repro/internal/faults"
)

// faultOpts arms one fault class on a sanitized, watchdog-bounded server
// (the same shape as the experiment-layer fault matrix: nw at 8 warps
// finishes in ~1100 cycles, so cycle 200 lands mid-run).
func faultOpts(t *testing.T, spec string) experiments.Options {
	t.Helper()
	plan, err := faults.Parse(spec)
	if err != nil {
		t.Fatalf("Parse(%q): %v", spec, err)
	}
	o := testOpts()
	o.Watchdog = 20_000
	o.Sanitize = true
	o.Faults = plan
	return o
}

// TestServeFaultMatrix extends the robustness contract to the service: a
// fault-armed server classifies every injected run as tolerated (done) or
// detected (failed with a structured Diagnostic in the API response, and
// /healthz degraded) — and the worker pool survives either way, answering
// the next request instead of hanging or exiting the process.
func TestServeFaultMatrix(t *testing.T) {
	for _, class := range faults.Classes() {
		spec := fmt.Sprintf("%s@200; seed=3", class)
		t.Run(string(class), func(t *testing.T) {
			s := newTestServer(t, t.TempDir(), faultOpts(t, spec))
			defer s.Close()
			h := s.Handler()

			var st RunStatus
			code := doJSON(t, h, "POST", "/v1/runs?wait=1", "matrix", RunRequest{Bench: "nw", Scheme: "regless"}, &st)
			if code != http.StatusOK {
				t.Fatalf("POST run = %d", code)
			}
			switch st.Status {
			case "done":
				if len(st.Result) == 0 {
					t.Fatal("tolerated run served no result")
				}
				t.Log("tolerated")
			case "failed":
				if st.Error == "" {
					t.Fatal("failed run carries no error report")
				}
				if st.Diagnostic != nil {
					if st.Diagnostic.Component == "" || st.Diagnostic.Violation == "" {
						t.Fatalf("diagnostic names no component: %+v", st.Diagnostic)
					}
					if st.Diagnostic.Component == "sim/maxcycles" {
						t.Fatalf("run hung until MaxCycles; watchdog/sanitizer never fired: %s", st.Error)
					}
					t.Logf("detected by %s", st.Diagnostic.Component)
				} else {
					t.Logf("failed without structured diagnostic: %s", st.Error)
				}
				assertDegraded(t, s, string(class))
			default:
				t.Fatalf("run finished %q", st.Status)
			}

			// The pool is alive either way: a clean follow-up point (the
			// fault seed targets nw/regless state; baseline runs don't
			// have to succeed under every class, they just must answer).
			var st2 RunStatus
			if code := doJSON(t, h, "POST", "/v1/runs?wait=1", "matrix", RunRequest{Bench: "bfs", Scheme: "baseline"}, &st2); code != http.StatusOK {
				t.Fatalf("follow-up POST = %d; pool wedged", code)
			}
			if st2.Status != "done" && st2.Status != "failed" {
				t.Fatalf("follow-up run never completed: %q", st2.Status)
			}
		})
	}
}

// assertDegraded checks the health endpoint flipped to 503 and attributes
// the failure to the armed fault campaign.
func assertDegraded(t *testing.T, s *Server, class string) {
	t.Helper()
	var h Health
	if code := doJSON(t, s.Handler(), "GET", "/healthz", "", nil, &h); code != http.StatusServiceUnavailable {
		t.Fatalf("healthz after failure = %d, want 503", code)
	}
	if h.Status != "degraded" || h.Failures == 0 {
		t.Fatalf("health = %+v, want degraded with failures", h)
	}
	if !h.Sanitize {
		t.Error("health does not report the sanitizer armed")
	}
	found := false
	for _, c := range h.ArmedFaults {
		if c == class {
			found = true
		}
	}
	if !found {
		t.Errorf("armed_faults %v does not name %s", h.ArmedFaults, class)
	}
	if len(h.LastFailures) == 0 {
		t.Error("health carries no failure briefs")
	}
}

// TestServeFaultDetectionPinned pins the known-detected case from the
// experiment-layer matrix: a corrupted OSU tag under RegLess is caught by
// the OSU partition invariant, and the API surfaces that exact component.
func TestServeFaultDetectionPinned(t *testing.T) {
	s := newTestServer(t, t.TempDir(), faultOpts(t, "osu-tag@200; seed=3"))
	defer s.Close()

	var st RunStatus
	code := doJSON(t, s.Handler(), "POST", "/v1/runs?wait=1", "pinned", RunRequest{Bench: "nw", Scheme: "regless"}, &st)
	if code != http.StatusOK {
		t.Fatalf("POST run = %d", code)
	}
	if st.Status != "failed" {
		t.Fatalf("osu-tag fault was not detected: status %q", st.Status)
	}
	if st.Diagnostic == nil {
		t.Fatalf("no structured diagnostic; error: %s", st.Error)
	}
	if !strings.HasPrefix(st.Diagnostic.Component, "osu/") {
		t.Fatalf("detected by %q, want osu/*", st.Diagnostic.Component)
	}
	if len(st.Diagnostic.FaultsApplied) == 0 {
		t.Error("diagnostic does not list the applied fault")
	}
	assertDegraded(t, s, "osu-tag")

	// Failed runs must never be persisted: a fault-armed store entry
	// would otherwise be served as truth later.
	if n, err := s.Store().Len(); err != nil || n != 0 {
		t.Fatalf("failed run persisted %d entries (%v)", n, err)
	}
}
