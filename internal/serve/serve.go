// Package serve is the sweep service: an HTTP JSON API over the
// experiment engine, backed by the persistent content-addressed run
// cache in internal/store. Simulations are deterministic, so every
// completed result is cacheable forever; the service turns that into the
// serving-stack shape of DESIGN.md §14 — admission with per-client
// fairness, bounded in-flight simulation, singleflight dedupe of
// identical submissions, a disk store that stays warm across restarts,
// and a health model that surfaces sanitizer/watchdog Diagnostics as
// per-run error reports and a degraded /healthz instead of process exit.
//
// Layering per request:
//
//	HTTP handler  -> canonical store.Key (content-addressed job id)
//	  jobs map    -> submissions of the same key attach to one job (dedupe)
//	  admitter    -> per-client round-robin FIFO into a bounded pool
//	  store.Get   -> disk hit: serve the stored bytes verbatim
//	  Suite.Get   -> miss: simulate (in-memory singleflight), store.Put
//
// Because the store holds the marshaled response payload itself, a hit —
// in this process or any later one — is byte-identical to the response
// the original miss produced.
package serve

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/experiments"
	"repro/internal/faults"
	"repro/internal/mem"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/sanitizer"
	"repro/internal/sim"
	"repro/internal/store"
)

// Config parameterizes a server. Every simulation this server runs uses
// the same Options (warps, SMs, cycle bounds, robustness
// instrumentation); requests choose the (bench, scheme, capacity) point.
type Config struct {
	// Opts configures the embedded experiment suite. Parallelism bounds
	// the admission pool's in-flight simulations (0: GOMAXPROCS).
	Opts experiments.Options
	// StoreDir roots the persistent result store (required).
	StoreDir string
	// MetricsWriter, when non-nil, receives the server's own JSONL
	// window stream (hit/miss/queue counters); MetricsEvery is the
	// window period (default 1s). Windows close on this period whether
	// or not a writer is configured — /v1/metricsz/stream subscribers
	// receive the same stream live.
	MetricsWriter io.Writer
	MetricsEvery  time.Duration

	// GitSHA stamps /healthz (ldflags or VCS build info; "" omits it).
	GitSHA string
	// EnablePprof mounts net/http/pprof under /debug/pprof/.
	EnablePprof bool
	// SSEHeartbeat is the keepalive comment interval on SSE streams
	// (default 15s); SSEBuffer is each subscriber's bounded frame buffer
	// (default 64) — a slow client overflowing it loses frames and is
	// told so with a "dropped" marker event rather than stalling the
	// execution path.
	SSEHeartbeat time.Duration
	SSEBuffer    int

	// RequestTimeout is the default per-request simulation budget: a
	// job older than this is canceled mid-cycle-loop and reported as
	// "expired". Clients may shorten (never extend) it per request via
	// the X-Regless-Timeout header. 0 disables deadlines.
	RequestTimeout time.Duration
	// QueueLimit bounds the admission queue; submissions beyond it are
	// shed with 429 + Retry-After. 0 means the default (1024).
	QueueLimit int
	// BreakerThreshold is how many sanitizer Diagnostics a
	// (bench, scheme, capacity) config may accumulate before the
	// circuit breaker quarantines it (503 at admission). 0 means 3.
	BreakerThreshold int
	// StoreMaxBytes is the disk store's size budget (LRU eviction);
	// 0 disables eviction. See store.Options.MaxBytes.
	StoreMaxBytes int64
}

// RunRequest names one simulation in the server's configuration space.
type RunRequest struct {
	Bench  string `json:"bench"`
	Scheme string `json:"scheme"`
	// Capacity is the RegLess OSU capacity (registers/SM); 0 means the
	// paper default for RegLess schemes and is ignored for the rest.
	Capacity int `json:"capacity,omitempty"`
	// Report opts this run into deep-dive analysis: the named sections
	// ("stalls", "preload") are computed from an event-instrumented
	// execution and stored on the RunResult. Reported runs are cached
	// under a distinct key, so they never alias plain results.
	Report []string `json:"report,omitempty"`
}

// SweepRequest is the cross product of its fields, in deterministic
// (bench, scheme, capacity) order. Capacities defaults to the paper
// default; Benchmarks and Schemes must be non-empty.
type SweepRequest struct {
	Benchmarks []string `json:"benchmarks"`
	Schemes    []string `json:"schemes"`
	Capacities []int    `json:"capacities,omitempty"`
}

// RunResult is the cacheable payload served for one completed simulation:
// exactly the statistics a direct Suite.Get exposes, plus the server
// configuration that produced them. Its JSON encoding is what the store
// persists, so hits are byte-identical to the original computation.
type RunResult struct {
	Bench    string `json:"bench"`
	Scheme   string `json:"scheme"`
	Capacity int    `json:"capacity"`
	Warps    int    `json:"warps"`
	SMs      int    `json:"sms"`

	Stats sim.Stats         `json:"stats"`
	Prov  sim.ProviderStats `json:"provider"`
	Mem   mem.Stats         `json:"mem"`

	// Report carries the requested deep-dive sections (nil — and omitted
	// from the JSON — for plain runs, so pre-existing cache entries and
	// payload bytes are unchanged).
	Report *RunReport `json:"report,omitempty"`
}

// RunStatus is the poll/fetch view of one submitted run.
type RunStatus struct {
	ID     string `json:"id"`
	Status string `json:"status"` // queued | running | done | failed | expired | canceled
	// RequestID is the X-Request-ID of the submission that created the
	// job (omitted from Result payloads — those stay byte-identical to
	// the stored simulation output).
	RequestID string `json:"request_id,omitempty"`
	// Cached reports the result was served from the disk store.
	Cached bool            `json:"cached,omitempty"`
	Result json.RawMessage `json:"result,omitempty"`
	// Error and Diagnostic carry the per-run failure report (sanitizer
	// invariant violation, watchdog trip, MaxCycles abort).
	Error      string                `json:"error,omitempty"`
	Diagnostic *sanitizer.Diagnostic `json:"diagnostic,omitempty"`
}

// SweepStatus is the poll view of a sweep: per-run statuses without the
// (potentially large) result payloads, which are fetched per run or as a
// rendered table.
type SweepStatus struct {
	ID        string      `json:"id"`
	Status    string      `json:"status"` // running | done | failed
	Total     int         `json:"total"`
	Completed int         `json:"completed"`
	Failed    int         `json:"failed"`
	Runs      []RunStatus `json:"runs"`
}

// Health is the /healthz report. Status is "ok" (HTTP 200) while the
// server is healthy; it degrades — always with HTTP 503 so load
// balancers stop routing — in priority order: "draining" (shutdown in
// progress), "overloaded" (admission queue at its limit), "degraded"
// (a run failed with a Diagnostic, or a circuit breaker is open).
type Health struct {
	Status        string  `json:"status"`
	GitSHA        string  `json:"git_sha,omitempty"`
	UptimeSeconds float64 `json:"uptime_seconds"`
	// StoreEntries counts the persisted results on disk (-1 when the
	// listing itself failed); StoreBytes is the entry-file total the GC
	// budget is enforced against.
	StoreEntries int   `json:"store_entries"`
	StoreBytes   int64 `json:"store_bytes"`
	Jobs         int   `json:"jobs"`
	Queued        int64   `json:"queued"`
	Inflight      int64   `json:"inflight"`
	Failures      uint64  `json:"failures"`
	// ArmedFaults, Sanitize, and Watchdog describe the robustness
	// campaign this server runs under, so a degraded status is
	// attributable to injection rather than mistaken for organic decay.
	ArmedFaults  []string       `json:"armed_faults,omitempty"`
	Sanitize     bool           `json:"sanitize,omitempty"`
	Watchdog     uint64         `json:"watchdog,omitempty"`
	LastFailures []FailureBrief `json:"last_failures,omitempty"`
	// Breakers lists quarantined (bench/scheme/capacity) configs.
	Breakers []string `json:"breakers,omitempty"`
}

// FailureBrief is one failed run in the health report.
type FailureBrief struct {
	ID        string `json:"id"`
	Bench     string `json:"bench"`
	Scheme    string `json:"scheme"`
	Component string `json:"component,omitempty"`
	Brief     string `json:"brief"`
}

// job states, stored atomically so poll handlers read them without locks.
const (
	jobQueued int32 = iota
	jobRunning
	jobDone
	jobFailed
	// jobExpired (request budget ran out) and jobCanceled (abandoned by
	// its clients or the drain deadline) are terminal like jobFailed but
	// say nothing about the simulation itself: they do not degrade
	// /healthz, do not count toward the breaker, and a later submission
	// of the same key re-runs instead of inheriting them.
	jobExpired
	jobCanceled
)

// job is one admitted simulation, shared by every submission of its key.
// done closes after the final fields (payload, errText, diag) are set, so
// any reader that observed the closed channel reads them race-free.
type job struct {
	id     string
	key    store.Key
	client string
	// reqID is the X-Request-ID of the submission that created the job —
	// the end-to-end trace handle echoed in statuses and Diagnostics.
	reqID string

	// ctx carries the job's request budget; cancel is safe to call any
	// number of times. The cycle loop polls ctx, so canceling frees the
	// pool slot instead of simulating to completion.
	ctx    context.Context
	cancel context.CancelFunc
	// waiters counts handlers blocked on the job right now; pinned marks
	// that some submission intends to poll later (async submit). A job
	// whose last waiter disconnects without a pin is abandoned.
	waiters atomic.Int64
	pinned  atomic.Bool

	state stateCell
	done  chan struct{}

	// trace spans the job's life from submission; qspan is the
	// admission-queue wait opened at submit and closed when a pool
	// worker picks the job up.
	trace *obs.Trace
	qspan obs.SpanID

	payload json.RawMessage
	cached  bool
	errText string
	diag    *sanitizer.Diagnostic
}

// abandonedFinal reports the job ended by cancellation/expiry rather
// than by computing anything — such entries never satisfy a later
// submission of the same key.
func (j *job) abandonedFinal() bool {
	select {
	case <-j.done:
	default:
		return false
	}
	st := j.state.get()
	return st == jobExpired || st == jobCanceled
}

type sweep struct {
	id   string
	jobs []*job
}

// Server is the sweep service. Create with New, mount Handler, and Close
// to drain the pool and flush metrics.
type Server struct {
	cfg   Config
	suite *experiments.Suite
	st    *store.Store
	admit *admitter

	faultsSpec string
	// chaos is the serve-level fault injector (disk-full, slow-disk,
	// store-corrupt, client-abort, clock-skew), split off the config's
	// fault plan; the sim-level clauses go to the suite. Nil-safe.
	chaos *faults.Injector

	reg    *metrics.Registry
	jsonl  *metrics.JSONLWriter
	winHub *winHub
	// metrics counters (atomic: counted from handlers and pool workers).
	cHTTPRequests, cHTTPErrors              metrics.AtomicCounter
	cSubmissions, cDedup                    metrics.AtomicCounter
	cHits, cMisses, cFailures, cStoreErrors metrics.AtomicCounter
	cSSEDropped                             metrics.AtomicCounter
	cShed, cExpired, cCanceled              metrics.AtomicCounter
	cBreakerTrips, cBreakerRejects          metrics.AtomicCounter
	// span-latency histograms, observed at the execute/handler span
	// boundaries (names frozen; see DESIGN.md §15).
	hSpanQueue, hSpanStoreGet, hSpanSimulate metrics.Histogram
	hSpanAssemble, hSpanStorePut, hHTTP      metrics.Histogram

	mu     sync.Mutex
	jobs   map[string]*job
	sweeps map[string]*sweep
	recent []FailureBrief
	// breakerHits/breakerOpen quarantine poisoned configs (under mu).
	breakerHits map[breakerKey]int
	breakerOpen map[breakerKey]bool

	// sseMu guards runSubs: per-job SSE subscriber lists, appended at
	// stream registration and drained by publishRun when the job ends.
	sseMu   sync.Mutex
	runSubs map[string][]*sseStream

	// testExecGate, when non-nil, is called at the top of execute —
	// tests use it to hold jobs while they stage SSE subscribers.
	testExecGate func(*job)

	start   time.Time
	stopWin chan struct{}
	winDone chan struct{}
	handler http.Handler

	// Lifecycle: accepting -> draining -> stopped (see lifecycle.go).
	// sseDrain closes once every pending job has resolved during drain
	// (sweep streams flush terminal events); drained closes when the
	// drain completes end to end.
	state    atomic.Int32
	sseDrain chan struct{}
	drained  chan struct{}

	// Request-ID minting and the client-abort chaos request counter.
	bootID string
	reqSeq atomic.Uint64
	reqNum atomic.Uint64
}

// New opens the store and starts the admission pool and metrics loop.
func New(cfg Config) (*Server, error) {
	if cfg.Opts.Warps < 1 {
		return nil, fmt.Errorf("serve: warps must be at least 1, got %d", cfg.Opts.Warps)
	}
	if cfg.Opts.MaxCycles < 1 {
		return nil, fmt.Errorf("serve: max-cycles must be at least 1")
	}
	if cfg.Opts.SMs < 1 {
		cfg.Opts.SMs = 1
	}
	if cfg.Opts.Parallelism < 1 {
		cfg.Opts.Parallelism = runtime.GOMAXPROCS(0)
	}
	if cfg.MetricsEvery <= 0 {
		cfg.MetricsEvery = time.Second
	}
	if cfg.SSEHeartbeat <= 0 {
		cfg.SSEHeartbeat = 15 * time.Second
	}
	if cfg.SSEBuffer < 1 {
		cfg.SSEBuffer = 64
	}
	if cfg.QueueLimit < 1 {
		cfg.QueueLimit = 1024
	}
	// Split the fault plan: sim-level clauses go to the suite (and into
	// store keys — they change simulation output), serve-level clauses
	// arm the chaos injector shared by the store and the HTTP layer
	// (they must NOT change any result byte).
	simPlan, servePlan := cfg.Opts.Faults.Split()
	cfg.Opts.Faults = simPlan
	var chaos *faults.Injector
	if servePlan != nil {
		chaos = faults.NewInjector(servePlan)
	}
	st, err := store.OpenWith(cfg.StoreDir, store.Options{
		MaxBytes: cfg.StoreMaxBytes,
		Chaos:    chaos,
	})
	if err != nil {
		return nil, err
	}
	s := &Server{
		cfg:         cfg,
		suite:       experiments.NewSuite(cfg.Opts),
		st:          st,
		chaos:       chaos,
		jobs:        map[string]*job{},
		sweeps:      map[string]*sweep{},
		runSubs:     map[string][]*sseStream{},
		breakerHits: map[breakerKey]int{},
		breakerOpen: map[breakerKey]bool{},
		start:       time.Now(),
		stopWin:     make(chan struct{}),
		winDone:     make(chan struct{}),
		sseDrain:    make(chan struct{}),
		drained:     make(chan struct{}),
	}
	s.bootID = bootIDFrom(s.start)
	if cfg.Opts.Faults != nil {
		s.faultsSpec = cfg.Opts.Faults.String()
	}
	s.admit = newAdmitter(cfg.Opts.Parallelism, s.execute)
	s.initMetrics()
	s.initHandler()
	go s.windowLoop()
	return s, nil
}

func (s *Server) initMetrics() {
	s.reg = metrics.NewRegistry()
	s.cHTTPRequests = s.reg.AtomicCounter("serve/http_requests")
	s.cHTTPErrors = s.reg.AtomicCounter("serve/http_errors")
	s.cSubmissions = s.reg.AtomicCounter("serve/submissions")
	s.cDedup = s.reg.AtomicCounter("serve/dedup")
	s.cHits = s.reg.AtomicCounter("serve/hits")
	s.cMisses = s.reg.AtomicCounter("serve/misses")
	s.cFailures = s.reg.AtomicCounter("serve/failures")
	s.cStoreErrors = s.reg.AtomicCounter("serve/store_errors")
	s.cSSEDropped = s.reg.AtomicCounter("serve/sse_dropped")
	s.cShed = s.reg.AtomicCounter("serve/shed")
	s.cExpired = s.reg.AtomicCounter("serve/expired")
	s.cCanceled = s.reg.AtomicCounter("serve/canceled")
	s.cBreakerTrips = s.reg.AtomicCounter("serve/breaker_trips")
	s.cBreakerRejects = s.reg.AtomicCounter("serve/breaker_rejects")
	s.reg.Gauge("serve/queue_depth", func() uint64 { return clampGauge(s.admit.queued.Load()) })
	s.reg.Gauge("serve/inflight", func() uint64 { return clampGauge(s.admit.inflight.Load()) })
	s.reg.Gauge("store/puts", func() uint64 { return s.st.Stats().Puts })
	s.reg.Gauge("store/quarantined", func() uint64 { return s.st.Stats().Quarantined })
	s.reg.Gauge("store/recovered_temps", func() uint64 { return s.st.Stats().RecoveredTemps })
	s.reg.Gauge("store/bytes", func() uint64 { return clampGauge(s.st.Bytes()) })
	s.reg.Gauge("store/evictions", func() uint64 { return s.st.Stats().Evictions })
	s.reg.Gauge("store/gc_runs", func() uint64 { return s.st.Stats().GCRuns })
	s.reg.Gauge("store/gc_us", func() uint64 { return s.st.Stats().GCMicros })
	// Span-latency histograms in wall microseconds; bucket bounds span
	// 50us to 10s. Names and bounds are frozen — the Prometheus
	// exposition derives bucket labels from them.
	spanBounds := []uint64{50, 100, 250, 500, 1_000, 2_500, 5_000, 10_000, 25_000, 50_000,
		100_000, 250_000, 500_000, 1_000_000, 2_500_000, 5_000_000, 10_000_000}
	s.hSpanQueue = s.reg.AtomicHistogram("serve/span_queue_us", spanBounds...)
	s.hSpanStoreGet = s.reg.AtomicHistogram("serve/span_store_get_us", spanBounds...)
	s.hSpanSimulate = s.reg.AtomicHistogram("serve/span_simulate_us", spanBounds...)
	s.hSpanAssemble = s.reg.AtomicHistogram("serve/span_assemble_us", spanBounds...)
	s.hSpanStorePut = s.reg.AtomicHistogram("serve/span_store_put_us", spanBounds...)
	s.hHTTP = s.reg.AtomicHistogram("serve/http_us", spanBounds...)
	// Windows always close (windowLoop); the hub fans each one out to
	// the JSONL file (when configured) and to live SSE subscribers.
	s.winHub = newWinHub(s.cfg.SSEBuffer)
	if s.cfg.MetricsWriter != nil {
		s.jsonl = metrics.NewJSONLWriter(s.cfg.MetricsWriter)
		s.winHub.fwd = s.jsonl.Run(metrics.String("component", "serve"))
	}
	s.reg.SetSink(s.winHub)
}

func clampGauge(v int64) uint64 {
	if v < 0 {
		return 0
	}
	return uint64(v)
}

// windowLoop closes a metrics window every MetricsEvery on a wall-clock
// axis (seconds since start); the final partial window closes at Close.
func (s *Server) windowLoop() {
	defer close(s.winDone)
	t := time.NewTicker(s.cfg.MetricsEvery)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			s.reg.CloseWindow(uint64(time.Since(s.start) / time.Second))
		case <-s.stopWin:
			return
		}
	}
}

// Close is Drain with no deadline: every admitted job completes (the
// watchdog and MaxCycles bound each simulation), the final metrics
// window closes, the JSONL stream flushes, and the store fsyncs.
// Idempotent, and safe after Drain.
func (s *Server) Close() error {
	_, err := s.Drain(0)
	return err
}

// Store exposes the underlying store (tests assert consistency on it).
func (s *Server) Store() *store.Store { return s.st }

// Metrics exposes the server's registry (tests read counters by name).
func (s *Server) Metrics() *metrics.Registry { return s.reg }

// ---------------------------------------------------------------------
// Submission and execution

// KeyFor canonicalizes a run request against this server's configuration.
// Errors are admission errors (unknown bench/scheme, bad capacity) and
// map to 4xx.
func (s *Server) KeyFor(req RunRequest) (store.Key, error) {
	scheme, err := experiments.ParseScheme(req.Scheme)
	if err != nil {
		return store.Key{}, err
	}
	if req.Capacity < 0 {
		return store.Key{}, fmt.Errorf("negative capacity %d", req.Capacity)
	}
	capacity := req.Capacity
	if capacity == 0 && (scheme == experiments.SchemeRegLess || scheme == experiments.SchemeRegLessNC) {
		capacity = experiments.DefaultCapacity
	}
	report, err := canonicalizeReport(req.Report)
	if err != nil {
		return store.Key{}, err
	}
	ksha, err := KernelHash(req.Bench)
	if err != nil {
		return store.Key{}, err
	}
	k := store.Key{
		KernelSHA: ksha,
		Bench:     req.Bench,
		Scheme:    string(scheme),
		Capacity:  capacity,
		Warps:     s.cfg.Opts.Warps,
		SMs:       s.cfg.Opts.SMs,
		MaxCycles: s.cfg.Opts.MaxCycles,
		Watchdog:  s.cfg.Opts.Watchdog,
		Sanitize:  s.cfg.Opts.Sanitize,
		Faults:    s.faultsSpec,
		Report:    report,
	}.Normalized()
	if err := k.Validate(); err != nil {
		return store.Key{}, err
	}
	return k, nil
}

// submit admits one run (or attaches to the job already covering its
// key) and returns the shared job. Admission can reject: errDraining
// (shutdown in progress, 503), errOverloaded (queue at its limit, 429),
// or a quarantined config (breaker open, 503).
func (s *Server) submit(key store.Key, client, reqID string, budget time.Duration) (*job, error) {
	id, err := key.Hash()
	if err != nil {
		return nil, err
	}
	if s.draining() {
		return nil, errDraining
	}
	bk := breakerKey{bench: key.Bench, scheme: key.Scheme, capacity: key.Capacity}
	if s.breakerBlocks(bk) {
		s.cBreakerRejects.Inc()
		return nil, fmt.Errorf("config %s is quarantined after repeated diagnostics", bk)
	}
	s.cSubmissions.Inc()
	s.mu.Lock()
	if j, ok := s.jobs[id]; ok && !j.abandonedFinal() {
		s.mu.Unlock()
		s.cDedup.Inc()
		// A re-submission of a config that already failed with a
		// Diagnostic counts against the breaker even though the job map
		// never re-simulates the identical key: the breaker's purpose is
		// to stop variations of the config from re-simulating forever.
		if j.state.get() == jobFailed && j.diag != nil {
			s.noteDiagnostic(bk)
		}
		return j, nil
	}
	j := &job{id: id, key: key, client: client, reqID: reqID, done: make(chan struct{})}
	if budget > 0 {
		j.ctx, j.cancel = context.WithTimeout(context.Background(), budget)
	} else {
		j.ctx, j.cancel = context.WithCancel(context.Background())
	}
	// The queue span starts at the trace epoch (offset 0) so the child
	// spans tile the root exactly from its first microsecond.
	j.trace = obs.NewTrace("run")
	j.qspan = j.trace.StartAt(obs.Root, "queue", 0)
	// Enqueue while still holding s.mu (admit workers never take s.mu
	// with a.mu held, so the nesting is one-way): the job is visible in
	// s.jobs only if admission accepted it, and a shed submission leaves
	// no trace to dedup against.
	if !s.admit.tryEnqueue(j, s.cfg.QueueLimit) {
		s.mu.Unlock()
		j.cancel()
		s.cShed.Inc()
		return nil, errOverloaded
	}
	s.jobs[id] = j
	s.mu.Unlock()
	return j, nil
}

// execute runs one admitted job on a pool worker: disk hit, else
// simulate through the suite's singleflight cache and persist. The job's
// trace records the phases as sibling spans that tile the run span
// exactly: every boundary timestamp is read once and closes one span
// where it opens the next.
func (s *Server) execute(j *job) {
	if gate := s.testExecGate; gate != nil {
		gate(j)
	}
	defer j.cancel()
	j.state.set(jobRunning)
	defer s.publishRun(j)
	tr := j.trace
	t0 := tr.Now()
	tr.EndAt(j.qspan, t0)
	s.hSpanQueue.Observe(uint64(t0))

	if err := j.ctx.Err(); err != nil {
		// Abandoned (or expired) while queued: free the slot without
		// touching the store or the suite.
		tr.CloseAt(t0)
		s.finishAbandoned(j, err)
		return
	}

	sg := tr.StartAt(obs.Root, "store-get", t0)
	payload, ok, err := s.st.Get(j.key)
	t1 := tr.Now()
	tr.EndAt(sg, t1)
	s.hSpanStoreGet.Observe(uint64(t1 - t0))
	if err == nil && ok {
		s.cHits.Inc()
		j.payload = payload
		j.cached = true
		tr.CloseAt(t1)
		j.finish(jobDone)
		return
	} else if err != nil {
		s.cStoreErrors.Inc()
	}
	s.cMisses.Inc()

	simSpan := tr.StartAt(obs.Root, "simulate", t1)
	run, rep, err := s.simulateJob(obs.NewContext(j.ctx, tr, simSpan), j.key)
	t2 := tr.Now()
	tr.EndAt(simSpan, t2)
	s.hSpanSimulate.Observe(uint64(t2 - t1))
	if err != nil {
		if isAbandonErr(err) {
			tr.CloseAt(t2)
			s.finishAbandoned(j, err)
			return
		}
		j.errText = err.Error()
		var d *sanitizer.Diagnostic
		if errors.As(err, &d) {
			// Annotate a copy: the Diagnostic value is shared through the
			// suite's error cache with other requests.
			dc := *d
			dc.RequestID = j.reqID
			j.diag = &dc
			s.noteDiagnostic(breakerKey{bench: j.key.Bench, scheme: j.key.Scheme, capacity: j.key.Capacity})
		}
		s.recordFailure(j)
		tr.CloseAt(t2)
		j.finish(jobFailed)
		return
	}

	asm := tr.StartAt(obs.Root, "assemble", t2)
	res := s.resultFrom(run)
	res.Report = rep
	payload, merr := json.Marshal(res)
	t3 := tr.Now()
	tr.EndAt(asm, t3)
	s.hSpanAssemble.Observe(uint64(t3 - t2))
	if merr != nil {
		j.errText = merr.Error()
		s.recordFailure(j)
		tr.CloseAt(t3)
		j.finish(jobFailed)
		return
	}
	j.payload = payload

	sp := tr.StartAt(obs.Root, "store-put", t3)
	perr := s.st.Put(j.key, payload)
	t4 := tr.Now()
	tr.EndAt(sp, t4)
	s.hSpanStorePut.Observe(uint64(t4 - t3))
	if perr != nil {
		// The response is still served from memory; only persistence
		// for future processes failed.
		s.cStoreErrors.Inc()
	}
	tr.CloseAt(t4)
	j.finish(jobDone)
}

// simulateJob dispatches the key to the plain suite path or — when the
// key asks for deep-dive report sections — the instrumented path.
func (s *Server) simulateJob(ctx context.Context, key store.Key) (*experiments.Run, *RunReport, error) {
	if key.Report == "" {
		run, err := s.suite.GetCtx(ctx, key.Bench, experiments.Scheme(key.Scheme), key.Capacity)
		return run, nil, err
	}
	return s.simulateWithReport(ctx, key)
}

func (s *Server) resultFrom(r *experiments.Run) RunResult {
	return RunResult{
		Bench:    r.Bench,
		Scheme:   string(r.Scheme),
		Capacity: r.Capacity,
		Warps:    s.cfg.Opts.Warps,
		SMs:      s.cfg.Opts.SMs,
		Stats:    *r.Stats,
		Prov:     r.Prov,
		Mem:      r.Mem,
	}
}

// isAbandonErr reports the error is the request budget or cancellation
// surfacing through the cycle loop, not a simulation failure.
func isAbandonErr(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// finishAbandoned ends a job that stopped because its request went away
// (canceled) or its budget ran out (expired). Neither says anything
// about the simulation: no recordFailure, no healthz degradation, no
// breaker accounting.
func (s *Server) finishAbandoned(j *job, err error) {
	j.errText = err.Error()
	st := jobCanceled
	if errors.Is(err, context.DeadlineExceeded) {
		st = jobExpired
		s.cExpired.Inc()
	} else {
		s.cCanceled.Inc()
	}
	j.finish(st)
}

func (s *Server) recordFailure(j *job) {
	s.cFailures.Inc()
	fb := FailureBrief{ID: j.id, Bench: j.key.Bench, Scheme: j.key.Scheme, Brief: j.errText}
	if j.diag != nil {
		fb.Component = j.diag.Component
		fb.Brief = j.diag.Brief()
	}
	s.mu.Lock()
	s.recent = append(s.recent, fb)
	if len(s.recent) > 8 {
		s.recent = s.recent[len(s.recent)-8:]
	}
	s.mu.Unlock()
}

// stateCell wraps the job-state atomic so the zero job is queued.
type stateCell struct{ v atomic.Int32 }

func (c *stateCell) set(s int32)  { c.v.Store(s) }
func (c *stateCell) get() int32   { return c.v.Load() }
func (j *job) finish(state int32) { j.state.set(state); close(j.done) }

// status renders the job for a response; includeResult attaches the
// payload bytes (exactly as stored, so hits are byte-identical).
func (j *job) status(includeResult bool) RunStatus {
	st := RunStatus{ID: j.id, RequestID: j.reqID}
	select {
	case <-j.done:
	default:
		if j.state.get() == jobRunning {
			st.Status = "running"
		} else {
			st.Status = "queued"
		}
		return st
	}
	switch j.state.get() {
	case jobFailed:
		st.Status = "failed"
		st.Error = j.errText
		st.Diagnostic = j.diag
		return st
	case jobExpired:
		st.Status = "expired"
		st.Error = j.errText
		return st
	case jobCanceled:
		st.Status = "canceled"
		st.Error = j.errText
		return st
	}
	st.Status = "done"
	st.Cached = j.cached
	if includeResult {
		st.Result = j.payload
	}
	return st
}

// ---------------------------------------------------------------------
// HTTP layer

func (s *Server) initHandler() {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/runs", s.handlePostRun)
	mux.HandleFunc("GET /v1/runs/{id}", s.handleGetRun)
	mux.HandleFunc("GET /v1/runs/{id}/trace", s.handleRunTrace)
	mux.HandleFunc("POST /v1/sweeps", s.handlePostSweep)
	mux.HandleFunc("GET /v1/sweeps/{id}", s.handleGetSweep)
	mux.HandleFunc("GET /v1/sweeps/{id}/table", s.handleSweepTable)
	mux.HandleFunc("GET /v1/sweeps/{id}/events", s.handleSweepEvents)
	mux.HandleFunc("GET /v1/metricsz/stream", s.handleMetricsStream)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metricsz", s.handleMetricsz)
	if s.cfg.EnablePprof {
		mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	}
	s.handler = mux
}

// Handler returns the service's HTTP handler. The wrapper assigns (or
// echoes) the request's X-Request-ID, counts and times the request, and
// consults the client-abort chaos class — an injected abort severs the
// connection exactly as a real client disconnect would, which is the
// point: the abandonment paths get exercised deterministically.
func (s *Server) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if s.chaos != nil && s.chaos.AbortsClient(s.reqNum.Add(1)) {
			panic(http.ErrAbortHandler)
		}
		reqID := s.requestID(r)
		w.Header().Set("X-Request-ID", reqID)
		// Normalize onto the request so downstream handlers read one place.
		r.Header.Set("X-Request-ID", reqID)
		s.cHTTPRequests.Inc()
		start := time.Now()
		s.handler.ServeHTTP(w, r)
		s.hHTTP.Observe(uint64(time.Since(start) / time.Microsecond))
	})
}

// client identifies the fairness bucket: an explicit header, else one
// shared anonymous bucket.
func clientOf(r *http.Request) string {
	if c := r.Header.Get("X-Regless-Client"); c != "" {
		return c
	}
	return "anon"
}

func wantWait(r *http.Request) bool {
	v := r.URL.Query().Get("wait")
	return v == "1" || v == "true"
}

func (s *Server) httpError(w http.ResponseWriter, code int, format string, args ...any) {
	s.cHTTPErrors.Inc()
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

// decodeBody strictly decodes a JSON request body: unknown fields,
// trailing garbage, and bodies over 1 MiB are admission errors.
func decodeBody(w http.ResponseWriter, r *http.Request, v any) error {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return err
	}
	if dec.More() {
		return fmt.Errorf("trailing data after request object")
	}
	return nil
}

// waitJobs blocks for the jobs unless the client goes away first. Every
// waiting handler is accounted: when the last waiter of an unpinned job
// disconnects, the job is abandoned — its context cancels, the cycle
// loop (or the admission queue) observes it, and the pool slot frees
// instead of simulating for nobody.
func (s *Server) waitJobs(r *http.Request, jobs ...*job) bool {
	for _, j := range jobs {
		j.waiters.Add(1)
	}
	defer func() {
		for _, j := range jobs {
			if j.waiters.Add(-1) == 0 && !j.pinned.Load() {
				select {
				case <-j.done:
				default:
					j.cancel()
				}
			}
		}
	}()
	for _, j := range jobs {
		select {
		case <-j.done:
		case <-r.Context().Done():
			return false
		}
	}
	return true
}

// submitError maps an admission rejection to its HTTP shape.
func (s *Server) submitError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, errDraining):
		s.httpError(w, http.StatusServiceUnavailable, "%v", err)
	case errors.Is(err, errOverloaded):
		w.Header().Set("Retry-After", fmt.Sprint(s.retryAfterSeconds()))
		s.httpError(w, http.StatusTooManyRequests, "%v", err)
	default:
		s.httpError(w, http.StatusServiceUnavailable, "%v", err)
	}
}

func (s *Server) handlePostRun(w http.ResponseWriter, r *http.Request) {
	var req RunRequest
	if err := decodeBody(w, r, &req); err != nil {
		s.httpError(w, http.StatusBadRequest, "bad run request: %v", err)
		return
	}
	key, err := s.KeyFor(req)
	if err != nil {
		s.httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	budget, err := s.budgetFor(r)
	if err != nil {
		s.httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	j, err := s.submit(key, clientOf(r), r.Header.Get("X-Request-ID"), budget)
	if err != nil {
		s.submitError(w, err)
		return
	}
	if wantWait(r) {
		if !s.waitJobs(r, j) {
			s.httpError(w, http.StatusServiceUnavailable, "client gave up waiting")
			return
		}
		writeJSON(w, http.StatusOK, j.status(true))
		return
	}
	// An async submission intends to poll later: pin the job so it
	// survives having no waiter attached right now.
	j.pinned.Store(true)
	writeJSON(w, http.StatusAccepted, j.status(true))
}

func (s *Server) handleGetRun(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		s.httpError(w, http.StatusNotFound, "unknown run %q", id)
		return
	}
	if wantWait(r) && !s.waitJobs(r, j) {
		s.httpError(w, http.StatusServiceUnavailable, "client gave up waiting")
		return
	}
	writeJSON(w, http.StatusOK, j.status(true))
}

// expand builds the sweep's run requests in deterministic grid order.
func (req SweepRequest) expand() ([]RunRequest, error) {
	if len(req.Benchmarks) == 0 {
		return nil, fmt.Errorf("sweep names no benchmarks")
	}
	if len(req.Schemes) == 0 {
		return nil, fmt.Errorf("sweep names no schemes")
	}
	caps := req.Capacities
	if len(caps) == 0 {
		caps = []int{0} // KeyFor resolves 0 to the scheme's default
	}
	var out []RunRequest
	for _, b := range req.Benchmarks {
		for _, sc := range req.Schemes {
			for _, c := range caps {
				out = append(out, RunRequest{Bench: b, Scheme: sc, Capacity: c})
			}
		}
	}
	return out, nil
}

func (s *Server) handlePostSweep(w http.ResponseWriter, r *http.Request) {
	var req SweepRequest
	if err := decodeBody(w, r, &req); err != nil {
		s.httpError(w, http.StatusBadRequest, "bad sweep request: %v", err)
		return
	}
	runs, err := req.expand()
	if err != nil {
		s.httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	// Canonicalize the whole grid first so a bad cell rejects the sweep
	// before anything is admitted.
	keys := make([]store.Key, 0, len(runs))
	for _, rr := range runs {
		k, err := s.KeyFor(rr)
		if err != nil {
			s.httpError(w, http.StatusBadRequest, "%v", err)
			return
		}
		keys = append(keys, k)
	}
	budget, err := s.budgetFor(r)
	if err != nil {
		s.httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	client := clientOf(r)
	reqID := r.Header.Get("X-Request-ID")
	var jobs []*job
	seen := map[string]bool{}
	for _, k := range keys {
		j, err := s.submit(k, client, reqID, budget)
		if err != nil {
			s.submitError(w, err)
			return
		}
		if !seen[j.id] {
			seen[j.id] = true
			jobs = append(jobs, j)
		}
	}
	sw := &sweep{jobs: jobs}
	h := sha256.New()
	for _, j := range jobs {
		io.WriteString(h, j.id)
	}
	sw.id = hex.EncodeToString(h.Sum(nil))
	s.mu.Lock()
	if prev, ok := s.sweeps[sw.id]; ok {
		sw = prev
	} else {
		s.sweeps[sw.id] = sw
	}
	s.mu.Unlock()
	if wantWait(r) {
		if !s.waitJobs(r, sw.jobs...) {
			s.httpError(w, http.StatusServiceUnavailable, "client gave up waiting")
			return
		}
		writeJSON(w, http.StatusOK, sw.status())
		return
	}
	for _, j := range sw.jobs {
		j.pinned.Store(true)
	}
	writeJSON(w, http.StatusAccepted, sw.status())
}

func (sw *sweep) status() SweepStatus {
	st := SweepStatus{ID: sw.id, Total: len(sw.jobs)}
	for _, j := range sw.jobs {
		rs := j.status(false)
		st.Runs = append(st.Runs, rs)
		switch rs.Status {
		case "done":
			st.Completed++
		case "failed", "expired", "canceled":
			// Expired/canceled runs are terminal without a result: the
			// sweep cannot end "done", so they count as failures at the
			// sweep level even though they say nothing about the sim.
			st.Completed++
			st.Failed++
		}
	}
	switch {
	case st.Completed < st.Total:
		st.Status = "running"
	case st.Failed > 0:
		st.Status = "failed"
	default:
		st.Status = "done"
	}
	return st
}

func (s *Server) lookupSweep(id string) *sweep {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sweeps[id]
}

func (s *Server) handleGetSweep(w http.ResponseWriter, r *http.Request) {
	sw := s.lookupSweep(r.PathValue("id"))
	if sw == nil {
		s.httpError(w, http.StatusNotFound, "unknown sweep %q", r.PathValue("id"))
		return
	}
	if wantWait(r) && !s.waitJobs(r, sw.jobs...) {
		s.httpError(w, http.StatusServiceUnavailable, "client gave up waiting")
		return
	}
	writeJSON(w, http.StatusOK, sw.status())
}

func (s *Server) handleSweepTable(w http.ResponseWriter, r *http.Request) {
	sw := s.lookupSweep(r.PathValue("id"))
	if sw == nil {
		s.httpError(w, http.StatusNotFound, "unknown sweep %q", r.PathValue("id"))
		return
	}
	if wantWait(r) {
		if !s.waitJobs(r, sw.jobs...) {
			s.httpError(w, http.StatusServiceUnavailable, "client gave up waiting")
			return
		}
	} else {
		for _, j := range sw.jobs {
			select {
			case <-j.done:
			default:
				s.httpError(w, http.StatusConflict, "sweep still running (%s)", j.id)
				return
			}
		}
	}
	tb, err := sw.table(s.cfg.Opts.Warps, s.cfg.Opts.SMs)
	if err != nil {
		s.httpError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	io.WriteString(w, tb.Render())
}

// table renders the sweep's completed runs. The text is a pure function
// of the run results (no hit/miss annotations), so a cached pass renders
// byte-identically to the pass that computed it.
func (sw *sweep) table(warps, sms int) (*experiments.Table, error) {
	tb := &experiments.Table{
		ID:     "sweep",
		Title:  fmt.Sprintf("%d runs (warps %d, SMs %d)", len(sw.jobs), warps, sms),
		Header: []string{"bench", "scheme", "capacity", "cycles", "insns", "IPC", "SIMT eff"},
	}
	for _, j := range sw.jobs {
		switch j.state.get() {
		case jobFailed:
			tb.AddRow(j.key.Bench, j.key.Scheme, fmt.Sprint(j.key.Capacity), "error", j.errText, "", "")
			continue
		case jobExpired:
			tb.AddRow(j.key.Bench, j.key.Scheme, fmt.Sprint(j.key.Capacity), "expired", j.errText, "", "")
			continue
		case jobCanceled:
			tb.AddRow(j.key.Bench, j.key.Scheme, fmt.Sprint(j.key.Capacity), "canceled", j.errText, "", "")
			continue
		}
		var res RunResult
		if err := json.Unmarshal(j.payload, &res); err != nil {
			return nil, fmt.Errorf("decoding result %s: %w", j.id, err)
		}
		tb.AddRow(res.Bench, res.Scheme, fmt.Sprint(res.Capacity),
			fmt.Sprint(res.Stats.Cycles), fmt.Sprint(res.Stats.DynInsns),
			fmt.Sprintf("%.2f", res.Stats.IPC()), fmt.Sprintf("%.2f", res.Stats.SIMTEfficiency()))
	}
	return tb, nil
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	jobs := len(s.jobs)
	recent := append([]FailureBrief(nil), s.recent...)
	s.mu.Unlock()
	entries, err := s.st.Len()
	if err != nil {
		entries = -1
	}
	h := Health{
		GitSHA:        s.cfg.GitSHA,
		StoreEntries:  entries,
		StoreBytes:    s.st.Bytes(),
		UptimeSeconds: time.Since(s.start).Seconds(),
		Jobs:          jobs,
		Queued:        s.admit.queued.Load(),
		Inflight:      s.admit.inflight.Load(),
		Failures:      s.cFailures.Value(),
		Sanitize:      s.cfg.Opts.Sanitize,
		Watchdog:      s.cfg.Opts.Watchdog,
		LastFailures:  recent,
		Breakers:      s.openBreakers(),
	}
	if s.cfg.Opts.Faults != nil {
		h.ArmedFaults = s.cfg.Opts.Faults.ArmedClasses()
	}
	code := http.StatusOK
	h.Status = "ok"
	switch {
	case s.draining():
		h.Status = "draining"
		code = http.StatusServiceUnavailable
	case h.Queued >= int64(s.cfg.QueueLimit):
		h.Status = "overloaded"
		code = http.StatusServiceUnavailable
	case h.Failures > 0 || len(h.Breakers) > 0:
		h.Status = "degraded"
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, h)
}

// handleMetricsz serves the registry snapshot. The default JSON map is
// the original exposition (reglessload scrapes it); ?format=prom renders
// Prometheus text exposition 0.0.4 instead.
func (s *Server) handleMetricsz(w http.ResponseWriter, r *http.Request) {
	if r.URL.Query().Get("format") == "prom" {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := metrics.WritePrometheus(w, s.reg, "regless"); err != nil {
			s.cHTTPErrors.Inc()
		}
		return
	}
	snap := s.reg.Snapshot()
	out := make(map[string]uint64, len(snap))
	for _, smp := range snap {
		out[smp.Name] = smp.Value
	}
	writeJSON(w, http.StatusOK, out)
}

// handleRunTrace serves a completed run's span tree: JSON by default,
// Chrome trace-event JSON (?format=perfetto) for the shared viewer the
// cycle-level event exports use.
func (s *Server) handleRunTrace(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		s.httpError(w, http.StatusNotFound, "unknown run %q", id)
		return
	}
	select {
	case <-j.done:
	default:
		s.httpError(w, http.StatusConflict, "run %s still %s", id, j.status(false).Status)
		return
	}
	if r.URL.Query().Get("format") == "perfetto" {
		w.Header().Set("Content-Type", "application/json")
		if err := j.trace.WriteChrome(w, "run "+id); err != nil {
			s.cHTTPErrors.Inc()
		}
		return
	}
	resp := map[string]any{"id": id, "root": j.trace.Tree()}
	if j.reqID != "" {
		resp["request_id"] = j.reqID
	}
	writeJSON(w, http.StatusOK, resp)
}
