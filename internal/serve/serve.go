// Package serve is the sweep service: an HTTP JSON API over the
// experiment engine, backed by the persistent content-addressed run
// cache in internal/store. Simulations are deterministic, so every
// completed result is cacheable forever; the service turns that into the
// serving-stack shape of DESIGN.md §14 — admission with per-client
// fairness, bounded in-flight simulation, singleflight dedupe of
// identical submissions, a disk store that stays warm across restarts,
// and a health model that surfaces sanitizer/watchdog Diagnostics as
// per-run error reports and a degraded /healthz instead of process exit.
//
// Layering per request:
//
//	HTTP handler  -> canonical store.Key (content-addressed job id)
//	  jobs map    -> submissions of the same key attach to one job (dedupe)
//	  admitter    -> per-client round-robin FIFO into a bounded pool
//	  store.Get   -> disk hit: serve the stored bytes verbatim
//	  Suite.Get   -> miss: simulate (in-memory singleflight), store.Put
//
// Because the store holds the marshaled response payload itself, a hit —
// in this process or any later one — is byte-identical to the response
// the original miss produced.
package serve

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/experiments"
	"repro/internal/mem"
	"repro/internal/metrics"
	"repro/internal/sanitizer"
	"repro/internal/sim"
	"repro/internal/store"
)

// Config parameterizes a server. Every simulation this server runs uses
// the same Options (warps, SMs, cycle bounds, robustness
// instrumentation); requests choose the (bench, scheme, capacity) point.
type Config struct {
	// Opts configures the embedded experiment suite. Parallelism bounds
	// the admission pool's in-flight simulations (0: GOMAXPROCS).
	Opts experiments.Options
	// StoreDir roots the persistent result store (required).
	StoreDir string
	// MetricsWriter, when non-nil, receives the server's own JSONL
	// window stream (hit/miss/queue counters); MetricsEvery is the
	// window period (default 1s).
	MetricsWriter io.Writer
	MetricsEvery  time.Duration
}

// RunRequest names one simulation in the server's configuration space.
type RunRequest struct {
	Bench  string `json:"bench"`
	Scheme string `json:"scheme"`
	// Capacity is the RegLess OSU capacity (registers/SM); 0 means the
	// paper default for RegLess schemes and is ignored for the rest.
	Capacity int `json:"capacity,omitempty"`
}

// SweepRequest is the cross product of its fields, in deterministic
// (bench, scheme, capacity) order. Capacities defaults to the paper
// default; Benchmarks and Schemes must be non-empty.
type SweepRequest struct {
	Benchmarks []string `json:"benchmarks"`
	Schemes    []string `json:"schemes"`
	Capacities []int    `json:"capacities,omitempty"`
}

// RunResult is the cacheable payload served for one completed simulation:
// exactly the statistics a direct Suite.Get exposes, plus the server
// configuration that produced them. Its JSON encoding is what the store
// persists, so hits are byte-identical to the original computation.
type RunResult struct {
	Bench    string `json:"bench"`
	Scheme   string `json:"scheme"`
	Capacity int    `json:"capacity"`
	Warps    int    `json:"warps"`
	SMs      int    `json:"sms"`

	Stats sim.Stats         `json:"stats"`
	Prov  sim.ProviderStats `json:"provider"`
	Mem   mem.Stats         `json:"mem"`
}

// RunStatus is the poll/fetch view of one submitted run.
type RunStatus struct {
	ID     string `json:"id"`
	Status string `json:"status"` // queued | running | done | failed
	// Cached reports the result was served from the disk store.
	Cached bool            `json:"cached,omitempty"`
	Result json.RawMessage `json:"result,omitempty"`
	// Error and Diagnostic carry the per-run failure report (sanitizer
	// invariant violation, watchdog trip, MaxCycles abort).
	Error      string                `json:"error,omitempty"`
	Diagnostic *sanitizer.Diagnostic `json:"diagnostic,omitempty"`
}

// SweepStatus is the poll view of a sweep: per-run statuses without the
// (potentially large) result payloads, which are fetched per run or as a
// rendered table.
type SweepStatus struct {
	ID        string      `json:"id"`
	Status    string      `json:"status"` // running | done | failed
	Total     int         `json:"total"`
	Completed int         `json:"completed"`
	Failed    int         `json:"failed"`
	Runs      []RunStatus `json:"runs"`
}

// Health is the /healthz report. Status is "ok" (HTTP 200) until any run
// fails with a Diagnostic, then "degraded" (HTTP 503) with the recent
// failures attached — the service-shaped replacement for PR 4's
// render-and-exit path.
type Health struct {
	Status        string  `json:"status"`
	UptimeSeconds float64 `json:"uptime_seconds"`
	Jobs          int     `json:"jobs"`
	Queued        int64   `json:"queued"`
	Inflight      int64   `json:"inflight"`
	Failures      uint64  `json:"failures"`
	// ArmedFaults, Sanitize, and Watchdog describe the robustness
	// campaign this server runs under, so a degraded status is
	// attributable to injection rather than mistaken for organic decay.
	ArmedFaults  []string       `json:"armed_faults,omitempty"`
	Sanitize     bool           `json:"sanitize,omitempty"`
	Watchdog     uint64         `json:"watchdog,omitempty"`
	LastFailures []FailureBrief `json:"last_failures,omitempty"`
}

// FailureBrief is one failed run in the health report.
type FailureBrief struct {
	ID        string `json:"id"`
	Bench     string `json:"bench"`
	Scheme    string `json:"scheme"`
	Component string `json:"component,omitempty"`
	Brief     string `json:"brief"`
}

// job states, stored atomically so poll handlers read them without locks.
const (
	jobQueued int32 = iota
	jobRunning
	jobDone
	jobFailed
)

// job is one admitted simulation, shared by every submission of its key.
// done closes after the final fields (payload, errText, diag) are set, so
// any reader that observed the closed channel reads them race-free.
type job struct {
	id     string
	key    store.Key
	client string

	state stateCell
	done  chan struct{}

	payload json.RawMessage
	cached  bool
	errText string
	diag    *sanitizer.Diagnostic
}

type sweep struct {
	id   string
	jobs []*job
}

// Server is the sweep service. Create with New, mount Handler, and Close
// to drain the pool and flush metrics.
type Server struct {
	cfg   Config
	suite *experiments.Suite
	st    *store.Store
	admit *admitter

	faultsSpec string

	reg   *metrics.Registry
	jsonl *metrics.JSONLWriter
	// metrics counters (atomic: counted from handlers and pool workers).
	cHTTPRequests, cHTTPErrors              metrics.AtomicCounter
	cSubmissions, cDedup                    metrics.AtomicCounter
	cHits, cMisses, cFailures, cStoreErrors metrics.AtomicCounter

	mu     sync.Mutex
	jobs   map[string]*job
	sweeps map[string]*sweep
	recent []FailureBrief

	start    time.Time
	stopWin  chan struct{}
	winDone  chan struct{}
	handler  http.Handler
	closedMu sync.Mutex
	closed   bool
}

// New opens the store and starts the admission pool and metrics loop.
func New(cfg Config) (*Server, error) {
	if cfg.Opts.Warps < 1 {
		return nil, fmt.Errorf("serve: warps must be at least 1, got %d", cfg.Opts.Warps)
	}
	if cfg.Opts.MaxCycles < 1 {
		return nil, fmt.Errorf("serve: max-cycles must be at least 1")
	}
	if cfg.Opts.SMs < 1 {
		cfg.Opts.SMs = 1
	}
	if cfg.Opts.Parallelism < 1 {
		cfg.Opts.Parallelism = runtime.GOMAXPROCS(0)
	}
	if cfg.MetricsEvery <= 0 {
		cfg.MetricsEvery = time.Second
	}
	st, err := store.Open(cfg.StoreDir)
	if err != nil {
		return nil, err
	}
	s := &Server{
		cfg:     cfg,
		suite:   experiments.NewSuite(cfg.Opts),
		st:      st,
		jobs:    map[string]*job{},
		sweeps:  map[string]*sweep{},
		start:   time.Now(),
		stopWin: make(chan struct{}),
		winDone: make(chan struct{}),
	}
	if cfg.Opts.Faults != nil {
		s.faultsSpec = cfg.Opts.Faults.String()
	}
	s.admit = newAdmitter(cfg.Opts.Parallelism, s.execute)
	s.initMetrics()
	s.initHandler()
	go s.windowLoop()
	return s, nil
}

func (s *Server) initMetrics() {
	s.reg = metrics.NewRegistry()
	s.cHTTPRequests = s.reg.AtomicCounter("serve/http_requests")
	s.cHTTPErrors = s.reg.AtomicCounter("serve/http_errors")
	s.cSubmissions = s.reg.AtomicCounter("serve/submissions")
	s.cDedup = s.reg.AtomicCounter("serve/dedup")
	s.cHits = s.reg.AtomicCounter("serve/hits")
	s.cMisses = s.reg.AtomicCounter("serve/misses")
	s.cFailures = s.reg.AtomicCounter("serve/failures")
	s.cStoreErrors = s.reg.AtomicCounter("serve/store_errors")
	s.reg.Gauge("serve/queue_depth", func() uint64 { return clampGauge(s.admit.queued.Load()) })
	s.reg.Gauge("serve/inflight", func() uint64 { return clampGauge(s.admit.inflight.Load()) })
	s.reg.Gauge("store/puts", func() uint64 { return s.st.Stats().Puts })
	s.reg.Gauge("store/quarantined", func() uint64 { return s.st.Stats().Quarantined })
	s.reg.Gauge("store/recovered_temps", func() uint64 { return s.st.Stats().RecoveredTemps })
	if s.cfg.MetricsWriter != nil {
		s.jsonl = metrics.NewJSONLWriter(s.cfg.MetricsWriter)
		s.reg.SetSink(s.jsonl.Run(metrics.String("component", "serve")))
	}
}

func clampGauge(v int64) uint64 {
	if v < 0 {
		return 0
	}
	return uint64(v)
}

// windowLoop closes a metrics window every MetricsEvery on a wall-clock
// axis (seconds since start); the final partial window closes at Close.
func (s *Server) windowLoop() {
	defer close(s.winDone)
	if s.jsonl == nil {
		return
	}
	t := time.NewTicker(s.cfg.MetricsEvery)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			s.reg.CloseWindow(uint64(time.Since(s.start) / time.Second))
		case <-s.stopWin:
			return
		}
	}
}

// Close drains the admission pool (every admitted job completes — the
// watchdog and MaxCycles bound each simulation), closes the final
// metrics window, and flushes the JSONL stream.
func (s *Server) Close() error {
	s.closedMu.Lock()
	if s.closed {
		s.closedMu.Unlock()
		return nil
	}
	s.closed = true
	s.closedMu.Unlock()
	s.admit.close()
	close(s.stopWin)
	<-s.winDone
	if s.jsonl != nil {
		s.reg.CloseWindow(uint64(time.Since(s.start)/time.Second) + 1)
		return s.jsonl.Flush()
	}
	return nil
}

// Store exposes the underlying store (tests assert consistency on it).
func (s *Server) Store() *store.Store { return s.st }

// Metrics exposes the server's registry (tests read counters by name).
func (s *Server) Metrics() *metrics.Registry { return s.reg }

// ---------------------------------------------------------------------
// Submission and execution

// KeyFor canonicalizes a run request against this server's configuration.
// Errors are admission errors (unknown bench/scheme, bad capacity) and
// map to 4xx.
func (s *Server) KeyFor(req RunRequest) (store.Key, error) {
	scheme, err := experiments.ParseScheme(req.Scheme)
	if err != nil {
		return store.Key{}, err
	}
	if req.Capacity < 0 {
		return store.Key{}, fmt.Errorf("negative capacity %d", req.Capacity)
	}
	capacity := req.Capacity
	if capacity == 0 && (scheme == experiments.SchemeRegLess || scheme == experiments.SchemeRegLessNC) {
		capacity = experiments.DefaultCapacity
	}
	ksha, err := KernelHash(req.Bench)
	if err != nil {
		return store.Key{}, err
	}
	k := store.Key{
		KernelSHA: ksha,
		Bench:     req.Bench,
		Scheme:    string(scheme),
		Capacity:  capacity,
		Warps:     s.cfg.Opts.Warps,
		SMs:       s.cfg.Opts.SMs,
		MaxCycles: s.cfg.Opts.MaxCycles,
		Watchdog:  s.cfg.Opts.Watchdog,
		Sanitize:  s.cfg.Opts.Sanitize,
		Faults:    s.faultsSpec,
	}.Normalized()
	if err := k.Validate(); err != nil {
		return store.Key{}, err
	}
	return k, nil
}

// submit admits one run (or attaches to the job already covering its
// key) and returns the shared job.
func (s *Server) submit(key store.Key, client string) (*job, error) {
	id, err := key.Hash()
	if err != nil {
		return nil, err
	}
	s.cSubmissions.Inc()
	s.mu.Lock()
	if j, ok := s.jobs[id]; ok {
		s.mu.Unlock()
		s.cDedup.Inc()
		return j, nil
	}
	j := &job{id: id, key: key, client: client, done: make(chan struct{})}
	s.jobs[id] = j
	s.mu.Unlock()
	s.admit.enqueue(j)
	return j, nil
}

// execute runs one admitted job on a pool worker: disk hit, else
// simulate through the suite's singleflight cache and persist.
func (s *Server) execute(j *job) {
	j.state.set(jobRunning)
	if payload, ok, err := s.st.Get(j.key); err == nil && ok {
		s.cHits.Inc()
		j.payload = payload
		j.cached = true
		j.finish(jobDone)
		return
	} else if err != nil {
		s.cStoreErrors.Inc()
	}
	s.cMisses.Inc()
	run, err := s.suite.Get(j.key.Bench, experiments.Scheme(j.key.Scheme), j.key.Capacity)
	if err != nil {
		j.errText = err.Error()
		var d *sanitizer.Diagnostic
		if errors.As(err, &d) {
			j.diag = d
		}
		s.recordFailure(j)
		j.finish(jobFailed)
		return
	}
	payload, err := json.Marshal(s.resultFrom(run))
	if err != nil {
		j.errText = err.Error()
		s.recordFailure(j)
		j.finish(jobFailed)
		return
	}
	j.payload = payload
	if err := s.st.Put(j.key, payload); err != nil {
		// The response is still served from memory; only persistence
		// for future processes failed.
		s.cStoreErrors.Inc()
	}
	j.finish(jobDone)
}

func (s *Server) resultFrom(r *experiments.Run) RunResult {
	return RunResult{
		Bench:    r.Bench,
		Scheme:   string(r.Scheme),
		Capacity: r.Capacity,
		Warps:    s.cfg.Opts.Warps,
		SMs:      s.cfg.Opts.SMs,
		Stats:    *r.Stats,
		Prov:     r.Prov,
		Mem:      r.Mem,
	}
}

func (s *Server) recordFailure(j *job) {
	s.cFailures.Inc()
	fb := FailureBrief{ID: j.id, Bench: j.key.Bench, Scheme: j.key.Scheme, Brief: j.errText}
	if j.diag != nil {
		fb.Component = j.diag.Component
		fb.Brief = j.diag.Brief()
	}
	s.mu.Lock()
	s.recent = append(s.recent, fb)
	if len(s.recent) > 8 {
		s.recent = s.recent[len(s.recent)-8:]
	}
	s.mu.Unlock()
}

// stateCell wraps the job-state atomic so the zero job is queued.
type stateCell struct{ v atomic.Int32 }

func (c *stateCell) set(s int32)  { c.v.Store(s) }
func (c *stateCell) get() int32   { return c.v.Load() }
func (j *job) finish(state int32) { j.state.set(state); close(j.done) }

// status renders the job for a response; includeResult attaches the
// payload bytes (exactly as stored, so hits are byte-identical).
func (j *job) status(includeResult bool) RunStatus {
	st := RunStatus{ID: j.id}
	select {
	case <-j.done:
	default:
		if j.state.get() == jobRunning {
			st.Status = "running"
		} else {
			st.Status = "queued"
		}
		return st
	}
	if j.state.get() == jobFailed {
		st.Status = "failed"
		st.Error = j.errText
		st.Diagnostic = j.diag
		return st
	}
	st.Status = "done"
	st.Cached = j.cached
	if includeResult {
		st.Result = j.payload
	}
	return st
}

// ---------------------------------------------------------------------
// HTTP layer

func (s *Server) initHandler() {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/runs", s.handlePostRun)
	mux.HandleFunc("GET /v1/runs/{id}", s.handleGetRun)
	mux.HandleFunc("POST /v1/sweeps", s.handlePostSweep)
	mux.HandleFunc("GET /v1/sweeps/{id}", s.handleGetSweep)
	mux.HandleFunc("GET /v1/sweeps/{id}/table", s.handleSweepTable)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metricsz", s.handleMetricsz)
	s.handler = mux
}

// Handler returns the service's HTTP handler.
func (s *Server) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s.cHTTPRequests.Inc()
		s.handler.ServeHTTP(w, r)
	})
}

// client identifies the fairness bucket: an explicit header, else one
// shared anonymous bucket.
func clientOf(r *http.Request) string {
	if c := r.Header.Get("X-Regless-Client"); c != "" {
		return c
	}
	return "anon"
}

func wantWait(r *http.Request) bool {
	v := r.URL.Query().Get("wait")
	return v == "1" || v == "true"
}

func (s *Server) httpError(w http.ResponseWriter, code int, format string, args ...any) {
	s.cHTTPErrors.Inc()
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

// decodeBody strictly decodes a JSON request body: unknown fields,
// trailing garbage, and bodies over 1 MiB are admission errors.
func decodeBody(w http.ResponseWriter, r *http.Request, v any) error {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return err
	}
	if dec.More() {
		return fmt.Errorf("trailing data after request object")
	}
	return nil
}

// waitJob blocks for the job unless the client goes away first.
func waitJob(r *http.Request, j *job) bool {
	select {
	case <-j.done:
		return true
	case <-r.Context().Done():
		return false
	}
}

func (s *Server) handlePostRun(w http.ResponseWriter, r *http.Request) {
	var req RunRequest
	if err := decodeBody(w, r, &req); err != nil {
		s.httpError(w, http.StatusBadRequest, "bad run request: %v", err)
		return
	}
	key, err := s.KeyFor(req)
	if err != nil {
		s.httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	j, err := s.submit(key, clientOf(r))
	if err != nil {
		s.httpError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	if wantWait(r) {
		if !waitJob(r, j) {
			s.httpError(w, http.StatusServiceUnavailable, "client gave up waiting")
			return
		}
		writeJSON(w, http.StatusOK, j.status(true))
		return
	}
	writeJSON(w, http.StatusAccepted, j.status(true))
}

func (s *Server) handleGetRun(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		s.httpError(w, http.StatusNotFound, "unknown run %q", id)
		return
	}
	if wantWait(r) && !waitJob(r, j) {
		s.httpError(w, http.StatusServiceUnavailable, "client gave up waiting")
		return
	}
	writeJSON(w, http.StatusOK, j.status(true))
}

// expand builds the sweep's run requests in deterministic grid order.
func (req SweepRequest) expand() ([]RunRequest, error) {
	if len(req.Benchmarks) == 0 {
		return nil, fmt.Errorf("sweep names no benchmarks")
	}
	if len(req.Schemes) == 0 {
		return nil, fmt.Errorf("sweep names no schemes")
	}
	caps := req.Capacities
	if len(caps) == 0 {
		caps = []int{0} // KeyFor resolves 0 to the scheme's default
	}
	var out []RunRequest
	for _, b := range req.Benchmarks {
		for _, sc := range req.Schemes {
			for _, c := range caps {
				out = append(out, RunRequest{Bench: b, Scheme: sc, Capacity: c})
			}
		}
	}
	return out, nil
}

func (s *Server) handlePostSweep(w http.ResponseWriter, r *http.Request) {
	var req SweepRequest
	if err := decodeBody(w, r, &req); err != nil {
		s.httpError(w, http.StatusBadRequest, "bad sweep request: %v", err)
		return
	}
	runs, err := req.expand()
	if err != nil {
		s.httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	// Canonicalize the whole grid first so a bad cell rejects the sweep
	// before anything is admitted.
	keys := make([]store.Key, 0, len(runs))
	for _, rr := range runs {
		k, err := s.KeyFor(rr)
		if err != nil {
			s.httpError(w, http.StatusBadRequest, "%v", err)
			return
		}
		keys = append(keys, k)
	}
	client := clientOf(r)
	var jobs []*job
	seen := map[string]bool{}
	for _, k := range keys {
		j, err := s.submit(k, client)
		if err != nil {
			s.httpError(w, http.StatusInternalServerError, "%v", err)
			return
		}
		if !seen[j.id] {
			seen[j.id] = true
			jobs = append(jobs, j)
		}
	}
	sw := &sweep{jobs: jobs}
	h := sha256.New()
	for _, j := range jobs {
		io.WriteString(h, j.id)
	}
	sw.id = hex.EncodeToString(h.Sum(nil))
	s.mu.Lock()
	if prev, ok := s.sweeps[sw.id]; ok {
		sw = prev
	} else {
		s.sweeps[sw.id] = sw
	}
	s.mu.Unlock()
	if wantWait(r) {
		for _, j := range sw.jobs {
			if !waitJob(r, j) {
				s.httpError(w, http.StatusServiceUnavailable, "client gave up waiting")
				return
			}
		}
		writeJSON(w, http.StatusOK, sw.status())
		return
	}
	writeJSON(w, http.StatusAccepted, sw.status())
}

func (sw *sweep) status() SweepStatus {
	st := SweepStatus{ID: sw.id, Total: len(sw.jobs)}
	for _, j := range sw.jobs {
		rs := j.status(false)
		st.Runs = append(st.Runs, rs)
		switch rs.Status {
		case "done":
			st.Completed++
		case "failed":
			st.Completed++
			st.Failed++
		}
	}
	switch {
	case st.Completed < st.Total:
		st.Status = "running"
	case st.Failed > 0:
		st.Status = "failed"
	default:
		st.Status = "done"
	}
	return st
}

func (s *Server) lookupSweep(id string) *sweep {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sweeps[id]
}

func (s *Server) handleGetSweep(w http.ResponseWriter, r *http.Request) {
	sw := s.lookupSweep(r.PathValue("id"))
	if sw == nil {
		s.httpError(w, http.StatusNotFound, "unknown sweep %q", r.PathValue("id"))
		return
	}
	if wantWait(r) {
		for _, j := range sw.jobs {
			if !waitJob(r, j) {
				s.httpError(w, http.StatusServiceUnavailable, "client gave up waiting")
				return
			}
		}
	}
	writeJSON(w, http.StatusOK, sw.status())
}

func (s *Server) handleSweepTable(w http.ResponseWriter, r *http.Request) {
	sw := s.lookupSweep(r.PathValue("id"))
	if sw == nil {
		s.httpError(w, http.StatusNotFound, "unknown sweep %q", r.PathValue("id"))
		return
	}
	for _, j := range sw.jobs {
		if wantWait(r) {
			if !waitJob(r, j) {
				s.httpError(w, http.StatusServiceUnavailable, "client gave up waiting")
				return
			}
			continue
		}
		select {
		case <-j.done:
		default:
			s.httpError(w, http.StatusConflict, "sweep still running (%s)", j.id)
			return
		}
	}
	tb, err := sw.table(s.cfg.Opts.Warps, s.cfg.Opts.SMs)
	if err != nil {
		s.httpError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	io.WriteString(w, tb.Render())
}

// table renders the sweep's completed runs. The text is a pure function
// of the run results (no hit/miss annotations), so a cached pass renders
// byte-identically to the pass that computed it.
func (sw *sweep) table(warps, sms int) (*experiments.Table, error) {
	tb := &experiments.Table{
		ID:     "sweep",
		Title:  fmt.Sprintf("%d runs (warps %d, SMs %d)", len(sw.jobs), warps, sms),
		Header: []string{"bench", "scheme", "capacity", "cycles", "insns", "IPC", "SIMT eff"},
	}
	for _, j := range sw.jobs {
		if j.state.get() == jobFailed {
			tb.AddRow(j.key.Bench, j.key.Scheme, fmt.Sprint(j.key.Capacity), "error", j.errText, "", "")
			continue
		}
		var res RunResult
		if err := json.Unmarshal(j.payload, &res); err != nil {
			return nil, fmt.Errorf("decoding result %s: %w", j.id, err)
		}
		tb.AddRow(res.Bench, res.Scheme, fmt.Sprint(res.Capacity),
			fmt.Sprint(res.Stats.Cycles), fmt.Sprint(res.Stats.DynInsns),
			fmt.Sprintf("%.2f", res.Stats.IPC()), fmt.Sprintf("%.2f", res.Stats.SIMTEfficiency()))
	}
	return tb, nil
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	jobs := len(s.jobs)
	recent := append([]FailureBrief(nil), s.recent...)
	s.mu.Unlock()
	h := Health{
		UptimeSeconds: time.Since(s.start).Seconds(),
		Jobs:          jobs,
		Queued:        s.admit.queued.Load(),
		Inflight:      s.admit.inflight.Load(),
		Failures:      s.cFailures.Value(),
		Sanitize:      s.cfg.Opts.Sanitize,
		Watchdog:      s.cfg.Opts.Watchdog,
		LastFailures:  recent,
	}
	if s.cfg.Opts.Faults != nil {
		h.ArmedFaults = s.cfg.Opts.Faults.ArmedClasses()
	}
	code := http.StatusOK
	h.Status = "ok"
	if h.Failures > 0 {
		h.Status = "degraded"
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, h)
}

func (s *Server) handleMetricsz(w http.ResponseWriter, r *http.Request) {
	snap := s.reg.Snapshot()
	out := make(map[string]uint64, len(snap))
	for _, smp := range snap {
		out[smp.Name] = smp.Value
	}
	writeJSON(w, http.StatusOK, out)
}
