package serve

// Server-sent-event streaming: per-run completion events for a sweep
// (GET /v1/sweeps/{id}/events) and the live metrics-window stream
// (GET /v1/metricsz/stream). Both share one subscriber shape — a bounded
// frame buffer drained by the handler goroutine — and one overflow
// policy: a slow client loses frames and is told how many with a
// "dropped" marker event; the execution path never blocks on a client.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/metrics"
)

// sseFrame renders one SSE frame: "event: <name>\ndata: <data>\n\n".
// data must be newline-free (all our payloads are single-line JSON).
func sseFrame(event string, data []byte) []byte {
	b := make([]byte, 0, len(event)+len(data)+16)
	b = append(b, "event: "...)
	b = append(b, event...)
	b = append(b, "\ndata: "...)
	b = append(b, data...)
	b = append(b, "\n\n"...)
	return b
}

// sseStream is one subscriber: a bounded channel of ready-to-write
// frames. Publishers deliver with a non-blocking send; overflow bumps
// dropped instead of stalling. For sweep streams, total is the sweep's
// job count and complete closes when the got counter reaches it; metric
// streams use total 0 (never complete, terminated by disconnect/close).
type sseStream struct {
	ch       chan []byte
	complete chan struct{}
	total    int
	got      atomic.Int64
	dropped  atomic.Int64
	// reported counts drops already surfaced to the client; only the
	// writer goroutine touches it.
	reported int64
	// drop mirrors every dropped frame into the server-wide counter.
	drop metrics.AtomicCounter
}

func (s *Server) newStream(total int) *sseStream {
	return &sseStream{
		ch:       make(chan []byte, s.cfg.SSEBuffer),
		complete: make(chan struct{}),
		total:    total,
		drop:     s.cSSEDropped,
	}
}

// deliver enqueues a frame without blocking; a full buffer drops it.
func (st *sseStream) deliver(frame []byte) {
	select {
	case st.ch <- frame:
	default:
		st.dropped.Add(1)
		st.drop.Inc()
	}
}

// arrived counts one finished job toward total and closes complete on
// the last one. The caller ensures each job is counted exactly once per
// stream (registration pre-counts finished jobs, publishRun counts the
// rest), so there is exactly one closer.
func (st *sseStream) arrived(n int64) {
	if st.total > 0 && st.got.Add(n) == int64(st.total) {
		close(st.complete)
	}
}

// runEvent is the per-run completion payload on a sweep event stream.
type runEvent struct {
	ID       string `json:"id"`
	Bench    string `json:"bench"`
	Scheme   string `json:"scheme"`
	Capacity int    `json:"capacity"`
	Status   string `json:"status"` // done | failed | expired | canceled
	Cached   bool   `json:"cached,omitempty"`
	Error    string `json:"error,omitempty"`
}

func runEventFrame(j *job) []byte {
	ev := runEvent{
		ID:       j.id,
		Bench:    j.key.Bench,
		Scheme:   j.key.Scheme,
		Capacity: j.key.Capacity,
	}
	switch j.state.get() {
	case jobFailed:
		ev.Status = "failed"
		ev.Error = j.errText
	case jobExpired:
		ev.Status = "expired"
		ev.Error = j.errText
	case jobCanceled:
		ev.Status = "canceled"
		ev.Error = j.errText
	default:
		ev.Status = "done"
		ev.Cached = j.cached
	}
	data, _ := json.Marshal(ev)
	return sseFrame("run", data)
}

// publishRun fans a finished job out to the streams subscribed to it
// and retires the subscription entry. Runs after finish (deferred last
// in execute), so subscribers observe final job state.
func (s *Server) publishRun(j *job) {
	s.sseMu.Lock()
	subs := s.runSubs[j.id]
	delete(s.runSubs, j.id)
	s.sseMu.Unlock()
	if len(subs) == 0 {
		return
	}
	frame := runEventFrame(j)
	for _, st := range subs {
		st.deliver(frame)
		st.arrived(1)
	}
}

// unsubscribe removes the stream from every per-job list (disconnect
// path; completed streams were already drained by publishRun).
func (s *Server) unsubscribe(st *sseStream) {
	s.sseMu.Lock()
	defer s.sseMu.Unlock()
	for id, subs := range s.runSubs {
		kept := subs[:0]
		for _, x := range subs {
			if x != st {
				kept = append(kept, x)
			}
		}
		if len(kept) == 0 {
			delete(s.runSubs, id)
		} else {
			s.runSubs[id] = kept
		}
	}
}

// sseWriter pairs the response with its flusher and tracks write errors
// so the loop can bail on a dead connection.
type sseWriter struct {
	w   http.ResponseWriter
	fl  http.Flusher
	err error
}

func (sw *sseWriter) frame(b []byte) bool {
	if sw.err != nil {
		return false
	}
	if _, sw.err = sw.w.Write(b); sw.err != nil {
		return false
	}
	sw.fl.Flush()
	return true
}

// reportDrops emits a "dropped" marker if frames were lost since the
// last report, so the client knows its view has gaps to re-poll.
func (sw *sseWriter) reportDrops(st *sseStream) bool {
	d := st.dropped.Load()
	if d <= st.reported {
		return true
	}
	st.reported = d
	return sw.frame(sseFrame("dropped", fmt.Appendf(nil, `{"dropped":%d}`, d)))
}

func startSSE(w http.ResponseWriter) (*sseWriter, bool) {
	fl, ok := w.(http.Flusher)
	if !ok {
		return nil, false
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)
	fl.Flush()
	return &sseWriter{w: w, fl: fl}, true
}

// handleSweepEvents streams one "run" event per completing job of the
// sweep, heartbeat comments while idle, and a terminal "summary" event
// once every job has finished.
func (s *Server) handleSweepEvents(w http.ResponseWriter, r *http.Request) {
	swp := s.lookupSweep(r.PathValue("id"))
	if swp == nil {
		s.httpError(w, http.StatusNotFound, "unknown sweep %q", r.PathValue("id"))
		return
	}
	st := s.newStream(len(swp.jobs))
	// Register under sseMu: a job is either already finished (emit its
	// event now) or publishRun — which also takes sseMu and runs strictly
	// after finish — will see this subscription. No completion can slip
	// between the check and the append.
	s.sseMu.Lock()
	already := 0
	for _, j := range swp.jobs {
		select {
		case <-j.done:
			st.deliver(runEventFrame(j))
			already++
		default:
			s.runSubs[j.id] = append(s.runSubs[j.id], st)
		}
	}
	s.sseMu.Unlock()
	st.arrived(int64(already))
	defer s.unsubscribe(st)

	sw, ok := startSSE(w)
	if !ok {
		s.httpError(w, http.StatusInternalServerError, "response writer does not support streaming")
		return
	}
	hb := time.NewTicker(s.cfg.SSEHeartbeat)
	defer hb.Stop()
	for {
		select {
		case f := <-st.ch:
			if !sw.frame(f) || !sw.reportDrops(st) {
				return
			}
		case <-hb.C:
			if !sw.frame([]byte(": hb\n\n")) {
				return
			}
		case <-st.complete:
			sweepTerminalFrames(sw, st, swp, true)
			return
		case <-s.sseDrain:
			// Server drain: every pending job has resolved (cleanly or by
			// the drain deadline). Flush buffered frames, then close with
			// the sweep summary if the sweep actually completed, else an
			// explicit "draining" event so the client knows to re-poll a
			// future process rather than wait.
			select {
			case <-st.complete:
				sweepTerminalFrames(sw, st, swp, true)
			default:
				sweepTerminalFrames(sw, st, swp, false)
			}
			return
		case <-r.Context().Done():
			return
		}
	}
}

// sweepTerminalFrames drains frames that raced the terminal signal and
// closes the stream with a "summary" (complete) or "draining" event.
func sweepTerminalFrames(sw *sseWriter, st *sseStream, swp *sweep, complete bool) {
	for {
		select {
		case f := <-st.ch:
			if !sw.frame(f) {
				return
			}
			continue
		default:
		}
		break
	}
	if !sw.reportDrops(st) {
		return
	}
	sum := swp.status()
	data, _ := json.Marshal(map[string]any{
		"id": sum.ID, "status": sum.Status, "total": sum.Total,
		"completed": sum.Completed, "failed": sum.Failed,
	})
	if complete {
		sw.frame(sseFrame("summary", data))
		return
	}
	sw.frame(sseFrame("draining", data))
}

// ---------------------------------------------------------------------
// Metrics-window streaming

// winHub is the registry sink: every closed window is forwarded to the
// JSONL writer (when configured) and fanned out as a "window" SSE frame
// to /v1/metricsz/stream subscribers.
type winHub struct {
	fwd  metrics.Sink
	mu   sync.Mutex
	subs []*sseStream
}

func newWinHub(int) *winHub { return &winHub{} }

// Emit implements metrics.Sink. Window buffers are registry-owned and
// reused, so the JSONL line is rendered (copied) before returning.
func (h *winHub) Emit(w metrics.Window) {
	if h.fwd != nil {
		h.fwd.Emit(w)
	}
	h.mu.Lock()
	subs := h.subs
	h.mu.Unlock()
	if len(subs) == 0 {
		return
	}
	line := bytes.TrimRight(metrics.AppendWindow(nil, nil, w), "\n")
	frame := sseFrame("window", line)
	for _, st := range subs {
		st.deliver(frame)
	}
}

// subscribe copies-on-write so Emit can read the list outside the lock.
func (h *winHub) subscribe(st *sseStream) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.subs = append(append([]*sseStream(nil), h.subs...), st)
}

func (h *winHub) unsubscribe(st *sseStream) {
	h.mu.Lock()
	defer h.mu.Unlock()
	kept := make([]*sseStream, 0, len(h.subs))
	for _, x := range h.subs {
		if x != st {
			kept = append(kept, x)
		}
	}
	h.subs = kept
}

// handleMetricsStream streams every closed metrics window as one
// "window" event (the JSONL line without trailing newline), reusing the
// window machinery rather than re-sampling. The stream ends when the
// client disconnects or the server closes.
func (s *Server) handleMetricsStream(w http.ResponseWriter, r *http.Request) {
	st := s.newStream(0)
	s.winHub.subscribe(st)
	defer s.winHub.unsubscribe(st)
	sw, ok := startSSE(w)
	if !ok {
		s.httpError(w, http.StatusInternalServerError, "response writer does not support streaming")
		return
	}
	hb := time.NewTicker(s.cfg.SSEHeartbeat)
	defer hb.Stop()
	for {
		select {
		case f := <-st.ch:
			if !sw.frame(f) || !sw.reportDrops(st) {
				return
			}
		case <-hb.C:
			if !sw.frame([]byte(": hb\n\n")) {
				return
			}
		case <-s.stopWin:
			return
		case <-r.Context().Done():
			return
		}
	}
}
