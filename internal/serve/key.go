package serve

// Kernel content hashing. The store keys results by what the kernel *is*
// (its canonical assembly text), not just what it is called: a codegen or
// register-allocator change shifts the hash and silently invalidates
// every stale entry, so two binaries may serve each other's cached
// results only while they would simulate identical code. This lives here
// rather than in internal/kernels because the asm package's own tests
// load suite kernels, which would make kernels -> asm a test-only import
// cycle.

import (
	"crypto/sha256"
	"encoding/hex"
	"sync"

	"repro/internal/asm"
	"repro/internal/kernels"
)

// kernelHashCache memoizes per-benchmark content hashes: hashing formats
// the whole allocated kernel, and every admitted request asks for its
// benchmark's hash.
var kernelHashCache = struct {
	sync.Mutex
	m map[string]string
}{m: map[string]string{}}

// KernelHash returns the sha256 hex digest of the benchmark's allocated
// kernel rendered as canonical assembly (asm.Format) — the content
// component of store keys. Unknown benchmarks error (an admission 4xx).
func KernelHash(name string) (string, error) {
	kernelHashCache.Lock()
	h, ok := kernelHashCache.m[name]
	kernelHashCache.Unlock()
	if ok {
		return h, nil
	}
	k, err := kernels.Load(name)
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256([]byte(asm.Format(k)))
	h = hex.EncodeToString(sum[:])
	kernelHashCache.Lock()
	kernelHashCache.m[name] = h
	kernelHashCache.Unlock()
	return h, nil
}
