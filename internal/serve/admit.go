package serve

import (
	"sync"
	"sync/atomic"
)

// admitter is the server's admission layer: a bounded worker pool drained
// fairly across clients. Each client gets a FIFO queue; workers pick the
// next job round-robin over clients with pending work, so a client
// flooding thousands of submissions cannot starve another's single
// request. This generalizes the PR 1 planner's bounded pool
// (experiments.Suite.forEach over a fixed work slice) to a dynamic
// multi-tenant queue; the in-flight bound is the same contract — at most
// `workers` simulations run at once, everything else waits in admission.
type admitter struct {
	mu     sync.Mutex
	cond   *sync.Cond
	queues map[string][]*job
	// order rotates the clients that currently have queued work; next
	// indexes the client to serve first on the following dequeue.
	order  []string
	next   int
	closed bool
	wg     sync.WaitGroup

	// queued and inflight back the server's queue-depth and in-flight
	// gauges (sampled from the metrics goroutine, hence atomic).
	queued   atomic.Int64
	inflight atomic.Int64
}

// newAdmitter starts `workers` pool goroutines executing run.
func newAdmitter(workers int, run func(*job)) *admitter {
	a := &admitter{queues: map[string][]*job{}}
	a.cond = sync.NewCond(&a.mu)
	if workers < 1 {
		workers = 1
	}
	for w := 0; w < workers; w++ {
		a.wg.Add(1)
		go func() {
			defer a.wg.Done()
			for {
				j, ok := a.dequeue()
				if !ok {
					return
				}
				a.inflight.Add(1)
				run(j)
				a.inflight.Add(-1)
			}
		}()
	}
	return a
}

// enqueue admits a job under its client's queue. Jobs enqueued after
// close are still executed: close drains the queue before the workers
// exit, so no admitted waiter is left hanging.
func (a *admitter) enqueue(j *job) {
	a.mu.Lock()
	a.enqueueLocked(j)
	a.mu.Unlock()
	a.cond.Signal()
}

// tryEnqueue is enqueue with load shedding: when the total queued depth
// has reached limit the job is rejected (false) instead of admitted.
// The bound is across clients — fairness governs service order, not
// admission — so one flooding client fills the shared queue and every
// further submission sheds until workers catch up.
func (a *admitter) tryEnqueue(j *job, limit int) bool {
	a.mu.Lock()
	if limit > 0 && a.queued.Load() >= int64(limit) {
		a.mu.Unlock()
		return false
	}
	a.enqueueLocked(j)
	a.mu.Unlock()
	a.cond.Signal()
	return true
}

func (a *admitter) enqueueLocked(j *job) {
	q, had := a.queues[j.client]
	if !had || len(q) == 0 {
		a.order = append(a.order, j.client)
	}
	a.queues[j.client] = append(q, j)
	a.queued.Add(1)
}

// dequeue blocks for the next job, serving clients round-robin; ok is
// false when the pool is closed and fully drained.
func (a *admitter) dequeue() (*job, bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	for len(a.order) == 0 {
		if a.closed {
			return nil, false
		}
		a.cond.Wait()
	}
	if a.next >= len(a.order) {
		a.next = 0
	}
	client := a.order[a.next]
	q := a.queues[client]
	j := q[0]
	if len(q) == 1 {
		delete(a.queues, client)
		a.order = append(a.order[:a.next], a.order[a.next+1:]...)
		// next now indexes the following client already; wrap lazily.
	} else {
		a.queues[client] = q[1:]
		a.next++
	}
	a.queued.Add(-1)
	return j, true
}

// close stops the pool after draining every queued job and waits for the
// workers to exit.
func (a *admitter) close() {
	a.mu.Lock()
	a.closed = true
	a.mu.Unlock()
	a.cond.Broadcast()
	a.wg.Wait()
}
