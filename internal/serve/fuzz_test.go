package serve

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/experiments"
)

// fuzzServer builds one server per fuzz target, shared across its
// iterations (one pool, one store); the tiny MaxCycles bounds any
// organically valid request the fuzzer mints, so a run it admits finishes
// in microseconds (possibly as a MaxCycles failure — that is fine, the
// target is the decoder, not the simulator).
func fuzzServer(f *testing.F) *Server {
	s, err := New(Config{
		Opts: experiments.Options{
			Warps:       1,
			Benchmarks:  []string{"nw"},
			MaxCycles:   2000,
			Parallelism: 2,
		},
		StoreDir: f.TempDir(),
	})
	if err != nil {
		f.Fatal(err)
	}
	f.Cleanup(func() { s.Close() })
	return s
}

// FuzzRunRequestDecode fuzzes the run-submission decoder: arbitrary
// bodies must never panic the handler and must answer every malformed
// request with a 4xx, never a 5xx and never an admission (the strict
// decoder rejects unknown fields, trailing data, and oversized bodies).
func FuzzRunRequestDecode(f *testing.F) {
	f.Add(`{"bench":"nw","scheme":"baseline"}`)
	f.Add(`{"bench":"nw","scheme":"regless","capacity":256}`)
	f.Add(`{"bench":"nw","scheme":"regless","capacity":-1}`)
	f.Add(`{"bench":"../etc","scheme":"regless"}`)
	f.Add(`{"bench":"nw","scheme":"regless"} trailing`)
	f.Add(`{"bench":"nw","unknown":true}`)
	f.Add(`{"capacity":"not a number"}`)
	f.Add(`[1,2,3]`)
	f.Add(`null`)
	f.Add(``)
	f.Add(`{`)
	f.Add("\x00\xff\xfe")
	f.Add(`{"bench":"` + strings.Repeat("A", 1<<10) + `"}`)

	h := fuzzServer(f).Handler()
	f.Fuzz(func(t *testing.T, body string) {
		req := httptest.NewRequest("POST", "/v1/runs", strings.NewReader(body))
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req) // a panic here fails the fuzz target
		switch {
		case rec.Code == http.StatusAccepted:
			// A syntactically valid request naming a real point: fine.
		case rec.Code >= 400 && rec.Code < 500:
			// Malformed: rejected, not crashed.
		default:
			t.Fatalf("POST /v1/runs with %q = %d, want 202 or 4xx", body, rec.Code)
		}
	})
}

// FuzzSweepRequestDecode gives the sweep decoder the same treatment; its
// failure mode additionally includes partially-admitted grids, which the
// canonicalize-first discipline forbids.
func FuzzSweepRequestDecode(f *testing.F) {
	f.Add(`{"benchmarks":["nw"],"schemes":["baseline"]}`)
	f.Add(`{"benchmarks":["nw","nope"],"schemes":["regless"]}`)
	f.Add(`{"benchmarks":[],"schemes":[]}`)
	f.Add(`{"benchmarks":["nw"],"schemes":["regless"],"capacities":[-3]}`)
	f.Add(`{"benchmarks":null,"schemes":null}`)
	f.Add(`{"benchmarks":"nw"}`)
	f.Add(`{}`)
	f.Add(`00`)

	s := fuzzServer(f)
	h := s.Handler()
	f.Fuzz(func(t *testing.T, body string) {
		subsBefore, _ := s.Metrics().Value("serve/submissions")
		req := httptest.NewRequest("POST", "/v1/sweeps", strings.NewReader(body))
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		switch {
		case rec.Code == http.StatusAccepted:
		case rec.Code >= 400 && rec.Code < 500:
			subsAfter, _ := s.Metrics().Value("serve/submissions")
			if subsAfter != subsBefore {
				t.Fatalf("rejected sweep %q admitted %d runs", body, subsAfter-subsBefore)
			}
		default:
			t.Fatalf("POST /v1/sweeps with %q = %d, want 202 or 4xx", body, rec.Code)
		}
	})
}
