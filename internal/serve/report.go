package serve

// Deep-dive reports: a run request may opt into analysis sections
// ("report": ["stalls", "preload"]) computed from an event-instrumented
// execution. Reported runs are keyed distinctly in the store — the
// analysis rides the cached payload, so a repeat request is a disk hit
// like any other. The event layer is passive, so the statistics of a
// reported run match the plain run of the same point exactly.

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"repro/internal/events"
	"repro/internal/experiments"
	"repro/internal/store"
)

// RunReport is the deep-dive payload attached to a RunResult.
type RunReport struct {
	// Kinds echoes the canonical section list ("preload", "stalls").
	Kinds []string   `json:"kinds"`
	SMs   []SMReport `json:"sms"`
}

// SMReport carries one SM's requested sections.
type SMReport struct {
	SM      int            `json:"sm"`
	Stalls  *StallsReport  `json:"stalls,omitempty"`
	Preload *PreloadReport `json:"preload,omitempty"`
}

// StallsReport is the issue-slot attribution: Issued plus the Stalls
// values tile Cycles*Schedulers exactly (Tiles).
type StallsReport struct {
	Cycles     uint64            `json:"cycles"`
	Schedulers int               `json:"schedulers"`
	IssueSlots uint64            `json:"issue_slots"`
	Issued     uint64            `json:"issued"`
	Stalls     map[string]uint64 `json:"stalls"`
	Tiles      bool              `json:"tiles"`
	// TopRegions ranks regions by attributed capacity-stall cycles.
	TopRegions []RegionStallReport `json:"top_regions,omitempty"`
}

// RegionStallReport is one region's capacity-stall attribution.
type RegionStallReport struct {
	Region      int    `json:"region"`
	StallCycles uint64 `json:"stall_cycles"`
	Activations uint64 `json:"activations"`
}

// PreloadReport is the preload latency/hiding section.
type PreloadReport struct {
	Preloads        uint64            `json:"preloads"`
	Fills           map[string]uint64 `json:"fills"`
	LatencyMean     float64           `json:"latency_mean"`
	LatencyMax      uint64            `json:"latency_max"`
	RegionInstances int               `json:"region_instances"`
	Spans           int               `json:"spans"`
	PreloadCycles   uint64            `json:"preload_cycles"`
	HiddenCycles    uint64            `json:"hidden_cycles"`
	FullyHidden     int               `json:"fully_hidden"`
	HidingRate      float64           `json:"hiding_rate"`
}

// reportKinds are the recognized deep-dive sections.
var reportKinds = map[string]bool{"stalls": true, "preload": true}

// canonicalizeReport validates and canonicalizes a request's report list
// to the store.Key form: deduped, sorted, comma-joined ("" when empty).
func canonicalizeReport(kinds []string) (string, error) {
	if len(kinds) == 0 {
		return "", nil
	}
	seen := map[string]bool{}
	var out []string
	for _, k := range kinds {
		if !reportKinds[k] {
			return "", fmt.Errorf("unknown report section %q (have: preload, stalls)", k)
		}
		if !seen[k] {
			seen[k] = true
			out = append(out, k)
		}
	}
	sort.Strings(out)
	return strings.Join(out, ","), nil
}

// simulateWithReport runs the key's point once with event recording and
// attaches the requested analysis sections per SM. The context carries
// the job's obs trace, so the instrumented path records the same
// kernel-load/build/run child spans as the suite path.
func (s *Server) simulateWithReport(ctx context.Context, key store.Key) (*experiments.Run, *RunReport, error) {
	kinds := strings.Split(key.Report, ",")
	inst, err := experiments.SimulateInstrumented(ctx, key.Bench,
		experiments.Scheme(key.Scheme), s.cfg.Opts.SMs, experiments.SimSetup{
			Capacity:      key.Capacity,
			Warps:         s.cfg.Opts.Warps,
			MaxCycles:     s.cfg.Opts.MaxCycles,
			Watchdog:      s.cfg.Opts.Watchdog,
			Sanitize:      s.cfg.Opts.Sanitize,
			Faults:        s.cfg.Opts.Faults,
			NoFastForward: s.cfg.Opts.NoFastForward,
		}, events.MaskSched|events.MaskStates|events.MaskPreloads)
	if err != nil {
		return nil, nil, err
	}
	rep := &RunReport{Kinds: kinds}
	for i, rec := range inst.Recs {
		an := events.Analyze(rec, inst.Cycles[i], inst.Schedulers[i])
		smr := SMReport{SM: i}
		for _, k := range kinds {
			switch k {
			case "stalls":
				smr.Stalls = stallsReport(an)
			case "preload":
				smr.Preload = preloadReport(an)
			}
		}
		rep.SMs = append(rep.SMs, smr)
	}
	return inst.Run, rep, nil
}

func stallsReport(an *events.Report) *StallsReport {
	out := &StallsReport{
		Cycles:     an.Cycles,
		Schedulers: an.Schedulers,
		IssueSlots: an.IssueSlots,
		Issued:     an.Issued,
		Stalls:     map[string]uint64{},
		Tiles:      an.TilesExactly(),
	}
	for reason := events.StallReason(0); reason < events.NumStallReasons; reason++ {
		if n := an.Stalls[reason]; n > 0 {
			out.Stalls[reason.String()] = n
		}
	}
	for i, reg := range an.TopRegions {
		if i >= 5 {
			break
		}
		out.TopRegions = append(out.TopRegions,
			RegionStallReport{Region: reg.Region, StallCycles: reg.StallCycles, Activations: reg.Activations})
	}
	return out
}

func preloadReport(an *events.Report) *PreloadReport {
	out := &PreloadReport{
		Preloads:        an.Preloads,
		Fills:           map[string]uint64{},
		LatencyMax:      an.LatencyMax,
		RegionInstances: an.RegionInstances,
		Spans:           an.PreloadSpans,
		PreloadCycles:   an.PreloadCycles,
		HiddenCycles:    an.HiddenCycles,
		FullyHidden:     an.FullyHidden,
		HidingRate:      an.HidingRate(),
	}
	if an.Preloads > 0 {
		out.LatencyMean = float64(an.LatencySum) / float64(an.Preloads)
	}
	for src := events.PreloadSrc(0); src < events.NumPreloadSrcs; src++ {
		if n := an.FillsBySrc[src]; n > 0 {
			out.Fills[src.String()] = n
		}
	}
	return out
}
