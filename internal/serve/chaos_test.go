package serve

// Service-level chaos: the serve fault classes (disk-full, slow-disk,
// store-corrupt, client-abort, clock-skew) injected against a live
// server. The contract mirrors the simulation fault matrix one layer up:
// every injected fault is tolerated (the request still completes, byte-
// identical to a direct Suite.Get) or detected (the connection is
// severed for client-abort), never a hang, a leak, or a partial store
// entry — and a graceful drain works mid-chaos.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/experiments"
	"repro/internal/faults"
)

// chaosGrid is the request set each chaos pass covers.
func chaosGrid() []RunRequest {
	return []RunRequest{
		{Bench: "nw", Scheme: "baseline"},
		{Bench: "nw", Scheme: "regless", Capacity: 256},
		{Bench: "bfs", Scheme: "baseline"},
	}
}

// chaosRefs computes, via a direct Suite.Get with no faults armed, the
// exact bytes every chaos-armed server must serve: serve-level chaos may
// slow, sever, or re-derive responses, but never change a byte.
func chaosRefs(t *testing.T) map[string][]byte {
	t.Helper()
	opts := testOpts()
	suite := experiments.NewSuite(opts)
	ref := map[string][]byte{}
	for _, rr := range chaosGrid() {
		capacity := rr.Capacity
		if capacity == 0 && rr.Scheme == "regless" {
			capacity = experiments.DefaultCapacity
		}
		key := rr.Bench + "/" + rr.Scheme + "/" + fmt.Sprint(rr.Capacity)
		ref[key] = refPayload(t, suite, opts, rr.Bench, experiments.Scheme(rr.Scheme), capacity)
	}
	return ref
}

// chaosPost fires one wait=1 run over a real connection, retrying once
// on a severed connection (the client-abort arm is one-shot). Returns
// how many times the connection was severed.
func chaosPost(t *testing.T, url string, rr RunRequest, ref []byte) int {
	t.Helper()
	body, _ := json.Marshal(rr)
	aborts := 0
	for attempt := 0; ; attempt++ {
		req, err := http.NewRequest("POST", url+"/v1/runs?wait=1", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("X-Regless-Client", "chaos")
		resp, err := (&http.Client{}).Do(req)
		if err != nil {
			// Severed mid-flight (client-abort chaos). One retry must
			// succeed: the arm is consumed.
			aborts++
			if attempt >= 2 {
				t.Fatalf("%+v: connection severed %d times: %v", rr, aborts, err)
			}
			continue
		}
		raw, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			aborts++
			if attempt >= 2 {
				t.Fatalf("%+v: body severed repeatedly: %v", rr, err)
			}
			continue
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%+v: %s: %s", rr, resp.Status, raw)
		}
		var st RunStatus
		if err := json.Unmarshal(raw, &st); err != nil {
			t.Fatalf("%+v: bad response: %v", rr, err)
		}
		if st.Status != "done" || len(st.Result) == 0 {
			t.Fatalf("%+v: status %q (%s)", rr, st.Status, st.Error)
		}
		if !bytes.Equal(st.Result, ref) {
			t.Fatalf("%+v: chaos changed result bytes:\n%s\n%s", rr, st.Result, ref)
		}
		return aborts
	}
}

// TestServeChaosMatrix runs every serve fault class crossed with the
// request-deadline setting through two server lifetimes over one store
// directory: a cold pass (misses, puts) and a restarted warm pass (store
// reads, where corruption arms fire). Every completed response must be
// byte-identical to the no-chaos reference, the store must verify clean,
// and both lifetimes must drain gracefully.
func TestServeChaosMatrix(t *testing.T) {
	ref := chaosRefs(t)
	for _, class := range faults.ServeClasses() {
		for _, deadline := range []time.Duration{0, 10 * time.Second} {
			name := fmt.Sprintf("%s/deadline=%v", class, deadline > 0)
			t.Run(name, func(t *testing.T) {
				dir := t.TempDir()
				spec := fmt.Sprintf("%s@2; seed=3", class)
				aborts := 0
				for pass := 0; pass < 2; pass++ {
					plan, err := faults.Parse(spec)
					if err != nil {
						t.Fatal(err)
					}
					o := testOpts()
					o.Faults = plan
					s, err := New(Config{Opts: o, StoreDir: dir, RequestTimeout: deadline})
					if err != nil {
						t.Fatal(err)
					}
					ts := httptest.NewServer(s.Handler())
					for _, rr := range chaosGrid() {
						key := rr.Bench + "/" + rr.Scheme + "/" + fmt.Sprint(rr.Capacity)
						aborts += chaosPost(t, ts.URL, rr, ref[key])
					}
					// Chaos must never masquerade as a simulation failure.
					if got := counter(t, s, "serve/failures"); got != 0 {
						t.Fatalf("pass %d: chaos recorded %d sim failures", pass, got)
					}
					// Nothing partial on disk: every surviving entry verifies.
					if _, err := s.Store().Verify(); err != nil {
						t.Fatalf("pass %d: store verify: %v", pass, err)
					}
					rep, err := s.Drain(30 * time.Second)
					if err != nil || rep.TimedOut {
						t.Fatalf("pass %d: drain = %+v, %v", pass, rep, err)
					}
					ts.Close()
				}
				if class == faults.ClientAbort && aborts == 0 {
					t.Fatal("client-abort arm never severed a connection")
				}
				if class != faults.ClientAbort && aborts != 0 {
					t.Fatalf("%s severed %d connections", class, aborts)
				}
			})
		}
	}
}

// chaosSoakRequests mirrors soakRequests with a smaller default: the
// chaos soak runs under -race in CI.
func chaosSoakRequests(t *testing.T) int {
	t.Helper()
	if v := os.Getenv("REGLESS_CHAOS_REQUESTS"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			t.Fatalf("bad REGLESS_CHAOS_REQUESTS=%q", v)
		}
		return n
	}
	return 120
}

// TestServeChaosDrainSoak is the full lifecycle proof: a server with
// every serve chaos class armed AND a tiny store budget (eviction churns
// under load) takes concurrent traffic from many clients, gets drained
// mid-soak, and every request either completes byte-identical to the
// reference or is rejected cleanly (draining/shed/severed) — no hangs,
// no partial entries, no sim failures.
func TestServeChaosDrainSoak(t *testing.T) {
	n := chaosSoakRequests(t)
	ref := chaosRefs(t)
	plan, err := faults.Parse(
		"disk-full@3; slow-disk@5:delay=10; store-corrupt@7; clock-skew@6; client-abort@10; seed=3")
	if err != nil {
		t.Fatal(err)
	}
	o := testOpts()
	o.Faults = plan
	s, err := New(Config{
		Opts:           o,
		StoreDir:       t.TempDir(),
		RequestTimeout: 30 * time.Second,
		StoreMaxBytes:  2048, // a couple of entries: eviction races the soak
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	grid := chaosGrid()
	const workers = 8
	var wg sync.WaitGroup
	var completed, rejected, severed atomic.Int64
	errCh := make(chan error, workers)
	halfDone := make(chan struct{})
	var halfOnce sync.Once

	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			hc := &http.Client{}
			for i := 0; i < n/workers; i++ {
				rr := grid[(w+i)%len(grid)]
				key := rr.Bench + "/" + rr.Scheme + "/" + fmt.Sprint(rr.Capacity)
				body, _ := json.Marshal(rr)
				req, err := http.NewRequest("POST", ts.URL+"/v1/runs?wait=1", bytes.NewReader(body))
				if err != nil {
					errCh <- err
					return
				}
				req.Header.Set("X-Regless-Client", fmt.Sprintf("chaos-%d", w))
				if w%2 == 0 {
					req.Header.Set("X-Regless-Timeout", "10s")
				}
				resp, err := hc.Do(req)
				if err != nil {
					severed.Add(1) // client-abort chaos or drained listener
					continue
				}
				raw, err := io.ReadAll(resp.Body)
				resp.Body.Close()
				if err != nil {
					severed.Add(1)
					continue
				}
				switch resp.StatusCode {
				case http.StatusOK:
					var st RunStatus
					if err := json.Unmarshal(raw, &st); err != nil {
						errCh <- fmt.Errorf("%+v: bad body: %v", rr, err)
						return
					}
					if st.Status != "done" || string(st.Result) != string(ref[key]) {
						errCh <- fmt.Errorf("%+v: status %q, bytes match %v (%s)",
							rr, st.Status, string(st.Result) == string(ref[key]), st.Error)
						return
					}
					completed.Add(1)
				case http.StatusServiceUnavailable, http.StatusTooManyRequests:
					rejected.Add(1) // draining or shed: clean rejection
				default:
					errCh <- fmt.Errorf("%+v: unexpected %s: %s", rr, resp.Status, raw)
					return
				}
				if completed.Load()+rejected.Load() >= int64(n/2) {
					halfOnce.Do(func() { close(halfDone) })
				}
			}
		}(w)
	}

	// Drain mid-soak: in-flight requests finish or cancel, stragglers
	// get clean 503s.
	<-halfDone
	rep, err := s.Drain(30 * time.Second)
	if err != nil {
		t.Fatalf("mid-soak drain: %v", err)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}

	if completed.Load() == 0 {
		t.Fatal("soak completed no requests before the drain")
	}
	if got := counter(t, s, "serve/failures"); got != 0 {
		t.Fatalf("chaos soak recorded %d sim failures", got)
	}
	// The store honors its budget and holds nothing partial.
	if _, err := s.Store().Verify(); err != nil {
		t.Fatalf("store verify after soak: %v", err)
	}
	if got := s.Store().Bytes(); got > 2048 {
		t.Fatalf("store bytes %d exceed the 2048 budget", got)
	}
	t.Logf("soak: %d completed, %d rejected, %d severed; drain %+v; evictions %d",
		completed.Load(), rejected.Load(), severed.Load(), rep, s.Store().Stats().Evictions)
}
