// Package cm implements the RegLess capacity manager (paper §5.1): the
// per-shard bookkeeping that decides which warps may occupy operand
// staging unit capacity. Each warp walks the state machine
//
//	Inactive (on the warp stack)
//	  -> Preloading (region fits; inputs being assembled)
//	  -> Active     (all inputs present; warp may issue)
//	  -> Draining   (region's last instruction issued; writes pending)
//	  -> Inactive   (pushed back on the stack)
//
// The warp stack is LIFO: the most recently executed warp is reactivated
// first, because its next region's inputs are most likely still resident
// in the OSU (§5.1). Reservations are per-bank counters derived from the
// compiler's bank-usage annotations; the caller rotates them by global
// warp ID to match the OSU's (warp+reg) mod banks placement before
// passing them in.
//
// Like package osu, this is a pure state machine; the provider in package
// core drives it at hardware cycle boundaries.
package cm

import (
	"fmt"
)

// State is a warp's capacity state.
type State uint8

const (
	// Inactive warps hold no reservation and sit on the warp stack.
	Inactive State = iota
	// Preloading warps hold a reservation while inputs are fetched.
	Preloading
	// Active warps may issue instructions.
	Active
	// Draining warps issued their region's last instruction but have
	// outstanding register writes.
	Draining
	// Finished warps exited the kernel.
	Finished
)

func (s State) String() string {
	switch s {
	case Inactive:
		return "inactive"
	case Preloading:
		return "preloading"
	case Active:
		return "active"
	case Draining:
		return "draining"
	default:
		return "finished"
	}
}

// Config sizes the manager.
type Config struct {
	Banks        int
	LinesPerBank int
	// FIFOStack activates warps oldest-first instead of the paper's
	// LIFO order (an ablation: LIFO maximizes OSU hits because the most
	// recently run warp's values are still resident, §5.1).
	FIFOStack bool
}

// Stats counts state-machine transitions (observability; the energy model
// does not consume these).
type Stats struct {
	// Activations counts ActivateTop successes (Inactive -> Preloading or
	// Active); Immediate is the subset that skipped Preloading because the
	// region needed no input fetches.
	Activations uint64
	Immediate   uint64
	// Deferrals counts DeferTop stack rotations (barrier waits).
	Deferrals uint64
	// PreloadsDone counts completed input fetches signalled to the CM.
	PreloadsDone uint64
	// Drains counts Active -> Draining transitions, DrainsDone the
	// Draining -> Inactive completions, and Finishes warp retirements.
	Drains     uint64
	DrainsDone uint64
	Finishes   uint64
	// LinesReleased counts single-line reservation returns during drains.
	LinesReleased uint64
}

// CM is one shard's capacity manager. Warps are identified by a dense
// local index.
type CM struct {
	cfg   Config
	Stats Stats

	// OnTransition, when set, observes every warp state change with the
	// region involved (the one entered on activation, the one left on
	// drain completion or finish). Event tracing hooks in here; nil
	// costs one branch per transition.
	OnTransition func(w int, to State, region int)

	state []State
	// stack holds Inactive warps; the top (last element) activates next.
	stack []int
	// reserved[b] counts lines reserved in bank b across Preloading,
	// Active, and Draining warps.
	reserved []int
	// warpRes[w][b] is warp w's current reservation in bank b.
	warpRes [][]int
	// region[w] is the warp's current region ID (-1 when inactive).
	region []int
	// activatedAt[w] is the cycle the current region activated.
	activatedAt []uint64

	// pendingPreloads[w] counts outstanding input fetches.
	pendingPreloads []int
}

// New builds a CM for n warps. All warps start Inactive with warp 0 on
// top of the stack (oldest-first activation at kernel launch).
func New(cfg Config, n int) *CM {
	c := &CM{
		cfg:             cfg,
		state:           make([]State, n),
		reserved:        make([]int, cfg.Banks),
		warpRes:         make([][]int, n),
		region:          make([]int, n),
		activatedAt:     make([]uint64, n),
		pendingPreloads: make([]int, n),
	}
	for w := 0; w < n; w++ {
		c.warpRes[w] = make([]int, cfg.Banks)
		c.region[w] = -1
	}
	// Stack top is the last element; push in reverse so warp 0 pops
	// first.
	for w := n - 1; w >= 0; w-- {
		c.stack = append(c.stack, w)
	}
	return c
}

// StateOf returns a warp's capacity state.
func (c *CM) StateOf(w int) State { return c.state[w] }

// RegionOf returns the warp's current region ID (-1 when none).
func (c *CM) RegionOf(w int) int { return c.region[w] }

// Top returns the warp that would activate next, or -1 if the stack is
// empty.
func (c *CM) Top() int {
	if len(c.stack) == 0 {
		return -1
	}
	return c.stack[len(c.stack)-1]
}

// DeferTop moves the top warp to the bottom of the stack (used when the
// top warp is waiting at a barrier and must not hold capacity: other warps
// get their turn so the CTA can reach the barrier).
func (c *CM) DeferTop() {
	n := len(c.stack)
	if n < 2 {
		return
	}
	c.Stats.Deferrals++
	top := c.stack[n-1]
	copy(c.stack[1:], c.stack[:n-1])
	c.stack[0] = top
}

// Fits reports whether a region with the given bank usage (already rotated
// to absolute banks by the caller, matching the OSU's (warp+reg) mod banks
// placement) fits the remaining capacity.
func (c *CM) Fits(usage []int) bool {
	for b, u := range usage {
		if c.reserved[b]+u > c.cfg.LinesPerBank {
			return false
		}
	}
	return true
}

// ActivateTop pops the top warp and reserves capacity for its region
// (usage indexed by absolute bank). preloads is the input-fetch count;
// with zero preloads the warp becomes Active immediately, otherwise
// Preloading.
func (c *CM) ActivateTop(region int, usage []int, preloads int, now uint64) (int, error) {
	w := c.Top()
	if w < 0 {
		return -1, fmt.Errorf("cm: ActivateTop on empty stack")
	}
	if c.state[w] != Inactive {
		return -1, fmt.Errorf("cm: top warp %d in state %v", w, c.state[w])
	}
	if !c.Fits(usage) {
		return -1, fmt.Errorf("cm: region %d does not fit for warp %d", region, w)
	}
	c.stack = c.stack[:len(c.stack)-1]
	for b, u := range usage {
		c.reserved[b] += u
		c.warpRes[w][b] += u
	}
	c.region[w] = region
	c.activatedAt[w] = now
	c.pendingPreloads[w] = preloads
	c.Stats.Activations++
	if preloads == 0 {
		c.Stats.Immediate++
		c.state[w] = Active
	} else {
		c.state[w] = Preloading
	}
	c.notify(w, region)
	return w, nil
}

func (c *CM) notify(w, region int) {
	if c.OnTransition != nil {
		c.OnTransition(w, c.state[w], region)
	}
}

// PreloadDone signals one completed input fetch; the warp activates when
// all inputs are present.
func (c *CM) PreloadDone(w int) {
	if c.state[w] != Preloading {
		return
	}
	c.pendingPreloads[w]--
	c.Stats.PreloadsDone++
	if c.pendingPreloads[w] <= 0 {
		c.state[w] = Active
		c.notify(w, c.region[w])
	}
}

// BeginDrain moves an Active warp whose region issued its last
// instruction into Draining, shrinking its reservation to the lines that
// are still held (activeLines, indexed by absolute bank).
func (c *CM) BeginDrain(w int, activeLines []int) {
	if c.state[w] != Active {
		return
	}
	c.state[w] = Draining
	c.Stats.Drains++
	c.notify(w, c.region[w])
	for b := 0; b < c.cfg.Banks; b++ {
		excess := c.warpRes[w][b] - activeLines[b]
		if excess > 0 {
			c.warpRes[w][b] -= excess
			c.reserved[b] -= excess
		}
	}
}

// ReleaseLine returns one reserved line in bank b during draining (a
// pending output completed and became evictable).
func (c *CM) ReleaseLine(w, b int) {
	if c.warpRes[w][b] > 0 {
		c.warpRes[w][b]--
		c.reserved[b]--
		c.Stats.LinesReleased++
	}
}

// FinishDrain completes the region: any residual reservation is released,
// dynamic region statistics are returned, and the warp is pushed back on
// top of the stack.
func (c *CM) FinishDrain(w int, now uint64) (cycles uint64) {
	c.releaseAll(w)
	c.Stats.DrainsDone++
	cycles = now - c.activatedAt[w]
	left := c.region[w]
	c.region[w] = -1
	c.state[w] = Inactive
	c.notify(w, left)
	if c.cfg.FIFOStack {
		// Oldest-first: rejoin at the bottom.
		c.stack = append([]int{w}, c.stack...)
	} else {
		c.stack = append(c.stack, w)
	}
	return cycles
}

// Finish retires a warp that exited the kernel.
func (c *CM) Finish(w int) {
	c.releaseAll(w)
	c.Stats.Finishes++
	left := c.region[w]
	c.region[w] = -1
	c.state[w] = Finished
	c.notify(w, left)
}

func (c *CM) releaseAll(w int) {
	for b := 0; b < c.cfg.Banks; b++ {
		c.reserved[b] -= c.warpRes[w][b]
		c.warpRes[w][b] = 0
	}
}

// Reserved returns the reservation in bank b (tests).
func (c *CM) Reserved(b int) int { return c.reserved[b] }

// CheckInvariants verifies counters (tests): reservations non-negative,
// within capacity, and consistent with per-warp records.
func (c *CM) CheckInvariants() error {
	sum := make([]int, c.cfg.Banks)
	for w := range c.warpRes {
		for b, r := range c.warpRes[w] {
			if r < 0 {
				return fmt.Errorf("cm: warp %d bank %d negative reservation", w, b)
			}
			if r > 0 && (c.state[w] == Inactive || c.state[w] == Finished) {
				return fmt.Errorf("cm: %v warp %d holds reservation", c.state[w], w)
			}
			sum[b] += r
		}
	}
	for b := range sum {
		if sum[b] != c.reserved[b] {
			return fmt.Errorf("cm: bank %d reserved %d != sum %d", b, c.reserved[b], sum[b])
		}
		if c.reserved[b] < 0 || c.reserved[b] > c.cfg.LinesPerBank {
			return fmt.Errorf("cm: bank %d reservation %d out of range", b, c.reserved[b])
		}
	}
	// Stack membership: exactly the Inactive warps, each once.
	onStack := map[int]int{}
	for _, w := range c.stack {
		onStack[w]++
	}
	for w, st := range c.state {
		switch st {
		case Inactive:
			if onStack[w] != 1 {
				return fmt.Errorf("cm: inactive warp %d on stack %d times", w, onStack[w])
			}
		default:
			if onStack[w] != 0 {
				return fmt.Errorf("cm: %v warp %d present on stack", st, w)
			}
		}
	}
	return nil
}
