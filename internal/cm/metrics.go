package cm

import "repro/internal/metrics"

// BindMetrics exposes the transition counters and live stack/reservation
// occupancy on r under prefix+"/..." (one CM per shard, so callers pass
// e.g. "cm/s0").
func (c *CM) BindMetrics(r *metrics.Registry, prefix string) {
	r.Bind(prefix+"/activations", &c.Stats.Activations)
	r.Bind(prefix+"/immediate_activations", &c.Stats.Immediate)
	r.Bind(prefix+"/deferrals", &c.Stats.Deferrals)
	r.Bind(prefix+"/preloads_done", &c.Stats.PreloadsDone)
	r.Bind(prefix+"/drains", &c.Stats.Drains)
	r.Bind(prefix+"/drains_done", &c.Stats.DrainsDone)
	r.Bind(prefix+"/finishes", &c.Stats.Finishes)
	r.Bind(prefix+"/lines_released", &c.Stats.LinesReleased)
	r.Gauge(prefix+"/stack_depth", func() uint64 { return uint64(len(c.stack)) })
	r.Gauge(prefix+"/reserved_lines", func() uint64 {
		n := 0
		for _, v := range c.reserved {
			n += v
		}
		return uint64(n)
	})
}
