package cm

import "testing"

func cfg() Config { return Config{Banks: 8, LinesPerBank: 4} }

func usage(vals ...int) []int {
	u := make([]int, 8)
	copy(u, vals)
	return u
}

func TestInitialStackOrder(t *testing.T) {
	c := New(cfg(), 4)
	if c.Top() != 0 {
		t.Fatalf("top = %d, want warp 0 first", c.Top())
	}
	for w := 0; w < 4; w++ {
		if c.StateOf(w) != Inactive {
			t.Fatalf("warp %d state %v", w, c.StateOf(w))
		}
	}
}

func TestActivateReserveRelease(t *testing.T) {
	c := New(cfg(), 2)
	w, err := c.ActivateTop(7, usage(2, 1), 0, 100)
	if err != nil || w != 0 {
		t.Fatalf("ActivateTop = %d, %v", w, err)
	}
	if c.StateOf(0) != Active {
		t.Fatalf("state = %v (no preloads => Active)", c.StateOf(0))
	}
	if c.RegionOf(0) != 7 {
		t.Fatalf("region = %d", c.RegionOf(0))
	}
	// Rotation: warp 0 usage lands unrotated.
	if c.Reserved(0) != 2 || c.Reserved(1) != 1 {
		t.Fatalf("reserved = %d,%d", c.Reserved(0), c.Reserved(1))
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	c.BeginDrain(0, usage(1, 0)) // one line still held in bank 0
	if c.Reserved(0) != 1 || c.Reserved(1) != 0 {
		t.Fatalf("after drain shrink: %d,%d", c.Reserved(0), c.Reserved(1))
	}
	c.ReleaseLine(0, 0)
	if c.Reserved(0) != 0 {
		t.Fatalf("after release: %d", c.Reserved(0))
	}
	cycles := c.FinishDrain(0, 150)
	if cycles != 50 {
		t.Fatalf("region cycles = %d", cycles)
	}
	if c.StateOf(0) != Inactive || c.Top() != 0 {
		t.Fatal("warp not pushed back on top (LIFO)")
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestSecondWarpReservesIndependently(t *testing.T) {
	c := New(cfg(), 4)
	// Pop warp 0 with zero usage so warp 1 is next.
	if _, err := c.ActivateTop(0, usage(), 0, 0); err != nil {
		t.Fatal(err)
	}
	w, err := c.ActivateTop(1, usage(0, 3), 0, 0)
	if err != nil || w != 1 {
		t.Fatalf("w = %d, %v", w, err)
	}
	if c.Reserved(1) != 3 || c.Reserved(0) != 0 {
		t.Fatalf("reserved = %d,%d", c.Reserved(0), c.Reserved(1))
	}
}

func TestFitsRejectsOverflow(t *testing.T) {
	c := New(cfg(), 2)
	if _, err := c.ActivateTop(0, usage(3), 0, 0); err != nil {
		t.Fatal(err)
	}
	// Bank 0 has 3/4 used: 2 more does not fit.
	over := make([]int, 8)
	over[0] = 2
	if c.Fits(over) {
		t.Fatal("Fits accepted overflow")
	}
	over[0] = 1
	if !c.Fits(over) {
		t.Fatal("Fits rejected a fitting region")
	}
	if _, err := c.ActivateTop(1, over, 0, 0); err != nil {
		t.Fatal(err)
	}
	if c.Reserved(0) != 4 {
		t.Fatalf("bank 0 reserved %d", c.Reserved(0))
	}
}

func TestPreloadingTransition(t *testing.T) {
	c := New(cfg(), 1)
	if _, err := c.ActivateTop(0, usage(1), 2, 0); err != nil {
		t.Fatal(err)
	}
	if c.StateOf(0) != Preloading {
		t.Fatalf("state = %v", c.StateOf(0))
	}
	c.PreloadDone(0)
	if c.StateOf(0) != Preloading {
		t.Fatal("activated early")
	}
	c.PreloadDone(0)
	if c.StateOf(0) != Active {
		t.Fatalf("state = %v after all preloads", c.StateOf(0))
	}
}

func TestLIFOPrefersRecentWarp(t *testing.T) {
	c := New(cfg(), 3)
	// Activate warps 0 and 1, finish warp 0's region: it must return to
	// the top, ahead of warp 2 which never ran.
	if _, err := c.ActivateTop(0, usage(1), 0, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := c.ActivateTop(1, usage(1), 0, 0); err != nil {
		t.Fatal(err)
	}
	c.BeginDrain(0, usage())
	c.FinishDrain(0, 10)
	if c.Top() != 0 {
		t.Fatalf("top = %d, want recently-run warp 0", c.Top())
	}
}

func TestFinishReleasesEverything(t *testing.T) {
	c := New(cfg(), 2)
	if _, err := c.ActivateTop(0, usage(2, 2, 2), 0, 0); err != nil {
		t.Fatal(err)
	}
	c.Finish(0)
	for b := 0; b < 8; b++ {
		if c.Reserved(b) != 0 {
			t.Fatalf("bank %d leaked %d", b, c.Reserved(b))
		}
	}
	if c.StateOf(0) != Finished {
		t.Fatalf("state = %v", c.StateOf(0))
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestActivateTopErrors(t *testing.T) {
	c := New(cfg(), 1)
	if _, err := c.ActivateTop(0, usage(9), 0, 0); err == nil {
		t.Fatal("oversized region activated")
	}
	if _, err := c.ActivateTop(0, usage(), 0, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := c.ActivateTop(1, usage(), 0, 0); err == nil {
		t.Fatal("ActivateTop succeeded on empty stack")
	}
}

func TestDeferTop(t *testing.T) {
	c := New(cfg(), 3) // stack (bottom..top): 2, 1, 0
	if c.Top() != 0 {
		t.Fatalf("top = %d", c.Top())
	}
	c.DeferTop() // 0 moves to the bottom
	if c.Top() != 1 {
		t.Fatalf("top after defer = %d", c.Top())
	}
	c.DeferTop()
	c.DeferTop()
	if c.Top() != 0 {
		t.Fatalf("top after full rotation = %d", c.Top())
	}
	// Defer on a single-element stack is a no-op.
	c1 := New(cfg(), 1)
	c1.DeferTop()
	if c1.Top() != 0 {
		t.Fatal("single-warp defer changed the stack")
	}
}

func TestFIFOStackOrder(t *testing.T) {
	c := New(Config{Banks: 8, LinesPerBank: 4, FIFOStack: true}, 3)
	if _, err := c.ActivateTop(0, usage(1), 0, 0); err != nil {
		t.Fatal(err)
	}
	c.BeginDrain(0, usage())
	c.FinishDrain(0, 5)
	// FIFO: warp 0 rejoins at the BOTTOM; warp 1 is next.
	if c.Top() != 1 {
		t.Fatalf("FIFO top = %d, want 1", c.Top())
	}
}

func TestBeginDrainOnlyFromActive(t *testing.T) {
	c := New(cfg(), 1)
	c.BeginDrain(0, usage()) // Inactive: must be a no-op
	if c.StateOf(0) != Inactive {
		t.Fatalf("state = %v", c.StateOf(0))
	}
	if _, err := c.ActivateTop(0, usage(1), 1, 0); err != nil {
		t.Fatal(err)
	}
	c.BeginDrain(0, usage()) // Preloading: also a no-op
	if c.StateOf(0) != Preloading {
		t.Fatalf("state = %v", c.StateOf(0))
	}
	c.PreloadDone(0)
	// Extra PreloadDone calls on an Active warp must not corrupt state.
	c.PreloadDone(0)
	if c.StateOf(0) != Active {
		t.Fatalf("state = %v", c.StateOf(0))
	}
}

func TestReleaseLineClampsAtZero(t *testing.T) {
	c := New(cfg(), 1)
	if _, err := c.ActivateTop(0, usage(1), 0, 0); err != nil {
		t.Fatal(err)
	}
	c.ReleaseLine(0, 0)
	c.ReleaseLine(0, 0) // second release must not go negative
	if c.Reserved(0) != 0 {
		t.Fatalf("reserved = %d", c.Reserved(0))
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
