package trace

import (
	"testing"

	"repro/internal/events"
	"repro/internal/experiments"
	"repro/internal/sim"
)

// TestFastForwardTraceParity: the traced run — timeline buckets, CSV,
// and the stall-attribution report built from the recorded event stream —
// must be identical whether the tracer fast-forwards frozen spans or
// steps every cycle, for every scheme the CLI exposes.
func TestFastForwardTraceParity(t *testing.T) {
	schemes := []experiments.Scheme{
		experiments.SchemeBaseline,
		experiments.SchemeBaseline2L,
		experiments.SchemeRFV,
		experiments.SchemeRFH,
		experiments.SchemeRegLess,
		experiments.SchemeRegLessNC,
	}
	var skipped uint64
	for _, scheme := range schemes {
		run := func(noFF bool) (*Result, *sim.SM) {
			smv, _, err := experiments.BuildSM("hotspot", scheme, experiments.SimSetup{
				Capacity:      experiments.DefaultCapacity,
				Warps:         16,
				MaxCycles:     5_000_000,
				NoFastForward: noFF,
			})
			if err != nil {
				t.Fatal(err)
			}
			res, err := Run(smv, 50, events.MaskAll)
			if err != nil {
				t.Fatal(err)
			}
			return res, smv
		}
		ff, ffSM := run(false)
		st, _ := run(true)

		if ff.Stats.Cycles != st.Stats.Cycles {
			t.Errorf("%s: cycles %d (ff) vs %d (stepped)", scheme, ff.Stats.Cycles, st.Stats.Cycles)
		}
		if got, want := ff.Render(0), st.Render(0); got != want {
			t.Errorf("%s: timelines differ\nff:\n%s\nstepped:\n%s", scheme, got, want)
		}
		if got, want := ff.CSV(), st.CSV(); got != want {
			t.Errorf("%s: CSV outputs differ", scheme)
		}
		ffRep := events.Analyze(ff.Events, ff.Stats.Cycles, ffSM.Cfg.Schedulers).Render(10)
		stRep := events.Analyze(st.Events, st.Stats.Cycles, ffSM.Cfg.Schedulers).Render(10)
		if ffRep != stRep {
			t.Errorf("%s: stall-attribution reports differ\nff:\n%s\nstepped:\n%s", scheme, ffRep, stRep)
		}
		if st.Stats.FFSkippedCycles != 0 {
			t.Errorf("%s: stepped run skipped %d cycles", scheme, st.Stats.FFSkippedCycles)
		}
		skipped += ff.Stats.FFSkippedCycles
	}
	if skipped == 0 {
		t.Fatal("fast-forward never engaged under the tracer — parity proved nothing")
	}
}
