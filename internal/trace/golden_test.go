package trace

import (
	"os"
	"path/filepath"
	"testing"
)

// TestTimelineGolden pins the ASCII and CSV renderings of a fixed hotspot
// run byte-for-byte. The goldens were captured from the pre-event-stream
// sampler (which read Provider.WarpState every cycle); the event-driven
// reconstruction must reproduce them exactly. Regenerate with
// TRACE_UPDATE_GOLDEN=1 go test ./internal/trace -run TestTimelineGolden
func TestTimelineGolden(t *testing.T) {
	for _, c := range []struct {
		name    string
		regless bool
	}{{"regless", true}, {"baseline", false}} {
		t.Run(c.name, func(t *testing.T) {
			res := traceRun(t, c.regless)
			for suffix, got := range map[string]string{
				"timeline_" + c.name + ".golden": res.Render(0),
				"csv_" + c.name + ".golden":      res.CSV(),
			} {
				path := filepath.Join("testdata", suffix)
				if os.Getenv("TRACE_UPDATE_GOLDEN") == "1" {
					if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
						t.Fatal(err)
					}
					continue
				}
				want, err := os.ReadFile(path)
				if err != nil {
					t.Fatal(err)
				}
				if got != string(want) {
					t.Fatalf("%s drifted from golden (len %d vs %d); regenerate only if the change is intended",
						suffix, len(got), len(want))
				}
			}
		})
	}
}
