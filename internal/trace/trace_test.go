package trace

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/kernels"
	"repro/internal/rf"
	"repro/internal/sim"
)

func traceRun(t *testing.T, regless bool) *Result {
	t.Helper()
	k := kernels.MustLoad("hotspot")
	cfg := sim.DefaultConfig()
	cfg.Warps = 8
	cfg.MaxCycles = 5_000_000
	var p sim.Provider
	if regless {
		rp, err := core.New(core.DefaultConfig(), k)
		if err != nil {
			t.Fatal(err)
		}
		p = rp
	} else {
		p = rf.NewBaseline()
	}
	smv, err := sim.New(cfg, k, p, exec.NewMemory(nil))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(smv, 50, 0)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestTimelineRegLess(t *testing.T) {
	res := traceRun(t, true)
	if len(res.Samples) == 0 || res.Stats.Cycles == 0 {
		t.Fatal("empty trace")
	}
	// Every RegLess state must appear somewhere in a staged run.
	seen := map[State]bool{}
	for _, s := range res.Samples {
		for _, st := range s.Warp {
			seen[st] = true
		}
	}
	if !seen[StateActive] {
		t.Fatalf("active state never sampled; saw %v", seen)
	}
	if !seen[StateInactive] && !seen[StatePreloading] && !seen[StateDraining] && !seen[StateBarrier] {
		t.Fatalf("no staging states sampled; saw %v", seen)
	}
	if seen[StateIdle] {
		t.Fatalf("RegLess trace contains the baseline idle state; saw %v", seen)
	}
	out := res.Render(0)
	if !strings.Contains(out, "w00 |") || !strings.Contains(out, "ipc |") {
		t.Fatalf("render:\n%s", out)
	}
	// Rows are rectangular.
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	width := len(lines[1])
	for _, l := range lines[1:] {
		if len(l) != width {
			t.Fatalf("ragged timeline row %q", l)
		}
	}
}

func TestTimelineBaselineUsesIdle(t *testing.T) {
	res := traceRun(t, false)
	for _, s := range res.Samples {
		for _, st := range s.Warp {
			if st != StateIdle && st != StateFinished && st != StateBarrier {
				t.Fatalf("baseline trace contains RegLess state %c", st)
			}
		}
	}
}

func TestCSVShape(t *testing.T) {
	res := traceRun(t, true)
	csv := res.CSV()
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if len(lines) != len(res.Samples)+1 {
		t.Fatalf("csv rows = %d, want %d", len(lines), len(res.Samples)+1)
	}
	head := strings.Split(lines[0], ",")
	if head[0] != "cycle" || head[1] != "insns" || len(head) != 2+8 {
		t.Fatalf("csv header %v", head)
	}
	for _, l := range lines[1:] {
		if got := len(strings.Split(l, ",")); got != len(head) {
			t.Fatalf("csv row has %d fields, want %d", got, len(head))
		}
	}
}

func TestRenderClipsColumns(t *testing.T) {
	res := traceRun(t, true)
	if len(res.Samples) < 3 {
		t.Skip("run too short to clip")
	}
	out := res.Render(2)
	lines := strings.Split(out, "\n")
	if len(lines[1]) != len("w00 |")+2 {
		t.Fatalf("clip failed: %q", lines[1])
	}
}
