// Package trace samples a running simulation cycle-by-cycle and renders
// warp-state timelines — the view a RegLess designer needs to see the
// capacity manager breathing: warps cycling through
// inactive/preloading/active/draining as regions stage, and issue slots
// filling or starving.
//
// The sampler steps the SM itself (sim.SM.StepOne), so no hooks are
// threaded through the simulator; states come from the RegLess provider's
// capacity managers when present, or from issue activity otherwise.
package trace

import (
	"fmt"
	"strings"

	"repro/internal/cm"
	"repro/internal/core"
	"repro/internal/sim"
)

// State is the sampled per-warp condition in one bucket.
type State byte

// Timeline glyphs: each bucket shows the state the warp spent the most
// cycles in.
const (
	// StateIdle: not issuing, no capacity state (baseline schemes).
	StateIdle State = '.'
	// StateInactive: on the RegLess warp stack.
	StateInactive State = '-'
	// StatePreloading: inputs being staged.
	StatePreloading State = 'p'
	// StateActive: eligible to issue.
	StateActive State = 'A'
	// StateDraining: waiting for final writebacks.
	StateDraining State = 'd'
	// StateBarrier: waiting at a CTA barrier.
	StateBarrier State = 'b'
	// StateFinished: warp exited.
	StateFinished State = ' '
)

// Sample is one time bucket's view of the machine.
type Sample struct {
	StartCycle uint64
	// Warp[i] is warp i's dominant state in the bucket.
	Warp []State
	// Insns is the number of instructions retired in the bucket.
	Insns uint64
}

// Result is the full sampled run.
type Result struct {
	Bucket  int
	Samples []Sample
	Stats   *sim.Stats
}

// Run simulates smv to completion, sampling every `bucket` cycles. The
// provider may be the RegLess core provider (rich states) or any other
// (issue-based states only).
func Run(smv *sim.SM, bucket int) (*Result, error) {
	if bucket <= 0 {
		bucket = 100
	}
	rp, _ := smv.Provider.(*core.Provider)
	res := &Result{Bucket: bucket}

	counts := make([][7]int, len(smv.Warps)) // per-warp state histogram
	lastInsns := uint64(0)
	sampled := 0 // cycles accumulated since the last flush
	flush := func(start uint64) {
		s := Sample{StartCycle: start, Warp: make([]State, len(smv.Warps))}
		for i := range counts {
			s.Warp[i] = dominant(&counts[i])
			counts[i] = [7]int{}
		}
		s.Insns = smv.Stats.DynInsns - lastInsns
		lastInsns = smv.Stats.DynInsns
		sampled = 0
		res.Samples = append(res.Samples, s)
	}

	start := smv.Cycle()
	for !smv.Done() {
		if smv.Cycle() >= smv.Cfg.MaxCycles {
			return nil, fmt.Errorf("trace: exceeded %d cycles", smv.Cfg.MaxCycles)
		}
		smv.StepOne()
		for i, w := range smv.Warps {
			counts[i][stateIndex(classify(rp, w, i))]++
		}
		sampled++
		if (smv.Cycle()-start)%uint64(bucket) == 0 {
			flush(smv.Cycle() - uint64(bucket))
		}
	}
	if sampled > 0 {
		flush(smv.Cycle() / uint64(bucket) * uint64(bucket))
	}
	res.Stats = smv.Finalize()
	return res, nil
}

var stateOrder = [7]State{StateIdle, StateInactive, StatePreloading,
	StateActive, StateDraining, StateBarrier, StateFinished}

func stateIndex(s State) int {
	for i, x := range stateOrder {
		if x == s {
			return i
		}
	}
	return 0
}

func dominant(hist *[7]int) State {
	best, n := 0, -1
	for i, c := range hist {
		if c > n {
			best, n = i, c
		}
	}
	return stateOrder[best]
}

func classify(rp *core.Provider, w *sim.Warp, idx int) State {
	if w.Finished() {
		return StateFinished
	}
	if w.AtBarrier() {
		return StateBarrier
	}
	if rp == nil {
		return StateIdle
	}
	switch rp.WarpState(idx) {
	case cm.Inactive:
		return StateInactive
	case cm.Preloading:
		return StatePreloading
	case cm.Active:
		return StateActive
	case cm.Draining:
		return StateDraining
	default:
		return StateFinished
	}
}

// Render draws the timeline: one row per warp, one column per bucket,
// with an IPC footer. maxCols clips long runs (0 = no clip).
func (r *Result) Render(maxCols int) string {
	var b strings.Builder
	cols := len(r.Samples)
	if maxCols > 0 && cols > maxCols {
		cols = maxCols
	}
	if cols == 0 {
		return "(empty trace)\n"
	}
	warps := len(r.Samples[0].Warp)
	fmt.Fprintf(&b, "warp-state timeline: %d buckets x %d cycles  (A=active p=preloading d=draining -=inactive b=barrier)\n",
		cols, r.Bucket)
	for w := 0; w < warps; w++ {
		fmt.Fprintf(&b, "w%02d |", w)
		for c := 0; c < cols; c++ {
			b.WriteByte(byte(r.Samples[c].Warp[w]))
		}
		b.WriteByte('\n')
	}
	b.WriteString("ipc |")
	for c := 0; c < cols; c++ {
		ipc := float64(r.Samples[c].Insns) / float64(r.Bucket)
		b.WriteByte(ipcGlyph(ipc))
	}
	b.WriteByte('\n')
	return b.String()
}

func ipcGlyph(ipc float64) byte {
	switch {
	case ipc >= 3:
		return '#'
	case ipc >= 2:
		return '='
	case ipc >= 1:
		return '+'
	case ipc > 0:
		return '.'
	default:
		return ' '
	}
}

// CSV emits the samples as comma-separated rows: cycle, insns, then one
// state column per warp.
func (r *Result) CSV() string {
	var b strings.Builder
	b.WriteString("cycle,insns")
	if len(r.Samples) > 0 {
		for w := range r.Samples[0].Warp {
			fmt.Fprintf(&b, ",w%d", w)
		}
	}
	b.WriteByte('\n')
	for _, s := range r.Samples {
		fmt.Fprintf(&b, "%d,%d", s.StartCycle, s.Insns)
		for _, st := range s.Warp {
			fmt.Fprintf(&b, ",%c", st)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
