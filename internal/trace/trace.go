// Package trace renders warp-state timelines — the view a RegLess
// designer needs to see the capacity manager breathing: warps cycling
// through inactive/preloading/active/draining as regions stage, and
// issue slots filling or starving.
//
// The tracer steps the SM itself (sim.SM.StepOne) with an event
// recorder attached, and folds the drained event stream into per-cycle
// warp states: capacity phases from KindWarpState transitions, barriers
// and exits from the scheduler events every scheme emits. Nothing is
// re-sampled from provider internals, so the same recorder doubles as
// the source for Perfetto export and stall-attribution analysis.
package trace

import (
	"fmt"
	"strings"

	"repro/internal/events"
	"repro/internal/sim"
)

// State is the per-warp condition in one bucket.
type State byte

// Timeline glyphs: each bucket shows the state the warp spent the most
// cycles in.
const (
	// StateIdle: not issuing, no capacity state (baseline schemes).
	StateIdle State = '.'
	// StateInactive: on the RegLess warp stack.
	StateInactive State = '-'
	// StatePreloading: inputs being staged.
	StatePreloading State = 'p'
	// StateActive: eligible to issue.
	StateActive State = 'A'
	// StateDraining: waiting for final writebacks.
	StateDraining State = 'd'
	// StateBarrier: waiting at a CTA barrier.
	StateBarrier State = 'b'
	// StateFinished: warp exited.
	StateFinished State = ' '
)

// Sample is one time bucket's view of the machine.
type Sample struct {
	StartCycle uint64
	// Warp[i] is warp i's dominant state in the bucket.
	Warp []State
	// Insns is the number of instructions retired in the bucket.
	Insns uint64
}

// Result is the full traced run.
type Result struct {
	Bucket  int
	Samples []Sample
	Stats   *sim.Stats
	// Events is the recorder that backed the run; callers hand it to
	// events.WritePerfetto or events.Analyze for the richer views.
	Events *events.Recorder
}

// Run simulates smv to completion with an event recorder attached,
// bucketing per-cycle warp states every `bucket` cycles. mask selects
// extra event families to record beyond the timeline's own
// (events.MaskTimeline is always added); pass events.MaskAll when the
// recorder will also feed Perfetto export or stall attribution.
func Run(smv *sim.SM, bucket int, mask events.Mask) (*Result, error) {
	if bucket <= 0 {
		bucket = 100
	}
	rec := events.NewRecorder(smv.Cfg.Schedulers, mask|events.MaskTimeline)
	smv.AttachRecorder(rec)
	res := &Result{Bucket: bucket, Events: rec}

	tr := newTracker(len(smv.Warps))
	counts := make([][7]int, len(smv.Warps)) // per-warp state histogram
	cls := make([]int, len(smv.Warps))       // fast-forward classify scratch
	lastInsns := uint64(0)
	sampled := 0 // cycles accumulated since the last flush
	flush := func(start uint64) {
		s := Sample{StartCycle: start, Warp: make([]State, len(smv.Warps))}
		for i := range counts {
			s.Warp[i] = dominant(&counts[i])
			counts[i] = [7]int{}
		}
		s.Insns = smv.Stats.DynInsns - lastInsns
		lastInsns = smv.Stats.DynInsns
		sampled = 0
		res.Samples = append(res.Samples, s)
	}

	start := smv.Cycle()
	for !smv.Done() {
		if smv.Cycle() >= smv.Cfg.MaxCycles {
			return nil, fmt.Errorf("trace: exceeded %d cycles", smv.Cfg.MaxCycles)
		}
		smv.StepOne()
		if err := smv.CheckHealth(); err != nil {
			return nil, err
		}
		rec.Drain(tr.apply)
		for i := range smv.Warps {
			counts[i][tr.classify(i)]++
		}
		sampled++
		if (smv.Cycle()-start)%uint64(bucket) == 0 {
			flush(smv.Cycle() - uint64(bucket))
		}
		if n := smv.TryFastForward(); n > 0 {
			if err := smv.CheckHealth(); err != nil {
				return nil, err
			}
			// The skipped span is frozen: no state/barrier/exit events
			// fire inside it (the replayed stall events don't move the
			// tracker), so every skipped cycle classifies like the cycle
			// just stepped. Spread the span across bucket boundaries.
			rec.Drain(tr.apply)
			cyc := smv.Cycle() - n // the last stepped cycle
			for i := range smv.Warps {
				cls[i] = tr.classify(i)
			}
			for cyc < smv.Cycle() {
				seg := smv.Cycle() - cyc
				if untilFlush := uint64(bucket) - (cyc-start)%uint64(bucket); untilFlush < seg {
					seg = untilFlush
				}
				for i := range smv.Warps {
					counts[i][cls[i]] += int(seg)
				}
				sampled += int(seg)
				cyc += seg
				if (cyc-start)%uint64(bucket) == 0 {
					flush(cyc - uint64(bucket))
				}
			}
		}
	}
	if sampled > 0 {
		flush(smv.Cycle() / uint64(bucket) * uint64(bucket))
	}
	res.Stats = smv.Finalize()
	return res, nil
}

var stateOrder = [7]State{StateIdle, StateInactive, StatePreloading,
	StateActive, StateDraining, StateBarrier, StateFinished}

func dominant(hist *[7]int) State {
	best, n := 0, -1
	for i, c := range hist {
		if c > n {
			best, n = i, c
		}
	}
	return stateOrder[best]
}

// tracker folds the drained event stream into per-warp instantaneous
// state. Per-warp ordering holds because each warp's state events live
// in a single shard buffer and each warp's barrier/exit events live in
// a single group buffer.
type tracker struct {
	finished []bool
	barrier  []bool
	phase    []int8 // events.Phase; -1 until a WarpState event arrives
}

func newTracker(n int) *tracker {
	t := &tracker{
		finished: make([]bool, n),
		barrier:  make([]bool, n),
		phase:    make([]int8, n),
	}
	for i := range t.phase {
		t.phase[i] = -1
	}
	return t
}

func (t *tracker) apply(e events.Event) {
	switch e.Kind {
	case events.KindWarpState:
		t.phase[e.Warp] = int8(e.A)
	case events.KindBarrier:
		t.barrier[e.Warp] = e.A == 1
	case events.KindExit:
		t.finished[e.Warp] = true
	}
}

// classify returns warp w's stateOrder index with the timeline's
// priority: finished beats barrier beats capacity phase; warps that
// never emitted a phase (baseline schemes) read as Idle.
func (t *tracker) classify(w int) int {
	switch {
	case t.finished[w]:
		return 6 // StateFinished
	case t.barrier[w]:
		return 5 // StateBarrier
	case t.phase[w] < 0:
		return 0 // StateIdle
	}
	switch events.Phase(t.phase[w]) {
	case events.PhaseInactive:
		return 1
	case events.PhasePreloading:
		return 2
	case events.PhaseActive:
		return 3
	case events.PhaseDraining:
		return 4
	default:
		return 6
	}
}

// Render draws the timeline: one row per warp, one column per bucket,
// with an IPC footer. maxCols clips long runs (0 = no clip).
func (r *Result) Render(maxCols int) string {
	var b strings.Builder
	cols := len(r.Samples)
	if maxCols > 0 && cols > maxCols {
		cols = maxCols
	}
	if cols == 0 {
		return "(empty trace)\n"
	}
	warps := len(r.Samples[0].Warp)
	fmt.Fprintf(&b, "warp-state timeline: %d buckets x %d cycles  (A=active p=preloading d=draining -=inactive b=barrier)\n",
		cols, r.Bucket)
	for w := 0; w < warps; w++ {
		fmt.Fprintf(&b, "w%02d |", w)
		for c := 0; c < cols; c++ {
			b.WriteByte(byte(r.Samples[c].Warp[w]))
		}
		b.WriteByte('\n')
	}
	b.WriteString("ipc |")
	for c := 0; c < cols; c++ {
		ipc := float64(r.Samples[c].Insns) / float64(r.Bucket)
		b.WriteByte(ipcGlyph(ipc))
	}
	b.WriteByte('\n')
	return b.String()
}

func ipcGlyph(ipc float64) byte {
	switch {
	case ipc >= 3:
		return '#'
	case ipc >= 2:
		return '='
	case ipc >= 1:
		return '+'
	case ipc > 0:
		return '.'
	default:
		return ' '
	}
}

// CSV emits the samples as comma-separated rows: cycle, insns, then one
// state column per warp.
func (r *Result) CSV() string {
	var b strings.Builder
	b.WriteString("cycle,insns")
	if len(r.Samples) > 0 {
		for w := range r.Samples[0].Warp {
			fmt.Fprintf(&b, ",w%d", w)
		}
	}
	b.WriteByte('\n')
	for _, s := range r.Samples {
		fmt.Fprintf(&b, "%d,%d", s.StartCycle, s.Insns)
		for _, st := range s.Warp {
			fmt.Fprintf(&b, ",%c", st)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
