package regions

import "math"

// Summary aggregates per-region statistics for the paper's Figure 19 and
// Table 2 (static columns).
type Summary struct {
	NumRegions int
	// AvgInsns is the mean static instructions per region (Table 2).
	AvgInsns float64
	// AvgPreloads is the mean input preloads per region (Figure 19).
	AvgPreloads float64
	// MeanMaxLive and StdMaxLive describe the distribution of per-region
	// concurrent live registers (Figure 19's mean and std. deviation).
	MeanMaxLive float64
	StdMaxLive  float64
	// InteriorFrac is the fraction of defined *values* whose lifetime is
	// contained in their region (they are never transferred to or from
	// memory) — the quantity the region-creation algorithm maximizes
	// ("most operand values have a short lifetime that is contained in
	// one region", §1). A value leaves its region only when its
	// register is a region output.
	InteriorFrac float64
}

// Summarize computes the static per-region statistics.
func (c *Compiled) Summarize() Summary {
	s := Summary{NumRegions: len(c.Regions)}
	if s.NumRegions == 0 {
		return s
	}
	var insns, preloads, live, live2 float64
	var defs, escaping float64
	for _, r := range c.Regions {
		insns += float64(r.NumInsns())
		preloads += float64(len(r.Preloads))
		live += float64(r.MaxLive)
		live2 += float64(r.MaxLive) * float64(r.MaxLive)
		blk := c.Kernel.Blocks[r.Block]
		for i := r.Start; i < r.End; i++ {
			if blk.Insns[i].Op.HasDst() {
				defs++
			}
		}
		escaping += float64(len(r.Outputs))
	}
	n := float64(s.NumRegions)
	s.AvgInsns = insns / n
	s.AvgPreloads = preloads / n
	s.MeanMaxLive = live / n
	variance := live2/n - (live/n)*(live/n)
	if variance > 0 {
		s.StdMaxLive = math.Sqrt(variance)
	}
	if defs > 0 {
		s.InteriorFrac = (defs - escaping) / defs
	}
	return s
}
