package regions

import (
	"repro/internal/bitvec"
	"repro/internal/cfg"
	"repro/internal/isa"
)

// localLife describes one register's presence window inside a region:
// an OSU line is needed from global index from to global index until
// (inclusive); after until the line is erased or becomes evictable.
type localLife struct {
	reg         isa.Reg
	from, until int
	input       bool // live into the region and touched by it
	defined     bool // written in the region
	hardRedef   bool // a non-soft write in the region kills the old value
}

// localLives computes the presence windows for every register touched in
// [start, end) of block, plus the live-in set at the range start.
func (c *Compiled) localLives(block, start, end int) ([]localLife, *bitvec.Set) {
	insns := c.Kernel.Blocks[block].Insns
	startGI := c.G.GlobalIndex(isa.PC{Block: block, Index: start})
	liveIn := c.Lv.LiveIn(startGI)

	idx := map[isa.Reg]int{}
	var lives []localLife
	touch := func(r isa.Reg, gi int, def, hard bool) {
		j, ok := idx[r]
		if !ok {
			j = len(lives)
			idx[r] = j
			from := gi
			input := liveIn.Get(int(r))
			if input {
				from = startGI // inputs occupy their line from activation
			}
			lives = append(lives, localLife{reg: r, from: from, until: gi, input: input})
		}
		l := &lives[j]
		if gi > l.until {
			l.until = gi
		}
		if def {
			l.defined = true
			if hard {
				l.hardRedef = true
			}
		}
	}
	for i := start; i < end; i++ {
		gi := startGI + (i - start)
		in := &insns[i]
		for _, s := range in.SrcRegs() {
			touch(s, gi, false, false)
		}
		if in.Op.HasDst() {
			touch(in.Dst, gi, true, !c.Lv.SoftDef[gi])
		}
	}
	return lives, liveIn
}

// localPressure returns the maximum concurrent presence (total and per
// bank) over the range — the region's OSU reservation.
func (c *Compiled) localPressure(block, start, end int) (int, [NumBanks]int) {
	lives, _ := c.localLives(block, start, end)
	startGI := c.G.GlobalIndex(isa.PC{Block: block, Index: start})
	maxLive := 0
	var maxBank [NumBanks]int
	for i := start; i < end; i++ {
		gi := startGI + (i - start)
		n := 0
		var bank [NumBanks]int
		for j := range lives {
			l := &lives[j]
			if l.from <= gi && gi <= l.until {
				n++
				bank[int(l.reg)%NumBanks]++
			}
		}
		if n > maxLive {
			maxLive = n
		}
		for b := 0; b < NumBanks; b++ {
			if bank[b] > maxBank[b] {
				maxBank[b] = bank[b]
			}
		}
	}
	return maxLive, maxBank
}

// inputsOutputs counts the registers crossing into and out of the range.
func (c *Compiled) inputsOutputs(block, start, end int) (int, int) {
	lives, _ := c.localLives(block, start, end)
	endGI := c.G.GlobalIndex(isa.PC{Block: block, Index: end - 1})
	liveOut := c.Lv.LiveOut(endGI)
	ins, outs := 0, 0
	for j := range lives {
		l := &lives[j]
		if l.input {
			ins++
		}
		if l.defined && liveOut.Get(int(l.reg)) {
			outs++
		}
	}
	return ins, outs
}

// classifyAll fills every region's register classification, capacity
// annotations, preloads, and erase/evict points.
func (c *Compiled) classifyAll() {
	c.CrossRegs = bitvec.New(c.Kernel.NumRegs)
	for _, r := range c.Regions {
		c.classify(r)
	}
}

func (c *Compiled) classify(r *Region) {
	lives, _ := c.localLives(r.Block, r.Start, r.End)
	liveOut := c.Lv.LiveOut(r.EndGI - 1)

	r.MaxLive, r.BankUsage = c.localPressure(r.Block, r.Start, r.End)

	for j := range lives {
		l := &lives[j]
		// A value is only dead after this region if it is dead on this
		// path AND no divergent sibling path still needs it (the other
		// arm's lanes run later under SIMT; §4.4).
		siblingLive := c.Lv.LiveOnSiblingPath(r.Block, l.reg)
		isOutput := l.defined && liveOut.Get(int(l.reg))
		switch {
		case l.input && isOutput:
			r.Inputs = append(r.Inputs, l.reg)
			r.Outputs = append(r.Outputs, l.reg)
		case l.input:
			r.Inputs = append(r.Inputs, l.reg)
		case isOutput:
			r.Outputs = append(r.Outputs, l.reg)
		default:
			r.Interior = append(r.Interior, l.reg)
		}
		if l.input || isOutput {
			c.CrossRegs.Set(int(l.reg))
		}

		// Last-use flags: a register still needed after the region ends
		// (on this path or a divergent sibling's) becomes evictable at
		// its last in-region touch; otherwise its line is erased
		// outright (dead value).
		if liveOut.Get(int(l.reg)) || siblingLive {
			r.EvictAt[l.until] = append(r.EvictAt[l.until], l.reg)
		} else {
			r.EraseAt[l.until] = append(r.EraseAt[l.until], l.reg)
		}

		// Preloads: every input is fetched before activation. The read
		// invalidates the backing copy when the preloaded value cannot
		// be needed again — dead on every path including divergent
		// siblings — or when a hard (full-warp) redefinition replaces
		// it.
		if l.input {
			inv := (!liveOut.Get(int(l.reg)) && !siblingLive) || l.hardRedef
			r.Preloads = append(r.Preloads, Preload{Reg: l.reg, Invalidate: inv})
		}
	}
}

// annotate emits cache-invalidation annotations: each register that can
// live in the backing store and dies via control flow (an edge death) gets
// one invalidation at a region start that postdominates all its
// definitions and deaths (§4.3-4.4).
func (c *Compiled) annotate() {
	plans := c.Lv.PlanRegisters()
	for _, p := range plans {
		if !c.CrossRegs.Get(int(p.Reg)) || len(p.EdgeDeaths) == 0 {
			continue
		}
		if tgt := c.invalidationRegion(&p); tgt != nil {
			tgt.CacheInvalidations = append(tgt.CacheInvalidations, p.Reg)
		}
	}
}

// invalidationRegion finds the first region whose start satisfies the
// placement rule for the plan's invalidation chain. Blocks inside loops
// are avoided when a later chain block sits outside: an in-loop
// invalidation re-executes every iteration while a single post-loop one is
// equivalent (the register is dead at every chain block) and far cheaper
// in L1 port traffic.
func (c *Compiled) invalidationRegion(p *cfg.RegPlan) *Region {
	if r := c.invalidationRegionPass(p, true); r != nil {
		return r
	}
	return c.invalidationRegionPass(p, false)
}

func (c *Compiled) invalidationRegionPass(p *cfg.RegPlan, skipLoops bool) *Region {
	for i, block := range p.InvalidationChain {
		if !c.G.Reachable(block) {
			continue
		}
		if skipLoops && c.G.InLoop[block] {
			continue
		}
		blockStartGI := c.G.GlobalIndex(isa.PC{Block: block, Index: 0})
		after := blockStartGI - 1
		if i == 0 && p.LastPointInHead >= 0 {
			after = p.LastPointInHead
		}
		// First region in this block starting after `after`.
		blk := c.Kernel.Blocks[block]
		endGI := blockStartGI + len(blk.Insns)
		for gi := after + 1; gi < endGI; gi++ {
			id := c.RegionOf[gi]
			if id < 0 {
				continue
			}
			r := c.Regions[id]
			if r.StartGI == gi {
				return r
			}
		}
	}
	return nil
}
