package regions

import (
	"math/rand"
	"testing"

	"repro/internal/isa"
	"repro/internal/regalloc"
)

func compile(t *testing.T, k *isa.Kernel, cfg Config) *Compiled {
	t.Helper()
	c, err := Compile(k, cfg)
	if err != nil {
		t.Fatalf("Compile(%s): %v", k.Name, err)
	}
	return c
}

func smallCfg() Config {
	return Config{MaxRegsPerRegion: 6, BankLines: 4, MinRegionInsns: 3}
}

// checkInvariants asserts the structural properties every compilation must
// satisfy, whatever the kernel.
func checkInvariants(t *testing.T, c *Compiled) {
	t.Helper()
	covered := make([]int, c.G.NumInsns())
	for i := range covered {
		covered[i] = -1
	}
	for _, r := range c.Regions {
		if r.NumInsns() <= 0 {
			t.Fatalf("region %d empty", r.ID)
		}
		if r.NumInsns() > 1 {
			if r.MaxLive > c.Cfg.MaxRegsPerRegion {
				t.Fatalf("region %d MaxLive %d > cap %d", r.ID, r.MaxLive, c.Cfg.MaxRegsPerRegion)
			}
			for b, u := range r.BankUsage {
				if u > c.Cfg.BankLines {
					t.Fatalf("region %d bank %d usage %d > %d", r.ID, b, u, c.Cfg.BankLines)
				}
			}
			if c.containsLoadUse(r.Block, r.Start, r.End) {
				t.Fatalf("region %d contains global load and its use", r.ID)
			}
		}
		for gi := r.StartGI; gi < r.EndGI; gi++ {
			if covered[gi] != -1 {
				t.Fatalf("instruction %d in two regions", gi)
			}
			covered[gi] = r.ID
			if c.RegionOf[gi] != r.ID {
				t.Fatalf("RegionOf[%d] = %d, want %d", gi, c.RegionOf[gi], r.ID)
			}
		}
		// Every input must be preloaded exactly once.
		pl := map[isa.Reg]int{}
		for _, p := range r.Preloads {
			pl[p.Reg]++
		}
		for _, in := range r.Inputs {
			if pl[in] != 1 {
				t.Fatalf("region %d: input %v preloaded %d times", r.ID, in, pl[in])
			}
		}
		if len(pl) != len(r.Inputs) {
			t.Fatalf("region %d: %d preloads for %d inputs", r.ID, len(pl), len(r.Inputs))
		}
		// Erase/evict flags must sit inside the region and cover every
		// touched register exactly once.
		flagged := map[isa.Reg]int{}
		for gi, regs := range r.EraseAt {
			if gi < r.StartGI || gi >= r.EndGI {
				t.Fatalf("region %d erase flag at %d outside [%d,%d)", r.ID, gi, r.StartGI, r.EndGI)
			}
			for _, reg := range regs {
				flagged[reg]++
			}
		}
		for gi, regs := range r.EvictAt {
			if gi < r.StartGI || gi >= r.EndGI {
				t.Fatalf("region %d evict flag at %d outside region", r.ID, gi)
			}
			for _, reg := range regs {
				flagged[reg]++
			}
		}
		touched := len(r.Inputs) + len(r.Interior) + len(r.Outputs)
		// Input+output registers are listed in both slices.
		dup := 0
		seen := map[isa.Reg]bool{}
		for _, x := range r.Inputs {
			seen[x] = true
		}
		for _, x := range r.Outputs {
			if seen[x] {
				dup++
			}
		}
		if got := touched - dup; len(flagged) != got {
			t.Fatalf("region %d: %d flagged regs, want %d", r.ID, len(flagged), got)
		}
		for reg, n := range flagged {
			if n != 1 {
				t.Fatalf("region %d: reg %v has %d last-use flags", r.ID, reg, n)
			}
		}
	}
	// Every reachable instruction is in exactly one region.
	for _, b := range c.G.RPO {
		blk := c.Kernel.Blocks[b]
		for i := range blk.Insns {
			gi := c.G.GlobalIndex(isa.PC{Block: b, Index: i})
			if covered[gi] == -1 {
				t.Fatalf("instruction %v not covered by any region", isa.PC{Block: b, Index: i})
			}
		}
	}
}

func TestHighPressureBlockSplits(t *testing.T) {
	// Build a block that holds many simultaneously-live values: the
	// compiler must split it to respect MaxRegsPerRegion.
	b := isa.NewBuilder("pressure", 1)
	var vals []isa.Reg
	for i := 0; i < 12; i++ {
		vals = append(vals, b.Movi(uint32(i)))
	}
	acc := b.Movi(0)
	for _, v := range vals {
		b.Op2To(isa.OpIADD, acc, acc, v)
	}
	b.Stg(acc, acc, 0)
	b.Exit()
	k := b.MustKernel()
	alloc, err := regalloc.Allocate(k)
	if err != nil {
		t.Fatal(err)
	}
	c := compile(t, alloc.Kernel, smallCfg())
	if len(c.Regions) < 2 {
		t.Fatalf("high-pressure block not split: %d regions", len(c.Regions))
	}
	checkInvariants(t, c)
}

func TestLoadUseSplit(t *testing.T) {
	// A global load and its use must land in different regions.
	b := isa.NewBuilder("loaduse", 1)
	tid := b.Tid()
	addr := b.Muli(tid, 4)
	v := b.Ldg(addr, 0)
	v2 := b.Addi(v, 1) // first use of the load
	b.Stg(addr, v2, 4096)
	b.Exit()
	k := b.MustKernel()
	c := compile(t, k, DefaultConfig())
	checkInvariants(t, c)
	// Find the load and its use; their regions must differ.
	g := c.G
	var loadGI, useGI int
	for bidx, blk := range k.Blocks {
		for i := range blk.Insns {
			gi := g.GlobalIndex(isa.PC{Block: bidx, Index: i})
			if blk.Insns[i].Op == isa.OpLDG {
				loadGI = gi
			}
			if blk.Insns[i].Op == isa.OpIADDI {
				useGI = gi
			}
		}
	}
	if c.RegionOf[loadGI] == c.RegionOf[useGI] {
		t.Fatal("global load and its first use share a region")
	}
}

func TestCrossRegionValueClassified(t *testing.T) {
	// Force a split; a value produced before the split and consumed
	// after must be an output of the first region and an input of the
	// second, and must appear in CrossRegs.
	b := isa.NewBuilder("cross", 1)
	tid := b.Tid()
	addr := b.Muli(tid, 4)
	v := b.Ldg(addr, 0) // load/use split forces a boundary here
	v2 := b.Addi(v, 7)
	b.Stg(addr, v2, 8192)
	b.Exit()
	k := b.MustKernel()
	c := compile(t, k, DefaultConfig())
	checkInvariants(t, c)

	g := c.G
	var loadDst isa.Reg
	var loadGI int
	for bidx, blk := range k.Blocks {
		for i := range blk.Insns {
			if blk.Insns[i].Op == isa.OpLDG {
				loadDst = blk.Insns[i].Dst
				loadGI = g.GlobalIndex(isa.PC{Block: bidx, Index: i})
			}
		}
	}
	r1 := c.RegionAt(loadGI)
	found := false
	for _, o := range r1.Outputs {
		if o == loadDst {
			found = true
		}
	}
	if !found {
		t.Fatalf("load dst %v not an output of its region (outputs %v)", loadDst, r1.Outputs)
	}
	r2 := c.Regions[r1.ID+1]
	found = false
	for _, in := range r2.Inputs {
		if in == loadDst {
			found = true
		}
	}
	if !found {
		t.Fatalf("load dst %v not an input of the next region (inputs %v)", loadDst, r2.Inputs)
	}
	if !c.CrossRegs.Get(int(loadDst)) {
		t.Fatal("cross-region register missing from CrossRegs")
	}
}

func TestInteriorNeverCross(t *testing.T) {
	b := isa.NewBuilder("interior", 1)
	x := b.Movi(1)
	y := b.Movi(2)
	z := b.Iadd(x, y) // x, y, z all die inside the single region
	b.Stg(z, z, 0)
	b.Exit()
	k := b.MustKernel()
	c := compile(t, k, DefaultConfig())
	checkInvariants(t, c)
	if len(c.Regions) != 1 {
		t.Fatalf("regions = %d, want 1", len(c.Regions))
	}
	r := c.Regions[0]
	if len(r.Inputs) != 0 || len(r.Outputs) != 0 {
		t.Fatalf("inputs %v outputs %v, want none", r.Inputs, r.Outputs)
	}
	if len(r.Interior) != 3 {
		t.Fatalf("interior = %v, want 3 regs", r.Interior)
	}
	if !c.CrossRegs.Empty() {
		t.Fatalf("CrossRegs = %v, want empty", c.CrossRegs)
	}
}

func TestInvalidatingPreload(t *testing.T) {
	// An input whose value dies inside the consuming region must be
	// fetched with an invalidating read.
	b := isa.NewBuilder("invread", 1)
	tid := b.Tid()
	addr := b.Muli(tid, 4)
	v := b.Ldg(addr, 0)
	sum := b.Iadd(v, tid) // v dies here, in the region after the split
	b.Stg(sum, sum, 0)
	b.Exit()
	k := b.MustKernel()
	c := compile(t, k, DefaultConfig())
	checkInvariants(t, c)
	var loadDst isa.Reg
	for _, blk := range k.Blocks {
		for i := range blk.Insns {
			if blk.Insns[i].Op == isa.OpLDG {
				loadDst = blk.Insns[i].Dst
			}
		}
	}
	foundInv := false
	for _, r := range c.Regions {
		for _, p := range r.Preloads {
			if p.Reg == loadDst {
				if !p.Invalidate {
					t.Fatal("dying input preloaded without invalidate flag")
				}
				foundInv = true
			}
		}
	}
	if !foundInv {
		t.Fatal("load destination never preloaded")
	}
}

func TestLoopInductionInvalidation(t *testing.T) {
	// The loop counter dies on the loop-exit edge: a cache invalidation
	// must be placed in the exit block's first region — but only if the
	// counter is a cross-region register. Force crossing with a
	// load-use split inside the loop.
	b := isa.NewBuilder("loopinv", 1)
	tid := b.Tid()
	i := b.Addi(tid, 3)
	acc := b.Movi(0)
	top := b.Label()
	b.Bind(top)
	addr := b.Muli(i, 16)
	v := b.Ldg(addr, 0)
	b.Op2To(isa.OpIADD, acc, acc, v)
	b.OpImmTo(isa.OpIADDI, i, i, ^uint32(0))
	b.Bnz(i, top)
	b.Stg(acc, acc, 0)
	b.Exit()
	k := b.MustKernel()
	alloc, err := regalloc.Allocate(k)
	if err != nil {
		t.Fatal(err)
	}
	c := compile(t, alloc.Kernel, DefaultConfig())
	checkInvariants(t, c)
	iPhys := alloc.Assign[i]
	if !c.CrossRegs.Get(int(iPhys)) {
		t.Skip("induction variable not cross-region in this schedule")
	}
	found := false
	for _, r := range c.Regions {
		for _, reg := range r.CacheInvalidations {
			if reg == iPhys {
				found = true
				// Placement must be outside the loop (block 2+).
				if r.Block < 2 {
					t.Fatalf("invalidation for %v placed inside loop (block %d)", reg, r.Block)
				}
			}
		}
	}
	if !found {
		t.Fatalf("no cache invalidation emitted for loop induction register %v", iPhys)
	}
}

func TestRandomKernelsInvariants(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		k := randomKernel(seed)
		alloc, err := regalloc.Allocate(k)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for _, cfg := range []Config{DefaultConfig(), smallCfg(), {MaxRegsPerRegion: 10, BankLines: 2, MinRegionInsns: 6}} {
			c := compile(t, alloc.Kernel, cfg)
			checkInvariants(t, c)
		}
	}
}

func TestSummarize(t *testing.T) {
	k := randomKernel(42)
	alloc, err := regalloc.Allocate(k)
	if err != nil {
		t.Fatal(err)
	}
	c := compile(t, alloc.Kernel, DefaultConfig())
	s := c.Summarize()
	if s.NumRegions != len(c.Regions) {
		t.Fatalf("NumRegions = %d, want %d", s.NumRegions, len(c.Regions))
	}
	if s.AvgInsns <= 0 || s.MeanMaxLive <= 0 {
		t.Fatalf("degenerate summary: %+v", s)
	}
	if s.InteriorFrac < 0 || s.InteriorFrac > 1 {
		t.Fatalf("InteriorFrac out of range: %v", s.InteriorFrac)
	}
}

// randomKernel builds a structured random kernel (mirrors the generator in
// package regalloc's tests).
func randomKernel(seed int64) *isa.Kernel {
	rng := rand.New(rand.NewSource(seed))
	b := isa.NewBuilder("rand", 2)
	live := []isa.Reg{b.Tid(), b.Movi(7)}
	pick := func() isa.Reg { return live[rng.Intn(len(live))] }
	for step := 0; step < 15; step++ {
		switch rng.Intn(4) {
		case 0:
			for i := 0; i < 1+rng.Intn(5); i++ {
				live = append(live, b.Iadd(pick(), pick()))
			}
		case 1:
			elseL, join := b.Label(), b.Label()
			c := b.OpImm(isa.OpIADDI, pick(), uint32(rng.Intn(3)))
			b.Bnz(c, elseL)
			t1 := b.Addi(pick(), 1)
			b.Bra(join)
			b.Bind(elseL)
			t2 := b.Addi(pick(), 2)
			b.Bind(join)
			live = append(live, b.Iadd(t1, t2))
		case 2:
			i := b.Movi(uint32(2 + rng.Intn(3)))
			acc := b.Movi(0)
			top := b.Label()
			b.Bind(top)
			b.Op2To(isa.OpIADD, acc, acc, pick())
			b.OpImmTo(isa.OpIADDI, i, i, ^uint32(0))
			b.Bnz(i, top)
			live = append(live, acc)
		case 3:
			addr := b.Muli(pick(), 4)
			v := b.Ldg(addr, 0)
			u := b.Addi(v, 3)
			b.Stg(addr, u, 64)
			live = append(live, u)
		}
		if len(live) > 8 {
			live = live[len(live)-8:]
		}
	}
	b.Stg(pick(), pick(), 0)
	b.Exit()
	return b.MustKernel()
}

// TestSplitPointWindow exercises Algorithm 1's FindSplitPoint window
// mechanics directly: the chosen split keeps the first region valid, and
// the boundary separates a global load from its first use when one exists
// in the range.
func TestSplitPointWindow(t *testing.T) {
	b := isa.NewBuilder("window", 1)
	tid := b.Tid()
	addr := b.Muli(tid, 4)
	// Padding so the split window has room before the load.
	p1 := b.Addi(tid, 1)
	p2 := b.Iadd(p1, tid)
	p3 := b.Iadd(p2, p1)
	v := b.Ldg(addr, 0)
	u := b.Iadd(v, p3) // first use of the load
	b.Stg(addr, u, 4096)
	b.Exit()
	k := b.MustKernel()
	c := compile(t, k, DefaultConfig())
	checkInvariants(t, c)
	// Locate the load and its use.
	var loadGI, useGI int
	for bi, blk := range k.Blocks {
		for i := range blk.Insns {
			gi := c.G.GlobalIndex(isa.PC{Block: bi, Index: i})
			if blk.Insns[i].Op == isa.OpLDG {
				loadGI = gi
			}
			if blk.Insns[i].Op == isa.OpIADD && blk.Insns[i].Src[0] == v {
				useGI = gi
			}
		}
	}
	if c.RegionOf[loadGI] == c.RegionOf[useGI] {
		t.Fatal("split did not separate load from first use")
	}
	// The boundary lies in (load, use]: the region containing the use
	// starts after the load.
	r2 := c.RegionAt(useGI)
	if r2.StartGI <= loadGI {
		t.Fatalf("use region starts at %d, not after load at %d", r2.StartGI, loadGI)
	}
}

// TestMinRegionFloor checks the 6-instruction floor (Alg. 1 line 31):
// with the floor, the first region of a long pressured block has at least
// MinRegionInsns instructions; without it, smaller first regions appear.
func TestMinRegionFloor(t *testing.T) {
	build := func() *isa.Kernel {
		b := isa.NewBuilder("floor", 1)
		var vals []isa.Reg
		for i := 0; i < 14; i++ {
			vals = append(vals, b.Movi(uint32(i)))
		}
		acc := b.Movi(0)
		for _, v := range vals {
			b.Op2To(isa.OpIADD, acc, acc, v)
		}
		b.Stg(acc, acc, 0)
		b.Exit()
		return b.MustKernel()
	}
	k := build()
	alloc, err := regalloc.Allocate(k)
	if err != nil {
		t.Fatal(err)
	}
	withFloor := compile(t, alloc.Kernel, Config{MaxRegsPerRegion: 6, BankLines: 4, MinRegionInsns: 6})
	checkInvariants(t, withFloor)
	for _, r := range withFloor.Regions[:1] {
		if r.NumInsns() < 6 && r.EndGI < withFloor.G.NumInsns() {
			t.Fatalf("first region has %d insns despite the floor", r.NumInsns())
		}
	}
	noFloor := compile(t, alloc.Kernel, Config{MaxRegsPerRegion: 6, BankLines: 4, MinRegionInsns: 1})
	checkInvariants(t, noFloor)
	if len(noFloor.Regions) < len(withFloor.Regions) {
		t.Fatalf("floor produced more regions (%d) than no floor (%d)",
			len(withFloor.Regions), len(noFloor.Regions))
	}
}

// TestBarrierEndsRegion checks the barrier rule added for deadlock
// freedom: a BAR is always the last instruction of its region.
func TestBarrierEndsRegion(t *testing.T) {
	b := isa.NewBuilder("barend", 2)
	tid := b.Tid()
	sa := b.Muli(tid, 4)
	b.Sts(sa, tid, 0)
	b.Bar()
	v := b.Lds(sa, 4)
	b.Stg(sa, v, 4096)
	b.Exit()
	k := b.MustKernel()
	c := compile(t, k, DefaultConfig())
	checkInvariants(t, c)
	for _, r := range c.Regions {
		blk := k.Blocks[r.Block]
		for i := r.Start; i < r.End-1; i++ {
			if blk.Insns[i].Op == isa.OpBAR {
				t.Fatalf("region %d holds a barrier mid-region at %d", r.ID, i)
			}
		}
	}
}
